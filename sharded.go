package guardrails

import (
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/rollout"
	"guardrails/internal/telemetry"
)

// Sharded-execution surface (see DESIGN.md "Sharded execution"): the
// kernel pool, the per-shard feature store with epoch aggregation, and
// the fleet rollout supervisor.
type (
	// KernelPool is the sharded multi-core kernel: N independent event
	// loops advanced in lockstep epochs by a deterministic barrier.
	KernelPool = kernel.Pool
	// ShardedStore is the feature store split into per-shard cells with
	// epoch-based cross-shard aggregation.
	ShardedStore = featurestore.Sharded
	// EpochSnapshot is one aggregation epoch's published global view.
	EpochSnapshot = featurestore.EpochSnapshot
	// AggOp selects how per-shard contributions combine (AggSum, ...).
	AggOp = featurestore.AggOp
	// RolloutFleet replicates a staged rollout across every shard and
	// supervises the replicas from the pool barrier.
	RolloutFleet = rollout.Fleet
)

// Aggregation operators for ShardedSystem.RegisterAggregate.
const (
	AggSum  = featurestore.AggSum
	AggMax  = featurestore.AggMax
	AggMin  = featurestore.AggMin
	AggMean = featurestore.AggMean
)

// EpochKey is the per-shard feature-store key stamped with the
// aggregation epoch number at every pool barrier.
const EpochKey = featurestore.EpochKey

// DefaultQuantum is the default barrier interval of a sharded system.
const DefaultQuantum = kernel.DefaultQuantum

// GlobalKey derives the feature-store key that carries the cross-shard
// aggregate of name ("err_rate" → "err_rate_global"). Both the
// contribution key and the derived key are legal guardrail-spec
// identifiers, so monitors LOAD aggregates directly.
func GlobalKey(name string) string { return featurestore.GlobalKey(name) }

// ShardedSystem is the multi-core variant of System: N shard systems —
// each a full kernel + feature-store cell + monitor runtime triple
// running its own event loop — coupled only at the pool barrier, where
// registered feature aggregates are folded and broadcast, the rollout
// fleet supervisor runs, and scheduled global-time operations fire.
//
// A one-shard ShardedSystem is event-for-event identical to a plain
// System driven to the same deadline: same event order, same telemetry,
// byte-identical flight-recorder trace.
type ShardedSystem struct {
	// Pool is the sharded kernel driving the shard event loops.
	Pool *KernelPool
	// Stores is the sharded feature store; Stores.Shard(i) is shard i's
	// SAVE/LOAD surface and Aggregate runs automatically at every
	// barrier.
	Stores *ShardedStore

	shards []*System
	sinks  []*Telemetry
	provs  []*Provenance
}

// NewShardedSystem returns an n-shard system with the default barrier
// quantum. Feature aggregation is pre-wired: every pool barrier runs
// one Stores.Aggregate epoch.
func NewShardedSystem(n int) *ShardedSystem {
	return NewShardedSystemQuantum(n, 0)
}

// NewShardedSystemQuantum is NewShardedSystem with an explicit barrier
// interval (<= 0 selects DefaultQuantum). Longer quanta cost less
// barrier overhead and make cross-shard aggregates staler; the quantum
// is the knob between them.
func NewShardedSystemQuantum(n int, quantum Time) *ShardedSystem {
	pool := kernel.NewPool(n, quantum)
	stores := featurestore.NewSharded(n)
	s := &ShardedSystem{Pool: pool, Stores: stores}
	for i := 0; i < n; i++ {
		k, st := pool.Shard(i), stores.Shard(i)
		s.shards = append(s.shards, &System{Kernel: k, Store: st, Runtime: monitor.New(k, st)})
	}
	pool.OnBarrier(func(kernel.Time, uint64) { stores.Aggregate() })
	return s
}

// NumShards returns the shard count.
func (s *ShardedSystem) NumShards() int { return len(s.shards) }

// Shard returns shard i as a plain System view: its kernel, its feature
// cell, its runtime. Everything that works on a System — pinned
// guardrail loads, fault plans, substrate devices — works on a shard
// view, and only touches that shard.
func (s *ShardedSystem) Shard(i int) *System { return s.shards[i] }

// RunUntil advances every shard to deadline through the pool's
// epoch/barrier machinery and returns the total number of shard events
// executed.
func (s *ShardedSystem) RunUntil(deadline Time) int { return s.Pool.RunUntil(deadline) }

// RegisterAggregate arms cross-shard aggregation for a feature key:
// each shard's SAVEs under name are op-combined at every barrier and
// broadcast back to all shards under the returned key
// (GlobalKey(name)), alongside the epoch stamp under EpochKey.
func (s *ShardedSystem) RegisterAggregate(name string, op AggOp) string {
	return s.Stores.RegisterAggregate(name, op)
}

// LoadGuardrails replicates the guardrail source onto every shard —
// the default placement, matching per-CPU eBPF program instances: each
// shard evaluates its replica against its own traffic. The result
// holds shard i's monitors at index i. Parsing, compilation, and
// verification are deterministic, so a rejected source is refused
// identically on every shard with nothing loaded. For pinning a
// guardrail to one shard, use Shard(i).LoadGuardrails.
func (s *ShardedSystem) LoadGuardrails(src string, opts Options) ([][]*Monitor, error) {
	out := make([][]*Monitor, len(s.shards))
	for i, sys := range s.shards {
		ms, err := sys.LoadGuardrails(src, opts)
		if err != nil {
			return nil, err
		}
		out[i] = ms
	}
	return out, nil
}

// AttachTelemetry gives every shard its own telemetry sink (counter
// lane, histograms, flight-recorder ring) with eventCap ring capacity,
// so hot-path instrumentation never crosses a shard boundary. Returns
// the per-shard sinks; Telemetry merges them on demand.
func (s *ShardedSystem) AttachTelemetry(eventCap int) []*Telemetry {
	s.sinks = s.sinks[:0]
	for _, sys := range s.shards {
		s.sinks = append(s.sinks, sys.AttachTelemetry(eventCap))
	}
	return append([]*Telemetry(nil), s.sinks...)
}

// ShardTelemetry returns shard i's sink (nil before AttachTelemetry).
func (s *ShardedSystem) ShardTelemetry(i int) *Telemetry { return s.shards[i].Telemetry() }

// Telemetry merges the per-shard sinks into one fleet-wide snapshot
// view: counters sum, histograms fold, and flight events interleave in
// (simulated time, shard index) order. Each call builds a fresh merged
// sink stamped with the pool clock; call it at a barrier or after a
// run for exact numbers.
func (s *ShardedSystem) Telemetry() *Telemetry {
	return telemetry.Merge(func() telemetry.Time { return int64(s.Pool.Now()) }, 0, s.sinks...)
}

// AttachProvenance attaches one decision recorder per shard (each
// labeled with its shard index) and registers a barrier callback that
// stamps every recorder with the pool's aggregation epoch — records
// committed after a barrier carry the epoch whose *_global snapshots
// their evaluations read. Returns the per-shard recorders.
func (s *ShardedSystem) AttachProvenance(recordCap, healthyEvery int) []*Provenance {
	s.provs = s.provs[:0]
	for i, sys := range s.shards {
		rec := sys.AttachProvenance(recordCap, healthyEvery)
		rec.SetShard(i)
		s.provs = append(s.provs, rec)
	}
	provs := append([]*Provenance(nil), s.provs...)
	s.Pool.OnBarrier(func(_ kernel.Time, epoch uint64) {
		for _, rec := range provs {
			rec.SetEpoch(epoch)
		}
	})
	return provs
}

// ShardProvenance returns shard i's recorder (nil if not attached).
func (s *ShardedSystem) ShardProvenance(i int) *Provenance { return s.shards[i].Provenance() }

// Provenance merges the per-shard decision lanes into one
// deterministic fleet-wide lane, ordered by (time, shard, sequence) —
// the same total order every seeded run produces.
func (s *ShardedSystem) Provenance() *Provenance {
	return provenance.Merge(s.provs...)
}

// ServeOps starts the live ops endpoint for the fleet: /metrics and
// /snapshot.json serve a fresh deterministic merge of the per-shard
// sinks per request, /why a fresh merge of the per-shard decision
// lanes.
func (s *ShardedSystem) ServeOps(addr string) (*OpsServer, error) {
	return telemetry.ServeOps(addr, OpsConfig{
		Sink: func() *telemetry.Sink { return s.Telemetry() },
		Why: func(name string, n int) (any, error) {
			return provenance.Views(s.Provenance().ForMonitor(name, n)), nil
		},
	})
}

// FleetStats folds the per-shard replicas of the named guardrail into
// one fleet view: counters sum across shards; the Last* fields come
// from the replica with the freshest trigger.
func (s *ShardedSystem) FleetStats(name string) MonitorStats {
	var ss []MonitorStats
	for _, sys := range s.shards {
		if m := sys.Runtime.Monitor(name); m != nil {
			ss = append(ss, m.Stats())
		}
	}
	return monitor.SumStats(ss...)
}

// NewFleetController returns a rollout fleet over the sharded system:
// one controller per shard, fanned-out Begin, barrier-supervised
// abort-on-divergence, and barrier-atomic fleet breakglass. Adopt the
// incumbent generation on each shard's controller before beginning a
// rollout.
func (s *ShardedSystem) NewFleetController() *RolloutFleet {
	ctrls := make([]*RolloutController, len(s.shards))
	for i, sys := range s.shards {
		ctrls[i] = rollout.NewController(sys.Runtime)
	}
	return rollout.NewFleet(s.Pool, ctrls)
}
