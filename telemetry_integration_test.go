package guardrails

// End-to-end telemetry tests: the observability plane attached to a
// whole System must (a) reconcile exactly with the monitors' own
// accounting and (b) export a byte-identical Chrome trace for a seeded
// deterministic run. Both named TestTelemetry… so CI's
// `go test -run Telemetry -race` covers them alongside the unit tests
// in internal/telemetry.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// telemetrySpec exercises evaluation, violation, REPORT, and a
// DEPRIORITIZE whose task group is never registered — every episode
// also walks the retry ladder into the dead-letter queue.
const telemetrySpec = `
guardrail telemetry-watch {
    trigger: {
        TIMER(0, 1e8) // every 100ms
    },
    rule: {
        LOAD(sig) <= 1.0
    },
    action: {
        REPORT(LOAD(sig));
        DEPRIORITIZE(ghost_group)
    }
}`

// runTelemetrySystem drives one deterministic guarded run and returns
// the system and its sink. sig ramps above the threshold mid-run, so
// the monitor sees passes, violations, fired actions, failed
// DEPRIORITIZE dispatches, retries, and dead letters.
func runTelemetrySystem(t *testing.T, eventCap int) (*System, *Telemetry, []*Monitor) {
	t.Helper()
	sys := NewSystem()
	sink := sys.AttachTelemetry(eventCap)
	mons, err := sys.LoadGuardrails(telemetrySpec, Options{RetryMax: 1})
	if err != nil {
		t.Fatalf("loading guardrail: %v", err)
	}
	sys.Kernel.Every(0, 50*Millisecond, 3*Second, func(now Time) {
		v := 0.5
		if now >= Second && now < 2*Second {
			v = 2.5 // violation window
		}
		sys.Store.Save("sig", v)
	})
	sys.Kernel.RunUntil(3 * Second)
	return sys, sink, mons
}

// TestTelemetryCountersReconcileWithMonitorStats is the acceptance
// check: with telemetry enabled, the plane's counters must equal the
// sum of the monitors' own Stats — same increments, same code points,
// no sampling.
func TestTelemetryCountersReconcileWithMonitorStats(t *testing.T) {
	_, sink, mons := runTelemetrySystem(t, 4096)
	var want MonitorStats
	for _, m := range mons {
		st := m.Stats()
		want.Evals += st.Evals
		want.Violations += st.Violations
		want.ActionsFired += st.ActionsFired
		want.DeadLetters += st.DeadLetters
		want.Retries += st.Retries
	}
	if want.Evals == 0 || want.Violations == 0 || want.ActionsFired == 0 || want.DeadLetters == 0 {
		t.Fatalf("run exercised nothing: stats = %+v", want)
	}
	snap := sink.Snapshot()
	for name, wantV := range map[string]uint64{
		"evals_total":          want.Evals,
		"violations_total":     want.Violations,
		"actions_fired_total":  want.ActionsFired,
		"dead_letters_total":   want.DeadLetters,
		"action_retries_total": want.Retries,
	} {
		if got := snap.Counters[name]; got != wantV {
			t.Errorf("counter %s = %d, want %d (monitor stats)", name, got, wantV)
		}
	}
	if snap.EventsTotal == 0 {
		t.Error("flight recorder captured no events")
	}
	if sum, ok := snap.EvalVMSteps["telemetry-watch"]; !ok || sum.Count != want.Evals {
		t.Errorf("eval histogram count = %+v, want %d observations", sum, want.Evals)
	}
}

// TestTelemetryStatsCarryTriggerTime: a violation reported through
// REPORT is stamped with the simulated time of the triggering hook, and
// the monitor records that trigger in Stats.LastTriggerAt.
func TestTelemetryStatsCarryTriggerTime(t *testing.T) {
	sys, _, mons := runTelemetrySystem(t, 256)
	st := mons[0].Stats()
	if st.LastTriggerAt == 0 {
		t.Error("Stats.LastTriggerAt was never set")
	}
	var reports int
	for _, v := range sys.Runtime.Log.Recent(1024) {
		if v.Note != "" || len(v.Values) == 0 {
			continue
		}
		reports++
		// TIMER(0, 1e8) triggers land exactly on 100ms boundaries; a
		// report stamped off-boundary would be carrying dispatch time.
		if v.Time%(100*Millisecond) != 0 {
			t.Errorf("report at %v is not on a trigger boundary", v.Time)
		}
	}
	if reports == 0 {
		t.Fatal("no REPORT violations logged")
	}
}

// TestTelemetryTraceGolden locks the Chrome trace_event export of a
// seeded deterministic run against testdata/telemetry_trace.golden.json.
// Regenerate with UPDATE_TELEMETRY_GOLDEN=1 go test -run TelemetryTraceGolden.
func TestTelemetryTraceGolden(t *testing.T) {
	run := func() []byte {
		sys := NewSystem()
		sink := sys.AttachTelemetry(64)
		if _, err := sys.LoadGuardrails(telemetrySpec, Options{RetryMax: 1}); err != nil {
			t.Fatalf("loading guardrail: %v", err)
		}
		sys.Kernel.Every(0, 50*Millisecond, Second, func(now Time) {
			v := 0.5
			if now >= 500*Millisecond {
				v = 2.5
			}
			sys.Store.Save("sig", v)
		})
		sys.Kernel.RunUntil(Second)
		var buf bytes.Buffer
		if err := sink.WriteTrace(&buf); err != nil {
			t.Fatalf("writing trace: %v", err)
		}
		return buf.Bytes()
	}
	got := run()
	if again := run(); !bytes.Equal(got, again) {
		t.Fatal("trace export is not deterministic across identical runs")
	}

	// The export must be loadable trace_event JSON: an object with a
	// traceEvents array whose entries have the required fields.
	var parsed struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, e := range parsed.TraceEvents {
		if e.Name == "" || e.Phase == "" {
			t.Fatalf("trace event %d missing name/phase: %+v", i, e)
		}
	}

	golden := filepath.Join("testdata", "telemetry_trace.golden.json")
	if os.Getenv("UPDATE_TELEMETRY_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with UPDATE_TELEMETRY_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace differs from golden file (regenerate with UPDATE_TELEMETRY_GOLDEN=1 if intended)\ngot %d bytes, want %d bytes", len(got), len(want))
	}
}

// TestTelemetryMetricsSnapshotRoundTrip: the JSON snapshot marshals
// (no NaN leakage from empty histograms) and survives a decode.
func TestTelemetryMetricsSnapshotRoundTrip(t *testing.T) {
	_, sink, _ := runTelemetrySystem(t, 128)
	var buf bytes.Buffer
	if err := sink.WriteJSON(&buf); err != nil {
		t.Fatalf("snapshot marshal: %v", err)
	}
	var snap TelemetrySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot round-trip: %v", err)
	}
	if snap.Counters["evals_total"] == 0 {
		t.Error("round-tripped snapshot lost counters")
	}
}
