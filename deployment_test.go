package guardrails

import (
	"errors"
	"strings"
	"testing"
)

// The paper's failover/failback interference example in this repo's
// action taxonomy: both guardrails watch the io_uring submission hook;
// one disables the ML predictor and fails over, the other re-enables
// it and fails back. Each verifies alone; together their actions
// contradict on every shared dispatch.
const conflictingDeployment = `
guardrail ml-off-on-errors {
    trigger: { FUNCTION(io_uring_submit) },
    rule: { LOAD(io_err_rate) <= 0.01 },
    action: {
        SAVE(ml_enabled, 0)
        REPLACE(linnos, heuristic)
    }
}
guardrail ml-on-for-latency {
    trigger: { FUNCTION(io_uring_submit) },
    rule: { LOAD(io_lat_p99) <= 5e6 },
    action: {
        SAVE(ml_enabled, 1)
        REPLACE(heuristic, linnos)
    }
}`

// TestAnalyzeDeploymentFindsInterference: the library surface reports
// the conflict pair (GI001 contradictory SAVEs, GI002 REPLACE
// ping-pong) without loading anything.
func TestAnalyzeDeploymentFindsInterference(t *testing.T) {
	report, err := AnalyzeDeployment(conflictingDeployment, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.Clean() {
		t.Fatal("conflicting deployment analyzed clean")
	}
	found := map[string]bool{}
	for _, d := range report.Diagnostics {
		found[d.Code] = true
	}
	if !found["GI001"] || !found["GI002"] {
		t.Errorf("diagnostics = %v, want GI001 and GI002", found)
	}
}

// TestSystemRefusesConflictingDeployment: System.LoadDeployment under
// the default enforce policy refuses atomically; nothing is armed.
func TestSystemRefusesConflictingDeployment(t *testing.T) {
	sys := NewSystem()
	res, err := sys.LoadDeployment(conflictingDeployment, DeployConfig{})
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want *DeployError", err)
	}
	if len(res.Monitors) != 0 || len(sys.Runtime.Monitors()) != 0 {
		t.Error("refused deployment left monitors loaded")
	}

	// The same deployment under DeployWarn loads quarantined: the
	// conflicting SAVEs never reach the store.
	sys2 := NewSystem()
	sys2.Store.Save("ml_enabled", 1)
	sys2.Store.Save("io_err_rate", 0.9)
	sys2.Store.Save("io_lat_p99", 1e9)
	res2, err := sys2.LoadDeployment(conflictingDeployment, DeployConfig{Policy: DeployWarn})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Shadowed) != 2 {
		t.Fatalf("Shadowed = %v, want both guardrails", res2.Shadowed)
	}
	sys2.Kernel.Fire("io_uring_submit")
	sys2.Kernel.RunUntil(Second)
	if got := sys2.Store.Load("ml_enabled"); got != 1 {
		t.Errorf("quarantined deployment still wrote ml_enabled = %v", got)
	}
}

// TestSystemDuplicateLoad: loading the same spec twice into one System
// fails with the GI007-coded duplicate-deployment error and leaves the
// first load armed.
func TestSystemDuplicateLoad(t *testing.T) {
	const src = `
guardrail low-false-submit {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { SAVE(ml_enabled, false) }
}`
	sys := NewSystem()
	sys.Store.Save("false_submit_rate", 0.01)
	if _, err := sys.LoadGuardrails(src, Options{}); err != nil {
		t.Fatal(err)
	}
	_, err := sys.LoadGuardrails(src, Options{})
	var dup *DuplicateLoadError
	if !errors.As(err, &dup) {
		t.Fatalf("second load returned %v, want *DuplicateLoadError", err)
	}
	if !strings.Contains(err.Error(), "GI007") {
		t.Errorf("duplicate-load error %q missing GI007", err)
	}
	if sys.Runtime.Monitor("low-false-submit") == nil {
		t.Error("failed duplicate load unloaded the original monitor")
	}
}

// TestSystemBudgetRejectionTelemetry: an over-budget deployment is
// refused by the kernel admission test and the rejection is visible in
// the telemetry exposition.
func TestSystemBudgetRejectionTelemetry(t *testing.T) {
	sys := NewSystem()
	sink := sys.AttachTelemetry(64)
	const twoOnOneHook = `
guardrail watch-a {
    trigger: { FUNCTION(io_uring_submit) },
    rule: { LOAD(a) <= 1 },
    action: { REPORT(LOAD(a)) }
}
guardrail watch-b {
    trigger: { FUNCTION(io_uring_submit) },
    rule: { LOAD(b) <= 1 },
    action: { REPORT(LOAD(b)) }
}`
	_, err := sys.LoadDeployment(twoOnOneHook, DeployConfig{HookBudget: 4})
	var derr *DeployError
	if !errors.As(err, &derr) {
		t.Fatalf("got %v, want *DeployError", err)
	}
	var aerr *AdmissionError
	if !errors.As(derr.Admission, &aerr) {
		t.Fatalf("DeployError.Admission = %v, want *AdmissionError", derr.Admission)
	}
	if got := sink.Counters.DeployRejected.Value(); got != 1 {
		t.Errorf("deployment_rejected_total = %d, want 1", got)
	}
	var buf strings.Builder
	if err := sink.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deployment_rejected_total 1") {
		t.Errorf("exposition missing rejection:\n%s", buf.String())
	}

	// Raising the budget admits the same deployment.
	sys2 := NewSystem()
	if _, err := sys2.LoadDeployment(twoOnOneHook, DeployConfig{HookBudget: 64}); err != nil {
		t.Fatalf("within-budget deployment refused: %v", err)
	}
}

// TestModelCheckDeploymentPublicAPI: the library surface proves a
// satisfied assert block and refutes a broken extra property with a
// replayable witness.
func TestModelCheckDeploymentPublicAPI(t *testing.T) {
	const src = `
assert always LOAD(alert) <= 1

guardrail latch {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(alert) >= 1 },
    action: { SAVE(alert, 1) }
}`
	rep, err := ModelCheckDeployment(src)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("satisfied property not proved: %s", rep.Summary())
	}
	rep, err = ModelCheckDeployment(src, "always LOAD(alert) <= 0")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("broken extra property not refuted")
	}
	confirmed := false
	for _, d := range rep.Diagnostics {
		if d.Status == "CONFIRMED" {
			confirmed = true
		}
	}
	if !confirmed {
		t.Errorf("refutation carries no confirmed witness: %+v", rep.Diagnostics)
	}
	if _, err := ModelCheckDeployment(src, "sometimes LOAD(x)"); err == nil {
		t.Error("malformed extra property accepted")
	}
}
