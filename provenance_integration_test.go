package guardrails

// End-to-end decision-provenance tests: the "why" records captured at
// every guardrail evaluation must (a) reconcile exactly with the
// monitors' own accounting for the always-on kinds — every violation,
// fault, and rollback has precisely one record — and (b) export
// byte-identical JSON for a fixed-seed run, single kernel and -shards 1
// alike, so provenance is as deterministic as the simulation it
// observes.

import (
	"bytes"
	"strings"
	"testing"

	"guardrails/internal/provenance"
)

// provSpec violates on the mid-run signal window and REPORTs, so a run
// exercises healthy evals, violations, and fired actions.
const provSpec = `
guardrail prov-watch {
    trigger: {
        TIMER(0, 1e8) // every 100ms
    },
    rule: {
        LOAD(sig) <= 1.0
    },
    action: {
        REPORT(LOAD(sig))
    }
}`

// runProvSystem drives a deterministic run: healthy signal, a violation
// window, and a corrupt (NaN) window that faults every read.
func runProvSystem(t *testing.T, healthyEvery int) (*System, []*Monitor) {
	t.Helper()
	sys := NewSystem()
	sys.AttachTelemetry(4096)
	sys.AttachProvenance(4096, healthyEvery)
	mons, err := sys.LoadGuardrails(provSpec, Options{})
	if err != nil {
		t.Fatalf("loading guardrail: %v", err)
	}
	nan := 0.0
	sys.Kernel.Every(0, 50*Millisecond, 4*Second, func(now Time) {
		switch {
		case now >= Second && now < 2*Second:
			sys.Store.Save("sig", 2.5) // violation window
		case now >= 2*Second && now < 3*Second:
			sys.Store.Save("sig", nan/nan) // corrupt window: NaN reads fault
		default:
			sys.Store.Save("sig", 0.5)
		}
	})
	sys.Kernel.RunUntil(4 * Second)
	return sys, mons
}

// countKinds tallies the retained records by kind.
func countKinds(recs []ProvenanceRecord) map[string]int {
	out := map[string]int{}
	for _, r := range recs {
		out[r.Kind.String()]++
	}
	return out
}

// TestProvenanceReconcilesWithMonitorStats is the acceptance check for
// the always-on kinds: one KindViolation record per violation counter
// increment, one KindFault record per fault counter increment — same
// code points, no sampling, nothing evicted at this capacity.
func TestProvenanceReconcilesWithMonitorStats(t *testing.T) {
	sys, mons := runProvSystem(t, 0) // drop all healthy fires
	st := mons[0].Stats()
	if st.Violations == 0 || st.Traps == 0 {
		t.Fatalf("run exercised nothing: stats = %+v", st)
	}
	snap := sys.Telemetry().Snapshot()
	recs := sys.Provenance().Records()
	kinds := countKinds(recs)

	if got := uint64(kinds["violation"]); got != st.Violations || got != snap.Counters["violations_total"] {
		t.Errorf("violation records = %d, monitor stats = %d, counter = %d",
			kinds["violation"], st.Violations, snap.Counters["violations_total"])
	}
	if got := uint64(kinds["fault"]); got != st.Traps || got != snap.Counters["monitor_faults_total"] {
		t.Errorf("fault records = %d, monitor traps = %d, counter = %d",
			kinds["fault"], st.Traps, snap.Counters["monitor_faults_total"])
	}
	if kinds["eval"] != 0 {
		t.Errorf("healthyEvery=0 retained %d healthy records", kinds["eval"])
	}

	// Every record carries the capture a postmortem needs.
	for i, r := range recs {
		if r.Monitor != "prov-watch" {
			t.Fatalf("record %d: monitor %q", i, r.Monitor)
		}
		switch r.Kind {
		case provenance.KindViolation:
			if r.Held || r.NFeatures == 0 || r.Steps == 0 {
				t.Errorf("violation record %d incomplete: held=%v features=%d steps=%d",
					i, r.Held, r.NFeatures, r.Steps)
			}
			if r.Features[0].Key != "sig" || r.Features[0].Value != 2.5 {
				t.Errorf("violation record %d features = %+v", i, r.Features[0])
			}
		case provenance.KindFault:
			if r.FaultKind != "corrupt-load" {
				t.Errorf("fault record %d kind = %q", i, r.FaultKind)
			}
			// The patched read is captured with its substitute value.
			if r.NFeatures == 0 || !r.Features[0].Patched {
				t.Errorf("fault record %d lost the patched read: %+v", i, r.Features[0])
			}
		}
	}
}

// TestProvenanceHealthySampling: healthy fires are head-sampled 1-in-N
// per monitor, deterministically.
func TestProvenanceHealthySampling(t *testing.T) {
	sys, mons := runProvSystem(t, 4)
	st := mons[0].Stats()
	// A corrupt read faults but the evaluation still completes (patched)
	// and lands as held or violated, so healthy = evals - violations.
	held := st.Evals - st.Violations
	kinds := countKinds(sys.Provenance().Records())
	want := int((held + 3) / 4) // n%4==0 keeps fires 0, 4, 8, ...
	if kinds["eval"] != want {
		t.Errorf("healthy records = %d, want %d of %d held evals", kinds["eval"], want, held)
	}
}

// TestProvenanceRollbackRecorded: a rollout that rolls back leaves
// exactly one KindRollback record (plus the failing gate's KindGate
// trail), reconciling with rollout_rollbacks_total.
func TestProvenanceRollbackRecorded(t *testing.T) {
	sys := NewSystem()
	sys.AttachTelemetry(1 << 15)
	sys.AttachProvenance(4096, 0)
	inc, err := CompileSpec(`
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Runtime.Load(inc[0], Options{}); err != nil {
		t.Fatal(err)
	}
	ctl := sys.NewRolloutController()
	ctl.Adopt(inc)
	i := 0
	sys.Kernel.Every(0, Millisecond, 0, func(now Time) {
		sys.Store.Save("lat_ma", 0.10+0.05*float64(i%10))
		sys.Kernel.Fire("io_done", 0)
		i++
	})
	bad, err := CompileSpec(`
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.01 },
    action: { SAVE(alert_bad, 1) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RolloutConfig{ShadowWindow: 200 * Millisecond, CanaryWindow: 400 * Millisecond}
	if err := ctl.Begin(bad, cfg); err != nil {
		t.Fatal(err)
	}
	sys.Kernel.RunUntil(2 * Second)
	if got := ctl.Phase(); got != RolloutRolledBack {
		t.Fatalf("phase = %s, want rolled_back", got)
	}

	kinds := countKinds(sys.Provenance().Records())
	rollbacks := sys.Telemetry().Counters.RolloutRollbacks.Value()
	if rollbacks == 0 || uint64(kinds["rollback"]) != rollbacks {
		t.Errorf("rollback records = %d, counter = %d", kinds["rollback"], rollbacks)
	}
	if kinds["gate"] == 0 {
		t.Error("no gate records captured for a gated rollout")
	}
	var sawFailedGate bool
	for _, r := range sys.Provenance().Records() {
		if r.Kind == provenance.KindGate && r.GateReason != "" {
			sawFailedGate = true
			if r.Stage != "shadow" || r.Cand.Evals == 0 {
				t.Errorf("failing gate record incomplete: %+v", r)
			}
		}
		if r.Kind == provenance.KindRollback && !strings.Contains(r.Reason, "violation rate") {
			t.Errorf("rollback reason = %q", r.Reason)
		}
	}
	if !sawFailedGate {
		t.Error("no failing gate record precedes the rollback")
	}
}

// provExport runs the given driver and returns the provenance export
// bytes.
func provExport(t *testing.T, run func(t *testing.T) *Provenance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestProvenanceDeterministicAcrossRuns: a fixed-seed single-kernel run
// exports byte-identical provenance JSON every time.
func TestProvenanceDeterministicAcrossRuns(t *testing.T) {
	run := func(t *testing.T) *Provenance {
		sys, _ := runProvSystem(t, 8)
		return sys.Provenance()
	}
	a, b := provExport(t, run), provExport(t, run)
	if !bytes.Equal(a, b) {
		t.Error("provenance export differs across identical runs")
	}
	if !bytes.Contains(a, []byte(`"kind": "violation"`)) {
		t.Errorf("export captured nothing: %s", a)
	}
}

// shardedProvRun drives an n-shard system with replicated guardrails
// and per-shard deterministic workloads, returning the merged lane.
func shardedProvRun(t *testing.T, shards int) *Provenance {
	t.Helper()
	sys := NewShardedSystem(shards)
	sys.AttachTelemetry(4096)
	sys.AttachProvenance(4096, 8)
	if _, err := sys.LoadGuardrails(provSpec, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sys.NumShards(); i++ {
		shard := sys.Shard(i)
		phase := Time(i) * 10 * Millisecond // stagger shards
		shard.Kernel.Every(phase, 50*Millisecond, 3*Second, func(now Time) {
			v := 0.5
			if now >= Second && now < 2*Second {
				v = 2.5
			}
			shard.Store.Save("sig", v)
		})
	}
	sys.RunUntil(3 * Second)
	return sys.Provenance()
}

// TestShardedProvenanceSingleShardByteIdentical is the -shards 1
// acceptance criterion: the one-shard sharded system's provenance
// export is byte-identical across fixed-seed runs.
func TestShardedProvenanceSingleShardByteIdentical(t *testing.T) {
	run := func(t *testing.T) *Provenance { return shardedProvRun(t, 1) }
	a, b := provExport(t, run), provExport(t, run)
	if !bytes.Equal(a, b) {
		t.Error("-shards 1 provenance export differs across identical runs")
	}
}

// TestShardedProvenanceMergeDeterministic: the merged multi-shard lane
// is deterministic too — shard goroutine scheduling must not leak into
// the merged order — and records carry their shard and epoch stamps.
func TestShardedProvenanceMergeDeterministic(t *testing.T) {
	run := func(t *testing.T) *Provenance { return shardedProvRun(t, 4) }
	a, b := provExport(t, run), provExport(t, run)
	if !bytes.Equal(a, b) {
		t.Error("merged provenance export differs across identical runs")
	}
	merged := shardedProvRun(t, 4)
	shardsSeen := map[int]bool{}
	epochSeen := false
	last := struct {
		at  int64
		sh  int
		seq uint64
	}{}
	for i, r := range merged.Records() {
		shardsSeen[r.Shard] = true
		if r.Epoch > 0 {
			epochSeen = true
		}
		if i > 0 {
			if r.At < last.at ||
				(r.At == last.at && r.Shard < last.sh) {
				t.Fatalf("record %d out of (time, shard) order", i)
			}
			if r.Seq != last.seq+1 {
				t.Fatalf("record %d: seq %d after %d", i, r.Seq, last.seq)
			}
		}
		last.at, last.sh, last.seq = r.At, r.Shard, r.Seq
	}
	if len(shardsSeen) != 4 {
		t.Errorf("records from %d shards, want 4", len(shardsSeen))
	}
	if !epochSeen {
		t.Error("no record carries a barrier epoch stamp")
	}
}
