package guardrails

// End-to-end sharded-execution tests. The CI matrix runs these (and
// everything else at the root) under GUARDRAILS_SHARDS={1,4}: tests
// that scale with the knob read shardCount, so the same suite checks
// the single-loop and multi-core configurations.

import (
	"bytes"
	"os"
	"reflect"
	"strconv"
	"testing"
)

// shardCount is the env knob for the CI shard matrix; tests default to
// two shards when it is unset.
func shardCount(t *testing.T) int {
	t.Helper()
	v := os.Getenv("GUARDRAILS_SHARDS")
	if v == "" {
		return 2
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("bad GUARDRAILS_SHARDS=%q: want a positive integer", v)
	}
	return n
}

// TestShardedOneShardReproducesSingleLoopTrace is the compatibility
// acceptance check: -shards 1 must be the existing kernel, not an
// approximation of it. The same seeded workload runs on a plain System
// and on a one-shard ShardedSystem, and the flight-recorder traces must
// be byte-identical — same events, same order, same sequence numbers.
func TestShardedOneShardReproducesSingleLoopTrace(t *testing.T) {
	drive := func(sys *System) {
		if _, err := sys.LoadGuardrails(telemetrySpec, Options{RetryMax: 1}); err != nil {
			t.Fatal(err)
		}
		sys.Kernel.Every(0, 50*Millisecond, 3*Second, func(now Time) {
			v := 0.5
			if now >= Second && now < 2*Second {
				v = 2.5
			}
			sys.Store.Save("sig", v)
		})
	}

	plain := NewSystem()
	plainSink := plain.AttachTelemetry(4096)
	drive(plain)
	plain.Kernel.RunUntil(3 * Second)

	ss := NewShardedSystem(1)
	sinks := ss.AttachTelemetry(4096)
	drive(ss.Shard(0))
	ss.RunUntil(3 * Second)

	var want, got bytes.Buffer
	if err := plainSink.WriteTrace(&want); err != nil {
		t.Fatal(err)
	}
	if err := sinks[0].WriteTrace(&got); err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 || plainSink.Flight().Total() == 0 {
		t.Fatal("plain run recorded no events; trace comparison is vacuous")
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("one-shard trace diverges from single-loop trace (%d vs %d bytes)",
			want.Len(), got.Len())
	}
	// The merged fleet view of one shard is that shard.
	var merged bytes.Buffer
	if err := ss.Telemetry().WriteTrace(&merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), merged.Bytes()) {
		t.Fatal("merged one-shard trace diverges from single-loop trace")
	}
	if !reflect.DeepEqual(plainSink.Snapshot().Counters, sinks[0].Snapshot().Counters) {
		t.Errorf("counters diverge:\nplain   %v\nsharded %v",
			plainSink.Snapshot().Counters, sinks[0].Snapshot().Counters)
	}
}

// shardSpec is a FUNCTION-triggered guardrail replicated across shards
// by the determinism tests.
const shardSpec = `
guardrail shard-watch {
    trigger: { FUNCTION(tick) },
    rule: { LOAD(sig) <= 1.0 },
    action: { REPORT(LOAD(sig)) }
}`

// driveShards installs a deterministic, shard-dependent workload: shard
// i ticks every (i+1)*100µs with a value cycle offset by i.
func driveShards(t *testing.T, ss *ShardedSystem) {
	t.Helper()
	if _, err := ss.LoadGuardrails(shardSpec, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ss.NumShards(); i++ {
		sh := ss.Shard(i)
		j := i
		sh.Kernel.Every(0, Time(i+1)*100*Microsecond, 0, func(now Time) {
			sh.Store.Save("sig", float64((j*7)%3))
			sh.Kernel.Fire("tick", float64(j))
			j++
		})
	}
}

// TestShardedRunsAreDeterministic replays the same seeded K-shard
// workload twice: every shard's flight-recorder trace and the merged
// fleet trace must be byte-identical across runs even though shards
// execute on concurrent goroutines.
func TestShardedRunsAreDeterministic(t *testing.T) {
	n := shardCount(t)
	run := func() ([][]byte, []byte, map[string]uint64) {
		ss := NewShardedSystem(n)
		ss.AttachTelemetry(1 << 14)
		driveShards(t, ss)
		ss.RunUntil(50 * Millisecond)
		var traces [][]byte
		for i := 0; i < n; i++ {
			var b bytes.Buffer
			if err := ss.ShardTelemetry(i).WriteTrace(&b); err != nil {
				t.Fatal(err)
			}
			traces = append(traces, b.Bytes())
		}
		var merged bytes.Buffer
		if err := ss.Telemetry().WriteTrace(&merged); err != nil {
			t.Fatal(err)
		}
		return traces, merged.Bytes(), ss.Telemetry().Snapshot().Counters
	}

	t1, m1, c1 := run()
	t2, m2, c2 := run()
	for i := range t1 {
		if len(t1[i]) == 0 {
			t.Fatalf("shard %d trace empty", i)
		}
		if !bytes.Equal(t1[i], t2[i]) {
			t.Errorf("shard %d trace diverged across identical runs", i)
		}
	}
	if !bytes.Equal(m1, m2) {
		t.Error("merged trace diverged across identical runs")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("merged counters diverged:\nrun1 %v\nrun2 %v", c1, c2)
	}
	if c1["evals_total"] == 0 || c1["violations_total"] == 0 {
		t.Fatalf("workload exercised nothing: %v", c1)
	}
}

// TestShardedEpochFeedback is the cross-shard SAVE/LOAD feedback loop
// end to end: every shard SAVEs a local err_rate, the barrier folds the
// contributions into err_rate_global on all shards, and a replicated
// guardrail LOADs the aggregate and throttles — on every shard at the
// same epoch, because the broadcast is barrier-atomic.
func TestShardedEpochFeedback(t *testing.T) {
	n := shardCount(t)
	ss := NewShardedSystem(n)
	ss.AttachTelemetry(4096)
	global := ss.RegisterAggregate("err_rate", AggMean)
	if global != GlobalKey("err_rate") || global != "err_rate_global" {
		t.Fatalf("global key = %q", global)
	}

	const feedback = `
guardrail global-throttle {
    trigger: { TIMER(0, 1e6) }, // every 1ms, once per aggregation epoch
    rule: { LOAD(err_rate_global) <= 0.5 },
    action: { SAVE(throttle, 1) }
}`
	if _, err := ss.LoadGuardrails(feedback, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sh := ss.Shard(i)
		sh.Kernel.Every(0, Millisecond, 0, func(now Time) {
			v := 0.2
			if now >= Second {
				v = 0.9 // every shard's error rate spikes at t=1s
			}
			sh.Store.Save("err_rate", v)
		})
	}

	ss.RunUntil(990 * Millisecond)
	for i := 0; i < n; i++ {
		if got := ss.Shard(i).Store.Load("throttle"); got != 0 {
			t.Fatalf("shard %d throttled before the aggregate crossed: %g", i, got)
		}
		if got := ss.Shard(i).Store.Load(global); got != 0.2 {
			t.Errorf("shard %d %s = %g, want 0.2", i, global, got)
		}
	}
	ss.RunUntil(1100 * Millisecond)
	wantEpoch := float64(ss.Stores.Epoch())
	for i := 0; i < n; i++ {
		sh := ss.Shard(i)
		if got := sh.Store.Load("throttle"); got != 1 {
			t.Errorf("shard %d not throttled after aggregate spike: %g", i, got)
		}
		if got := sh.Store.Load(global); got != 0.9 {
			t.Errorf("shard %d %s = %g, want 0.9", i, global, got)
		}
		if got := sh.Store.Load(EpochKey); got != wantEpoch {
			t.Errorf("shard %d epoch cell = %g, want %g", i, got, wantEpoch)
		}
	}
	if ss.Stores.Epoch() != ss.Pool.Epoch() {
		t.Errorf("store epochs (%d) out of step with pool barriers (%d)",
			ss.Stores.Epoch(), ss.Pool.Epoch())
	}
	// The fleet view sums the replicas' activity.
	fleet := ss.FleetStats("global-throttle")
	per := ss.Shard(0).Runtime.Monitor("global-throttle").Stats()
	if fleet.Evals != per.Evals*uint64(n) {
		t.Errorf("fleet evals = %d, want %d shards × %d", fleet.Evals, n, per.Evals)
	}
}

// TestShardedFleetRolloutPromotes drives the full control plane on a
// sharded system: incumbents replicated on every shard, a healthy
// candidate staged through shadow and canary by the fleet controller,
// and a fleet-wide promotion that advances every shard's generation.
func TestShardedFleetRolloutPromotes(t *testing.T) {
	n := shardCount(t)
	ss := NewShardedSystem(n)
	ss.AttachTelemetry(1 << 15)

	const inc = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`
	cs, err := CompileSpec(inc)
	if err != nil {
		t.Fatal(err)
	}
	fleet := ss.NewFleetController()
	for i := 0; i < n; i++ {
		if _, err := ss.Shard(i).Runtime.Load(cs[0], Options{}); err != nil {
			t.Fatal(err)
		}
		fleet.Controller(i).Adopt(cs)
		sh := ss.Shard(i)
		j := 0
		sh.Kernel.Every(0, Millisecond, 0, func(now Time) {
			sh.Store.Save("lat_ma", 0.10+0.05*float64(j%10))
			sh.Kernel.Fire("io_done", 0)
			j++
		})
	}

	cand, err := CompileSpec(`
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.56 },
    action: { SAVE(alert, 1) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RolloutConfig{ShadowWindow: 200 * Millisecond, CanaryWindow: 400 * Millisecond}
	if err := fleet.Begin(cand, cfg); err != nil {
		t.Fatal(err)
	}
	ss.RunUntil(2 * Second)

	if got := fleet.Phase(); got != RolloutPromoted {
		t.Fatalf("fleet phase = %s (%v), want promoted", got, fleet.Phases())
	}
	for i := 0; i < n; i++ {
		if gen := ss.Shard(i).Kernel.Generation(); gen != 2 {
			t.Errorf("shard %d kernel generation = %d, want 2", i, gen)
		}
		if ss.Shard(i).Runtime.Monitor("lat-guard") == nil {
			t.Errorf("shard %d lost lat-guard across promotion", i)
		}
	}
	if got := ss.Telemetry().Counters.RolloutPromotions.Value(); got != uint64(n) {
		t.Errorf("merged rollout_promotions_total = %d, want %d (one per shard)", got, n)
	}
	if stats := ss.FleetStats("lat-guard"); stats.Evals == 0 || stats.ActionsFired == 0 {
		t.Errorf("fleet stats show no activity: %+v", stats)
	}
}
