package experiments

import (
	"fmt"
	"time"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
)

// ProvOverheadResult is the sampled-provenance overhead measurement:
// the same steady-state hook-fire loop — kernel hook dispatch into a
// healthy monitor evaluation, the path every production guardrail fire
// takes — timed with and without a decision recorder attached. The
// simulated quantities are identical either way (that is checked
// separately by the BENCH_fig2.json exact diff); this measures the
// wall-clock cost the capture layer adds to a fire.
type ProvOverheadResult struct {
	Fires             int     `json:"fires"`
	Trials            int     `json:"trials"`
	HealthyEvery      int     `json:"healthy_every"`
	BaselineNSPerFire float64 `json:"baseline_ns_per_fire"`
	SampledNSPerFire  float64 `json:"sampled_ns_per_fire"`
	// Overhead is (sampled - baseline) / baseline; negative values clamp
	// to 0 (measurement noise in the recorder's favour).
	Overhead float64 `json:"overhead"`
	Tol      float64 `json:"tol"`
	Pass     bool    `json:"pass"`
}

// Render formats the measurement as a report row.
func (r *ProvOverheadResult) Render() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf(
		"provenance overhead (steady-state hook fire, best of %d trials x %d fires, 1/%d healthy sampling)\n"+
			"  baseline %.1f ns/fire   sampled %.1f ns/fire   overhead %+.2f%% (budget %.0f%%)  %s",
		r.Trials, r.Fires, r.HealthyEvery,
		r.BaselineNSPerFire, r.SampledNSPerFire, 100*r.Overhead, 100*r.Tol, verdict)
}

// provOverheadLoop builds a hook-triggered guardrail (the throughput
// sweep's shard-lat spec) and returns a closure performing one
// steady-state fire the way every workload in this repo drives one —
// the policy publishes its signal, then the kernel hook dispatches
// into a healthy evaluation (see the shard-throughput load loop).
// With rec non-nil the runtime records sampled decision provenance.
func provOverheadLoop(rec *provenance.Recorder) (func(), error) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	if rec != nil {
		rt.SetProvenance(rec)
	}
	if _, err := rt.LoadSource(shardGuardSrc, monitor.Options{}); err != nil {
		return nil, err
	}
	lat := st.Intern("lat_ma")
	j := 0
	fire := func() {
		st.SaveID(lat, 0.10+0.01*float64(j%80)) // always < 0.95: rule holds
		k.Fire("io_done", 0.25)
		j++
	}
	fire() // warm lazy state
	return fire, nil
}

// RunProvOverhead measures the wall-clock cost sampled provenance adds
// to a steady-state guardrail fire, best-of-trials to reject scheduler
// noise, and fails when it exceeds tol (fractional, e.g. 0.05 for the
// 5% budget).
func RunProvOverhead(fires, trials int, tol float64) (*ProvOverheadResult, error) {
	if fires <= 0 {
		fires = 2_000_000
	}
	if trials <= 0 {
		trials = 8
	}
	base, err := provOverheadLoop(nil)
	if err != nil {
		return nil, fmt.Errorf("provoverhead: baseline: %w", err)
	}
	rec := provenance.New(4096, provenance.DefaultHealthyEvery)
	sampled, err := provOverheadLoop(rec)
	if err != nil {
		return nil, fmt.Errorf("provoverhead: sampled: %w", err)
	}

	timeOne := func(fire func()) float64 {
		start := time.Now()
		for i := 0; i < fires; i++ {
			fire()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(fires)
	}
	// Warm both loops, then alternate base/sampled trials so clock
	// frequency drift and co-tenant noise land on both sides equally —
	// timing all baseline trials in one block and all sampled trials in
	// another lets a mid-measurement frequency step masquerade as
	// recorder overhead. Best-of per side rejects the slow outliers.
	base()
	sampled()
	var baseNS, sampledNS float64
	for t := 0; t < trials; t++ {
		if b := timeOne(base); t == 0 || b < baseNS {
			baseNS = b
		}
		if s := timeOne(sampled); t == 0 || s < sampledNS {
			sampledNS = s
		}
	}

	overhead := (sampledNS - baseNS) / baseNS
	if overhead < 0 {
		overhead = 0
	}
	return &ProvOverheadResult{
		Fires: fires, Trials: trials,
		HealthyEvery:      provenance.DefaultHealthyEvery,
		BaselineNSPerFire: baseNS, SampledNSPerFire: sampledNS,
		Overhead: overhead, Tol: tol, Pass: overhead <= tol,
	}, nil
}
