package experiments

import (
	"strings"
	"testing"

	"guardrails/internal/kernel"
)

func TestP1DriftExperiment(t *testing.T) {
	r, err := RunP1Drift(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CalmPSI > 0.25 {
		t.Errorf("calm PSI = %v, should be under threshold", r.CalmPSI)
	}
	if r.ShiftedPSI < 0.25 {
		t.Errorf("shifted PSI = %v, should cross threshold", r.ShiftedPSI)
	}
	if r.DetectedAt == 0 || r.DetectedAt <= r.ShiftAt {
		t.Errorf("detection at %v (shift %v)", r.DetectedAt, r.ShiftAt)
	}
	if r.DetectedAt > r.ShiftAt+2*kernel.Second {
		t.Errorf("detection too slow: %v", r.DetectedAt-r.ShiftAt)
	}
	if r.RetrainedAt == 0 {
		t.Error("retraining never queued")
	}
	if r.Reports == 0 {
		t.Error("no violation reports")
	}
	if !strings.Contains(r.Render(), "P1") {
		t.Error("render broken")
	}
}

func TestP2RobustnessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	rows, err := RunP2Robustness(2, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	clean, noisy := rows[0], rows[1]
	if noisy.LearnedCoV <= clean.LearnedCoV {
		t.Errorf("noise should raise learned CoV: %v -> %v", clean.LearnedCoV, noisy.LearnedCoV)
	}
	if noisy.LearnedCoV <= noisy.AIMDCoV {
		t.Errorf("learned CoV %v should exceed AIMD %v under noise", noisy.LearnedCoV, noisy.AIMDCoV)
	}
	if !noisy.GuardedFired {
		t.Error("guardrail did not fire under noise")
	}
	if noisy.GuardedCoV >= noisy.LearnedCoV {
		t.Errorf("guarded CoV %v should be calmer than unguarded %v", noisy.GuardedCoV, noisy.LearnedCoV)
	}
	if clean.GuardedFired {
		t.Error("guardrail fired on a clean run")
	}
	if !strings.Contains(RenderP2(rows), "P2") {
		t.Error("render broken")
	}
}

func TestP3OutOfBoundsExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long drive")
	}
	r, err := RunP3OutOfBounds(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.UnguardedIllegal == 0 {
		t.Fatal("unguarded policy never emitted an illegal tier (experiment vacuous)")
	}
	if r.GuardedIllegal >= r.UnguardedIllegal/2 {
		t.Errorf("guardrail barely helped: %d vs %d illegal", r.GuardedIllegal, r.UnguardedIllegal)
	}
	if r.FinalPolicy != "frequency" {
		t.Errorf("final policy = %q", r.FinalPolicy)
	}
	if r.ReplacedAt == 0 {
		t.Error("REPLACE never happened")
	}
	if r.GuardedLatencyNS >= r.UnguardedLatencyNS {
		t.Errorf("guarded latency %v should beat unguarded %v", r.GuardedLatencyNS, r.UnguardedLatencyNS)
	}
	if !strings.Contains(r.Render(), "P3") {
		t.Error("render broken")
	}
}

func TestP4QualityExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long drive")
	}
	r, err := RunP4Quality(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.CalmLearnedHit <= r.CalmRandomHit {
		t.Errorf("calm: learned %v should beat random %v", r.CalmLearnedHit, r.CalmRandomHit)
	}
	if r.FinalPolicy != "lru" {
		t.Errorf("final policy = %q (guardrail did not fire)", r.FinalPolicy)
	}
	if r.ReplacedAtAccess <= 40000 {
		t.Errorf("replaced during calm phase at access %d", r.ReplacedAtAccess)
	}
	if !strings.Contains(r.Render(), "P4") {
		t.Error("render broken")
	}
}

func TestP5OverheadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system sweep")
	}
	rows, err := RunP5Overhead(5, []kernel.Time{
		6 * kernel.Microsecond, 400 * kernel.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cheap, costly := rows[0], rows[1]
	if !cheap.MLFinal {
		t.Error("cheap inference should stay enabled")
	}
	if cheap.OverheadRatio >= 1 {
		t.Errorf("cheap ratio = %v", cheap.OverheadRatio)
	}
	if costly.MLFinal {
		t.Error("costly inference should be disabled by the guardrail")
	}
	if costly.GuardedMAUS >= costly.UnguardedMAUS {
		t.Errorf("guarded MA %v should beat unguarded %v at high cost",
			costly.GuardedMAUS, costly.UnguardedMAUS)
	}
	if !strings.Contains(RenderP5(rows), "P5") {
		t.Error("render broken")
	}
}

func TestP6FairnessExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("three scheduler runs")
	}
	r, err := RunP6Fairness(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.LearnedMaxWait < 100*kernel.Millisecond {
		t.Fatalf("learned SJF never starved (experiment vacuous): %v", r.LearnedMaxWait)
	}
	if r.LearnedMeanResponse >= r.CFSMeanResponse {
		t.Errorf("learned mean %v should beat CFS %v", r.LearnedMeanResponse, r.CFSMeanResponse)
	}
	if r.FinalPicker != "cfs" {
		t.Errorf("final picker = %q", r.FinalPicker)
	}
	if r.GuardedMaxWait >= r.LearnedMaxWait {
		t.Errorf("guarded max wait %v should beat unguarded %v", r.GuardedMaxWait, r.LearnedMaxWait)
	}
	if !strings.Contains(r.Render(), "P6") {
		t.Error("render broken")
	}
}

func TestOscillationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("two 60s phases")
	}
	r, err := RunOscillation(7)
	if err != nil {
		t.Fatal(err)
	}
	if r.TogglesNoHysteresis < 4 {
		t.Errorf("expected oscillation without hysteresis, got %d toggles", r.TogglesNoHysteresis)
	}
	if r.TogglesWithHysteresis >= r.TogglesNoHysteresis {
		t.Errorf("hysteresis did not damp: %d vs %d",
			r.TogglesWithHysteresis, r.TogglesNoHysteresis)
	}
	if !strings.Contains(r.Render(), "feedback") {
		t.Error("render broken")
	}
}

func TestTriggerSweepExperiment(t *testing.T) {
	rows, err := RunTriggerSweep(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]TriggerRow{}
	for _, r := range rows {
		byName[r.Mechanism] = r
	}
	fast := byName["TIMER 10ms"]
	slow := byName["TIMER 5s"]
	dep := byName["dependency"]
	if fast.Detection < 0 || slow.Detection < 0 || dep.Detection < 0 {
		t.Fatalf("some mechanism never detected: %+v", rows)
	}
	if fast.Detection >= slow.Detection {
		t.Error("faster timer should detect sooner")
	}
	if fast.Evals <= slow.Evals {
		t.Error("faster timer should evaluate more")
	}
	// Dependency triggering detects within one write gap...
	if dep.Detection > 10*kernel.Millisecond {
		t.Errorf("dependency detection = %v", dep.Detection)
	}
	// ...and costs per-write evaluations (more than slow timers, fewer
	// than is possible for very fast timers on quiet stores).
	if dep.Evals == 0 {
		t.Error("dependency mechanism never evaluated")
	}
	if !strings.Contains(RenderTriggers(rows), "trigger") {
		t.Error("render broken")
	}
}

func TestVMMicro(t *testing.T) {
	rows, err := RunVMMicro()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Instructions <= 0 || r.ExecNSPerEval <= 0 || r.StepsPerEval <= 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		// Monitor evaluation must be sub-microsecond-ish: the paper's
		// in-kernel budget argument. Allow generous CI slack.
		if r.ExecNSPerEval > 50000 {
			t.Errorf("%s eval cost %vns implausibly high", r.Program, r.ExecNSPerEval)
		}
	}
	if !strings.Contains(RenderVMMicro(rows), "VM") {
		t.Error("render broken")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
		Notes:   []string{"a note"},
	}
	out := tb.String()
	for _, want := range []string{"demo", "long_column", "yyyy", "note: a note", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
