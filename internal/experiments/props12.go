package experiments

import (
	"fmt"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/netcc"
	"guardrails/internal/properties"
	"guardrails/internal/trace"
)

// P1Result is the in-distribution-inputs experiment (Figure 1, P1): a
// drift detector watches a model input feature; when the workload
// shifts, the PSI crosses the guardrail threshold, the violation is
// reported, and retraining is queued (actions A1 + A3).
type P1Result struct {
	CalmPSI     float64
	ShiftedPSI  float64
	ShiftAt     kernel.Time
	DetectedAt  kernel.Time
	RetrainedAt kernel.Time
	Reports     uint64
}

// RunP1Drift runs the P1 experiment.
func RunP1Drift(seed int64) (*P1Result, error) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)

	det, err := properties.NewDriftDetector(st, "io_feature", 0, 100, 20, 200)
	if err != nil {
		return nil, err
	}
	rng := trace.NewRand(seed)
	for i := 0; i < 5000; i++ {
		det.AddReference(rng.NormFloat64()*10 + 30)
	}

	spec := det.Spec("p1-input-drift", "io_feature", "io_model", 0.25, float64(100*kernel.Millisecond))
	if _, err := rt.LoadSource(spec, monitor.Options{}); err != nil {
		return nil, err
	}

	res := &P1Result{ShiftAt: 5 * kernel.Second}
	// Feature writer: one observation per 2ms, shifting mid-run.
	k.Every(0, 2*kernel.Millisecond, 10*kernel.Second, func(now kernel.Time) {
		mean := 30.0
		if now >= res.ShiftAt {
			mean = 70
		}
		det.Observe(rng.NormFloat64()*10 + mean)
	})
	k.Every(0, 100*kernel.Millisecond, 10*kernel.Second, func(now kernel.Time) {
		psi := st.Load(properties.DriftKey("io_feature"))
		if now < res.ShiftAt {
			res.CalmPSI = psi
		} else if psi > res.ShiftedPSI {
			res.ShiftedPSI = psi
		}
		if res.DetectedAt == 0 && rt.Log.Total() > 0 {
			res.DetectedAt = now
		}
		if res.RetrainedAt == 0 && len(rt.Retrainer.Pending()) > 0 {
			res.RetrainedAt = now
		}
	})
	k.RunUntil(10*kernel.Second + 1)
	res.Reports = rt.Log.Total()
	return res, nil
}

// Render formats the P1 result.
func (r *P1Result) Render() string {
	t := &Table{
		Title:   "P1: in-distribution inputs (drift detection, actions A1+A3)",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"calm PSI", f3(r.CalmPSI)},
			{"peak shifted PSI", f3(r.ShiftedPSI)},
			{"workload shift at", r.ShiftAt.String()},
			{"violation reported at", r.DetectedAt.String()},
			{"retrain queued at", r.RetrainedAt.String()},
			{"total reports", fmt.Sprintf("%d", r.Reports)},
		},
	}
	return t.String()
}

// P2Row is one noise level of the robustness sweep.
type P2Row struct {
	NoiseSigma   float64
	LearnedCoV   float64
	AIMDCoV      float64
	GuardedCoV   float64
	LearnedUtil  float64
	GuardedUtil  float64
	GuardedFired bool
}

// RunP2Robustness sweeps RTT measurement noise and compares the learned
// congestion controller, the AIMD baseline, and the guarded learned
// controller whose P2 guardrail falls back to AIMD when the decision
// CoV exceeds the bound.
func RunP2Robustness(seed int64, sigmas []float64) ([]P2Row, error) {
	learned := netcc.NewLearned(seed)
	if _, err := learned.Clone(netcc.DelayGradientTeacher{}, netcc.DefaultPathConfig()); err != nil {
		return nil, err
	}
	var rows []P2Row
	for _, sigma := range sigmas {
		row := P2Row{NoiseSigma: sigma}
		cfg := netcc.DefaultRunConfig(seed + int64(sigma*100))
		cfg.NoiseSigma = sigma

		mL, err := netcc.Run(kernel.New(), nil, learned, nil, cfg)
		if err != nil {
			return nil, err
		}
		row.LearnedCoV, row.LearnedUtil = mL.RateCoV, mL.Utilization

		mA, err := netcc.Run(kernel.New(), nil, netcc.NewAIMD(), nil, cfg)
		if err != nil {
			return nil, err
		}
		row.AIMDCoV = mA.RateCoV

		// Guarded: P2 guardrail disables the learned controller when the
		// published rate CoV exceeds the bound.
		k := kernel.New()
		st := featurestore.New()
		rt := monitor.New(k, st)
		// The TIMER starts at 10s: the slow-start ramp legitimately moves
		// the rate, so robustness is only judged at steady state.
		spec := properties.BuildSpec("p2-cc-robust",
			[]string{fmt.Sprintf("TIMER(1e10, %g)", float64(200*kernel.Millisecond))},
			[]string{fmt.Sprintf("LOAD(%s) <= 0.15", netcc.KeyRateCoV)},
			[]string{fmt.Sprintf("SAVE(%s, 0)", netcc.KeyCCEnabled)},
		)
		ms, err := rt.LoadSource(spec, monitor.Options{ViolationStreak: 2})
		if err != nil {
			return nil, err
		}
		mG, err := netcc.Run(k, st, learned, netcc.NewAIMD(), cfg)
		if err != nil {
			return nil, err
		}
		row.GuardedCoV, row.GuardedUtil = mG.RateCoV, mG.Utilization
		row.GuardedFired = ms[0].Stats().ActionsFired > 0
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderP2 formats the robustness sweep.
func RenderP2(rows []P2Row) string {
	t := &Table{
		Title:   "P2: robustness to measurement noise (decision CoV; guardrail REPLACEs learned CC with AIMD)",
		Columns: []string{"noise_sigma", "learned_cov", "aimd_cov", "guarded_cov", "learned_util", "guarded_util", "guardrail_fired"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			f2(r.NoiseSigma), f3(r.LearnedCoV), f3(r.AIMDCoV), f3(r.GuardedCoV),
			f2(r.LearnedUtil), f2(r.GuardedUtil), fmt.Sprintf("%v", r.GuardedFired),
		})
	}
	return t.String()
}
