package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"guardrails/internal/rollout"
)

// TestRolloutChaosAcceptance is the ISSUE acceptance gate: a healthy
// canary auto-promotes (through transient admission flakes), bad
// canaries auto-roll back before fleet-wide exposure, and breakglass
// quarantines fleet-wide in one call.
func TestRolloutChaosAcceptance(t *testing.T) {
	res, err := RunRolloutChaos(DefaultRolloutChaosConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("rollout chaos failed:\n%s", strings.Join(res.Failures, "\n"))
	}
	if res.Promotions != 1 || res.Rollbacks != 2 {
		t.Errorf("promotions=%d rollbacks=%d, want 1/2", res.Promotions, res.Rollbacks)
	}
	if res.AdmitRetries == 0 {
		t.Error("no admission retries recorded despite injected flakes")
	}
	if res.Breakglass != 1 {
		t.Errorf("breakglass_total = %d, want 1", res.Breakglass)
	}
	// Every rollback must have happened at a generation that never
	// became the fleet generation.
	for _, rec := range res.History {
		if rec.Event == "rolled_back" && rec.Gen <= res.FinalGeneration {
			t.Errorf("rolled-back generation %d is at or below the promoted generation %d", rec.Gen, res.FinalGeneration)
		}
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

// TestRolloutChaosDeterministic reruns the experiment under the same
// seed and expects an identical JSON artifact — the property the CI
// smoke job relies on.
func TestRolloutChaosDeterministic(t *testing.T) {
	a, err := RunRolloutChaos(DefaultRolloutChaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRolloutChaos(DefaultRolloutChaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("same seed produced different rollout chaos artifacts")
	}
}

// TestRolloutChaosActOrder pins the phase sequence: the storm rollback
// fires in shadow (never a canary record for gen 3), the bad-action
// rollback fires in canary (gen 4 reached canary).
func TestRolloutChaosActOrder(t *testing.T) {
	res, err := RunRolloutChaos(DefaultRolloutChaosConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	var gen3Canary, gen4Canary bool
	for _, rec := range res.History {
		if rec.Event == "phase:canary" {
			switch rec.Gen {
			case 3:
				gen3Canary = true
			case 4:
				gen4Canary = true
			}
		}
	}
	if gen3Canary {
		t.Error("violation storm reached canary; the shadow gate should have caught it")
	}
	if !gen4Canary {
		t.Error("bad-action candidate never reached canary")
	}
	if len(res.Acts) != 4 {
		t.Fatalf("acts = %d, want 4", len(res.Acts))
	}
	if res.Acts[0].Phase != rollout.PhasePromoted.String() ||
		res.Acts[1].Phase != rollout.PhaseRolledBack.String() ||
		res.Acts[2].Phase != rollout.PhaseRolledBack.String() {
		t.Errorf("act phases: %+v", res.Acts)
	}
}
