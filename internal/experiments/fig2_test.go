package experiments

import (
	"strings"
	"testing"

	"guardrails/internal/kernel"
)

// TestFig2Shape verifies the headline reproduction: the guardrail fires
// shortly after the shift and the guarded system's steady-state latency
// beats the unguarded one.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 run is seconds-long")
	}
	cfg := DefaultFig2Config(1)
	r, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Fatal("empty series")
	}
	if r.GuardrailFiredAt == 0 {
		t.Fatal("guardrail never fired")
	}
	if r.GuardrailFiredAt <= r.ShiftAt {
		t.Errorf("guardrail fired at %v, before the shift at %v", r.GuardrailFiredAt, r.ShiftAt)
	}
	// Detection within a few seconds of the shift (1s timer + window fill).
	if r.GuardrailFiredAt > r.ShiftAt+10*kernel.Second {
		t.Errorf("detection too slow: shift %v, fired %v", r.ShiftAt, r.GuardrailFiredAt)
	}
	if r.FalseSubmitRateAtTrigger <= 0.05 {
		t.Errorf("trigger rate = %v, want > threshold", r.FalseSubmitRateAtTrigger)
	}
	// The paper's claim: after mitigation the guarded average is lower.
	if r.GuardedTailUS >= r.UnguardedTailUS {
		t.Errorf("guarded tail %.1fus should beat unguarded %.1fus",
			r.GuardedTailUS, r.UnguardedTailUS)
	}
	// And the unguarded system visibly degraded from the calm phase.
	if r.UnguardedTailUS < 1.2*r.CalmUS {
		t.Errorf("unguarded degradation too small: calm %.1f, tail %.1f",
			r.CalmUS, r.UnguardedTailUS)
	}
	out := r.Render()
	for _, want := range []string{"Figure 2", "guardrail fired", "linnos_w_guardrails"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
