package experiments

import (
	"fmt"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/linnos"
	"guardrails/internal/monitor"
	"guardrails/internal/properties"
	"guardrails/internal/sched"
)

// P5Row is one inference-cost level of the overhead experiment.
type P5Row struct {
	InferenceCost kernel.Time
	OverheadRatio float64
	MLFinal       bool
	// Cumulative mean read latencies in microseconds.
	GuardedMAUS   float64
	BaselineMAUS  float64
	UnguardedMAUS float64
}

// RunP5Overhead sweeps the model's inference cost. For each level, a
// baseline system and an ML system run the same workload; the overhead
// monitor compares the windowed benefit (baseline latency − ML latency)
// against the inference spend, and the guardrail disables the model once
// inference stops paying for itself (Figure 1's P5).
// p5Params is the overhead experiment's stack: a coarse (6ms) revoke
// timeout makes the baseline's hedging expensive enough that the
// model's upfront predictions carry an unambiguous benefit, so the
// sweep isolates the effect of inference cost.
func p5Params(cost kernel.Time) stackParams {
	return stackParams{
		gcDuration:    16 * kernel.Millisecond,
		inferenceCost: cost,
		revokeTimeout: 6 * kernel.Millisecond,
	}
}

func RunP5Overhead(seed int64, costs []kernel.Time) ([]P5Row, error) {
	model, err := trainModel(seed, p5Params(0))
	if err != nil {
		return nil, err
	}
	var rows []P5Row
	for _, cost := range costs {
		row, err := runP5Level(seed, model, cost)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// runP5Level runs baseline, unguarded-ML, and guarded-ML systems at one
// inference-cost level.
func runP5Level(seed int64, model *linnos.Classifier, cost kernel.Time) (*P5Row, error) {
	build := func(withModel bool) (*fig2System, error) {
		var m *linnos.Classifier
		if withModel {
			m = model
		}
		return newStack(seed+200, m, p5Params(cost))
	}
	baseline, err := build(false)
	if err != nil {
		return nil, err
	}
	unguarded, err := build(true)
	if err != nil {
		return nil, err
	}
	guarded, err := build(true)
	if err != nil {
		return nil, err
	}

	rt := monitor.New(guarded.k, guarded.st)
	ov := properties.NewOverheadMonitor(guarded.st, "linnos", 64)
	spec := ov.Spec("p5-overhead", "linnos", linnos.KeyMLEnabled, 1.0, float64(500*kernel.Millisecond))
	ms, err := rt.LoadSource(spec, monitor.Options{ViolationStreak: 3})
	if err != nil {
		return nil, err
	}

	row := &P5Row{InferenceCost: cost}
	const total = 20 * kernel.Second
	meanLat := func(s *fig2System) float64 {
		st := s.engine.Stats()
		if st.Reads == 0 {
			return 0
		}
		return float64(st.TotalLatency) / float64(st.Reads)
	}
	for t := 250 * kernel.Millisecond; t <= total; t += 250 * kernel.Millisecond {
		baseline.run(t)
		unguarded.run(t)
		guarded.run(t)
		// Feed the overhead monitor after warmup: benefit = cumulative
		// mean latency saved versus the baseline system (cumulative
		// means are far less noisy than instantaneous window averages).
		if t >= 2*kernel.Second {
			ov.Observe(float64(cost), meanLat(baseline)-meanLat(guarded))
			// Report the ratio the guardrail judged while the model was
			// still live (after it disables the model, the gap closes and
			// the published ratio degenerates to the sentinel).
			if guarded.engine.MLEnabled() {
				row.OverheadRatio = guarded.st.Load(properties.OverheadKey("linnos"))
			}
		}
	}
	row.MLFinal = guarded.engine.MLEnabled()
	row.GuardedMAUS = meanLat(guarded) / 1000
	row.BaselineMAUS = meanLat(baseline) / 1000
	row.UnguardedMAUS = meanLat(unguarded) / 1000
	_ = ms
	return row, nil
}

// RenderP5 formats the overhead sweep.
func RenderP5(rows []P5Row) string {
	t := &Table{
		Title:   "P5: decision overhead (inference cost vs. benefit; guardrail disables unprofitable model)",
		Columns: []string{"inference_cost", "overhead_ratio", "ml_enabled_final", "baseline_mean_us", "unguarded_mean_us", "guarded_mean_us"},
	}
	for _, r := range rows {
		ratio := fmt.Sprintf("%.3g", r.OverheadRatio)
		if r.OverheadRatio >= 1e6 {
			ratio = "unprofitable (no net benefit)"
		}
		t.Rows = append(t.Rows, []string{
			r.InferenceCost.String(), ratio, fmt.Sprintf("%v", r.MLFinal),
			f2(r.BaselineMAUS), f2(r.UnguardedMAUS), f2(r.GuardedMAUS),
		})
	}
	t.Notes = append(t.Notes,
		"overhead_ratio = inference spend / latency benefit over the baseline; > 1 means the model costs more than it saves")
	return t.String()
}

// P6Result is the fairness/liveness experiment (Figure 1, P6): the
// learned SJF picker starves long jobs; the guardrail detects ready
// tasks waiting beyond the bound and REPLACEs the picker with CFS.
type P6Result struct {
	LearnedMeanResponse kernel.Time
	LearnedMaxWait      kernel.Time
	LearnedStarved      int
	CFSMeanResponse     kernel.Time
	CFSMaxWait          kernel.Time
	CFSStarved          int
	GuardedMeanResponse kernel.Time
	GuardedMaxWait      kernel.Time
	GuardedStarved      int
	ReplacedAt          kernel.Time
	FinalPicker         string
}

// RunP6Fairness runs the P6 experiment.
func RunP6Fairness(seed int64) (*P6Result, error) {
	cfg := sched.DefaultSimConfig(seed)
	cfg.ArrivalRate = 170
	const jobs = 4000

	train := func() (*sched.LearnedSJF, error) {
		k := kernel.New()
		st := featurestore.New()
		s, err := sched.NewSim(k, st, cfg, func() sched.Picker { return sched.NewCFS() })
		if err != nil {
			return nil, err
		}
		s.Start(sched.GenerateJobs(cfg, 2000))
		k.Run()
		p := sched.NewLearnedSJF(seed + 1)
		if _, err := p.Train(s.Completed()); err != nil {
			return nil, err
		}
		return p, nil
	}

	runOne := func(provider func(*monitor.Runtime) func() sched.Picker, guard bool) (sched.Metrics, kernel.Time, string, error) {
		k := kernel.New()
		st := featurestore.New()
		rt := monitor.New(k, st)
		s, err := sched.NewSim(k, st, cfg, provider(rt))
		if err != nil {
			return sched.Metrics{}, 0, "", err
		}
		var firedAt kernel.Time
		final := ""
		if guard {
			spec := properties.BuildSpec("p6-no-starvation",
				[]string{properties.TimerTrigger(float64(50 * kernel.Millisecond))},
				[]string{fmt.Sprintf("LOAD(%s) <= 100", sched.KeyMaxWaitMS)},
				[]string{
					fmt.Sprintf("REPORT(LOAD(%s))", sched.KeyMaxWaitMS),
					"REPLACE(learned_sjf, cfs)",
				},
			)
			ms, err := rt.LoadSource(spec, monitor.Options{})
			if err != nil {
				return sched.Metrics{}, 0, "", err
			}
			_ = ms
		}
		s.Start(sched.GenerateJobs(cfg, jobs))
		// Arrivals span ~25s; 120s leaves ample drain time. (k.Run would
		// never return here: the guardrail's periodic TIMER refills the
		// event queue forever.)
		k.RunUntil(120 * kernel.Second)
		if guard {
			final, _, _ = rt.Policies.Current("sched_picker")
			for _, sw := range rt.Policies.History("sched_picker") {
				if sw.To == "cfs" {
					firedAt = sw.Time
					break
				}
			}
		}
		return s.Metrics(), firedAt, final, nil
	}

	res := &P6Result{}

	// Pure learned SJF.
	lp, err := train()
	if err != nil {
		return nil, err
	}
	m, _, _, err := runOne(func(*monitor.Runtime) func() sched.Picker {
		return func() sched.Picker { return lp }
	}, false)
	if err != nil {
		return nil, err
	}
	res.LearnedMeanResponse, res.LearnedMaxWait, res.LearnedStarved = m.MeanResponse, m.MaxReadyWait, m.StarvedEvents

	// Pure CFS.
	m, _, _, err = runOne(func(*monitor.Runtime) func() sched.Picker {
		cfs := sched.NewCFS()
		return func() sched.Picker { return cfs }
	}, false)
	if err != nil {
		return nil, err
	}
	res.CFSMeanResponse, res.CFSMaxWait, res.CFSStarved = m.MeanResponse, m.MaxReadyWait, m.StarvedEvents

	// Guarded learned SJF: registry-backed picker slot.
	lp2, err := train()
	if err != nil {
		return nil, err
	}
	m, firedAt, final, err := runOne(func(rt *monitor.Runtime) func() sched.Picker {
		if err := rt.Policies.DefineSlot("sched_picker", map[string]any{
			"learned_sjf": sched.Picker(lp2),
			"cfs":         sched.Picker(sched.NewCFS()),
		}, "learned_sjf"); err != nil {
			panic(err)
		}
		return func() sched.Picker {
			_, cur, err := rt.Policies.Current("sched_picker")
			if err != nil {
				return sched.NewCFS()
			}
			return cur.(sched.Picker)
		}
	}, true)
	if err != nil {
		return nil, err
	}
	res.GuardedMeanResponse, res.GuardedMaxWait, res.GuardedStarved = m.MeanResponse, m.MaxReadyWait, m.StarvedEvents
	res.ReplacedAt = firedAt
	res.FinalPicker = final
	return res, nil
}

// Render formats the P6 result.
func (r *P6Result) Render() string {
	t := &Table{
		Title:   "P6: fairness and liveness (starvation bound 100ms; guardrail REPLACEs learned SJF with CFS)",
		Columns: []string{"picker", "mean_response", "max_ready_wait", "starved_dispatches"},
		Rows: [][]string{
			{"learned-sjf (unguarded)", r.LearnedMeanResponse.String(), r.LearnedMaxWait.String(), fmt.Sprintf("%d", r.LearnedStarved)},
			{"cfs", r.CFSMeanResponse.String(), r.CFSMaxWait.String(), fmt.Sprintf("%d", r.CFSStarved)},
			{"learned-sjf (guarded)", r.GuardedMeanResponse.String(), r.GuardedMaxWait.String(), fmt.Sprintf("%d", r.GuardedStarved)},
		},
		Notes: []string{fmt.Sprintf("guardrail replaced picker with %q at %s", r.FinalPicker, r.ReplacedAt)},
	}
	return t.String()
}
