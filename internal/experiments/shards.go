package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
)

// Shard throughput experiment: how many hook fires per wall-clock
// second the monitor plane sustains as the kernel shards out. Each
// shard runs the same FUNCTION-triggered guardrail against its own
// io_done stream, so fires dispatch on the shard's lock-free hook path
// and evaluations touch only shard-local feature cells; the pool
// barrier folds a cross-shard latency aggregate every quantum to keep
// the epoch machinery on the measured path. Simulated results (fires,
// evals, events) are deterministic per configuration; the wall-clock
// rate is the measured quantity and scales with real cores.

// shardGuardSrc is the per-shard guardrail under test.
const shardGuardSrc = `
guardrail shard-lat {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.95 },
    action: { SAVE(alert, 1) }
}`

// ShardThroughputConfig parameterizes one throughput measurement.
type ShardThroughputConfig struct {
	// Shards is the kernel pool width.
	Shards int
	// Quantum is the barrier interval (0 = kernel.DefaultQuantum).
	Quantum kernel.Time
	// Duration is the simulated run length.
	Duration kernel.Time
	// BatchEvery / BatchSize shape the load: every BatchEvery of
	// simulated time each shard fires io_done BatchSize times.
	BatchEvery kernel.Time
	BatchSize  int
}

// DefaultShardThroughputConfig is the committed-benchmark load shape.
func DefaultShardThroughputConfig(shards int) ShardThroughputConfig {
	return ShardThroughputConfig{
		Shards:     shards,
		Duration:   200 * kernel.Millisecond,
		BatchEvery: 10 * kernel.Microsecond,
		BatchSize:  8,
	}
}

// ShardThroughputResult is one configuration's measurement. HookFires,
// Evals, and Events are deterministic for a given config; WallMS and
// FiresPerSec are wall-clock measurements.
type ShardThroughputResult struct {
	Shards      int     `json:"shards"`
	SimMS       float64 `json:"sim_ms"`
	Events      int     `json:"events"`
	HookFires   uint64  `json:"hook_fires"`
	Evals       uint64  `json:"evals"`
	WallMS      float64 `json:"wall_ms"`
	FiresPerSec float64 `json:"fires_per_sec"`
}

// RunShardThroughput runs one shard-count throughput measurement.
func RunShardThroughput(cfg ShardThroughputConfig) (*ShardThroughputResult, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shards: need at least one shard, got %d", cfg.Shards)
	}
	cs, err := compile.Source(shardGuardSrc)
	if err != nil {
		return nil, err
	}
	pool := kernel.NewPool(cfg.Shards, cfg.Quantum)
	stores := featurestore.NewSharded(cfg.Shards)
	stores.RegisterAggregate("lat_ma", featurestore.AggMean)
	pool.OnBarrier(func(kernel.Time, uint64) { stores.Aggregate() })

	mons := make([]*monitor.Monitor, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		k, st := pool.Shard(i), stores.Shard(i)
		rt := monitor.New(k, st)
		m, err := rt.Load(cs[0], monitor.Options{})
		if err != nil {
			return nil, err
		}
		mons[i] = m
		lat := st.Intern("lat_ma")
		shard := i
		j := 0
		k.Every(0, cfg.BatchEvery, 0, func(now kernel.Time) {
			st.SaveID(lat, 0.10+0.01*float64((j+shard)%80))
			for b := 0; b < cfg.BatchSize; b++ {
				k.Fire("io_done", float64(b))
			}
			j++
		})
	}

	start := time.Now()
	events := pool.RunUntil(cfg.Duration)
	wall := time.Since(start)

	var fires, evals uint64
	for i := 0; i < cfg.Shards; i++ {
		fires += pool.Shard(i).FireCount("io_done")
		evals += mons[i].Stats().Evals
	}
	wallSec := wall.Seconds()
	if wallSec <= 0 {
		wallSec = 1e-9
	}
	return &ShardThroughputResult{
		Shards:      cfg.Shards,
		SimMS:       float64(cfg.Duration) / float64(kernel.Millisecond),
		Events:      events,
		HookFires:   fires,
		Evals:       evals,
		WallMS:      wall.Seconds() * 1e3,
		FiresPerSec: float64(fires) / wallSec,
	}, nil
}

// BenchShards is the committed shard-throughput snapshot
// (BENCH_shards.json): one entry per swept shard count, stamped with
// the GOMAXPROCS the numbers were measured under so a single-core
// container's flat curve is not mistaken for a multi-core regression.
type BenchShards struct {
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Entries    []ShardThroughputResult `json:"entries"`
}

// ShardSweepCounts is the committed sweep: single loop, a fixed
// multi-shard point, and one shard per available core (deduplicated,
// ascending).
func ShardSweepCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := counts[:0]
	for _, n := range counts {
		if n >= 1 && !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RunShardSweep measures throughput for each shard count.
func RunShardSweep(counts []int) (*BenchShards, error) {
	b := &BenchShards{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, n := range counts {
		r, err := RunShardThroughput(DefaultShardThroughputConfig(n))
		if err != nil {
			return nil, err
		}
		b.Entries = append(b.Entries, *r)
	}
	return b, nil
}

// WriteJSON writes the snapshot as indented JSON.
func (b *BenchShards) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Render formats the sweep as a table.
func (b *BenchShards) Render() string {
	t := &Table{
		Title:   fmt.Sprintf("Shard throughput (GOMAXPROCS=%d)", b.GOMAXPROCS),
		Columns: []string{"shards", "sim ms", "events", "hook fires", "evals", "wall ms", "fires/sec"},
	}
	for _, e := range b.Entries {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e.Shards),
			fmt.Sprintf("%.0f", e.SimMS),
			fmt.Sprintf("%d", e.Events),
			fmt.Sprintf("%d", e.HookFires),
			fmt.Sprintf("%d", e.Evals),
			fmt.Sprintf("%.1f", e.WallMS),
			fmt.Sprintf("%.0f", e.FiresPerSec),
		})
	}
	t.Notes = append(t.Notes,
		"hook fires and evals are deterministic per config; wall ms and fires/sec are measured",
		"fires/sec scales with real cores: expect ~flat on GOMAXPROCS=1, rising with shards otherwise")
	return t.String()
}
