// Package experiments implements every experiment in the reproduction's
// index (DESIGN.md): the paper's Figure 2 case study, one experiment per
// row of the Figure 1 property/action taxonomy, and the §6 discussion
// ablations (guardrail oscillation, trigger-mechanism sweep, monitor
// microbenchmarks). Each experiment returns a structured result and can
// render itself as the paper-style rows/series; cmd/guardrail-bench and
// bench_test.go both drive this package.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
