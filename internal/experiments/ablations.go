package experiments

import (
	"fmt"
	"time"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/linnos"
	"guardrails/internal/monitor"
	"guardrails/internal/properties"
	"guardrails/internal/vm"
)

// reenableGuardrail re-enables the model once latency recovers — the
// second guardrail of the §6 feedback-loop study. Its property is
// "either the model is on, or latency is (still) bad"; the violation
// (model off AND latency healthy) triggers re-enablement.
const reenableGuardrail = `
guardrail reenable-ml {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(ml_enabled) == 1 || LOAD(io_latency_ma_us) > 1200 },
    action: { SAVE(ml_enabled, true) }
}`

// OscillationResult is the §6 feedback-loop study: two coupled
// guardrails (disable-on-false-submits, re-enable-on-recovery) can
// oscillate; hysteresis damps the loop.
type OscillationResult struct {
	TogglesNoHysteresis   int
	TogglesWithHysteresis int
	Evals                 uint64
}

// RunOscillation runs the guarded LinnOS stack through the shifted phase
// with both guardrails loaded, first without hysteresis, then with a
// violation streak + recovery window on the re-enable guardrail.
func RunOscillation(seed int64) (*OscillationResult, error) {
	model, err := trainFig2Model(seed)
	if err != nil {
		return nil, err
	}
	runOnce := func(hysteresis bool) (int, uint64, error) {
		sys, err := newFig2System(seed+300, model)
		if err != nil {
			return 0, 0, err
		}
		rt := monitor.New(sys.k, sys.st)
		if _, err := rt.LoadSource(Listing2, monitor.Options{}); err != nil {
			return 0, 0, err
		}
		opts := monitor.Options{}
		if hysteresis {
			opts.ViolationStreak = 5
		}
		ms, err := rt.LoadSource(reenableGuardrail, opts)
		if err != nil {
			return 0, 0, err
		}
		toggles := 0
		last := sys.st.Load(linnos.KeyMLEnabled)
		sys.st.Watch(linnos.KeyMLEnabled, func(_ string, v float64) {
			if v != last {
				toggles++
				last = v
			}
		})
		// Straight into the shifted phase: the conflict zone.
		sys.wl.SetWriteFraction(0.4)
		for t := kernel.Second; t <= 60*kernel.Second; t += kernel.Second {
			sys.run(t)
		}
		return toggles, ms[0].Stats().Evals, nil
	}
	res := &OscillationResult{}
	var evals uint64
	var terr error
	res.TogglesNoHysteresis, evals, terr = runOnce(false)
	if terr != nil {
		return nil, terr
	}
	res.Evals = evals
	res.TogglesWithHysteresis, _, terr = runOnce(true)
	if terr != nil {
		return nil, terr
	}
	return res, nil
}

// Render formats the oscillation study.
func (r *OscillationResult) Render() string {
	t := &Table{
		Title:   "§6 feedback loops: coupled guardrails oscillate; hysteresis damps the loop",
		Columns: []string{"configuration", "ml_enabled toggles (60s shifted phase)"},
		Rows: [][]string{
			{"disable + re-enable, no hysteresis", fmt.Sprintf("%d", r.TogglesNoHysteresis)},
			{"disable + re-enable, violation streak 5", fmt.Sprintf("%d", r.TogglesWithHysteresis)},
		},
	}
	return t.String()
}

// TriggerRow is one trigger mechanism in the §6 trigger study.
type TriggerRow struct {
	Mechanism string
	Detection kernel.Time // delay from quality drop to alarm
	Evals     uint64      // rule evaluations over the run (overhead)
}

// RunTriggerSweep compares periodic TIMER checking at several intervals
// against dependency-triggered checking (§6's "check only when relevant
// state changes"): a service-quality signal degrades at a known time;
// each mechanism races to set the alarm.
func RunTriggerSweep(seed int64) ([]TriggerRow, error) {
	const (
		shiftAt  = 2*kernel.Second + 3*kernel.Millisecond
		total    = 8 * kernel.Second
		writeGap = 5 * kernel.Millisecond
	)
	type variant struct {
		name     string
		interval kernel.Time // 0 = dependency trigger
	}
	variants := []variant{
		{"TIMER 10ms", 10 * kernel.Millisecond},
		{"TIMER 100ms", 100 * kernel.Millisecond},
		{"TIMER 1s", kernel.Second},
		{"TIMER 5s", 5 * kernel.Second},
		{"dependency", 0},
	}
	var rows []TriggerRow
	for _, v := range variants {
		k := kernel.New()
		st := featurestore.New()
		rt := monitor.New(k, st)
		interval := v.interval
		opts := monitor.Options{}
		if interval == 0 {
			// Dependency triggering with a sentinel long timer.
			interval = total * 10
			opts.DependencyTrigger = true
		}
		spec := properties.BuildSpec("quality-floor",
			[]string{properties.TimerTrigger(float64(interval))},
			[]string{"LOAD(svc_quality) >= 0.8"},
			[]string{"SAVE(alarm, 1)"},
		)
		ms, err := rt.LoadSource(spec, opts)
		if err != nil {
			return nil, err
		}
		var alarmAt kernel.Time
		st.Watch("alarm", func(_ string, val float64) {
			if val == 1 && alarmAt == 0 {
				alarmAt = k.Now()
			}
		})
		k.Every(0, writeGap, total, func(now kernel.Time) {
			q := 1.0
			if now >= shiftAt {
				q = 0.5
			}
			st.Save("svc_quality", q)
		})
		k.RunUntil(total + 1)
		row := TriggerRow{Mechanism: v.name, Evals: ms[0].Stats().Evals}
		if alarmAt > 0 {
			row.Detection = alarmAt - shiftAt
		} else {
			row.Detection = -1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTriggers formats the trigger study.
func RenderTriggers(rows []TriggerRow) string {
	t := &Table{
		Title:   "§6 trigger mechanisms: detection delay vs. checking overhead (8s run, quality drop at 2.003s)",
		Columns: []string{"mechanism", "detection_delay", "rule_evaluations"},
	}
	for _, r := range rows {
		det := "never"
		if r.Detection >= 0 {
			det = r.Detection.String()
		}
		t.Rows = append(t.Rows, []string{r.Mechanism, det, fmt.Sprintf("%d", r.Evals)})
	}
	t.Notes = append(t.Notes,
		"dependency triggering detects on the next relevant write at per-write cost; timers trade delay for fewer checks")
	return t.String()
}

// VMMicroResult holds the monitor-cost microbenchmark (supports the
// paper's in-kernel latency-budget argument).
type VMMicroResult struct {
	Program       string
	Instructions  int
	CompileNS     float64
	VerifyNS      float64
	ExecNSPerEval float64
	StepsPerEval  float64
}

// RunVMMicro measures compile, verify, and execution cost of the
// Listing 2 monitor and a wider synthetic guardrail.
func RunVMMicro() ([]VMMicroResult, error) {
	specs := []struct{ name, src string }{
		{"listing2", Listing2},
		{"wide-rule", properties.BuildSpec("wide",
			[]string{properties.TimerTrigger(1e9)},
			[]string{
				"LOAD(a) + LOAD(b) * 2 <= LOAD(c) / max(LOAD(d), 1)",
				"abs(LOAD(e) - LOAD(f)) < 10 || LOAD(g) == 0",
				"sqrt(LOAD(h)) <= log2(LOAD(i) + 1) + 5",
			},
			[]string{"REPORT(LOAD(a), LOAD(b))", "SAVE(knob, 0)"},
		)},
	}
	var out []VMMicroResult
	for _, s := range specs {
		// Compile cost.
		const compileIters = 200
		start := time.Now()
		var cs []*compile.Compiled
		var err error
		for i := 0; i < compileIters; i++ {
			cs, err = compile.Source(s.src)
			if err != nil {
				return nil, err
			}
		}
		compileNS := float64(time.Since(start).Nanoseconds()) / compileIters
		prog := cs[0].Program

		const verifyIters = 2000
		start = time.Now()
		for i := 0; i < verifyIters; i++ {
			if err := vm.Verify(prog, vm.NumBuiltinHelpers); err != nil {
				return nil, err
			}
		}
		verifyNS := float64(time.Since(start).Nanoseconds()) / verifyIters

		// Execution cost against a real store-backed env.
		k := kernel.New()
		st := featurestore.New()
		rt := monitor.New(k, st)
		ms, err := rt.Load(cs[0], monitor.Options{})
		if err != nil {
			return nil, err
		}
		for _, sym := range prog.Symbols {
			st.Save(sym, 1)
		}
		const execIters = 100000
		startSteps := ms.Stats().VMSteps
		start = time.Now()
		for i := 0; i < execIters; i++ {
			ms.Evaluate(0)
		}
		execNS := float64(time.Since(start).Nanoseconds()) / execIters
		steps := float64(ms.Stats().VMSteps-startSteps) / execIters

		out = append(out, VMMicroResult{
			Program:       s.name,
			Instructions:  len(prog.Code),
			CompileNS:     compileNS,
			VerifyNS:      verifyNS,
			ExecNSPerEval: execNS,
			StepsPerEval:  steps,
		})
	}
	return out, nil
}

// RenderVMMicro formats the microbenchmark.
func RenderVMMicro(rows []VMMicroResult) string {
	t := &Table{
		Title:   "Monitor VM microbenchmarks (host wall clock)",
		Columns: []string{"program", "insns", "compile_ns", "verify_ns", "exec_ns/eval", "vm_steps/eval"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Program, fmt.Sprintf("%d", r.Instructions),
			f2(r.CompileNS), f2(r.VerifyNS), f2(r.ExecNSPerEval), f2(r.StepsPerEval),
		})
	}
	return t.String()
}
