package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func TestShardThroughputDeterministicFields(t *testing.T) {
	cfg := DefaultShardThroughputConfig(2)
	cfg.Duration /= 4 // keep the unit test quick
	a, err := RunShardThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.HookFires == 0 || a.Evals == 0 || a.Events == 0 {
		t.Fatalf("empty measurement: %+v", a)
	}
	if a.HookFires != b.HookFires || a.Evals != b.Evals || a.Events != b.Events {
		t.Errorf("simulated quantities diverged: %+v vs %+v", a, b)
	}
	// Every fire triggers exactly one evaluation of the one guardrail.
	if a.Evals != a.HookFires {
		t.Errorf("evals = %d, want one per fire (%d)", a.Evals, a.HookFires)
	}
	if a.FiresPerSec <= 0 {
		t.Errorf("fires/sec = %g", a.FiresPerSec)
	}
}

func TestShardSweepCounts(t *testing.T) {
	counts := ShardSweepCounts()
	if counts[0] != 1 {
		t.Fatalf("sweep must start at one shard: %v", counts)
	}
	seen := map[int]bool{}
	for i, n := range counts {
		if seen[n] {
			t.Fatalf("duplicate shard count %d in %v", n, counts)
		}
		seen[n] = true
		if i > 0 && counts[i-1] >= n {
			t.Fatalf("sweep not ascending: %v", counts)
		}
	}
	if !seen[4] && runtime.NumCPU() >= 4 {
		t.Errorf("sweep missing the fixed 4-shard point: %v", counts)
	}
}

func TestBenchShardsRender(t *testing.T) {
	b := &BenchShards{GOMAXPROCS: 8, Entries: []ShardThroughputResult{
		{Shards: 1, SimMS: 200, Events: 10, HookFires: 100, Evals: 100, WallMS: 5, FiresPerSec: 20000},
	}}
	out := b.Render()
	for _, want := range []string{"Shard throughput", "GOMAXPROCS=8", "fires/sec"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
