package experiments

import (
	"strings"
	"testing"

	"guardrails/internal/faults"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
)

// TestChaosRun is the acceptance gate for the fault-injection
// subsystem: under the standard chaos plan, no monitor fault crashes
// the run, every injected fault is visible in the report log or the
// dead-letter queue, the quarantined monitor recovers after its
// cooldown, and the Figure 2 comparison still goes the guarded
// system's way.
func TestChaosRun(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	r, err := RunChaos(DefaultChaosConfig(42))
	if err != nil {
		t.Fatal(err)
	}

	// Every injected fault left a trace.
	if r.Missed != 0 {
		t.Errorf("missed faults = %d; injected %v, surfaced %v", r.Missed, r.Injected, r.Surfaced)
	}
	for _, k := range []faults.Kind{faults.EvalTrap, faults.LoadNaN, faults.ActionFail,
		faults.ReplicaFail, faults.ReplicaHeal} {
		if r.Injected[k] == 0 {
			t.Errorf("plan delivered no %v faults — schedule broken", k)
		}
	}

	// The breaker tripped on the trap burst and came back after its
	// 3s cooldown.
	lfs := r.Monitors["low-false-submit"]
	if lfs.Quarantines != 1 || lfs.Rearms != 1 {
		t.Errorf("breaker episode: quarantines=%d rearms=%d, want 1/1", lfs.Quarantines, lfs.Rearms)
	}
	if r.QuarantinedAt == 0 || r.RearmedAt == 0 {
		t.Fatalf("episode timestamps missing: quarantined=%v rearmed=%v", r.QuarantinedAt, r.RearmedAt)
	}
	if r.RecoveryLatency != 3*kernel.Second {
		t.Errorf("recovery latency = %v, want the 3s cooldown", r.RecoveryLatency)
	}

	// The retrain outage exhausted retries into the dead-letter queue.
	if r.DeadLetters == 0 {
		t.Error("retrain outage produced no dead letters")
	}
	fsr := r.Monitors["fs-retrain"]
	if fsr.Retries == 0 || fsr.DeadLetters == 0 {
		t.Errorf("retry path unexercised: %+v", fsr)
	}
	if fsr.Quarantines != 0 {
		t.Error("retrain guardrail quarantined despite its breaker being off")
	}

	// No fault escalated into a panic or killed a monitor for good.
	if r.HookPanics != 0 {
		t.Errorf("hook panics = %d", r.HookPanics)
	}
	for name, s := range r.Monitors {
		if s.Evals == 0 {
			t.Errorf("monitor %s never evaluated", name)
		}
	}

	// The Figure 2 shape survives fail-closed chaos: the guardrail
	// fired and the guarded system still beats the unguarded one
	// post-shift.
	if r.Fig2.GuardrailFiredAt == 0 {
		t.Error("guardrail never fired")
	}
	if r.Fig2.GuardedTailUS >= r.Fig2.UnguardedTailUS {
		t.Errorf("guarded tail %.1fus should beat unguarded %.1fus",
			r.Fig2.GuardedTailUS, r.Fig2.UnguardedTailUS)
	}

	out := r.Render()
	for _, want := range []string{"fault audit", "missed faults: 0", "recovery latency", "dead letters"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestChaosIsDeterministic re-runs the experiment with the same seeds
// and expects an identical fault schedule and audit.
func TestChaosIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is seconds-long")
	}
	a, err := RunChaos(DefaultChaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(DefaultChaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []faults.Kind{faults.EvalTrap, faults.LoadNaN, faults.ActionFail} {
		if a.Injected[k] != b.Injected[k] {
			t.Errorf("%v injections differ: %d vs %d", k, a.Injected[k], b.Injected[k])
		}
	}
	if a.QuarantinedAt != b.QuarantinedAt || a.RearmedAt != b.RearmedAt {
		t.Errorf("breaker episodes differ: (%v,%v) vs (%v,%v)",
			a.QuarantinedAt, a.RearmedAt, b.QuarantinedAt, b.RearmedAt)
	}
	if a.DeadLetters != b.DeadLetters {
		t.Errorf("dead letters differ: %d vs %d", a.DeadLetters, b.DeadLetters)
	}
	var sa, sb monitor.Stats
	sa, sb = a.Monitors["low-false-submit"], b.Monitors["low-false-submit"]
	if sa.Evals != sb.Evals || sa.Traps != sb.Traps || sa.Violations != sb.Violations {
		t.Errorf("monitor stats differ: %+v vs %+v", sa, sb)
	}
}
