package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
	"guardrails/internal/rollout"
	"guardrails/internal/telemetry"
)

// The rollout chaos experiment exercises the fleet rollout control
// plane end to end on a seeded synthetic workload, proving the three
// acceptance properties before anyone trusts it with a real
// deployment:
//
//  1. a healthy candidate auto-promotes through shadow and canary —
//     even when the admission check flakes transiently;
//  2. a bad candidate (violation storm, then a broken corrective
//     action) auto-rolls back before fleet-wide exposure: the fleet
//     generation never advances and the candidate's actions never run
//     at full traffic;
//  3. Breakglass quarantines a guardrail fleet-wide in one call, and
//     release restores it.
//
// Everything is deterministic under the seed: same seed, same phases,
// same gate decisions.

// rolloutIncumbent is the generation-1 guardrail: alert when the
// latency moving average exceeds 0.5.
const rolloutIncumbent = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.5 },
    action: { SAVE(alert, 1) }
}`

// rolloutHealthy retunes the threshold to 0.55: strictly fewer
// violations on the same workload, so every gate passes.
const rolloutHealthy = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.55 },
    action: { SAVE(alert, 1) }
}`

// rolloutStorm is a broken retune that violates on nearly every
// sample — the shadow gate must catch it before it ever acts.
const rolloutStorm = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.01 },
    action: { SAVE(alert_storm, 1) }
}`

// rolloutBadAction keeps the healthy rule but swaps the corrective
// action to a task group that does not exist: its violation profile
// sails through shadow, and the canary action-failure gate must catch
// the failing dispatches at partial traffic.
const rolloutBadAction = `
guardrail lat-guard {
    trigger: { FUNCTION(io_done) },
    rule: { LOAD(lat_ma) <= 0.55 },
    action: { DEPRIORITIZE(batch_jobs) }
}`

// RolloutChaosConfig parameterizes the rollout chaos run.
type RolloutChaosConfig struct {
	// Seed drives the synthetic latency workload and is the experiment's
	// determinism anchor.
	Seed int64
	// AdmitFlakes is how many consecutive transient admission failures
	// the first rollout faces before admission succeeds.
	AdmitFlakes int
}

// DefaultRolloutChaosConfig returns the standard run: two transient
// admission flakes ahead of the healthy rollout.
func DefaultRolloutChaosConfig(seed int64) RolloutChaosConfig {
	return RolloutChaosConfig{Seed: seed, AdmitFlakes: 2}
}

// RolloutAct is the outcome of one staged rollout (or breakglass act)
// within the run.
type RolloutAct struct {
	// Name identifies the act: "healthy", "violation-storm",
	// "bad-action", "breakglass".
	Name string `json:"name"`
	// Phase is the terminal rollout phase ("" for the breakglass act).
	Phase string `json:"phase,omitempty"`
	// Reason is the gate reason for rollbacks.
	Reason string `json:"reason,omitempty"`
	// FleetGen is the fleet generation after the act.
	FleetGen uint64 `json:"fleet_gen"`
}

// RolloutChaosResult is the outcome of the rollout chaos run — the
// artifact the CI smoke job archives and gates on.
type RolloutChaosResult struct {
	// Pass is true when every acceptance check held.
	Pass bool `json:"pass"`
	// Failures lists the acceptance checks that did not hold.
	Failures []string `json:"failures,omitempty"`
	// Acts records each staged rollout's terminal state.
	Acts []RolloutAct `json:"acts"`
	// Promotions/Rollbacks/AdmitRetries/Breakglass mirror the telemetry
	// counters after the run.
	Promotions   uint64 `json:"rollout_promotions_total"`
	Rollbacks    uint64 `json:"rollout_rollbacks_total"`
	AdmitRetries uint64 `json:"rollout_admission_retries_total"`
	Breakglass   uint64 `json:"breakglass_total"`
	// FinalGeneration is the kernel's deployment generation at the end.
	FinalGeneration uint64 `json:"final_generation"`
	// History is the control plane's operation log.
	History []rollout.Record `json:"history"`
	// Monitors snapshots each loaded guardrail's counters.
	Monitors map[string]monitor.Stats `json:"monitors"`
}

// fail records a missed acceptance check.
func (r *RolloutChaosResult) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// RunRolloutChaos executes the rollout chaos experiment.
func RunRolloutChaos(cfg RolloutChaosConfig) (*RolloutChaosResult, error) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	sink := telemetry.New(func() telemetry.Time { return int64(k.Now()) }, 1<<15)
	rt.SetTelemetry(sink)
	k.SetTelemetry(sink)

	// Synthetic workload: io_done fires every 1ms with lat_ma drawn in
	// [0, 0.6) — ~17% of samples violate the incumbent's 0.5 threshold,
	// ~8% violate the retuned 0.55 one, and nearly all violate the storm
	// candidate's 0.01.
	rng := rand.New(rand.NewSource(cfg.Seed))
	k.Every(0, kernel.Millisecond, 0, func(now kernel.Time) {
		st.Save("lat_ma", rng.Float64()*0.6)
		k.Fire("io_done", 0)
	})

	inc, err := compile.Source(rolloutIncumbent)
	if err != nil {
		return nil, fmt.Errorf("rollout-chaos: compiling incumbent: %w", err)
	}
	if _, err := rt.Load(inc[0], monitor.Options{}); err != nil {
		return nil, fmt.Errorf("rollout-chaos: loading incumbent: %w", err)
	}
	ctl := rollout.NewController(rt)
	ctl.Adopt(inc)

	res := &RolloutChaosResult{}
	stageCfg := rollout.Config{
		ShadowWindow: 200 * kernel.Millisecond,
		CanaryWindow: 400 * kernel.Millisecond,
		CanaryNum:    1, CanaryDen: 4,
	}
	begin := func(src string) error {
		cs, err := compile.Source(src)
		if err != nil {
			return err
		}
		return ctl.Begin(cs, stageCfg)
	}
	act := func(name string) {
		res.Acts = append(res.Acts, RolloutAct{
			Name: name, Phase: ctl.Phase().String(),
			Reason: ctl.Reason(), FleetGen: ctl.FleetGeneration(),
		})
	}

	// --- Act 1: healthy retune under a flaky admission check ----------
	flakes := cfg.AdmitFlakes
	ctl.SetAdmitFunc(func(budget int, overrides map[string]int, loads []kernel.HookLoad) error {
		if flakes > 0 {
			flakes--
			return fmt.Errorf("admission check unavailable (transient %d)", flakes+1)
		}
		return k.AdmitDeployment(budget, overrides, loads)
	})
	k.RunUntil(100 * kernel.Millisecond)
	if err := begin(rolloutHealthy); err != nil {
		return nil, fmt.Errorf("rollout-chaos: healthy Begin: %w", err)
	}
	k.RunUntil(2 * kernel.Second)
	act("healthy")
	if got := ctl.Phase(); got != rollout.PhasePromoted {
		res.fail("healthy candidate: phase %s (reason %q), want promoted", got, ctl.Reason())
	}
	if got := ctl.FleetGeneration(); got != 2 {
		res.fail("healthy candidate: fleet generation %d, want 2", got)
	}
	if cfg.AdmitFlakes > 0 && sink.Counters.RolloutAdmitRetries.Value() == 0 {
		res.fail("transient admission flakes left no retry trace")
	}
	ctl.SetAdmitFunc(nil)

	// --- Act 2: violation storm must roll back in shadow --------------
	if err := begin(rolloutStorm); err != nil {
		return nil, fmt.Errorf("rollout-chaos: storm Begin: %w", err)
	}
	k.RunUntil(4 * kernel.Second)
	act("violation-storm")
	if got := ctl.Phase(); got != rollout.PhaseRolledBack {
		res.fail("storm candidate: phase %s, want rolled_back", got)
	}
	if st.Load("alert_storm") != 0 {
		res.fail("storm candidate acted before rollback (alert_storm set)")
	}
	if got := ctl.FleetGeneration(); got != 2 {
		res.fail("storm candidate reached fleet-wide exposure: generation %d", got)
	}

	// --- Act 3: broken corrective action must roll back at canary -----
	if err := begin(rolloutBadAction); err != nil {
		return nil, fmt.Errorf("rollout-chaos: bad-action Begin: %w", err)
	}
	k.RunUntil(7 * kernel.Second)
	act("bad-action")
	if got := ctl.Phase(); got != rollout.PhaseRolledBack {
		res.fail("bad-action candidate: phase %s (reason %q), want rolled_back", got, ctl.Reason())
	}
	if !strings.Contains(ctl.Reason(), "action failure rate") {
		res.fail("bad-action candidate: rollback reason %q, want the action-failure gate", ctl.Reason())
	}
	reachedCanary := false
	for _, rec := range ctl.History() {
		if rec.Gen == 4 && rec.Event == "phase:canary" {
			reachedCanary = true
		}
	}
	if !reachedCanary {
		res.fail("bad-action candidate never reached canary (caught too early to test the gate)")
	}
	if got := ctl.FleetGeneration(); got != 2 {
		res.fail("bad-action candidate reached fleet-wide exposure: generation %d", got)
	}

	// --- Act 4: breakglass quarantine and release ---------------------
	st.Save("alert", 0)
	if err := ctl.Breakglass("lat-guard", false); err != nil {
		return nil, fmt.Errorf("rollout-chaos: breakglass: %w", err)
	}
	k.RunUntil(8 * kernel.Second)
	if st.Load("alert") != 0 {
		res.fail("breakglass: quarantined guardrail still acting")
	}
	if m := rt.Monitor("lat-guard"); m == nil || !m.ForcedShadow() {
		res.fail("breakglass: monitor not forced to shadow")
	}
	if err := ctl.BreakglassRelease("lat-guard"); err != nil {
		return nil, fmt.Errorf("rollout-chaos: breakglass release: %w", err)
	}
	k.RunUntil(9 * kernel.Second)
	if st.Load("alert") != 1 {
		res.fail("breakglass release: guardrail never acted again")
	}
	res.Acts = append(res.Acts, RolloutAct{Name: "breakglass", FleetGen: ctl.FleetGeneration()})

	res.Promotions = sink.Counters.RolloutPromotions.Value()
	res.Rollbacks = sink.Counters.RolloutRollbacks.Value()
	res.AdmitRetries = sink.Counters.RolloutAdmitRetries.Value()
	res.Breakglass = sink.Counters.Breakglass.Value()
	res.FinalGeneration = k.Generation()
	res.History = ctl.History()
	res.Monitors = make(map[string]monitor.Stats)
	for _, m := range rt.Monitors() {
		res.Monitors[m.Name()] = m.Stats()
	}
	if res.Promotions != 1 {
		res.fail("rollout_promotions_total = %d, want 1", res.Promotions)
	}
	if res.Rollbacks != 2 {
		res.fail("rollout_rollbacks_total = %d, want 2", res.Rollbacks)
	}
	if res.FinalGeneration != 2 {
		res.fail("final kernel generation = %d, want 2", res.FinalGeneration)
	}
	res.Pass = len(res.Failures) == 0
	return res, nil
}

// Render prints the rollout chaos summary.
func (r *RolloutChaosResult) Render() string {
	var b strings.Builder
	b.WriteString("== Rollout chaos: staged fleet rollouts under regression ==\n")
	for _, a := range r.Acts {
		fmt.Fprintf(&b, "act %-16s phase=%-12s fleet-gen=%d", a.Name, orDash(a.Phase), a.FleetGen)
		if a.Reason != "" {
			fmt.Fprintf(&b, "  (%s)", a.Reason)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "promotions=%d rollbacks=%d admit-retries=%d breakglass=%d final-generation=%d\n",
		r.Promotions, r.Rollbacks, r.AdmitRetries, r.Breakglass, r.FinalGeneration)
	for name, s := range r.Monitors {
		fmt.Fprintf(&b, "monitor %-16s gen-evals=%d violations=%d actions=%d dispatch-errors=%d\n",
			name, s.Evals, s.Violations, s.ActionsFired, s.DispatchErrors)
	}
	if r.Pass {
		b.WriteString("PASS: bad canaries rolled back before fleet exposure; healthy canary promoted; breakglass engaged and released\n")
	} else {
		b.WriteString("FAIL:\n")
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  - %s\n", f)
		}
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
