package experiments

import (
	"encoding/json"
	"io"

	"guardrails/internal/kernel"
)

// Bench summaries: compact machine-readable records of an experiment
// run, committed as BENCH_*.json snapshots so regressions in the
// reproduced numbers show up as diffs. Every value is derived from
// simulated time and seeded randomness — a given seed produces a
// byte-identical file on every machine.

// BenchConfig is one system configuration's whole-run summary.
type BenchConfig struct {
	// Config names the system variant (the legend label in Figure 2).
	Config string `json:"config"`
	// Read is the exact whole-run read-latency summary.
	Read LatencySummary `json:"read_latency"`
	// Monitor accounting; all zero for the unguarded configuration.
	Evals        uint64 `json:"evals"`
	Violations   uint64 `json:"violations"`
	ActionsFired uint64 `json:"actions_fired"`
	Recoveries   uint64 `json:"recoveries"`
	VMSteps      uint64 `json:"vm_steps"`
}

// BenchFig2 is the committed benchmark snapshot of the Figure 2 run.
type BenchFig2 struct {
	Seed              int64         `json:"seed"`
	ShiftAtS          float64       `json:"shift_at_s"`
	GuardrailFiredAtS float64       `json:"guardrail_fired_at_s"`
	FalseSubmitRate   float64       `json:"false_submit_rate_at_trigger"`
	CalmUS            float64       `json:"calm_mean_us"`
	GuardedTailUS     float64       `json:"guarded_tail_us"`
	UnguardedTailUS   float64       `json:"unguarded_tail_us"`
	Configs           []BenchConfig `json:"configs"`
}

// NewBenchFig2 reduces a Figure 2 result (run with CollectLatencies)
// to its benchmark snapshot.
func NewBenchFig2(cfg Fig2Config, r *Fig2Result) *BenchFig2 {
	st := r.GuardedMonitorStats
	return &BenchFig2{
		Seed:              cfg.Seed,
		ShiftAtS:          float64(r.ShiftAt) / float64(kernel.Second),
		GuardrailFiredAtS: float64(r.GuardrailFiredAt) / float64(kernel.Second),
		FalseSubmitRate:   r.FalseSubmitRateAtTrigger,
		CalmUS:            r.CalmUS,
		GuardedTailUS:     r.GuardedTailUS,
		UnguardedTailUS:   r.UnguardedTailUS,
		Configs: []BenchConfig{
			{
				Config: "linnos",
				Read:   r.UnguardedRead,
			},
			{
				Config:       "linnos+guardrails",
				Read:         r.GuardedRead,
				Evals:        st.Evals,
				Violations:   st.Violations,
				ActionsFired: st.ActionsFired,
				Recoveries:   st.Recoveries,
				VMSteps:      st.VMSteps,
			},
		},
	}
}

// WriteJSON writes the snapshot as indented JSON.
func (b *BenchFig2) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
