package experiments

import (
	"fmt"

	"guardrails/internal/cache"
	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/memtier"
	"guardrails/internal/monitor"
	"guardrails/internal/properties"
	"guardrails/internal/trace"
)

// registryPolicy adapts a memtier policy slot so the manager consults
// the action registry's current policy on every decision — the same
// indirection the scheduler uses, so REPLACE takes effect immediately.
type registryPolicy struct {
	rt   *monitor.Runtime
	slot string
}

// Name identifies the adapter by its current delegate.
func (p *registryPolicy) Name() string {
	name, _, _ := p.rt.Policies.Current(p.slot)
	return name
}

// Place delegates to the registry's current policy.
func (p *registryPolicy) Place(s memtier.PageStats, pressure float64) memtier.Decision {
	_, cur, err := p.rt.Policies.Current(p.slot)
	if err != nil {
		return memtier.Decision{Tier: memtier.TierNVM}
	}
	return cur.(memtier.Policy).Place(s, pressure)
}

// P3Result is the out-of-bounds-outputs experiment (Figure 1, P3): the
// learned placement policy starts emitting illegal tiers once inputs
// leave its training distribution; the guardrail reports and swaps in
// the heuristic fallback (A1 + A2).
type P3Result struct {
	CalmIllegalRate    float64
	PeakIllegalRate    float64
	ShiftAt            kernel.Time
	ReplacedAt         kernel.Time
	FinalPolicy        string
	UnguardedIllegal   uint64
	GuardedIllegal     uint64
	UnguardedLatencyNS float64
	GuardedLatencyNS   float64
}

// TrainStale4TierPlacement trains the learned placement policy against
// a FOUR-tier teacher (hot→0 … cold→3). The deployment kernel has only
// two tiers — the paper's §1 staleness scenario ("unsafe ML behavior
// may arise due to updates in the kernel... rendering the training data
// behind the policy stale"): the model is perfectly in-distribution,
// but half its output range is now illegal. After training, the model
// is validated on a grid (hot pages must map to legal tiers, cold pages
// to the stale ones); imprecise fits retry with a fresh initialization.
func TrainStale4TierPlacement(seed int64) (*memtier.LearnedPolicy, error) {
	fourTierLabel := func(acc uint64) int {
		switch {
		case acc >= 8:
			return 0
		case acc >= 4:
			return 1
		case acc >= 2:
			return 2
		default:
			return 3
		}
	}
	// Each attempt re-draws both the balanced training set and the model
	// initialization; the validation grid rejects fits whose decision
	// boundary drifted.
	classRanges := [][2]int{{8, 32}, {4, 7}, {2, 3}, {1, 1}}
	for attempt := int64(0); attempt < 16; attempt++ {
		rng := trace.NewRand(trace.Split(seed+1000*attempt, "mem-train"))
		var pages []memtier.PageStats
		var pressures []float64
		var labels []int
		for i := 0; i < 8000; i++ {
			cls := i % 4
			lo, hi := classRanges[cls][0], classRanges[cls][1]
			acc := uint64(lo + rng.Intn(hi-lo+1))
			s := memtier.PageStats{Accesses: acc, LastAccess: uint64(i)}
			pages = append(pages, s)
			pressures = append(pressures, rng.Float64()*0.8)
			labels = append(labels, fourTierLabel(acc))
		}
		lp := memtier.NewLearnedPolicy(trace.Split(seed+attempt, "mem-model"))
		if _, err := lp.Train(pages, pressures, labels); err != nil {
			return nil, err
		}
		if validStaleModel(lp) {
			return lp, nil
		}
	}
	return nil, fmt.Errorf("experiments: placement model failed validation after 16 attempts")
}

// validStaleModel checks the fitted model's decision grid: hot pages
// (acc ≥ 10) map to the legal tiers {0,1}; single-touch pages map to
// the stale tiers {2,3}.
func validStaleModel(lp *memtier.LearnedPolicy) bool {
	for _, acc := range []uint64{10, 16, 24, 32, 64} {
		for _, pr := range []float64{0, 0.3, 0.6} {
			tier := lp.Place(memtier.PageStats{Accesses: acc, LastAccess: 1}, pr).Tier
			if tier < 0 || tier > 1 {
				return false
			}
		}
	}
	for _, pr := range []float64{0, 0.3, 0.6} {
		// Any tier >= 2 is equally illegal on the two-tier kernel.
		if lp.Place(memtier.PageStats{Accesses: 1, LastAccess: 1}, pr).Tier < 2 {
			return false
		}
	}
	return true
}

// memtierDriver drives the three workload phases. Warmup touches the
// hot working set until every page is hot enough that the stale 4-tier
// model emits only the (still legal) tiers 0–1; the guardrail is loaded
// after warmup — the paper's incremental-deployment story. The cold
// scan then makes the model emit the now-nonexistent tiers 2–3.
type memtierDriver struct {
	k   *kernel.Kernel
	m   *memtier.Manager
	rng interface{ Intn(int) int }
	now kernel.Time
}

func newMemtierDriver(k *kernel.Kernel, m *memtier.Manager, seed int64) *memtierDriver {
	return &memtierDriver{k: k, m: m, rng: trace.NewRand(trace.Split(seed, "mem-drive"))}
}

func (d *memtierDriver) drive(n int, page func(i int) uint64, onBatch func(now kernel.Time)) {
	for i := 0; i < n; i++ {
		d.m.Access(page(i))
		if i%500 == 0 {
			d.now += 50 * kernel.Millisecond
			d.k.RunUntil(d.now)
			if onBatch != nil {
				onBatch(d.now)
			}
		}
	}
}

func (d *memtierDriver) warmup() {
	d.drive(20000, func(int) uint64 { return uint64(d.rng.Intn(1000)) }, nil)
}

func (d *memtierDriver) hot(onBatch func(kernel.Time)) {
	d.drive(30000, func(int) uint64 { return uint64(d.rng.Intn(1000)) }, onBatch)
}

func (d *memtierDriver) scan(onBatch func(kernel.Time)) {
	d.drive(60000, func(i int) uint64 { return uint64(100000 + i) }, onBatch)
}

// RunP3OutOfBounds runs the P3 experiment, once unguarded and once with
// the bounds guardrail.
func RunP3OutOfBounds(seed int64) (*P3Result, error) {
	res := &P3Result{ShiftAt: 5 * kernel.Second} // (20k+30k)/500 batches * 50ms

	// Unguarded run. Stats are measured after warmup so both runs are
	// compared over the same guarded interval.
	{
		lp, err := TrainStale4TierPlacement(seed)
		if err != nil {
			return nil, err
		}
		k := kernel.New()
		st := featurestore.New()
		mgr, err := memtier.NewManager(k, st, 2048, lp)
		if err != nil {
			return nil, err
		}
		d := newMemtierDriver(k, mgr, seed)
		d.warmup()
		warm := mgr.Stats()
		d.hot(nil)
		d.scan(nil)
		final := mgr.Stats()
		res.UnguardedIllegal = final.IllegalDecisions - warm.IllegalDecisions
		res.UnguardedLatencyNS = float64(final.TotalLatency-warm.TotalLatency) /
			float64(final.Accesses-warm.Accesses)
	}

	// Guarded run.
	lp, err := TrainStale4TierPlacement(seed)
	if err != nil {
		return nil, err
	}
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	if err := rt.Policies.DefineSlot("mem_policy", map[string]any{
		"learned":   memtier.Policy(lp),
		"frequency": memtier.Policy(&memtier.FrequencyPolicy{HotThreshold: 4}),
	}, "learned"); err != nil {
		return nil, err
	}
	mgr, err := memtier.NewManager(k, st, 2048, &registryPolicy{rt: rt, slot: "mem_policy"})
	if err != nil {
		return nil, err
	}
	d := newMemtierDriver(k, mgr, seed)
	d.warmup()
	warm := mgr.Stats()

	// Incremental deployment: the guardrail is loaded on the live,
	// warmed-up system.
	spec := properties.BuildSpec("p3-mem-bounds",
		[]string{properties.TimerTrigger(float64(100 * kernel.Millisecond))},
		[]string{fmt.Sprintf("LOAD(%s) <= 0.01", memtier.KeyIllegalRate)},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", memtier.KeyIllegalRate),
			"REPLACE(learned, frequency)",
		},
	)
	if _, err := rt.LoadSource(spec, monitor.Options{}); err != nil {
		return nil, err
	}
	onBatch := func(now kernel.Time) {
		rate := st.Load(memtier.KeyIllegalRate)
		if now < res.ShiftAt && rate > res.CalmIllegalRate {
			res.CalmIllegalRate = rate
		}
		if rate > res.PeakIllegalRate {
			res.PeakIllegalRate = rate
		}
		if res.ReplacedAt == 0 {
			if name, _, _ := rt.Policies.Current("mem_policy"); name == "frequency" {
				res.ReplacedAt = now
			}
		}
	}
	d.hot(onBatch)
	d.scan(onBatch)
	final := mgr.Stats()
	res.GuardedIllegal = final.IllegalDecisions - warm.IllegalDecisions
	res.GuardedLatencyNS = float64(final.TotalLatency-warm.TotalLatency) /
		float64(final.Accesses-warm.Accesses)
	res.FinalPolicy, _, _ = rt.Policies.Current("mem_policy")
	return res, nil
}

// Render formats the P3 result.
func (r *P3Result) Render() string {
	t := &Table{
		Title:   "P3: out-of-bounds outputs (illegal tier decisions; guardrail REPORT + REPLACE)",
		Columns: []string{"metric", "unguarded", "guarded"},
		Rows: [][]string{
			{"illegal decisions", fmt.Sprintf("%d", r.UnguardedIllegal), fmt.Sprintf("%d", r.GuardedIllegal)},
			{"mean access latency (ns)", f2(r.UnguardedLatencyNS), f2(r.GuardedLatencyNS)},
			{"peak illegal rate", f3(r.PeakIllegalRate), ""},
			{"replaced at", "", r.ReplacedAt.String()},
			{"final policy", "learned", r.FinalPolicy},
		},
	}
	return t.String()
}

// P4Result is the decision-quality experiment (Figure 1, P4): the
// learned cache must beat the random baseline; after a workload shift
// its advantage evaporates, regret crosses the bound, and the guardrail
// swaps in LRU.
type P4Result struct {
	CalmLearnedHit   float64
	CalmRandomHit    float64
	ShiftLearnedHit  float64 // unguarded learned, post-shift
	ShiftRandomHit   float64
	ShiftGuardedHit  float64 // guarded, post-shift (LRU after swap)
	RegretAtTrigger  float64
	ReplacedAtAccess int
	FinalPolicy      string
}

// RunP4Quality runs the P4 experiment.
func RunP4Quality(seed int64) (*P4Result, error) {
	const capacity = 256
	train := make([]uint64, 40000)
	zg := trace.NewZipfKeys(trace.Split(seed, "p4-train"), 10000, 1.3, false)
	for i := range train {
		train[i] = zg.Next()
	}
	newLearned := func() (*cache.Learned, error) {
		l := cache.NewLearned(trace.Split(seed, "p4-model"))
		if _, err := l.TrainOnTrace(train, 2000, capacity); err != nil {
			return nil, err
		}
		return l, nil
	}

	// Two-phase access stream: Zipf then uniform.
	calm := make([]uint64, 40000)
	cg := trace.NewZipfKeys(trace.Split(seed, "p4-calm"), 10000, 1.3, false)
	for i := range calm {
		calm[i] = cg.Next()
	}
	shift := make([]uint64, 40000)
	ug := trace.NewUniformKeys(trace.Split(seed, "p4-shift"), 10000)
	for i := range shift {
		shift[i] = ug.Next()
	}

	res := &P4Result{}
	hitRate := func(hits, total int) float64 {
		if total == 0 {
			return 0
		}
		return float64(hits) / float64(total)
	}

	// Unguarded learned + shadow random, phase by phase.
	{
		l, err := newLearned()
		if err != nil {
			return nil, err
		}
		lc, err := cache.New(capacity, l)
		if err != nil {
			return nil, err
		}
		rc, err := cache.New(capacity, cache.NewRandom(trace.Split(seed, "p4-rnd")))
		if err != nil {
			return nil, err
		}
		count := func(keys []uint64) (lh, rh int) {
			for _, key := range keys {
				if lc.Access(key) {
					lh++
				}
				if rc.Access(key) {
					rh++
				}
			}
			return
		}
		lh, rh := count(calm)
		res.CalmLearnedHit, res.CalmRandomHit = hitRate(lh, len(calm)), hitRate(rh, len(calm))
		lh, rh = count(shift)
		res.ShiftLearnedHit, res.ShiftRandomHit = hitRate(lh, len(shift)), hitRate(rh, len(shift))
	}

	// Guarded run: regret monitor + guardrail swapping learned -> LRU.
	l, err := newLearned()
	if err != nil {
		return nil, err
	}
	gc, err := cache.New(capacity, l)
	if err != nil {
		return nil, err
	}
	shadow, err := cache.New(capacity, cache.NewRandom(trace.Split(seed, "p4-shadow")))
	if err != nil {
		return nil, err
	}
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)
	regret := properties.NewRegretMonitor(st, "cache", 2000)
	if err := rt.Policies.DefineSlot("cache_policy", map[string]any{
		"learned": "learned", "lru": "lru",
	}, "learned"); err != nil {
		return nil, err
	}
	// Figure 1's P4 wording is "better hit rates than randomly selecting
	// elements": the learned cache must BEAT the shadow baseline by at
	// least 2pp, i.e. regret (baseline - learned) stays <= -0.02. The
	// TIMER starts at 1s so cold-start misses (where nothing can beat
	// anything) are not judged.
	spec := properties.BuildSpec("p4-cache-quality",
		[]string{fmt.Sprintf("TIMER(1e9, %g)", float64(50*kernel.Millisecond))},
		[]string{fmt.Sprintf("LOAD(%s) <= -0.02", properties.RegretKey("cache"))},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", properties.RegretKey("cache")),
			"REPLACE(learned, lru)",
		},
	)
	if _, err := rt.LoadSource(spec, monitor.Options{ViolationStreak: 3}); err != nil {
		return nil, err
	}

	now := kernel.Time(0)
	swapped := false
	guardedShiftHits, shiftTotal := 0, 0
	all := append(append([]uint64(nil), calm...), shift...)
	for i, key := range all {
		hit := gc.Access(key)
		sh := shadow.Access(key)
		regret.Observe(b2f(hit), b2f(sh))
		if i >= len(calm) {
			shiftTotal++
			if hit {
				guardedShiftHits++
			}
		}
		if i%200 == 0 {
			now += 10 * kernel.Millisecond
			k.RunUntil(now)
			if !swapped {
				if name, _, _ := rt.Policies.Current("cache_policy"); name == "lru" {
					swapped = true
					res.ReplacedAtAccess = i
					res.RegretAtTrigger = st.Load(properties.RegretKey("cache"))
					if err := gc.SwapPolicy(cache.NewLRU()); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	res.ShiftGuardedHit = hitRate(guardedShiftHits, shiftTotal)
	res.FinalPolicy, _, _ = rt.Policies.Current("cache_policy")
	return res, nil
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// Render formats the P4 result.
func (r *P4Result) Render() string {
	t := &Table{
		Title:   "P4: decision quality (cache hit rate vs. shadow baseline; guardrail REPLACE on regret)",
		Columns: []string{"phase", "learned", "random", "guarded"},
		Rows: [][]string{
			{"calm (Zipf) hit rate", f3(r.CalmLearnedHit), f3(r.CalmRandomHit), f3(r.CalmLearnedHit)},
			{"shifted (uniform) hit rate", f3(r.ShiftLearnedHit), f3(r.ShiftRandomHit), f3(r.ShiftGuardedHit)},
		},
		Notes: []string{
			fmt.Sprintf("guardrail swapped learned->%s at access %d (regret %.3f)",
				r.FinalPolicy, r.ReplacedAtAccess, r.RegretAtTrigger),
		},
	}
	return t.String()
}
