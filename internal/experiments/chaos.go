package experiments

import (
	"fmt"
	"strings"

	"guardrails/internal/faults"
	"guardrails/internal/kernel"
	"guardrails/internal/linnos"
	"guardrails/internal/monitor"
)

// The chaos experiment guards the guardrails: it reruns the Figure 2
// comparison while a seeded fault plan attacks the guarded system's
// monitor runtime — evaluation traps, NaN feature reads, a retrain
// backend outage timed to the workload shift, and a replica lost
// mid-run. The run passes when the runtime degrades instead of dying:
// no fault crashes the run, every injected fault is surfaced in the
// report log or the dead-letter queue, the quarantined monitor comes
// back after its cooldown, and the guarded system still beats the
// unguarded one after the shift.

// KeyReplicasAlive is the feature the chaos stack publishes from the
// array's up/down notifications, watched by the redundancy guardrail.
const KeyReplicasAlive = "replicas_alive"

// chaosRetrainGuardrail asks for retraining while the false-submit rate
// is out of bounds — the action backend the fault plan knocks out.
const chaosRetrainGuardrail = `
guardrail fs-retrain {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(false_submit_rate) <= 0.05 },
    action: { RETRAIN(linnos) }
}`

// chaosRedundancyGuardrail reports whenever the replica group is
// degraded — how the injected replica loss surfaces in the report log.
const chaosRedundancyGuardrail = `
guardrail replica-redundancy {
    trigger: { TIMER(start_time, 5e8) },
    rule: { LOAD(replicas_alive) >= 2 },
    action: { REPORT(LOAD(replicas_alive)) }
}`

// ChaosConfig parameterizes the chaos run.
type ChaosConfig struct {
	// Fig2 is the underlying Figure 2 configuration (phases, seed).
	Fig2 Fig2Config
	// FaultSeed drives the fault plan (separate from the system seed so
	// the same system can face different fault schedules).
	FaultSeed int64
}

// DefaultChaosConfig returns the standard chaos run: the default
// Figure 2 experiment under the standard fault plan.
func DefaultChaosConfig(seed int64) ChaosConfig {
	return ChaosConfig{Fig2: DefaultFig2Config(seed), FaultSeed: seed + 1000}
}

// ChaosResult is the outcome of one chaos run.
type ChaosResult struct {
	// Fig2 carries the latency series and tail summary of the run.
	Fig2 *Fig2Result
	// Injected and Surfaced count faults per kind: delivered by the
	// plan vs visible in the report log or dead-letter queue. Missed is
	// the total shortfall — the acceptance criterion is zero.
	Injected map[faults.Kind]int
	Surfaced map[faults.Kind]int
	Missed   int
	// QuarantinedAt/RearmedAt bracket the breaker episode on the
	// Listing 2 monitor; RecoveryLatency is their difference.
	QuarantinedAt   kernel.Time
	RearmedAt       kernel.Time
	RecoveryLatency kernel.Time
	// DeadLetters is the dead-letter queue total at the end of the run.
	DeadLetters uint64
	// HookPanics counts monitor panics absorbed by the kernel guard.
	HookPanics uint64
	// Monitors snapshots each guardrail's counters.
	Monitors map[string]monitor.Stats
}

// RunChaos executes the chaos experiment.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	model, err := trainFig2Model(cfg.Fig2.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos: training: %w", err)
	}
	guarded, err := newFig2System(cfg.Fig2.Seed+100, model)
	if err != nil {
		return nil, err
	}
	unguarded, err := newFig2System(cfg.Fig2.Seed+100, model)
	if err != nil {
		return nil, err
	}

	// A panicking monitor must not take the simulated kernel with it.
	guarded.k.SetHookPanicHandler(func(site string, recovered any) {})

	// Publish replica liveness for the redundancy guardrail.
	guarded.st.Save(KeyReplicasAlive, float64(guarded.arr.AliveCount()))
	guarded.arr.SetNotify(func(int, bool) {
		guarded.st.Save(KeyReplicasAlive, float64(guarded.arr.AliveCount()))
	})

	rt := monitor.New(guarded.k, guarded.st)
	// Listing 2 runs fail-closed with the full self-protection kit: a
	// breaker that quarantines after 3 faults, a cooldown rearm, and a
	// fallback that parks the system in its safe state (ML off) while
	// the guardrail itself is untrusted.
	ms, err := rt.LoadSource(Listing2, monitor.Options{
		OnFault:          monitor.FailClosed,
		BreakerThreshold: 3,
		BreakerWindow:    10 * kernel.Second,
		Cooldown:         3 * kernel.Second,
		Fallback:         func(*monitor.Monitor) { guarded.st.Save(linnos.KeyMLEnabled, 0) },
		Restore:          func(*monitor.Monitor) { guarded.st.Save(linnos.KeyMLEnabled, 1) },
		RetryMax:         2,
		RetryBase:        200 * kernel.Millisecond,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: loading guardrail: %w", err)
	}
	mon := ms[0]
	// The retrain guardrail keeps its breaker off: its backend outage
	// must exercise the retry→dead-letter path, not quarantine.
	if _, err := rt.LoadSource(chaosRetrainGuardrail, monitor.Options{
		RetryMax:  2,
		RetryBase: 200 * kernel.Millisecond,
	}); err != nil {
		return nil, fmt.Errorf("chaos: loading retrain guardrail: %w", err)
	}
	if _, err := rt.LoadSource(chaosRedundancyGuardrail, monitor.Options{}); err != nil {
		return nil, fmt.Errorf("chaos: loading redundancy guardrail: %w", err)
	}
	// Drain accepted retrain requests periodically (training itself is
	// out of scope here — the chaos target is the request path).
	guarded.k.Every(5*kernel.Second, 5*kernel.Second, 0,
		func(kernel.Time) { _, _ = rt.Retrainer.RunPending(func(string) error { return nil }) })

	inj := faults.StandardChaos(cfg.FaultSeed).Arm(guarded.k, guarded.arr)
	rt.SetFaultInjector(inj)

	res := &ChaosResult{
		Fig2: &Fig2Result{ShiftAt: kernel.Time(cfg.Fig2.CalmSeconds) * kernel.Second},
	}
	total := kernel.Time(cfg.Fig2.CalmSeconds+cfg.Fig2.ShiftSeconds) * kernel.Second

	var calmSum float64
	var calmN int
	shifted := false
	for t := cfg.Fig2.SampleEvery; t <= total; t += cfg.Fig2.SampleEvery {
		if !shifted && t > res.Fig2.ShiftAt {
			guarded.wl.SetWriteFraction(0.4)
			unguarded.wl.SetWriteFraction(0.4)
			shifted = true
		}
		guarded.run(t)
		unguarded.run(t)
		p := Fig2Point{
			TimeS:       float64(t) / float64(kernel.Second),
			GuardedUS:   guarded.st.Load(linnos.KeyLatencyMA),
			UnguardedUS: unguarded.st.Load(linnos.KeyLatencyMA),
		}
		res.Fig2.Series = append(res.Fig2.Series, p)
		if t <= res.Fig2.ShiftAt {
			calmSum += p.GuardedUS
			calmN++
		}
		if res.Fig2.GuardrailFiredAt == 0 && mon.Stats().ActionsFired > 0 {
			res.Fig2.GuardrailFiredAt = guarded.k.Now()
			res.Fig2.FalseSubmitRateAtTrigger = guarded.st.Load(linnos.KeyFalseSubmitRate)
		}
	}
	if calmN > 0 {
		res.Fig2.CalmUS = calmSum / float64(calmN)
	}
	tail := len(res.Fig2.Series) / 4
	var gSum, uSum float64
	for _, p := range res.Fig2.Series[len(res.Fig2.Series)-tail:] {
		gSum += p.GuardedUS
		uSum += p.UnguardedUS
	}
	res.Fig2.GuardedTailUS = gSum / float64(tail)
	res.Fig2.UnguardedTailUS = uSum / float64(tail)

	res.DeadLetters = rt.DeadLetter.Total()
	res.HookPanics = guarded.k.HookPanics()
	res.Monitors = make(map[string]monitor.Stats)
	for _, m := range rt.Monitors() {
		res.Monitors[m.Name()] = m.Stats()
	}

	// Recover the breaker episode's timestamps from the report log.
	for _, v := range rt.Log.Recent(100000) {
		if v.Guardrail != mon.Name() {
			continue
		}
		if res.QuarantinedAt == 0 && strings.HasPrefix(v.Note, "quarantined (") {
			res.QuarantinedAt = v.Time
		}
		if res.RearmedAt == 0 && strings.HasPrefix(v.Note, "rearmed (") {
			res.RearmedAt = v.Time
		}
	}
	if res.RearmedAt > res.QuarantinedAt {
		res.RecoveryLatency = res.RearmedAt - res.QuarantinedAt
	}

	// Audit: every injected fault must be visible somewhere.
	res.Injected = make(map[faults.Kind]int)
	for _, k := range []faults.Kind{faults.EvalTrap, faults.HelperFail, faults.LoadNaN,
		faults.LoadStale, faults.ActionFail, faults.ReplicaFail, faults.ReplicaHeal} {
		if n := inj.Count(k); n > 0 {
			res.Injected[k] = n
		}
	}
	res.Surfaced = surfacedFaults(rt)
	for k, injected := range res.Injected {
		if shortfall := injected - res.Surfaced[k]; shortfall > 0 {
			res.Missed += shortfall
		}
	}
	return res, nil
}

// surfacedFaults counts, per fault kind, the injections that left a
// visible trace in the report log or the dead-letter queue.
func surfacedFaults(rt *monitor.Runtime) map[faults.Kind]int {
	out := make(map[faults.Kind]int)
	var redundancyReports int
	for _, v := range rt.Log.Recent(100000) {
		switch {
		case strings.Contains(v.Note, "monitor fault [injected-trap]"):
			out[faults.EvalTrap]++
		case strings.Contains(v.Note, "monitor fault [helper-trap]"):
			out[faults.HelperFail]++
		case strings.Contains(v.Note, "monitor fault [corrupt-load]"):
			out[faults.LoadNaN]++
		case strings.Contains(v.Note, "failed (attempt"):
			out[faults.ActionFail]++
		case v.Guardrail == "replica-redundancy" && v.Note == "":
			redundancyReports++
		}
	}
	// Dead-lettered actions are already counted through their
	// "failed (attempt" notes; the queue itself is audited separately.
	// The replica events surface through the redundancy guardrail's
	// reports: loss ⇒ reports start, heal ⇒ the run ends with the
	// property holding again. Credit one surfacing per event when the
	// degraded window produced reports.
	if redundancyReports > 0 {
		out[faults.ReplicaFail] = 1
		out[faults.ReplicaHeal] = 1
	}
	return out
}

// Render prints the chaos run summary, including the recovery-latency
// accounting the bench's -chaos flag reports.
func (r *ChaosResult) Render() string {
	var b strings.Builder
	b.WriteString("== Chaos: Figure 2 under fault injection ==\n")
	fmt.Fprintf(&b, "post-shift tail: unguarded %.1fus vs guarded %.1fus (%.2fx better)\n",
		r.Fig2.UnguardedTailUS, r.Fig2.GuardedTailUS, r.Fig2.UnguardedTailUS/r.Fig2.GuardedTailUS)
	fmt.Fprintf(&b, "guardrail fired at %s (false_submit_rate=%.3f)\n",
		r.Fig2.GuardrailFiredAt, r.Fig2.FalseSubmitRateAtTrigger)
	fmt.Fprintf(&b, "breaker: quarantined at %s, rearmed at %s, recovery latency %s\n",
		r.QuarantinedAt, r.RearmedAt, r.RecoveryLatency)
	fmt.Fprintf(&b, "dead letters: %d | hook panics absorbed: %d\n", r.DeadLetters, r.HookPanics)
	b.WriteString("fault audit (injected -> surfaced):\n")
	for _, k := range []faults.Kind{faults.EvalTrap, faults.HelperFail, faults.LoadNaN,
		faults.LoadStale, faults.ActionFail, faults.ReplicaFail, faults.ReplicaHeal} {
		if n, ok := r.Injected[k]; ok {
			fmt.Fprintf(&b, "  %-12s %3d -> %d\n", k.String(), n, r.Surfaced[k])
		}
	}
	fmt.Fprintf(&b, "missed faults: %d\n", r.Missed)
	for name, s := range r.Monitors {
		fmt.Fprintf(&b, "monitor %-20s evals=%d violations=%d traps=%d quarantines=%d rearms=%d retries=%d deadletters=%d\n",
			name, s.Evals, s.Violations, s.Traps, s.Quarantines, s.Rearms, s.Retries, s.DeadLetters)
	}
	return b.String()
}
