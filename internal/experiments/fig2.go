package experiments

import (
	"fmt"
	"sort"
	"strings"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/linnos"
	"guardrails/internal/monitor"
	"guardrails/internal/provenance"
	"guardrails/internal/storage"
	"guardrails/internal/telemetry"
	"guardrails/internal/trace"
)

// Listing2 is the paper's Listing 2 guardrail, verbatim in our grammar.
const Listing2 = `
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        SAVE(ml_enabled, false)
    }
}`

// Fig2Config parameterizes the Figure 2 reproduction.
type Fig2Config struct {
	// Seed drives all randomness.
	Seed int64
	// TrainOps is the size of the pre-run training trace.
	TrainOps int
	// CalmSeconds and ShiftSeconds are the two phase durations.
	CalmSeconds  int
	ShiftSeconds int
	// SampleEvery is the moving-average sampling period.
	SampleEvery kernel.Time
	// Telemetry, when non-nil, is attached to the guarded stack (kernel
	// hook dispatch, monitor runtime, feature store, storage array); its
	// clock is bound to the guarded kernel.
	Telemetry *telemetry.Sink
	// Provenance, when non-nil, records sampled per-fire decision
	// provenance for the guarded stack's monitor runtime. The simulated
	// results are identical with or without it attached.
	Provenance *provenance.Recorder
	// CollectLatencies gathers every read's latency for the exact
	// percentile summaries in Fig2Result (BENCH_fig2.json input).
	CollectLatencies bool
}

// DefaultFig2Config returns the standard experiment: 20 s calm phase,
// then 40 s of the write-heavy shifted phase.
func DefaultFig2Config(seed int64) Fig2Config {
	return Fig2Config{
		Seed:         seed,
		TrainOps:     40000,
		CalmSeconds:  20,
		ShiftSeconds: 40,
		SampleEvery:  250 * kernel.Millisecond,
	}
}

// Fig2Point is one sample of the latency moving average for both
// systems.
type Fig2Point struct {
	TimeS       float64
	GuardedUS   float64
	UnguardedUS float64
}

// Fig2Result is the reproduction of the paper's Figure 2.
type Fig2Result struct {
	Series []Fig2Point
	// GuardrailFiredAt is when the false-submit guardrail disabled the
	// model in the guarded system (0 if it never fired).
	GuardrailFiredAt kernel.Time
	// ShiftAt is when the workload shifted.
	ShiftAt kernel.Time
	// Post-shift steady-state means (last quarter of the run).
	GuardedTailUS   float64
	UnguardedTailUS float64
	// CalmUS is the shared pre-shift mean (guarded system).
	CalmUS float64
	// FalseSubmitRateAtTrigger is the rate the guardrail saw.
	FalseSubmitRateAtTrigger float64
	// GuardedRead / UnguardedRead are exact whole-run read-latency
	// percentiles, filled when Fig2Config.CollectLatencies is set.
	GuardedRead   LatencySummary
	UnguardedRead LatencySummary
	// GuardedMonitorStats is the Listing 2 monitor's final accounting.
	GuardedMonitorStats monitor.Stats
}

// LatencySummary is an exact (sorted-sample) latency summary in
// microseconds.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
}

// summarizeLatencies computes exact percentiles from per-read latencies
// (simulated ns), reported in µs. The input slice is sorted in place.
func summarizeLatencies(ns []float64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ns)
	var sum float64
	for _, v := range ns {
		sum += v
	}
	q := func(p float64) float64 {
		i := int(p * float64(len(ns)-1))
		return ns[i] / 1e3
	}
	return LatencySummary{
		Count:  len(ns),
		MeanUS: sum / float64(len(ns)) / 1e3,
		P50US:  q(0.50),
		P95US:  q(0.95),
		P99US:  q(0.99),
	}
}

// fig2System is one complete LinnOS stack (kernel, store, array, engine).
type fig2System struct {
	k      *kernel.Kernel
	st     *featurestore.Store
	arr    *storage.Array
	engine *linnos.Engine
	wl     *linnos.MixedWorkload

	// readLats accumulates per-read latencies (simulated ns) when
	// collect is set, for the exact bench percentiles.
	collect  bool
	readLats []float64
}

// stackParams tune the LinnOS stack for an experiment.
type stackParams struct {
	// gcDuration is the flash GC pause: it sets the cost of an unhedged
	// misprediction (the false-submit exposure).
	gcDuration kernel.Time
	// inferenceCost is added to every ML-routed read (P5 sweeps it).
	inferenceCost kernel.Time
	// revokeTimeout is the baseline failover hedge.
	revokeTimeout kernel.Time
}

// fig2Params is the Figure 2 configuration: long GC pauses make
// unhedged mispredictions expensive — the exposure the paper's
// false-submit guardrail bounds.
func fig2Params() stackParams {
	return stackParams{
		gcDuration:    16 * kernel.Millisecond,
		inferenceCost: linnos.DefaultConfig().InferenceCost,
		revokeTimeout: 1500 * kernel.Microsecond,
	}
}

func newFig2System(seed int64, model *linnos.Classifier) (*fig2System, error) {
	return newStack(seed, model, fig2Params())
}

// newStack builds a complete LinnOS stack with the given parameters.
func newStack(seed int64, model *linnos.Classifier, p stackParams) (*fig2System, error) {
	mkDev := func(name string, s int64) (*storage.Device, error) {
		cfg := storage.DefaultDeviceConfig(name, s)
		cfg.BackgroundGCRate = 0.5
		cfg.GCDuration = p.gcDuration
		// Independent FTL layouts per replica: the same LBA maps to
		// different chips, so failover can actually escape congestion.
		cfg.ChipSalt = uint64(trace.Split(s, "layout/"+name))
		return storage.NewDevice(cfg)
	}
	primary, err := mkDev("primary", seed)
	if err != nil {
		return nil, err
	}
	replica, err := mkDev("replica", seed+1)
	if err != nil {
		return nil, err
	}
	arr, err := storage.NewArray(primary, replica)
	if err != nil {
		return nil, err
	}
	k := kernel.New()
	st := featurestore.New()
	ecfg := linnos.DefaultConfig()
	ecfg.InferenceCost = p.inferenceCost
	// Revocation and re-issue are not free in real failover stacks,
	// which is precisely the cost LinnOS's upfront prediction avoids
	// (the model's in-distribution advantage). No safety backstop on the
	// ML path: the model's word is final — the exposure the guardrail
	// exists to bound.
	ecfg.RevokeTimeout = p.revokeTimeout
	ecfg.MLSafetyTimeout = 0
	// Convert explicitly so a nil *Classifier becomes a nil interface
	// (a typed nil would make the engine believe it has a model).
	var pred linnos.Predictor
	if model != nil {
		pred = model
	}
	engine, err := linnos.NewEngine(k, st, arr, pred, ecfg)
	if err != nil {
		return nil, err
	}
	keys := trace.NewZipfKeys(trace.Split(seed, "keys"), 1<<16, 1.2, true)
	wl := linnos.NewMixedWorkload(seed, 20000, 0.05, keys)
	// Reads have Zipf locality; writes are log-structured (uniform) so
	// no single chip is write-overloaded.
	wl.SetWriteKeys(trace.NewUniformKeys(trace.Split(seed, "wkeys"), 1<<16))
	return &fig2System{k: k, st: st, arr: arr, engine: engine, wl: wl}, nil
}

// run advances the system until the workload clock passes until,
// applying ops and letting kernel timers fire in between.
func (s *fig2System) run(until kernel.Time) {
	for s.wl.Now() < until {
		op := s.wl.Next()
		s.k.RunUntil(op.At)
		if op.Write {
			s.engine.Write(op.At, op.LBA)
		} else {
			lat, _ := s.engine.Read(op.At, op.LBA)
			if s.collect {
				s.readLats = append(s.readLats, float64(lat))
			}
		}
	}
}

// trainFig2Model trains the LinnOS classifier on a scratch array under
// the calm-phase workload with the Figure 2 stack parameters.
func trainFig2Model(seed int64) (*linnos.Classifier, error) {
	return trainModel(seed, fig2Params())
}

// trainModel trains on scratch devices matching the experiment's
// parameters.
func trainModel(seed int64, p stackParams) (*linnos.Classifier, error) {
	mk := func(name string, s int64) (*storage.Device, error) {
		cfg := storage.DefaultDeviceConfig(name, s)
		cfg.BackgroundGCRate = 0.5
		cfg.GCDuration = p.gcDuration
		cfg.ChipSalt = uint64(trace.Split(s, "layout/"+name))
		return storage.NewDevice(cfg)
	}
	primary, err := mk("train-primary", trace.Split(seed, "train0"))
	if err != nil {
		return nil, err
	}
	replica, err := mk("train-replica", trace.Split(seed, "train1"))
	if err != nil {
		return nil, err
	}
	arr, err := storage.NewArray(primary, replica)
	if err != nil {
		return nil, err
	}
	keys := trace.NewZipfKeys(trace.Split(seed, "train-keys"), 1<<16, 1.2, true)
	wl := linnos.NewMixedWorkload(trace.Split(seed, "train-wl"), 20000, 0.05, keys)
	wl.SetWriteKeys(trace.NewUniformKeys(trace.Split(seed, "train-wkeys"), 1<<16))
	model, _, err := linnos.TrainedClassifier(arr, wl, 40000, kernel.Millisecond, trace.Split(seed, "model"), 0.75)
	return model, err
}

// RunFig2 reproduces Figure 2: two identical LinnOS deployments run the
// same workload; one carries the Listing 2 guardrail, the other does
// not. Mid-run the workload shifts write-heavy; the guarded system's
// false-submit guardrail fires and falls back to the hedged baseline,
// recovering its latency, while the unguarded system keeps degrading.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	model, err := trainFig2Model(cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("fig2: training: %w", err)
	}

	guarded, err := newFig2System(cfg.Seed+100, model)
	if err != nil {
		return nil, err
	}
	unguarded, err := newFig2System(cfg.Seed+100, model) // identical seeds
	if err != nil {
		return nil, err
	}

	guarded.collect = cfg.CollectLatencies
	unguarded.collect = cfg.CollectLatencies

	rt := monitor.New(guarded.k, guarded.st)
	if cfg.Telemetry != nil {
		// The guarded stack is the instrumented one: hook dispatch,
		// monitor evaluations, feature-store traffic, and storage GC all
		// flow into the one sink.
		cfg.Telemetry.SetClock(func() telemetry.Time { return int64(guarded.k.Now()) })
		guarded.k.SetTelemetry(cfg.Telemetry)
		guarded.st.SetTelemetry(cfg.Telemetry)
		guarded.arr.SetTelemetry(cfg.Telemetry)
		rt.SetTelemetry(cfg.Telemetry)
	}
	if cfg.Provenance != nil {
		rt.SetProvenance(cfg.Provenance)
	}
	ms, err := rt.LoadSource(Listing2, monitor.Options{})
	if err != nil {
		return nil, fmt.Errorf("fig2: loading guardrail: %w", err)
	}
	mon := ms[0]

	res := &Fig2Result{ShiftAt: kernel.Time(cfg.CalmSeconds) * kernel.Second}
	total := kernel.Time(cfg.CalmSeconds+cfg.ShiftSeconds) * kernel.Second

	var calmSum float64
	var calmN int
	shifted := false
	for t := cfg.SampleEvery; t <= total; t += cfg.SampleEvery {
		if !shifted && t > res.ShiftAt {
			guarded.wl.SetWriteFraction(0.4)
			unguarded.wl.SetWriteFraction(0.4)
			shifted = true
		}
		guarded.run(t)
		unguarded.run(t)
		p := Fig2Point{
			TimeS:       float64(t) / float64(kernel.Second),
			GuardedUS:   guarded.st.Load(linnos.KeyLatencyMA),
			UnguardedUS: unguarded.st.Load(linnos.KeyLatencyMA),
		}
		res.Series = append(res.Series, p)
		if t <= res.ShiftAt {
			calmSum += p.GuardedUS
			calmN++
		}
		if res.GuardrailFiredAt == 0 && mon.Stats().ActionsFired > 0 {
			res.GuardrailFiredAt = guarded.k.Now()
			res.FalseSubmitRateAtTrigger = guarded.st.Load(linnos.KeyFalseSubmitRate)
		}
	}
	if calmN > 0 {
		res.CalmUS = calmSum / float64(calmN)
	}
	tail := len(res.Series) / 4
	var gSum, uSum float64
	for _, p := range res.Series[len(res.Series)-tail:] {
		gSum += p.GuardedUS
		uSum += p.UnguardedUS
	}
	res.GuardedTailUS = gSum / float64(tail)
	res.UnguardedTailUS = uSum / float64(tail)
	res.GuardedMonitorStats = mon.Stats()
	if cfg.CollectLatencies {
		res.GuardedRead = summarizeLatencies(guarded.readLats)
		res.UnguardedRead = summarizeLatencies(unguarded.readLats)
	}
	return res, nil
}

// Render prints the Figure 2 series and summary the way the paper's
// figure reads: time on the x-axis, latency moving average on the y.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("== Figure 2: I/O latency moving average (us) ==\n")
	b.WriteString("time_s  linnos  linnos_w_guardrails\n")
	for _, p := range r.Series {
		fmt.Fprintf(&b, "%6.2f  %6.1f  %6.1f\n", p.TimeS, p.UnguardedUS, p.GuardedUS)
	}
	fmt.Fprintf(&b, "\nworkload shift at %s; guardrail fired at %s (false_submit_rate=%.3f)\n",
		r.ShiftAt, r.GuardrailFiredAt, r.FalseSubmitRateAtTrigger)
	fmt.Fprintf(&b, "calm mean %.1fus | post-shift tail: unguarded %.1fus vs guarded %.1fus (%.2fx better)\n",
		r.CalmUS, r.UnguardedTailUS, r.GuardedTailUS, r.UnguardedTailUS/r.GuardedTailUS)
	return b.String()
}
