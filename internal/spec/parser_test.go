package spec

import (
	"strings"
	"testing"
)

// listing2 is the paper's Listing 2, verbatim.
const listing2 = `
guardrail low-false-submit {
    trigger: {
        TIMER(start_time, 1e9) // Periodically check every 1s.
    },
    rule: {
        LOAD(false_submit_rate) <= 0.05
    },
    action: {
        SAVE(ml_enabled, false)
    }
}
`

func TestParseListing2(t *testing.T) {
	g, err := ParseOne(listing2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "low-false-submit" {
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Triggers) != 1 || len(g.Rules) != 1 || len(g.Actions) != 1 {
		t.Fatalf("shape: %d triggers, %d rules, %d actions", len(g.Triggers), len(g.Rules), len(g.Actions))
	}
	tt, ok := g.Triggers[0].(*TimerTrigger)
	if !ok {
		t.Fatalf("trigger type %T", g.Triggers[0])
	}
	if tt.Start != 0 || tt.Interval != 1e9 || tt.Stop != 0 {
		t.Errorf("timer = %+v", tt)
	}
	rule, ok := g.Rules[0].(*BinaryExpr)
	if !ok || rule.Op != TokLe {
		t.Fatalf("rule = %s", ExprString(g.Rules[0]))
	}
	ld, ok := rule.X.(*LoadExpr)
	if !ok || ld.Key != "false_submit_rate" {
		t.Errorf("rule lhs = %s", ExprString(rule.X))
	}
	if num, ok := rule.Y.(*NumLit); !ok || num.Value != 0.05 {
		t.Errorf("rule rhs = %s", ExprString(rule.Y))
	}
	sv, ok := g.Actions[0].(*SaveAction)
	if !ok || sv.Key != "ml_enabled" {
		t.Fatalf("action = %v", g.Actions[0])
	}
	if b, ok := sv.Value.(*BoolLit); !ok || b.Value {
		t.Errorf("save value = %s", ExprString(sv.Value))
	}
	if err := Check(&File{Guardrails: []*Guardrail{g}}); err != nil {
		t.Errorf("listing 2 fails check: %v", err)
	}
}

func TestParseAllTriggerForms(t *testing.T) {
	src := `
guardrail multi {
    trigger: {
        TIMER(0, 5e8, 1e10),
        TIMER(100, 200)
        FUNCTION(io_submit);
    },
    rule: { LOAD(x) < 1 },
    action: { REPORT(LOAD(x)) }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Triggers) != 3 {
		t.Fatalf("triggers = %d", len(g.Triggers))
	}
	t1 := g.Triggers[0].(*TimerTrigger)
	if t1.Start != 0 || t1.Interval != 5e8 || t1.Stop != 1e10 {
		t.Errorf("t1 = %+v", t1)
	}
	ft := g.Triggers[2].(*FuncTrigger)
	if ft.Site != "io_submit" {
		t.Errorf("site = %q", ft.Site)
	}
}

func TestParseAllActionForms(t *testing.T) {
	src := `
guardrail acts {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(err_rate) <= 0.1 && LOAD(lat) < 100 },
    action: {
        REPORT(LOAD(err_rate), now())
        REPLACE(learned_policy, baseline_policy)
        RETRAIN(io_model)
        DEPRIORITIZE(batch_jobs, 19)
        DEPRIORITIZE(bg_tasks)
        SAVE(ml_enabled, 0)
    }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Actions) != 6 {
		t.Fatalf("actions = %d", len(g.Actions))
	}
	if r := g.Actions[0].(*ReportAction); len(r.Args) != 2 {
		t.Errorf("report args = %d", len(r.Args))
	}
	rp := g.Actions[1].(*ReplaceAction)
	if rp.Old != "learned_policy" || rp.New != "baseline_policy" {
		t.Errorf("replace = %+v", rp)
	}
	if rt := g.Actions[2].(*RetrainAction); rt.Model != "io_model" {
		t.Errorf("retrain = %+v", rt)
	}
	d1 := g.Actions[3].(*DeprioritizeAction)
	if d1.Target != "batch_jobs" || d1.Priority == nil {
		t.Errorf("deprioritize = %+v", d1)
	}
	d2 := g.Actions[4].(*DeprioritizeAction)
	if d2.Priority != nil {
		t.Errorf("deprioritize default = %+v", d2)
	}
	if err := CheckGuardrail(g); err != nil {
		t.Errorf("check: %v", err)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `
guardrail prec {
    trigger: { TIMER(0, 1) },
    rule: { LOAD(a) + LOAD(b) * 2 < 10 || LOAD(c) > 5 && LOAD(d) != 0 },
    action: { REPORT() }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(g.Rules[0])
	want := "(((LOAD(a) + (LOAD(b) * 2)) < 10) || ((LOAD(c) > 5) && (LOAD(d) != 0)))"
	if got != want {
		t.Errorf("precedence:\n got %s\nwant %s", got, want)
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	src := `
guardrail un {
    trigger: { TIMER(0, 1) },
    rule: { !(LOAD(x) > 3) && -LOAD(y) < abs(LOAD(z) - 2) },
    action: { REPORT() }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	got := ExprString(g.Rules[0])
	want := "(!(LOAD(x) > 3) && (-LOAD(y) < abs((LOAD(z) - 2))))"
	if got != want {
		t.Errorf("got %s, want %s", got, want)
	}
}

func TestParseBareIdentifiersAsLoads(t *testing.T) {
	src := `
guardrail bare {
    trigger: { TIMER(0, 1) },
    rule: { page_fault_latency <= 2e6 },
    action: { REPORT(page_fault_latency) }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	rule := g.Rules[0].(*BinaryExpr)
	if id, ok := rule.X.(*IdentExpr); !ok || id.Name != "page_fault_latency" {
		t.Errorf("lhs = %s", ExprString(rule.X))
	}
	if err := CheckGuardrail(g); err != nil {
		t.Errorf("check: %v", err)
	}
}

func TestParseMultipleGuardrails(t *testing.T) {
	src := listing2 + `
guardrail second {
    trigger: { FUNCTION(sched_pick) },
    rule: { LOAD(delay) < 1e8 },
    action: { REPORT() }
}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Guardrails) != 2 {
		t.Fatalf("guardrails = %d", len(f.Guardrails))
	}
	if f.Guardrails[1].Name != "second" {
		t.Errorf("second name = %q", f.Guardrails[1].Name)
	}
	if err := Check(f); err != nil {
		t.Error(err)
	}
}

func TestParseSectionsAnyOrder(t *testing.T) {
	src := `
guardrail reorder {
    action: { REPORT() },
    rule: { LOAD(x) < 1 },
    trigger: { TIMER(0, 1) }
}`
	g, err := ParseOne(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Triggers) != 1 || len(g.Rules) != 1 || len(g.Actions) != 1 {
		t.Error("sections lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", "no guardrails"},
		{"not-guardrail", "foo bar {}", `expected "guardrail"`},
		{"bad-section", "guardrail g { bogus: {} }", "unknown section"},
		{"dup-section", "guardrail g { rule: { LOAD(x) < 1 }, rule: { LOAD(y) < 1 } }", "duplicate section"},
		{"bad-trigger", "guardrail g { trigger: { WHENEVER(x) } }", "unknown trigger"},
		{"timer-arity", "guardrail g { trigger: { TIMER(1) } }", "TIMER takes 2 or 3"},
		{"timer-bad-arg", "guardrail g { trigger: { TIMER(foo, 1) } }", "must be a number"},
		{"bad-action", "guardrail g { trigger: {TIMER(0,1)}, rule: {LOAD(x)<1}, action: { EXPLODE(x) } }", "unknown action"},
		{"unclosed", "guardrail g { trigger: { TIMER(0,1) }", "unexpected end of input"},
		{"trailing-expr", "guardrail g { rule: { LOAD(x) < } }", "expected expression"},
		{"replace-arity", "guardrail g { trigger: {TIMER(0,1)}, rule: {LOAD(x)<1}, action: { REPLACE(a) } }", "expected ','"},
		{"save-missing-value", "guardrail g { trigger: {TIMER(0,1)}, rule: {LOAD(x)<1}, action: { SAVE(k) } }", "expected ','"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("%q parsed without error", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestParseOneRejectsMultiple(t *testing.T) {
	if _, err := ParseOne(listing2 + listing2[1:]); err == nil {
		t.Error("two guardrails should error in ParseOne")
	}
}

func TestGuardrailStringRoundTrip(t *testing.T) {
	g, err := ParseOne(listing2)
	if err != nil {
		t.Fatal(err)
	}
	rendered := g.String()
	// The canonical form must itself parse to the same structure.
	g2, err := ParseOne(rendered)
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v\n%s", err, rendered)
	}
	if g2.Name != g.Name || len(g2.Rules) != len(g.Rules) {
		t.Error("round trip changed structure")
	}
	if g2.String() != rendered {
		t.Error("canonical form is not a fixed point")
	}
}
