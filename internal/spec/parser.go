package spec

import (
	"fmt"
	"strings"
)

// Parser is a recursive-descent parser for guardrail specifications.
type Parser struct {
	lex *Lexer
	cur Token
	err error
}

// Parse parses a specification source into a File. The result has not
// been semantically checked; run Check on it before compiling.
func Parse(src string) (*File, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	f := &File{}
	for p.cur.Kind != TokEOF {
		if p.cur.Kind == TokIdent && p.cur.Text == "feature" {
			d, err := p.parseFeatureDecl()
			if err != nil {
				return nil, err
			}
			f.Features = append(f.Features, d)
			p.skipSeparators()
			continue
		}
		if p.cur.Kind == TokIdent && p.cur.Text == "assert" {
			d, err := p.parsePropertyDecl()
			if err != nil {
				return nil, err
			}
			f.Properties = append(f.Properties, d)
			p.skipSeparators()
			continue
		}
		g, err := p.parseGuardrail()
		if err != nil {
			return nil, err
		}
		f.Guardrails = append(f.Guardrails, g)
	}
	if len(f.Guardrails) == 0 {
		return nil, errAt(Pos{1, 1}, "no guardrails in input")
	}
	return f, nil
}

// ParseOne parses a source containing exactly one guardrail.
func ParseOne(src string) (*Guardrail, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(f.Guardrails) != 1 {
		return nil, fmt.Errorf("spec: expected exactly one guardrail, found %d", len(f.Guardrails))
	}
	return f.Guardrails[0], nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.cur = Token{Kind: TokEOF, Pos: p.cur.Pos}
		return
	}
	p.cur = t
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.cur.Kind != k {
		return Token{}, errAt(p.cur.Pos, "expected %s, found %s", k, p.describeCur())
	}
	t := p.cur
	p.next()
	if p.err != nil {
		return Token{}, p.err
	}
	return t, nil
}

func (p *Parser) describeCur() string {
	switch p.cur.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", p.cur.Text)
	case TokNumber:
		return fmt.Sprintf("number %s", p.cur.Text)
	default:
		return p.cur.Kind.String()
	}
}

func (p *Parser) expectIdent(word string) error {
	if p.cur.Kind != TokIdent || p.cur.Text != word {
		return errAt(p.cur.Pos, "expected %q, found %s", word, p.describeCur())
	}
	p.next()
	return p.err
}

// skipSeparators consumes any run of ',' and ';' tokens.
func (p *Parser) skipSeparators() {
	for p.cur.Kind == TokComma || p.cur.Kind == TokSemi {
		p.next()
	}
}

func (p *Parser) parseGuardrail() (*Guardrail, error) {
	pos := p.cur.Pos
	if err := p.expectIdent("guardrail"); err != nil {
		return nil, err
	}
	name, err := p.parseHyphenName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	g := &Guardrail{Name: name, Pos: pos}
	seen := map[string]bool{}
	for p.cur.Kind != TokRBrace {
		if p.cur.Kind == TokEOF {
			return nil, errAt(p.cur.Pos, "unexpected end of input inside guardrail %q", name)
		}
		secTok, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		section := secTok.Text
		if section != "trigger" && section != "rule" && section != "action" {
			return nil, errAt(secTok.Pos, "unknown section %q (want trigger, rule, or action)", section)
		}
		if seen[section] {
			return nil, errAt(secTok.Pos, "duplicate section %q", section)
		}
		seen[section] = true
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokLBrace); err != nil {
			return nil, err
		}
		switch section {
		case "trigger":
			if err := p.parseTriggers(g); err != nil {
				return nil, err
			}
		case "rule":
			if err := p.parseRules(g); err != nil {
				return nil, err
			}
		case "action":
			if err := p.parseActions(g); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		p.skipSeparators()
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return g, nil
}

// parseFeatureDecl parses a top-level feature range declaration:
//
//	feature <key> range(<lo>, <hi>)
func (p *Parser) parseFeatureDecl() (*FeatureDecl, error) {
	pos := p.cur.Pos
	if err := p.expectIdent("feature"); err != nil {
		return nil, err
	}
	key, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("range"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	lo, err := p.parseSignedNumber()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return nil, err
	}
	hi, err := p.parseSignedNumber()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &FeatureDecl{Key: key.Text, Lo: lo, Hi: hi, Pos: pos}, nil
}

// parseSignedNumber parses an optionally negated numeric literal.
func (p *Parser) parseSignedNumber() (float64, error) {
	neg := false
	if p.cur.Kind == TokMinus {
		neg = true
		p.next()
	}
	t, err := p.expect(TokNumber)
	if err != nil {
		return 0, err
	}
	if neg {
		return -t.Num, nil
	}
	return t.Num, nil
}

// parseHyphenName parses identifiers joined by hyphens
// ("low-false-submit") into a single name.
func (p *Parser) parseHyphenName() (string, error) {
	first, err := p.expect(TokIdent)
	if err != nil {
		return "", err
	}
	parts := []string{first.Text}
	for p.cur.Kind == TokMinus {
		p.next()
		part, err := p.expect(TokIdent)
		if err != nil {
			return "", err
		}
		parts = append(parts, part.Text)
	}
	return strings.Join(parts, "-"), nil
}

func (p *Parser) parseTriggers(g *Guardrail) error {
	p.skipSeparators()
	for p.cur.Kind != TokRBrace {
		t, err := p.parseTrigger()
		if err != nil {
			return err
		}
		g.Triggers = append(g.Triggers, t)
		p.skipSeparators()
	}
	return nil
}

func (p *Parser) parseTrigger() (Trigger, error) {
	tok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	switch tok.Text {
	case "TIMER":
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		var args []float64
		for i := 0; ; i++ {
			v, err := p.parseTimerArg(i)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
			if p.cur.Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		t := &TimerTrigger{Pos: tok.Pos}
		switch len(args) {
		case 2:
			t.Start, t.Interval = args[0], args[1]
		case 3:
			t.Start, t.Interval, t.Stop = args[0], args[1], args[2]
		default:
			return nil, errAt(tok.Pos, "TIMER takes 2 or 3 arguments (start, interval[, stop]), got %d", len(args))
		}
		return t, nil
	case "FUNCTION":
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		site, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &FuncTrigger{Site: site.Text, Pos: tok.Pos}, nil
	default:
		return nil, errAt(tok.Pos, "unknown trigger %q (want TIMER or FUNCTION)", tok.Text)
	}
}

// parseTimerArg accepts a number or the symbolic identifiers start_time
// / stop_time (both meaning 0: boot and forever, matching the paper's
// Listing 2 usage).
func (p *Parser) parseTimerArg(i int) (float64, error) {
	neg := false
	if p.cur.Kind == TokMinus {
		neg = true
		p.next()
	}
	switch p.cur.Kind {
	case TokNumber:
		if neg {
			v := -p.cur.Num
			p.next()
			return v, nil
		}
		v := p.cur.Num
		p.next()
		return v, nil
	case TokIdent:
		switch p.cur.Text {
		case "start_time", "stop_time":
			p.next()
			return 0, nil
		}
		return 0, errAt(p.cur.Pos, "TIMER argument %d must be a number, start_time, or stop_time; found %q", i+1, p.cur.Text)
	default:
		return 0, errAt(p.cur.Pos, "TIMER argument %d must be a number; found %s", i+1, p.describeCur())
	}
}

func (p *Parser) parseRules(g *Guardrail) error {
	p.skipSeparators()
	for p.cur.Kind != TokRBrace {
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		g.Rules = append(g.Rules, e)
		p.skipSeparators()
	}
	return nil
}

func (p *Parser) parseActions(g *Guardrail) error {
	p.skipSeparators()
	for p.cur.Kind != TokRBrace {
		a, err := p.parseAction()
		if err != nil {
			return err
		}
		g.Actions = append(g.Actions, a)
		p.skipSeparators()
	}
	return nil
}

func (p *Parser) parseAction() (Action, error) {
	tok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	open := func() error { _, err := p.expect(TokLParen); return err }
	closeP := func() error { _, err := p.expect(TokRParen); return err }
	switch tok.Text {
	case "REPORT":
		if err := open(); err != nil {
			return nil, err
		}
		a := &ReportAction{Pos: tok.Pos}
		if p.cur.Kind != TokRParen {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				a.Args = append(a.Args, e)
				if p.cur.Kind != TokComma {
					break
				}
				p.next()
			}
		}
		return a, closeP()
	case "REPLACE":
		if err := open(); err != nil {
			return nil, err
		}
		oldT, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		newT, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &ReplaceAction{Old: oldT.Text, New: newT.Text, Pos: tok.Pos}, closeP()
	case "RETRAIN":
		if err := open(); err != nil {
			return nil, err
		}
		m, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		return &RetrainAction{Model: m.Text, Pos: tok.Pos}, closeP()
	case "DEPRIORITIZE":
		if err := open(); err != nil {
			return nil, err
		}
		target, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		a := &DeprioritizeAction{Target: target.Text, Pos: tok.Pos}
		if p.cur.Kind == TokComma {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Priority = e
		}
		return a, closeP()
	case "SAVE":
		if err := open(); err != nil {
			return nil, err
		}
		key, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &SaveAction{Key: key.Text, Value: e, Pos: tok.Pos}, closeP()
	default:
		return nil, errAt(tok.Pos, "unknown action %q (want REPORT, REPLACE, RETRAIN, DEPRIORITIZE, or SAVE)", tok.Text)
	}
}

// Expression grammar, lowest to highest precedence:
//
//	or   := and ('||' and)*
//	and  := cmp ('&&' cmp)*
//	cmp  := add (('<'|'<='|'>'|'>='|'=='|'!=') add)?   (non-associative)
//	add  := mul (('+'|'-') mul)*
//	mul  := unary (('*'|'/') unary)*
//	unary := ('-'|'!') unary | primary
//	primary := NUMBER | 'true' | 'false' | LOAD '(' ident ')'
//	         | ident '(' args ')' | ident | '(' or ')'
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokOr {
		pos := p.cur.Pos
		p.next()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: TokOr, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokAnd {
		pos := p.cur.Pos
		p.next()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: TokAnd, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *Parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	switch p.cur.Kind {
	case TokLt, TokLe, TokGt, TokGe, TokEq, TokNe:
		op := p.cur.Kind
		pos := p.cur.Pos
		p.next()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, X: x, Y: y, Pos: pos}, nil
	}
	return x, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokPlus || p.cur.Kind == TokMinus {
		op := p.cur.Kind
		pos := p.cur.Pos
		p.next()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *Parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur.Kind == TokStar || p.cur.Kind == TokSlash {
		op := p.cur.Kind
		pos := p.cur.Pos
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y, Pos: pos}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.cur.Kind == TokMinus || p.cur.Kind == TokNot {
		op := p.cur.Kind
		pos := p.cur.Pos
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Pos: pos}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur.Kind {
	case TokNumber:
		e := &NumLit{Value: p.cur.Num, Pos: p.cur.Pos}
		p.next()
		return e, nil
	case TokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		tok := p.cur
		p.next()
		switch tok.Text {
		case "true":
			return &BoolLit{Value: true, Pos: tok.Pos}, nil
		case "false":
			return &BoolLit{Value: false, Pos: tok.Pos}, nil
		case "LOAD":
			if _, err := p.expect(TokLParen); err != nil {
				return nil, err
			}
			key, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &LoadExpr{Key: key.Text, Pos: tok.Pos}, nil
		}
		if p.cur.Kind == TokLParen {
			p.next()
			call := &CallExpr{Fn: tok.Text, Pos: tok.Pos}
			if p.cur.Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.cur.Kind != TokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &IdentExpr{Name: tok.Text, Pos: tok.Pos}, nil
	default:
		if p.err != nil {
			return nil, p.err
		}
		return nil, errAt(p.cur.Pos, "expected expression, found %s", p.describeCur())
	}
}
