package spec

import (
	"fmt"
	"strings"
)

// File is a parsed specification source: one or more guardrails, plus
// any top-level feature range declarations.
type File struct {
	Guardrails []*Guardrail
	// Features are the file's feature range declarations, in source
	// order. They are advisory metadata for static analysis (vet's GV010
	// threshold check, the deployment interference analyzer's input
	// refinement); the compiler and runtime ignore them.
	Features []*FeatureDecl
	// Properties are the file's declared temporal properties
	// ("assert always …" / "assert eventually … within K"), in source
	// order. The bounded model checker (internal/spec/modelcheck) proves
	// or refutes them against the whole deployment; the compiler and
	// runtime ignore them.
	Properties []*PropertyDecl
}

// FeatureDecl declares the legal range of a feature-store key:
//
//	feature false_submit_rate range(0, 1)
//
// The declaration is a contract about the producer (the instrumented
// subsystem or another guardrail's SAVE): consumers may assume LOADs of
// the key yield ordinary values in [Lo, Hi]. Static analyses use it to
// tighten value intervals; nothing enforces it at runtime.
type FeatureDecl struct {
	Key    string
	Lo, Hi float64
	Pos    Pos
}

// String renders the declaration in source form.
func (d *FeatureDecl) String() string {
	return fmt.Sprintf("feature %s range(%g, %g)", d.Key, d.Lo, d.Hi)
}

// Guardrail is one named guardrail: triggers say when to evaluate,
// rules say what must hold, actions say what to do on violation.
type Guardrail struct {
	Name     string
	Triggers []Trigger
	Rules    []Expr
	Actions  []Action
	Pos      Pos
}

// Trigger determines when rules are evaluated (§4.1).
type Trigger interface {
	trigger()
	fmt.Stringer
}

// TimerTrigger evaluates rules periodically:
// TIMER(start, interval[, stop]), times in nanoseconds. Start may be the
// symbolic identifier start_time (= 0, boot) and stop the symbolic
// stop_time (= 0, forever).
type TimerTrigger struct {
	Start    float64
	Interval float64
	Stop     float64 // 0 = forever
	Pos      Pos
}

func (*TimerTrigger) trigger() {}

// String renders the trigger in source form.
func (t *TimerTrigger) String() string {
	if t.Stop > 0 {
		return fmt.Sprintf("TIMER(%g, %g, %g)", t.Start, t.Interval, t.Stop)
	}
	return fmt.Sprintf("TIMER(%g, %g)", t.Start, t.Interval)
}

// FuncTrigger evaluates rules whenever a kernel hook site fires:
// FUNCTION(site_name).
type FuncTrigger struct {
	Site string
	Pos  Pos
}

func (*FuncTrigger) trigger() {}

// String renders the trigger in source form.
func (t *FuncTrigger) String() string { return fmt.Sprintf("FUNCTION(%s)", t.Site) }

// Action is a corrective response to a property violation (§4.2).
type Action interface {
	action()
	fmt.Stringer
}

// ReportAction logs system context on violation: REPORT(expr, ...).
// A1 in the paper's taxonomy.
type ReportAction struct {
	Args []Expr
	Pos  Pos
}

func (*ReportAction) action() {}

// String renders the action in source form.
func (a *ReportAction) String() string {
	parts := make([]string, len(a.Args))
	for i, e := range a.Args {
		parts[i] = ExprString(e)
	}
	return fmt.Sprintf("REPORT(%s)", strings.Join(parts, ", "))
}

// ReplaceAction swaps a misbehaving learned policy for a fallback:
// REPLACE(old_policy, new_policy). A2.
type ReplaceAction struct {
	Old string
	New string
	Pos Pos
}

func (*ReplaceAction) action() {}

// String renders the action in source form.
func (a *ReplaceAction) String() string { return fmt.Sprintf("REPLACE(%s, %s)", a.Old, a.New) }

// RetrainAction queues asynchronous retraining of a model: RETRAIN(model).
// A3.
type RetrainAction struct {
	Model string
	Pos   Pos
}

func (*RetrainAction) action() {}

// String renders the action in source form.
func (a *RetrainAction) String() string { return fmt.Sprintf("RETRAIN(%s)", a.Model) }

// DeprioritizeAction demotes (or with priority 20, kills) a task group:
// DEPRIORITIZE(target[, priority]). A4.
type DeprioritizeAction struct {
	Target   string
	Priority Expr // nil = runtime default demotion
	Pos      Pos
}

func (*DeprioritizeAction) action() {}

// String renders the action in source form.
func (a *DeprioritizeAction) String() string {
	if a.Priority != nil {
		return fmt.Sprintf("DEPRIORITIZE(%s, %s)", a.Target, ExprString(a.Priority))
	}
	return fmt.Sprintf("DEPRIORITIZE(%s)", a.Target)
}

// SaveAction writes a feature-store cell: SAVE(key, expr). Used for
// control knobs the policies read back (as in Listing 2's
// SAVE(ml_enabled, false)).
type SaveAction struct {
	Key   string
	Value Expr
	Pos   Pos
}

func (*SaveAction) action() {}

// String renders the action in source form.
func (a *SaveAction) String() string {
	return fmt.Sprintf("SAVE(%s, %s)", a.Key, ExprString(a.Value))
}

// Expr is a rule expression node. Expressions are numeric with the
// truthiness convention 0 = false.
type Expr interface {
	expr()
	ExprPos() Pos
}

// NumLit is a numeric literal.
type NumLit struct {
	Value float64
	Pos   Pos
}

// BoolLit is true/false (compiled as 1/0).
type BoolLit struct {
	Value bool
	Pos   Pos
}

// LoadExpr reads a feature-store key: LOAD(key).
type LoadExpr struct {
	Key string
	Pos Pos
}

// IdentExpr is a bare identifier operand; the checker resolves it as an
// implicit LOAD of that key.
type IdentExpr struct {
	Name string
	Pos  Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op  TokenKind // TokMinus or TokNot
	X   Expr
	Pos Pos
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	Op   TokenKind
	X, Y Expr
	Pos  Pos
}

// CallExpr is a builtin function call: abs(x), min(x,y), max(x,y),
// sqrt(x), log2(x), now().
type CallExpr struct {
	Fn   string
	Args []Expr
	Pos  Pos
}

func (*NumLit) expr()     {}
func (*BoolLit) expr()    {}
func (*LoadExpr) expr()   {}
func (*IdentExpr) expr()  {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CallExpr) expr()   {}

// ExprPos returns the node's source position.
func (e *NumLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *BoolLit) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *LoadExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *IdentExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *UnaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }

// ExprPos returns the node's source position.
func (e *CallExpr) ExprPos() Pos { return e.Pos }

// ExprString renders an expression in source form (fully parenthesized
// for unambiguity).
func ExprString(e Expr) string {
	switch n := e.(type) {
	case *NumLit:
		return fmt.Sprintf("%g", n.Value)
	case *BoolLit:
		if n.Value {
			return "true"
		}
		return "false"
	case *LoadExpr:
		return fmt.Sprintf("LOAD(%s)", n.Key)
	case *IdentExpr:
		return n.Name
	case *UnaryExpr:
		op := "-"
		if n.Op == TokNot {
			op = "!"
		}
		return op + ExprString(n.X)
	case *BinaryExpr:
		return fmt.Sprintf("(%s %s %s)", ExprString(n.X), binOpText(n.Op), ExprString(n.Y))
	case *CallExpr:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", n.Fn, strings.Join(parts, ", "))
	default:
		return "?"
	}
}

func binOpText(op TokenKind) string {
	switch op {
	case TokPlus:
		return "+"
	case TokMinus:
		return "-"
	case TokStar:
		return "*"
	case TokSlash:
		return "/"
	case TokLt:
		return "<"
	case TokLe:
		return "<="
	case TokGt:
		return ">"
	case TokGe:
		return ">="
	case TokEq:
		return "=="
	case TokNe:
		return "!="
	case TokAnd:
		return "&&"
	case TokOr:
		return "||"
	default:
		return op.String()
	}
}

// String renders the guardrail in canonical source form.
func (g *Guardrail) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guardrail %s {\n  trigger: {\n", g.Name)
	for _, t := range g.Triggers {
		fmt.Fprintf(&b, "    %s\n", t)
	}
	b.WriteString("  },\n  rule: {\n")
	for _, r := range g.Rules {
		fmt.Fprintf(&b, "    %s\n", ExprString(r))
	}
	b.WriteString("  },\n  action: {\n")
	for _, a := range g.Actions {
		fmt.Fprintf(&b, "    %s\n", a)
	}
	b.WriteString("  }\n}\n")
	return b.String()
}
