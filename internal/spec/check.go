package spec

import "math"

// Builtins maps the rule-expression builtin function names to their
// arities. now() reads the kernel clock in nanoseconds.
var Builtins = map[string]int{
	"abs":  1,
	"sqrt": 1,
	"log2": 1,
	"min":  2,
	"max":  2,
	"now":  0,
}

// Check semantically validates a parsed file:
//
//   - every guardrail has at least one trigger, one rule, one action
//     (Listing 1: Guardrail ::= Property Action+, Property ::= Trigger+
//     Rule+);
//   - guardrail names are unique within the file;
//   - TIMER intervals are positive and stop (when given) is after start;
//   - every rule is a predicate: its top-level node is a comparison,
//     logical operator, or boolean literal, so "rule: { 5 }" is caught;
//   - builtin calls have correct arity, and only known builtins are
//     called;
//   - DEPRIORITIZE priorities, when constant, are within [-20, 19];
//   - feature declarations have ordinary, non-empty ranges and are not
//     repeated;
//   - temporal property declarations are predicates with well-formed
//     bounds (CheckProperty).
//
// Bare identifiers in expressions are implicit feature-store loads; the
// compiler treats IdentExpr exactly like LoadExpr.
func Check(f *File) error {
	features := make(map[string]bool)
	for _, d := range f.Features {
		if features[d.Key] {
			return errAt(d.Pos, "duplicate feature declaration for %q", d.Key)
		}
		features[d.Key] = true
		if math.IsNaN(d.Lo) || math.IsNaN(d.Hi) {
			return errAt(d.Pos, "feature %q range bounds must be ordinary numbers", d.Key)
		}
		if d.Lo > d.Hi {
			return errAt(d.Pos, "feature %q range is empty: lo %g > hi %g", d.Key, d.Lo, d.Hi)
		}
	}
	for _, d := range f.Properties {
		if err := CheckProperty(d); err != nil {
			return err
		}
	}
	names := make(map[string]bool)
	for _, g := range f.Guardrails {
		if names[g.Name] {
			return errAt(g.Pos, "duplicate guardrail name %q", g.Name)
		}
		names[g.Name] = true
		if err := CheckGuardrail(g); err != nil {
			return err
		}
	}
	return nil
}

// FeatureRanges returns the file's declared feature ranges keyed by
// feature name. Files without declarations return an empty map.
func FeatureRanges(f *File) map[string]*FeatureDecl {
	out := make(map[string]*FeatureDecl, len(f.Features))
	for _, d := range f.Features {
		out[d.Key] = d
	}
	return out
}

// CheckGuardrail validates a single guardrail (see Check).
func CheckGuardrail(g *Guardrail) error {
	if len(g.Triggers) == 0 {
		return errAt(g.Pos, "guardrail %q has no triggers", g.Name)
	}
	if len(g.Rules) == 0 {
		return errAt(g.Pos, "guardrail %q has no rules", g.Name)
	}
	if len(g.Actions) == 0 {
		return errAt(g.Pos, "guardrail %q has no actions", g.Name)
	}
	for _, t := range g.Triggers {
		if tt, ok := t.(*TimerTrigger); ok {
			if tt.Interval <= 0 {
				return errAt(tt.Pos, "TIMER interval must be positive, got %g", tt.Interval)
			}
			if tt.Stop != 0 && tt.Stop <= tt.Start {
				return errAt(tt.Pos, "TIMER stop time %g is not after start time %g", tt.Stop, tt.Start)
			}
		}
	}
	for _, r := range g.Rules {
		if !IsPredicate(r) {
			return errAt(r.ExprPos(), "rule %s is not a predicate (use a comparison or logical expression)", ExprString(r))
		}
		if err := checkExpr(r); err != nil {
			return err
		}
	}
	for _, a := range g.Actions {
		if err := checkAction(a); err != nil {
			return err
		}
	}
	return nil
}

// IsPredicate reports whether the expression's top-level construct
// yields a truth value. The checker uses it to validate rules and the
// compiler's lowerer uses it to pick condition lowering (direct
// conditional branches) over value lowering.
func IsPredicate(e Expr) bool {
	switch n := e.(type) {
	case *BoolLit:
		return true
	case *UnaryExpr:
		return n.Op == TokNot
	case *BinaryExpr:
		switch n.Op {
		case TokLt, TokLe, TokGt, TokGe, TokEq, TokNe:
			return true
		case TokAnd, TokOr:
			return IsPredicate(n.X) && IsPredicate(n.Y)
		}
	}
	return false
}

func checkExpr(e Expr) error {
	switch n := e.(type) {
	case *NumLit, *BoolLit, *LoadExpr, *IdentExpr:
		return nil
	case *UnaryExpr:
		return checkExpr(n.X)
	case *BinaryExpr:
		if err := checkExpr(n.X); err != nil {
			return err
		}
		return checkExpr(n.Y)
	case *CallExpr:
		arity, ok := Builtins[n.Fn]
		if !ok {
			return errAt(n.Pos, "unknown function %q", n.Fn)
		}
		if len(n.Args) != arity {
			return errAt(n.Pos, "%s takes %d argument(s), got %d", n.Fn, arity, len(n.Args))
		}
		for _, a := range n.Args {
			if err := checkExpr(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return errAt(e.ExprPos(), "unsupported expression node")
	}
}

func checkAction(a Action) error {
	switch n := a.(type) {
	case *ReportAction:
		for _, e := range n.Args {
			if err := checkExpr(e); err != nil {
				return err
			}
		}
	case *ReplaceAction:
		if n.Old == n.New {
			return errAt(n.Pos, "REPLACE with identical policies %q", n.Old)
		}
	case *RetrainAction:
		// Model names are resolved by the runtime at load time.
	case *DeprioritizeAction:
		if n.Priority != nil {
			if err := checkExpr(n.Priority); err != nil {
				return err
			}
			if lit, ok := n.Priority.(*NumLit); ok {
				if lit.Value < -20 || lit.Value > 19 {
					return errAt(lit.Pos, "priority %g outside [-20, 19]", lit.Value)
				}
			}
		}
	case *SaveAction:
		return checkExpr(n.Value)
	}
	return nil
}
