package spec

// Static expression facts the compiler's lowerer and IR passes need.
// They live here rather than in package compile because they are
// properties of the language, not of any particular backend.

// ConstValue returns the value of a literal expression. BoolLit follows
// the numeric truthiness convention (true = 1, false = 0). Non-literal
// expressions return (0, false); use the compiler's constant-folding
// pass to reduce compound constant expressions first.
func ConstValue(e Expr) (float64, bool) {
	switch n := e.(type) {
	case *NumLit:
		return n.Value, true
	case *BoolLit:
		if n.Value {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Pure reports whether evaluating e is free of environment reads other
// than the feature store: it contains no now() call. Pure expressions
// over constant operands may be evaluated at compile time; impure ones
// must reach the runtime.
func Pure(e Expr) bool {
	switch n := e.(type) {
	case *NumLit, *BoolLit, *LoadExpr, *IdentExpr:
		return true
	case *UnaryExpr:
		return Pure(n.X)
	case *BinaryExpr:
		return Pure(n.X) && Pure(n.Y)
	case *CallExpr:
		if n.Fn == "now" {
			return false
		}
		for _, a := range n.Args {
			if !Pure(a) {
				return false
			}
		}
		return true
	}
	return false
}
