// Package modelcheck is a bounded abstract model checker over whole
// guardrail deployments.
//
// The per-program verifier (internal/vm.Analyze) certifies one monitor
// in isolation; the interference analyzer (internal/spec/interfere)
// certifies pairwise couplings. Neither answers temporal questions
// about the deployment as a dynamical system: "can the escalation
// ladder ever skip quarantine?", "does alert_level converge or
// oscillate forever?". This package does, within explicit bounds.
//
// The abstract state is a tuple of certified feature-store intervals —
// one per key the deployment reads or writes — obtained from
// vm.AnalyzeWith under a state-dependent cell environment. Transitions
// are monitor firings: one per hook site, and one per timer
// coincidence class scheduled over a single timer hyperperiod (shared
// machinery with interfere, see TimerTicks). The checker explores the
// induced transition system exhaustively to a configurable depth and
// state bound, widening per-key interval sequences so loops with
// strictly growing counters still converge.
//
// Declared properties ("assert always p", "assert eventually p within
// K") are evaluated over the explored graph. Proved properties carry a
// Certificate stating the exact bounds the proof holds under; refuted
// ones emit GM-coded diagnostics carrying a multi-step abstract trace,
// which the witness engine (witness.go) tries to concretize into a
// replayable event schedule: CONFIRMED findings reproduce on the real
// interpreter, PLAUSIBLE ones stand as sound abstract claims.
package modelcheck

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/vm"
)

// Diagnostic codes (GM = guardrail model checking). Codes are stable:
// tooling and CI gates match on them.
const (
	// CodeSafety: an "assert always" property is violated in a
	// reachable abstract state.
	CodeSafety = "GM001"
	// CodeLiveness: an "assert eventually … within K" property has an
	// execution that stays false for K steps.
	CodeLiveness = "GM002"
	// CodeOscillation: a reachable cycle writes provably different
	// values to the same feature key — a non-convergent SAVE
	// oscillation.
	CodeOscillation = "GM003"
	// CodeVacuous: a declared property's predicate has no reachable
	// state where it provably holds or provably fails — the assertion
	// never bites and is likely miswritten.
	CodeVacuous = "GM004"
)

// Property checking outcomes.
const (
	// StatusProved: the property holds in every explored state, and
	// exploration was exhaustive within the certificate's bounds.
	StatusProved = "PROVED"
	// StatusRefuted: a counterexample trace exists in the abstraction.
	StatusRefuted = "REFUTED"
	// StatusInconclusive: exploration was truncated or the predicate
	// could not be decided abstractly.
	StatusInconclusive = "INCONCLUSIVE"
)

// Exploration defaults.
const (
	DefaultMaxDepth      = 48
	DefaultMaxStates     = 2048
	DefaultWidenAfter    = 8
	DefaultMaxTicks      = 4096
	DefaultWitnessBudget = 2048
)

// Config bounds one model-checking run.
type Config struct {
	// Properties are the temporal properties to check, in order.
	Properties []*spec.PropertyDecl
	// Shadow names monitors excluded from the transition relation
	// (deployed in shadow mode: they observe but do not act).
	Shadow []string
	// MaxDepth bounds the exploration depth in transition steps
	// (0 = DefaultMaxDepth).
	MaxDepth int
	// MaxStates bounds the number of distinct abstract states
	// (0 = DefaultMaxStates).
	MaxStates int
	// WidenAfter is the number of distinct interval values a key may
	// take before widening accelerates it (0 = DefaultWidenAfter).
	WidenAfter int
	// MaxTicks bounds the timer schedule enumeration per hyperperiod
	// (0 = DefaultMaxTicks).
	MaxTicks int
	// Witness enables concretization of refutations through the real
	// interpreter.
	Witness bool
	// WitnessBudget bounds the assignment enumeration per refutation
	// (0 = DefaultWitnessBudget).
	WitnessBudget int
}

func (c Config) maxDepth() int {
	if c.MaxDepth > 0 {
		return c.MaxDepth
	}
	return DefaultMaxDepth
}

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return DefaultMaxStates
}

func (c Config) widenAfter() int {
	if c.WidenAfter > 0 {
		return c.WidenAfter
	}
	return DefaultWidenAfter
}

func (c Config) maxTicks() int {
	if c.MaxTicks > 0 {
		return c.MaxTicks
	}
	return DefaultMaxTicks
}

func (c Config) witnessBudget() int {
	if c.WitnessBudget > 0 {
		return c.WitnessBudget
	}
	return DefaultWitnessBudget
}

// Certificate states the exact bounds under which a proof holds. The
// proof is exhaustive within them: every deployment execution whose
// abstract projection stays inside the explored graph satisfies the
// property.
type Certificate struct {
	// States is the number of distinct abstract states explored.
	States int `json:"states"`
	// Transitions is the number of transition edges taken.
	Transitions int `json:"transitions"`
	// Depth is the maximum exploration depth reached.
	Depth int `json:"depth"`
	// HyperperiodNs is the timer hyperperiod the schedule was built
	// over (0 when the deployment has no timers or the schedule fell
	// back to conservative coincidence).
	HyperperiodNs int64 `json:"hyperperiod_ns,omitempty"`
	// WidenedKeys lists feature keys whose interval sequences were
	// widened; the proof covers the widened (larger) state space.
	WidenedKeys []string `json:"widened_keys,omitempty"`
}

// PropertyResult is the outcome for one declared property.
type PropertyResult struct {
	// Property is the declaration in source form.
	Property string `json:"property"`
	// Kind is "always" or "eventually".
	Kind string `json:"kind"`
	// Status is PROVED, REFUTED, or INCONCLUSIVE.
	Status string `json:"status"`
	// Reason explains an INCONCLUSIVE or REFUTED status.
	Reason string `json:"reason,omitempty"`
	// Certificate backs a PROVED status.
	Certificate *Certificate `json:"certificate,omitempty"`
}

// Report is the full model-checking result for one deployment.
type Report struct {
	// Properties holds one result per declared property, in
	// declaration order.
	Properties []PropertyResult `json:"properties,omitempty"`
	// Diagnostics are the GM-coded findings, sorted by (code,
	// guardrail, message).
	Diagnostics []interfere.Diagnostic `json:"diagnostics,omitempty"`
	// States is the number of distinct abstract states explored.
	States int `json:"states"`
	// Transitions labels the transition groups of the model, in
	// schedule order.
	Transitions []string `json:"transitions,omitempty"`
	// HyperperiodNs is the timer hyperperiod (see Certificate).
	HyperperiodNs int64 `json:"hyperperiod_ns,omitempty"`
	// ConservativeSchedule reports that the timer schedule could not
	// be computed exactly (overflow or non-integral parameters) and
	// every timer fires as its own unordered transition instead.
	ConservativeSchedule bool `json:"conservative_schedule,omitempty"`
	// Shadow lists monitors excluded from the transition relation.
	Shadow []string `json:"shadow,omitempty"`
	// WidenedKeys lists keys whose values were widened.
	WidenedKeys []string `json:"widened_keys,omitempty"`
	// Truncated reports that exploration hit a bound; proofs are then
	// withheld (INCONCLUSIVE) but refutations still stand.
	Truncated bool `json:"truncated,omitempty"`
	// TruncationReason says which bound was hit.
	TruncationReason string `json:"truncation_reason,omitempty"`
}

// Warnings counts Warn-severity diagnostics.
func (r *Report) Warnings() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == interfere.Warn {
			n++
		}
	}
	return n
}

// Clean reports no diagnostics and no refuted or inconclusive
// properties.
func (r *Report) Clean() bool {
	if len(r.Diagnostics) > 0 {
		return false
	}
	for _, p := range r.Properties {
		if p.Status != StatusProved {
			return false
		}
	}
	return true
}

// Summary renders a one-line result.
func (r *Report) Summary() string {
	proved, refuted, inconclusive := 0, 0, 0
	for _, p := range r.Properties {
		switch p.Status {
		case StatusProved:
			proved++
		case StatusRefuted:
			refuted++
		default:
			inconclusive++
		}
	}
	s := fmt.Sprintf("modelcheck: %d state(s), %d propert%s (%d proved, %d refuted, %d inconclusive), %d warning(s)",
		r.States, len(r.Properties), plural(len(r.Properties), "y", "ies"),
		proved, refuted, inconclusive, r.Warnings())
	if r.Truncated {
		s += " [truncated: " + r.TruncationReason + "]"
	}
	return s
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// group is one transition of the abstract system: a set of monitors
// firing together (same hook site, or timers ticking at the same
// schedule offset), applied in deployment order.
type group struct {
	label string
	mons  []int // indexes into model.mons
}

// write records one feature-store write applied during a transition.
type write struct {
	mon  int         // index into model.mons
	key  int         // index into model.keys
	val  vm.Interval // certified store range (pre-join)
	must bool        // the monitor provably fired (strong update)
}

// node is one explored abstract state.
type node struct {
	vals     []vm.Interval
	parent   int // node index, -1 for the root
	viaGroup int // group index taken from parent, -1 for the root
	viaWrite []write
	depth    int
}

// edge is one transition of the explored graph, including back-edges
// to already-known states.
type edge struct {
	to     int
	group  int
	writes []write
}

// model is the abstract transition system built from a deployment.
type model struct {
	cfg      Config
	mons     []*compile.Compiled // active (non-shadow) monitors
	keys     []string            // sorted key universe
	keyIdx   map[string]int
	written  []bool              // some active monitor stores the key
	declared []*spec.FeatureDecl // by key index, nil when undeclared
	baseline []*vm.Analysis      // open-world analysis per monitor, nil on error
	groups   []group
	hyper    int64
	conserv  bool

	nodes       []node
	plans       []*witnessPlan // parallel to the diagnostics under construction
	adj         [][]edge       // outgoing edges per node, in group order
	index       map[string]int
	widened     map[int]bool          // key index → widened
	seen        []map[vm.Interval]int // per key: distinct values observed
	accum       []vm.Interval         // per key: running join for widening
	truncated   bool
	truncReason string
	maxDepth    int
	edges       int
}

// Check model-checks a deployment against cfg's properties. It never
// fails: structural problems (a property predicate that cannot be
// compiled, an empty deployment) surface as INCONCLUSIVE results or
// diagnostics in the report.
func Check(dep *interfere.Deployment, cfg Config) *Report {
	m := buildModel(dep, cfg)
	m.explore()

	rep := &Report{
		States:               len(m.nodes),
		HyperperiodNs:        m.hyper,
		ConservativeSchedule: m.conserv,
		Truncated:            m.truncated,
		TruncationReason:     m.truncReason,
	}
	for _, g := range m.groups {
		rep.Transitions = append(rep.Transitions, g.label)
	}
	rep.Shadow = append(rep.Shadow, cfg.Shadow...)
	sort.Strings(rep.Shadow)
	for k := range m.widened {
		rep.WidenedKeys = append(rep.WidenedKeys, m.keys[k])
	}
	sort.Strings(rep.WidenedKeys)

	cert := &Certificate{
		States:        len(m.nodes),
		Transitions:   m.edges,
		Depth:         m.maxDepth,
		HyperperiodNs: m.hyper,
		WidenedKeys:   rep.WidenedKeys,
	}

	var diags []interfere.Diagnostic
	for _, p := range cfg.Properties {
		res, d := m.checkProperty(p, cert)
		rep.Properties = append(rep.Properties, res)
		if d != nil {
			diags = append(diags, *d)
		}
	}
	diags = append(diags, m.checkOscillation()...)

	if cfg.Witness {
		concretize(m, diags, cfg.witnessBudget())
	}

	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Code != diags[j].Code {
			return diags[i].Code < diags[j].Code
		}
		if diags[i].Guardrail != diags[j].Guardrail {
			return diags[i].Guardrail < diags[j].Guardrail
		}
		return diags[i].Message < diags[j].Message
	})
	rep.Diagnostics = diags
	return rep
}

// buildModel derives the abstract transition system from a deployment.
func buildModel(dep *interfere.Deployment, cfg Config) *model {
	m := &model{cfg: cfg, keyIdx: map[string]int{}, index: map[string]int{}, widened: map[int]bool{}}

	shadow := map[string]bool{}
	for _, s := range cfg.Shadow {
		shadow[s] = true
	}
	for _, c := range dep.Monitors {
		if c == nil || c.Program == nil || shadow[c.Name] {
			continue
		}
		m.mons = append(m.mons, c)
	}

	// Key universe: everything active monitors load or store, declared
	// features, and keys the properties mention.
	keySet := map[string]bool{}
	writtenSet := map[string]bool{}
	for _, c := range m.mons {
		for _, in := range c.Program.Code {
			switch in.Op {
			case vm.OpLoad:
				keySet[c.Program.Symbols[in.Cell]] = true
			case vm.OpStore:
				key := c.Program.Symbols[in.Cell]
				keySet[key] = true
				writtenSet[key] = true
			}
		}
	}
	declByKey := map[string]*spec.FeatureDecl{}
	for _, fd := range dep.Features {
		keySet[fd.Key] = true
		declByKey[fd.Key] = fd
	}
	for _, p := range cfg.Properties {
		for _, k := range spec.ExprKeys(p.Pred) {
			keySet[k] = true
		}
	}
	m.keys = make([]string, 0, len(keySet))
	for k := range keySet {
		m.keys = append(m.keys, k)
	}
	sort.Strings(m.keys)
	m.written = make([]bool, len(m.keys))
	m.declared = make([]*spec.FeatureDecl, len(m.keys))
	for i, k := range m.keys {
		m.keyIdx[k] = i
		m.written[i] = writtenSet[k]
		m.declared[i] = declByKey[k]
	}

	// Open-world baseline per monitor: the fallback effect when
	// state-dependent analysis fails mid-exploration.
	m.baseline = make([]*vm.Analysis, len(m.mons))
	for i, c := range m.mons {
		a, err := vm.AnalyzeWith(c.Program, vm.NumBuiltinHelpers, nil)
		if err == nil {
			m.baseline[i] = a
		}
	}

	m.buildGroups()
	return m
}

// buildGroups derives the transition groups: one per hook site, plus
// the timer coincidence classes over one hyperperiod.
func (m *model) buildGroups() {
	hookMons := map[string][]int{}
	type timerRef struct {
		mon   int
		timer *spec.TimerTrigger
	}
	var timers []timerRef
	for i, c := range m.mons {
		sites := map[string]bool{}
		for _, t := range c.Triggers {
			switch tt := t.(type) {
			case *spec.FuncTrigger:
				if !sites[tt.Site] {
					sites[tt.Site] = true
					hookMons[tt.Site] = append(hookMons[tt.Site], i)
				}
			case *spec.TimerTrigger:
				timers = append(timers, timerRef{mon: i, timer: tt})
			}
		}
	}

	sites := make([]string, 0, len(hookMons))
	for s := range hookMons {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	for _, s := range sites {
		m.groups = append(m.groups, group{label: "hook:" + s, mons: hookMons[s]})
	}

	if len(timers) == 0 {
		return
	}
	specs := make([]*spec.TimerTrigger, len(timers))
	for i, tr := range timers {
		specs[i] = tr.timer
	}
	ticks, hyper, ok := interfere.TimerTicks(specs, m.cfg.maxTicks())
	if !ok {
		// Conservative fallback: each timer fires alone, in an
		// unknown order — one singleton transition per timer.
		m.conserv = true
		for _, tr := range timers {
			m.groups = append(m.groups, group{
				label: "timer[" + m.mons[tr.mon].Name + "]",
				mons:  []int{tr.mon},
			})
		}
		return
	}
	m.hyper = hyper
	// Distinct coincidence classes only: two ticks with the same member
	// set induce the same abstract transition.
	seen := map[string]bool{}
	for _, tg := range ticks {
		monSet := map[int]bool{}
		for _, ti := range tg.Members {
			monSet[timers[ti].mon] = true
		}
		mons := make([]int, 0, len(monSet))
		for mi := range monSet {
			mons = append(mons, mi)
		}
		sort.Ints(mons)
		sig := fmt.Sprint(mons)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		names := make([]string, len(mons))
		for i, mi := range mons {
			names[i] = m.mons[mi].Name
		}
		m.groups = append(m.groups, group{
			label: "timer[" + strings.Join(names, "+") + "]",
			mons:  mons,
		})
	}
}

// initState is the deployment's entry state: declared features take
// their certified range, undeclared-but-written keys start at the
// store default 0, and undeclared free keys are unconstrained.
func (m *model) initState() []vm.Interval {
	vals := make([]vm.Interval, len(m.keys))
	for i := range m.keys {
		switch {
		case m.declared[i] != nil:
			vals[i] = vm.RangeInterval(m.declared[i].Lo, m.declared[i].Hi)
		case m.written[i]:
			vals[i] = vm.RangeInterval(0, 0)
		default:
			vals[i] = vm.TopInterval()
		}
	}
	return vals
}

// envFor adapts a state vector to a vm.CellEnv for one program.
func (m *model) envFor(p *vm.Program, vals []vm.Interval) vm.CellEnv {
	return func(cell int32) (vm.Interval, bool) {
		if cell < 0 || int(cell) >= len(p.Symbols) {
			return vm.Interval{}, false
		}
		i, ok := m.keyIdx[p.Symbols[cell]]
		if !ok {
			return vm.Interval{}, false
		}
		return vals[i], true
	}
}

// signature canonically encodes a state vector for deduplication.
func signature(vals []vm.Interval) string {
	var b strings.Builder
	b.Grow(len(vals) * 36)
	for _, v := range vals {
		fmt.Fprintf(&b, "%x:%x:%t:%t;", math.Float64bits(v.Lo), math.Float64bits(v.Hi), v.Num, v.NaN)
	}
	return b.String()
}

// apply computes the successor state of vals under a transition group,
// recording the writes. Monitors in a group run sequentially in
// deployment order, each observing the writes of its predecessors —
// matching the runtime, which serializes same-instant firings.
func (m *model) apply(g group, vals []vm.Interval) ([]vm.Interval, []write) {
	next := make([]vm.Interval, len(vals))
	copy(next, vals)
	var writes []write
	for _, mi := range g.mons {
		c := m.mons[mi]
		a, err := vm.AnalyzeWith(c.Program, vm.NumBuiltinHelpers, m.envFor(c.Program, next))
		if err != nil {
			a = m.baseline[mi]
		}
		if a == nil {
			// No analysis at all: weak-join Top into every key the
			// program can store, the only sound effect left.
			for _, in := range c.Program.Code {
				if in.Op != vm.OpStore {
					continue
				}
				ki, ok := m.keyIdx[c.Program.Symbols[in.Cell]]
				if !ok {
					continue
				}
				next[ki] = next[ki].Join(vm.TopInterval())
				writes = append(writes, write{mon: mi, key: ki, val: vm.TopInterval()})
			}
			continue
		}
		if !a.CanViolate() {
			continue // rules provably hold in this state: no action path
		}
		must := a.MustViolate()
		// Per stored key: join the certified ranges of its reachable
		// stores (first-seen order for determinism), then update.
		storedOrder := []int{}
		stored := map[int]vm.Interval{}
		for _, sf := range a.Stores {
			ki, ok := m.keyIdx[c.Program.Symbols[sf.Cell]]
			if !ok {
				continue
			}
			if cur, seen := stored[ki]; seen {
				stored[ki] = cur.Join(sf.Val)
			} else {
				stored[ki] = sf.Val
				storedOrder = append(storedOrder, ki)
			}
		}
		for _, ki := range storedOrder {
			sv := stored[ki]
			if must {
				next[ki] = sv // the store provably executes
			} else {
				next[ki] = next[ki].Join(sv) // may or may not fire
			}
			writes = append(writes, write{mon: mi, key: ki, val: sv, must: must})
		}
	}
	for ki := range next {
		next[ki] = m.widenKey(ki, next[ki])
	}
	return next, writes
}

// widenKey accelerates a key that keeps taking new interval values:
// after WidenAfter distinct values, new ones are widened against the
// running join, sending unstable bounds to ±Inf so exploration
// converges on counting loops.
func (m *model) widenKey(ki int, nv vm.Interval) vm.Interval {
	if _, ok := m.seen[ki][nv]; ok {
		return nv
	}
	if len(m.seen[ki]) >= m.cfg.widenAfter() {
		w := m.accum[ki].Widen(nv)
		m.widened[ki] = true
		m.accum[ki] = w
		if _, ok := m.seen[ki][w]; !ok {
			m.seen[ki][w] = len(m.seen[ki])
		}
		return w
	}
	m.seen[ki][nv] = len(m.seen[ki])
	m.accum[ki] = m.accum[ki].Join(nv)
	return nv
}

// explore runs breadth-first exhaustive exploration from the initial
// state, up to the depth and state bounds.
func (m *model) explore() {
	m.seen = make([]map[vm.Interval]int, len(m.keys))
	m.accum = make([]vm.Interval, len(m.keys))
	init := m.initState()
	for ki := range m.keys {
		m.seen[ki] = map[vm.Interval]int{init[ki]: 0}
		m.accum[ki] = init[ki]
	}
	m.nodes = append(m.nodes, node{vals: init, parent: -1, viaGroup: -1})
	m.adj = append(m.adj, nil)
	m.index[signature(init)] = 0

	for qi := 0; qi < len(m.nodes); qi++ {
		n := m.nodes[qi]
		if n.depth > m.maxDepth {
			m.maxDepth = n.depth
		}
		if n.depth >= m.cfg.maxDepth() {
			m.truncate("depth bound")
			continue
		}
		for gi := range m.groups {
			next, writes := m.apply(m.groups[gi], n.vals)
			sig := signature(next)
			if to, ok := m.index[sig]; ok {
				m.edges++
				m.adj[qi] = append(m.adj[qi], edge{to: to, group: gi, writes: writes})
				continue
			}
			if len(m.nodes) >= m.cfg.maxStates() {
				m.truncate("state bound")
				continue
			}
			m.edges++
			to := len(m.nodes)
			m.index[sig] = to
			m.nodes = append(m.nodes, node{
				vals:     next,
				parent:   qi,
				viaGroup: gi,
				viaWrite: writes,
				depth:    n.depth + 1,
			})
			m.adj = append(m.adj, nil)
			m.adj[qi] = append(m.adj[qi], edge{to: to, group: gi, writes: writes})
		}
	}
}

func (m *model) truncate(reason string) {
	if !m.truncated {
		m.truncated = true
		m.truncReason = reason
	}
}
