package modelcheck

import (
	"fmt"
	"sort"

	"guardrails/internal/spec/interfere"
	"guardrails/internal/vm"
)

// Witness concretization: replay a refutation's abstract trace through
// the real interpreter. A concrete initial store that reproduces the
// violation upgrades the diagnostic to CONFIRMED and attaches a
// replayable event schedule; otherwise the diagnostic stays PLAUSIBLE
// — the sound abstract claim stands, unreproduced within the search
// bounds.
//
// The schedule is the abstract trace's group sequence: at each step
// the group's monitors run in deployment order on the live store,
// each fired monitor's SAVEs feeding its successors — exactly how the
// kernel runtime serializes same-instant firings.

// concretize grades every diagnostic that has a witness plan. plans is
// parallel to diags (a nil plan leaves the diagnostic ungraded).
func concretize(m *model, diags []interfere.Diagnostic, budget int) {
	for i := range diags {
		if i >= len(m.plans) || m.plans[i] == nil {
			continue
		}
		plan := m.plans[i]
		w := m.searchWitness(plan, budget)
		if w != nil {
			diags[i].Status = vm.WitnessConfirmed
			diags[i].Witness = w
		} else {
			diags[i].Status = vm.WitnessPlausible
		}
	}
}

// searchWitness enumerates concrete initial stores and replays the
// plan's schedule, returning the first witness that reproduces the
// violation.
func (m *model) searchWitness(plan *witnessPlan, budget int) *vm.Witness {
	// Free variables of the search: declared features range over their
	// interval's candidate values; undeclared-unwritten keys (pure
	// environment inputs) over generic seeds. Written-undeclared keys
	// are pinned to the store default 0.
	var keys []string
	cands := map[string][]float64{}
	base := map[string]float64{}
	for i, k := range m.keys {
		switch {
		case m.declared[i] != nil:
			keys = append(keys, k)
			cands[k] = vm.Candidates(vm.RangeInterval(m.declared[i].Lo, m.declared[i].Hi), true)
		case !m.written[i]:
			keys = append(keys, k)
			cands[k] = vm.Candidates(vm.Interval{}, false)
		default:
			base[k] = 0
		}
	}
	sort.Strings(keys)

	var found *vm.Witness
	vm.EnumAssignments(keys, cands, budget, func(assign map[string]float64) bool {
		env := vm.CopyAssign(base)
		for k, v := range assign {
			env[k] = v
		}
		initial := vm.CopyAssign(env)
		if w := m.replayPlan(plan, env); w != nil {
			w.Inputs = initial
			found = w
			return true
		}
		return false
	})
	return found
}

// replayPlan drives one concrete initial store through the plan's
// schedule on the real interpreter and checks the plan's claim,
// returning a narrated witness on success. env is mutated.
func (m *model) replayPlan(plan *witnessPlan, env map[string]float64) *vm.Witness {
	var steps []string

	switch plan.code {
	case CodeSafety:
		if !m.replayGroups(plan.prefix, env, &steps, nil) {
			return nil
		}
		if !m.predFalse(plan.prog, env) {
			return nil
		}
		steps = append(steps, "property predicate evaluates false")
		return &vm.Witness{Steps: steps}

	case CodeLiveness:
		if plan.prog == nil || !m.predFalse(plan.prog, env) {
			return nil
		}
		allFalse := true
		check := func(e map[string]float64) {
			if !m.predFalse(plan.prog, e) {
				allFalse = false
			}
		}
		if !m.replayGroups(plan.prefix, env, &steps, check) || !allFalse {
			return nil
		}
		if len(plan.cycle) == 0 {
			// Finite refutation: the predicate stayed false for the
			// full bound.
			steps = append(steps, fmt.Sprintf("predicate still false after %d step(s) (bound %d)", len(plan.prefix), plan.within))
			return &vm.Witness{Steps: steps}
		}
		// Pumped refutation: one cycle lap must return to the same
		// concrete store with the predicate false throughout — then
		// the schedule extends to any bound.
		entry := vm.CopyAssign(env)
		if !m.replayGroups(plan.cycle, env, &steps, check) || !allFalse {
			return nil
		}
		if !sameAssign(entry, env) {
			return nil
		}
		steps = append(steps, fmt.Sprintf("store returned to its pre-cycle state with the predicate false throughout: the %d-step cycle repeats past any bound (bound %d)", len(plan.cycle), plan.within))
		return &vm.Witness{Steps: steps}

	case CodeOscillation:
		if !m.replayGroups(plan.prefix, env, &steps, nil) {
			return nil
		}
		entry := vm.CopyAssign(env)
		written := map[float64]bool{}
		observe := func(key string, val float64) {
			if key == plan.key {
				written[val] = true
			}
		}
		if !m.replayGroupsObserved(plan.cycle, env, &steps, observe) {
			return nil
		}
		if len(written) < 2 || !sameAssign(entry, env) {
			return nil
		}
		vals := make([]float64, 0, len(written))
		for v := range written {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		steps = append(steps, fmt.Sprintf("store returned to its pre-cycle state after writing %s=%v within the lap: the oscillation repeats forever", plan.key, vals))
		return &vm.Witness{Steps: steps}
	}
	return nil
}

// replayGroups replays a group sequence on env, narrating into steps.
// after (when non-nil) observes the store after each step. Returns
// false on any interpreter trap.
func (m *model) replayGroups(groups []int, env map[string]float64, steps *[]string, after func(map[string]float64)) bool {
	return m.replayWith(groups, env, steps, after, nil)
}

// replayGroupsObserved replays a group sequence with a per-write
// observer.
func (m *model) replayGroupsObserved(groups []int, env map[string]float64, steps *[]string, observe func(string, float64)) bool {
	return m.replayWith(groups, env, steps, nil, observe)
}

// replayWith is the common driver: run each group's monitors in
// deployment order, applying fired monitors' stores; observe (when
// non-nil) sees each store write, after (when non-nil) sees the store
// after each group.
func (m *model) replayWith(groups []int, env map[string]float64, steps *[]string, after func(map[string]float64), observe func(string, float64)) bool {
	for _, gi := range groups {
		g := m.groups[gi]
		var acts []string
		for _, mi := range g.mons {
			c := m.mons[mi]
			rec := vm.ReplayProgram(c.Program, env, 0, 0)
			if rec.Err != nil {
				return false
			}
			if !rec.Violated {
				continue
			}
			for _, se := range rec.Stores {
				env[se.Key] = se.Val
				if observe != nil {
					observe(se.Key, se.Val)
				}
				acts = append(acts, fmt.Sprintf("%s SAVE %s=%g", c.Name, se.Key, se.Val))
			}
			if len(rec.Stores) == 0 {
				acts = append(acts, c.Name+" fires")
			}
		}
		if len(acts) == 0 {
			acts = append(acts, "no monitor fires")
		}
		*steps = append(*steps, fmt.Sprintf("[%s] %s", g.label, joinActs(acts)))
		if after != nil {
			after(env)
		}
	}
	return true
}

func joinActs(acts []string) string {
	s := acts[0]
	for _, a := range acts[1:] {
		s += "; " + a
	}
	return s
}

// predFalse replays a compiled predicate against a concrete store:
// true when the predicate concretely fails.
func (m *model) predFalse(prog *vm.Program, env map[string]float64) bool {
	if prog == nil {
		return false
	}
	rec := vm.ReplayProgram(prog, env, 0, 0)
	return rec.Err == nil && rec.Violated
}

// sameAssign reports two concrete stores identical (same keys, same
// values; NaN matches NaN).
func sameAssign(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			return false
		}
		if va != vb && !(va != va && vb != vb) {
			return false
		}
	}
	return true
}
