package modelcheck

import (
	"encoding/json"
	"strings"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
)

// deployment compiles src into a single-file deployment.
func deployment(t *testing.T, src string) *interfere.Deployment {
	t.Helper()
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatal(err)
	}
	cs, err := compile.File(f)
	if err != nil {
		t.Fatal(err)
	}
	return &interfere.Deployment{Monitors: cs, Features: f.Features}
}

// props parses manifest-style property strings.
func props(t *testing.T, ss ...string) []*spec.PropertyDecl {
	t.Helper()
	out := make([]*spec.PropertyDecl, len(ss))
	for i, s := range ss {
		d, err := spec.ParseProperty(s)
		if err != nil {
			t.Fatalf("property %q: %v", s, err)
		}
		out[i] = d
	}
	return out
}

// escalationSrc is the well-behaved two-stage escalation ladder: a
// persistently bad error signal raises alert_level, and a raised alert
// level quarantines. Both SAVEs are idempotent, so the deployment
// converges.
const escalationSrc = `
feature bad_tenant_err range(0.8, 1)

guardrail escalate-one {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(bad_tenant_err) < 0.5 },
    action: { SAVE(alert_level, 1) }
}

guardrail escalate-two {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(alert_level) < 1 || LOAD(bad_tenant_err) < 0.5 },
    action: { SAVE(quarantined, 1), DEPRIORITIZE(bad_tenant, -10) }
}`

// oscSrc seeds a non-convergent SAVE oscillation: osc-up forces mode
// to 1 whenever it is 0, osc-down forces it back to 0 whenever it is
// 1, on offset timers that never coincide.
const oscSrc = `
guardrail osc-up {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(mode) >= 1 },
    action: { SAVE(mode, 1) }
}

guardrail osc-down {
    trigger: { TIMER(500, 1000) },
    rule: { LOAD(mode) < 1 },
    action: { SAVE(mode, 0) }
}`

func TestEscalationProvesAlwaysAndEventually(t *testing.T) {
	dep := deployment(t, escalationSrc)
	rep := Check(dep, Config{Properties: props(t,
		"always LOAD(quarantined) <= 1",
		"eventually LOAD(quarantined) == 1 within 2",
	)})
	if len(rep.Properties) != 2 {
		t.Fatalf("got %d property results", len(rep.Properties))
	}
	for _, p := range rep.Properties {
		if p.Status != StatusProved {
			t.Errorf("%s: %s (%s), want PROVED", p.Property, p.Status, p.Reason)
		}
		if p.Certificate == nil {
			t.Errorf("%s: proved without a certificate", p.Property)
		}
	}
	if !rep.Clean() {
		t.Errorf("clean escalation not clean: %+v", rep.Diagnostics)
	}
	if rep.Truncated {
		t.Errorf("tiny deployment truncated: %s", rep.TruncationReason)
	}
	if rep.HyperperiodNs != 1000 {
		t.Errorf("hyperperiod = %d, want 1000", rep.HyperperiodNs)
	}
}

func TestEscalationRefutesTooTightBound(t *testing.T) {
	dep := deployment(t, escalationSrc)
	// quarantined==2 is unreachable: always-proof must not exist for
	// its negation, and eventually==2 must be refuted.
	rep := Check(dep, Config{
		Properties: props(t, "eventually LOAD(quarantined) == 2 within 8"),
		Witness:    true,
	})
	p := rep.Properties[0]
	if p.Status != StatusRefuted {
		t.Fatalf("unreachable target: %s (%s), want REFUTED", p.Status, p.Reason)
	}
	d := findCode(t, rep, CodeLiveness)
	if len(d.Trace) == 0 {
		t.Error("GM002 without abstract trace")
	}
	if d.Status != "CONFIRMED" {
		t.Errorf("GM002 status = %q, want CONFIRMED (deployment is deterministic)", d.Status)
	}
}

func TestOscillationRefutedWithConfirmedWitness(t *testing.T) {
	dep := deployment(t, oscSrc)
	rep := Check(dep, Config{
		Properties: props(t, "always LOAD(mode) <= 0", "eventually LOAD(mode) >= 2 within 6"),
		Witness:    true,
	})

	d := findCode(t, rep, CodeOscillation)
	if !strings.Contains(d.Message, "mode") {
		t.Errorf("GM003 message misses key: %s", d.Message)
	}
	if d.Guardrail != "osc-down" && d.Guardrail != "osc-up" {
		t.Errorf("GM003 anchored to %q", d.Guardrail)
	}
	if len(d.Trace) < 2 {
		t.Errorf("GM003 trace too short: %v", d.Trace)
	}
	if d.Status != "CONFIRMED" {
		t.Errorf("GM003 status = %q, want CONFIRMED; witness %v", d.Status, d.Witness)
	}
	if d.Status == "CONFIRMED" && d.Witness == nil {
		t.Error("CONFIRMED without witness")
	}

	// The safety property is violated the moment osc-up raises mode.
	if rep.Properties[0].Status != StatusRefuted {
		t.Errorf("always mode<=0: %s, want REFUTED", rep.Properties[0].Status)
	}
	sd := findCode(t, rep, CodeSafety)
	if sd.Status != "CONFIRMED" {
		t.Errorf("GM001 status = %q, want CONFIRMED", sd.Status)
	}
}

func TestVacuousPropertyFlagged(t *testing.T) {
	dep := deployment(t, escalationSrc)
	// no_such_key is never written and unbounded, so comparisons are
	// undecidable in every state.
	rep := Check(dep, Config{Properties: props(t, "always LOAD(no_such_key) <= 3")})
	if rep.Properties[0].Status != StatusInconclusive {
		t.Errorf("vacuous property: %s, want INCONCLUSIVE", rep.Properties[0].Status)
	}
	findCode(t, rep, CodeVacuous)
}

func TestDeterministicReports(t *testing.T) {
	dep := deployment(t, oscSrc)
	cfg := Config{
		Properties: props(t, "always LOAD(mode) <= 0", "eventually LOAD(mode) >= 2 within 4"),
		Witness:    true,
	}
	first, err := json.Marshal(Check(dep, cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := json.Marshal(Check(deployment(t, oscSrc), cfg))
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("run %d differs:\n%s\n---\n%s", i, first, again)
		}
	}
}

func TestStateBoundTruncationReported(t *testing.T) {
	// An unbounded counter generates a fresh state per step until
	// widening or the state bound stops it; with WidenAfter above the
	// state bound, the bound must be hit and reported.
	dep := deployment(t, `
guardrail counter {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(n) < 0 },
    action: { SAVE(n, LOAD(n) + 1) }
}`)
	rep := Check(dep, Config{
		Properties: props(t, "always LOAD(n) >= 0"),
		MaxStates:  4,
		WidenAfter: 100,
	})
	if !rep.Truncated || rep.TruncationReason != "state bound" {
		t.Fatalf("truncated=%v reason=%q, want state bound", rep.Truncated, rep.TruncationReason)
	}
	// A proof must be withheld under truncation.
	if rep.Properties[0].Status == StatusProved {
		t.Error("property proved despite truncated exploration")
	}
}

func TestWideningConvergesCounter(t *testing.T) {
	dep := deployment(t, `
guardrail counter {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(n) < 0 },
    action: { SAVE(n, LOAD(n) + 1) }
}`)
	rep := Check(dep, Config{Properties: props(t, "always LOAD(n) >= 0")})
	if rep.Truncated {
		t.Fatalf("widening failed to converge: %s (%d states)", rep.TruncationReason, rep.States)
	}
	if len(rep.WidenedKeys) != 1 || rep.WidenedKeys[0] != "n" {
		t.Errorf("widened keys = %v, want [n]", rep.WidenedKeys)
	}
	if got := rep.Properties[0].Status; got != StatusProved {
		t.Errorf("always n>=0 over widened counter: %s (%s), want PROVED", got, rep.Properties[0].Reason)
	}
}

func TestShadowMonitorsExcluded(t *testing.T) {
	dep := deployment(t, oscSrc)
	rep := Check(dep, Config{Shadow: []string{"osc-down"}})
	if len(rep.Diagnostics) != 0 {
		t.Errorf("shadowing osc-down should break the oscillation: %+v", rep.Diagnostics)
	}
	if len(rep.Shadow) != 1 || rep.Shadow[0] != "osc-down" {
		t.Errorf("shadow list = %v", rep.Shadow)
	}
}

func TestConservativeScheduleFallback(t *testing.T) {
	// Coprime second-scale intervals overflow the hyperperiod; the
	// model must fall back to per-timer transitions, still analyzable.
	dep := deployment(t, `
guardrail slow-a {
    trigger: { TIMER(0, 1000000007000000000) },
    rule: { LOAD(x) < 0 },
    action: { SAVE(x, 1) }
}
guardrail slow-b {
    trigger: { TIMER(0, 999999999900000007) },
    rule: { LOAD(x) < 0 },
    action: { SAVE(x, 1) }
}`)
	rep := Check(dep, Config{Properties: props(t, "always LOAD(x) <= 1")})
	if !rep.ConservativeSchedule {
		t.Fatal("overflowing hyperperiod not reported as conservative")
	}
	if rep.HyperperiodNs != 0 {
		t.Errorf("hyperperiod = %d under conservative fallback", rep.HyperperiodNs)
	}
	if rep.Properties[0].Status != StatusProved {
		t.Errorf("always x<=1: %s (%s)", rep.Properties[0].Status, rep.Properties[0].Reason)
	}
}

func findCode(t *testing.T, rep *Report, code string) interfere.Diagnostic {
	t.Helper()
	for _, d := range rep.Diagnostics {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s in %+v", code, rep.Diagnostics)
	return interfere.Diagnostic{}
}
