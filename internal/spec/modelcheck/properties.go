package modelcheck

import (
	"fmt"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/spec/interfere"
	"guardrails/internal/vm"
)

// Three-valued abstract verdict for a predicate in a state.
const (
	evalUnknown int8 = 0
	evalTrue    int8 = 1
	evalFalse   int8 = -1
)

// witnessPlan is the replay recipe behind one diagnostic: the group
// sequence to drive through the real interpreter, and what to check.
// Plans are kept parallel to the diagnostics slice until concretize
// consumes them.
type witnessPlan struct {
	code   string
	prefix []int       // group indexes from the initial state
	cycle  []int       // group indexes closing a cycle (GM002 pumped, GM003)
	prog   *vm.Program // compiled property predicate (GM001, GM002)
	within int         // the K of an eventually property (GM002)
	key    string      // contested feature key (GM003)
}

// compilePred lowers a property predicate to a VM program via a
// synthetic single-rule guardrail. By the compiler's convention the
// program returns 1 when the predicate holds and 0 when it fails, so
// Analysis.CanViolate / MustViolate read as "may be false" / "provably
// false" and Replay.Violated as "concretely false".
func compilePred(pred spec.Expr) (*vm.Program, error) {
	g := &spec.Guardrail{
		Name:     "__property",
		Triggers: []spec.Trigger{&spec.TimerTrigger{Interval: 1}},
		Rules:    []spec.Expr{pred},
		Actions:  []spec.Action{&spec.ReportAction{}},
	}
	c, err := compile.GuardrailWith(g, compile.Options{Level: 1})
	if err != nil {
		c, err = compile.GuardrailWith(g, compile.Options{Level: 0})
	}
	if err != nil {
		return nil, err
	}
	return c.Program, nil
}

// evalAll computes the three-valued verdict of a compiled predicate in
// every explored state.
func (m *model) evalAll(prog *vm.Program) []int8 {
	out := make([]int8, len(m.nodes))
	for i := range m.nodes {
		a, err := vm.AnalyzeWith(prog, vm.NumBuiltinHelpers, m.envFor(prog, m.nodes[i].vals))
		if err != nil {
			out[i] = evalUnknown
			continue
		}
		switch {
		case !a.CanViolate():
			out[i] = evalTrue
		case a.MustViolate():
			out[i] = evalFalse
		default:
			out[i] = evalUnknown
		}
	}
	return out
}

// treePath returns the group sequence of the BFS tree path from the
// initial state to node n.
func (m *model) treePath(n int) []int {
	var rev []int
	for n > 0 {
		rev = append(rev, m.nodes[n].viaGroup)
		n = m.nodes[n].parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// renderTrace narrates a group sequence starting from the initial
// state, one line per step, tracking the abstract state as it goes.
// keysOfInterest selects which keys the initial line prints.
func (m *model) renderTrace(groups []int, keysOfInterest []string) []string {
	vals := m.initState()
	var lines []string
	var initParts []string
	for _, k := range keysOfInterest {
		if ki, ok := m.keyIdx[k]; ok {
			initParts = append(initParts, fmt.Sprintf("%s=%s", k, vals[ki]))
		}
	}
	if len(initParts) == 0 {
		initParts = append(initParts, "(store empty)")
	}
	lines = append(lines, "init: "+strings.Join(initParts, ", "))
	for step, gi := range groups {
		g := m.groups[gi]
		next, writes := m.apply(g, vals)
		var parts []string
		for _, w := range writes {
			mode := "may write"
			if w.must {
				mode = "writes"
			}
			parts = append(parts, fmt.Sprintf("%s %s %s=%s",
				m.mons[w.mon].Name, mode, m.keys[w.key], w.val))
		}
		if len(parts) == 0 {
			parts = append(parts, "no monitor acts")
		}
		lines = append(lines, fmt.Sprintf("step %d [%s]: %s", step+1, g.label, strings.Join(parts, "; ")))
		vals = next
	}
	return lines
}

// traceKeys picks the keys worth printing in a trace: the property's
// keys plus everything written along the steps.
func (m *model) traceKeys(pred spec.Expr, groups []int) []string {
	set := map[string]bool{}
	if pred != nil {
		for _, k := range spec.ExprKeys(pred) {
			set[k] = true
		}
	}
	vals := m.initState()
	for _, gi := range groups {
		next, writes := m.apply(m.groups[gi], vals)
		for _, w := range writes {
			set[m.keys[w.key]] = true
		}
		vals = next
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// monitorsOf names the monitors attached to a group sequence, primary
// first (the final step's first actor), deduplicated.
func (m *model) monitorsOf(groups []int) (primary string, others []string) {
	seen := map[string]bool{}
	var all []string
	for i := len(groups) - 1; i >= 0; i-- {
		for _, mi := range m.groups[groups[i]].mons {
			name := m.mons[mi].Name
			if !seen[name] {
				seen[name] = true
				all = append(all, name)
			}
		}
	}
	if len(all) == 0 {
		if len(m.mons) > 0 {
			return m.mons[0].Name, nil
		}
		return "(deployment)", nil
	}
	return all[0], all[1:]
}

// checkProperty evaluates one declared property over the explored
// graph, appending a witness plan parallel to any diagnostic.
func (m *model) checkProperty(p *spec.PropertyDecl, cert *Certificate) (PropertyResult, *interfere.Diagnostic) {
	res := PropertyResult{Property: p.String(), Kind: p.Kind.String()}
	prog, err := compilePred(p.Pred)
	if err != nil {
		res.Status = StatusInconclusive
		res.Reason = "predicate could not be compiled: " + err.Error()
		return res, nil
	}
	evals := m.evalAll(prog)

	// Vacuity: a predicate never decidable in any reachable state
	// constrains nothing — the assert is almost certainly miswritten
	// (a typoed key, a range the deployment never enters).
	decidable := false
	for _, e := range evals {
		if e != evalUnknown {
			decidable = true
			break
		}
	}
	if !decidable {
		res.Status = StatusInconclusive
		res.Reason = "predicate is undecidable in every reachable abstract state"
		primary, others := m.monitorsOf(nil)
		d := &interfere.Diagnostic{
			Code: CodeVacuous, Severity: interfere.Warn,
			Pos: p.Pos, Guardrail: primary, Others: others,
			Message: fmt.Sprintf("property %q never evaluates decidably in any of %d reachable state(s); the assertion cannot bite", p.String(), len(m.nodes)),
		}
		m.plans = append(m.plans, nil)
		return res, d
	}

	if p.Kind == spec.PropAlways {
		return m.checkAlways(p, prog, evals, cert, res)
	}
	return m.checkEventually(p, prog, evals, cert, res)
}

// checkAlways: the predicate must provably hold in every reachable
// state. The first state (in BFS order) where it may fail refutes.
func (m *model) checkAlways(p *spec.PropertyDecl, prog *vm.Program, evals []int8, cert *Certificate, res PropertyResult) (PropertyResult, *interfere.Diagnostic) {
	bad := -1
	for i, e := range evals {
		if e != evalTrue {
			bad = i
			break
		}
	}
	if bad < 0 {
		if m.truncated {
			res.Status = StatusInconclusive
			res.Reason = "holds in every explored state, but exploration was truncated (" + m.truncReason + ")"
			return res, nil
		}
		res.Status = StatusProved
		res.Certificate = cert
		return res, nil
	}
	res.Status = StatusRefuted
	verdict := "may fail"
	if evals[bad] == evalFalse {
		verdict = "provably fails"
	}
	path := m.treePath(bad)
	res.Reason = fmt.Sprintf("predicate %s in a state reachable in %d step(s)", verdict, len(path))
	primary, others := m.monitorsOf(path)
	trace := m.renderTrace(path, m.traceKeys(p.Pred, path))
	trace = append(trace, fmt.Sprintf("state reached: %s %s", spec.ExprString(p.Pred), verdict))
	site := ""
	if len(path) > 0 {
		site = m.groups[path[len(path)-1]].label
	}
	d := &interfere.Diagnostic{
		Code: CodeSafety, Severity: interfere.Warn,
		Pos: p.Pos, Guardrail: primary, Others: others, Site: site,
		Message: fmt.Sprintf("safety property %q %s after %d step(s)", p.String(), verdict, len(path)),
		Trace:   trace,
	}
	m.plans = append(m.plans, &witnessPlan{code: CodeSafety, prefix: path, prog: prog})
	return res, d
}

// checkEventually: from the initial state, every execution must reach
// a provably-true state within K steps. A K-step path staying in
// not-provably-true states refutes; with fewer than K states explored,
// a shorter path revisiting a state pumps to any K.
func (m *model) checkEventually(p *spec.PropertyDecl, prog *vm.Program, evals []int8, cert *Certificate, res PropertyResult) (PropertyResult, *interfere.Diagnostic) {
	if evals[0] == evalTrue {
		res.Status = StatusProved
		res.Certificate = cert
		return res, nil
	}
	if len(m.groups) == 0 {
		res.Status = StatusInconclusive
		res.Reason = "deployment has no transitions, and the predicate does not provably hold initially"
		m.plans = append(m.plans, nil)
		d := &interfere.Diagnostic{
			Code: CodeLiveness, Severity: interfere.Warn,
			Pos: p.Pos, Guardrail: "(deployment)",
			Message: fmt.Sprintf("liveness property %q cannot progress: the deployment has no hook or timer transitions", p.String()),
		}
		return res, d
	}

	// Layered BFS over the not-provably-true subgraph: frontier[k] is
	// the set of states reachable from init in exactly k steps along
	// paths whose every state is not provably true.
	limit := p.Within
	if limit > len(m.nodes) {
		limit = len(m.nodes)
	}
	type hop struct{ prev, group int }
	pred := make(map[[2]int]hop)
	frontier := []int{0}
	depth := 0
	for depth < limit && len(frontier) > 0 {
		nextSet := map[int]hop{}
		for _, u := range frontier {
			for _, e := range m.adj[u] {
				if evals[e.to] == evalTrue {
					continue
				}
				if _, ok := nextSet[e.to]; !ok {
					nextSet[e.to] = hop{prev: u, group: e.group}
				}
			}
		}
		if len(nextSet) == 0 {
			frontier = nil
			break
		}
		depth++
		frontier = frontier[:0]
		for v := range nextSet {
			frontier = append(frontier, v)
		}
		sort.Ints(frontier)
		for _, v := range frontier {
			pred[[2]int{depth, v}] = nextSet[v]
		}
	}

	if len(frontier) == 0 {
		// Every not-provably-true path dies before K steps: all
		// executions provably reach the predicate in time.
		if m.truncated {
			res.Status = StatusInconclusive
			res.Reason = "no refuting path in the explored graph, but exploration was truncated (" + m.truncReason + ")"
			return res, nil
		}
		res.Status = StatusProved
		res.Certificate = cert
		return res, nil
	}

	// A depth-step all-not-true path survives. Reconstruct it.
	end := frontier[0]
	pathNodes := make([]int, depth+1)
	pathGroups := make([]int, depth)
	pathNodes[depth] = end
	for k := depth; k > 0; k-- {
		h := pred[[2]int{k, pathNodes[k]}]
		pathNodes[k-1] = h.prev
		pathGroups[k-1] = h.group
	}

	pumped := depth < p.Within
	var prefix, cycle []int
	if pumped {
		// depth == len(m.nodes) < K: the path visits depth+1 states,
		// so some state repeats — the segment between the repeats is a
		// cycle inside the not-true region, pumpable to any K.
		first := map[int]int{}
		ci, cj := -1, -1
		for i, n := range pathNodes {
			if j, ok := first[n]; ok {
				ci, cj = j, i
				break
			}
			first[n] = i
		}
		if ci < 0 {
			// No repeat (depth < len(nodes) can happen when limit was
			// capped by Within): treat as a plain finite refutation.
			pumped = false
			prefix = pathGroups
		} else {
			prefix = pathGroups[:ci]
			cycle = pathGroups[ci:cj]
		}
	} else {
		prefix = pathGroups
	}

	res.Status = StatusRefuted
	if pumped {
		res.Reason = fmt.Sprintf("a reachable cycle keeps the predicate not provably true for any number of steps (bound %d)", p.Within)
	} else {
		res.Reason = fmt.Sprintf("an execution stays not provably true for %d step(s)", depth)
	}
	all := append(append([]int{}, prefix...), cycle...)
	primary, others := m.monitorsOf(all)
	trace := m.renderTrace(all, m.traceKeys(p.Pred, all))
	if pumped {
		trace = append(trace, fmt.Sprintf("steps %d..%d repeat forever: %s never provably holds", len(prefix)+1, len(all), spec.ExprString(p.Pred)))
	} else {
		trace = append(trace, fmt.Sprintf("after %d step(s): %s still not provably true (bound %d)", depth, spec.ExprString(p.Pred), p.Within))
	}
	site := ""
	if len(all) > 0 {
		site = m.groups[all[len(all)-1]].label
	}
	d := &interfere.Diagnostic{
		Code: CodeLiveness, Severity: interfere.Warn,
		Pos: p.Pos, Guardrail: primary, Others: others, Site: site,
		Message: fmt.Sprintf("liveness property %q misses its bound: %s", p.String(), res.Reason),
		Trace:   trace,
	}
	m.plans = append(m.plans, &witnessPlan{code: CodeLiveness, prefix: prefix, cycle: cycle, prog: prog, within: p.Within})
	return res, d
}

// checkOscillation finds non-convergent SAVE oscillations (GM003): a
// reachable cycle along which two monitors (or one monitor in two
// modes) write provably disjoint values to the same feature key, so
// the key never settles.
func (m *model) checkOscillation() []interfere.Diagnostic {
	sccs := sccsOf(m.adj)
	var diags []interfere.Diagnostic
	for _, comp := range sccs {
		inComp := map[int]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		// Intra-SCC edges; a single node only counts with a self-loop.
		var edges []cycleEdge
		for _, u := range comp {
			for _, e := range m.adj[u] {
				if inComp[e.to] && (len(comp) > 1 || e.to == u) {
					edges = append(edges, cycleEdge{from: u, e: e})
				}
			}
		}
		if len(edges) == 0 {
			continue
		}
		// Writes per key along the cycle edges.
		byKey := map[int][]cycleWrite{}
		var keyOrder []int
		for _, ce := range edges {
			for _, w := range ce.e.writes {
				if len(byKey[w.key]) == 0 {
					keyOrder = append(keyOrder, w.key)
				}
				byKey[w.key] = append(byKey[w.key], cycleWrite{ce: ce, w: w})
			}
		}
		sort.Ints(keyOrder)
		for _, ki := range keyOrder {
			ws := byKey[ki]
			found := false
			for i := 0; i < len(ws) && !found; i++ {
				for j := i + 1; j < len(ws) && !found; j++ {
					if !ws[i].w.val.DisjointFrom(ws[j].w.val) {
						continue
					}
					found = true
					d, plan := m.oscillationFinding(inComp, ki, ws[i], ws[j])
					diags = append(diags, d)
					m.plans = append(m.plans, plan)
				}
			}
		}
	}
	return diags
}

// cycleEdge is an intra-SCC edge with its source node.
type cycleEdge struct {
	from int
	e    edge
}

// cycleWrite is one feature-store write on an intra-SCC edge.
type cycleWrite struct {
	ce cycleEdge
	w  write
}

// oscillationFinding builds the GM003 diagnostic and witness plan for
// one contested key: the cycle visiting both writes, prefixed by the
// tree path to its entry.
func (m *model) oscillationFinding(inComp map[int]bool, ki int, a, b cycleWrite) (interfere.Diagnostic, *witnessPlan) {
	// Cycle: take a's edge, walk inside the SCC from a's target to b's
	// source, take b's edge, walk back to a's source.
	mid := m.sccPath(a.ce.e.to, b.ce.from, inComp)
	back := m.sccPath(b.ce.e.to, a.ce.from, inComp)
	cycleGroups := []int{a.ce.e.group}
	cycleGroups = append(cycleGroups, mid...)
	cycleGroups = append(cycleGroups, b.ce.e.group)
	cycleGroups = append(cycleGroups, back...)
	entry := a.ce.from
	prefix := m.treePath(entry)

	monA, monB := m.mons[a.w.mon].Name, m.mons[b.w.mon].Name
	key := m.keys[ki]
	msg := fmt.Sprintf("feature %q oscillates on a reachable cycle: %s writes %s while %s writes %s — the value never converges",
		key, monA, a.w.val, monB, b.w.val)
	var others []string
	if monB != monA {
		others = append(others, monB)
	}
	all := append(append([]int{}, prefix...), cycleGroups...)
	trace := m.renderTrace(all, m.traceKeys(nil, all))
	trace = append(trace, fmt.Sprintf("steps %d..%d form a cycle: %s alternates between %s and %s forever",
		len(prefix)+1, len(all), key, a.w.val, b.w.val))
	var pos spec.Pos
	if src := m.mons[a.w.mon].Source; src != nil {
		pos = src.Pos
	}
	d := interfere.Diagnostic{
		Code: CodeOscillation, Severity: interfere.Warn,
		Pos: pos, Guardrail: monA, Others: others,
		Site:    m.groups[a.ce.e.group].label,
		Message: msg,
		Trace:   trace,
	}
	plan := &witnessPlan{code: CodeOscillation, prefix: prefix, cycle: cycleGroups, key: key}
	return d, plan
}

// sccPath returns the group sequence of a shortest path from u to v
// staying inside the SCC (empty when u == v).
func (m *model) sccPath(u, v int, inComp map[int]bool) []int {
	if u == v {
		return nil
	}
	type hop struct{ prev, group int }
	pred := map[int]hop{}
	visited := map[int]bool{u: true}
	frontier := []int{u}
	for len(frontier) > 0 && !visited[v] {
		var next []int
		for _, x := range frontier {
			for _, e := range m.adj[x] {
				if !inComp[e.to] || visited[e.to] {
					continue
				}
				visited[e.to] = true
				pred[e.to] = hop{prev: x, group: e.group}
				next = append(next, e.to)
			}
		}
		frontier = next
	}
	if !visited[v] {
		return nil
	}
	var rev []int
	for n := v; n != u; {
		h := pred[n]
		rev = append(rev, h.group)
		n = h.prev
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// sccsOf computes strongly connected components of the explored graph
// (iterative Tarjan), returned in a deterministic order with members
// ascending.
func sccsOf(adj [][]edge) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var out [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == f.v {
						break
					}
				}
				sort.Ints(comp)
				out = append(out, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
