package spec

import (
	"fmt"
	"math"
	"sort"
)

// Temporal property declarations. Where a guardrail's rules constrain
// one evaluation, a property constrains the *dynamics* of a whole
// deployment: the sequence of feature-store states produced as monitors
// fire. Properties are declared at the top level of a spec file —
//
//	assert always LOAD(mode) <= 1
//	assert eventually LOAD(quarantined) == 1 within 4
//
// — or supplied as strings in a deployment manifest. They are advisory
// metadata for the bounded model checker (internal/spec/modelcheck);
// the compiler and runtime ignore them.

// PropertyKind classifies a temporal property.
type PropertyKind int

// Property kinds.
const (
	// PropAlways asserts the predicate holds in every reachable
	// deployment state (safety).
	PropAlways PropertyKind = iota
	// PropEventually asserts every execution makes the predicate hold
	// within a bounded number of monitor firings (bounded liveness).
	PropEventually
)

// String names the kind as it appears in source.
func (k PropertyKind) String() string {
	if k == PropEventually {
		return "eventually"
	}
	return "always"
}

// PropertyDecl is one declared temporal property.
type PropertyDecl struct {
	Kind PropertyKind
	// Pred is the state predicate, over feature-store keys.
	Pred Expr
	// Within bounds the number of transition steps for PropEventually
	// (0 and unused for PropAlways).
	Within int
	Pos    Pos
}

// String renders the declaration in source form.
func (d *PropertyDecl) String() string {
	if d.Kind == PropEventually {
		return fmt.Sprintf("assert eventually %s within %d", ExprString(d.Pred), d.Within)
	}
	return fmt.Sprintf("assert always %s", ExprString(d.Pred))
}

// parsePropertyDecl parses a top-level property declaration, positioned
// on the "assert" keyword:
//
//	assert always <pred>
//	assert eventually <pred> within <n>
func (p *Parser) parsePropertyDecl() (*PropertyDecl, error) {
	pos := p.cur.Pos
	if err := p.expectIdent("assert"); err != nil {
		return nil, err
	}
	return p.parsePropertyBody(pos)
}

// parsePropertyBody parses the declaration after the "assert" keyword.
func (p *Parser) parsePropertyBody(pos Pos) (*PropertyDecl, error) {
	if p.cur.Kind != TokIdent || (p.cur.Text != "always" && p.cur.Text != "eventually") {
		return nil, errAt(p.cur.Pos, "expected \"always\" or \"eventually\", found %s", p.describeCur())
	}
	d := &PropertyDecl{Pos: pos}
	if p.cur.Text == "eventually" {
		d.Kind = PropEventually
	}
	p.next()
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	d.Pred = pred
	if d.Kind == PropEventually {
		if err := p.expectIdent("within"); err != nil {
			return nil, err
		}
		t, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if t.Num < 1 || t.Num != math.Trunc(t.Num) || t.Num > 1<<20 {
			return nil, errAt(t.Pos, "\"within\" bound must be a positive integer step count, got %s", t.Text)
		}
		d.Within = int(t.Num)
	}
	return d, nil
}

// ParseProperty parses one property given as free-standing text, the
// form deployment manifests use ("always <pred>" or "eventually <pred>
// within <n>"; a leading "assert" is accepted). The result is
// semantically checked.
func ParseProperty(src string) (*PropertyDecl, error) {
	p := &Parser{lex: NewLexer(src)}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	if p.cur.Kind == TokIdent && p.cur.Text == "assert" {
		p.next()
	}
	d, err := p.parsePropertyBody(Pos{1, 1})
	if err != nil {
		return nil, err
	}
	if p.cur.Kind != TokEOF {
		return nil, errAt(p.cur.Pos, "unexpected %s after property", p.describeCur())
	}
	if err := CheckProperty(d); err != nil {
		return nil, err
	}
	return d, nil
}

// CheckProperty semantically validates one property declaration: the
// predicate must be a predicate expression (comparison, logical
// operator, or boolean literal) with well-formed builtin calls, and an
// "eventually" bound must be positive.
func CheckProperty(d *PropertyDecl) error {
	if !IsPredicate(d.Pred) {
		return errAt(d.Pred.ExprPos(), "property %s is not a predicate (use a comparison or logical expression)", ExprString(d.Pred))
	}
	if err := checkExpr(d.Pred); err != nil {
		return err
	}
	if d.Kind == PropEventually && d.Within < 1 {
		return errAt(d.Pos, "eventually property needs a positive \"within\" step bound")
	}
	return nil
}

// ExprKeys returns the sorted feature-store keys an expression reads
// (LOAD(k) and bare identifiers alike).
func ExprKeys(e Expr) []string {
	set := map[string]bool{}
	exprKeysInto(e, set)
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func exprKeysInto(e Expr, set map[string]bool) {
	switch n := e.(type) {
	case *LoadExpr:
		set[n.Key] = true
	case *IdentExpr:
		set[n.Name] = true
	case *UnaryExpr:
		exprKeysInto(n.X, set)
	case *BinaryExpr:
		exprKeysInto(n.X, set)
		exprKeysInto(n.Y, set)
	case *CallExpr:
		for _, a := range n.Args {
			exprKeysInto(a, set)
		}
	}
}
