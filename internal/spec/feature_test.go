package spec

import (
	"strings"
	"testing"
)

// TestParseFeatureDecls: top-level feature range declarations parse
// alongside guardrails, in any order, with signed and scientific
// bounds.
func TestParseFeatureDecls(t *testing.T) {
	f, err := Parse(`
feature cpu_util range(0, 1)

guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(cpu_util) <= 0.9 },
    action: { REPORT(LOAD(cpu_util)) }
}

feature temp_delta range(-40, 1e2)
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Features) != 2 || len(f.Guardrails) != 1 {
		t.Fatalf("got %d features, %d guardrails", len(f.Features), len(f.Guardrails))
	}
	d := f.Features[1]
	if d.Key != "temp_delta" || d.Lo != -40 || d.Hi != 100 {
		t.Errorf("feature decl = %+v", d)
	}
	if got := d.String(); got != "feature temp_delta range(-40, 100)" {
		t.Errorf("String() = %q", got)
	}

	ranges := FeatureRanges(f)
	if ranges["cpu_util"] == nil || ranges["cpu_util"].Hi != 1 {
		t.Errorf("FeatureRanges = %v", ranges)
	}
}

func TestParseFeatureDeclErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"feature range(0, 1)", "range"},
		{"feature k span(0, 1)", `"range"`},
		{"feature k range(0)", "','"},
		{"feature k range(0, 1", "')'"},
		{"feature k range(lo, 1)", "number"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("Parse(%q) accepted", c.src)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want mention of %s", c.src, err, c.want)
		}
	}
}

func TestCheckFeatureDecls(t *testing.T) {
	guard := `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(k) <= 1 },
    action: { REPORT(1) }
}`
	cases := []struct{ decls, want string }{
		{"feature k range(0, 1)\nfeature k range(0, 2)", "duplicate feature"},
		{"feature k range(2, 1)", "empty"},
	}
	for _, c := range cases {
		f, err := Parse(c.decls + "\n" + guard)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.decls, err)
		}
		err = Check(f)
		if err == nil {
			t.Errorf("Check accepted %q", c.decls)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Check(%q) error = %v, want mention of %q", c.decls, err, c.want)
		}
	}
}
