package spec

import (
	"testing"
)

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	ts, err := LexAll("guardrail x { } ( ) , : ; + - * /")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokIdent, TokLBrace, TokRBrace, TokLParen, TokRParen,
		TokComma, TokColon, TokSemi, TokPlus, TokMinus, TokStar, TokSlash, TokEOF,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	ts, err := LexAll("< <= > >= == != && || !")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokLt, TokLe, TokGt, TokGe, TokEq, TokNe, TokAnd, TokOr, TokNot, TokEOF}
	got := kinds(ts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"0", 0}, {"42", 42}, {"3.14", 3.14}, {"1e9", 1e9},
		{"2.5e-3", 2.5e-3}, {"1E6", 1e6}, {".5", 0.5},
	}
	for _, c := range cases {
		ts, err := LexAll(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if ts[0].Kind != TokNumber || ts[0].Num != c.want {
			t.Errorf("%q = %v (%v), want %v", c.src, ts[0].Num, ts[0].Kind, c.want)
		}
	}
}

func TestLexNumberFollowedByIdent(t *testing.T) {
	// "1e" without digits: the 'e' must not be consumed as an exponent.
	ts, err := LexAll("5e x")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Kind != TokNumber || ts[0].Num != 5 {
		t.Fatalf("first token = %+v", ts[0])
	}
	if ts[1].Kind != TokIdent || ts[1].Text != "e" {
		t.Fatalf("second token = %+v", ts[1])
	}
}

func TestLexComments(t *testing.T) {
	ts, err := LexAll("a // line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 4 || ts[0].Text != "a" || ts[1].Text != "b" || ts[2].Text != "c" {
		t.Errorf("tokens = %+v", ts)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := LexAll("a /* never ends"); err == nil {
		t.Error("unterminated comment should error")
	}
}

func TestLexPositions(t *testing.T) {
	ts, err := LexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Pos != (Pos{1, 1}) {
		t.Errorf("a at %v", ts[0].Pos)
	}
	if ts[1].Pos != (Pos{2, 3}) {
		t.Errorf("bb at %v", ts[1].Pos)
	}
	if ts[1].Pos.String() != "2:3" {
		t.Errorf("pos string = %q", ts[1].Pos.String())
	}
}

func TestLexBadCharacters(t *testing.T) {
	for _, src := range []string{"@", "#", "$", "a & b", "a | b", "="} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q should fail to lex", src)
		}
	}
}

func TestLexIdentifiers(t *testing.T) {
	ts, err := LexAll("false_submit_rate _x Abc9")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Text != "false_submit_rate" || ts[1].Text != "_x" || ts[2].Text != "Abc9" {
		t.Errorf("idents = %+v", ts)
	}
}

func TestTokenKindString(t *testing.T) {
	if TokLe.String() != "'<='" || TokEOF.String() != "end of input" {
		t.Error("kind names wrong")
	}
	if TokenKind(99).String() != "token(99)" {
		t.Error("unknown kind format")
	}
}
