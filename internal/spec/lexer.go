package spec

import (
	"strconv"
)

// Lexer tokenizes guardrail source text. Create with NewLexer and pull
// tokens with Next; lexical errors are returned in-band.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errAt(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token or a positioned error.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.off], Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(pos)
	}
	l.advance()
	two := func(second byte, withKind, aloneKind TokenKind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: withKind, Pos: pos}, nil
		}
		if aloneKind == TokEOF {
			return Token{}, errAt(pos, "unexpected character %q", string(c))
		}
		return Token{Kind: aloneKind, Pos: pos}, nil
	}
	switch c {
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '=':
		return two('=', TokEq, TokEOF)
	case '!':
		return two('=', TokNe, TokNot)
	case '&':
		return two('&', TokAnd, TokEOF)
	case '|':
		return two('|', TokOr, TokEOF)
	}
	return Token{}, errAt(pos, "unexpected character %q", string(c))
}

func (l *Lexer) number(pos Pos) (Token, error) {
	start := l.off
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		// Exponent must be followed by optional sign and digits.
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			l.off = save // not an exponent; leave for the parser to reject
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	text := l.src[start:l.off]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return Token{}, errAt(pos, "malformed number %q", text)
	}
	return Token{Kind: TokNumber, Text: text, Num: v, Pos: pos}, nil
}

// LexAll tokenizes the whole input (testing convenience); the final
// token is TokEOF.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
