package spec

import (
	"strings"
	"testing"
)

func wrap(trigger, rule, action string) string {
	return "guardrail g {\n trigger: { " + trigger + " },\n rule: { " + rule + " },\n action: { " + action + " }\n}"
}

func TestCheckAcceptsValid(t *testing.T) {
	srcs := []string{
		wrap("TIMER(0, 1e9)", "LOAD(x) <= 0.05", "SAVE(ml_enabled, false)"),
		wrap("FUNCTION(io_submit)", "LOAD(a) < 1 && LOAD(b) > 2", "REPORT(LOAD(a))"),
		wrap("TIMER(0, 1)", "!(LOAD(x) == 0)", "RETRAIN(m)"),
		wrap("TIMER(0, 1)", "true", "REPORT()"),
		wrap("TIMER(0, 1)", "min(LOAD(a), LOAD(b)) < max(1, 2)", "REPORT()"),
		wrap("TIMER(0, 1)", "sqrt(LOAD(v)) < log2(LOAD(n)) + abs(LOAD(d))", "REPORT()"),
		wrap("TIMER(0, 1)", "now() < 1e12", "REPORT()"),
		wrap("TIMER(0, 1)", "LOAD(x) < 1", "DEPRIORITIZE(batch, 19)"),
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if err := Check(f); err != nil {
			t.Errorf("check rejected valid spec: %v\n%s", err, src)
		}
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no-trigger", "guardrail g { rule: { LOAD(x) < 1 }, action: { REPORT() } }", "no triggers"},
		{"no-rule", "guardrail g { trigger: { TIMER(0,1) }, action: { REPORT() } }", "no rules"},
		{"no-action", "guardrail g { trigger: { TIMER(0,1) }, rule: { LOAD(x) < 1 } }", "no actions"},
		{"zero-interval", wrap("TIMER(0, 0)", "LOAD(x) < 1", "REPORT()"), "interval must be positive"},
		{"neg-interval", wrap("TIMER(0, -5)", "LOAD(x) < 1", "REPORT()"), "interval must be positive"},
		{"stop-before-start", wrap("TIMER(100, 1, 50)", "LOAD(x) < 1", "REPORT()"), "not after start"},
		{"non-predicate-number", wrap("TIMER(0,1)", "5", "REPORT()"), "not a predicate"},
		{"non-predicate-load", wrap("TIMER(0,1)", "LOAD(x)", "REPORT()"), "not a predicate"},
		{"non-predicate-arith", wrap("TIMER(0,1)", "LOAD(x) + 1", "REPORT()"), "not a predicate"},
		{"non-predicate-and-branch", wrap("TIMER(0,1)", "LOAD(x) < 1 && LOAD(y)", "REPORT()"), "not a predicate"},
		{"unknown-fn", wrap("TIMER(0,1)", "frob(LOAD(x)) < 1", "REPORT()"), "unknown function"},
		{"bad-arity", wrap("TIMER(0,1)", "abs(1, 2) < 1", "REPORT()"), "takes 1 argument"},
		{"min-arity", wrap("TIMER(0,1)", "min(1) < 1", "REPORT()"), "takes 2 argument"},
		{"replace-same", wrap("TIMER(0,1)", "LOAD(x) < 1", "REPLACE(p, p)"), "identical policies"},
		{"bad-priority", wrap("TIMER(0,1)", "LOAD(x) < 1", "DEPRIORITIZE(t, 99)"), "outside [-20, 19]"},
		{"report-bad-expr", wrap("TIMER(0,1)", "LOAD(x) < 1", "REPORT(frob(1))"), "unknown function"},
		{"save-bad-expr", wrap("TIMER(0,1)", "LOAD(x) < 1", "SAVE(k, frob(1))"), "unknown function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse failed (want check failure): %v", err)
			}
			err = Check(f)
			if err == nil {
				t.Fatalf("check accepted invalid spec:\n%s", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestCheckDuplicateNames(t *testing.T) {
	src := wrap("TIMER(0,1)", "LOAD(x) < 1", "REPORT()")
	f, err := Parse(src + "\n" + src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err == nil || !strings.Contains(err.Error(), "duplicate guardrail name") {
		t.Errorf("duplicate names not caught: %v", err)
	}
}

func TestCheckNestedPredicates(t *testing.T) {
	// AND/OR branches must themselves be predicates.
	src := wrap("TIMER(0,1)", "(LOAD(a) < 1 || LOAD(b) > 2) && !(LOAD(c) == 3)", "REPORT()")
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Errorf("valid nested predicate rejected: %v", err)
	}
}
