// Package spec implements the guardrail specification language of the
// paper's Listing 1: a declarative format in which kernel developers
// state properties (triggers + rules) and corrective actions. The
// package provides the lexer, parser, AST, and semantic checker; package
// compile lowers checked ASTs to monitor VM programs.
//
// Example (the paper's Listing 2):
//
//	guardrail low-false-submit {
//	    trigger: {
//	        TIMER(start_time, 1e9) // Periodically check every 1s.
//	    },
//	    rule: {
//	        LOAD(false_submit_rate) <= 0.05
//	    },
//	    action: {
//	        SAVE(ml_enabled, false)
//	    }
//	}
package spec

import "fmt"

// TokenKind enumerates lexical token types.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokComma  // ,
	TokColon  // :
	TokSemi   // ;
	TokPlus   // +
	TokMinus  // -
	TokStar   // *
	TokSlash  // /
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokEq     // ==
	TokNe     // !=
	TokAnd    // &&
	TokOr     // ||
	TokNot    // !
)

var kindNames = map[TokenKind]string{
	TokEOF: "end of input", TokIdent: "identifier", TokNumber: "number",
	TokLBrace: "'{'", TokRBrace: "'}'", TokLParen: "'('", TokRParen: "')'",
	TokComma: "','", TokColon: "':'", TokSemi: "';'",
	TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'", TokSlash: "'/'",
	TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
	TokEq: "'=='", TokNe: "'!='", TokAnd: "'&&'", TokOr: "'||'", TokNot: "'!'",
}

// String returns a human-readable token kind name.
func (k TokenKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token.
type Token struct {
	Kind TokenKind
	Text string  // raw text for idents; normalized for numbers
	Num  float64 // value when Kind == TokNumber
	Pos  Pos
}

// Error is a positioned specification error (lexical, syntactic, or
// semantic).
type Error struct {
	Pos Pos
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errAt(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
