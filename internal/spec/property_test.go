package spec

import (
	"strings"
	"testing"
)

func TestParseFileProperties(t *testing.T) {
	f, err := Parse(`
feature err range(0, 1)

assert always LOAD(mode) <= 1
assert eventually LOAD(quarantined) == 1 within 4

guardrail g {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(err) < 0.5 },
    action: { SAVE(mode, 1) }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f); err != nil {
		t.Fatal(err)
	}
	if len(f.Properties) != 2 {
		t.Fatalf("got %d properties", len(f.Properties))
	}
	if f.Properties[0].Kind != PropAlways || f.Properties[1].Kind != PropEventually {
		t.Errorf("kinds = %v, %v", f.Properties[0].Kind, f.Properties[1].Kind)
	}
	if f.Properties[1].Within != 4 {
		t.Errorf("within = %d, want 4", f.Properties[1].Within)
	}
	if got := f.Properties[0].String(); got != "assert always (LOAD(mode) <= 1)" {
		t.Errorf("String() = %q", got)
	}
	if got := f.Properties[1].String(); got != "assert eventually (LOAD(quarantined) == 1) within 4" {
		t.Errorf("String() = %q", got)
	}
}

func TestParsePropertyStandalone(t *testing.T) {
	d, err := ParseProperty("always LOAD(x) < 2")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PropAlways {
		t.Errorf("kind = %v", d.Kind)
	}
	// Leading "assert" is accepted in manifest form too.
	d, err = ParseProperty("assert eventually x >= 1 within 10")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PropEventually || d.Within != 10 {
		t.Errorf("decl = %+v", d)
	}
}

func TestParsePropertyErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"always 5", "not a predicate"},
		{"sometimes LOAD(x) < 1", `"always" or "eventually"`},
		{"eventually LOAD(x) < 1", `expected "within"`},
		{"eventually LOAD(x) < 1 within 0", "positive integer"},
		{"eventually LOAD(x) < 1 within 2.5", "positive integer"},
		{"always LOAD(x) < 1 extra", "after property"},
		{"always badfn(1) < 1", "unknown function"},
	}
	for _, c := range cases {
		if _, err := ParseProperty(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseProperty(%q) err = %v, want containing %q", c.src, err, c.want)
		}
	}
}

func TestCheckRejectsBadFileProperty(t *testing.T) {
	_, err := Parse(`
assert always LOAD(x) + 1

guardrail g {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(err) < 0.5 },
    action: { SAVE(mode, 1) }
}`)
	if err != nil {
		// Parsing may accept the expression; Check must reject it.
		return
	}
	t.Run("check", func(t *testing.T) {
		f, err := Parse(`
assert always LOAD(x) + 1

guardrail g {
    trigger: { TIMER(0, 1000) },
    rule: { LOAD(err) < 0.5 },
    action: { SAVE(mode, 1) }
}`)
		if err != nil {
			t.Skip("parser already rejects")
		}
		if err := Check(f); err == nil || !strings.Contains(err.Error(), "not a predicate") {
			t.Errorf("Check err = %v, want not-a-predicate", err)
		}
	})
}

func TestExprKeys(t *testing.T) {
	d, err := ParseProperty("always LOAD(b) < 1 && a > min(LOAD(c), abs(a))")
	if err != nil {
		t.Fatal(err)
	}
	keys := ExprKeys(d.Pred)
	want := []string{"a", "b", "c"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}
