package vet

import (
	"strings"
	"testing"

	"guardrails/internal/spec"
)

func parse(t *testing.T, src string) *spec.File {
	t.Helper()
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatalf("check: %v", err)
	}
	return f
}

func codes(ds []Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func hasCode(ds []Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestCleanSpecNoWarnings(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(rate) <= 0.05; LOAD(rate) >= 0 },
    action: { SAVE(knob, false) }
}`)
	for _, d := range File(f) {
		if d.Severity == Warn {
			t.Errorf("unexpected warning on clean spec: %s", d)
		}
	}
}

func TestAlwaysTrueAndDeadActions(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { 3 > 2 },
    action: { REPORT(1) }
}`)
	ds := File(f)
	if !hasCode(ds, CodeAlwaysTrue) || !hasCode(ds, CodeDeadActions) {
		t.Errorf("want GV001+GV007, got %v", codes(ds))
	}
}

func TestAlwaysFalse(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { 1 > 2; LOAD(x) > 0 },
    action: { REPORT(1) }
}`)
	ds := File(f)
	if !hasCode(ds, CodeAlwaysFalse) {
		t.Errorf("want GV002, got %v", codes(ds))
	}
	if hasCode(ds, CodeDeadActions) {
		t.Errorf("GV007 must not fire when a rule is falsifiable: %v", codes(ds))
	}
}

func TestContradictionBothOperandOrders(t *testing.T) {
	// Mirrored constant-first comparison must normalize: 10 < LOAD(x)
	// means x > 10, contradicting x <= 5.
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { 10 < LOAD(x); LOAD(x) <= 5 },
    action: { REPORT(1) }
}`)
	if ds := File(f); !hasCode(ds, CodeContradiction) {
		t.Errorf("want GV003, got %v", codes(ds))
	}
	// Overlapping intervals must stay silent.
	f = parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(x) >= 1; LOAD(x) <= 5 },
    action: { REPORT(1) }
}`)
	if ds := File(f); hasCode(ds, CodeContradiction) {
		t.Errorf("false GV003 on satisfiable bounds: %v", codes(ds))
	}
}

func TestTautologicalComparisonOutcomes(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(x) >= LOAD(x); LOAD(x) != LOAD(x) },
    action: { REPORT(1) }
}`)
	var tauto []Diagnostic
	for _, d := range File(f) {
		if d.Code == CodeTautologicalCmp {
			tauto = append(tauto, d)
		}
	}
	if len(tauto) != 2 {
		t.Fatalf("want 2 GV004, got %d", len(tauto))
	}
	if !strings.Contains(tauto[0].Message, "always true") ||
		!strings.Contains(tauto[1].Message, "always false") {
		t.Errorf("wrong outcomes: %q / %q", tauto[0].Message, tauto[1].Message)
	}
}

func TestUnreadKeyIsInfoAndCrossGuardrail(t *testing.T) {
	// knob is SAVEd in g1 but LOADed by g2's rules: File-level lint must
	// not flag it; Guardrail-level lint of g1 alone must (as Info).
	f := parse(t, `
guardrail g1 {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(rate) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail g2 {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(knob) == 0 },
    action: { REPORT(1) }
}`)
	if ds := File(f); hasCode(ds, CodeUnreadKey) {
		t.Errorf("GV005 fired despite cross-guardrail LOAD: %v", codes(ds))
	}
	ds := Guardrail(f.Guardrails[0])
	if !hasCode(ds, CodeUnreadKey) {
		t.Fatalf("want GV005 from isolated lint, got %v", codes(ds))
	}
	for _, d := range ds {
		if d.Code == CodeUnreadKey && d.Severity != Info {
			t.Errorf("GV005 must be Info, got %s", d.Severity)
		}
	}
}

func TestFeedbackLoop(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(mode) == 1 },
    action: { SAVE(mode, 0) }
}`)
	if ds := File(f); !hasCode(ds, CodeFeedbackLoop) {
		t.Errorf("want GV006, got %v", codes(ds))
	}
}

func TestConstZeroDivInActionExpr(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(x) > 0 },
    action: { SAVE(y, LOAD(x) / (2 - 2)) }
}`)
	if ds := File(f); !hasCode(ds, CodeConstZeroDiv) {
		t.Errorf("want GV009 in action operand, got %v", codes(ds))
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	f := parse(t, `
guardrail g {
    trigger: { TIMER(start_time, 1e9) },
    rule: { 1 > 2; 2 > 3; LOAD(x) > 0 },
    action: { REPORT(1) }
}`)
	ds := File(f)
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1].Pos, ds[i].Pos
		if a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestThresholdRange covers GV010: a constant threshold strictly
// outside (or fully covering) a feature's declared range is a dead or
// vacuous guard; thresholds that properly cut the range are silent, and
// undeclared keys are never flagged.
func TestThresholdRange(t *testing.T) {
	f := parse(t, `
feature util range(0, 1)

guardrail vacuous {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(util) <= 2 },
    action: { REPORT(1) }
}
guardrail unsatisfiable {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(util) >= 5 },
    action: { REPORT(1) }
}
guardrail proper {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(util) <= 0.9 },
    action: { REPORT(1) }
}
guardrail undeclared {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(other) <= 99 },
    action: { REPORT(1) }
}`)
	ds := File(f)
	var hits []Diagnostic
	for _, d := range ds {
		if d.Code == CodeThresholdRange {
			hits = append(hits, d)
		}
	}
	if len(hits) != 2 {
		t.Fatalf("GV010 fired %d times, want 2: %v", len(hits), ds)
	}
	for _, d := range hits {
		if d.Severity != Warn {
			t.Errorf("GV010 severity = %v, want Warn", d.Severity)
		}
		switch d.Guardrail {
		case "vacuous":
			if !strings.Contains(d.Message, "holds for every value") {
				t.Errorf("vacuous message = %q", d.Message)
			}
		case "unsatisfiable":
			if !strings.Contains(d.Message, "unsatisfiable") {
				t.Errorf("unsatisfiable message = %q", d.Message)
			}
		default:
			t.Errorf("GV010 flagged %q", d.Guardrail)
		}
	}
}

// TestThresholdRangeBoundary: thresholds exactly at the declared bounds
// still admit (or exclude) a real value, so they are not flagged as
// unsatisfiable — only strictly-outside constants are.
func TestThresholdRangeBoundary(t *testing.T) {
	f := parse(t, `
feature util range(0, 1)

guardrail at-hi {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(util) >= 1 },
    action: { REPORT(1) }
}`)
	for _, d := range File(f) {
		if d.Code == CodeThresholdRange {
			t.Errorf("boundary threshold flagged: %s", d)
		}
	}
}

// TestGuardrailEntryPointSkipsRangeCheck: the single-guardrail entry
// point has no file context, so declared ranges cannot apply.
func TestGuardrailEntryPointSkipsRangeCheck(t *testing.T) {
	f := parse(t, `
feature util range(0, 1)

guardrail vacuous {
    trigger: { TIMER(start_time, 1e9) },
    rule: { LOAD(util) <= 2 },
    action: { REPORT(1) }
}`)
	if hasCode(Guardrail(f.Guardrails[0]), CodeThresholdRange) {
		t.Error("Guardrail() flagged GV010 without file-level declarations")
	}
}
