// Package vet lints checked guardrail specifications for constructs
// that are well-formed and compilable but almost certainly not what the
// author meant: rules that can never fail (so the guardrail silently
// watches nothing), rules that can never hold (so the action fires on
// every evaluation), mutually contradictory rules, tautological
// comparisons, feedback loops between a guardrail's SAVE actions and
// its own rules, divisions by a constant zero, and constant thresholds
// that lie outside a feature's declared range.
//
// Each finding is a Diagnostic with a stable code (GV001…), a severity,
// and the source position of the offending construct. Warn-severity
// diagnostics indicate a spec that is very likely wrong; Info ones flag
// conventions worth a look (e.g. a SAVEd key no rule reads — often a
// deliberate control knob for the instrumented policy, as in the
// paper's ml_enabled example).
//
// The linter reasons over ordinary real values only: it does not model
// NaN propagation. That is deliberate — vet is a heuristic authoring
// aid, while the VM verifier (internal/vm) is the sound layer that
// proves trap-freedom over the full float64 domain including NaN.
package vet

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	// Info flags a convention worth a look; clean specs may carry Info
	// diagnostics.
	Info Severity = iota
	// Warn flags a construct that is very likely a spec bug. A spec
	// "lints clean" when it produces zero Warn diagnostics.
	Warn
)

// String names the severity.
func (s Severity) String() string {
	if s == Warn {
		return "warning"
	}
	return "info"
}

// Diagnostic codes.
const (
	CodeAlwaysTrue      = "GV001" // rule is always true: guards nothing
	CodeAlwaysFalse     = "GV002" // rule is always false: fires every evaluation
	CodeContradiction   = "GV003" // two rules cannot hold together
	CodeTautologicalCmp = "GV004" // comparison with identical sides
	CodeUnreadKey       = "GV005" // SAVEd key never LOADed in the file
	CodeFeedbackLoop    = "GV006" // guardrail SAVEs a key its own rules LOAD
	CodeDeadActions     = "GV007" // every rule always true: actions never fire
	CodeDuplicateRule   = "GV008" // identical rule repeated
	CodeConstZeroDiv    = "GV009" // division by constant zero
	CodeThresholdRange  = "GV010" // constant threshold outside the feature's declared range
	CodeUnknownGlobal   = "GV011" // LOAD of a *_global key with no registered aggregate
)

// Diagnostic is one linter finding.
type Diagnostic struct {
	// Code is the stable diagnostic code (GV001…).
	Code string
	// Severity grades the finding.
	Severity Severity
	// Pos is the source position of the offending construct.
	Pos spec.Pos
	// Guardrail names the guardrail the finding is in.
	Guardrail string
	// Message explains the finding.
	Message string
	// Status, when witness synthesis ran (Witnesses), grades the finding
	// CONFIRMED (a concrete replay reproduces the violation) or
	// PLAUSIBLE (no counterexample found within the search bounds; the
	// static claim stands). Empty when synthesis was not attempted.
	Status vm.WitnessStatus
	// Witness is the replayable counterexample backing a CONFIRMED
	// status.
	Witness *vm.Witness
}

// String renders "line:col: severity: [CODE] (guardrail) message",
// followed by the witness verdict when synthesis ran.
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: %s: [%s] guardrail %s: %s",
		d.Pos, d.Severity, d.Code, d.Guardrail, d.Message)
	switch d.Status {
	case vm.WitnessConfirmed:
		s += fmt.Sprintf(" [CONFIRMED: %s]", d.Witness)
	case vm.WitnessPlausible:
		s += " [PLAUSIBLE: no witness within search bounds]"
	}
	return s
}

// Config carries deployment context the spec file alone cannot provide.
type Config struct {
	// Aggregates lists the cross-shard aggregate names registered in the
	// deployment (featurestore.RegisterAggregate): registering "err_rate"
	// publishes "err_rate_global". nil means the aggregate set is unknown
	// and the GV011 check is skipped; an empty non-nil slice means the
	// deployment is known to register none, so every *_global LOAD flags.
	Aggregates []string
}

// File lints every guardrail in a checked file, plus the cross-guardrail
// checks (GV005 consults LOADs from all guardrails: one guardrail's
// SAVEd knob may be read by another's rules). Diagnostics are ordered by
// source position, then code.
func File(f *spec.File) []Diagnostic { return FileConfig(f, nil) }

// FileConfig lints like File plus the checks that need deployment
// context from cfg (GV011: a LOAD of a *_global aggregate key the
// deployment never registers reads a cell no aggregation step ever
// writes, so the rule evaluates against a permanent zero).
func FileConfig(f *spec.File, cfg *Config) []Diagnostic {
	var ds []Diagnostic
	loaded := map[string]bool{}
	for _, g := range f.Guardrails {
		for _, r := range g.Rules {
			for k := range loadedKeys(r) {
				loaded[k] = true
			}
		}
		for _, a := range g.Actions {
			for _, e := range actionExprs(a) {
				for k := range loadedKeys(e) {
					loaded[k] = true
				}
			}
		}
	}
	features := spec.FeatureRanges(f)
	for _, g := range f.Guardrails {
		ds = append(ds, lintGuardrail(g, loaded, features)...)
		if cfg != nil && cfg.Aggregates != nil {
			ds = append(ds, lintGlobalLoads(g, cfg.Aggregates)...)
		}
	}
	sortDiags(ds)
	return ds
}

// lintGlobalLoads reports GV011: a LOAD of a *_global key whose base
// name is not a registered aggregate. The aggregation step only ever
// broadcasts into global cells derived from registered names
// (featurestore.GlobalKey), so an unregistered global key is a cell
// nothing writes — the LOAD reads 0 forever, usually a typo for a
// registered aggregate or a manifest missing a registration.
func lintGlobalLoads(g *spec.Guardrail, aggregates []string) []Diagnostic {
	registered := map[string]bool{}
	for _, a := range aggregates {
		registered[a] = true
	}
	var ds []Diagnostic
	seen := map[string]bool{}
	check := func(e spec.Expr) {
		key, ok := loadKey(e)
		if !ok || !strings.HasSuffix(key, "_global") || seen[key] {
			return
		}
		if registered[strings.TrimSuffix(key, "_global")] {
			return
		}
		seen[key] = true
		ds = append(ds, Diagnostic{Code: CodeUnknownGlobal, Severity: Warn,
			Pos: e.ExprPos(), Guardrail: g.Name,
			Message: fmt.Sprintf("LOAD(%s) reads a cross-shard aggregate the deployment never registers: no aggregation step writes this cell, so it is always 0", key)})
	}
	for _, r := range g.Rules {
		walkExprs(r, check)
	}
	for _, a := range g.Actions {
		for _, e := range actionExprs(a) {
			walkExprs(e, check)
		}
	}
	return ds
}

// Guardrail lints a single checked guardrail in isolation (GV005 then
// only sees that guardrail's own LOADs, and GV010 sees no feature
// declarations).
func Guardrail(g *spec.Guardrail) []Diagnostic {
	loaded := map[string]bool{}
	for _, r := range g.Rules {
		for k := range loadedKeys(r) {
			loaded[k] = true
		}
	}
	ds := lintGuardrail(g, loaded, nil)
	sortDiags(ds)
	return ds
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Code < b.Code
	})
}

func lintGuardrail(g *spec.Guardrail, fileLoaded map[string]bool, features map[string]*spec.FeatureDecl) []Diagnostic {
	var ds []Diagnostic
	emit := func(code string, sev Severity, pos spec.Pos, format string, args ...any) {
		ds = append(ds, Diagnostic{Code: code, Severity: sev, Pos: pos,
			Guardrail: g.Name, Message: fmt.Sprintf(format, args...)})
	}

	allTrue := len(g.Rules) > 0
	seen := map[string]spec.Pos{}
	for _, r := range g.Rules {
		if v, ok := compile.ConstEval(r); ok {
			if v != 0 {
				emit(CodeAlwaysTrue, Warn, r.ExprPos(),
					"rule %s is always true: it can never be violated", spec.ExprString(r))
			} else {
				emit(CodeAlwaysFalse, Warn, r.ExprPos(),
					"rule %s is always false: the action fires on every evaluation", spec.ExprString(r))
				allTrue = false
			}
		} else {
			allTrue = false
		}
		s := spec.ExprString(r)
		if prev, dup := seen[s]; dup {
			emit(CodeDuplicateRule, Warn, r.ExprPos(),
				"rule %s duplicates the rule at %s", s, prev)
		} else {
			seen[s] = r.ExprPos()
		}
		walkExprs(r, func(e spec.Expr) {
			checkTautologicalCmp(e, emit)
			checkConstZeroDiv(e, emit)
		})
		checkThresholdRange(r, features, emit)
	}
	if allTrue {
		emit(CodeDeadActions, Warn, g.Pos,
			"every rule is always true, so the guardrail's actions can never fire")
	}
	checkContradictions(g, emit)

	saved := map[string]spec.Pos{}
	ownLoads := map[string]bool{}
	for _, r := range g.Rules {
		for k := range loadedKeys(r) {
			ownLoads[k] = true
		}
	}
	for _, a := range g.Actions {
		for _, e := range actionExprs(a) {
			walkExprs(e, func(e spec.Expr) {
				checkConstZeroDiv(e, emit)
			})
		}
		sa, ok := a.(*spec.SaveAction)
		if !ok {
			continue
		}
		if _, dup := saved[sa.Key]; !dup {
			saved[sa.Key] = sa.Pos
		}
		if ownLoads[sa.Key] {
			emit(CodeFeedbackLoop, Warn, sa.Pos,
				"SAVE(%s, …) writes a key this guardrail's own rules LOAD: the action changes the property it enforces (feedback loop)", sa.Key)
		}
	}
	for k, pos := range saved {
		if !fileLoaded[k] {
			emit(CodeUnreadKey, Info, pos,
				"SAVEd key %q is never LOADed in this file (fine if it is a control knob the instrumented policy reads)", k)
		}
	}
	return ds
}

// checkTautologicalCmp flags comparisons whose two sides render to the
// same source text: x == x, LOAD(k) <= LOAD(k), and the like. Reflexive
// ==/<=/>= are always true and <//>//!= always false (over ordinary
// values; NaN is out of scope here — see the package comment).
func checkTautologicalCmp(e spec.Expr, emit func(string, Severity, spec.Pos, string, ...any)) {
	b, ok := e.(*spec.BinaryExpr)
	if !ok {
		return
	}
	switch b.Op {
	case spec.TokEq, spec.TokNe, spec.TokLt, spec.TokLe, spec.TokGt, spec.TokGe:
	default:
		return
	}
	if spec.ExprString(b.X) != spec.ExprString(b.Y) {
		return
	}
	outcome := "always true"
	switch b.Op {
	case spec.TokNe, spec.TokLt, spec.TokGt:
		outcome = "always false"
	}
	emit(CodeTautologicalCmp, Warn, b.Pos,
		"comparison %s has identical sides: %s", spec.ExprString(b), outcome)
}

// checkThresholdRange flags GV010: a simple comparison rule whose
// constant threshold lies strictly outside the feature's declared range
// (reusing the interval recognition that powers GV003). Such a rule is
// either vacuous (every in-range value satisfies it) or unsatisfiable
// (no in-range value does) — both mean the threshold and the
// declaration disagree about the feature's units or scale.
func checkThresholdRange(r spec.Expr, features map[string]*spec.FeatureDecl,
	emit func(string, Severity, spec.Pos, string, ...any)) {
	key, lo, hi, ok := simpleKeyConstraint(r)
	if !ok {
		return
	}
	d, declared := features[key]
	if !declared {
		return
	}
	switch {
	case lo > d.Hi || hi < d.Lo:
		// Satisfied interval and declared range are disjoint.
		emit(CodeThresholdRange, Warn, r.ExprPos(),
			"rule %s is unsatisfiable for %s declared in range(%g, %g): the guardrail fires on every evaluation",
			spec.ExprString(r), key, d.Lo, d.Hi)
	case lo <= d.Lo && d.Hi <= hi:
		// Declared range fits entirely inside the satisfied interval.
		emit(CodeThresholdRange, Warn, r.ExprPos(),
			"rule %s holds for every value of %s declared in range(%g, %g): it guards nothing",
			spec.ExprString(r), key, d.Lo, d.Hi)
	}
}

func checkConstZeroDiv(e spec.Expr, emit func(string, Severity, spec.Pos, string, ...any)) {
	b, ok := e.(*spec.BinaryExpr)
	if !ok || b.Op != spec.TokSlash {
		return
	}
	if v, ok := compile.ConstEval(b.Y); ok && v == 0 {
		emit(CodeConstZeroDiv, Warn, b.Pos,
			"division %s has a constant-zero divisor (the VM defines x/0 = 0, which is rarely intended)", spec.ExprString(b))
	}
}

// keyBound is a half-open constraint a simple comparison rule places on
// one feature key: lo <= k <= hi (bounds may be infinite; strict edges
// are nudged since only emptiness of the intersection matters).
type keyBound struct {
	lo, hi float64
	rule   spec.Expr
}

// checkContradictions intersects, per feature key, the intervals implied
// by simple comparison rules of the shape LOAD(k) op const (either
// operand order). Rules must hold conjointly; an empty intersection
// means the property can never be satisfied, so the guardrail fires on
// every evaluation without any single rule looking wrong.
func checkContradictions(g *spec.Guardrail, emit func(string, Severity, spec.Pos, string, ...any)) {
	bounds := map[string]keyBound{}
	for _, r := range g.Rules {
		key, lo, hi, ok := simpleKeyConstraint(r)
		if !ok {
			continue
		}
		prev, have := bounds[key]
		if !have {
			bounds[key] = keyBound{lo: lo, hi: hi, rule: r}
			continue
		}
		nlo, nhi := math.Max(prev.lo, lo), math.Min(prev.hi, hi)
		if nlo > nhi {
			emit(CodeContradiction, Warn, r.ExprPos(),
				"rule %s contradicts rule %s: no value of %s satisfies both, so the guardrail fires on every evaluation",
				spec.ExprString(r), spec.ExprString(prev.rule), key)
			continue
		}
		bounds[key] = keyBound{lo: nlo, hi: nhi, rule: prev.rule}
	}
}

// simpleKeyConstraint recognizes LOAD(k) op const / ident op const (and
// the mirrored const op LOAD(k)) and returns the interval of key values
// for which the rule holds. Strict bounds are nudged one ulp inward so
// the interval comparison can stay closed.
func simpleKeyConstraint(r spec.Expr) (key string, lo, hi float64, ok bool) {
	b, isBin := r.(*spec.BinaryExpr)
	if !isBin {
		return "", 0, 0, false
	}
	op := b.Op
	k, kOK := loadKey(b.X)
	c, cOK := compile.ConstEval(b.Y)
	if !kOK || !cOK {
		// Mirror: const op LOAD(k) ⇒ LOAD(k) flipped-op const.
		c, cOK = compile.ConstEval(b.X)
		k, kOK = loadKey(b.Y)
		if !kOK || !cOK {
			return "", 0, 0, false
		}
		switch op {
		case spec.TokLt:
			op = spec.TokGt
		case spec.TokLe:
			op = spec.TokGe
		case spec.TokGt:
			op = spec.TokLt
		case spec.TokGe:
			op = spec.TokLe
		}
	}
	switch op {
	case spec.TokEq:
		return k, c, c, true
	case spec.TokLt:
		return k, math.Inf(-1), math.Nextafter(c, math.Inf(-1)), true
	case spec.TokLe:
		return k, math.Inf(-1), c, true
	case spec.TokGt:
		return k, math.Nextafter(c, math.Inf(1)), math.Inf(1), true
	case spec.TokGe:
		return k, c, math.Inf(1), true
	}
	return "", 0, 0, false
}

func loadKey(e spec.Expr) (string, bool) {
	switch n := e.(type) {
	case *spec.LoadExpr:
		return n.Key, true
	case *spec.IdentExpr:
		return n.Name, true
	}
	return "", false
}

// loadedKeys collects every feature key an expression reads.
func loadedKeys(e spec.Expr) map[string]bool {
	keys := map[string]bool{}
	walkExprs(e, func(e spec.Expr) {
		if k, ok := loadKey(e); ok {
			keys[k] = true
		}
	})
	return keys
}

// actionExprs returns the expression operands embedded in an action.
func actionExprs(a spec.Action) []spec.Expr {
	switch n := a.(type) {
	case *spec.ReportAction:
		return n.Args
	case *spec.DeprioritizeAction:
		if n.Priority != nil {
			return []spec.Expr{n.Priority}
		}
	case *spec.SaveAction:
		return []spec.Expr{n.Value}
	}
	return nil
}

func walkExprs(e spec.Expr, visit func(spec.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *spec.UnaryExpr:
		walkExprs(n.X, visit)
	case *spec.BinaryExpr:
		walkExprs(n.X, visit)
		walkExprs(n.Y, visit)
	case *spec.CallExpr:
		for _, a := range n.Args {
			walkExprs(a, visit)
		}
	}
}

// Summary renders a one-line count of findings by severity, e.g.
// "2 warnings, 1 info".
func Summary(ds []Diagnostic) string {
	var warns, infos int
	for _, d := range ds {
		if d.Severity == Warn {
			warns++
		} else {
			infos++
		}
	}
	var parts []string
	if warns > 0 {
		s := "s"
		if warns == 1 {
			s = ""
		}
		parts = append(parts, fmt.Sprintf("%d warning%s", warns, s))
	}
	if infos > 0 {
		parts = append(parts, fmt.Sprintf("%d info", infos))
	}
	if len(parts) == 0 {
		return "no findings"
	}
	return strings.Join(parts, ", ")
}
