package vet

import (
	"fmt"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Witness synthesis for lint findings. Several GV codes claim "the
// action fires on every evaluation" — a claim with a replayable half:
// if it is true, *any* concrete feature assignment makes the compiled
// program's rule conjunction evaluate to 0 on the real VM. Witnesses
// turns those claims into evidence by compiling the flagged guardrail,
// enumerating bounded assignments drawn from the file's declared
// feature ranges, and replaying until a run's violation path fires.
// A successful replay marks the diagnostic CONFIRMED and attaches the
// assignment plus the replayed trace; an exhausted search (or a
// guardrail the compiler rejects) downgrades it to PLAUSIBLE — the
// static finding is never dropped.

// DefaultWitnessBudget bounds the assignment enumeration per finding.
const DefaultWitnessBudget = 512

// witnessable reports whether a diagnostic code carries a replayable
// claim. GV002 (always-false rule) and GV003 (contradictory rules) both
// assert the action path runs on every evaluation, so one violating
// replay confirms them. Universally quantified findings (GV001/GV007
// "never fires") have no finite witness and are left unannotated.
func witnessable(code string) bool {
	return code == CodeAlwaysFalse || code == CodeContradiction
}

// Witnesses annotates witnessable diagnostics in place with a
// CONFIRMED/PLAUSIBLE status (and, when confirmed, the replayable
// counterexample). budget <= 0 uses DefaultWitnessBudget. The input
// slice is returned for convenience.
func Witnesses(f *spec.File, ds []Diagnostic, budget int) []Diagnostic {
	if budget <= 0 {
		budget = DefaultWitnessBudget
	}
	features := spec.FeatureRanges(f)
	byName := map[string]*spec.Guardrail{}
	for _, g := range f.Guardrails {
		byName[g.Name] = g
	}
	progs := map[string]*vm.Program{}
	for i := range ds {
		d := &ds[i]
		if !witnessable(d.Code) {
			continue
		}
		p, cached := progs[d.Guardrail]
		if !cached {
			if g := byName[d.Guardrail]; g != nil {
				// Prefer the optimized program (what deploys), but fall
				// back to -O0: constant-heavy degenerate specs — the very
				// ones these lints flag — sometimes only lower one way.
				for _, level := range []int{1, 0} {
					if c, err := compile.GuardrailWith(g, compile.Options{Level: level}); err == nil {
						p = c.Program
						break
					}
				}
			}
			progs[d.Guardrail] = p
		}
		if p == nil {
			// The guardrail does not compile in isolation (e.g. it also
			// fails verification); the static finding stands unreplayed.
			d.Status = vm.WitnessPlausible
			continue
		}
		if w := synthesize(p, features, budget); w != nil {
			d.Status = vm.WitnessConfirmed
			d.Witness = w
		} else {
			d.Status = vm.WitnessPlausible
		}
	}
	return ds
}

// synthesize searches for one assignment whose replay violates the
// program's rule conjunction, returning the witness or nil.
func synthesize(p *vm.Program, features map[string]*spec.FeatureDecl, budget int) *vm.Witness {
	keys := vm.LoadedKeys(p)
	cands := map[string][]float64{}
	for _, k := range keys {
		if fd, ok := features[k]; ok {
			cands[k] = vm.Candidates(vm.RangeInterval(fd.Lo, fd.Hi), true)
		} else {
			cands[k] = vm.Candidates(vm.Interval{}, false)
		}
	}
	var found *vm.Witness
	vm.EnumAssignments(keys, cands, budget, func(assign map[string]float64) bool {
		rec := vm.ReplayProgram(p, assign, 0, 0)
		if !rec.Violated {
			return false
		}
		found = &vm.Witness{Inputs: vm.CopyAssign(assign), Steps: narrate(rec)}
		return true
	})
	return found
}

// narrate renders a violating replay as human-readable steps.
func narrate(rec *vm.Replay) []string {
	steps := []string{
		"rule conjunction evaluates to 0 (violated) on the real VM",
		vm.TraceString(&rec.Trace),
	}
	for _, s := range rec.Stores {
		steps = append(steps, fmt.Sprintf("SAVE %s = %g", s.Key, s.Val))
	}
	for _, c := range rec.Calls {
		switch c.Helper {
		case vm.HelperReport:
			steps = append(steps, "REPORT fires")
		case vm.HelperAction:
			steps = append(steps, fmt.Sprintf("action %d dispatches", int(c.Arg)))
		}
	}
	return steps
}
