package interfere

import (
	"strings"
	"testing"

	"guardrails/internal/vm"
)

// Witness synthesis through the library API (the CLI goldens lock the
// rendered output; these lock the structured fields).

const witnessPairSrc = `
feature err_rate range(0, 1)

guardrail quality-mode {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.25 },
    action: { SAVE(serving_mode, 1) }
}
guardrail latency-mode {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.5 },
    action: { SAVE(serving_mode, 2) }
}`

func TestWitnessConfirmsOrderDependence(t *testing.T) {
	dep := deployment(t, witnessPairSrc, 0)
	dep.Witness = true
	r := Analyze(dep)
	d := find(t, r, CodeSaveConflict)
	if d.Status != vm.WitnessConfirmed {
		t.Fatalf("GI001 status = %q, want CONFIRMED: %s", d.Status, d.String())
	}
	if d.Witness == nil {
		t.Fatal("CONFIRMED diagnostic carries no witness")
	}
	// A SAVE fires on rule *violation*, so co-firing needs both rules
	// violated: err_rate above both thresholds.
	if v, ok := d.Witness.Inputs["err_rate"]; !ok || v <= 0.5 || v > 1 {
		t.Errorf("joint input err_rate=%v (ok=%v) does not co-fire both violations in range", v, ok)
	}
	var sawBothOrders int
	for _, s := range d.Witness.Steps {
		if strings.HasPrefix(s, "dispatch ") {
			sawBothOrders++
		}
	}
	if sawBothOrders != 2 {
		t.Errorf("witness steps %v missing the two dispatch-order replays", d.Witness.Steps)
	}
}

func TestWitnessDowngradesInfeasiblePair(t *testing.T) {
	dep := deployment(t, `
feature io_lat_p99 range(0, 1e7)

guardrail overload-guard {
    trigger: { FUNCTION(sched_switch) },
    rule: { LOAD(io_lat_p99) <= 9e6 },
    action: { SAVE(throttle, 1) }
}
guardrail idle-guard {
    trigger: { FUNCTION(sched_switch) },
    rule: { LOAD(io_lat_p99) >= 1e6 },
    action: { SAVE(throttle, 0) }
}`, 0)
	dep.Witness = true
	dep.WitnessBudget = 8 // deliberately tiny: the search must give up
	r := Analyze(dep)
	d := find(t, r, CodeSaveConflict)
	if d.Status != vm.WitnessPlausible {
		t.Fatalf("GI001 status = %q, want PLAUSIBLE under an exhausted budget", d.Status)
	}
	if d.Witness != nil {
		t.Errorf("PLAUSIBLE diagnostic carries a witness: %v", d.Witness)
	}
	if d.Severity != Warn {
		t.Errorf("downgraded finding lost its warning severity: %+v", d)
	}
}

func TestWitnessOffLeavesDiagnosticsBare(t *testing.T) {
	r := Analyze(deployment(t, witnessPairSrc, 0))
	d := find(t, r, CodeSaveConflict)
	if d.Status != "" || d.Witness != nil {
		t.Errorf("witness fields set without opt-in: status=%q witness=%v", d.Status, d.Witness)
	}
}
