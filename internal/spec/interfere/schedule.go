package interfere

import (
	"math"
	"sort"

	"guardrails/internal/spec"
)

// Timer arithmetic shared by the coincidence check (timersCanCoincide)
// and the deployment model checker (internal/spec/modelcheck), which
// schedules transitions over one timer hyperperiod. All of it is
// overflow-aware: timer parameters are float64 nanoseconds, and
// second-scale values (1e9…1e12 ns) push both float64 integer exactness
// (2^53) and int64 products (lcm of coprime second-scale intervals) past
// their limits. Every helper reports when it cannot compute exactly so
// callers fall back to the conservative answer instead of reasoning
// from silently wrapped or rounded arithmetic.

// maxExactFloatInt is the largest magnitude at which every integer is
// exactly representable as a float64. Beyond it, subtracting two timer
// offsets rounds, and a divisibility test on the rounded difference can
// wrongly rule out real coincidences.
const maxExactFloatInt = 1 << 53

// ExactInt64 converts a float64 timer parameter to int64 nanoseconds,
// with ok=false when the value is not an exactly-representable integer
// (NaN, ±Inf, fractional, or past the 2^53 float64 integer limit).
func ExactInt64(v float64) (int64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v != math.Trunc(v) || math.Abs(v) > maxExactFloatInt {
		return 0, false
	}
	return int64(v), true
}

// Gcd64 is the non-negative greatest common divisor.
func Gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Lcm64 is the least common multiple, with ok=false on int64 overflow
// (second-scale coprime intervals overflow readily: lcm(1e12+9, 1e12+7)
// ≈ 1e24).
func Lcm64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	g := Gcd64(a, b)
	q := a / g
	l := q * b
	if l/b != q {
		return 0, false
	}
	return l, true
}

// Hyperperiod is the least common multiple of a set of timer intervals
// — the period after which the joint tick pattern repeats — with
// ok=false on overflow.
func Hyperperiod(intervals []int64) (int64, bool) {
	h := int64(1)
	for _, iv := range intervals {
		var ok bool
		h, ok = Lcm64(h, iv)
		if !ok {
			return 0, false
		}
	}
	return h, true
}

// TickGroup is one coincidence class of timer ticks: the set of timers
// (by index into the input slice) that tick at the same instant.
type TickGroup struct {
	// Offset is the instant's offset in nanoseconds from the earliest
	// timer start, within the first hyperperiod window.
	Offset int64
	// Members indexes the timers ticking at this instant, ascending.
	Members []int
}

// TimerTicks enumerates the joint tick schedule of a set of timers over
// one hyperperiod: every instant in [base, base+H) at which at least
// one timer ticks (base = earliest start, H = lcm of the intervals),
// grouped by instant. Stop windows are respected within the enumerated
// window. ok=false — with no partial result — when any parameter is not
// an exactly-representable integer, the hyperperiod overflows int64, or
// the schedule exceeds maxTicks tick events; callers then fall back to
// conservative coincidence.
func TimerTicks(timers []*spec.TimerTrigger, maxTicks int) (groups []TickGroup, hyper int64, ok bool) {
	if len(timers) == 0 {
		return nil, 0, true
	}
	starts := make([]int64, len(timers))
	intervals := make([]int64, len(timers))
	stops := make([]int64, len(timers))
	for i, t := range timers {
		var ok bool
		if starts[i], ok = ExactInt64(t.Start); !ok {
			return nil, 0, false
		}
		if intervals[i], ok = ExactInt64(t.Interval); !ok {
			return nil, 0, false
		}
		if stops[i], ok = ExactInt64(t.Stop); !ok {
			return nil, 0, false
		}
		if intervals[i] <= 0 {
			return nil, 0, false
		}
	}
	h, ok2 := Hyperperiod(intervals)
	if !ok2 {
		return nil, 0, false
	}
	base := starts[0]
	for _, s := range starts[1:] {
		if s < base {
			base = s
		}
	}
	end := base + h
	if end < base { // base+h overflow
		return nil, 0, false
	}
	byOffset := map[int64][]int{}
	ticks := 0
	for i := range timers {
		for t := starts[i]; t < end; {
			if stops[i] > 0 && t >= stops[i] {
				break
			}
			ticks++
			if ticks > maxTicks {
				return nil, 0, false
			}
			off := t - base
			byOffset[off] = append(byOffset[off], i)
			next := t + intervals[i]
			if next < t { // int64 overflow
				break
			}
			t = next
		}
	}
	offsets := make([]int64, 0, len(byOffset))
	for off := range byOffset {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	groups = make([]TickGroup, 0, len(offsets))
	for _, off := range offsets {
		members := byOffset[off]
		sort.Ints(members)
		groups = append(groups, TickGroup{Offset: off, Members: members})
	}
	return groups, h, true
}
