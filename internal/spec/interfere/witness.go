package interfere

import (
	"fmt"
	"sort"

	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Witness synthesis for co-firing findings. The GI001–GI003 checks
// prove *may*-interference: the abstract certificates admit a hook
// dispatch on which both monitors fire with conflicting actions. A
// witness upgrades that to *does*: a concrete joint feature assignment
// under which both monitors' violation paths fire on the real
// interpreter — and, for SAVE conflicts, a pair of order-swapped
// sequential replays whose final key values differ, demonstrating the
// dispatch-order dependence the diagnostic describes. When the bounded
// search finds no co-firing input (the monitors' firing conditions may
// be jointly infeasible even though each fires alone), the finding is
// downgraded to PLAUSIBLE and kept: the static claim is sound, the
// evidence is just beyond the search bounds.
//
// Replays run on the raw VM with the same deterministic helper
// semantics the monitor runtime applies (vm.ReplayProgram); SAVE
// compiles to OpStore inside the program, so one replay exercises the
// rules and the store-visible half of the actions. The monitor runtime
// itself cannot be imported here (it sits above this package), which is
// why sequential dispatch is modeled by feeding the first replay's
// stores into the second replay's feature environment — exactly what a
// shared feature store does between two monitors on one hook dispatch.

// DefaultWitnessBudget bounds the joint-assignment enumeration per
// finding.
const DefaultWitnessBudget = 2048

// witnesser performs bounded counterexample synthesis for one Analyze
// run. A nil witnesser (witnesses not requested) is valid and inert.
type witnesser struct {
	features map[string]*spec.FeatureDecl
	budget   int
}

func newWitnesser(features map[string]*spec.FeatureDecl, budget int) *witnesser {
	if budget <= 0 {
		budget = DefaultWitnessBudget
	}
	return &witnesser{features: features, budget: budget}
}

// jointSpace builds the search space for a monitor pair: the union of
// the feature keys either program LOADs, with candidate values drawn
// from the declared ranges where they exist.
func (w *witnesser) jointSpace(a, b *monFacts) ([]string, map[string][]float64) {
	set := map[string]bool{}
	for _, k := range vm.LoadedKeys(a.c.Program) {
		set[k] = true
	}
	for _, k := range vm.LoadedKeys(b.c.Program) {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cands := map[string][]float64{}
	for _, k := range keys {
		if fd, ok := w.features[k]; ok {
			cands[k] = vm.Candidates(vm.RangeInterval(fd.Lo, fd.Hi), true)
		} else {
			cands[k] = vm.Candidates(vm.Interval{}, false)
		}
	}
	return keys, cands
}

// findJoint searches for one assignment on which both monitors'
// violation paths fire when each is replayed against it. Returns nil
// when the budget is exhausted first.
func (w *witnesser) findJoint(a, b *monFacts) map[string]float64 {
	keys, cands := w.jointSpace(a, b)
	var found map[string]float64
	vm.EnumAssignments(keys, cands, w.budget, func(assign map[string]float64) bool {
		if !vm.ReplayProgram(a.c.Program, assign, 0, 0).Violated {
			return false
		}
		if !vm.ReplayProgram(b.c.Program, assign, 0, 0).Violated {
			return false
		}
		found = vm.CopyAssign(assign)
		return true
	})
	return found
}

// coFire annotates a GI002/GI003-style finding: CONFIRMED when a joint
// input fires both monitors on one dispatch, PLAUSIBLE otherwise.
func (w *witnesser) coFire(d *Diagnostic, a, b *monFacts) {
	if w == nil {
		return
	}
	assign := w.findJoint(a, b)
	if assign == nil {
		d.Status = vm.WitnessPlausible
		return
	}
	d.Status = vm.WitnessConfirmed
	d.Witness = &vm.Witness{Inputs: assign, Steps: []string{
		fmt.Sprintf("replayed %s: violation path fires", a.c.Name),
		fmt.Sprintf("replayed %s: violation path fires", b.c.Name),
		"one hook dispatch runs both conflicting actions",
	}}
}

// saveConflict annotates a GI001 finding: CONFIRMED when a joint input
// fires both monitors AND replaying the dispatch in both orders leaves
// different final values in the contested key — the order-dependence
// the diagnostic claims, demonstrated end to end. PLAUSIBLE when no
// joint input co-fires the pair within bounds, or when (despite
// disjoint certified ranges) the sequential replays converge.
func (w *witnesser) saveConflict(d *Diagnostic, a, b *monFacts, key string) {
	if w == nil {
		return
	}
	assign := w.findJoint(a, b)
	if assign == nil {
		d.Status = vm.WitnessPlausible
		return
	}
	fAB, okAB := runSequential(a, b, assign, key)
	fBA, okBA := runSequential(b, a, assign, key)
	if !okAB || !okBA || fAB == fBA {
		d.Status = vm.WitnessPlausible
		return
	}
	d.Status = vm.WitnessConfirmed
	d.Witness = &vm.Witness{Inputs: assign, Steps: []string{
		fmt.Sprintf("dispatch %s then %s: final %s = %g", a.c.Name, b.c.Name, key, fAB),
		fmt.Sprintf("dispatch %s then %s: final %s = %g", b.c.Name, a.c.Name, key, fBA),
		"the surviving value depends on dispatch order",
	}}
}

// runSequential models one hook dispatch ordering: replay first, apply
// its stores to the shared feature environment, replay second, and
// return the contested key's final value (second's last write wins,
// else first's).
func runSequential(first, second *monFacts, assign map[string]float64, key string) (float64, bool) {
	env := vm.CopyAssign(assign)
	r1 := vm.ReplayProgram(first.c.Program, env, 0, 0)
	for _, s := range r1.Stores {
		if s.Key != "" {
			env[s.Key] = s.Val
		}
	}
	r2 := vm.ReplayProgram(second.c.Program, env, 0, 0)
	if v, ok := r2.FinalStore(key); ok {
		return v, true
	}
	if v, ok := r1.FinalStore(key); ok {
		return v, true
	}
	return 0, false
}
