package interfere

import (
	"strings"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
)

// deployment compiles src and wraps it as a single-file deployment,
// carrying the file's feature declarations.
func deployment(t *testing.T, src string, budget int) *Deployment {
	t.Helper()
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatal(err)
	}
	cs, err := compile.File(f)
	if err != nil {
		t.Fatal(err)
	}
	return &Deployment{Monitors: cs, Features: f.Features, HookBudget: budget}
}

func codes(r *Report) map[string]int {
	out := map[string]int{}
	for _, d := range r.Diagnostics {
		out[d.Code]++
	}
	return out
}

func find(t *testing.T, r *Report, code string) Diagnostic {
	t.Helper()
	for _, d := range r.Diagnostics {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in %v", code, r.Diagnostics)
	return Diagnostic{}
}

func TestSaveConflictOnSharedHook(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail ml-off {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}
guardrail ml-on {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { SAVE(ml_enabled, 1) }
}`, 0))
	d := find(t, r, CodeSaveConflict)
	if d.Severity != Warn || d.Site != "io_submit" {
		t.Errorf("GI001 = %+v, want warning on io_submit", d)
	}
	if !d.Implicates("ml-off") || !d.Implicates("ml-on") {
		t.Errorf("GI001 names %q + %v, want both guardrails", d.Guardrail, d.Others)
	}
	if r.Clean() {
		t.Error("conflicting deployment reported clean")
	}
}

func TestNoConflictOnDisjointHooks(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail ml-off {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { SAVE(ml_enabled, 0) }
}
guardrail ml-on {
    trigger: { FUNCTION(page_alloc) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { SAVE(ml_enabled, 1) }
}`, 0))
	if c := codes(r); c[CodeSaveConflict] != 0 {
		t.Errorf("monitors on different hooks flagged as conflicting: %v", r.Diagnostics)
	}
}

// Contradictory SAVEs must also be caught on coinciding timers — and
// not on timers whose arithmetic progressions provably never align.
func TestTimerCoincidence(t *testing.T) {
	coinciding := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(0, 2) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { TIMER(0, 3) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	d := find(t, coinciding, CodeSaveConflict)
	if d.Site != "TIMER" {
		t.Errorf("timer conflict site = %q, want TIMER", d.Site)
	}

	disjoint := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(0, 2) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { TIMER(1, 2) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	if c := codes(disjoint); c[CodeSaveConflict] != 0 {
		t.Errorf("never-coinciding timers flagged: %v", disjoint.Diagnostics)
	}

	windowed := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(0, 1, 5) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { TIMER(5, 1) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	if c := codes(windowed); c[CodeSaveConflict] != 0 {
		t.Errorf("non-overlapping timer windows flagged: %v", windowed.Diagnostics)
	}

	mixed := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	if c := codes(mixed); c[CodeSaveConflict] != 0 {
		t.Errorf("timer vs hook site flagged as co-firing: %v", mixed.Diagnostics)
	}
}

func TestReplaceConflicts(t *testing.T) {
	pingpong := Analyze(deployment(t, `
guardrail failover {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(err_rate) <= 0.01 },
    action: { REPLACE(linnos, heuristic) }
}
guardrail failback {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(lat_p99) <= 5e6 },
    action: { REPLACE(heuristic, linnos) }
}`, 0))
	d := find(t, pingpong, CodeReplaceConflict)
	if !strings.Contains(d.Message, "ping-pong") {
		t.Errorf("GI002 message = %q, want ping-pong", d.Message)
	}

	divergent := Analyze(deployment(t, `
guardrail to-lru {
    trigger: { FUNCTION(cache_miss) },
    rule: { LOAD(hit_rate) >= 0.5 },
    action: { REPLACE(cache_ml, lru) }
}
guardrail to-fifo {
    trigger: { FUNCTION(cache_miss) },
    rule: { LOAD(oob_rate) <= 0.01 },
    action: { REPLACE(cache_ml, fifo) }
}`, 0))
	d = find(t, divergent, CodeReplaceConflict)
	if !strings.Contains(d.Message, "divergent") {
		t.Errorf("GI002 message = %q, want divergent replacement", d.Message)
	}
}

func TestDuplicateActions(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail demote-a {
    trigger: { FUNCTION(sched_tick) },
    rule: { LOAD(jain) >= 0.6 },
    action: { DEPRIORITIZE(batch) RETRAIN(sched_ml) }
}
guardrail demote-b {
    trigger: { FUNCTION(sched_tick) },
    rule: { LOAD(wait_p99) <= 1e9 },
    action: { DEPRIORITIZE(batch) RETRAIN(sched_ml) }
}`, 0))
	c := codes(r)
	if c[CodeDuplicateAction] != 2 {
		t.Fatalf("GI003 count = %d, want 2 (DEPRIORITIZE warn + RETRAIN info): %v", c[CodeDuplicateAction], r.Diagnostics)
	}
	var sev []Severity
	for _, d := range r.Diagnostics {
		if d.Code == CodeDuplicateAction {
			sev = append(sev, d.Severity)
		}
	}
	if sev[0] != Warn || sev[1] != Info {
		t.Errorf("GI003 severities = %v, want [warning info] (demotion compounds, retraining only burns budget)", sev)
	}
}

func TestFeedbackCycleThreeMonitors(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(ka) <= 1 },
    action: { SAVE(kb, 2) }
}
guardrail b {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(kb) <= 1 },
    action: { SAVE(kc, 2) }
}
guardrail c {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(kc) <= 1 },
    action: { SAVE(ka, 2) }
}`, 0))
	d := find(t, r, CodeFeedbackCycle)
	for _, name := range []string{"a", "b", "c"} {
		if !d.Implicates(name) {
			t.Errorf("cycle misses %q: %+v", name, d)
		}
	}
	if c := codes(r); c[CodeFeedbackCycle] != 1 {
		t.Errorf("GI004 reported %d times, want once per SCC", c[CodeFeedbackCycle])
	}
}

func TestNoCycleWithoutBackEdge(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail producer {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(sig) <= 1 },
    action: { SAVE(derived, 2) }
}
guardrail consumer {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(derived) <= 1 },
    action: { REPORT(LOAD(derived)) }
}`, 0))
	if c := codes(r); c[CodeFeedbackCycle] != 0 {
		t.Errorf("linear SAVE→LOAD chain flagged as a cycle: %v", r.Diagnostics)
	}
}

func TestHookBudget(t *testing.T) {
	src := `
guardrail one {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(a) <= 1 },
    action: { REPORT(LOAD(a)) }
}
guardrail two {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(b) <= 1 },
    action: { REPORT(LOAD(b)) }
}`
	over := Analyze(deployment(t, src, 4))
	d := find(t, over, CodeHookBudget)
	if d.Site != "io_submit" {
		t.Errorf("GI005 site = %q", d.Site)
	}
	if len(over.Sites) != 1 || over.Sites[0].Total <= 4 || len(over.Sites[0].Monitors) != 2 {
		t.Errorf("site table wrong: %+v", over.Sites)
	}

	fine := Analyze(deployment(t, src, 0))
	if c := codes(fine); c[CodeHookBudget] != 0 {
		t.Errorf("unlimited budget flagged: %v", fine.Diagnostics)
	}
	if len(fine.Sites) != 1 {
		t.Errorf("site table must be reported regardless of budget: %+v", fine.Sites)
	}

	dep := deployment(t, src, 4)
	dep.HookBudgets = map[string]int{"io_submit": 1000}
	if r := Analyze(dep); !r.Clean() {
		t.Errorf("per-site override ignored: %v", r.Diagnostics)
	}
}

// TestHookBudgetScalesWithShards: the declared budget is one event
// loop's capacity; a deployment that overflows a single loop can be
// within budget on a shard pool, where each firing lands on one of N
// loops. GI005 must check Total against budget × shards and say so.
func TestHookBudgetScalesWithShards(t *testing.T) {
	src := `
guardrail one {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(a) <= 1 },
    action: { REPORT(LOAD(a)) }
}
guardrail two {
    trigger: { FUNCTION(io_submit) },
    rule: { LOAD(b) <= 1 },
    action: { REPORT(LOAD(b)) }
}`
	single := deployment(t, src, 4)
	total := Analyze(single).Sites[0].Total
	if total <= 4 {
		t.Fatalf("workload too cheap to overflow the single-loop budget: %d", total)
	}

	// Enough shards to absorb the load: clean, with the scaled budget
	// visible in the site table.
	wide := deployment(t, src, 4)
	wide.Shards = (total + 3) / 4
	r := Analyze(wide)
	if c := codes(r); c[CodeHookBudget] != 0 {
		t.Errorf("load within scaled budget still flagged: %v", r.Diagnostics)
	}
	s := r.Sites[0]
	if s.Shards != wide.Shards || s.EffectiveBudget != 4*wide.Shards {
		t.Errorf("site table missing shard scaling: %+v", s)
	}

	// Still over even at 2 shards: flagged, and the message explains
	// the scaled arithmetic.
	narrow := deployment(t, src, 1)
	narrow.Shards = 2
	d := find(t, Analyze(narrow), CodeHookBudget)
	if !strings.Contains(d.Message, "1 per loop × 2 shards") {
		t.Errorf("GI005 message does not explain shard scaling: %q", d.Message)
	}

	// Shards 0 and 1 are the single loop: identical to the baseline.
	zero := deployment(t, src, 4)
	zero.Shards = 1
	if r := Analyze(zero); codes(r)[CodeHookBudget] != 1 || r.Sites[0].Shards != 0 || r.Sites[0].EffectiveBudget != 0 {
		t.Errorf("shards=1 diverges from single-loop analysis: %+v %v", r.Sites, r.Diagnostics)
	}
}

func TestDeadGuardrailFromDeclaredRange(t *testing.T) {
	r := Analyze(deployment(t, `
feature util range(0, 1)

guardrail dead {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(util) <= 2 },
    action: { REPORT(LOAD(util)) }
}`, 0))
	d := find(t, r, CodeDeadGuardrail)
	if !strings.Contains(d.Message, "util") {
		t.Errorf("GI006 message does not name the constraining key: %q", d.Message)
	}
}

func TestDeadGuardrailFromProducerCertificate(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail producer {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(sig) <= 1 },
    action: { SAVE(level, 5) }
}
guardrail dead-consumer {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(level) <= 10 },
    action: { REPORT(LOAD(level)) }
}`, 0))
	d := find(t, r, CodeDeadGuardrail)
	if d.Guardrail != "dead-consumer" {
		t.Errorf("GI006 anchored to %q, want dead-consumer", d.Guardrail)
	}
	// The producer itself is live: open-world inputs can violate it.
	if d.Implicates("producer") {
		t.Errorf("producer wrongly implicated: %+v", d)
	}
}

// A monitor's own SAVE must not certify its own LOADs — self-feedback
// is vet's GV006; treating the self-write as a producer certificate
// would mark any self-stabilizing guardrail dead.
func TestOwnSavesDoNotRefineSelf(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail self-stabilizing {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(knob) <= 10 },
    action: { SAVE(knob, 0) }
}`, 0))
	if c := codes(r); c[CodeDeadGuardrail] != 0 {
		t.Errorf("self-stabilizing guardrail marked dead: %v", r.Diagnostics)
	}
}

func TestDuplicateNames(t *testing.T) {
	// Duplicate names across deployment entries cannot come from one
	// checked file (spec.Check rejects them), so build the deployment
	// from two compilations of the same source.
	d1 := deployment(t, testSpecOne, 0)
	d2 := deployment(t, testSpecOne, 0)
	dep := &Deployment{Monitors: append(d1.Monitors, d2.Monitors...)}
	r := Analyze(dep)
	d := find(t, r, CodeDuplicateName)
	if d.Severity != Warn || !strings.Contains(d.Message, "appears twice") {
		t.Errorf("GI007 = %+v", d)
	}
}

const testSpecOne = `
guardrail solo {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(x) <= 1 },
    action: { REPORT(LOAD(x)) }
}`

func TestRefinedVerificationFailure(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail zeroer {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(sig) <= 1 },
    action: { SAVE(divisor, 0) }
}
guardrail divider {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(x) / LOAD(divisor) <= 1 },
    action: { REPORT(LOAD(x)) }
}`, 0))
	d := find(t, r, CodeRefinedVerify)
	if d.Guardrail != "divider" {
		t.Errorf("GI008 anchored to %q, want divider", d.Guardrail)
	}
	if !strings.Contains(d.Message, "divisor") {
		t.Errorf("GI008 message does not name the refined key: %q", d.Message)
	}
}

func TestCleanDeploymentSummary(t *testing.T) {
	r := Analyze(deployment(t, `
feature oob range(0, 1)

guardrail p2-bounds {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(oob) <= 0.01 },
    action: { REPLACE(cache_ml, lru) }
}
guardrail p3-regret {
    trigger: { TIMER(0, 2e9) },
    rule: { LOAD(regret) <= 5 },
    action: { RETRAIN(sched_ml) }
}`, 100))
	if !r.Clean() {
		t.Fatalf("clean deployment flagged: %v", r.Diagnostics)
	}
	if r.Summary() != "no findings" {
		t.Errorf("Summary() = %q", r.Summary())
	}
}

// Dead monitors contribute no cycle edges: their SAVEs cannot execute,
// so a "cycle" through a dead monitor is not a runtime feedback loop.
func TestDeadMonitorBreaksCycle(t *testing.T) {
	r := Analyze(deployment(t, `
feature gate range(0, 1)

guardrail dead {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(gate) <= 5 },
    action: { SAVE(kb, 2) }
}
guardrail live {
    trigger: { TIMER(0, 1e9) },
    rule: { LOAD(kb) <= 1 },
    action: { SAVE(gate, 0.5) }
}`, 0))
	c := codes(r)
	if c[CodeDeadGuardrail] != 1 {
		t.Fatalf("want one GI006: %v", r.Diagnostics)
	}
	if c[CodeFeedbackCycle] != 0 {
		t.Errorf("cycle through a dead monitor flagged: %v", r.Diagnostics)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Code: CodeSaveConflict, Severity: Warn,
		Pos: spec.Pos{Line: 3, Col: 7}, Guardrail: "a", Others: []string{"b"},
		Site: "io_submit", Message: "both SAVE k",
	}
	s := d.String()
	for _, want := range []string{"3:7", "warning", "[GI001]", "guardrail a (with b)", "both SAVE k"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
