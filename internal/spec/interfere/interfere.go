// Package interfere is the whole-deployment static analyzer: where the
// VM verifier (internal/vm) proves one monitor program safe in
// isolation and the spec linter (internal/spec/vet) checks one file's
// guardrails for authoring bugs, this package reasons about a
// *deployment* — a set of compiled guardrails that will share kernel
// hook sites and feature-store keys — and reports interference that no
// per-program check can see:
//
//   - action conflicts: two monitors that can fire on the same hook
//     whose certified value intervals (vm.Analyze store facts) admit
//     contradictory simultaneous actions — SAVEs of provably-disjoint
//     values to one key, REPLACE ping-pong or divergent replacement of
//     one policy, duplicate demotion of one task group;
//   - feedback cycles: SAVE→LOAD dataflow cycles across monitors
//     (monitor A's corrective SAVE feeds a key monitor B's rules read,
//     and B's SAVE feeds A), found by SCC over the inter-monitor graph;
//   - aggregate hook budgets: the worst-case cost of one hook firing is
//     the *sum* of the attached monitors' certified MaxSteps — each may
//     fit a per-program budget while the site blows its envelope;
//   - dead guardrails: monitors whose rules are unsatisfiable — so their
//     actions can never fire — given the declared feature ranges and the
//     certified SAVE ranges of every in-deployment producer of their
//     inputs.
//
// The analysis is closed-world: declared feature ranges and producer
// SAVE certificates are trusted as the only writers of those keys.
// Findings are Diagnostics with stable positioned codes (GI001…), the
// deployment analogue of vet's GV codes. The kernel's admission test
// (kernel.AdmitDeployment) enforces the budget half at load time;
// cmd/grailcheck and grailc -interfere surface the rest offline.
package interfere

import (
	"fmt"
	"sort"
	"strings"

	"guardrails/internal/compile"
	"guardrails/internal/spec"
	"guardrails/internal/vm"
)

// Severity grades a diagnostic, mirroring vet's convention: a
// deployment "checks clean" when it produces zero Warn diagnostics.
type Severity int

// Severities.
const (
	// Info flags a property of the deployment worth a look.
	Info Severity = iota
	// Warn flags interference that is very likely a deployment bug.
	Warn
)

// String names the severity.
func (s Severity) String() string {
	if s == Warn {
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity name, keeping report artifacts
// readable without this package's constants.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// Diagnostic codes. GI codes are stable: tooling and CI gates match on
// them.
const (
	// CodeSaveConflict: two co-firing monitors SAVE provably-disjoint
	// value ranges to the same feature key.
	CodeSaveConflict = "GI001"
	// CodeReplaceConflict: co-firing REPLACE actions that ping-pong a
	// policy pair or replace one policy with different targets.
	CodeReplaceConflict = "GI002"
	// CodeDuplicateAction: co-firing monitors apply the same corrective
	// action to the same subject (duplicate DEPRIORITIZE / RETRAIN).
	CodeDuplicateAction = "GI003"
	// CodeFeedbackCycle: a SAVE→LOAD cycle across monitors.
	CodeFeedbackCycle = "GI004"
	// CodeHookBudget: a hook site's summed certified MaxSteps exceeds
	// its step budget.
	CodeHookBudget = "GI005"
	// CodeDeadGuardrail: a monitor's rules cannot be violated given the
	// deployment's certified input ranges.
	CodeDeadGuardrail = "GI006"
	// CodeDuplicateName: the deployment contains two guardrails with
	// the same name (the runtime would reject the second load).
	CodeDuplicateName = "GI007"
	// CodeRefinedVerify: a program that verifies open-world fails
	// verification under the deployment's certified input ranges (e.g.
	// a divisor a producer proves constant zero).
	CodeRefinedVerify = "GI008"
)

// Diagnostic is one deployment-level finding.
type Diagnostic struct {
	// Code is the stable diagnostic code (GI001…).
	Code string `json:"code"`
	// Severity grades the finding.
	Severity Severity `json:"severity"`
	// Pos is the source position of the primary offending construct.
	Pos spec.Pos `json:"pos"`
	// Guardrail names the primary guardrail the finding is anchored to.
	Guardrail string `json:"guardrail"`
	// Others names the other guardrails implicated (conflict partners,
	// cycle members, budget contributors).
	Others []string `json:"others,omitempty"`
	// Site is the shared hook site for hook-scoped findings ("TIMER"
	// for timer-coincidence findings).
	Site string `json:"site,omitempty"`
	// Message explains the finding.
	Message string `json:"message"`
	// Status, when witness synthesis ran (Deployment.Witness), grades
	// the finding CONFIRMED (a concrete joint input replayed through the
	// real VM reproduces the interference) or PLAUSIBLE (no such input
	// found within the search bounds; the sound static claim stands).
	// Empty when synthesis was not attempted for this code.
	Status vm.WitnessStatus `json:"witness_status,omitempty"`
	// Witness is the replayable counterexample backing a CONFIRMED
	// status.
	Witness *vm.Witness `json:"witness,omitempty"`
	// Trace is the multi-step abstract trace behind a temporal finding
	// (the model checker's GM codes): one line per step from the initial
	// deployment state to the violating state or cycle. Empty for
	// single-step GI findings.
	Trace []string `json:"trace,omitempty"`
}

// String renders "line:col: severity: [CODE] guardrail g: message",
// followed by the witness verdict when synthesis ran.
func (d Diagnostic) String() string {
	name := d.Guardrail
	if len(d.Others) > 0 {
		name += " (with " + strings.Join(d.Others, ", ") + ")"
	}
	s := fmt.Sprintf("%s: %s: [%s] guardrail %s: %s",
		d.Pos, d.Severity, d.Code, name, d.Message)
	switch d.Status {
	case vm.WitnessConfirmed:
		s += fmt.Sprintf(" [CONFIRMED: %s]", d.Witness)
	case vm.WitnessPlausible:
		s += " [PLAUSIBLE: no witness within search bounds]"
	}
	return s
}

// Implicates reports whether the diagnostic names the guardrail as
// primary or partner.
func (d Diagnostic) Implicates(name string) bool {
	if d.Guardrail == name {
		return true
	}
	for _, o := range d.Others {
		if o == name {
			return true
		}
	}
	return false
}

// Deployment is the analyzer's input: the compiled guardrails that will
// be loaded together, the declared feature ranges they operate under,
// and the per-hook-site step budgets to check aggregate load against.
type Deployment struct {
	// Monitors are the compiled guardrails of the deployment.
	Monitors []*compile.Compiled
	// Features are the declared feature ranges (merged across the
	// deployment's spec files; the first declaration of a key wins).
	Features []*spec.FeatureDecl
	// HookBudget is the default per-hook-site certified step budget
	// (the sum of attached monitors' worst-case steps); 0 = unlimited.
	HookBudget int
	// HookBudgets overrides the budget per site.
	HookBudgets map[string]int
	// Shards is the kernel pool width the deployment runs on (0 or 1 =
	// single loop). Budgets declare one event loop's per-firing step
	// capacity; on an N-shard pool each hook firing lands on exactly
	// one of N loops, so a site's effective budget is budget × N rather
	// than the single-loop figure.
	Shards int
	// Witness requests bounded counterexample synthesis for co-firing
	// findings (GI001–GI003): each is annotated CONFIRMED with a
	// replayable joint input, or downgraded to PLAUSIBLE when no input
	// within the search bounds co-fires the pair. See witness.go.
	Witness bool
	// WitnessBudget bounds the assignment enumeration per finding
	// (0 = DefaultWitnessBudget).
	WitnessBudget int
}

// budgetFor resolves the budget for one hook site (0 = unlimited).
func (d *Deployment) budgetFor(site string) int {
	if b, ok := d.HookBudgets[site]; ok {
		return b
	}
	return d.HookBudget
}

// MonitorLoad is one guardrail's contribution to a hook site's
// worst-case cost.
type MonitorLoad struct {
	Guardrail string `json:"guardrail"`
	MaxSteps  int    `json:"max_steps"`
}

// SiteLoad summarizes one hook site's aggregate worst-case load.
type SiteLoad struct {
	Site string `json:"site"`
	// Budget is the site's declared single-loop step budget (0 =
	// unlimited).
	Budget int `json:"budget,omitempty"`
	// Shards and EffectiveBudget are set when the deployment declares a
	// multi-shard pool: EffectiveBudget = Budget × Shards is what Total
	// is checked against.
	Shards          int `json:"shards,omitempty"`
	EffectiveBudget int `json:"effective_budget,omitempty"`
	// Total is the summed certified MaxSteps of the attached monitors —
	// the worst-case interpreter steps one hook firing can cost.
	Total    int           `json:"total_max_steps"`
	Monitors []MonitorLoad `json:"monitors"`
}

// Report is the analyzer's output: the findings plus the per-site load
// table (reported for every site, within budget or not, so the report
// doubles as the deployment's overhead inventory).
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Sites       []SiteLoad   `json:"sites,omitempty"`
}

// Warnings counts warn-severity diagnostics.
func (r *Report) Warnings() int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == Warn {
			n++
		}
	}
	return n
}

// Clean reports a deployment with no warn-severity findings.
func (r *Report) Clean() bool { return r.Warnings() == 0 }

// Summary renders a one-line count of findings by severity.
func (r *Report) Summary() string {
	warns := r.Warnings()
	infos := len(r.Diagnostics) - warns
	var parts []string
	if warns > 0 {
		s := "s"
		if warns == 1 {
			s = ""
		}
		parts = append(parts, fmt.Sprintf("%d warning%s", warns, s))
	}
	if infos > 0 {
		parts = append(parts, fmt.Sprintf("%d info", infos))
	}
	if len(parts) == 0 {
		return "no findings"
	}
	return strings.Join(parts, ", ")
}

// monFacts is the per-monitor certificate bundle the cross-monitor
// checks consume.
type monFacts struct {
	c      *compile.Compiled
	sites  []string // sorted unique FUNCTION sites
	timers []*spec.TimerTrigger

	loads map[string]bool // keys the program LOADs

	// saves maps SAVEd keys to their certified value ranges, from the
	// deployment-refined analysis when it succeeded (baseline
	// otherwise). Only reachable stores contribute.
	saves map[string]vm.Interval

	// canFire: some exit may return 0 under the deployment env — the
	// violation path (and thus every action) is live.
	canFire bool
	// rangedKeys lists the env keys the refined analysis constrained,
	// for diagnostics.
	rangedKeys []string
	// refinedErr is a verification failure under the deployment env.
	refinedErr error

	maxSteps int
}

// Analyze runs every deployment-level check and returns the report.
// The input is not mutated. Diagnostics are ordered by code, then
// primary guardrail, then message.
func Analyze(d *Deployment) *Report {
	r := &Report{}
	facts := make([]*monFacts, 0, len(d.Monitors))

	// GI007 duplicate names first: the runtime keys monitors by name,
	// so later same-name entries shadow rather than compose. Facts are
	// still computed for every entry so other findings stay visible.
	seen := map[string]int{}
	for i, c := range d.Monitors {
		if j, dup := seen[c.Name]; dup {
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code: CodeDuplicateName, Severity: Warn,
				Pos: c.Source.Pos, Guardrail: c.Name,
				Message: fmt.Sprintf("guardrail %q appears twice in the deployment (entries %d and %d): the runtime rejects duplicate loads",
					c.Name, j, i),
			})
		} else {
			seen[c.Name] = i
		}
	}

	// Pass 1: open-world facts — every monitor's baseline store
	// certificates, which become the producer ranges of pass 2.
	baseline := make([]*vm.Analysis, len(d.Monitors))
	for i, c := range d.Monitors {
		f := newMonFacts(c)
		a, err := vm.Analyze(c.Program, vm.NumBuiltinHelpers)
		if err == nil {
			baseline[i] = a
			f.maxSteps = a.MaxSteps
			f.fillSaves(a)
			f.canFire = a.CanViolate()
		} else {
			// A program that does not verify open-world (e.g. a decoded
			// image assembled by hand) gets conservative facts: it may
			// fire, and its cost falls back to Meta.
			f.canFire = true
			f.maxSteps = c.Program.Meta.MaxSteps
		}
		if m := c.Program.Meta.MaxSteps; m > 0 {
			f.maxSteps = m
		}
		facts = append(facts, f)
	}

	// Pass 2: refine each monitor under the deployment env (declared
	// feature ranges + the other monitors' certified SAVE ranges).
	features := map[string]*spec.FeatureDecl{}
	for _, fd := range d.Features {
		if _, dup := features[fd.Key]; !dup {
			features[fd.Key] = fd
		}
	}
	for i, f := range facts {
		if baseline[i] == nil {
			continue
		}
		env, ranged := deployEnv(f.c, i, facts, features)
		if len(ranged) == 0 {
			continue // open-world facts are already exact
		}
		a, err := vm.AnalyzeWith(f.c.Program, vm.NumBuiltinHelpers, env)
		if err != nil {
			f.refinedErr = err
			f.rangedKeys = ranged
			continue
		}
		f.rangedKeys = ranged
		f.canFire = a.CanViolate()
		f.saves = map[string]vm.Interval{}
		f.fillSaves(a)
	}

	for _, f := range facts {
		if f.refinedErr != nil {
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code: CodeRefinedVerify, Severity: Warn,
				Pos: f.c.Source.Pos, Guardrail: f.c.Name,
				Message: fmt.Sprintf("verification fails under the deployment's value ranges (%s): %v",
					strings.Join(f.rangedKeys, ", "), f.refinedErr),
			})
		} else if !f.canFire {
			ctx := "independent of deployment context"
			if len(f.rangedKeys) > 0 {
				ctx = "given the certified ranges of " + strings.Join(f.rangedKeys, ", ")
			}
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code: CodeDeadGuardrail, Severity: Warn,
				Pos: f.c.Source.Pos, Guardrail: f.c.Name,
				Message: fmt.Sprintf("dead guardrail: the rules cannot be violated %s, so its actions never fire", ctx),
			})
		}
	}

	var wit *witnesser
	if d.Witness {
		wit = newWitnesser(features, d.WitnessBudget)
	}
	checkConflicts(r, facts, wit)
	checkCycles(r, facts)
	checkBudgets(r, d, facts)

	sort.SliceStable(r.Diagnostics, func(i, j int) bool {
		a, b := r.Diagnostics[i], r.Diagnostics[j]
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Guardrail != b.Guardrail {
			return a.Guardrail < b.Guardrail
		}
		return a.Message < b.Message
	})
	return r
}

func newMonFacts(c *compile.Compiled) *monFacts {
	f := &monFacts{
		c:     c,
		loads: map[string]bool{},
		saves: map[string]vm.Interval{},
	}
	siteSet := map[string]bool{}
	for _, t := range c.Triggers {
		switch tt := t.(type) {
		case *spec.FuncTrigger:
			siteSet[tt.Site] = true
		case *spec.TimerTrigger:
			f.timers = append(f.timers, tt)
		}
	}
	for s := range siteSet {
		f.sites = append(f.sites, s)
	}
	sort.Strings(f.sites)
	for _, in := range c.Program.Code {
		if in.Op == vm.OpLoad {
			f.loads[c.Program.Symbols[in.Cell]] = true
		}
	}
	return f
}

// fillSaves joins a's reachable store certificates into f.saves.
func (f *monFacts) fillSaves(a *vm.Analysis) {
	for _, s := range a.Stores {
		key := f.c.Program.Symbols[s.Cell]
		if prev, ok := f.saves[key]; ok {
			f.saves[key] = prev.Join(s.Val)
		} else {
			f.saves[key] = s.Val
		}
	}
}

// savePos locates the SAVE action writing key, for diagnostics.
func (f *monFacts) savePos(key string) spec.Pos {
	for _, a := range f.c.Actions {
		if sa, ok := a.(*spec.SaveAction); ok && sa.Key == key {
			return sa.Pos
		}
	}
	return f.c.Source.Pos
}

// deployEnv builds monitor i's input environment: per feature-store
// cell, the declared range when one exists, else the join of the other
// monitors' certified SAVE ranges of that key. Returns the env plus the
// sorted list of keys it constrains (empty = nothing to refine). A
// monitor's own SAVEs never constrain its own LOADs — self-feedback is
// vet's GV006, not a certificate.
func deployEnv(c *compile.Compiled, self int, facts []*monFacts, features map[string]*spec.FeatureDecl) (vm.CellEnv, []string) {
	byCell := map[int32]vm.Interval{}
	var ranged []string
	for cell, key := range c.Program.Symbols {
		if fd, ok := features[key]; ok {
			byCell[int32(cell)] = vm.RangeInterval(fd.Lo, fd.Hi)
			ranged = append(ranged, key)
			continue
		}
		var acc vm.Interval
		found := false
		for j, p := range facts {
			if j == self {
				continue
			}
			if iv, ok := p.saves[key]; ok {
				if !found {
					acc, found = iv, true
				} else {
					acc = acc.Join(iv)
				}
			}
		}
		if found {
			byCell[int32(cell)] = acc
			ranged = append(ranged, key)
		}
	}
	sort.Strings(ranged)
	env := func(cell int32) (vm.Interval, bool) {
		iv, ok := byCell[cell]
		return iv, ok
	}
	return env, ranged
}

// --- co-firing -------------------------------------------------------

// sharedGroups returns the hook groups on which two monitors can fire
// at the same instant: every FUNCTION site both attach to, plus the
// "TIMER" pseudo-group when both have timers that can tick
// coincidentally. Monitors on unrelated triggers (or a timer vs a hook
// site) do not co-fire — the conflict checks are per-hook by design.
func sharedGroups(a, b *monFacts) []string {
	var groups []string
	i, j := 0, 0
	for i < len(a.sites) && j < len(b.sites) {
		switch {
		case a.sites[i] == b.sites[j]:
			groups = append(groups, a.sites[i])
			i++
			j++
		case a.sites[i] < b.sites[j]:
			i++
		default:
			j++
		}
	}
	if timersCanCoincide(a.timers, b.timers) {
		groups = append(groups, "TIMER")
	}
	return groups
}

// timersCanCoincide reports whether any pair of timer triggers can tick
// at the same simulated instant. Two arithmetic progressions
// start+k·interval coincide iff their start offset is divisible by
// gcd(i1, i2); non-integral parameters are handled conservatively
// (assume coincidence). Stop windows that provably do not overlap rule
// coincidence out.
func timersCanCoincide(as, bs []*spec.TimerTrigger) bool {
	for _, a := range as {
		for _, b := range bs {
			if timerPairCoincides(a, b) {
				return true
			}
		}
	}
	return false
}

func timerPairCoincides(a, b *spec.TimerTrigger) bool {
	// Disjoint active windows cannot coincide. A window is
	// [start, stop) with stop 0 = forever.
	if a.Stop > 0 && a.Stop <= b.Start {
		return false
	}
	if b.Stop > 0 && b.Stop <= a.Start {
		return false
	}
	// Exact conversion bounds at 2^53 (not 2^62 as this check once
	// allowed): past the float64 integer limit, s1-s2 rounds, and a
	// divisibility test on the rounded difference can wrongly rule out
	// real coincidences. When exact arithmetic is impossible, assume
	// coincidence (schedule.go).
	s1, ok1 := ExactInt64(a.Start)
	i1, ok2 := ExactInt64(a.Interval)
	s2, ok3 := ExactInt64(b.Start)
	i2, ok4 := ExactInt64(b.Interval)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return true // conservative: cannot reason exactly
	}
	g := Gcd64(i1, i2)
	if g == 0 {
		return s1 == s2
	}
	// |s1|,|s2| ≤ 2^53, so the difference cannot overflow int64.
	return (s1-s2)%g == 0
}

// --- action conflicts (GI001–GI003) ----------------------------------

func checkConflicts(r *Report, facts []*monFacts, wit *witnesser) {
	for i := 0; i < len(facts); i++ {
		for j := i + 1; j < len(facts); j++ {
			a, b := facts[i], facts[j]
			if !a.canFire || !b.canFire {
				continue
			}
			groups := sharedGroups(a, b)
			if len(groups) == 0 {
				continue
			}
			// Conflicts are per-pair properties; report them once
			// against the first shared group.
			site := groups[0]
			checkSaveConflict(r, a, b, site, wit)
			checkReplaceConflict(r, a, b, site, wit)
			checkDuplicateActions(r, a, b, site, wit)
		}
	}
}

// checkSaveConflict reports GI001: both monitors SAVE the same key and
// their certified value ranges share no value — when both fire on one
// hook dispatch, the key's final value is a dispatch-order accident and
// one monitor's corrective write is always lost.
func checkSaveConflict(r *Report, a, b *monFacts, site string, wit *witnesser) {
	keys := make([]string, 0, len(a.saves))
	for k := range a.saves {
		if _, ok := b.saves[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		va, vb := a.saves[k], b.saves[k]
		if !va.DisjointFrom(vb) {
			continue
		}
		diag := Diagnostic{
			Code: CodeSaveConflict, Severity: Warn,
			Pos: a.savePos(k), Guardrail: a.c.Name, Others: []string{b.c.Name},
			Site: site,
			Message: fmt.Sprintf("both SAVE %q on hook %s with contradictory certified values (%s vs %s): the surviving value depends on dispatch order",
				k, site, va, vb),
		}
		wit.saveConflict(&diag, a, b, k)
		r.Diagnostics = append(r.Diagnostics, diag)
	}
}

// checkReplaceConflict reports GI002: REPLACE ping-pong (A installs
// what B removes and vice versa) or divergent replacement (both replace
// one policy with different targets).
func checkReplaceConflict(r *Report, a, b *monFacts, site string, wit *witnesser) {
	for _, actA := range a.c.Actions {
		ra, ok := actA.(*spec.ReplaceAction)
		if !ok {
			continue
		}
		for _, actB := range b.c.Actions {
			rb, ok := actB.(*spec.ReplaceAction)
			if !ok {
				continue
			}
			var diag Diagnostic
			switch {
			case ra.Old == rb.New && ra.New == rb.Old:
				diag = Diagnostic{
					Code: CodeReplaceConflict, Severity: Warn,
					Pos: ra.Pos, Guardrail: a.c.Name, Others: []string{b.c.Name},
					Site: site,
					Message: fmt.Sprintf("REPLACE ping-pong on hook %s: %s vs %s — each undoes the other's failover",
						site, ra, rb),
				}
			case ra.Old == rb.Old && ra.New != rb.New:
				diag = Diagnostic{
					Code: CodeReplaceConflict, Severity: Warn,
					Pos: ra.Pos, Guardrail: a.c.Name, Others: []string{b.c.Name},
					Site: site,
					Message: fmt.Sprintf("divergent replacement of policy %q on hook %s: %s vs %s — the installed policy depends on dispatch order",
						ra.Old, site, ra, rb),
				}
			default:
				continue
			}
			wit.coFire(&diag, a, b)
			r.Diagnostics = append(r.Diagnostics, diag)
		}
	}
}

// checkDuplicateActions reports GI003: both monitors demote the same
// task group (double demotion compounds: the second DEPRIORITIZE sees
// the already-demoted priority) or retrain the same model (burning the
// retrainer's rate budget twice per incident).
func checkDuplicateActions(r *Report, a, b *monFacts, site string, wit *witnesser) {
	for _, actA := range a.c.Actions {
		switch na := actA.(type) {
		case *spec.DeprioritizeAction:
			for _, actB := range b.c.Actions {
				if nb, ok := actB.(*spec.DeprioritizeAction); ok && na.Target == nb.Target {
					diag := Diagnostic{
						Code: CodeDuplicateAction, Severity: Warn,
						Pos: na.Pos, Guardrail: a.c.Name, Others: []string{b.c.Name},
						Site: site,
						Message: fmt.Sprintf("both DEPRIORITIZE task group %q on hook %s: one hook firing demotes it twice",
							na.Target, site),
					}
					wit.coFire(&diag, a, b)
					r.Diagnostics = append(r.Diagnostics, diag)
				}
			}
		case *spec.RetrainAction:
			for _, actB := range b.c.Actions {
				if nb, ok := actB.(*spec.RetrainAction); ok && na.Model == nb.Model {
					diag := Diagnostic{
						Code: CodeDuplicateAction, Severity: Info,
						Pos: na.Pos, Guardrail: a.c.Name, Others: []string{b.c.Name},
						Site: site,
						Message: fmt.Sprintf("both RETRAIN model %q on hook %s: one incident spends the retraining budget twice",
							na.Model, site),
					}
					wit.coFire(&diag, a, b)
					r.Diagnostics = append(r.Diagnostics, diag)
				}
			}
		}
	}
}

// --- feedback cycles (GI004) -----------------------------------------

// checkCycles finds SAVE→LOAD cycles across monitors: edge A→B when a
// reachable SAVE of A writes a key B's rules LOAD. Strongly connected
// components of two or more monitors are reported once each (a
// monitor's own SAVE feeding its own rules is vet's GV006). Dead
// monitors contribute no edges — their SAVEs cannot execute.
func checkCycles(r *Report, facts []*monFacts) {
	n := len(facts)
	adj := make([][]int, n)
	edgeKeys := map[[2]int][]string{}
	for i, a := range facts {
		if !a.canFire {
			continue
		}
		keys := make([]string, 0, len(a.saves))
		for k := range a.saves {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for j, b := range facts {
			if i == j {
				continue
			}
			for _, k := range keys {
				if b.loads[k] {
					if len(edgeKeys[[2]int{i, j}]) == 0 {
						adj[i] = append(adj[i], j)
					}
					edgeKeys[[2]int{i, j}] = append(edgeKeys[[2]int{i, j}], k)
				}
			}
		}
	}

	for _, scc := range tarjanSCC(adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(a, b int) bool { return facts[scc[a]].c.Name < facts[scc[b]].c.Name })
		names := make([]string, len(scc))
		inSCC := map[int]bool{}
		for k, idx := range scc {
			names[k] = facts[idx].c.Name
			inSCC[idx] = true
		}
		var edges []string
		for _, i := range scc {
			for _, j := range adj[i] {
				if inSCC[j] {
					edges = append(edges, fmt.Sprintf("%s —SAVE %s→ %s",
						facts[i].c.Name, strings.Join(edgeKeys[[2]int{i, j}], ","), facts[j].c.Name))
				}
			}
		}
		sort.Strings(edges)
		r.Diagnostics = append(r.Diagnostics, Diagnostic{
			Code: CodeFeedbackCycle, Severity: Warn,
			Pos: facts[scc[0]].c.Source.Pos, Guardrail: names[0], Others: names[1:],
			Message: fmt.Sprintf("feedback cycle: each monitor's corrective SAVE feeds a key another's rules read (%s) — violations can re-trigger each other indefinitely",
				strings.Join(edges, "; ")),
		})
	}
}

// tarjanSCC returns the strongly connected components of adj,
// iteratively (no recursion; deployments can be large).
func tarjanSCC(adj [][]int) [][]int {
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack, sccs = []int{}, [][]int{}
	next := 0

	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		call := []frame{{start, 0}}
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.ei == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					call = append(call, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}

// --- aggregate budgets (GI005) ---------------------------------------

// checkBudgets sums certified MaxSteps per FUNCTION site, fills the
// report's site table, and flags sites over budget. Every attached
// monitor counts — shadow or not, its program still runs on the hook.
func checkBudgets(r *Report, d *Deployment, facts []*monFacts) {
	bySite := map[string][]MonitorLoad{}
	firstPos := map[string]spec.Pos{}
	firstName := map[string]string{}
	for _, f := range facts {
		for _, site := range f.sites {
			bySite[site] = append(bySite[site], MonitorLoad{Guardrail: f.c.Name, MaxSteps: f.maxSteps})
			if _, ok := firstPos[site]; !ok {
				firstPos[site] = f.c.Source.Pos
				firstName[site] = f.c.Name
			}
		}
	}
	sites := make([]string, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	shards := d.Shards
	if shards < 1 {
		shards = 1
	}
	for _, site := range sites {
		loads := bySite[site]
		total := 0
		for _, l := range loads {
			total += l.MaxSteps
		}
		budget := d.budgetFor(site)
		effective := budget * shards
		sl := SiteLoad{Site: site, Budget: budget, Total: total, Monitors: loads}
		if shards > 1 {
			sl.Shards, sl.EffectiveBudget = shards, effective
		}
		r.Sites = append(r.Sites, sl)
		if budget > 0 && total > effective {
			parts := make([]string, len(loads))
			others := make([]string, 0, len(loads)-1)
			for i, l := range loads {
				parts[i] = fmt.Sprintf("%s=%d", l.Guardrail, l.MaxSteps)
				if l.Guardrail != firstName[site] {
					others = append(others, l.Guardrail)
				}
			}
			msg := fmt.Sprintf("hook %s worst-case cost %d steps exceeds its budget of %d (%s): one firing may run all attached monitors",
				site, total, budget, strings.Join(parts, " + "))
			if shards > 1 {
				msg = fmt.Sprintf("hook %s worst-case cost %d steps exceeds its effective budget of %d (%d per loop × %d shards; %s): one firing may run all attached monitors",
					site, total, effective, budget, shards, strings.Join(parts, " + "))
			}
			r.Diagnostics = append(r.Diagnostics, Diagnostic{
				Code: CodeHookBudget, Severity: Warn,
				Pos: firstPos[site], Guardrail: firstName[site], Others: others,
				Site: site, Message: msg,
			})
		}
	}
}
