package interfere

import (
	"testing"

	"guardrails/internal/spec"
)

func TestExactInt64Boundary(t *testing.T) {
	cases := []struct {
		v    float64
		want int64
		ok   bool
	}{
		{0, 0, true},
		{-3, -3, true},
		{1e9, 1000000000, true},
		{1 << 53, 1 << 53, true},
		{-(1 << 53), -(1 << 53), true},
		{float64(1<<53) * 2, 0, false}, // past the exact-integer range
		{1.5, 0, false},
		{float64(1 << 62), 0, false}, // representable but not exact territory
	}
	for _, c := range cases {
		got, ok := ExactInt64(c.v)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ExactInt64(%g) = %d, %v; want %d, %v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestLcm64Overflow(t *testing.T) {
	if l, ok := Lcm64(4, 6); !ok || l != 12 {
		t.Errorf("Lcm64(4,6) = %d, %v", l, ok)
	}
	if l, ok := Lcm64(0, 5); !ok || l != 0 {
		t.Errorf("Lcm64(0,5) = %d, %v", l, ok)
	}
	// Coprime second-scale intervals: lcm ≈ 1e24 overflows int64.
	if _, ok := Lcm64(1000000007000000000, 999999999900000007); ok {
		t.Error("second-scale coprime lcm did not report overflow")
	}
	if _, ok := Hyperperiod([]int64{2, 3, 1000000007000000000, 999999999900000007}); ok {
		t.Error("hyperperiod over overflowing set did not report failure")
	}
}

func TestTimerTicksBasic(t *testing.T) {
	timers := []*spec.TimerTrigger{
		{Start: 0, Interval: 2},
		{Start: 0, Interval: 3},
	}
	groups, hyper, ok := TimerTicks(timers, 100)
	if !ok || hyper != 6 {
		t.Fatalf("ok=%v hyper=%d", ok, hyper)
	}
	// Ticks in [0,6): t0 at 0,2,4; t1 at 0,3 → offsets 0{0,1} 2{0} 3{1} 4{0}.
	wantOffsets := []int64{0, 2, 3, 4}
	if len(groups) != len(wantOffsets) {
		t.Fatalf("groups = %+v", groups)
	}
	for i, g := range groups {
		if g.Offset != wantOffsets[i] {
			t.Errorf("group %d offset = %d, want %d", i, g.Offset, wantOffsets[i])
		}
	}
	if len(groups[0].Members) != 2 {
		t.Errorf("offset 0 members = %v, want both timers", groups[0].Members)
	}
}

func TestTimerTicksRespectsStopAndBounds(t *testing.T) {
	// Timer 0 stops at t=3: within the joint hyperperiod [0,6) it ticks
	// at 0 and 2 only, so no group exists at offset 4.
	timers := []*spec.TimerTrigger{
		{Start: 0, Interval: 2, Stop: 3},
		{Start: 0, Interval: 3},
	}
	groups, hyper, ok := TimerTicks(timers, 100)
	if !ok || hyper != 6 || len(groups) != 3 {
		t.Fatalf("stop window: ok=%v hyper=%d groups=%+v", ok, hyper, groups)
	}
	for _, g := range groups {
		if g.Offset == 4 {
			t.Errorf("stopped timer still ticking at offset 4: %+v", groups)
		}
	}
	// Exceeding maxTicks must fail, not truncate silently.
	if _, _, ok := TimerTicks([]*spec.TimerTrigger{{Start: 0, Interval: 1}, {Start: 0, Interval: 1 << 20}}, 10); ok {
		t.Error("tick explosion not reported")
	}
	// Non-integral and oversized parameters are rejected.
	if _, _, ok := TimerTicks([]*spec.TimerTrigger{{Start: 0.5, Interval: 2}}, 10); ok {
		t.Error("fractional start accepted")
	}
	if _, _, ok := TimerTicks([]*spec.TimerTrigger{{Start: float64(1 << 60), Interval: 2}}, 10); ok {
		t.Error("inexact start accepted")
	}
}

// Regression: huge second-scale starts lose integer exactness in
// float64, so the rounded difference can wrongly appear divisible (or
// not) by the interval gcd. The analyzer must fall back to assuming
// coincidence — flagging the conflict — rather than trusting rounded
// arithmetic to prove the timers apart.
func TestTimerCoincidenceConservativePastExactRange(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(2305843009213693952, 7000) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { TIMER(2, 7000) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	if c := codes(r); c[CodeSaveConflict] != 1 {
		t.Errorf("2^61-scale start not treated conservatively: %v", r.Diagnostics)
	}
}

// Within the exact range, the precise divisibility argument still
// separates offset timers.
func TestTimerCoincidenceExactAtBoundary(t *testing.T) {
	r := Analyze(deployment(t, `
guardrail a {
    trigger: { TIMER(9007199254740992, 2) },
    rule: { LOAD(x) <= 1 },
    action: { SAVE(knob, 0) }
}
guardrail b {
    trigger: { TIMER(1, 2) },
    rule: { LOAD(y) <= 1 },
    action: { SAVE(knob, 1) }
}`, 0))
	if c := codes(r); c[CodeSaveConflict] != 0 {
		t.Errorf("provably-disjoint timers at the 2^53 boundary flagged: %v", r.Diagnostics)
	}
}
