package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// startOps boots a real listener on a loopback ephemeral port; the ops
// endpoint is meant to be scraped over TCP, so the tests exercise the
// whole path.
func startOps(t *testing.T, cfg OpsConfig) *OpsServer {
	t.Helper()
	srv, err := ServeOps("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func get(t *testing.T, srv *OpsServer, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsEndpointRoutes(t *testing.T) {
	s := New(nil, 64)
	s.Eval(1, "mon", 7, false)
	s.HookFire(2, "io_complete", 1)
	srv := startOps(t, OpsConfig{
		Sink: func() *Sink { return s },
		Why: func(monitor string, n int) (any, error) {
			if monitor == "boom" {
				return nil, errors.New("kaput")
			}
			return []map[string]any{{"monitor": monitor, "n": n}}, nil
		},
	})

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"guardrails_evals_total 1", "guardrails_violations_total 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/snapshot.json")
	if code != http.StatusOK {
		t.Fatalf("/snapshot.json = %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot.json not JSON: %v", err)
	}

	code, body = get(t, srv, "/flight")
	if code != http.StatusOK {
		t.Fatalf("/flight = %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/flight not JSON: %v", err)
	}
	if len(events) != 3 { // eval + violation + hook fire
		t.Errorf("/flight events = %d, want 3", len(events))
	}

	code, body = get(t, srv, "/why?monitor=mon&n=2")
	if code != http.StatusOK {
		t.Fatalf("/why = %d: %s", code, body)
	}
	if !strings.Contains(body, `"monitor": "mon"`) || !strings.Contains(body, `"n": 2`) {
		t.Errorf("/why body = %s", body)
	}
	if code, _ = get(t, srv, "/why"); code != http.StatusBadRequest {
		t.Errorf("/why without monitor = %d, want 400", code)
	}
	if code, _ = get(t, srv, "/why?monitor=mon&n=-1"); code != http.StatusBadRequest {
		t.Errorf("/why with bad n = %d, want 400", code)
	}
	if code, _ = get(t, srv, "/why?monitor=boom"); code != http.StatusInternalServerError {
		t.Errorf("/why with erroring callback = %d, want 500", code)
	}

	code, body = get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
}

func TestOpsEndpointNilAndUnhealthy(t *testing.T) {
	// A bare config must still serve every route: empty exports, 404 for
	// /why, and a 503 when Healthz vetoes.
	srv := startOps(t, OpsConfig{
		Healthz: func() error { return fmt.Errorf("rollout wedged") },
	})
	if code, _ := get(t, srv, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics on nil sink = %d", code)
	}
	code, body := get(t, srv, "/flight")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Errorf("/flight on nil sink = %d %q", code, body)
	}
	if code, _ = get(t, srv, "/why?monitor=x"); code != http.StatusNotFound {
		t.Errorf("/why without provenance = %d, want 404", code)
	}
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "rollout wedged") {
		t.Errorf("/healthz veto = %d %q", code, body)
	}
}

// TestTelemetryMergeConcurrentWithWriters: per-shard sinks keep
// recording while a driver merges them — the sharded Telemetry() path
// under -race.
func TestTelemetryMergeConcurrentWithWriters(t *testing.T) {
	sinks := make([]*Sink, 4)
	for i := range sinks {
		sinks[i] = New(nil, 128)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			m := Merge(nil, 0, sinks...)
			_ = m.Snapshot()
		}
	}()
	var total uint64
	for i := 0; i < 500; i++ {
		for _, s := range sinks {
			s.Eval(Time(i), "m", 3, i%7 == 0)
			s.HookFire(Time(i), "site", 0)
			total++
		}
	}
	<-done
	m := Merge(nil, 0, sinks...)
	if got := m.Snapshot().Counters["evals_total"]; got != total {
		t.Errorf("merged evals_total = %d, want %d", got, total)
	}
}
