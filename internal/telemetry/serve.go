package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// OpsConfig wires the live ops endpoint. The Sink callback is
// consulted per request so a sharded system can serve a fresh merge
// every scrape; Why serves decision-provenance queries (wired by the
// facade so this package needs no provenance dependency); Healthz, if
// set, can veto liveness. Nil callbacks disable their routes' content
// ( /metrics and /snapshot.json serve the nil sink's empty exports,
// /why serves 404).
type OpsConfig struct {
	// Sink returns the sink to export; called per request.
	Sink func() *Sink
	// Why returns up to n decision records for one monitor as a
	// JSON-marshalable value ([]provenance.RecordJSON in practice).
	Why func(monitor string, n int) (any, error)
	// Healthz, when non-nil, is polled by /healthz; an error answers
	// 503.
	Healthz func() error
}

// flightEvent is the /flight wire form of one flight-recorder event.
type flightEvent struct {
	Seq     uint64  `json:"seq"`
	At      Time    `json:"at"`
	Dur     Time    `json:"dur,omitempty"`
	Kind    string  `json:"kind"`
	Subject string  `json:"subject"`
	Detail  string  `json:"detail,omitempty"`
	Value   float64 `json:"value,omitempty"`
}

// NewOpsMux returns the ops endpoint's routes:
//
//	/metrics        Prometheus text exposition
//	/snapshot.json  counter/histogram snapshot (WriteJSON)
//	/flight         retained flight-recorder events as JSON
//	/why            decision provenance: ?monitor=<name>[&n=5]
//	/healthz        liveness
func NewOpsMux(cfg OpsConfig) *http.ServeMux {
	sink := cfg.Sink
	if sink == nil {
		sink = func() *Sink { return nil }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = sink().WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = sink().WriteJSON(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var out []flightEvent
		if f := sink().Flight(); f != nil {
			events := f.Events()
			out = make([]flightEvent, 0, len(events))
			for _, e := range events {
				out = append(out, flightEvent{
					Seq: e.Seq, At: e.At, Dur: e.Dur, Kind: e.Kind.String(),
					Subject: e.Subject, Detail: e.Detail, Value: e.Value,
				})
			}
		}
		if out == nil {
			out = []flightEvent{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/why", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Why == nil {
			http.Error(w, "provenance not attached", http.StatusNotFound)
			return
		}
		monitor := r.URL.Query().Get("monitor")
		if monitor == "" {
			http.Error(w, "missing ?monitor=<name>", http.StatusBadRequest)
			return
		}
		n := 5
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, "bad ?n", http.StatusBadRequest)
				return
			}
			n = v
		}
		out, err := cfg.Why(monitor, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Healthz != nil {
			if err := cfg.Healthz(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// OpsServer is a live ops endpoint bound to a listener.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeOps binds addr (":9090", "127.0.0.1:0", ...) and serves the ops
// routes on it in a background goroutine until Close.
func ServeOps(addr string, cfg OpsConfig) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &OpsServer{ln: ln, srv: &http.Server{Handler: NewOpsMux(cfg)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (resolving a :0 request).
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight request handling.
func (s *OpsServer) Close() error { return s.srv.Close() }
