package telemetry

import "testing"

func TestMergeCounters(t *testing.T) {
	a, b := New(nil, 8), New(nil, 8)
	a.Counters.HookFires.Add(3)
	b.Counters.HookFires.Add(4)
	a.Counters.Evals.Add(10)
	b.Counters.Violations.Add(2)

	m := Merge(nil, 8, a, b)
	if got := m.Counters.HookFires.Value(); got != 7 {
		t.Errorf("merged HookFires = %d, want 7", got)
	}
	if got := m.Counters.Evals.Value(); got != 10 {
		t.Errorf("merged Evals = %d, want 10", got)
	}
	if got := m.Counters.Violations.Value(); got != 2 {
		t.Errorf("merged Violations = %d, want 2", got)
	}
	// Sources are read-only inputs.
	if a.Counters.HookFires.Value() != 3 || b.Counters.HookFires.Value() != 4 {
		t.Error("Merge disturbed a source sink")
	}
}

func TestMergeHists(t *testing.T) {
	a, b := New(nil, 8), New(nil, 8)
	a.HookDispatched("sched.switch", 100)
	a.HookDispatched("sched.switch", 200)
	b.HookDispatched("sched.switch", 300)
	b.HookDispatched("io.done", 50)
	a.EvalHist("mon").Observe(7)
	b.IOHist("ssd0").Observe(9)

	m := Merge(nil, 8, a, b)
	if got := m.HookHist("sched.switch").Summary().Count; got != 3 {
		t.Errorf("merged sched.switch count = %d, want 3", got)
	}
	if got := m.HookHist("io.done").Summary().Count; got != 1 {
		t.Errorf("merged io.done count = %d, want 1", got)
	}
	if got := m.EvalHist("mon").Summary().Count; got != 1 {
		t.Errorf("merged eval hist count = %d, want 1", got)
	}
	if got := m.IOHist("ssd0").Summary().Count; got != 1 {
		t.Errorf("merged io hist count = %d, want 1", got)
	}
	if got := a.HookHist("sched.switch").Summary().Count; got != 2 {
		t.Errorf("source hist disturbed: count = %d, want 2", got)
	}
}

func TestMergeFlightInterleavesDeterministically(t *testing.T) {
	build := func() (*Sink, *Sink) {
		a, b := New(nil, 16), New(nil, 16)
		// Shard 0 events at t=10, 30; shard 1 at t=10, 20. The t=10 tie
		// must break by shard index: a's event first.
		a.HookFire(10, "a.first", 0)
		a.HookFire(30, "a.second", 0)
		b.HookFire(10, "b.first", 0)
		b.HookFire(20, "b.second", 0)
		return a, b
	}

	a, b := build()
	m := Merge(nil, 16, a, b)
	got := m.Flight().Events()
	wantSubjects := []string{"a.first", "b.first", "b.second", "a.second"}
	if len(got) != len(wantSubjects) {
		t.Fatalf("merged %d events, want %d", len(got), len(wantSubjects))
	}
	for i, e := range got {
		if e.Subject != wantSubjects[i] {
			t.Errorf("event %d subject = %q, want %q", i, e.Subject, wantSubjects[i])
		}
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d, want fresh %d", i, e.Seq, i+1)
		}
	}

	// Same inputs, same interleave: the merged trace is deterministic.
	a2, b2 := build()
	m2 := Merge(nil, 16, a2, b2)
	for i, e := range m2.Flight().Events() {
		if e.Subject != got[i].Subject || e.At != got[i].At {
			t.Fatalf("merge not deterministic at event %d: %v vs %v", i, e, got[i])
		}
	}
}

func TestMergeDefaultsAndNilSources(t *testing.T) {
	a := New(nil, 4)
	b := New(nil, 8)
	for i := 0; i < 4; i++ {
		a.HookFire(Time(i), "a", 0)
		b.HookFire(Time(i), "b", 0)
	}
	// eventCap <= 0 defaults to the sum of source capacities, so full
	// source rings merge without dropping anything. Nil sinks are
	// skipped.
	m := Merge(nil, 0, a, nil, b)
	if got := m.Flight().Len(); got != 8 {
		t.Errorf("merged ring retains %d events, want 8", got)
	}
	if m.Flight().Cap() < 8 {
		t.Errorf("default merged cap = %d, want >= 8", m.Flight().Cap())
	}
	if got := m.Counters.HookFires.Value(); got != 8 {
		t.Errorf("merged HookFires = %d, want 8", got)
	}

	// All-nil input still yields a usable (empty) sink.
	e := Merge(nil, 0, nil, nil)
	if e == nil || e.Flight().Len() != 0 {
		t.Error("all-nil merge should yield an empty sink")
	}
}

func TestMergeClock(t *testing.T) {
	var now Time = 42
	m := Merge(func() Time { return now }, 4, New(nil, 4))
	if m.Now() != 42 {
		t.Errorf("merged sink Now = %d, want 42", m.Now())
	}
}
