package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"guardrails/internal/stats"
)

// Snapshot is a point-in-time JSON-marshalable export of a sink:
// counter values plus histogram summaries. Two snapshots of the same
// sink diff cleanly for before/after comparisons.
type Snapshot struct {
	// AtNS is the simulated time the snapshot was taken.
	AtNS Time `json:"at_ns"`
	// Counters maps exposition names (e.g. "evals_total") to values.
	Counters map[string]uint64 `json:"counters"`
	// HookDispatchNS summarizes wall-clock hook dispatch latency per
	// site, in real nanoseconds.
	HookDispatchNS map[string]stats.Summary `json:"hook_dispatch_ns,omitempty"`
	// EvalVMSteps summarizes VM steps per evaluation, per monitor.
	EvalVMSteps map[string]stats.Summary `json:"eval_vm_steps,omitempty"`
	// IOLatencyNS summarizes simulated I/O latency per device.
	IOLatencyNS map[string]stats.Summary `json:"io_latency_ns,omitempty"`
	// EventsTotal counts all flight-recorder events ever recorded;
	// EventsRetained is how many the ring still holds.
	EventsTotal    uint64 `json:"events_total"`
	EventsRetained int    `json:"events_retained"`
}

// Snapshot captures the sink's current state. Nil sinks snapshot to the
// zero value.
func (s *Sink) Snapshot() Snapshot {
	snap := Snapshot{Counters: map[string]uint64{}}
	if s == nil {
		return snap
	}
	snap.AtNS = s.clock()
	for _, c := range s.Counters.byName() {
		snap.Counters[c.name] = c.ctr.Value()
	}
	summarize := func(m map[string]*Hist) map[string]stats.Summary {
		s.mu.RLock()
		defer s.mu.RUnlock()
		if len(m) == 0 {
			return nil
		}
		out := make(map[string]stats.Summary, len(m))
		for name, h := range m {
			if sum := h.Summary(); sum.Count > 0 {
				out[name] = sum
			}
		}
		return out
	}
	snap.HookDispatchNS = summarize(s.hookNS)
	snap.EvalVMSteps = summarize(s.evalSteps)
	snap.IOLatencyNS = summarize(s.ioNS)
	snap.EventsTotal = s.rec.Total()
	snap.EventsRetained = s.rec.Len()
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Sink) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Snapshot())
}

// Diff returns the change from prev to snap: counter and event-count
// deltas, with the histogram summaries taken from the later snapshot
// (histogram quantiles do not subtract). Counters present only in prev
// appear with a zero delta.
func (snap Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		AtNS:           snap.AtNS,
		Counters:       make(map[string]uint64, len(snap.Counters)),
		HookDispatchNS: snap.HookDispatchNS,
		EvalVMSteps:    snap.EvalVMSteps,
		IOLatencyNS:    snap.IOLatencyNS,
		EventsTotal:    snap.EventsTotal - prev.EventsTotal,
		EventsRetained: snap.EventsRetained,
	}
	for name, v := range snap.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name := range prev.Counters {
		if _, ok := snap.Counters[name]; !ok {
			out.Counters[name] = 0
		}
	}
	return out
}

// WritePrometheus renders the sink in the Prometheus text exposition
// format, deterministically ordered: one family per counter, and each
// latency/step distribution as a native cumulative histogram with
// `_bucket{le=...}`/`_sum`/`_count` series. The metric prefix is
// "guardrails_".
//
// Bucket boundaries follow the underlying log2 histogram: le="1"
// holds the sub-1 observations, le="2^(k+1)" closes the [2^k, 2^(k+1))
// bin, and empty bins are elided (the cumulative counts are unchanged
// by elision). Observations past the top bin are absorbed by it, so
// the le="+Inf" bucket always equals _count.
func (s *Sink) WritePrometheus(w io.Writer) error {
	snap := s.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p("# TYPE guardrails_%s counter\nguardrails_%s %d\n", name, name, snap.Counters[name])
	}
	family := func(metric, label string, m map[string]*Hist) {
		if s == nil {
			return
		}
		s.mu.RLock()
		keys := make([]string, 0, len(m))
		for k, h := range m {
			if h.Summary().Count > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		if len(keys) == 0 {
			s.mu.RUnlock()
			return
		}
		p("# TYPE guardrails_%s histogram\n", metric)
		for _, k := range keys {
			zero, bins, total, sum := m[k].buckets()
			cum := zero
			p("guardrails_%s_bucket{%s=%q,le=\"1\"} %d\n", metric, label, k, cum)
			for i, n := range bins {
				if n == 0 {
					continue
				}
				cum += n
				p("guardrails_%s_bucket{%s=%q,le=\"%d\"} %d\n", metric, label, k, uint64(1)<<(i+1), cum)
			}
			p("guardrails_%s_bucket{%s=%q,le=\"+Inf\"} %d\n", metric, label, k, total)
			p("guardrails_%s_sum{%s=%q} %g\n", metric, label, k, sum)
			p("guardrails_%s_count{%s=%q} %d\n", metric, label, k, total)
		}
		s.mu.RUnlock()
	}
	var hookNS, evalSteps, ioNS map[string]*Hist
	if s != nil {
		hookNS, evalSteps, ioNS = s.hookNS, s.evalSteps, s.ioNS
	}
	family("hook_dispatch_ns", "site", hookNS)
	family("eval_vm_steps", "monitor", evalSteps)
	family("io_latency_ns", "device", ioNS)
	p("# TYPE guardrails_flight_events counter\nguardrails_flight_events %d\n", snap.EventsTotal)
	return err
}
