package telemetry

import "testing"

// fillFlight records n instant events at times t = 0, step, 2*step, ...
func fillFlight(f *Flight, n int, step Time) {
	for i := 0; i < n; i++ {
		f.Record(Event{At: Time(i) * step, Kind: KindHookFire, Subject: "s"})
	}
}

func TestEventsSinceNoWrap(t *testing.T) {
	f := NewFlight(16)
	fillFlight(f, 10, 10) // times 0..90, all retained
	got, truncated := f.EventsSince(50)
	if truncated {
		t.Error("window fully retained, but truncated reported")
	}
	if len(got) != 5 {
		t.Fatalf("EventsSince(50) = %d events, want 5", len(got))
	}
	if got[0].At != 50 || got[len(got)-1].At != 90 {
		t.Errorf("window spans [%d, %d], want [50, 90]", got[0].At, got[len(got)-1].At)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq: %d after %d", got[i].Seq, got[i-1].Seq)
		}
	}
}

func TestEventsSinceEmptyWindow(t *testing.T) {
	f := NewFlight(8)
	fillFlight(f, 4, 10) // times 0..30
	got, truncated := f.EventsSince(100)
	if len(got) != 0 || truncated {
		t.Errorf("future window: got %d events, truncated=%v; want 0, false", len(got), truncated)
	}
	// Empty recorder.
	empty := NewFlight(8)
	if got, truncated := empty.EventsSince(0); len(got) != 0 || truncated {
		t.Errorf("empty recorder: got %d events, truncated=%v", len(got), truncated)
	}
}

// TestEventsSinceWrapInsideWindow is the satellite's target case: the
// ring has wrapped and the window boundary falls inside the retained
// suffix. The query must return exactly the retained events at or after
// the boundary, and must not report truncation (the dropped events are
// all older than the window).
func TestEventsSinceWrapInsideWindow(t *testing.T) {
	f := NewFlight(8)
	fillFlight(f, 20, 10) // times 0..190; ring retains 120..190
	if f.Len() != 8 || f.Total() != 20 {
		t.Fatalf("ring state: len=%d total=%d", f.Len(), f.Total())
	}
	got, truncated := f.EventsSince(150)
	if truncated {
		t.Error("boundary inside retained suffix, but truncated reported")
	}
	want := []Time{150, 160, 170, 180, 190}
	if len(got) != len(want) {
		t.Fatalf("EventsSince(150) = %d events, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.At != want[i] {
			t.Errorf("event %d at %d, want %d", i, e.At, want[i])
		}
	}
}

// TestEventsSinceWindowFellOffRing: the window starts before the oldest
// retained event after a wraparound — the result is the whole retained
// ring and the truncation flag is set, so a gate can tell "quiet
// window" from "window fell off the ring".
func TestEventsSinceWindowFellOffRing(t *testing.T) {
	f := NewFlight(8)
	fillFlight(f, 20, 10) // retains times 120..190; 0..110 overwritten
	got, truncated := f.EventsSince(50)
	if !truncated {
		t.Error("window reaches overwritten history, truncation not reported")
	}
	if len(got) != 8 {
		t.Fatalf("EventsSince(50) = %d events, want all 8 retained", len(got))
	}
	if got[0].At != 120 {
		t.Errorf("oldest returned event at %d, want 120", got[0].At)
	}
}

// TestEventsSinceBoundaryExactlyAtOldest: the window starts exactly at
// the oldest retained event's time. Everything retained is in-window,
// but events with the same or earlier times were dropped, so the
// conservative truncation flag is set.
func TestEventsSinceBoundaryExactlyAtOldest(t *testing.T) {
	f := NewFlight(8)
	fillFlight(f, 20, 10) // retains 120..190
	got, truncated := f.EventsSince(120)
	if len(got) != 8 {
		t.Fatalf("EventsSince(120) = %d events, want 8", len(got))
	}
	if !truncated {
		t.Error("boundary at oldest retained event after wrap: want truncated=true")
	}
	// Before any wraparound the same boundary is exact, not truncated.
	g := NewFlight(32)
	fillFlight(g, 20, 10)
	if _, trunc := g.EventsSince(0); trunc {
		t.Error("no wraparound: truncated must be false even at the full window")
	}
}

func TestWindowedCounterDeltas(t *testing.T) {
	s := New(nil, 16)
	s.Eval(0, "m", 5, true)
	before := s.Snapshot()
	s.Eval(1, "m", 5, false) // eval + violation
	s.Promotion(2, 2)
	s.Rollback(3, 1, "gate")
	diff := s.Snapshot().Diff(before)
	for name, want := range map[string]uint64{
		"evals_total":              1,
		"violations_total":         1,
		"rollout_promotions_total": 1,
		"rollout_rollbacks_total":  1,
	} {
		if diff.Counters[name] != want {
			t.Errorf("windowed delta %s = %d, want %d", name, diff.Counters[name], want)
		}
	}
}
