package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event export: the flight recorder renders as a JSON
// object Perfetto and chrome://tracing load directly. Mapping:
//
//   - trace "ts"/"dur" are microseconds; simulated nanoseconds divide
//     by 1e3 (fractional microseconds are kept, so nothing collapses).
//   - each event subject (hook site, monitor, device) becomes one
//     thread lane (tid), named via thread_name metadata; all lanes
//     share pid 1 ("guardrails kernel").
//   - events with a duration (evaluations, whose virtual duration is
//     their VM step count at 1 step = 1ns; SSD GC pauses) render as
//     complete ("X") spans; everything else is a thread-scoped instant
//     ("i").
//
// Export is deterministic: lanes are assigned in sorted subject order
// and events are emitted in sequence order, so a seeded run produces a
// byte-identical trace file.

// traceEvent is one trace_event record.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of the trace_event spec.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders the flight recorder's retained events as Chrome
// trace_event JSON. A nil sink writes an empty (still loadable) trace.
func (s *Sink) WriteTrace(w io.Writer) error {
	var events []Event
	if s != nil {
		events = s.rec.Events()
	}

	// Assign one lane per subject, in sorted order for determinism.
	subjects := make(map[string]int)
	var names []string
	for _, e := range events {
		if _, ok := subjects[e.Subject]; !ok {
			subjects[e.Subject] = 0
			names = append(names, e.Subject)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		subjects[n] = i + 1
	}

	out := traceFile{DisplayTimeUnit: "ns", TraceEvents: make([]traceEvent, 0, len(events)+len(names))}
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: subjects[n],
			Args: map[string]any{"name": n},
		})
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Kind.String(),
			Cat:  e.Kind.Category(),
			TS:   float64(e.At) / 1e3,
			PID:  1,
			TID:  subjects[e.Subject],
			Args: map[string]any{"seq": e.Seq},
		}
		if e.Detail != "" {
			te.Args["detail"] = e.Detail
		}
		if e.Value != 0 {
			te.Args["value"] = e.Value
		}
		if e.Dur > 0 {
			te.Phase = "X"
			te.Dur = float64(e.Dur) / 1e3
		} else {
			te.Phase = "i"
			te.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
