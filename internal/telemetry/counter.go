package telemetry

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the stripe width of a Counter. Power of two so the
// shard index is a mask, not a modulo.
const counterShards = 8

// counterShard is one padded stripe: the padding keeps adjacent shards
// on separate cache lines so concurrent writers do not false-share.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a sharded, mergeable monotonic counter. Concurrent Adds
// land on (probabilistically) different stripes, so heavily contended
// counters — hook fires under a multi-goroutine stress test — do not
// serialize on one cache line. The zero value is ready to use, and all
// methods are nil-safe: a nil *Counter ignores Add and reads as 0,
// which is what makes a disabled telemetry plane free.
type Counter struct {
	shards [counterShards]counterShard
}

// shardIndex picks a stripe from the address of a stack variable.
// Goroutine stacks are distinct allocations, so two goroutines hammering
// the same counter usually hash to different stripes; within one
// goroutine the index is stable for the life of a stack segment. This
// costs no allocation and no per-goroutine state.
func shardIndex() int {
	var probe byte
	return int((uintptr(unsafe.Pointer(&probe)) >> 9) & (counterShards - 1))
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Concurrent with writers it is a lower bound
// snapshot, exact once writers quiesce.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Merge folds o's count into c (shard-wise, so merged counters remain
// mergeable). Used to aggregate per-run or per-worker sinks.
func (c *Counter) Merge(o *Counter) {
	if c == nil || o == nil {
		return
	}
	for i := range o.shards {
		if n := o.shards[i].n.Load(); n != 0 {
			c.shards[i].n.Add(n)
		}
	}
}
