package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestTelemetryCounterAddValueMerge(t *testing.T) {
	var a, b Counter
	for i := 0; i < 100; i++ {
		a.Inc()
		b.Add(2)
	}
	if a.Value() != 100 || b.Value() != 200 {
		t.Fatalf("values = %d, %d", a.Value(), b.Value())
	}
	a.Merge(&b)
	if a.Value() != 300 {
		t.Errorf("merged value = %d, want 300", a.Value())
	}
	if b.Value() != 200 {
		t.Error("merge mutated its argument")
	}
}

func TestTelemetryCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("value = %d, want %d", c.Value(), workers*perWorker)
	}
}

// TestTelemetryNilSinkIsFree: every instrumentation entry point must be
// callable on a nil sink (the disabled plane) without panicking or
// allocating.
func TestTelemetryNilSinkIsFree(t *testing.T) {
	var s *Sink
	var c *Counter
	var h *Hist
	exercise := func() {
		s.HookFire(1, "site", 0)
		s.HookDispatched("site", 10)
		s.Eval(1, "mon", 5, false)
		s.ActionsFired(1, "mon")
		s.Action(1, "mon", "REPORT", 0, true)
		s.ActionRetry(1, "mon", "REPORT", 1)
		s.DeadLetter(1, "mon", "REPORT")
		s.Fault(1, "mon", "vm-trap")
		s.Transition(1, "mon", KindQuarantine, "test")
		s.GCPause(1, 2, "dev")
		s.Failover(1, "dev", false)
		s.IO("dev", 100, true)
		s.StoreLoad()
		s.StoreSave()
		s.FlightWindowTruncated()
		s.Emit(Event{})
		c.Add(1)
		h.Observe(1)
		_ = c.Value()
		_ = h.Summary()
		_ = s.Flight()
		_ = s.HookHist("site")
	}
	exercise()
	if n := testing.AllocsPerRun(1000, exercise); n != 0 {
		t.Errorf("nil sink instrumentation allocates %v times per run, want 0", n)
	}
	snap := s.Snapshot()
	if snap.EventsTotal != 0 || len(snap.Counters) != 0 {
		t.Errorf("nil sink snapshot = %+v", snap)
	}
}

// TestTelemetryEnabledHotPathAllocationFree: with a sink attached, the
// per-event hot paths (counter add, histogram observe, ring record)
// must still not allocate once the site's histogram exists.
func TestTelemetryEnabledHotPathAllocationFree(t *testing.T) {
	s := New(nil, 64)
	s.HookFire(1, "site", 0)
	s.HookDispatched("site", 10) // create the site histogram
	s.IO("dev", 100, false)
	if n := testing.AllocsPerRun(1000, func() {
		s.HookFire(2, "site", 1)
		s.HookDispatched("site", 20)
		s.Eval(2, "site", 7, true)
		s.IO("dev", 200, true)
		s.StoreLoad()
	}); n != 0 {
		t.Errorf("enabled hot path allocates %v times per run, want 0", n)
	}
}

func TestTelemetryFlightWraparoundOrdering(t *testing.T) {
	f := NewFlight(4)
	for i := 1; i <= 10; i++ {
		f.Record(Event{At: Time(i), Kind: KindHookFire, Subject: "s"})
	}
	if f.Total() != 10 || f.Len() != 4 {
		t.Fatalf("total=%d len=%d", f.Total(), f.Len())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// The retained window is the contiguous suffix 7..10, oldest first.
	for i, e := range evs {
		want := uint64(7 + i)
		if e.Seq != want || e.At != Time(want) {
			t.Errorf("event %d: seq=%d at=%d, want %d", i, e.Seq, e.At, want)
		}
	}
}

func TestTelemetryFlightConcurrentWriters(t *testing.T) {
	f := NewFlight(128)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				f.Record(Event{At: Time(i), Kind: Kind(w % int(numKinds)), Subject: "w"})
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != workers*perWorker {
		t.Fatalf("total = %d, want %d", f.Total(), workers*perWorker)
	}
	evs := f.Events()
	if len(evs) != 128 {
		t.Fatalf("retained = %d", len(evs))
	}
	// Sequence numbers must be strictly increasing and form the exact
	// suffix of the global order, regardless of writer interleaving.
	for i, e := range evs {
		want := uint64(workers*perWorker - 128 + i + 1)
		if e.Seq != want {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestTelemetrySinkConcurrentWriters(t *testing.T) {
	s := New(nil, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.HookFire(Time(i), "site", 0)
				s.HookDispatched("site", float64(i))
				s.Eval(Time(i), "mon", 9, i%3 == 0)
				s.IO("dev", Time(i), i%2 == 0)
			}
		}(w)
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Counters["hook_fires_total"] != 1600 || snap.Counters["evals_total"] != 1600 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.HookDispatchNS["site"].Count != 1600 {
		t.Errorf("hook hist count = %d", snap.HookDispatchNS["site"].Count)
	}
}

func TestTelemetrySnapshotDiff(t *testing.T) {
	now := Time(0)
	s := New(func() Time { return now }, 64)
	s.Eval(1, "m", 10, true)
	before := s.Snapshot()
	now = 5000
	s.Eval(2, "m", 10, false) // eval + violation
	s.HookFire(3, "site", 0)
	after := s.Snapshot()
	d := after.Diff(before)
	if d.AtNS != 5000 {
		t.Errorf("diff at = %d", d.AtNS)
	}
	if d.Counters["evals_total"] != 1 || d.Counters["violations_total"] != 1 ||
		d.Counters["hook_fires_total"] != 1 || d.Counters["vm_steps_total"] != 10 {
		t.Errorf("diff counters = %v", d.Counters)
	}
	if d.EventsTotal != 3 { // eval, violation, hook fire
		t.Errorf("diff events = %d", d.EventsTotal)
	}
}

func TestTelemetryPrometheusExposition(t *testing.T) {
	s := New(nil, 64)
	s.Eval(1, "low-false-submit", 8, false)
	s.HookFire(2, "io_complete", 42)
	s.HookDispatched("io_complete", 150)
	var a, b strings.Builder
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("exposition is not deterministic across writes")
	}
	for _, want := range []string{
		"# TYPE guardrails_evals_total counter\nguardrails_evals_total 1\n",
		"guardrails_violations_total 1\n",
		"guardrails_vm_steps_total 8\n",
		// Native cumulative histograms: one eval of 8 steps lands in
		// the [8,16) bin, so the cumulative series is 0 below it, 1 at
		// le="16", and 1 at +Inf with sum 8.
		"# TYPE guardrails_eval_vm_steps histogram\n",
		`guardrails_eval_vm_steps_bucket{monitor="low-false-submit",le="1"} 0`,
		`guardrails_eval_vm_steps_bucket{monitor="low-false-submit",le="16"} 1`,
		`guardrails_eval_vm_steps_bucket{monitor="low-false-submit",le="+Inf"} 1`,
		`guardrails_eval_vm_steps_sum{monitor="low-false-submit"} 8`,
		`guardrails_eval_vm_steps_count{monitor="low-false-submit"} 1`,
		"# TYPE guardrails_hook_dispatch_ns histogram\n",
		`guardrails_hook_dispatch_ns_bucket{site="io_complete",le="256"} 1`,
		`guardrails_hook_dispatch_ns_count{site="io_complete"} 1`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
	if strings.Contains(a.String(), "quantile=") {
		t.Errorf("exposition still contains summary quantile series:\n%s", a.String())
	}
}

func TestTelemetryTransitionCounters(t *testing.T) {
	s := New(nil, 16)
	s.Transition(1, "m", KindQuarantine, "breaker")
	s.Transition(2, "m", KindRearm, "cooldown")
	s.Transition(3, "m", KindShadowEnter, "over budget")
	s.Transition(4, "m", KindShadowExit, "window reset")
	snap := s.Snapshot()
	for name, want := range map[string]uint64{
		"quarantines_total":       1,
		"rearms_total":            1,
		"shadow_demotions_total":  1,
		"shadow_promotions_total": 1,
	} {
		if snap.Counters[name] != want {
			t.Errorf("%s = %d, want %d", name, snap.Counters[name], want)
		}
	}
	if got := s.Flight().Len(); got != 4 {
		t.Errorf("transition events = %d, want 4", got)
	}
}

func TestTelemetryKindStringsAndCategories(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if k.Category() == "other" {
			t.Errorf("kind %s has no category", k)
		}
	}
}
