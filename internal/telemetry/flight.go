package telemetry

import (
	"fmt"
	"sync"
)

// Kind classifies a flight-recorder event. The taxonomy covers the
// kernel hook plane, the monitor lifecycle, the action pipeline, and
// the storage substrate — every place simulated-kernel time is spent or
// a guardrail decision is made.
type Kind uint8

// Event kinds.
const (
	// KindHookFire: a kernel hook site fired (Value = first hook arg).
	KindHookFire Kind = iota
	// KindEval: one monitor evaluation (Value = VM steps; Dur renders
	// the steps as virtual nanoseconds for timeline viewing).
	KindEval
	// KindViolation: an evaluation whose rule conjunction failed.
	KindViolation
	// KindAction: an action dispatch reached its backend (Detail names
	// the action; Value = attempt, 0 for the first try).
	KindAction
	// KindActionRetry: a failed dispatch was scheduled for retry.
	KindActionRetry
	// KindDeadLetter: an action exhausted its retries.
	KindDeadLetter
	// KindFault: a monitor fault (VM trap, corrupt load, injected).
	KindFault
	// KindQuarantine: a circuit breaker tripped.
	KindQuarantine
	// KindRearm: a quarantined monitor returned to duty.
	KindRearm
	// KindShadowEnter: budget enforcement demoted a monitor to shadow.
	KindShadowEnter
	// KindShadowExit: a budget window reset promoted a monitor back.
	KindShadowExit
	// KindGCPause: an SSD chip entered a garbage-collection pause
	// (Dur = pause length).
	KindGCPause
	// KindFailover: a storage replica left (Value=0) or rejoined
	// (Value=1) service.
	KindFailover
	// KindRolloutPhase: a staged rollout entered a phase (Detail names
	// it; Value = target generation; Subject = the generation lane).
	KindRolloutPhase
	// KindPromotion: a rollout promoted a candidate generation
	// fleet-wide (Value = new generation).
	KindPromotion
	// KindRollback: a rollout rolled back to the last-good generation
	// (Detail = reason; Value = the generation rolled back to).
	KindRollback
	// KindBreakglass: an operator quarantined a guardrail fleet-wide
	// (Detail = "shadow" or "disable").
	KindBreakglass
	numKinds
)

// String names the kind (stable: these appear in trace files).
func (k Kind) String() string {
	switch k {
	case KindHookFire:
		return "hook_fire"
	case KindEval:
		return "eval"
	case KindViolation:
		return "violation"
	case KindAction:
		return "action"
	case KindActionRetry:
		return "action_retry"
	case KindDeadLetter:
		return "dead_letter"
	case KindFault:
		return "fault"
	case KindQuarantine:
		return "quarantine"
	case KindRearm:
		return "rearm"
	case KindShadowEnter:
		return "shadow_enter"
	case KindShadowExit:
		return "shadow_exit"
	case KindGCPause:
		return "gc_pause"
	case KindFailover:
		return "failover"
	case KindRolloutPhase:
		return "rollout_phase"
	case KindPromotion:
		return "rollout_promotion"
	case KindRollback:
		return "rollout_rollback"
	case KindBreakglass:
		return "breakglass"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Category groups kinds into trace lanes: kernel, monitor, action,
// storage.
func (k Kind) Category() string {
	switch k {
	case KindHookFire:
		return "kernel"
	case KindEval, KindViolation, KindFault, KindQuarantine, KindRearm,
		KindShadowEnter, KindShadowExit:
		return "monitor"
	case KindAction, KindActionRetry, KindDeadLetter:
		return "action"
	case KindGCPause, KindFailover:
		return "storage"
	case KindRolloutPhase, KindPromotion, KindRollback, KindBreakglass:
		return "rollout"
	default:
		return "other"
	}
}

// Event is one flight-recorder record. Events are plain values — the
// ring stores them inline, so recording never allocates.
type Event struct {
	// Seq is the global record order (1-based, never reused). Because
	// the ring is bounded, retained events form a contiguous suffix of
	// the sequence.
	Seq uint64
	// At is the simulated start time in nanoseconds.
	At Time
	// Dur is the event's duration in simulated (or, for evaluations,
	// virtual) nanoseconds; 0 marks an instant event.
	Dur Time
	// Kind classifies the event.
	Kind Kind
	// Subject is the hook site, monitor, or device the event concerns.
	Subject string
	// Detail is optional context: an action name, a transition reason.
	Detail string
	// Value is a kind-specific payload (VM steps, hook argument, ...).
	Value float64
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("#%d @%dns %s %s", e.Seq, e.At, e.Kind, e.Subject)
	if e.Dur > 0 {
		s += fmt.Sprintf(" dur=%dns", e.Dur)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Flight is the bounded flight-recorder ring: the most recent capacity
// events, overwritten oldest-first, with a total count that keeps
// advancing. Safe for concurrent writers; recording is one short
// critical section and zero allocations.
type Flight struct {
	mu   sync.Mutex
	ring []Event
	head int // index of the oldest retained event
	size int
	seq  uint64
}

// NewFlight returns a recorder retaining the most recent capacity
// events.
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		panic("telemetry: flight recorder capacity must be positive")
	}
	return &Flight{ring: make([]Event, capacity)}
}

// Record appends one event, assigning its sequence number, and returns
// that number. Safe for concurrent use.
func (f *Flight) Record(e Event) uint64 {
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	if f.size == len(f.ring) {
		f.ring[f.head] = e
		f.head = (f.head + 1) % len(f.ring)
	} else {
		f.ring[(f.head+f.size)%len(f.ring)] = e
		f.size++
	}
	f.mu.Unlock()
	return e.Seq
}

// Total returns how many events have ever been recorded, including
// those the ring has since overwritten.
func (f *Flight) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Len returns the number of retained events.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// Cap returns the ring capacity.
func (f *Flight) Cap() int { return len(f.ring) }

// Events returns the retained events in record order (ascending Seq).
func (f *Flight) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, f.size)
	for i := 0; i < f.size; i++ {
		out = append(out, f.ring[(f.head+i)%len(f.ring)])
	}
	return out
}

// EventsSince returns the retained events whose start time is at or
// after t, in record order — the time-windowed query rollout gates use
// to score a canary stage. Record times are non-decreasing (events are
// recorded as simulated time advances), so the result is the contiguous
// suffix of the retained events starting at the first event with
// At >= t, found by binary search over the ring.
//
// The window is best-effort at the ring boundary: events older than the
// ring's capacity have been overwritten, so a window reaching further
// back than the oldest retained event silently starts there. Truncated
// reports whether that happened — the oldest retained event is newer
// than t while older events had already been recorded — so a gate can
// tell "quiet window" from "window fell off the ring".
func (f *Flight) EventsSince(t Time) (events []Event, truncated bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Binary search for the first retained index with At >= t.
	lo, hi := 0, f.size
	for lo < hi {
		mid := (lo + hi) / 2
		if f.ring[(f.head+mid)%len(f.ring)].At < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := make([]Event, 0, f.size-lo)
	for i := lo; i < f.size; i++ {
		out = append(out, f.ring[(f.head+i)%len(f.ring)])
	}
	if f.size > 0 && lo == 0 {
		oldest := f.ring[f.head]
		// The window reaches to (or past) the oldest retained event and
		// the ring has dropped events before it (Seq > 1 means history
		// was overwritten) — dropped events may have been in-window.
		truncated = oldest.At >= t && oldest.Seq > 1
	}
	return out, truncated
}
