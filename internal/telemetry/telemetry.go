// Package telemetry is the kernel-wide observability plane: sharded
// counters, latency/VM-step histograms, and a bounded flight-recorder
// event ring, all fed from instrumentation points in the simulated
// kernel (hook dispatch), the monitor runtime (evaluate/action/guard
// paths), the storage substrate (GC pauses, failover), and the feature
// store (read/write volume). A run exports as a Prometheus-style text
// page, a JSON snapshot (diffable for before/after comparisons), or a
// Chrome trace_event file for timeline viewing in Perfetto.
//
// The plane is disabled by a nil *Sink: every method nil-checks its
// receiver and returns immediately, so instrumented hot paths stay
// zero-allocation and branch-predictable when telemetry is off — the
// same discipline eBPF applies to disabled tracepoints. With a sink
// attached, counters are lock-free atomic adds, histograms take one
// short mutex, and flight-recorder appends copy one Event value into a
// preallocated ring; the steady-state paths still do not allocate.
//
// Time: the package deliberately does not import the kernel (the kernel
// itself is instrumented, which would cycle); simulated timestamps
// travel as int64 nanoseconds (the representation of kernel.Time).
// Wall-clock durations — the real cost of hook dispatch, the paper's
// "accountable overhead" — are measured with time.Now at the
// instrumentation site and recorded in nanoseconds.
package telemetry

import (
	"fmt"
	"sync"

	"guardrails/internal/stats"
)

// Time is a simulated timestamp in nanoseconds since boot — the value
// representation of kernel.Time, kept as int64 here to avoid an import
// cycle with the instrumented kernel.
type Time = int64

// histMaxExp covers values up to 2^40 ns (~18 simulated minutes) in
// log2 buckets — wide enough for any latency this repo simulates.
const histMaxExp = 40

// Hist is a mutex-guarded log2 histogram handle. Like Counter it is
// nil-safe: a nil *Hist ignores observations and summarizes to zero.
type Hist struct {
	mu sync.Mutex
	h  *stats.LogHistogram
}

func newHist() *Hist { return &Hist{h: stats.NewLogHistogram(histMaxExp)} }

// Observe incorporates one non-negative observation.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Summary exports the fixed quantile set (zero Summary when empty).
func (h *Hist) Summary() stats.Summary {
	if h == nil {
		return stats.Summary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Summary()
}

// buckets exposes the raw log2 buckets for the native-histogram
// Prometheus export (see stats.LogHistogram.Buckets).
func (h *Hist) buckets() (zero uint64, bins []uint64, total uint64, sum float64) {
	if h == nil {
		return 0, nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Buckets()
}

// Merge folds o into h. Always shape-compatible: every telemetry
// histogram shares histMaxExp.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	o.mu.Lock()
	snapshot := stats.NewLogHistogram(histMaxExp)
	_ = snapshot.Merge(o.h)
	o.mu.Unlock()
	h.mu.Lock()
	_ = h.h.Merge(snapshot)
	h.mu.Unlock()
}

// Counters is the fixed counter set every sink carries. Field names
// mirror the monitor's Stats so a snapshot reconciles 1:1 with
// per-monitor accounting (summed over monitors).
type Counters struct {
	HookFires           Counter
	Evals               Counter
	Violations          Counter
	ActionsFired        Counter
	ActionDispatches    Counter
	ActionErrors        Counter
	Retries             Counter
	DeadLetters         Counter
	Faults              Counter
	Quarantines         Counter
	Rearms              Counter
	ShadowDemotions     Counter
	ShadowPromotions    Counter
	VMSteps             Counter
	GCPauses            Counter
	Failovers           Counter
	StoreLoads          Counter
	StoreSaves          Counter
	IOReads             Counter
	IOWrites            Counter
	ProvenLoads         Counter
	GuardedLoads        Counter
	DeployAdmitted      Counter
	DeployRejected      Counter
	RolloutPromotions   Counter
	RolloutRollbacks    Counter
	RolloutAdmitRetries Counter
	Breakglass          Counter
	BreakglassReleases  Counter
	// FlightWindowTruncated counts flight-recorder window reads
	// (EventsSince) that could not cover their window because the ring
	// wrapped — each one is a rollout gate (or other reader) forced to
	// fall back to coarser counter deltas.
	FlightWindowTruncated Counter
}

// counterNames returns the exposition name → counter mapping. The
// names follow Prometheus conventions (snake case, _total suffix).
func (c *Counters) byName() []struct {
	name string
	ctr  *Counter
} {
	return []struct {
		name string
		ctr  *Counter
	}{
		{"hook_fires_total", &c.HookFires},
		{"evals_total", &c.Evals},
		{"violations_total", &c.Violations},
		{"actions_fired_total", &c.ActionsFired},
		{"action_dispatches_total", &c.ActionDispatches},
		{"action_errors_total", &c.ActionErrors},
		{"action_retries_total", &c.Retries},
		{"dead_letters_total", &c.DeadLetters},
		{"monitor_faults_total", &c.Faults},
		{"quarantines_total", &c.Quarantines},
		{"rearms_total", &c.Rearms},
		{"shadow_demotions_total", &c.ShadowDemotions},
		{"shadow_promotions_total", &c.ShadowPromotions},
		{"vm_steps_total", &c.VMSteps},
		{"ssd_gc_pauses_total", &c.GCPauses},
		{"replica_transitions_total", &c.Failovers},
		{"featurestore_loads_total", &c.StoreLoads},
		{"featurestore_saves_total", &c.StoreSaves},
		{"io_reads_total", &c.IOReads},
		{"io_writes_total", &c.IOWrites},
		{"monitor_loads_proven_total", &c.ProvenLoads},
		{"monitor_loads_guarded_total", &c.GuardedLoads},
		{"deployment_admitted_total", &c.DeployAdmitted},
		{"deployment_rejected_total", &c.DeployRejected},
		{"rollout_promotions_total", &c.RolloutPromotions},
		{"rollout_rollbacks_total", &c.RolloutRollbacks},
		{"rollout_admission_retries_total", &c.RolloutAdmitRetries},
		{"breakglass_total", &c.Breakglass},
		{"breakglass_releases_total", &c.BreakglassReleases},
		{"flight_window_truncated_total", &c.FlightWindowTruncated},
	}
}

// Sink is one telemetry plane: attach it to a kernel, monitor runtime,
// feature store, and storage devices, run the system, then export.
// A nil *Sink is the disabled plane — every method is a nil-check away
// from free, so instrumentation points never need their own guards.
type Sink struct {
	clock func() Time
	rec   *Flight

	// Counters is the fixed counter set; exported so callers can read
	// (or Merge) individual counters directly.
	Counters Counters

	mu sync.RWMutex
	// hookNS: per hook site, wall-clock nanoseconds spent dispatching
	// that site's callbacks (the monitors' real overhead).
	hookNS map[string]*Hist
	// evalSteps: per monitor, VM steps per evaluation.
	evalSteps map[string]*Hist
	// ioNS: per device, simulated I/O latency in nanoseconds.
	ioNS map[string]*Hist
}

// New returns a sink whose flight recorder retains eventCap events and
// whose snapshots are stamped with clock (typically the simulated
// kernel's Now). A nil clock stamps zero.
func New(clock func() Time, eventCap int) *Sink {
	if clock == nil {
		clock = func() Time { return 0 }
	}
	return &Sink{
		clock:     clock,
		rec:       NewFlight(eventCap),
		hookNS:    make(map[string]*Hist),
		evalSteps: make(map[string]*Hist),
		ioNS:      make(map[string]*Hist),
	}
}

// SetClock replaces the sink's snapshot clock. Callers that construct
// the sink before the simulated kernel exists (e.g. a CLI wiring
// telemetry into an experiment it is about to build) bind the clock
// here once the kernel is up. Nil-safe; a nil fn restores the zero
// clock.
func (s *Sink) SetClock(fn func() Time) {
	if s == nil {
		return
	}
	if fn == nil {
		fn = func() Time { return 0 }
	}
	s.clock = fn
}

// Now returns the sink's clock reading — the simulated time snapshots
// are stamped with. A nil sink (or nil clock) reads zero. Event sources
// without a timestamp of their own (e.g. replica fail/heal) use this.
func (s *Sink) Now() Time {
	if s == nil {
		return 0
	}
	return s.clock()
}

// Flight returns the sink's flight recorder (nil on a nil sink).
func (s *Sink) Flight() *Flight {
	if s == nil {
		return nil
	}
	return s.rec
}

// Emit records one flight-recorder event verbatim. Instrumentation
// sites mostly use the typed helpers below, which also maintain the
// matching counters and histograms.
func (s *Sink) Emit(e Event) {
	if s == nil {
		return
	}
	s.rec.Record(e)
}

// hist returns the named histogram from m, creating it on first use.
// The read path takes only the RLock; creation is rare (one per site).
func (s *Sink) hist(m map[string]*Hist, name string) *Hist {
	s.mu.RLock()
	h := m[name]
	s.mu.RUnlock()
	if h != nil {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h = m[name]; h == nil {
		h = newHist()
		m[name] = h
	}
	return h
}

// HookHist returns the wall-clock dispatch-latency histogram for a
// hook site (created on first use).
func (s *Sink) HookHist(site string) *Hist {
	if s == nil {
		return nil
	}
	return s.hist(s.hookNS, site)
}

// EvalHist returns the VM-steps-per-evaluation histogram for a monitor.
func (s *Sink) EvalHist(monitor string) *Hist {
	if s == nil {
		return nil
	}
	return s.hist(s.evalSteps, monitor)
}

// IOHist returns the simulated-I/O-latency histogram for a device.
func (s *Sink) IOHist(device string) *Hist {
	if s == nil {
		return nil
	}
	return s.hist(s.ioNS, device)
}

// --- typed instrumentation points ------------------------------------

// HookFire records one kernel hook-site firing: the fire event (Value =
// first hook argument) and the global counter. The kernel calls this
// before dispatching the site's callbacks, so the fire event precedes
// the evaluations it triggers in the flight recorder; the dispatch cost
// arrives afterwards via HookDispatched.
func (s *Sink) HookFire(at Time, site string, arg float64) {
	if s == nil {
		return
	}
	s.Counters.HookFires.Inc()
	s.rec.Record(Event{At: at, Kind: KindHookFire, Subject: site, Value: arg})
}

// MonitorLoad records one monitor program load, split by whether the
// verifier proved it trap-free (the interpreter's guard-free fast path)
// or it fell back to the fully-guarded path. Counter-only by design —
// loads are configuration events, not flight-recorder traffic.
func (s *Sink) MonitorLoad(monitor string, proven bool) {
	if s == nil {
		return
	}
	if proven {
		s.Counters.ProvenLoads.Inc()
	} else {
		s.Counters.GuardedLoads.Inc()
	}
}

// Deployment records the outcome of a whole-deployment admission test
// (kernel.AdmitDeployment): admitted, or rejected because a hook site's
// aggregate certified cost exceeded its budget. Counter-only, like
// MonitorLoad — admissions are configuration events.
func (s *Sink) Deployment(admitted bool) {
	if s == nil {
		return
	}
	if admitted {
		s.Counters.DeployAdmitted.Inc()
	} else {
		s.Counters.DeployRejected.Inc()
	}
}

// HookDispatched charges the wall-clock cost of one completed hook
// dispatch (all callbacks at the site) to the site's latency histogram.
func (s *Sink) HookDispatched(site string, wallNS float64) {
	if s == nil {
		return
	}
	s.hist(s.hookNS, site).Observe(wallNS)
}

// Eval records one monitor evaluation at its trigger time. steps is the
// evaluation's VM instruction count; it doubles as the event's virtual
// duration (1 step = 1ns) so evaluations have width on a timeline. A
// violated evaluation additionally records a violation event.
func (s *Sink) Eval(at Time, monitor string, steps uint64, held bool) {
	if s == nil {
		return
	}
	s.Counters.Evals.Inc()
	s.Counters.VMSteps.Add(steps)
	s.hist(s.evalSteps, monitor).Observe(float64(steps))
	s.rec.Record(Event{At: at, Dur: Time(steps), Kind: KindEval, Subject: monitor, Value: float64(steps)})
	if !held {
		s.Counters.Violations.Inc()
		s.rec.Record(Event{At: at, Kind: KindViolation, Subject: monitor})
	}
}

// ActionsFired records that a violation episode crossed its hysteresis
// threshold and dispatched its actions (the monitor's ActionsFired).
func (s *Sink) ActionsFired(at Time, monitor string) {
	if s == nil {
		return
	}
	s.Counters.ActionsFired.Inc()
}

// Action records one action dispatch reaching its backend. ok reports
// whether the backend (and any injected fault) succeeded.
func (s *Sink) Action(at Time, monitor, action string, attempt int, ok bool) {
	if s == nil {
		return
	}
	s.Counters.ActionDispatches.Inc()
	if !ok {
		s.Counters.ActionErrors.Inc()
	}
	s.rec.Record(Event{At: at, Kind: KindAction, Subject: monitor, Detail: action, Value: float64(attempt)})
}

// ActionRetry records a failed dispatch being scheduled for retry.
func (s *Sink) ActionRetry(at Time, monitor, action string, attempt int) {
	if s == nil {
		return
	}
	s.Counters.Retries.Inc()
	s.rec.Record(Event{At: at, Kind: KindActionRetry, Subject: monitor, Detail: action, Value: float64(attempt)})
}

// DeadLetter records an action exhausting its retries.
func (s *Sink) DeadLetter(at Time, monitor, action string) {
	if s == nil {
		return
	}
	s.Counters.DeadLetters.Inc()
	s.rec.Record(Event{At: at, Kind: KindDeadLetter, Subject: monitor, Detail: action})
}

// Fault records a monitor fault (VM trap, corrupt load, injection).
func (s *Sink) Fault(at Time, monitor, kind string) {
	if s == nil {
		return
	}
	s.Counters.Faults.Inc()
	s.rec.Record(Event{At: at, Kind: KindFault, Subject: monitor, Detail: kind})
}

// FlightWindowTruncated counts one window read the flight ring could
// not cover (EventsSince reported truncation) — the reader fell back
// to counter deltas.
func (s *Sink) FlightWindowTruncated() {
	if s == nil {
		return
	}
	s.Counters.FlightWindowTruncated.Inc()
}

// Transition records a degradation-ladder move: kind must be one of
// KindQuarantine, KindRearm, KindShadowEnter, KindShadowExit.
func (s *Sink) Transition(at Time, monitor string, kind Kind, reason string) {
	if s == nil {
		return
	}
	switch kind {
	case KindQuarantine:
		s.Counters.Quarantines.Inc()
	case KindRearm:
		s.Counters.Rearms.Inc()
	case KindShadowEnter:
		s.Counters.ShadowDemotions.Inc()
	case KindShadowExit:
		s.Counters.ShadowPromotions.Inc()
	}
	s.rec.Record(Event{At: at, Kind: kind, Subject: monitor, Detail: reason})
}

// --- rollout control plane ---------------------------------------------
//
// Rollout events carry the target generation as their Value and record
// on a per-generation lane ("gen<N>"), so a trace of a staged rollout
// shows each generation's shadow/canary/fleet lifetime as its own
// timeline row.

// genLane renders the per-generation trace lane name.
func genLane(gen uint64) string { return fmt.Sprintf("gen%d", gen) }

// RolloutPhase records a staged rollout entering a phase (admitting,
// shadow, canary, ...) for the given candidate generation.
func (s *Sink) RolloutPhase(at Time, gen uint64, phase, detail string) {
	if s == nil {
		return
	}
	d := phase
	if detail != "" {
		d += ": " + detail
	}
	s.rec.Record(Event{At: at, Kind: KindRolloutPhase, Subject: genLane(gen), Detail: d, Value: float64(gen)})
}

// Promotion records a candidate generation going fleet-wide.
func (s *Sink) Promotion(at Time, gen uint64) {
	if s == nil {
		return
	}
	s.Counters.RolloutPromotions.Inc()
	s.rec.Record(Event{At: at, Kind: KindPromotion, Subject: genLane(gen), Value: float64(gen)})
}

// Rollback records a rollout aborting back to the last-good generation.
// gen is the generation rolled back TO (the one that stays active).
func (s *Sink) Rollback(at Time, gen uint64, reason string) {
	if s == nil {
		return
	}
	s.Counters.RolloutRollbacks.Inc()
	s.rec.Record(Event{At: at, Kind: KindRollback, Subject: genLane(gen), Detail: reason, Value: float64(gen)})
}

// AdmitRetry records a transient deployment-admission failure being
// retried by the rollout control plane.
func (s *Sink) AdmitRetry(at Time, gen uint64, attempt int, reason string) {
	if s == nil {
		return
	}
	s.Counters.RolloutAdmitRetries.Inc()
	s.rec.Record(Event{At: at, Kind: KindRolloutPhase, Subject: genLane(gen),
		Detail: fmt.Sprintf("admission retry %d: %s", attempt, reason), Value: float64(gen)})
}

// BreakglassEvent records an operator quarantining (engaged=true) or
// releasing (engaged=false) a guardrail fleet-wide. mode is "shadow" or
// "disable".
func (s *Sink) BreakglassEvent(at Time, guardrail, mode string, engaged bool) {
	if s == nil {
		return
	}
	detail := mode
	if engaged {
		s.Counters.Breakglass.Inc()
	} else {
		s.Counters.BreakglassReleases.Inc()
		detail = "release: " + mode
	}
	s.rec.Record(Event{At: at, Kind: KindBreakglass, Subject: guardrail, Detail: detail})
}

// GCPause records an SSD chip garbage-collection pause beginning at
// start and lasting dur.
func (s *Sink) GCPause(start, dur Time, device string) {
	if s == nil {
		return
	}
	s.Counters.GCPauses.Inc()
	s.rec.Record(Event{At: start, Dur: dur, Kind: KindGCPause, Subject: device})
}

// Failover records a replica leaving (alive=false) or rejoining service.
func (s *Sink) Failover(at Time, device string, alive bool) {
	if s == nil {
		return
	}
	s.Counters.Failovers.Inc()
	v := 0.0
	detail := "down"
	if alive {
		v, detail = 1, "up"
	}
	s.rec.Record(Event{At: at, Kind: KindFailover, Subject: device, Detail: detail, Value: v})
}

// IO records one device I/O completion with its simulated latency.
// Only the histogram and counters are touched — per-I/O ring events
// would evict everything else from the flight recorder.
func (s *Sink) IO(device string, latNS Time, write bool) {
	if s == nil {
		return
	}
	if write {
		s.Counters.IOWrites.Inc()
	} else {
		s.Counters.IOReads.Inc()
	}
	s.hist(s.ioNS, device).Observe(float64(latNS))
}

// StoreLoad counts one feature-store read.
func (s *Sink) StoreLoad() {
	if s == nil {
		return
	}
	s.Counters.StoreLoads.Inc()
}

// StoreSave counts one feature-store write.
func (s *Sink) StoreSave() {
	if s == nil {
		return
	}
	s.Counters.StoreSaves.Inc()
}
