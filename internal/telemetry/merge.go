package telemetry

import "sort"

// Merge folds per-shard telemetry sinks into one fleet-wide view: the
// sharded kernel gives every shard its own Sink so hot-path counter
// adds, histogram observations, and flight-recorder appends never cross
// shard boundaries, and this function pays the aggregation cost once,
// at snapshot time — the per-CPU-map / read-side-merge split eBPF uses
// for its own statistics.
//
// The returned sink is freshly built from the inputs:
//
//   - Counters merge stripe-wise (Counter.Merge), so the result remains
//     mergeable and exact once the shard writers have quiesced — which
//     at a pool barrier they have.
//   - Histograms merge bucket-wise per name (Hist.Merge); a name
//     present in several shards folds into one histogram.
//   - Flight events interleave in (At, shard index) order: simulated
//     timestamps order events across shards, and the shard index breaks
//     same-instant ties deterministically. Each source's own record
//     order is preserved within a timestamp, and the merged ring
//     assigns fresh sequence numbers.
//
// Merge reads the sources without disturbing them; it is safe to call
// repeatedly (each call builds an independent sink) but should run at a
// barrier or after the run, not concurrently with shard hot paths, if
// an exact snapshot is wanted. Nil sinks in the argument list are
// skipped. eventCap bounds the merged flight ring; if <= 0 it defaults
// to the sum of the sources' capacities, so a merge of full rings
// retains every event.
func Merge(clock func() Time, eventCap int, sinks ...*Sink) *Sink {
	live := make([]*Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	if eventCap <= 0 {
		eventCap = 1
		for _, s := range live {
			eventCap += s.rec.Cap()
		}
	}
	out := New(clock, eventCap)

	for _, s := range live {
		dst := out.Counters.byName()
		for i, src := range s.Counters.byName() {
			dst[i].ctr.Merge(src.ctr)
		}
		mergeHistMap(out, out.hookNS, s, s.hookNS)
		mergeHistMap(out, out.evalSteps, s, s.evalSteps)
		mergeHistMap(out, out.ioNS, s, s.ioNS)
	}

	// Interleave the retained flight events. Within one source, events
	// are already in record order with non-decreasing At; the stable
	// sort keyed on At therefore only interleaves across sources, with
	// the source (shard) index as the deterministic tie-break.
	type tagged struct {
		src int
		e   Event
	}
	var all []tagged
	for i, s := range live {
		for _, e := range s.rec.Events() {
			all = append(all, tagged{src: i, e: e})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].e.At != all[j].e.At {
			return all[i].e.At < all[j].e.At
		}
		return all[i].src < all[j].src
	})
	for _, t := range all {
		t.e.Seq = 0 // reassigned by the merged ring
		out.rec.Record(t.e)
	}
	return out
}

// mergeHistMap folds every named histogram in src's map into the
// matching (created-on-demand) histogram in dst's map. Both maps are
// addressed through their owning sinks so the per-sink mu guards the
// map reads; the per-Hist locks guard the bucket merges.
func mergeHistMap(dst *Sink, dstMap map[string]*Hist, src *Sink, srcMap map[string]*Hist) {
	src.mu.RLock()
	names := make([]string, 0, len(srcMap))
	for name := range srcMap {
		names = append(names, name)
	}
	src.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		src.mu.RLock()
		h := srcMap[name]
		src.mu.RUnlock()
		dst.hist(dstMap, name).Merge(h)
	}
}
