// Package memtier simulates tiered main memory (fast DRAM + slow NVM,
// as in Kleio/IDT-style systems) with pluggable page-placement policies:
// a frequency heuristic baseline and a learned regression policy whose
// raw output selects the target tier. Because the learned policy's head
// is a regression rounded to a tier index, out-of-distribution inputs
// push it outside the legal tier range — exactly the illegal-output
// failure mode the paper's P3 property ("ensure outputs are within legal
// bounds") guards against.
package memtier

import (
	"fmt"
	"math"

	"guardrails/internal/kernel"
	"guardrails/internal/nn"
)

// Tier indices. DRAM is tier 0 (fast), NVM tier 1 (slow).
const (
	TierDRAM = 0
	TierNVM  = 1
	// NumTiers is the count of legal tiers.
	NumTiers = 2
)

// Access latencies per tier, plus the fault penalty for servicing a page
// that a broken placement decision left unmapped.
const (
	LatencyDRAM = 100 * kernel.Microsecond / 1000 // 100ns
	LatencyNVM  = 400 * kernel.Microsecond / 1000 // 400ns
	// FaultPenalty models the slow path taken when a placement decision
	// was illegal and the page had to be recovered by the fallback path.
	FaultPenalty = 2 * kernel.Millisecond
)

// PageStats is per-page metadata the policies see.
type PageStats struct {
	// Accesses counts total touches.
	Accesses uint64
	// LastAccess is the sequence number of the latest touch.
	LastAccess uint64
	// Tier is the page's current tier.
	Tier int
}

// Decision is a placement policy's output: the target tier for the page
// (possibly illegal for a misbehaving learned policy).
type Decision struct {
	Tier int
}

// Policy decides page placement on each access.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// Place returns the desired tier for the page given its stats and
	// the current DRAM pressure in [0, 1].
	Place(p PageStats, dramPressure float64) Decision
}

// FrequencyPolicy is the heuristic baseline: hot pages (recently and
// frequently touched) go to DRAM, others to NVM. It never emits an
// illegal tier.
type FrequencyPolicy struct {
	// HotThreshold is the access count above which a page is DRAM-worthy.
	HotThreshold uint64
}

// Name identifies the policy.
func (p *FrequencyPolicy) Name() string { return "frequency" }

// Place implements Policy.
func (p *FrequencyPolicy) Place(s PageStats, dramPressure float64) Decision {
	thr := p.HotThreshold
	if thr == 0 {
		thr = 4
	}
	// Near-full DRAM requires proportionally hotter pages; below 75%
	// occupancy the threshold is flat so placements do not flap.
	over := dramPressure - 0.75
	if over < 0 {
		over = 0
	}
	eff := float64(thr) * (1 + 12*over)
	if float64(s.Accesses) >= eff {
		return Decision{Tier: TierDRAM}
	}
	return Decision{Tier: TierNVM}
}

// LearnedPolicy scores pages with a regression MLP whose rounded output
// is the target tier. Inputs far outside the training distribution can
// produce outputs < 0 or > 1, i.e. illegal tiers.
type LearnedPolicy struct {
	net *nn.Network
	seq uint64
}

// NewLearnedPolicy returns an untrained learned placement policy.
func NewLearnedPolicy(seed int64) *LearnedPolicy {
	return &LearnedPolicy{
		net: nn.New(nn.Config{
			Layers: []int{3, 8, 1},
			Hidden: nn.ReLU,
			Output: nn.Linear, // regression head: rounding can go out of range
			Loss:   nn.MSE,
			Seed:   seed,
		}),
	}
}

// Name identifies the policy.
func (p *LearnedPolicy) Name() string { return "learned" }

func (p *LearnedPolicy) features(s PageStats, dramPressure float64, now uint64) []float64 {
	age := float64(now) - float64(s.LastAccess)
	return []float64{
		math.Log2(float64(s.Accesses) + 1),
		math.Log2(age + 1),
		dramPressure,
	}
}

// Place implements Policy. The raw regression output is rounded to a
// tier index without clamping — validating it is the guardrail's job,
// which is the point of the P3 experiment.
func (p *LearnedPolicy) Place(s PageStats, dramPressure float64) Decision {
	p.seq++
	out := p.net.Forward(p.features(s, dramPressure, p.seq))[0]
	return Decision{Tier: int(math.Round(out))}
}

// Train fits the policy to imitate a teacher's decisions on the given
// page populations (slices of PageStats with pressures). Teacher labels
// are tier indices. All rows are evaluated at a common logical "now"
// (just past the largest LastAccess), so the age feature spans a wide
// range during training instead of being a constant the network never
// learned to handle.
func (p *LearnedPolicy) Train(pages []PageStats, pressures []float64, labels []int) (float64, error) {
	if len(pages) == 0 || len(pages) != len(pressures) || len(pages) != len(labels) {
		return 0, fmt.Errorf("memtier: inconsistent training set sizes")
	}
	var now uint64
	for _, s := range pages {
		if s.LastAccess >= now {
			now = s.LastAccess + 1
		}
	}
	inputs := make([][]float64, len(pages))
	targets := make([][]float64, len(pages))
	for i := range pages {
		inputs[i] = p.features(pages[i], pressures[i], now)
		targets[i] = []float64{float64(labels[i])}
	}
	return p.net.Train(inputs, targets, nn.TrainOpts{
		LearningRate: 0.02, Momentum: 0.9, BatchSize: 32, Epochs: 20, ShuffleSeed: 5,
	})
}
