package memtier

import (
	"math"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/trace"
)

func newMgr(t *testing.T, capacity int, p Policy) (*Manager, *featurestore.Store, *kernel.Kernel) {
	t.Helper()
	k := kernel.New()
	st := featurestore.New()
	m, err := NewManager(k, st, capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return m, st, k
}

func TestManagerValidation(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	if _, err := NewManager(k, st, 0, &FrequencyPolicy{}); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := NewManager(k, st, 4, nil); err == nil {
		t.Error("nil policy should error")
	}
}

func TestFrequencyPolicyPromotesHotPages(t *testing.T) {
	m, _, _ := newMgr(t, 8, &FrequencyPolicy{HotThreshold: 4})
	// Touch page 1 five times: it crosses the hot threshold.
	for i := 0; i < 5; i++ {
		m.Access(1)
	}
	if m.pages[1].Tier != TierDRAM {
		t.Error("hot page not promoted")
	}
	// Cold page stays in NVM.
	m.Access(2)
	if m.pages[2].Tier != TierNVM {
		t.Error("cold page promoted")
	}
	used, capacity := m.DRAMUsage()
	if used != 1 || capacity != 8 {
		t.Errorf("usage = %d/%d", used, capacity)
	}
	if m.Stats().Promotions != 1 {
		t.Errorf("promotions = %d", m.Stats().Promotions)
	}
}

func TestDRAMCapacityDemotesColdest(t *testing.T) {
	m, _, _ := newMgr(t, 2, &FrequencyPolicy{HotThreshold: 1})
	// Three pages all hot (hot enough to clear the full-pressure
	// threshold): capacity 2 forces a demotion.
	for page := uint64(1); page <= 3; page++ {
		for i := 0; i < 5; i++ {
			m.Access(page)
		}
	}
	used, _ := m.DRAMUsage()
	if used != 2 {
		t.Errorf("DRAM used = %d, want 2", used)
	}
	// Page 1 is the coldest (accessed earliest); it was demoted.
	if m.pages[1].Tier != TierNVM {
		t.Error("coldest page not demoted")
	}
	if m.Stats().Demotions == 0 {
		t.Error("no demotion recorded")
	}
}

func TestTierLatencies(t *testing.T) {
	m, _, _ := newMgr(t, 4, &FrequencyPolicy{HotThreshold: 2})
	lat := m.Access(1) // cold, NVM
	if lat != LatencyNVM {
		t.Errorf("NVM latency = %v", lat)
	}
	m.Access(1)
	lat = m.Access(1) // now hot, DRAM
	if lat != LatencyDRAM {
		t.Errorf("DRAM latency = %v", lat)
	}
}

// illegalPolicy always returns an out-of-range tier.
type illegalPolicy struct{ tier int }

func (p *illegalPolicy) Name() string                      { return "illegal" }
func (p *illegalPolicy) Place(PageStats, float64) Decision { return Decision{Tier: p.tier} }

func TestIllegalDecisionsRecoveredAndCounted(t *testing.T) {
	m, st, k := newMgr(t, 4, &illegalPolicy{tier: 7})
	var hookTiers []float64
	k.Attach(HookPlacement, func(_ *kernel.Kernel, _ string, args []float64) {
		hookTiers = append(hookTiers, args[0])
	})
	lat := m.Access(1)
	if lat < FaultPenalty {
		t.Errorf("illegal decision latency = %v, want >= fault penalty", lat)
	}
	if m.Stats().IllegalDecisions != 1 {
		t.Errorf("illegal = %d", m.Stats().IllegalDecisions)
	}
	// Page keeps its current (NVM) placement.
	if m.pages[1].Tier != TierNVM {
		t.Error("illegal decision moved the page")
	}
	if st.Load(KeyIllegalRate) != 1.0 {
		t.Errorf("illegal rate = %v", st.Load(KeyIllegalRate))
	}
	if len(hookTiers) != 1 || hookTiers[0] != 7 {
		t.Errorf("hook args = %v", hookTiers)
	}
	// Negative tiers too.
	m.SetPolicy(&illegalPolicy{tier: -1})
	m.Access(2)
	if m.Stats().IllegalDecisions != 2 {
		t.Error("negative tier not flagged")
	}
}

func TestIllegalRateWindowDecays(t *testing.T) {
	m, st, _ := newMgr(t, 4, &illegalPolicy{tier: 9})
	m.Access(1)
	if st.Load(KeyIllegalRate) != 1 {
		t.Fatal("rate should be 1 after one illegal decision")
	}
	m.SetPolicy(&FrequencyPolicy{})
	for i := uint64(0); i < 255; i++ {
		m.Access(i + 10)
	}
	rate := st.Load(KeyIllegalRate)
	if math.Abs(rate-1.0/256.0) > 1e-9 {
		t.Errorf("rate = %v, want 1/256", rate)
	}
}

func TestLearnedPolicyImitatesTeacher(t *testing.T) {
	teacher := &FrequencyPolicy{HotThreshold: 4}
	rng := trace.NewRand(31)
	var pages []PageStats
	var pressures []float64
	var labels []int
	for i := 0; i < 3000; i++ {
		s := PageStats{
			Accesses:   uint64(rng.Intn(32)) + 1,
			LastAccess: uint64(i),
		}
		pr := rng.Float64() * 0.5
		pages = append(pages, s)
		pressures = append(pressures, pr)
		labels = append(labels, teacher.Place(s, pr).Tier)
	}
	lp := NewLearnedPolicy(32)
	if _, err := lp.Train(pages, pressures, labels); err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range pages {
		d := lp.Place(pages[i], pressures[i])
		if d.Tier == labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(pages)); frac < 0.85 {
		t.Errorf("imitation accuracy = %v", frac)
	}
}

func TestLearnedPolicyEmitsIllegalOutOfDistribution(t *testing.T) {
	// Train only on modest access counts and low pressure, then feed
	// extreme inputs: the unclamped regression head must eventually
	// leave the legal range.
	teacher := &FrequencyPolicy{HotThreshold: 4}
	rng := trace.NewRand(33)
	var pages []PageStats
	var pressures []float64
	var labels []int
	for i := 0; i < 2000; i++ {
		s := PageStats{Accesses: uint64(rng.Intn(8)) + 1, LastAccess: uint64(i)}
		pages = append(pages, s)
		pressures = append(pressures, rng.Float64()*0.2)
		labels = append(labels, teacher.Place(s, 0.1).Tier)
	}
	lp := NewLearnedPolicy(34)
	if _, err := lp.Train(pages, pressures, labels); err != nil {
		t.Fatal(err)
	}
	illegal := 0
	for i := 0; i < 500; i++ {
		s := PageStats{Accesses: uint64(1 << (20 + i%10)), LastAccess: 1}
		d := lp.Place(s, 5.0+float64(i)) // absurd pressure: far OOD
		if d.Tier < 0 || d.Tier >= NumTiers {
			illegal++
		}
	}
	if illegal == 0 {
		t.Error("no illegal outputs under extreme OOD inputs (P3 failure mode absent)")
	}
}

func TestLearnedTrainValidation(t *testing.T) {
	lp := NewLearnedPolicy(1)
	if _, err := lp.Train(nil, nil, nil); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := lp.Train([]PageStats{{}}, []float64{0.1}, nil); err == nil {
		t.Error("mismatched sizes should error")
	}
}

func TestPolicyNames(t *testing.T) {
	if (&FrequencyPolicy{}).Name() != "frequency" || NewLearnedPolicy(1).Name() != "learned" {
		t.Error("policy names wrong")
	}
}
