package memtier

import (
	"fmt"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

// Feature-store keys and hook sites the manager publishes.
const (
	// KeyIllegalRate is the windowed fraction of placement decisions
	// outside the legal tier range — the P3 signal.
	KeyIllegalRate = "mem_illegal_rate"
	// KeyFaultLatencyMA is the moving average page access latency in ns.
	KeyFaultLatencyMA = "mem_access_latency_ns"
	// HookPlacement fires on every placement decision with the decided
	// tier as its argument (possibly illegal).
	HookPlacement = "mem_place"
)

// ManagerStats aggregates manager activity.
type ManagerStats struct {
	Accesses         uint64
	DRAMHits         uint64
	NVMHits          uint64
	IllegalDecisions uint64
	Promotions       uint64
	Demotions        uint64
	TotalLatency     kernel.Time
}

// Manager is the tiered-memory manager: it tracks page residency,
// consults the placement policy on every access, validates and applies
// its decisions, and publishes monitoring signals. Illegal decisions
// (tier out of range) are recovered by the fallback rule (keep current
// placement) at FaultPenalty cost.
type Manager struct {
	k     *kernel.Kernel
	store *featurestore.Store

	dramCapacity int
	pages        map[uint64]*PageStats
	dramCount    int
	policy       Policy
	seq          uint64

	illegalWindow []bool
	illegalHead   int
	illegalFill   int

	illegalID featurestore.ID
	latencyID featurestore.ID

	stats ManagerStats
}

// NewManager returns a manager with the given DRAM page capacity (NVM is
// unbounded) and placement policy.
func NewManager(k *kernel.Kernel, store *featurestore.Store, dramCapacity int, policy Policy) (*Manager, error) {
	if dramCapacity <= 0 {
		return nil, fmt.Errorf("memtier: DRAM capacity must be positive")
	}
	if policy == nil {
		return nil, fmt.Errorf("memtier: nil policy")
	}
	return &Manager{
		k: k, store: store,
		dramCapacity:  dramCapacity,
		pages:         make(map[uint64]*PageStats),
		policy:        policy,
		illegalWindow: make([]bool, 256),
		illegalID:     store.Intern(KeyIllegalRate),
		latencyID:     store.Intern(KeyFaultLatencyMA),
	}, nil
}

// SetPolicy swaps the placement policy (REPLACE action target).
func (m *Manager) SetPolicy(p Policy) { m.policy = p }

// Policy returns the active policy.
func (m *Manager) Policy() Policy { return m.policy }

// Stats returns a copy of the counters.
func (m *Manager) Stats() ManagerStats { return m.stats }

// DRAMUsage returns resident DRAM pages and capacity.
func (m *Manager) DRAMUsage() (used, capacity int) { return m.dramCount, m.dramCapacity }

func (m *Manager) pressure() float64 {
	return float64(m.dramCount) / float64(m.dramCapacity)
}

func (m *Manager) recordIllegal(illegal bool) {
	m.illegalWindow[m.illegalHead] = illegal
	m.illegalHead = (m.illegalHead + 1) % len(m.illegalWindow)
	if m.illegalFill < len(m.illegalWindow) {
		m.illegalFill++
	}
	count := 0
	for i := 0; i < m.illegalFill; i++ {
		if m.illegalWindow[i] {
			count++
		}
	}
	m.store.SaveID(m.illegalID, float64(count)/float64(m.illegalFill))
}

// Access touches a page: consults the policy, validates its decision,
// migrates the page if needed, and returns the access latency.
func (m *Manager) Access(page uint64) kernel.Time {
	m.seq++
	m.stats.Accesses++
	s, ok := m.pages[page]
	if !ok {
		// Cold page: starts in NVM.
		s = &PageStats{Tier: TierNVM}
		m.pages[page] = s
	}
	s.Accesses++
	s.LastAccess = m.seq

	dec := m.policy.Place(*s, m.pressure())
	m.k.Fire(HookPlacement, float64(dec.Tier))

	var lat kernel.Time
	illegal := dec.Tier < 0 || dec.Tier >= NumTiers
	m.recordIllegal(illegal)
	if illegal {
		// Fallback rule: keep current placement, pay the recovery cost.
		m.stats.IllegalDecisions++
		lat = FaultPenalty + m.tierLatency(s.Tier)
	} else {
		m.applyPlacement(s, dec.Tier)
		lat = m.tierLatency(s.Tier)
	}

	m.stats.TotalLatency += lat
	if s.Tier == TierDRAM {
		m.stats.DRAMHits++
	} else {
		m.stats.NVMHits++
	}
	// EWMA-style published latency (ns).
	const alpha = 0.02
	prev := m.store.LoadID(m.latencyID)
	if prev == 0 {
		prev = float64(lat)
	}
	m.store.SaveID(m.latencyID, prev+alpha*(float64(lat)-prev))
	return lat
}

func (m *Manager) applyPlacement(s *PageStats, want int) {
	if want == s.Tier {
		return
	}
	if want == TierDRAM {
		if m.dramCount >= m.dramCapacity {
			// DRAM full: demote the coldest DRAM page first.
			if victim := m.coldestDRAM(); victim != nil {
				victim.Tier = TierNVM
				m.dramCount--
				m.stats.Demotions++
			} else {
				return // nothing to demote; keep page where it is
			}
		}
		s.Tier = TierDRAM
		m.dramCount++
		m.stats.Promotions++
		return
	}
	// Demotion to NVM.
	s.Tier = TierNVM
	m.dramCount--
	m.stats.Demotions++
}

func (m *Manager) coldestDRAM() *PageStats {
	var coldest *PageStats
	for _, s := range m.pages {
		if s.Tier != TierDRAM {
			continue
		}
		if coldest == nil || s.LastAccess < coldest.LastAccess {
			coldest = s
		}
	}
	return coldest
}

func (m *Manager) tierLatency(tier int) kernel.Time {
	if tier == TierDRAM {
		return LatencyDRAM
	}
	return LatencyNVM
}
