package properties

import (
	"fmt"
	"math"
	"sync"

	"guardrails/internal/featurestore"
	"guardrails/internal/stats"
)

// RobustnessMonitor implements P2 (robust decisions): it tracks the
// coefficient of variation of a policy's outputs over a sliding window
// and publishes it. A policy whose inputs are stable but whose outputs
// jitter violates the "similar inputs yield similar outputs" property.
type RobustnessMonitor struct {
	store *featurestore.Store
	key   featurestore.ID
	win   *stats.Window
}

// RobustnessKey is the key convention: <policy>_output_cov.
func RobustnessKey(policy string) string { return policy + "_output_cov" }

// NewRobustnessMonitor returns a monitor windowing the last n outputs.
func NewRobustnessMonitor(store *featurestore.Store, policy string, n int) *RobustnessMonitor {
	return &RobustnessMonitor{
		store: store,
		key:   store.Intern(RobustnessKey(policy)),
		win:   stats.NewWindow(n),
	}
}

// Observe records one policy output and republishes the windowed CoV.
func (m *RobustnessMonitor) Observe(output float64) {
	m.win.Add(output)
	if m.win.Len() < 2 || m.win.Mean() == 0 {
		return
	}
	mean := m.win.Mean()
	var sq float64
	for _, v := range m.win.Values() {
		d := v - mean
		sq += d * d
	}
	cov := math.Sqrt(sq/float64(m.win.Len()-1)) / math.Abs(mean)
	m.store.SaveID(m.key, cov)
}

// Spec emits the P2 guardrail: bounded output CoV; on violation fall
// back to the robust policy (Figure 1 pairs P2 with A3/A2).
func (m *RobustnessMonitor) Spec(name, policy, fallback string, maxCoV, intervalNS float64) string {
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", RobustnessKey(policy), maxCoV)},
		[]string{fmt.Sprintf("REPLACE(%s, %s)", policy, fallback)},
	)
}

// BoundsChecker implements P3 (out-of-bounds outputs): it validates each
// decision against [lo, hi] and publishes the windowed violation rate.
type BoundsChecker struct {
	store  *featurestore.Store
	key    featurestore.ID
	lo, hi float64
	win    *stats.RateWindow
}

// BoundsKey is the key convention: <policy>_oob_rate.
func BoundsKey(policy string) string { return policy + "_oob_rate" }

// NewBoundsChecker returns a checker for decisions legal in [lo, hi].
func NewBoundsChecker(store *featurestore.Store, policy string, lo, hi float64, window int) *BoundsChecker {
	return &BoundsChecker{
		store: store,
		key:   store.Intern(BoundsKey(policy)),
		lo:    lo, hi: hi,
		win: stats.NewRateWindow(window),
	}
}

// Observe validates one decision, publishes the updated rate, and
// returns whether the decision was legal.
func (c *BoundsChecker) Observe(decision float64) bool {
	legal := decision >= c.lo && decision <= c.hi
	c.win.Add(!legal)
	c.store.SaveID(c.key, c.win.Rate())
	return legal
}

// Spec emits the P3 guardrail: zero tolerance beyond eps for illegal
// outputs; on violation swap in the fallback (Figure 1 pairs P3 with
// A2/A3).
func (c *BoundsChecker) Spec(name, policy, fallback string, eps, intervalNS float64) string {
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", BoundsKey(policy), eps)},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", BoundsKey(policy)),
			fmt.Sprintf("REPLACE(%s, %s)", policy, fallback),
		},
	)
}

// RegretMonitor implements P4 (decision quality): it compares the
// learned policy's windowed reward against a shadow baseline evaluated
// on the same decisions and publishes the regret (baseline − learned).
// Positive regret means the learned policy is losing to the baseline.
type RegretMonitor struct {
	store    *featurestore.Store
	key      featurestore.ID
	learned  *stats.Window
	baseline *stats.Window
}

// RegretKey is the key convention: <policy>_regret.
func RegretKey(policy string) string { return policy + "_regret" }

// NewRegretMonitor returns a monitor windowing the last n paired rewards.
func NewRegretMonitor(store *featurestore.Store, policy string, n int) *RegretMonitor {
	return &RegretMonitor{
		store:    store,
		key:      store.Intern(RegretKey(policy)),
		learned:  stats.NewWindow(n),
		baseline: stats.NewWindow(n),
	}
}

// Observe records one paired outcome (e.g. hit=1/miss=0 for the learned
// cache and its shadow baseline on the same access).
func (m *RegretMonitor) Observe(learnedReward, baselineReward float64) {
	m.learned.Add(learnedReward)
	m.baseline.Add(baselineReward)
	m.store.SaveID(m.key, m.baseline.Mean()-m.learned.Mean())
}

// Spec emits the P4 guardrail: regret against the baseline must stay
// under maxRegret; on violation report and fall back (Figure 1 pairs P4
// with A1/A2).
func (m *RegretMonitor) Spec(name, policy, fallback string, maxRegret, intervalNS float64) string {
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", RegretKey(policy), maxRegret)},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", RegretKey(policy)),
			fmt.Sprintf("REPLACE(%s, %s)", policy, fallback),
		},
	)
}

// OverheadMonitor implements P5 (decision overhead): it accumulates the
// inference cost and the benefit attributable to each learned decision
// and publishes the cost/benefit ratio. A ratio above 1 means inference
// costs more than the policy saves.
type OverheadMonitor struct {
	store *featurestore.Store
	key   featurestore.ID
	cost  *stats.Window
	gain  *stats.Window
}

// OverheadKey is the key convention: <policy>_overhead_ratio.
func OverheadKey(policy string) string { return policy + "_overhead_ratio" }

// NewOverheadMonitor returns a monitor windowing the last n decisions.
func NewOverheadMonitor(store *featurestore.Store, policy string, n int) *OverheadMonitor {
	return &OverheadMonitor{
		store: store,
		key:   store.Intern(OverheadKey(policy)),
		cost:  stats.NewWindow(n),
		gain:  stats.NewWindow(n),
	}
}

// Observe records one decision's inference cost and realized benefit
// (both in the same unit, e.g. nanoseconds saved).
func (m *OverheadMonitor) Observe(costNS, gainNS float64) {
	m.cost.Add(costNS)
	m.gain.Add(gainNS)
	g := m.gain.Mean()
	if g <= 0 {
		// No benefit: publish a sentinel ratio well above any threshold.
		m.store.SaveID(m.key, 1e9)
		return
	}
	m.store.SaveID(m.key, m.cost.Mean()/g)
}

// Spec emits the P5 guardrail: inference must pay for itself; on
// violation disable the learned policy via its enable knob.
func (m *OverheadMonitor) Spec(name, policy, enableKey string, maxRatio, intervalNS float64) string {
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", OverheadKey(policy), maxRatio)},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", OverheadKey(policy)),
			fmt.Sprintf("SAVE(%s, false)", enableKey),
		},
	)
}

// FairnessMonitor implements P6 (fairness and liveness): it tracks
// cumulative resource allocations per entity and publishes Jain's
// fairness index, plus the maximum time any entity has gone without an
// allocation (the starvation signal).
type FairnessMonitor struct {
	store   *featurestore.Store
	jainKey featurestore.ID
	waitKey featurestore.ID

	mu       sync.Mutex
	alloc    map[string]float64
	lastSeen map[string]float64
}

// FairnessKeys returns the key conventions: <domain>_jain and
// <domain>_max_wait.
func FairnessKeys(domain string) (jain, maxWait string) {
	return domain + "_jain", domain + "_max_wait"
}

// NewFairnessMonitor returns a fairness monitor for a resource domain.
func NewFairnessMonitor(store *featurestore.Store, domain string) *FairnessMonitor {
	jainKey, waitKey := FairnessKeys(domain)
	return &FairnessMonitor{
		store:    store,
		jainKey:  store.Intern(jainKey),
		waitKey:  store.Intern(waitKey),
		alloc:    make(map[string]float64),
		lastSeen: make(map[string]float64),
	}
}

// Observe records an allocation of amount to entity at logical time now
// and republishes both signals. Entities must be Observed once (amount
// may be 0) to be tracked for starvation.
func (m *FairnessMonitor) Observe(entity string, amount, now float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alloc[entity] += amount
	if amount > 0 {
		m.lastSeen[entity] = now
	} else if _, ok := m.lastSeen[entity]; !ok {
		m.lastSeen[entity] = now
	}
	allocs := make([]float64, 0, len(m.alloc))
	for _, v := range m.alloc {
		allocs = append(allocs, v)
	}
	m.store.SaveID(m.jainKey, stats.JainIndex(allocs))
	var worst float64
	for _, seen := range m.lastSeen {
		if w := now - seen; w > worst {
			worst = w
		}
	}
	m.store.SaveID(m.waitKey, worst)
}

// Spec emits the P6 guardrail: Jain index above minJain and no entity
// starved longer than maxWait; on violation deprioritize the offending
// group (Figure 1 pairs P6 with A4).
func (m *FairnessMonitor) Spec(name, domain, victimGroup string, minJain, maxWait, intervalNS float64) string {
	jainKey, waitKey := FairnessKeys(domain)
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{
			fmt.Sprintf("LOAD(%s) >= %g", jainKey, minJain),
			fmt.Sprintf("LOAD(%s) <= %g", waitKey, maxWait),
		},
		[]string{fmt.Sprintf("DEPRIORITIZE(%s)", victimGroup)},
	)
}
