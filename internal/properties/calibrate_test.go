package properties

import (
	"math/rand"
	"strings"
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/monitor"
)

func TestCalibratorValidation(t *testing.T) {
	cases := []struct {
		q, margin float64
		n         int
	}{{0, 1.5, 100}, {1, 1.5, 100}, {0.99, 0, 100}, {0.99, 1.5, 5}}
	for _, c := range cases {
		if _, err := NewCalibrator(c.q, c.margin, c.n); err == nil {
			t.Errorf("q=%v margin=%v n=%d should be rejected", c.q, c.margin, c.n)
		}
	}
}

func TestCalibratorProposesQuantileThreshold(t *testing.T) {
	c, err := NewCalibrator(0.99, 1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ready() {
		t.Fatal("fresh calibrator claims readiness")
	}
	if _, err := c.Threshold(); err == nil {
		t.Fatal("unready threshold should error")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		c.Observe(rng.ExpFloat64() * 10) // healthy signal, mean 10
	}
	if !c.Ready() || c.Samples() != 20000 {
		t.Fatal("not ready after samples")
	}
	thr, err := c.Threshold()
	if err != nil {
		t.Fatal(err)
	}
	// Exponential(10) p99 ≈ 46; ×1.5 ≈ 69.
	if thr < 55 || thr > 85 {
		t.Errorf("threshold = %v, want ~69", thr)
	}
}

func TestCalibratorTightenedSpecCompiles(t *testing.T) {
	c, err := NewCalibrator(0.95, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(float64(i % 10))
	}
	src, err := c.TightenedSpec("lat-bound", "page_fault_latency_ms", 1e9,
		[]string{"REPORT(LOAD(page_fault_latency_ms))"})
	if err != nil {
		t.Fatal(err)
	}
	mustCompile(t, src)
	if !strings.Contains(src, "page_fault_latency_ms") {
		t.Errorf("spec missing key:\n%s", src)
	}
}

// TestRelaxThenTightenFlow exercises the full §3.3 story: deploy a
// deliberately loose guardrail, calibrate on healthy behaviour, then
// hot-update to the tightened threshold — which catches a regression the
// loose version missed.
func TestRelaxThenTightenFlow(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	rt := monitor.New(k, st)

	// Relaxed: absurdly high bound (nothing to calibrate against yet).
	loose := BuildSpec("lat-bound",
		[]string{TimerTrigger(float64(100 * kernel.Millisecond))},
		[]string{"LOAD(latency_ms) <= 1e9"},
		[]string{"SAVE(alarm, 1)"},
	)
	if _, err := rt.LoadSource(loose, monitor.Options{}); err != nil {
		t.Fatal(err)
	}

	cal, err := NewCalibrator(0.99, 1.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Healthy phase: latency ~N(10, 2) clipped positive.
	k.Every(0, 5*kernel.Millisecond, 5*kernel.Second, func(kernel.Time) {
		v := 10 + rng.NormFloat64()*2
		if v < 0 {
			v = 0
		}
		st.Save("latency_ms", v)
		cal.Observe(v)
	})
	k.RunUntil(5 * kernel.Second)
	if st.Load("alarm") != 0 {
		t.Fatal("loose guardrail fired during healthy phase")
	}
	if !cal.Ready() {
		t.Fatal("calibrator not ready")
	}

	tightened, err := cal.TightenedSpec("lat-bound", "latency_ms",
		float64(100*kernel.Millisecond), []string{"SAVE(alarm, 1)"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.UpdateSource(tightened, monitor.Options{}); err != nil {
		t.Fatal(err)
	}

	// Mild regression: latency doubles to ~20ms — under the loose 1e9
	// bound, over the calibrated ~22... make it 40 to clear the margin.
	k.Every(5*kernel.Second, 5*kernel.Millisecond, 8*kernel.Second, func(kernel.Time) {
		st.Save("latency_ms", 40+rng.NormFloat64()*2)
	})
	k.RunUntil(8 * kernel.Second)
	if st.Load("alarm") != 1 {
		thr, _ := cal.Threshold()
		t.Errorf("tightened guardrail (thr=%v) missed the regression", thr)
	}
}
