package properties

import (
	"math/rand"
	"strings"
	"testing"

	"guardrails/internal/compile"
	"guardrails/internal/featurestore"
	"guardrails/internal/spec"
	"guardrails/internal/spec/vet"
)

// mustCompile asserts that generated spec text goes through the real
// parser, checker, and compiler — at both optimization levels, so the
// library-generated P1–P6 guardrails keep working whichever way the
// operator builds them — with the abstract interpreter proving every
// emitted program trap-free, and that the spec lints clean (no
// warning-severity vet diagnostics).
func mustCompile(t *testing.T, src string) {
	t.Helper()
	unopt, err := compile.SourceWith(src, compile.Options{Level: 0})
	if err != nil {
		t.Fatalf("generated spec does not compile at -O0: %v\n%s", err, src)
	}
	opt, err := compile.SourceWith(src, compile.Options{Level: 1})
	if err != nil {
		t.Fatalf("generated spec does not compile at -O1: %v\n%s", err, src)
	}
	for i := range opt {
		if o, u := len(opt[i].Program.Code), len(unopt[i].Program.Code); o > u {
			t.Errorf("optimization grew %q from %d to %d insns\n%s",
				opt[i].Name, u, o, opt[i].Program)
		}
	}
	for _, cs := range [][]*compile.Compiled{unopt, opt} {
		for _, c := range cs {
			m := c.Program.Meta
			if !m.TrapFree || m.MaxSteps <= 0 {
				t.Errorf("%q at -O%d carries no trap-freedom proof: %+v",
					c.Name, m.OptLevel, m)
			}
		}
	}
	f, err := spec.Parse(src)
	if err != nil {
		t.Fatalf("reparse for vet: %v", err)
	}
	if err := spec.Check(f); err != nil {
		t.Fatalf("recheck for vet: %v", err)
	}
	for _, d := range vet.File(f) {
		if d.Severity == vet.Warn {
			t.Errorf("generated spec does not lint clean: %s\n%s", d, src)
		}
	}
}

func TestBuildSpecCompiles(t *testing.T) {
	src := BuildSpec("multi-rule",
		[]string{TimerTrigger(1e9), FunctionTrigger("io_submit")},
		[]string{"LOAD(a) <= 1", "LOAD(b) >= 0"},
		[]string{"REPORT(LOAD(a))", "SAVE(k, 0)"},
	)
	mustCompile(t, src)
	if !strings.Contains(src, "TIMER(start_time, 1e+09)") {
		t.Errorf("trigger rendering: %s", src)
	}
}

func TestDriftDetectorDetectsShift(t *testing.T) {
	st := featurestore.New()
	d, err := NewDriftDetector(st, "io_lat", 0, 100, 20, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		d.AddReference(rng.NormFloat64()*10 + 30)
	}
	// In-distribution batch: low PSI.
	for i := 0; i < 500; i++ {
		d.Observe(rng.NormFloat64()*10 + 30)
	}
	if psi := st.Load(DriftKey("io_lat")); psi > 0.1 {
		t.Errorf("in-distribution PSI = %v", psi)
	}
	// Shifted batch: high PSI.
	for i := 0; i < 500; i++ {
		d.Observe(rng.NormFloat64()*10 + 70)
	}
	if psi := st.Load(DriftKey("io_lat")); psi < 0.25 {
		t.Errorf("shifted PSI = %v, want > 0.25", psi)
	}
	// Window resets: going back in distribution recovers.
	for i := 0; i < 500; i++ {
		d.Observe(rng.NormFloat64()*10 + 30)
	}
	if psi := st.Load(DriftKey("io_lat")); psi > 0.1 {
		t.Errorf("recovered PSI = %v", psi)
	}
	mustCompile(t, d.Spec("p1-drift", "io_lat", "io_model", 0.25, 1e9))
}

func TestDriftDetectorValidation(t *testing.T) {
	st := featurestore.New()
	if _, err := NewDriftDetector(st, "x", 0, 1, 4, 0); err == nil {
		t.Error("zero batch should error")
	}
}

func TestRobustnessMonitorTracksJitter(t *testing.T) {
	st := featurestore.New()
	m := NewRobustnessMonitor(st, "cc", 32)
	for i := 0; i < 100; i++ {
		m.Observe(50) // perfectly stable
	}
	if cov := st.Load(RobustnessKey("cc")); cov > 0.01 {
		t.Errorf("stable CoV = %v", cov)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		m.Observe(50 + rng.NormFloat64()*25)
	}
	if cov := st.Load(RobustnessKey("cc")); cov < 0.2 {
		t.Errorf("jittery CoV = %v, want > 0.2", cov)
	}
	mustCompile(t, m.Spec("p2-robust", "cc", "cubic", 0.2, 1e9))
}

func TestBoundsCheckerRates(t *testing.T) {
	st := featurestore.New()
	c := NewBoundsChecker(st, "mem", 0, 1, 10)
	for i := 0; i < 9; i++ {
		if !c.Observe(0.5) {
			t.Fatal("legal decision flagged")
		}
	}
	if !almostEqual(st.Load(BoundsKey("mem")), 0) {
		t.Errorf("rate = %v", st.Load(BoundsKey("mem")))
	}
	if c.Observe(7) {
		t.Fatal("illegal decision passed")
	}
	if !almostEqual(st.Load(BoundsKey("mem")), 0.1) {
		t.Errorf("rate = %v, want 0.1", st.Load(BoundsKey("mem")))
	}
	// Boundary values are legal.
	if !c.Observe(0) || !c.Observe(1) {
		t.Error("boundary decisions flagged")
	}
	if c.Observe(-0.001) {
		t.Error("below-range decision passed")
	}
	mustCompile(t, c.Spec("p3-bounds", "mem", "frequency", 0.0, 1e9))
}

func TestRegretMonitor(t *testing.T) {
	st := featurestore.New()
	m := NewRegretMonitor(st, "cache", 16)
	// Learned wins: regret negative.
	for i := 0; i < 20; i++ {
		m.Observe(1, 0)
	}
	if r := st.Load(RegretKey("cache")); r >= 0 {
		t.Errorf("winning regret = %v", r)
	}
	// Learned collapses: regret goes positive.
	for i := 0; i < 20; i++ {
		m.Observe(0, 1)
	}
	if r := st.Load(RegretKey("cache")); r <= 0.5 {
		t.Errorf("losing regret = %v", r)
	}
	mustCompile(t, m.Spec("p4-quality", "cache", "random", 0.05, 1e9))
}

func TestOverheadMonitor(t *testing.T) {
	st := featurestore.New()
	m := NewOverheadMonitor(st, "linnos", 16)
	// Cheap inference, large gains: ratio << 1.
	for i := 0; i < 20; i++ {
		m.Observe(6000, 500000)
	}
	if r := st.Load(OverheadKey("linnos")); r > 0.05 {
		t.Errorf("profitable ratio = %v", r)
	}
	// Gains vanish: ratio blows past 1.
	for i := 0; i < 20; i++ {
		m.Observe(6000, 100)
	}
	if r := st.Load(OverheadKey("linnos")); r < 1 {
		t.Errorf("unprofitable ratio = %v", r)
	}
	// Zero/negative mean gain publishes the sentinel.
	m2 := NewOverheadMonitor(st, "dead", 4)
	m2.Observe(100, 0)
	if st.Load(OverheadKey("dead")) != 1e9 {
		t.Error("sentinel ratio missing")
	}
	mustCompile(t, m.Spec("p5-overhead", "linnos", "ml_enabled", 1, 1e9))
}

func TestFairnessMonitor(t *testing.T) {
	st := featurestore.New()
	m := NewFairnessMonitor(st, "cpu")
	jainKey, waitKey := FairnessKeys("cpu")
	m.Observe("a", 10, 1)
	m.Observe("b", 10, 2)
	if j := st.Load(jainKey); !almostEqual(j, 1) {
		t.Errorf("equal-allocation Jain = %v", j)
	}
	// Starve b: only a receives, time advances.
	for now := 3.0; now < 20; now++ {
		m.Observe("a", 10, now)
	}
	if j := st.Load(jainKey); j > 0.7 {
		t.Errorf("skewed Jain = %v", j)
	}
	if w := st.Load(waitKey); !almostEqual(w, 17) { // b last seen at 2, now 19
		t.Errorf("max wait = %v, want 17", w)
	}
	mustCompile(t, m.Spec("p6-fair", "cpu", "batch_jobs", 0.6, 100, 1e9))
}

func TestFairnessZeroAmountRegistersEntity(t *testing.T) {
	st := featurestore.New()
	m := NewFairnessMonitor(st, "gpu")
	_, waitKey := FairnessKeys("gpu")
	m.Observe("idle", 0, 5) // registered, never allocated
	m.Observe("busy", 1, 10)
	if w := st.Load(waitKey); !almostEqual(w, 5) {
		t.Errorf("max wait = %v, want 5", w)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
