package properties

import (
	"fmt"

	"guardrails/internal/stats"
)

// Calibrator implements the paper's §3.3 deployment advice: "deploy
// guardrails with relaxed properties and automatically tighten the
// properties based on system behavior". It observes a signal during a
// calibration window and proposes a threshold at a high quantile of the
// observed healthy distribution times a safety margin; the caller then
// hot-updates the guardrail with the tightened rule (Runtime.Update).
type Calibrator struct {
	quantile   float64
	margin     float64
	minSamples int
	est        *stats.P2
	agg        stats.Welford
}

// NewCalibrator returns a calibrator that proposes
// quantile(signal, q) * margin after at least minSamples observations.
// Typical use: q=0.99, margin=1.5 — the threshold sits 50% above the
// healthy p99, loose enough for normal jitter, tight enough to catch
// regime change.
func NewCalibrator(q, margin float64, minSamples int) (*Calibrator, error) {
	if q <= 0 || q >= 1 {
		return nil, fmt.Errorf("properties: calibration quantile must be in (0,1)")
	}
	if margin <= 0 {
		return nil, fmt.Errorf("properties: calibration margin must be positive")
	}
	if minSamples < 10 {
		return nil, fmt.Errorf("properties: need at least 10 calibration samples")
	}
	return &Calibrator{
		quantile:   q,
		margin:     margin,
		minSamples: minSamples,
		est:        stats.NewP2(q),
	}, nil
}

// Observe incorporates one healthy-period observation.
func (c *Calibrator) Observe(v float64) {
	c.est.Add(v)
	c.agg.Add(v)
}

// Ready reports whether enough samples have been observed.
func (c *Calibrator) Ready() bool { return c.est.Count() >= c.minSamples }

// Samples returns the number of observations so far.
func (c *Calibrator) Samples() int { return c.est.Count() }

// Threshold returns the proposed upper bound for the signal.
func (c *Calibrator) Threshold() (float64, error) {
	if !c.Ready() {
		return 0, fmt.Errorf("properties: calibration needs %d samples, has %d",
			c.minSamples, c.est.Count())
	}
	return c.est.Value() * c.margin, nil
}

// TightenedSpec renders a guardrail whose rule bounds the signal at the
// calibrated threshold, suitable for Runtime.Update after a relaxed
// shadow deployment. actionText supplies the action block lines.
func (c *Calibrator) TightenedSpec(name, key string, intervalNS float64, actionText []string) (string, error) {
	thr, err := c.Threshold()
	if err != nil {
		return "", err
	}
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", key, thr)},
		actionText,
	), nil
}
