// Package properties implements the paper's property taxonomy (Figure 1,
// left table) as reusable monitors. Each monitor observes a learned
// policy's inputs, outputs, or the resulting system behaviour, publishes
// a scalar signal to the feature store, and can emit the guardrail
// specification text that checks the signal — so the same compiler
// pipeline handles hand-written and library-generated guardrails:
//
//	P1 DriftDetector    — in-distribution inputs (PSI / KS over windows)
//	P2 RobustnessMonitor— similar inputs → similar outputs (decision CoV)
//	P3 BoundsChecker    — outputs within legal bounds
//	P4 RegretMonitor    — decision quality vs. a baseline
//	P5 OverheadMonitor  — inference cost vs. benefit
//	P6 FairnessMonitor  — fairness/liveness of system behaviour
package properties

import (
	"fmt"
	"strings"
)

// BuildSpec assembles guardrail specification source from parts. Rules
// are conjoined; actions run in order on violation.
func BuildSpec(name string, triggers, rules, actions []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "guardrail %s {\n  trigger: {\n", name)
	for _, t := range triggers {
		fmt.Fprintf(&b, "    %s\n", t)
	}
	b.WriteString("  },\n  rule: {\n")
	for i, r := range rules {
		sep := ""
		if i < len(rules)-1 {
			sep = ";"
		}
		fmt.Fprintf(&b, "    %s%s\n", r, sep)
	}
	b.WriteString("  },\n  action: {\n")
	for _, a := range actions {
		fmt.Fprintf(&b, "    %s\n", a)
	}
	b.WriteString("  }\n}\n")
	return b.String()
}

// TimerTrigger renders a TIMER trigger with the given interval in
// nanoseconds.
func TimerTrigger(intervalNS float64) string {
	return fmt.Sprintf("TIMER(start_time, %g)", intervalNS)
}

// FunctionTrigger renders a FUNCTION trigger on a hook site.
func FunctionTrigger(site string) string {
	return fmt.Sprintf("FUNCTION(%s)", site)
}
