package properties

import (
	"fmt"

	"guardrails/internal/featurestore"
	"guardrails/internal/stats"
)

// DriftDetector implements P1 (in-distribution inputs): it compares the
// recent distribution of a model input feature against a reference
// (training-time) distribution using PSI, publishing the index to the
// feature store. PSI < 0.1 is conventionally "no shift", > 0.25 "major
// shift requiring retraining".
type DriftDetector struct {
	store *featurestore.Store
	key   featurestore.ID
	ref   *stats.Histogram
	cur   *stats.Histogram
	batch int
	seen  int
}

// DriftKey is the feature-store key suffix convention: <feature>_psi.
func DriftKey(feature string) string { return feature + "_psi" }

// NewDriftDetector returns a detector for one feature. The histogram
// spans [lo, hi) with bins buckets; batch observations are accumulated
// before each PSI publication (and the current window then resets).
func NewDriftDetector(store *featurestore.Store, feature string, lo, hi float64, bins, batch int) (*DriftDetector, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("properties: drift batch must be positive")
	}
	return &DriftDetector{
		store: store,
		key:   store.Intern(DriftKey(feature)),
		ref:   stats.NewHistogram(lo, hi, bins),
		cur:   stats.NewHistogram(lo, hi, bins),
		batch: batch,
	}, nil
}

// AddReference incorporates one training-time observation into the
// reference distribution.
func (d *DriftDetector) AddReference(x float64) { d.ref.Add(x) }

// Observe incorporates one run-time observation; every batch
// observations it publishes the PSI and resets the current window.
func (d *DriftDetector) Observe(x float64) {
	d.cur.Add(x)
	d.seen++
	if d.seen >= d.batch {
		d.store.SaveID(d.key, d.ref.PSI(d.cur))
		d.cur.Reset()
		d.seen = 0
	}
}

// Spec emits the P1 guardrail: check the PSI periodically; on major
// shift, report and queue retraining (the Figure 1 pairing of P1 with
// A1/A3).
func (d *DriftDetector) Spec(name, feature, model string, threshold float64, intervalNS float64) string {
	return BuildSpec(name,
		[]string{TimerTrigger(intervalNS)},
		[]string{fmt.Sprintf("LOAD(%s) <= %g", DriftKey(feature), threshold)},
		[]string{
			fmt.Sprintf("REPORT(LOAD(%s))", DriftKey(feature)),
			fmt.Sprintf("RETRAIN(%s)", model),
		},
	)
}
