// Package nn is the learned-policy substrate: a small, dependency-free
// multilayer perceptron with SGD+momentum training, suitable for the
// "light neural network" policies the paper's case studies use (LinnOS
// I/O latency classification, learned cache eviction, learned schedulers).
//
// The package also provides integer-quantized inference (Quantize), the
// trick LinnOS uses to run models cheaply inside the kernel, so that
// decision-overhead properties (P5) can compare float and fixed-point
// inference costs.
package nn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String returns the activation name.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns dActivation/dx expressed in terms of the
// activation output y (possible for all supported activations).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Loss selects the training objective.
type Loss int

// Supported losses. BCE expects Sigmoid outputs in (0,1) and targets in
// {0,1}; its gradient composed with sigmoid simplifies to (y - t).
const (
	MSE Loss = iota
	BCE
)

// Config describes a network: layer widths (input first, output last),
// activations, and an initialization seed.
type Config struct {
	// Layers holds the width of every layer including input and output,
	// e.g. {31, 256, 2} for a LinnOS-style classifier.
	Layers []int
	// Hidden is the activation for all hidden layers.
	Hidden Activation
	// Output is the activation for the output layer.
	Output Activation
	// Loss is the training objective.
	Loss Loss
	// Seed initializes weights deterministically.
	Seed int64
}

type layer struct {
	in, out int
	w       []float64 // out x in, row-major
	b       []float64 // out
	act     Activation

	// momentum buffers
	vw []float64
	vb []float64
}

// Network is a feedforward MLP. Not safe for concurrent mutation; a
// frozen network may be shared for concurrent Forward calls through
// Clone-per-goroutine or external locking.
type Network struct {
	cfg    Config
	layers []layer
}

// New constructs a network with Xavier/Glorot-uniform initialization.
func New(cfg Config) *Network {
	if len(cfg.Layers) < 2 {
		panic("nn: need at least input and output layers")
	}
	for _, n := range cfg.Layers {
		if n <= 0 {
			panic("nn: layer widths must be positive")
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{cfg: cfg}
	for i := 0; i+1 < len(cfg.Layers); i++ {
		in, out := cfg.Layers[i], cfg.Layers[i+1]
		act := cfg.Hidden
		if i+2 == len(cfg.Layers) {
			act = cfg.Output
		}
		l := layer{
			in: in, out: out, act: act,
			w:  make([]float64, in*out),
			b:  make([]float64, out),
			vw: make([]float64, in*out),
			vb: make([]float64, out),
		}
		limit := math.Sqrt(6.0 / float64(in+out))
		for j := range l.w {
			l.w[j] = (rng.Float64()*2 - 1) * limit
		}
		n.layers = append(n.layers, l)
	}
	return n
}

// InputSize returns the expected input vector length.
func (n *Network) InputSize() int { return n.cfg.Layers[0] }

// OutputSize returns the output vector length.
func (n *Network) OutputSize() int { return n.cfg.Layers[len(n.cfg.Layers)-1] }

// NumParams returns the total number of weights and biases.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.layers {
		total += len(l.w) + len(l.b)
	}
	return total
}

// Forward runs inference, returning a fresh output slice.
func (n *Network) Forward(in []float64) []float64 {
	if len(in) != n.InputSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(in), n.InputSize()))
	}
	cur := in
	for li := range n.layers {
		l := &n.layers[li]
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				sum += row[i] * x
			}
			next[o] = l.act.apply(sum)
		}
		cur = next
	}
	return cur
}

// forwardTrace runs inference keeping every layer's activations
// (including the input) for backprop.
func (n *Network) forwardTrace(in []float64, acts [][]float64) {
	copy(acts[0], in)
	cur := acts[0]
	for li := range n.layers {
		l := &n.layers[li]
		next := acts[li+1]
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				sum += row[i] * x
			}
			next[o] = l.act.apply(sum)
		}
		cur = next
	}
}

// TrainOpts configures SGD.
type TrainOpts struct {
	LearningRate float64
	Momentum     float64
	BatchSize    int
	Epochs       int
	// Shuffle seeds minibatch shuffling; 0 disables shuffling.
	ShuffleSeed int64
}

// DefaultTrainOpts returns sensible small-model defaults.
func DefaultTrainOpts() TrainOpts {
	return TrainOpts{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 10, ShuffleSeed: 1}
}

// Train runs minibatch SGD over the dataset and returns the mean loss of
// the final epoch. inputs[i] pairs with targets[i].
func (n *Network) Train(inputs, targets [][]float64, opts TrainOpts) (float64, error) {
	if len(inputs) != len(targets) {
		return 0, fmt.Errorf("nn: %d inputs but %d targets", len(inputs), len(targets))
	}
	if len(inputs) == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	for i := range inputs {
		if len(inputs[i]) != n.InputSize() {
			return 0, fmt.Errorf("nn: input %d has size %d, want %d", i, len(inputs[i]), n.InputSize())
		}
		if len(targets[i]) != n.OutputSize() {
			return 0, fmt.Errorf("nn: target %d has size %d, want %d", i, len(targets[i]), n.OutputSize())
		}
	}

	idx := make([]int, len(inputs))
	for i := range idx {
		idx[i] = i
	}
	var rng *rand.Rand
	if opts.ShuffleSeed != 0 {
		rng = rand.New(rand.NewSource(opts.ShuffleSeed))
	}

	// Scratch buffers reused across samples.
	acts := make([][]float64, len(n.cfg.Layers))
	deltas := make([][]float64, len(n.layers))
	for i, w := range n.cfg.Layers {
		acts[i] = make([]float64, w)
	}
	for i := range n.layers {
		deltas[i] = make([]float64, n.layers[i].out)
	}
	gw := make([][]float64, len(n.layers))
	gb := make([][]float64, len(n.layers))
	for i := range n.layers {
		gw[i] = make([]float64, len(n.layers[i].w))
		gb[i] = make([]float64, len(n.layers[i].b))
	}

	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		if rng != nil {
			rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		var epochLoss float64
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			for i := range n.layers {
				zero(gw[i])
				zero(gb[i])
			}
			for _, s := range batch {
				epochLoss += n.backprop(inputs[s], targets[s], acts, deltas, gw, gb)
			}
			scale := opts.LearningRate / float64(len(batch))
			for li := range n.layers {
				l := &n.layers[li]
				for j := range l.w {
					l.vw[j] = opts.Momentum*l.vw[j] - scale*gw[li][j]
					l.w[j] += l.vw[j]
				}
				for j := range l.b {
					l.vb[j] = opts.Momentum*l.vb[j] - scale*gb[li][j]
					l.b[j] += l.vb[j]
				}
			}
		}
		lastLoss = epochLoss / float64(len(idx))
	}
	return lastLoss, nil
}

func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// backprop accumulates gradients for one sample and returns its loss.
func (n *Network) backprop(in, target []float64, acts, deltas, gw, gb [][]float64) float64 {
	n.forwardTrace(in, acts)
	out := acts[len(acts)-1]
	last := len(n.layers) - 1

	var loss float64
	outLayer := &n.layers[last]
	for o, y := range out {
		t := target[o]
		switch n.cfg.Loss {
		case BCE:
			const eps = 1e-12
			loss += -(t*math.Log(y+eps) + (1-t)*math.Log(1-y+eps))
			// Assuming sigmoid output, dL/dz = y - t.
			deltas[last][o] = y - t
		default:
			d := y - t
			loss += 0.5 * d * d
			deltas[last][o] = d * outLayer.act.derivFromOutput(y)
		}
	}

	for li := last; li >= 0; li-- {
		l := &n.layers[li]
		prev := acts[li]
		for o := 0; o < l.out; o++ {
			d := deltas[li][o]
			gb[li][o] += d
			row := gw[li][o*l.in : (o+1)*l.in]
			for i, x := range prev {
				row[i] += d * x
			}
		}
		if li > 0 {
			below := deltas[li-1]
			zero(below)
			for o := 0; o < l.out; o++ {
				d := deltas[li][o]
				row := l.w[o*l.in : (o+1)*l.in]
				for i := range below {
					below[i] += d * row[i]
				}
			}
			for i, y := range acts[li] {
				below[i] *= n.layers[li-1].act.derivFromOutput(y)
			}
		}
	}
	return loss
}

// Clone returns a deep copy (weights and momentum buffers).
func (n *Network) Clone() *Network {
	c := &Network{cfg: n.cfg}
	c.cfg.Layers = append([]int(nil), n.cfg.Layers...)
	c.layers = make([]layer, len(n.layers))
	for i, l := range n.layers {
		c.layers[i] = layer{
			in: l.in, out: l.out, act: l.act,
			w:  append([]float64(nil), l.w...),
			b:  append([]float64(nil), l.b...),
			vw: append([]float64(nil), l.vw...),
			vb: append([]float64(nil), l.vb...),
		}
	}
	return c
}

const magic = "GRNN1\x00"

// Save serializes the network (config and weights, not momentum).
func (n *Network) Save(w io.Writer) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	hdr := []int64{
		int64(len(n.cfg.Layers)),
		int64(n.cfg.Hidden), int64(n.cfg.Output), int64(n.cfg.Loss), n.cfg.Seed,
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, l := range n.cfg.Layers {
		if err := binary.Write(w, binary.LittleEndian, int64(l)); err != nil {
			return err
		}
	}
	for _, l := range n.layers {
		if err := binary.Write(w, binary.LittleEndian, l.w); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, l.b); err != nil {
			return err
		}
	}
	return nil
}

// Load deserializes a network produced by Save.
func Load(r io.Reader) (*Network, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, errors.New("nn: bad magic")
	}
	var nLayers, hidden, output, loss, seed int64
	for _, p := range []*int64{&nLayers, &hidden, &output, &loss, &seed} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if nLayers < 2 || nLayers > 64 {
		return nil, fmt.Errorf("nn: implausible layer count %d", nLayers)
	}
	cfg := Config{
		Hidden: Activation(hidden), Output: Activation(output),
		Loss: Loss(loss), Seed: seed,
		Layers: make([]int, nLayers),
	}
	for i := range cfg.Layers {
		var w int64
		if err := binary.Read(r, binary.LittleEndian, &w); err != nil {
			return nil, err
		}
		if w <= 0 || w > 1<<20 {
			return nil, fmt.Errorf("nn: implausible layer width %d", w)
		}
		cfg.Layers[i] = int(w)
	}
	n := New(cfg)
	for li := range n.layers {
		if err := binary.Read(r, binary.LittleEndian, n.layers[li].w); err != nil {
			return nil, err
		}
		if err := binary.Read(r, binary.LittleEndian, n.layers[li].b); err != nil {
			return nil, err
		}
	}
	return n, nil
}
