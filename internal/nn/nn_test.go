package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		in   float64
		want float64
	}{
		{Linear, -2, -2},
		{ReLU, -2, 0},
		{ReLU, 3, 3},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.in, got, c.want)
		}
	}
	if Linear.String() != "linear" || ReLU.String() != "relu" ||
		Sigmoid.String() != "sigmoid" || Tanh.String() != "tanh" {
		t.Error("activation names wrong")
	}
}

func TestNewDeterministic(t *testing.T) {
	cfg := Config{Layers: []int{4, 8, 2}, Hidden: ReLU, Output: Sigmoid, Seed: 42}
	a := New(cfg)
	b := New(cfg)
	in := []float64{0.1, -0.2, 0.3, 0.4}
	oa := a.Forward(in)
	ob := b.Forward(in)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed gave different networks")
		}
	}
	c := New(Config{Layers: []int{4, 8, 2}, Hidden: ReLU, Output: Sigmoid, Seed: 43})
	oc := c.Forward(in)
	same := true
	for i := range oa {
		if oa[i] != oc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical networks")
	}
}

func TestNumParams(t *testing.T) {
	n := New(Config{Layers: []int{3, 5, 2}, Seed: 1})
	// (3*5+5) + (5*2+2) = 20 + 12 = 32
	if got := n.NumParams(); got != 32 {
		t.Errorf("NumParams = %d, want 32", got)
	}
	if n.InputSize() != 3 || n.OutputSize() != 2 {
		t.Error("sizes wrong")
	}
}

func TestForwardPanicsOnBadInput(t *testing.T) {
	n := New(Config{Layers: []int{3, 2}, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("wrong input size should panic")
		}
	}()
	n.Forward([]float64{1, 2})
}

func TestConfigValidation(t *testing.T) {
	for _, layers := range [][]int{{3}, {}, {3, 0, 2}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layers %v should panic", layers)
				}
			}()
			New(Config{Layers: layers})
		}()
	}
}

func TestSigmoidOutputInRange(t *testing.T) {
	n := New(Config{Layers: []int{2, 4, 1}, Hidden: ReLU, Output: Sigmoid, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		out := n.Forward([]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
		if out[0] < 0 || out[0] > 1 {
			t.Fatalf("sigmoid output out of range: %v", out[0])
		}
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := [][]float64{{0}, {1}, {1}, {0}}
	n := New(Config{Layers: []int{2, 8, 1}, Hidden: Tanh, Output: Sigmoid, Loss: BCE, Seed: 3})
	loss, err := n.Train(inputs, targets, TrainOpts{
		LearningRate: 0.5, Momentum: 0.9, BatchSize: 4, Epochs: 2000, ShuffleSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.1 {
		t.Fatalf("XOR final loss = %v, want < 0.1", loss)
	}
	for i, in := range inputs {
		out := n.Forward(in)[0]
		pred := 0.0
		if out > 0.5 {
			pred = 1
		}
		if pred != targets[i][0] {
			t.Errorf("XOR(%v) = %v (raw %v), want %v", in, pred, out, targets[i][0])
		}
	}
}

func TestTrainReducesLossLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var inputs, targets [][]float64
	for i := 0; i < 200; i++ {
		x := rng.Float64()*2 - 1
		y := rng.Float64()*2 - 1
		inputs = append(inputs, []float64{x, y})
		targets = append(targets, []float64{2*x - 3*y + 0.5})
	}
	n := New(Config{Layers: []int{2, 1}, Hidden: Linear, Output: Linear, Loss: MSE, Seed: 9})
	first, err := n.Train(inputs, targets, TrainOpts{LearningRate: 0.1, BatchSize: 16, Epochs: 1, ShuffleSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	last, err := n.Train(inputs, targets, TrainOpts{LearningRate: 0.1, BatchSize: 16, Epochs: 200, ShuffleSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %v -> %v", first, last)
	}
	if last > 1e-3 {
		t.Errorf("linear fit loss = %v, want ~0", last)
	}
}

func TestTrainValidation(t *testing.T) {
	n := New(Config{Layers: []int{2, 1}, Seed: 1})
	if _, err := n.Train([][]float64{{1, 2}}, nil, DefaultTrainOpts()); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := n.Train(nil, nil, DefaultTrainOpts()); err == nil {
		t.Error("empty set should error")
	}
	if _, err := n.Train([][]float64{{1}}, [][]float64{{1}}, DefaultTrainOpts()); err == nil {
		t.Error("wrong input width should error")
	}
	if _, err := n.Train([][]float64{{1, 2}}, [][]float64{{1, 2}}, DefaultTrainOpts()); err == nil {
		t.Error("wrong target width should error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := New(Config{Layers: []int{2, 3, 1}, Hidden: ReLU, Output: Linear, Seed: 4})
	c := n.Clone()
	in := []float64{0.5, -0.5}
	before := n.Forward(in)[0]
	// Train the clone; original must not change.
	_, err := c.Train([][]float64{{0.5, -0.5}}, [][]float64{{10}},
		TrainOpts{LearningRate: 0.5, Epochs: 50, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Forward(in)[0]; got != before {
		t.Error("training clone mutated original")
	}
	if c.Forward(in)[0] == before {
		t.Error("clone did not train")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n := New(Config{Layers: []int{3, 6, 2}, Hidden: ReLU, Output: Sigmoid, Loss: BCE, Seed: 11})
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{0.2, -0.7, 1.5}
	a, b := n.Forward(in), m.Forward(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage magic should error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should error")
	}
	// Truncated after magic.
	if _, err := Load(bytes.NewReader([]byte(magic))); err == nil {
		t.Error("truncated header should error")
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0.1, 0.9, 0.5}) != 1 {
		t.Error("argmax wrong")
	}
	if Argmax([]float64{0.5, 0.5}) != 0 {
		t.Error("argmax tie should pick lower index")
	}
	if Argmax([]float64{3}) != 0 {
		t.Error("singleton argmax")
	}
}
