package nn

import (
	"fmt"
	"math"
)

// Quantized is a fixed-point (int16 weights, int32 accumulators) copy of
// a network for cheap in-kernel-style inference, mirroring LinnOS's
// integer-quantized deployment. Only ReLU hidden activations and
// Linear/ReLU/Sigmoid outputs are supported; sigmoid is approximated by a
// piecewise-linear "hard sigmoid", which preserves the argmax/threshold
// decisions the learned policies make.
type Quantized struct {
	layers   []qlayer
	inSize   int
	outSize  int
	fracBits uint
}

type qlayer struct {
	in, out int
	w       []int16
	b       []int32 // pre-shifted to 2*fracBits scale
	act     Activation
}

// Quantize converts the network to fixed point with the given number of
// fractional bits (1..14). Weights are clamped to the int16 range.
func (n *Network) Quantize(fracBits uint) (*Quantized, error) {
	if fracBits < 1 || fracBits > 14 {
		return nil, fmt.Errorf("nn: fracBits %d out of range [1,14]", fracBits)
	}
	for i, l := range n.layers {
		switch l.act {
		case ReLU, Linear, Sigmoid:
		default:
			return nil, fmt.Errorf("nn: layer %d activation %v not supported in quantized mode", i, l.act)
		}
	}
	scale := float64(int64(1) << fracBits)
	q := &Quantized{inSize: n.InputSize(), outSize: n.OutputSize(), fracBits: fracBits}
	for _, l := range n.layers {
		ql := qlayer{in: l.in, out: l.out, act: l.act,
			w: make([]int16, len(l.w)), b: make([]int32, len(l.b))}
		for j, w := range l.w {
			v := math.Round(w * scale)
			if v > math.MaxInt16 {
				v = math.MaxInt16
			}
			if v < math.MinInt16 {
				v = math.MinInt16
			}
			ql.w[j] = int16(v)
		}
		for j, b := range l.b {
			// Biases add to accumulators at input*weight scale = 2^(2*frac).
			ql.b[j] = int32(math.Round(b * scale * scale))
		}
		q.layers = append(q.layers, ql)
	}
	return q, nil
}

// InputSize returns the expected input vector length.
func (q *Quantized) InputSize() int { return q.inSize }

// OutputSize returns the output vector length.
func (q *Quantized) OutputSize() int { return q.outSize }

// Forward runs fixed-point inference. Inputs are quantized on entry;
// outputs are dequantized to float64 for the caller.
func (q *Quantized) Forward(in []float64) []float64 {
	if len(in) != q.inSize {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(in), q.inSize))
	}
	scale := int64(1) << q.fracBits
	cur := make([]int32, len(in))
	for i, x := range in {
		v := math.Round(x * float64(scale))
		if v > math.MaxInt32 {
			v = math.MaxInt32
		}
		if v < math.MinInt32 {
			v = math.MinInt32
		}
		cur[i] = int32(v)
	}
	for _, l := range q.layers {
		next := make([]int32, l.out)
		for o := 0; o < l.out; o++ {
			acc := int64(l.b[o])
			row := l.w[o*l.in : (o+1)*l.in]
			for i, x := range cur {
				acc += int64(row[i]) * int64(x)
			}
			// Rescale from 2^(2*frac) back to 2^frac.
			acc >>= q.fracBits
			switch l.act {
			case ReLU:
				if acc < 0 {
					acc = 0
				}
			case Sigmoid:
				acc = hardSigmoid(acc, q.fracBits)
			}
			if acc > math.MaxInt32 {
				acc = math.MaxInt32
			}
			if acc < math.MinInt32 {
				acc = math.MinInt32
			}
			next[o] = int32(acc)
		}
		cur = next
	}
	out := make([]float64, len(cur))
	for i, v := range cur {
		out[i] = float64(v) / float64(scale)
	}
	return out
}

// hardSigmoid computes clamp(0.25*x + 0.5, 0, 1) in fixed point, a
// standard piecewise-linear sigmoid approximation.
func hardSigmoid(x int64, fracBits uint) int64 {
	one := int64(1) << fracBits
	v := x/4 + one/2
	if v < 0 {
		return 0
	}
	if v > one {
		return one
	}
	return v
}

// Argmax returns the index of the largest output, breaking ties toward
// the lower index. Classification policies use this rather than the raw
// outputs.
func Argmax(out []float64) int {
	best := 0
	for i := 1; i < len(out); i++ {
		if out[i] > out[best] {
			best = i
		}
	}
	return best
}
