package nn

import (
	"math"
	"math/rand"
	"testing"
)

func trainedClassifier(t *testing.T) *Network {
	t.Helper()
	// Learn "x0 + x1 > 1" as a 2-class problem.
	rng := rand.New(rand.NewSource(21))
	var inputs, targets [][]float64
	for i := 0; i < 500; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		cls := []float64{1, 0}
		if x[0]+x[1] > 1 {
			cls = []float64{0, 1}
		}
		inputs = append(inputs, x)
		targets = append(targets, cls)
	}
	n := New(Config{Layers: []int{2, 16, 2}, Hidden: ReLU, Output: Linear, Loss: MSE, Seed: 22})
	if _, err := n.Train(inputs, targets, TrainOpts{LearningRate: 0.05, Momentum: 0.9, BatchSize: 32, Epochs: 100, ShuffleSeed: 3}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestQuantizedMatchesFloatDecisions(t *testing.T) {
	n := trainedClassifier(t)
	q, err := n.Quantize(10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	agree := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		in := []float64{rng.Float64() * 2, rng.Float64() * 2}
		if Argmax(n.Forward(in)) == Argmax(q.Forward(in)) {
			agree++
		}
	}
	if frac := float64(agree) / trials; frac < 0.97 {
		t.Errorf("quantized agreement = %v, want >= 0.97", frac)
	}
}

func TestQuantizedOutputsClose(t *testing.T) {
	n := New(Config{Layers: []int{3, 8, 2}, Hidden: ReLU, Output: Linear, Seed: 31})
	q, err := n.Quantize(12)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 200; i++ {
		in := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		fo := n.Forward(in)
		qo := q.Forward(in)
		for j := range fo {
			if math.Abs(fo[j]-qo[j]) > 0.05*(1+math.Abs(fo[j])) {
				t.Fatalf("outputs diverge: float %v quant %v (input %v)", fo, qo, in)
			}
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	n := New(Config{Layers: []int{2, 2}, Hidden: ReLU, Output: Linear, Seed: 1})
	for _, bits := range []uint{0, 15} {
		if _, err := n.Quantize(bits); err == nil {
			t.Errorf("fracBits=%d should error", bits)
		}
	}
	tanh := New(Config{Layers: []int{2, 2, 1}, Hidden: Tanh, Output: Linear, Seed: 1})
	if _, err := tanh.Quantize(10); err == nil {
		t.Error("tanh should be rejected in quantized mode")
	}
}

func TestQuantizedSigmoidMonotone(t *testing.T) {
	// hard sigmoid must be monotone nondecreasing and clamp to [0,1].
	const frac = 10
	one := int64(1) << frac
	prev := int64(-1)
	for x := -8 * one; x <= 8*one; x += one / 4 {
		y := hardSigmoid(x, frac)
		if y < 0 || y > one {
			t.Fatalf("hardSigmoid(%d) = %d out of range", x, y)
		}
		if y < prev {
			t.Fatalf("hardSigmoid not monotone at %d", x)
		}
		prev = y
	}
	if hardSigmoid(0, frac) != one/2 {
		t.Error("hardSigmoid(0) should be 0.5")
	}
}

func TestQuantizedForwardPanicsOnBadInput(t *testing.T) {
	n := New(Config{Layers: []int{2, 1}, Hidden: ReLU, Output: Linear, Seed: 1})
	q, err := n.Quantize(8)
	if err != nil {
		t.Fatal(err)
	}
	if q.InputSize() != 2 || q.OutputSize() != 1 {
		t.Error("quantized sizes wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad input size should panic")
		}
	}()
	q.Forward([]float64{1})
}
