package featurestore

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	s.Save("false_submit_rate", 0.03)
	if got := s.Load("false_submit_rate"); got != 0.03 {
		t.Errorf("Load = %v, want 0.03", got)
	}
	if got := s.Load("never_written"); got != 0 {
		t.Errorf("unknown key = %v, want 0", got)
	}
}

func TestInternIsStable(t *testing.T) {
	s := New()
	a := s.Intern("x")
	b := s.Intern("y")
	if a == b {
		t.Fatal("distinct keys share an ID")
	}
	if s.Intern("x") != a {
		t.Error("re-intern changed ID")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Name(a) != "x" || s.Name(b) != "y" {
		t.Error("Name mapping wrong")
	}
	if s.Name(ID(99)) != "" || s.Name(NoID) != "" {
		t.Error("out-of-range Name should be empty")
	}
}

func TestLookupDoesNotCreate(t *testing.T) {
	s := New()
	if id, ok := s.Lookup("ghost"); ok || id != NoID {
		t.Errorf("Lookup created or returned a key: %v %v", id, ok)
	}
	if s.Len() != 0 {
		t.Error("Lookup must not intern")
	}
}

func TestIDFastPath(t *testing.T) {
	s := New()
	id := s.Intern("lat")
	s.SaveID(id, 12.5)
	if got := s.LoadID(id); got != 12.5 {
		t.Errorf("LoadID = %v", got)
	}
	// Out-of-range IDs are safe no-ops.
	s.SaveID(ID(1000), 1)
	if s.LoadID(ID(1000)) != 0 || s.LoadID(NoID) != 0 {
		t.Error("out-of-range access should yield 0")
	}
	if s.AddID(ID(1000), 5) != 0 {
		t.Error("out-of-range AddID should yield 0")
	}
}

func TestAddAccumulates(t *testing.T) {
	s := New()
	if got := s.Add("ctr", 2); got != 2 {
		t.Errorf("first Add = %v", got)
	}
	if got := s.Add("ctr", 3); got != 5 {
		t.Errorf("second Add = %v", got)
	}
	if got := s.Load("ctr"); got != 5 {
		t.Errorf("Load after Add = %v", got)
	}
}

func TestSeqTracksWrites(t *testing.T) {
	s := New()
	if s.Seq("k") != 0 {
		t.Error("unknown key seq should be 0")
	}
	id := s.Intern("k")
	if s.SeqID(id) != 0 {
		t.Error("never-written seq should be 0")
	}
	s.SaveID(id, 1)
	s.SaveID(id, 2)
	s.AddID(id, 1)
	if got := s.SeqID(id); got != 3 {
		t.Errorf("seq = %d, want 3", got)
	}
	if s.Seq("k") != 3 {
		t.Error("Seq by name mismatch")
	}
	if s.SeqID(ID(50)) != 0 {
		t.Error("out-of-range seq should be 0")
	}
}

func TestWatchersFire(t *testing.T) {
	s := New()
	var gotName string
	var gotVal float64
	calls := 0
	s.Watch("ml_enabled", func(name string, v float64) {
		gotName, gotVal = name, v
		calls++
	})
	s.Save("ml_enabled", 0)
	if calls != 1 || gotName != "ml_enabled" || gotVal != 0 {
		t.Errorf("watcher: calls=%d name=%q val=%v", calls, gotName, gotVal)
	}
	s.Add("ml_enabled", 1)
	if calls != 2 || gotVal != 1 {
		t.Errorf("watcher on Add: calls=%d val=%v", calls, gotVal)
	}
	// Writes to other keys do not fire.
	s.Save("other", 9)
	if calls != 2 {
		t.Error("watcher fired for unrelated key")
	}
}

func TestMultipleWatchersSameKey(t *testing.T) {
	s := New()
	a, b := 0, 0
	s.Watch("k", func(string, float64) { a++ })
	s.Watch("k", func(string, float64) { b++ })
	s.Save("k", 1)
	if a != 1 || b != 1 {
		t.Errorf("watchers: a=%d b=%d", a, b)
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	s := New()
	s.Save("b", 2)
	s.Save("a", 1)
	snap := s.Snapshot()
	if len(snap) != 2 || snap["a"] != 1 || snap["b"] != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
	if s.Dump() != "a=1\nb=2\n" {
		t.Errorf("dump = %q", s.Dump())
	}
}

func TestObjects(t *testing.T) {
	s := New()
	if s.Object("w") != nil {
		t.Error("missing object should be nil")
	}
	type thing struct{ x int }
	s.PutObject("w", &thing{7})
	got, ok := s.Object("w").(*thing)
	if !ok || got.x != 7 {
		t.Errorf("object round trip failed: %v", s.Object("w"))
	}
}

func TestConcurrentSaveLoadIntern(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := []string{"a", "b", "c", "d"}[i%4]
				s.Save(key, float64(i))
				_ = s.Load(key)
				_ = s.Intern(key)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestConcurrentAddExact(t *testing.T) {
	s := New()
	id := s.Intern("ctr")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.AddID(id, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.LoadID(id); got != 8000 {
		t.Errorf("concurrent Add total = %v, want 8000", got)
	}
}

func TestPropertySaveLoadIdentity(t *testing.T) {
	s := New()
	f := func(key string, v float64) bool {
		if v != v { // NaN never compares equal; skip
			return true
		}
		s.Save(key, v)
		return s.Load(key) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConcurrentLoadDuringIntern is the cell-growth regression test:
// readers hammer Save/Load/Seq on already-interned IDs while other
// goroutines keep growing the copy-on-write cells slice with fresh
// registrations. The growth contract (Intern publishes the grown slice
// before the new ID escapes; cell pointers are shared across slice
// generations) means no read may ever be lost, serve a stale cell, or
// index out of range — and the whole test must be -race clean.
func TestConcurrentLoadDuringIntern(t *testing.T) {
	s := New()
	const (
		readers   = 4
		growers   = 4
		perGrower = 500
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < readers; g++ {
		// One pre-interned cell per reader: the reader's own
		// read-your-write sequence must survive concurrent growth.
		mine := s.Intern(fmt.Sprintf("reader%d", g))
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n++
				s.SaveID(mine, n)
				if got := s.LoadID(mine); got != n {
					t.Errorf("LoadID(reader cell) = %v, want %v", got, n)
					return
				}
				if s.SeqID(mine) == 0 {
					t.Error("SeqID(reader cell) = 0 after writes")
					return
				}
			}
		}()
	}
	ids := make([][]ID, growers)
	for g := 0; g < growers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGrower; i++ {
				key := fmt.Sprintf("g%d.k%d", g, i)
				id := s.Intern(key)
				// A freshly interned ID must be immediately usable on
				// the lock-free path from this goroutine.
				s.SaveID(id, float64(i))
				if got := s.LoadID(id); got != float64(i) {
					t.Errorf("fresh cell %s: Load = %v, want %v", key, got, float64(i))
					return
				}
				ids[g] = append(ids[g], id)
			}
		}(g)
	}
	for g := 0; g < growers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Re-intern the same keys concurrently: must dedupe.
			for i := 0; i < perGrower; i++ {
				_ = s.Intern(fmt.Sprintf("g%d.k%d", g, i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	// Growers finish on their own; readers spin until stopped. Wait for
	// growers by polling Len, then stop readers.
	for s.Len() < readers+growers*perGrower {
		runtime.Gosched()
	}
	close(stop)
	<-done

	if got, want := s.Len(), readers+growers*perGrower; got != want {
		t.Fatalf("Len = %d, want %d (duplicate or lost registrations)", got, want)
	}
	for g := range ids {
		for i, id := range ids[g] {
			if got := s.LoadID(id); got != float64(i) {
				t.Errorf("post-growth readback g%d.k%d = %v, want %d", g, i, got, i)
			}
		}
	}
}
