// Package featurestore implements the paper's lightweight global feature
// store (§4.3): a shared key/value surface accessed via SAVE(key, value)
// and LOAD(key) through which guardrail monitors, learned policies, and
// kernel subsystems exchange metrics without ad-hoc kernel data
// structures.
//
// Keys are interned to dense integer IDs so that compiled monitors can
// address cells with a single bounds-checked array access — the same
// trick eBPF array maps use. The read and write paths on interned IDs
// are lock-free (single atomic load/store); interning and watcher
// registration take a mutex and are expected at load time, not on the
// hot path.
package featurestore

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"guardrails/internal/telemetry"
)

// ID is a dense handle for an interned key.
type ID int32

// NoID is returned by Lookup for unknown keys.
const NoID ID = -1

// WatchFunc observes writes to a cell. Watchers run synchronously on the
// writer's goroutine; they must be fast and must not write back to the
// same key (which would recurse).
type WatchFunc func(name string, value float64)

type cell struct {
	bits atomic.Uint64 // float64 bits
	seq  atomic.Uint64 // incremented on every Save; 0 = never written
}

// Store is a concurrent feature store. The zero value is not usable; use
// New.
type Store struct {
	mu       sync.Mutex
	ids      map[string]ID
	names    []string
	cells    atomic.Pointer[[]*cell] // copy-on-write slice, grown under mu
	watchers atomic.Pointer[map[ID][]WatchFunc]
	tsink    atomic.Pointer[telemetry.Sink]

	objMu   sync.RWMutex
	objects map[string]any
}

// New returns an empty feature store.
func New() *Store {
	s := &Store{
		ids:     make(map[string]ID),
		objects: make(map[string]any),
	}
	empty := make([]*cell, 0)
	s.cells.Store(&empty)
	w := make(map[ID][]WatchFunc)
	s.watchers.Store(&w)
	return s
}

// SetTelemetry attaches (or with nil, detaches) a telemetry sink that
// counts cell reads and writes — the feature-store traffic guardrail
// monitors generate. Safe to call concurrently with readers.
func (s *Store) SetTelemetry(t *telemetry.Sink) { s.tsink.Store(t) }

// Intern returns the ID for name, creating the cell if needed.
//
// Growth ordering contract: the grown cells slice is published (with
// the new cell already in place) via cells.Store BEFORE Intern returns
// the new ID, and mu serializes every path that can hand out an ID
// (Intern, Lookup). A reader can therefore only hold an ID whose cell
// is reachable through the current (or a newer) published slice, and a
// lock-free LoadID/SaveID during concurrent registration either sees
// the pre-growth slice (for old IDs — the *cell pointers are shared
// between generations, so values are never lost) or the grown one;
// it can never observe an ID beyond the slice it loaded.
func (s *Store) Intern(name string) ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := ID(len(s.names))
	old := *s.cells.Load()
	grown := make([]*cell, len(old)+1)
	copy(grown, old)
	grown[len(old)] = &cell{}
	// Publish the cell before the name→ID mapping becomes visible: a
	// concurrent Lookup serializes on mu, but the store's own Save/Load
	// fast paths trust that any ID they were handed has a cell.
	s.cells.Store(&grown)
	s.ids[name] = id
	s.names = append(s.names, name)
	return id
}

// Lookup returns the ID for name without creating it.
func (s *Store) Lookup(name string) (ID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.ids[name]
	if !ok {
		return NoID, false
	}
	return id, true
}

// Name returns the key string for id, or "" if out of range.
func (s *Store) Name(id ID) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || int(id) >= len(s.names) {
		return ""
	}
	return s.names[id]
}

// Len returns the number of interned keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

func (s *Store) cellAt(id ID) *cell {
	cells := *s.cells.Load()
	if id < 0 || int(id) >= len(cells) {
		return nil
	}
	return cells[id]
}

// Save stores value under name, interning it if necessary. This is the
// paper's SAVE(key, value).
func (s *Store) Save(name string, value float64) {
	s.SaveID(s.Intern(name), value)
}

// Load returns the value stored under name, or 0 if the key is unknown
// or never written. This is the paper's LOAD(key).
func (s *Store) Load(name string) float64 {
	id, ok := s.Lookup(name)
	if !ok {
		return 0
	}
	return s.LoadID(id)
}

// SaveID stores value in the cell for id. Out-of-range IDs are ignored.
func (s *Store) SaveID(id ID, value float64) {
	c := s.cellAt(id)
	if c == nil {
		return
	}
	s.tsink.Load().StoreSave()
	c.bits.Store(math.Float64bits(value))
	c.seq.Add(1)
	ws := *s.watchers.Load()
	if fns, ok := ws[id]; ok {
		name := s.Name(id)
		for _, fn := range fns {
			fn(name, value)
		}
	}
}

// PublishID stores value in the cell for id without firing watchers or
// counting feature-store telemetry — the epoch aggregator's broadcast
// path. Watchers run synchronously on the writer's goroutine, which for
// a barrier-time broadcast would be the pool driver, not the shard that
// owns the monitors; and an epoch broadcast is plane maintenance, not
// guardrail traffic, so it must not inflate the SAVE counters the
// monitors' own writes are audited against. The write sequence number
// still advances (dependency-triggered monitors poll Seq).
func (s *Store) PublishID(id ID, value float64) {
	c := s.cellAt(id)
	if c == nil {
		return
	}
	c.bits.Store(math.Float64bits(value))
	c.seq.Add(1)
}

// LoadID returns the value in the cell for id, or 0 if out of range.
func (s *Store) LoadID(id ID) float64 {
	c := s.cellAt(id)
	if c == nil {
		return 0
	}
	s.tsink.Load().StoreLoad()
	return math.Float64frombits(c.bits.Load())
}

// Add atomically adds delta to the value under name and returns the new
// value. Interns the key if needed.
func (s *Store) Add(name string, delta float64) float64 {
	return s.AddID(s.Intern(name), delta)
}

// AddID atomically adds delta to the cell for id and returns the new
// value. Out-of-range IDs return 0.
func (s *Store) AddID(id ID, delta float64) float64 {
	c := s.cellAt(id)
	if c == nil {
		return 0
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			c.seq.Add(1)
			ws := *s.watchers.Load()
			v := math.Float64frombits(next)
			if fns, ok := ws[id]; ok {
				name := s.Name(id)
				for _, fn := range fns {
					fn(name, v)
				}
			}
			return v
		}
	}
}

// Seq returns the write sequence number for name: 0 if never written,
// monotonically increasing afterwards. Used by dependency-triggered
// monitors to detect relevant state changes (§6).
func (s *Store) Seq(name string) uint64 {
	id, ok := s.Lookup(name)
	if !ok {
		return 0
	}
	return s.SeqID(id)
}

// SeqID returns the write sequence number for id.
func (s *Store) SeqID(id ID) uint64 {
	c := s.cellAt(id)
	if c == nil {
		return 0
	}
	return c.seq.Load()
}

// Watch registers fn to run on every write to name. The key is interned
// if needed.
func (s *Store) Watch(name string, fn WatchFunc) {
	id := s.Intern(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.watchers.Load()
	next := make(map[ID][]WatchFunc, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = append(append([]WatchFunc(nil), next[id]...), fn)
	s.watchers.Store(&next)
}

// Snapshot returns a point-in-time copy of all scalar cells.
func (s *Store) Snapshot() map[string]float64 {
	s.mu.Lock()
	names := append([]string(nil), s.names...)
	s.mu.Unlock()
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = s.LoadID(ID(i))
	}
	return out
}

// Keys returns all interned keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	out := append([]string(nil), s.names...)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// PutObject stores an arbitrary named object (estimator, window,
// histogram) alongside the scalar cells. Property implementations use
// this to keep state that does not fit a float64.
func (s *Store) PutObject(name string, obj any) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	s.objects[name] = obj
}

// Object returns the object stored under name, or nil.
func (s *Store) Object(name string) any {
	s.objMu.RLock()
	defer s.objMu.RUnlock()
	return s.objects[name]
}

// Dump renders the scalar contents for debugging, one "key=value" per
// line in key order.
func (s *Store) Dump() string {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%g\n", k, snap[k])
	}
	return out
}
