package featurestore

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestShardedAggregateOps(t *testing.T) {
	s := NewSharded(4)
	s.RegisterAggregate("lat", AggSum)
	s.RegisterAggregate("peak", AggMax)
	s.RegisterAggregate("floor", AggMin)
	s.RegisterAggregate("load", AggMean)
	for i := 0; i < 4; i++ {
		sh := s.Shard(i)
		sh.Save("lat", float64(i+1))   // 1+2+3+4 = 10
		sh.Save("peak", float64(i))    // max 3
		sh.Save("floor", float64(i+5)) // min 5
		sh.Save("load", float64(i*2))  // mean (0+2+4+6)/4 = 3
	}
	if e := s.Aggregate(); e != 1 {
		t.Fatalf("first epoch = %d, want 1", e)
	}
	want := map[string]float64{
		"lat_global": 10, "peak_global": 3, "floor_global": 5, "load_global": 3,
	}
	for i := 0; i < 4; i++ {
		sh := s.Shard(i)
		for k, v := range want {
			if got := sh.Load(k); got != v {
				t.Errorf("shard %d: %s = %g, want %g", i, k, got, v)
			}
		}
		if got := sh.Load(EpochKey); got != 1 {
			t.Errorf("shard %d: epoch cell = %g, want 1", i, got)
		}
	}
	snap := s.Snapshot()
	if snap.Epoch != 1 || !reflect.DeepEqual(snap.Values, want) {
		t.Fatalf("snapshot = %+v, want epoch 1 values %v", snap, want)
	}
}

// TestShardedEpochMonotonicAndConsistent drives a seeded cross-shard
// SAVE/LOAD feedback pair epoch by epoch: each shard contributes, the
// aggregate is broadcast, and every shard must observe (a) strictly
// monotonic epochs, (b) a global value consistent with the epoch cell —
// never a torn pair — and (c) convergence within one epoch of the
// writers quiescing.
func TestShardedEpochMonotonicAndConsistent(t *testing.T) {
	const shards = 3
	rng := rand.New(rand.NewSource(7))
	s := NewSharded(shards)
	s.RegisterAggregate("x", AggSum)

	contrib := make([]float64, shards)
	lastEpoch := 0.0
	for epoch := 1; epoch <= 20; epoch++ {
		// Writers: each shard saves a fresh contribution (quiesce after
		// epoch 15 — values stop changing).
		if epoch <= 15 {
			for i := 0; i < shards; i++ {
				contrib[i] = float64(rng.Intn(100))
				s.Shard(i).Save("x", contrib[i])
			}
		}
		s.Aggregate()
		wantSum := contrib[0] + contrib[1] + contrib[2]
		for i := 0; i < shards; i++ {
			e := s.Shard(i).Load(EpochKey)
			if e != float64(epoch) || e != lastEpoch+1 {
				t.Fatalf("epoch cell non-monotonic on shard %d: %g after %g (want %d)", i, e, lastEpoch, epoch)
			}
			if got := s.Shard(i).Load("x_global"); got != wantSum {
				t.Fatalf("epoch %d: shard %d x_global = %g, want %g (torn read)", epoch, i, got, wantSum)
			}
		}
		lastEpoch = float64(epoch)
	}
	// Convergence: after quiescing, the aggregate is already exact and
	// stays fixed for every later epoch (bounded by 1 epoch).
	before := s.Snapshot().Values["x_global"]
	s.Aggregate()
	if after := s.Snapshot().Values["x_global"]; after != before {
		t.Fatalf("aggregate moved after quiesce: %g -> %g", before, after)
	}
}

func TestShardedDeterminism(t *testing.T) {
	run := func() []*EpochSnapshot {
		s := NewSharded(4)
		s.RegisterAggregate("a", AggSum)
		s.RegisterAggregate("b", AggMax)
		rng := rand.New(rand.NewSource(99))
		var snaps []*EpochSnapshot
		for e := 0; e < 10; e++ {
			for i := 0; i < 4; i++ {
				s.Shard(i).Save("a", float64(rng.Intn(1000)))
				s.Shard(i).Save("b", float64(rng.Intn(1000)))
			}
			s.Aggregate()
			snaps = append(snaps, s.Snapshot())
		}
		return snaps
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Epoch != b[i].Epoch || !reflect.DeepEqual(a[i].Values, b[i].Values) {
			t.Fatalf("epoch %d diverged across identical seeded runs: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}

// TestShardedConcurrentWriters hammers per-shard writers against the
// aggregator under -race: shard writes are lock-free atomics and the
// snapshot is an immutable swap, so nothing here may race even without
// a pool barrier. (Consistency-under-concurrency is weaker than at a
// barrier — this test only asserts memory safety and snapshot
// immutability.)
func TestShardedConcurrentWriters(t *testing.T) {
	const shards = 4
	s := NewSharded(shards)
	s.RegisterAggregate("hot", AggSum)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := s.Shard(i)
			id := sh.Intern("hot")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
					sh.SaveID(id, float64(n))
					_ = sh.Load("hot_global")
				}
			}
		}(i)
	}
	for e := 0; e < 200; e++ {
		s.Aggregate()
		snap := s.Snapshot()
		if snap.Epoch == 0 {
			t.Error("snapshot epoch 0 after Aggregate")
		}
	}
	close(stop)
	wg.Wait()
	if s.Epoch() != 200 {
		t.Fatalf("epoch = %d, want 200", s.Epoch())
	}
}
