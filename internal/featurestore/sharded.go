package featurestore

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// AggOp combines per-shard contributions into one global value.
type AggOp int

// Aggregation operators. AggLast is deliberately absent: "last writer
// across shards" has no deterministic meaning when shards run
// concurrently.
const (
	// AggSum publishes the sum of the shard contributions.
	AggSum AggOp = iota
	// AggMax publishes the maximum contribution.
	AggMax
	// AggMin publishes the minimum contribution.
	AggMin
	// AggMean publishes the arithmetic mean of the contributions.
	AggMean
)

// String names the operator.
func (op AggOp) String() string {
	switch op {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggMean:
		return "mean"
	default:
		return fmt.Sprintf("aggop(%d)", int(op))
	}
}

// GlobalKey derives the key a shard LOADs to read the cross-shard
// aggregate of name. Keeping the contribution key (what each shard
// SAVEs) and the global key (what the aggregator publishes) distinct is
// what lets AggSum work: if the broadcast landed in the contribution
// cell, next epoch's sum would count the previous aggregate N times.
// The suffix is underscore-joined so the derived key stays a legal
// guardrail-spec identifier: a monitor can write LOAD(err_rate_global)
// directly.
func GlobalKey(name string) string { return name + "_global" }

// EpochKey is the per-shard cell the aggregator stamps with the epoch
// number at every barrier. A guardrail that LOADs both a global key and
// EpochKey in one evaluation always sees a consistent pair: broadcasts
// happen only while every shard is parked at the barrier. Like
// GlobalKey it is a legal spec identifier, so rules can gate on
// LOAD(fs_epoch) > 0 to skip evaluations before the first aggregate.
const EpochKey = "fs_epoch"

// IsGlobalKey reports whether key names a cross-shard aggregate read —
// a GlobalKey-derived cell or the EpochKey stamp. The provenance plane
// uses it to mark feature reads that are barrier-epoch snapshots
// rather than per-shard state.
func IsGlobalKey(key string) bool {
	return key == EpochKey || strings.HasSuffix(key, "_global")
}

// aggregate is one registered cross-shard aggregation.
type aggregate struct {
	name   string // contribution key, SAVEd per shard
	global string // published key, LOADed per shard
	op     AggOp
	src    []ID // per-shard contribution cell
	dst    []ID // per-shard published cell
}

// EpochSnapshot is one epoch's published aggregate view: an immutable
// value swapped in whole, so readers on any goroutine see a consistent
// (epoch, values) pair without locks.
type EpochSnapshot struct {
	// Epoch is the barrier count at publication (1-based; 0 = never
	// aggregated).
	Epoch uint64
	// Values maps global keys (GlobalKey(name)) to their aggregates.
	Values map[string]float64
}

// Sharded splits the feature store into per-shard cells with
// epoch-based cross-shard aggregation — the paper's global SAVE/LOAD
// surface scaled out the way eBPF scales maps: writes go to per-CPU
// (here per-shard) slots on a lock-free path, and a periodic aggregation
// step folds them into a globally consistent snapshot.
//
// Each shard owns a full *Store; monitors pinned to shard i intern,
// SAVE, and LOAD against Shard(i) exactly as they would against a
// single store, keeping the fire path lock-free on the shard's own
// goroutine. Keys registered with RegisterAggregate additionally get a
// derived global key per shard: at every Aggregate call (wired to the
// kernel Pool's barrier) the shard contributions under the plain key
// are op-combined and the result is broadcast into every shard's
// global-key cell, along with the epoch number under EpochKey. Because
// Aggregate runs only while all shards are parked at a barrier, shard
// reads of global cells are never concurrent with the broadcast: LOADs
// of globally-aggregated keys see a consistent, at-most-one-epoch-stale
// snapshot without taking any lock on the fire path.
type Sharded struct {
	shards []*Store

	mu     sync.Mutex
	aggs   []aggregate
	byName map[string]int // contribution key → index into aggs
	epoch  []ID           // per-shard EpochKey cell

	count atomic.Uint64
	snap  atomic.Pointer[EpochSnapshot]
}

// NewSharded returns a sharded store with n independent shard cells
// (n >= 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		panic(fmt.Sprintf("featurestore: sharded store needs at least one shard, got %d", n))
	}
	s := &Sharded{byName: make(map[string]int)}
	for i := 0; i < n; i++ {
		sh := New()
		s.shards = append(s.shards, sh)
		s.epoch = append(s.epoch, sh.Intern(EpochKey))
	}
	s.snap.Store(&EpochSnapshot{Values: map[string]float64{}})
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i's store.
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// Shards returns the shard stores in index order. The slice is the
// sharded store's own; callers must not mutate it.
func (s *Sharded) Shards() []*Store { return s.shards }

// RegisterAggregate arms epoch aggregation for name: every shard's
// contribution under name is op-combined at each Aggregate call and
// broadcast to every shard under the returned global key
// (GlobalKey(name)). Registering the same key twice returns the
// existing registration (the first operator wins). Registration is a
// load-time operation; it interns cells on every shard.
func (s *Sharded) RegisterAggregate(name string, op AggOp) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byName[name]; ok {
		return s.aggs[i].global
	}
	a := aggregate{name: name, global: GlobalKey(name), op: op}
	for _, sh := range s.shards {
		a.src = append(a.src, sh.Intern(name))
		a.dst = append(a.dst, sh.Intern(a.global))
	}
	s.byName[name] = len(s.aggs)
	s.aggs = append(s.aggs, a)
	return a.global
}

// Aggregates returns the registered contribution keys in sorted order.
func (s *Sharded) Aggregates() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.aggs))
	for _, a := range s.aggs {
		out = append(out, a.name)
	}
	sort.Strings(out)
	return out
}

// combine folds the shard contributions under op.
func combine(op AggOp, vals []float64) float64 {
	switch op {
	case AggSum, AggMean:
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if op == AggMean {
			return sum / float64(len(vals))
		}
		return sum
	case AggMax:
		out := math.Inf(-1)
		for _, v := range vals {
			if v > out {
				out = v
			}
		}
		return out
	case AggMin:
		out := math.Inf(1)
		for _, v := range vals {
			if v < out {
				out = v
			}
		}
		return out
	default:
		return 0
	}
}

// Aggregate runs one epoch: it reads every registered key's per-shard
// contributions, op-combines them, broadcasts the results (and the new
// epoch number under EpochKey) into every shard, and publishes an
// immutable EpochSnapshot. It returns the new epoch number.
//
// Call it from the kernel Pool's barrier (all shards parked) for the
// consistency guarantee monitors rely on; calling it concurrently with
// running shards is memory-safe (cells are atomics) but a monitor might
// then read adjacent global keys from two different epochs.
func (s *Sharded) Aggregate() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.count.Add(1)
	values := make(map[string]float64, len(s.aggs))
	vals := make([]float64, len(s.shards))
	for i := range s.aggs {
		a := &s.aggs[i]
		for si, sh := range s.shards {
			// Raw cell read: plane maintenance must not count as
			// feature-store LOAD traffic (mirrors PublishID).
			if c := sh.cellAt(a.src[si]); c != nil {
				vals[si] = math.Float64frombits(c.bits.Load())
			} else {
				vals[si] = 0
			}
		}
		v := combine(a.op, vals)
		values[a.global] = v
		for si, sh := range s.shards {
			sh.PublishID(a.dst[si], v)
		}
	}
	for si, sh := range s.shards {
		sh.PublishID(s.epoch[si], float64(epoch))
	}
	s.snap.Store(&EpochSnapshot{Epoch: epoch, Values: values})
	return epoch
}

// Epoch returns the number of completed aggregation epochs.
func (s *Sharded) Epoch() uint64 { return s.count.Load() }

// Snapshot returns the most recently published epoch snapshot. The
// returned value is immutable and safe to read from any goroutine.
func (s *Sharded) Snapshot() *EpochSnapshot { return s.snap.Load() }
