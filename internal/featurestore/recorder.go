package featurestore

import (
	"fmt"
	"strings"
	"sync"
)

// Write is one recorded feature-store write.
type Write struct {
	// Seq is a global, monotonically increasing write number.
	Seq uint64
	// Key and Value are what was written.
	Key   string
	Value float64
}

// Recorder is a flight recorder over feature-store writes: a bounded
// ring of the most recent SAVEs, attached via AttachRecorder. When a
// guardrail fires, the monitor runtime snapshots the recorder into the
// violation report — the paper's A1 ("record out-of-distribution
// inputs", "logs relevant system context... which inputs triggered
// violation") and its answer to the reproducibility concern of §1:
// post-hoc debugging needs the exact inputs around the violation.
type Recorder struct {
	mu   sync.Mutex
	ring []Write
	head int
	size int
	seq  uint64
}

// NewRecorder returns a recorder retaining the most recent capacity
// writes.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("featurestore: recorder capacity must be positive")
	}
	return &Recorder{ring: make([]Write, capacity)}
}

// AttachRecorder subscribes rec to every write of the listed keys (all
// currently interned keys when none are listed). Keys interned later are
// not recorded unless attached explicitly.
func (s *Store) AttachRecorder(rec *Recorder, keys ...string) {
	if len(keys) == 0 {
		keys = s.Keys()
	}
	for _, k := range keys {
		s.Watch(k, rec.observe)
	}
}

func (r *Recorder) observe(key string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	w := Write{Seq: r.seq, Key: key, Value: value}
	if r.size == len(r.ring) {
		r.ring[r.head] = w
		r.head = (r.head + 1) % len(r.ring)
	} else {
		r.ring[(r.head+r.size)%len(r.ring)] = w
		r.size++
	}
}

// Record manually appends a write (for recorders not attached to a
// store).
func (r *Recorder) Record(key string, value float64) { r.observe(key, value) }

// Recent returns up to n of the most recent writes, oldest first.
func (r *Recorder) Recent(n int) []Write {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.size {
		n = r.size
	}
	out := make([]Write, 0, n)
	start := r.size - n
	for i := start; i < r.size; i++ {
		out = append(out, r.ring[(r.head+i)%len(r.ring)])
	}
	return out
}

// Total returns the number of writes ever observed.
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dump renders the retained writes for logs, oldest first.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, w := range r.Recent(len(r.ring)) {
		fmt.Fprintf(&b, "#%d %s=%g\n", w.Seq, w.Key, w.Value)
	}
	return b.String()
}
