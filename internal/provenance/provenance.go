// Package provenance captures per-decision "why" records for the
// guardrail runtime: every monitor fault, rule violation, and rollout
// rollback gets a causal record — the feature values the rule LOADed,
// the branch path the VM took, the actions it emitted or suppressed,
// and the verifier proof it executed under — while healthy evaluations
// are sampled head-based per monitor so the hot path stays within a
// strict overhead budget.
//
// The plane mirrors internal/telemetry's discipline exactly:
//
//   - a nil *Recorder is a valid recorder whose every method is a
//     cheap no-op, so instrumentation sites need no conditionals and
//     the disabled hot path allocates nothing;
//   - records flow through a bounded ring per shard and merge
//     deterministically (stable order by time, then shard, then
//     per-shard sequence), like the flight recorder;
//   - capture itself is allocation-free: monitors fill a reusable
//     scratch Record with fixed inline arrays and Commit copies it
//     into the preallocated ring.
//
// Reconciliation invariant: always-on kinds match the counters
// exactly. Every telemetry violation increments produces one
// KindViolation record, every monitor fault one KindFault record, and
// every rollout rollback one KindRollback record.
package provenance

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a decision record.
type Kind uint8

const (
	// KindEval is a sampled healthy evaluation (the rule held).
	KindEval Kind = iota
	// KindViolation is an evaluation whose rule did not hold. Always
	// recorded.
	KindViolation
	// KindFault is a monitor fault: a VM trap, a corrupt feature read,
	// an injected evaluation fault, or an action dispatch failure fed
	// to the breaker. Always recorded, one per fault.
	KindFault
	// KindGate is a rollout promotion gate scored over its window
	// (pass or fail), with both lanes attached.
	KindGate
	// KindRollback is a rollout auto- or operator-rollback. Always
	// recorded.
	KindRollback

	numKinds
)

var kindNames = [numKinds]string{"eval", "violation", "fault", "gate", "rollback"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Inline capture capacities. Records are fixed-size so the scratch
// fill and the ring store never allocate; overflow sets the matching
// Truncated flag instead of growing.
const (
	// MaxFeatures bounds the feature reads kept per record.
	MaxFeatures = 16
	// MaxBranches bounds the VM branch decisions kept per record
	// (matches vm.TraceCap).
	MaxBranches = 32
	// MaxActions bounds the action outcomes kept per record.
	MaxActions = 8
)

// FeatureRead is one LOAD observed during an evaluation.
type FeatureRead struct {
	// Key is the feature-store cell name (interned; referencing it
	// allocates nothing).
	Key string
	// Value is what the rule actually computed with — after NaN
	// patching, if any.
	Value float64
	// Patched marks a corrupt (NaN) read served from the last known
	// good value.
	Patched bool
	// Global marks a cross-shard aggregate snapshot (a *_global cell
	// or the fs_epoch stamp).
	Global bool
}

// BranchDecision is one conditional jump the VM resolved.
type BranchDecision struct {
	PC    int32
	Taken bool
}

// ActionOutcome is one action the evaluation emitted — or would have,
// had it not been suppressed.
type ActionOutcome struct {
	// Name is the rendered action ("REPORT", "SAVE(ml_enabled)", ...).
	Name string
	// Outcome is "ok", "failed", "retry", "dead-letter", or
	// "suppressed" (shadow / act-gate / rule-only phase).
	Outcome string
}

// Window is one subject's telemetry lane over a rollout gate window,
// attached to KindGate records so an operator can see the exact
// numbers the gate scored.
type Window struct {
	Evals      uint64
	Violations uint64
	Faults     uint64
	Dispatches uint64
	Failures   uint64
	Steps      float64
}

// Record is one decision record. The inline arrays are capped; only
// the first N* entries are meaningful. Records are plain values —
// copying one copies the whole capture.
type Record struct {
	// Seq is the recorder-assigned sequence number (reassigned on
	// merge to the deterministic global order).
	Seq uint64
	// At is the simulated time of the decision (the trigger time for
	// evaluations, the fault/rollback time otherwise).
	At int64
	// Shard is the recording shard; Epoch is the cross-shard
	// aggregation epoch last stamped at a pool barrier (0 until the
	// first barrier, and always 0 on a single kernel).
	Shard int
	Epoch uint64

	Kind Kind
	// Monitor is the deciding monitor's loaded name (candidates carry
	// their versioned name@v<gen> form); Gen is its deployment
	// generation under that name.
	Monitor string
	Gen     int
	// Site is the triggering hook site ("" for timer and dependency
	// triggers); Arg is the trigger argument the rule saw in r0.
	Site string
	Arg  float64

	// Held reports whether the rule held; Shadow whether action
	// effects were suppressed, with ShadowReason saying why
	// ("shadow-mode", "shadow-state", "forced-shadow", "act-gate").
	Held         bool
	Shadow       bool
	ShadowReason string
	// TwoPhase marks a hysteresis evaluation that re-ran with actions
	// enabled; the capture spans both phases.
	TwoPhase bool
	// Steps is the evaluation's VM instruction count (both phases).
	Steps uint64

	// FaultKind is the stable fault marker ("div-trap",
	// "corrupt-load", "injected-trap", "action-failed", ...) on
	// KindFault records.
	FaultKind string

	// Verifier proof metadata the evaluation executed under.
	TrapFree  bool
	DivProven bool
	MaxSteps  int

	NFeatures         int
	Features          [MaxFeatures]FeatureRead
	FeaturesTruncated bool

	NBranches         int
	Branches          [MaxBranches]BranchDecision
	BranchesTruncated bool

	NActions         int
	Actions          [MaxActions]ActionOutcome
	ActionsTruncated bool

	// Rollout provenance (KindGate, KindRollback). Stage is "shadow"
	// or "canary"; GateReason is "" for a passed gate; GateSource says
	// whether the window was scored from the flight recorder
	// ("flight") or from monitor-stats deltas after the ring wrapped
	// ("stats"). Reason carries the rollback reason.
	Stage      string
	GateReason string
	GateSource string
	Reason     string
	Cand       Window
	Inc        Window
}

// Reset clears the per-capture state of a scratch record without
// zeroing the inline arrays (entries beyond the N* counts are never
// read), so reuse costs a handful of stores, not a 1 KiB memclr.
func (r *Record) Reset() {
	r.Seq, r.At, r.Shard, r.Epoch = 0, 0, 0, 0
	r.Kind = KindEval
	r.Monitor, r.Gen, r.Site, r.Arg = "", 0, "", 0
	r.Held, r.Shadow, r.ShadowReason, r.TwoPhase = false, false, "", false
	r.Steps = 0
	r.FaultKind = ""
	r.TrapFree, r.DivProven, r.MaxSteps = false, false, 0
	r.NFeatures, r.FeaturesTruncated = 0, false
	r.NBranches, r.BranchesTruncated = 0, false
	r.NActions, r.ActionsTruncated = 0, false
	r.Stage, r.GateReason, r.GateSource, r.Reason = "", "", "", ""
	r.Cand, r.Inc = Window{}, Window{}
}

// AddFeature appends one feature read, setting the truncation flag on
// overflow.
func (r *Record) AddFeature(key string, value float64, patched, global bool) {
	if r.NFeatures >= MaxFeatures {
		r.FeaturesTruncated = true
		return
	}
	r.Features[r.NFeatures] = FeatureRead{Key: key, Value: value, Patched: patched, Global: global}
	r.NFeatures++
}

// AddAction appends one action outcome, setting the truncation flag on
// overflow.
func (r *Record) AddAction(name, outcome string) {
	if r.NActions >= MaxActions {
		r.ActionsTruncated = true
		return
	}
	r.Actions[r.NActions] = ActionOutcome{Name: name, Outcome: outcome}
	r.NActions++
}

// Recorder is one shard's provenance lane: a bounded ring of decision
// records plus the sampling policy. All methods are safe on a nil
// receiver (no-ops / zero values), so a runtime without provenance
// attached pays only a nil test per site.
type Recorder struct {
	shard        int
	healthyEvery uint64
	epoch        atomic.Uint64

	mu    sync.Mutex
	ring  []Record
	head  int // next write slot
	size  int
	seq   uint64
	total uint64
}

// DefaultHealthyEvery is the default healthy-evaluation sampling
// stride: 1 in N healthy fires is kept (violations and faults are
// always kept).
const DefaultHealthyEvery = 128

// New returns a recorder retaining the last capacity records, keeping
// 1 in healthyEvery healthy evaluations (<= 0 means drop all healthy
// fires; violations, faults, gates, and rollbacks are always kept).
func New(capacity, healthyEvery int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	r := &Recorder{ring: make([]Record, capacity)}
	if healthyEvery > 0 {
		r.healthyEvery = uint64(healthyEvery)
	}
	return r
}

// SetShard labels records committed here with a shard index.
func (r *Recorder) SetShard(i int) {
	if r != nil {
		r.shard = i
	}
}

// SetEpoch stamps the cross-shard aggregation epoch subsequent records
// carry; the sharded facade calls it from the pool barrier.
func (r *Recorder) SetEpoch(e uint64) {
	if r != nil {
		r.epoch.Store(e)
	}
}

// HealthyEvery returns the healthy-fire sampling stride (0 = drop all
// healthy fires).
func (r *Recorder) HealthyEvery() uint64 {
	if r == nil {
		return 0
	}
	return r.healthyEvery
}

// Commit copies rec into the ring, stamping shard, epoch, and the next
// sequence number onto it. The caller's record is mutated (stamped)
// but not retained.
//
//guardrails:hotpath
func (r *Recorder) Commit(rec *Record) {
	if r == nil {
		return
	}
	rec.Shard = r.shard
	rec.Epoch = r.epoch.Load()
	r.push(rec)
}

// push assigns the next sequence number and copies rec into the ring,
// leaving the shard/epoch stamps alone (Merge preserves the originals).
//
//guardrails:hotpath
func (r *Recorder) push(rec *Record) {
	r.mu.Lock()
	r.seq++
	r.total++
	rec.Seq = r.seq
	r.ring[r.head] = *rec
	r.head = (r.head + 1) % len(r.ring)
	if r.size < len(r.ring) {
		r.size++
	}
	r.mu.Unlock()
}

// Total returns how many records were ever committed (retained or
// evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns the retained record count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Cap returns the ring capacity (0 for a nil recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Records returns the retained records, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.size)
	start := r.head - r.size
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.size; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// ForMonitor returns the last n retained records for one monitor
// (matched against the loaded name, which for rollout candidates is
// the versioned name@v<gen> form), oldest first. n <= 0 returns all.
func (r *Recorder) ForMonitor(name string, n int) []Record {
	all := r.Records()
	var out []Record
	for _, rec := range all {
		if rec.Monitor == name {
			out = append(out, rec)
		}
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Merge combines per-shard recorders into one deterministic lane: the
// union of retained records ordered by (At, Shard, Seq) — the same
// total order every run of a seeded workload produces regardless of
// which shard's goroutine committed first in wall time — with
// sequence numbers reassigned to that order. Nil recorders are
// skipped. The merged recorder retains everything it was given.
func Merge(recs ...*Recorder) *Recorder {
	var all []Record
	healthy := uint64(0)
	for _, r := range recs {
		if r == nil {
			continue
		}
		all = append(all, r.Records()...)
		if h := r.HealthyEvery(); h > healthy {
			healthy = h
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		if all[i].Shard != all[j].Shard {
			return all[i].Shard < all[j].Shard
		}
		return all[i].Seq < all[j].Seq
	})
	capacity := len(all)
	if capacity == 0 {
		capacity = 1
	}
	m := New(capacity, int(healthy))
	for i := range all {
		m.push(&all[i])
	}
	return m
}
