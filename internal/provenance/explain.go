package provenance

import (
	"fmt"
	"strings"
	"time"
)

// Explain renders decision records as a human-readable causal chain,
// oldest first — the text behind `grailctl explain`. It consumes the
// wire form so the CLI can render exactly what a live /why endpoint
// served.
func Explain(monitor string, recs []RecordJSON) string {
	var b strings.Builder
	if len(recs) == 0 {
		fmt.Fprintf(&b, "%s: no decision records retained\n", monitor)
		fmt.Fprintf(&b, "(not loaded, provenance not attached, or nothing sampled yet)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%s — last %d decision(s):\n", monitor, len(recs))
	for _, r := range recs {
		b.WriteString(explainOne(r))
	}
	return b.String()
}

func explainOne(r RecordJSON) string {
	var b strings.Builder
	at := time.Duration(r.At) * time.Nanosecond
	head := strings.ToUpper(r.Kind)
	fmt.Fprintf(&b, "\n[%s] %s", at, head)
	if r.Gen > 0 {
		fmt.Fprintf(&b, "  %s@v%d", r.Monitor, r.Gen)
	} else if r.Monitor != "" {
		fmt.Fprintf(&b, "  %s", r.Monitor)
	}
	fmt.Fprintf(&b, "  (shard %d", r.Shard)
	if r.Epoch > 0 {
		fmt.Fprintf(&b, ", epoch %d", r.Epoch)
	}
	b.WriteString(")\n")

	switch r.Kind {
	case "gate":
		verdict := "passed"
		if r.GateReason != "" {
			verdict = "FAILED: " + r.GateReason
		}
		fmt.Fprintf(&b, "  %s gate %s (window scored from %s)\n", r.Stage, verdict, r.GateSource)
		if r.Cand != nil {
			b.WriteString("  candidate: " + windowLine(*r.Cand))
		}
		if r.Inc != nil {
			b.WriteString("  incumbent: " + windowLine(*r.Inc))
		}
		return b.String()
	case "rollback":
		fmt.Fprintf(&b, "  rolled back: %s\n", r.Reason)
		return b.String()
	}

	// Evaluation-shaped records (eval / violation / fault).
	if r.Site != "" {
		fmt.Fprintf(&b, "  trigger: %s (arg %g)\n", r.Site, r.Arg)
	} else if r.Arg != 0 {
		fmt.Fprintf(&b, "  trigger: arg %g\n", r.Arg)
	}
	if len(r.Features) > 0 {
		b.WriteString("  loaded:")
		for _, f := range r.Features {
			fmt.Fprintf(&b, " %s=%g", f.Key, f.Value)
			var marks []string
			if f.Patched {
				marks = append(marks, "patched")
			}
			if f.Global {
				marks = append(marks, "global")
			}
			if len(marks) > 0 {
				fmt.Fprintf(&b, " (%s)", strings.Join(marks, ", "))
			}
		}
		if r.FeaturesTruncated {
			b.WriteString(" …")
		}
		b.WriteString("\n")
	}
	if len(r.Branches) > 0 {
		b.WriteString("  path:")
		for _, br := range r.Branches {
			arm := "fall"
			if br.Taken {
				arm = "jump"
			}
			fmt.Fprintf(&b, " pc%d:%s", br.PC, arm)
		}
		if r.BranchesTruncated {
			b.WriteString(" …")
		}
		b.WriteString("\n")
	}
	proof := "guarded"
	if r.TrapFree {
		proof = "proven trap-free"
		if r.DivProven {
			proof += ", div-proven"
		}
		if r.MaxSteps > 0 {
			proof += fmt.Sprintf(", ≤%d steps certified", r.MaxSteps)
		}
	}
	fmt.Fprintf(&b, "  vm: %d steps (%s)", r.Steps, proof)
	if r.TwoPhase {
		b.WriteString(", two-phase")
	}
	b.WriteString("\n")
	if r.Kind == "fault" {
		fmt.Fprintf(&b, "  fault: %s\n", r.FaultKind)
	} else {
		verdict := "held"
		if !r.Held {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(&b, "  rule: %s\n", verdict)
	}
	if r.Shadow {
		fmt.Fprintf(&b, "  actions suppressed (%s)\n", r.ShadowReason)
	}
	for _, a := range r.Actions {
		fmt.Fprintf(&b, "  action %s: %s\n", a.Name, a.Outcome)
	}
	if r.ActionsTruncated {
		b.WriteString("  action … (truncated)\n")
	}
	return b.String()
}

func windowLine(w Window) string {
	return fmt.Sprintf("evals=%d violations=%d faults=%d dispatches=%d failures=%d steps=%g\n",
		w.Evals, w.Violations, w.Faults, w.Dispatches, w.Failures, w.Steps)
}
