package provenance

import (
	"encoding/json"
	"io"
)

// RecordJSON is the wire form of a Record: inline arrays trimmed to
// their live prefixes, zero-valued optional fields omitted. It is what
// WriteJSON emits, what the ops endpoint's /why serves, and what
// grailctl explain decodes — the schema the operator tooling speaks.
type RecordJSON struct {
	Seq     uint64  `json:"seq"`
	At      int64   `json:"at"`
	Shard   int     `json:"shard"`
	Epoch   uint64  `json:"epoch,omitempty"`
	Kind    string  `json:"kind"`
	Monitor string  `json:"monitor,omitempty"`
	Gen     int     `json:"gen,omitempty"`
	Site    string  `json:"site,omitempty"`
	Arg     float64 `json:"arg,omitempty"`

	Held         bool   `json:"held"`
	Shadow       bool   `json:"shadow,omitempty"`
	ShadowReason string `json:"shadow_reason,omitempty"`
	TwoPhase     bool   `json:"two_phase,omitempty"`
	Steps        uint64 `json:"steps,omitempty"`

	FaultKind string `json:"fault_kind,omitempty"`

	TrapFree  bool `json:"trap_free,omitempty"`
	DivProven bool `json:"div_proven,omitempty"`
	MaxSteps  int  `json:"max_steps,omitempty"`

	Features          []FeatureReadJSON `json:"features,omitempty"`
	FeaturesTruncated bool              `json:"features_truncated,omitempty"`
	Branches          []BranchJSON      `json:"branches,omitempty"`
	BranchesTruncated bool              `json:"branches_truncated,omitempty"`
	Actions           []ActionJSON      `json:"actions,omitempty"`
	ActionsTruncated  bool              `json:"actions_truncated,omitempty"`

	Stage      string  `json:"stage,omitempty"`
	GateReason string  `json:"gate_reason,omitempty"`
	GateSource string  `json:"gate_source,omitempty"`
	Reason     string  `json:"reason,omitempty"`
	Cand       *Window `json:"cand,omitempty"`
	Inc        *Window `json:"inc,omitempty"`
}

// FeatureReadJSON is the wire form of one feature read.
type FeatureReadJSON struct {
	Key     string  `json:"key"`
	Value   float64 `json:"value"`
	Patched bool    `json:"patched,omitempty"`
	Global  bool    `json:"global,omitempty"`
}

// BranchJSON is the wire form of one branch decision.
type BranchJSON struct {
	PC    int32 `json:"pc"`
	Taken bool  `json:"taken"`
}

// ActionJSON is the wire form of one action outcome.
type ActionJSON struct {
	Name    string `json:"name"`
	Outcome string `json:"outcome"`
}

// View converts a Record to its wire form.
func View(r Record) RecordJSON {
	v := RecordJSON{
		Seq: r.Seq, At: r.At, Shard: r.Shard, Epoch: r.Epoch,
		Kind: r.Kind.String(), Monitor: r.Monitor, Gen: r.Gen,
		Site: r.Site, Arg: r.Arg,
		Held: r.Held, Shadow: r.Shadow, ShadowReason: r.ShadowReason,
		TwoPhase: r.TwoPhase, Steps: r.Steps,
		FaultKind: r.FaultKind,
		TrapFree:  r.TrapFree, DivProven: r.DivProven, MaxSteps: r.MaxSteps,
		FeaturesTruncated: r.FeaturesTruncated,
		BranchesTruncated: r.BranchesTruncated,
		ActionsTruncated:  r.ActionsTruncated,
		Stage:             r.Stage, GateReason: r.GateReason,
		GateSource: r.GateSource, Reason: r.Reason,
	}
	for i := 0; i < r.NFeatures; i++ {
		f := r.Features[i]
		v.Features = append(v.Features, FeatureReadJSON{
			Key: f.Key, Value: f.Value, Patched: f.Patched, Global: f.Global,
		})
	}
	for i := 0; i < r.NBranches; i++ {
		b := r.Branches[i]
		v.Branches = append(v.Branches, BranchJSON{PC: b.PC, Taken: b.Taken})
	}
	for i := 0; i < r.NActions; i++ {
		a := r.Actions[i]
		v.Actions = append(v.Actions, ActionJSON{Name: a.Name, Outcome: a.Outcome})
	}
	if r.Kind == KindGate {
		cand, inc := r.Cand, r.Inc
		v.Cand, v.Inc = &cand, &inc
	}
	return v
}

// Views converts records to their wire forms, preserving order.
func Views(recs []Record) []RecordJSON {
	out := make([]RecordJSON, 0, len(recs))
	for _, r := range recs {
		out = append(out, View(r))
	}
	return out
}

// exportJSON is the top-level export object.
type exportJSON struct {
	Total   uint64       `json:"records_total"`
	Records []RecordJSON `json:"records"`
}

// WriteJSON writes the retained records as an indented JSON object.
// Output is deterministic for a deterministic record stream: a seeded
// single-shard run (or a merged multi-shard lane) produces
// byte-identical bytes across runs. A nil recorder writes an empty
// (still valid) export.
func (r *Recorder) WriteJSON(w io.Writer) error {
	export := exportJSON{Total: r.Total(), Records: Views(r.Records())}
	if export.Records == nil {
		export.Records = []RecordJSON{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(export)
}
