package provenance

import (
	"strings"
	"sync"
	"testing"
)

func TestProvenanceRingWraparound(t *testing.T) {
	r := New(4, DefaultHealthyEvery)
	for i := 1; i <= 10; i++ {
		rec := Record{At: int64(i), Kind: KindViolation, Monitor: "m"}
		r.Commit(&rec)
	}
	if r.Total() != 10 || r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("total=%d len=%d cap=%d", r.Total(), r.Len(), r.Cap())
	}
	recs := r.Records()
	for i, rec := range recs {
		want := int64(7 + i)
		if rec.At != want || rec.Seq != uint64(want) {
			t.Errorf("record %d: at=%d seq=%d, want %d", i, rec.At, rec.Seq, want)
		}
	}
}

func TestProvenanceNilRecorderIsFree(t *testing.T) {
	var r *Recorder
	var rec Record
	exercise := func() {
		r.Commit(&rec)
		r.SetShard(1)
		r.SetEpoch(2)
		_ = r.HealthyEvery()
		_ = r.Total()
		_ = r.Len()
		_ = r.Cap()
	}
	exercise()
	if n := testing.AllocsPerRun(1000, exercise); n != 0 {
		t.Errorf("nil recorder allocates %v times per run, want 0", n)
	}
	if got := r.Records(); got != nil {
		t.Errorf("nil recorder records = %v", got)
	}
	if got := r.ForMonitor("m", 3); got != nil {
		t.Errorf("nil recorder ForMonitor = %v", got)
	}
}

func TestProvenanceCommitAllocationFree(t *testing.T) {
	r := New(64, 1)
	var rec Record
	rec.Monitor = "m"
	rec.AddFeature("k", 1, false, false)
	rec.AddAction("REPORT", "ok")
	r.Commit(&rec)
	if n := testing.AllocsPerRun(1000, func() { r.Commit(&rec) }); n != 0 {
		t.Errorf("Commit allocates %v times per run, want 0", n)
	}
}

func TestProvenanceRecordCaptureBounds(t *testing.T) {
	var r Record
	for i := 0; i < MaxFeatures+4; i++ {
		r.AddFeature("k", float64(i), false, false)
	}
	if r.NFeatures != MaxFeatures || !r.FeaturesTruncated {
		t.Errorf("features: n=%d truncated=%v", r.NFeatures, r.FeaturesTruncated)
	}
	for i := 0; i < MaxActions+2; i++ {
		r.AddAction("A", "ok")
	}
	if r.NActions != MaxActions || !r.ActionsTruncated {
		t.Errorf("actions: n=%d truncated=%v", r.NActions, r.ActionsTruncated)
	}
	r.Reset()
	if r.NFeatures != 0 || r.FeaturesTruncated || r.NActions != 0 || r.ActionsTruncated {
		t.Errorf("reset left capture state: %+v", r)
	}
}

// TestProvenanceMergeDeterministic: the merged lane must order records
// by (At, Shard, Seq) with sequence numbers reassigned, preserving the
// per-shard shard/epoch stamps — the same total order regardless of
// input recorder order.
func TestProvenanceMergeDeterministic(t *testing.T) {
	mk := func(shard int, ats ...int64) *Recorder {
		r := New(16, DefaultHealthyEvery)
		r.SetShard(shard)
		r.SetEpoch(uint64(shard) + 10)
		for _, at := range ats {
			rec := Record{At: at, Kind: KindViolation, Monitor: "m"}
			r.Commit(&rec)
		}
		return r
	}
	a := mk(0, 5, 5, 20)
	b := mk(1, 5, 10)
	c := mk(2, 1)

	m1 := Merge(a, b, c, nil)
	m2 := Merge(c, b, a) // input order must not matter
	r1, r2 := m1.Records(), m2.Records()
	if len(r1) != 6 || len(r2) != 6 {
		t.Fatalf("merged lens = %d, %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("record %d differs across merge orders:\n%+v\n%+v", i, r1[i], r2[i])
		}
	}
	wantOrder := []struct {
		at    int64
		shard int
	}{{1, 2}, {5, 0}, {5, 0}, {5, 1}, {10, 1}, {20, 0}}
	for i, rec := range r1 {
		if rec.At != wantOrder[i].at || rec.Shard != wantOrder[i].shard {
			t.Errorf("record %d: at=%d shard=%d, want at=%d shard=%d",
				i, rec.At, rec.Shard, wantOrder[i].at, wantOrder[i].shard)
		}
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq=%d, want %d", i, rec.Seq, i+1)
		}
		if rec.Epoch != uint64(rec.Shard)+10 {
			t.Errorf("record %d: epoch %d lost its shard stamp", i, rec.Epoch)
		}
	}
	if m1.HealthyEvery() != DefaultHealthyEvery {
		t.Errorf("merged healthyEvery = %d", m1.HealthyEvery())
	}
}

// TestProvenanceConcurrentCommitAndMerge is the -race guard for the
// lane discipline: shard goroutines keep committing while a driver
// merges at a simulated barrier, exactly the sharded-system shape.
func TestProvenanceConcurrentCommitAndMerge(t *testing.T) {
	const shards, perShard = 4, 500
	recs := make([]*Recorder, shards)
	for i := range recs {
		recs[i] = New(256, 1)
		recs[i].SetShard(i)
	}
	var wg sync.WaitGroup
	for i, r := range recs {
		wg.Add(1)
		go func(shard int, r *Recorder) {
			defer wg.Done()
			for j := 0; j < perShard; j++ {
				rec := Record{At: int64(j), Kind: KindEval, Monitor: "m", Held: true}
				rec.AddFeature("k", float64(j), false, false)
				r.Commit(&rec)
				if j%64 == 0 {
					r.SetEpoch(uint64(j / 64))
				}
			}
		}(i, r)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			m := Merge(recs...)
			if m.Len() > shards*256 {
				t.Errorf("merged len = %d", m.Len())
				return
			}
		}
	}()
	wg.Wait()
	<-done
	m := Merge(recs...)
	if got := m.Len(); got != shards*256 {
		t.Errorf("final merged len = %d, want %d", got, shards*256)
	}
	var total uint64
	for _, r := range recs {
		total += r.Total()
	}
	if total != shards*perShard {
		t.Errorf("committed total = %d, want %d", total, shards*perShard)
	}
}

func TestProvenanceForMonitor(t *testing.T) {
	r := New(32, DefaultHealthyEvery)
	for i := 1; i <= 6; i++ {
		name := "a"
		if i%2 == 0 {
			name = "b"
		}
		rec := Record{At: int64(i), Kind: KindViolation, Monitor: name}
		r.Commit(&rec)
	}
	got := r.ForMonitor("a", 2)
	if len(got) != 2 || got[0].At != 3 || got[1].At != 5 {
		t.Errorf("ForMonitor(a, 2) = %+v", got)
	}
	if all := r.ForMonitor("a", 0); len(all) != 3 {
		t.Errorf("ForMonitor(a, 0) = %d records", len(all))
	}
	if none := r.ForMonitor("zzz", 5); len(none) != 0 {
		t.Errorf("ForMonitor(zzz) = %+v", none)
	}
}

func TestProvenanceWriteJSONDeterministic(t *testing.T) {
	r := New(8, DefaultHealthyEvery)
	rec := Record{At: 42, Kind: KindViolation, Monitor: "m", Gen: 1, Steps: 9}
	rec.AddFeature("false_submit_rate", 0.2, false, false)
	r.Commit(&rec)
	gate := Record{At: 50, Kind: KindGate, Monitor: "m@v2", Gen: 2, Stage: "canary",
		GateSource: "flight", Cand: Window{Evals: 3}, Inc: Window{Evals: 5}}
	r.Commit(&gate)

	var a, b strings.Builder
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteJSON is not deterministic across calls")
	}
	for _, want := range []string{
		`"records_total": 2`,
		`"kind": "violation"`,
		`"key": "false_submit_rate"`,
		`"kind": "gate"`,
		`"gate_source": "flight"`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("export missing %q:\n%s", want, a.String())
		}
	}

	var nilRec *Recorder
	var c strings.Builder
	if err := nilRec.WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), `"records": []`) {
		t.Errorf("nil recorder export = %s", c.String())
	}
}

func TestProvenanceExplainRendering(t *testing.T) {
	viol := Record{At: 1e9, Kind: KindViolation, Monitor: "low-false-submit", Gen: 1,
		Steps: 8, TrapFree: true, DivProven: true, MaxSteps: 11}
	viol.AddFeature("false_submit_rate", 0.21, false, false)
	viol.AddFeature("load_global", 3, false, true)
	viol.NBranches = 1
	viol.Branches[0] = BranchDecision{PC: 3, Taken: true}
	viol.AddAction("SAVE(ml_enabled)", "save")

	fault := Record{At: 2e9, Kind: KindFault, Monitor: "low-false-submit", Gen: 1, FaultKind: "div-trap"}
	gate := Record{At: 3e9, Kind: KindGate, Monitor: "low-false-submit@v2", Gen: 2,
		Stage: "canary", GateReason: "violations regressed", GateSource: "stats",
		Cand: Window{Violations: 4}, Inc: Window{Violations: 1}}
	rb := Record{At: 4e9, Kind: KindRollback, Monitor: "rollout", Gen: 2, Reason: "canary gate failed"}
	shadow := Record{At: 5e9, Kind: KindEval, Monitor: "low-false-submit", Gen: 1,
		Held: true, Shadow: true, ShadowReason: "shadow-state", Site: "io_submit", Arg: 0.5}

	out := Explain("low-false-submit", Views([]Record{viol, fault, gate, rb, shadow}))
	for _, want := range []string{
		"low-false-submit — last 5 decision(s):",
		"VIOLATION  low-false-submit@v1",
		"loaded: false_submit_rate=0.21 load_global=3 (global)",
		"path: pc3:jump",
		"vm: 8 steps (proven trap-free, div-proven, ≤11 steps certified)",
		"rule: VIOLATED",
		"action SAVE(ml_enabled): save",
		"fault: div-trap",
		"canary gate FAILED: violations regressed (window scored from stats)",
		"candidate: evals=0 violations=4",
		"rolled back: canary gate failed",
		"trigger: io_submit (arg 0.5)",
		"actions suppressed (shadow-state)",
		"rule: held",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}

	empty := Explain("ghost", nil)
	if !strings.Contains(empty, "ghost: no decision records retained") {
		t.Errorf("empty explain = %q", empty)
	}
}

func TestProvenanceKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind should stringify as unknown")
	}
}
