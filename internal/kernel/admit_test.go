package kernel

import (
	"errors"
	"strings"
	"testing"

	"guardrails/internal/telemetry"
)

func TestAdmitDeploymentWithinBudget(t *testing.T) {
	k := New()
	sink := telemetry.New(nil, 16)
	k.SetTelemetry(sink)
	loads := []HookLoad{
		{Site: "io_submit", Monitor: "a", MaxSteps: 10},
		{Site: "io_submit", Monitor: "b", MaxSteps: 20},
		{Site: "sched_tick", Monitor: "c", MaxSteps: 50},
	}
	if err := k.AdmitDeployment(64, nil, loads); err != nil {
		t.Fatalf("within-budget deployment rejected: %v", err)
	}
	if got := sink.Counters.DeployAdmitted.Value(); got != 1 {
		t.Errorf("deployment_admitted_total = %d, want 1", got)
	}
	if got := sink.Counters.DeployRejected.Value(); got != 0 {
		t.Errorf("deployment_rejected_total = %d, want 0", got)
	}
}

func TestAdmitDeploymentAggregateOverflow(t *testing.T) {
	k := New()
	sink := telemetry.New(nil, 16)
	k.SetTelemetry(sink)
	// Each monitor fits a 64-step budget alone; the site does not.
	loads := []HookLoad{
		{Site: "io_submit", Monitor: "a", MaxSteps: 40},
		{Site: "io_submit", Monitor: "b", MaxSteps: 40},
	}
	err := k.AdmitDeployment(64, nil, loads)
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("got %v, want *AdmissionError", err)
	}
	if len(aerr.Sites) != 1 || aerr.Sites[0].Total != 80 || aerr.Sites[0].Budget != 64 {
		t.Errorf("AdmissionError.Sites = %+v", aerr.Sites)
	}
	msg := err.Error()
	for _, want := range []string{"io_submit", "80", "a=40", "b=40"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if got := sink.Counters.DeployRejected.Value(); got != 1 {
		t.Errorf("deployment_rejected_total = %d, want 1", got)
	}

	var buf strings.Builder
	if err := sink.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "deployment_rejected_total 1") {
		t.Errorf("exposition missing rejection counter:\n%s", buf.String())
	}
}

func TestAdmitDeploymentOverrides(t *testing.T) {
	k := New()
	loads := []HookLoad{
		{Site: "hot", Monitor: "a", MaxSteps: 30},
		{Site: "cold", Monitor: "b", MaxSteps: 30},
	}
	// Default budget admits both; the per-site override tightens "hot".
	err := k.AdmitDeployment(64, map[string]int{"hot": 10}, loads)
	var aerr *AdmissionError
	if !errors.As(err, &aerr) {
		t.Fatalf("override ignored: %v", err)
	}
	if len(aerr.Sites) != 1 || aerr.Sites[0].Site != "hot" {
		t.Errorf("Sites = %+v, want only hot", aerr.Sites)
	}
	// Zero default = unlimited; nil telemetry must be safe.
	if err := k.AdmitDeployment(0, nil, loads); err != nil {
		t.Errorf("unlimited budget rejected: %v", err)
	}
}
