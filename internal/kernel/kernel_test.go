package kernel

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	if n := k.Run(); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("final time = %v, want 30", k.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestPastEventsRunNow(t *testing.T) {
	k := New()
	k.At(100, func() {})
	k.Run()
	ran := false
	k.At(50, func() { ran = true }) // in the past
	k.Step()
	if !ran {
		t.Fatal("past event did not run")
	}
	if k.Now() != 100 {
		t.Errorf("clock went backwards: %v", k.Now())
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	k := New()
	var times []Time
	k.After(10, func() {
		times = append(times, k.Now())
		k.After(5, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	count := 0
	k.At(10, func() { count++ })
	k.At(20, func() { count++ })
	k.At(30, func() { count++ })
	n := k.RunUntil(25)
	if n != 2 || count != 2 {
		t.Errorf("ran %d/%d events", n, count)
	}
	if k.Now() != 25 {
		t.Errorf("clock = %v, want 25", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d", k.Pending())
	}
	// Event exactly at the deadline must NOT run (deadline exclusive).
	k.At(40, func() { count++ })
	k.RunUntil(30)
	if count != 2 {
		t.Error("event at deadline ran")
	}
}

func TestTimerPeriodic(t *testing.T) {
	k := New()
	var fires []Time
	k.Every(100, 50, 300, func(now Time) { fires = append(fires, now) })
	k.Run()
	want := []Time{100, 150, 200, 250}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	k := New()
	count := 0
	var tm *Timer
	tm = k.Every(0, 10, 0, func(now Time) {
		count++
		if count == 3 {
			tm.Stop()
		}
	})
	k.RunUntil(1000)
	if count != 3 {
		t.Errorf("fired %d times after stop, want 3", count)
	}
	tm.Stop() // idempotent
}

func TestTimerForever(t *testing.T) {
	k := New()
	count := 0
	k.Every(0, 100, 0, func(Time) { count++ })
	k.RunUntil(1000)
	if count != 10 { // t=0..900
		t.Errorf("count = %d, want 10", count)
	}
}

func TestTimerBadInterval(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Error("zero interval should panic")
		}
	}()
	k.Every(0, 0, 0, func(Time) {})
}

func TestHooksFireInOrderAndDetach(t *testing.T) {
	k := New()
	var got []string
	d1 := k.Attach("io_submit", func(_ *Kernel, site string, args []float64) {
		got = append(got, "a")
		if site != "io_submit" || len(args) != 2 || args[0] != 1 || args[1] != 2 {
			t.Errorf("hook saw site=%q args=%v", site, args)
		}
	})
	k.Attach("io_submit", func(_ *Kernel, _ string, _ []float64) { got = append(got, "b") })
	k.Fire("io_submit", 1, 2)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got = %v", got)
	}
	d1()
	k.Fire("io_submit", 1, 2)
	if len(got) != 3 || got[2] != "b" {
		t.Errorf("after detach got = %v", got)
	}
	d1() // double-detach is a no-op
	if k.FireCount("io_submit") != 2 {
		t.Errorf("fire count = %d", k.FireCount("io_submit"))
	}
	if k.FireCount("never") != 0 {
		t.Error("unknown site count should be 0")
	}
}

func TestFireUnattachedSite(t *testing.T) {
	k := New()
	k.Fire("lonely", 3.14) // must not panic
	if k.FireCount("lonely") != 1 {
		t.Error("fire count not recorded")
	}
	sites := k.Sites()
	if len(sites) != 1 || sites[0] != "lonely" {
		t.Errorf("sites = %v", sites)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{Second + Second/2, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTaskLifecycle(t *testing.T) {
	k := New()
	a, err := k.CreateTask("web", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.CreateTask("batch", 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatal("duplicate task IDs")
	}
	if got := k.Task(a.ID); got != a {
		t.Error("Task lookup failed")
	}
	if k.Task(TaskID(999)) != nil {
		t.Error("unknown task should be nil")
	}
	tasks := k.Tasks()
	if len(tasks) != 2 || tasks[0].ID > tasks[1].ID {
		t.Errorf("Tasks() = %v", tasks)
	}
	if err := k.SetPriority(b.ID, 19); err != nil {
		t.Fatal(err)
	}
	if b.Priority != 19 {
		t.Error("priority not applied")
	}
	if err := k.SetPriority(b.ID, 99); err == nil {
		t.Error("out-of-range priority should error")
	}
	if err := k.SetPriority(TaskID(999), 0); err == nil {
		t.Error("unknown task should error")
	}
	b.MemoryBytes = 4096
	if err := k.KillTask(b.ID); err != nil {
		t.Fatal(err)
	}
	if b.State != TaskKilled || b.MemoryBytes != 0 {
		t.Error("kill did not release resources")
	}
	if err := k.SetPriority(b.ID, 0); err == nil {
		t.Error("setting priority on killed task should error")
	}
	if err := k.KillTask(TaskID(999)); err == nil {
		t.Error("killing unknown task should error")
	}
}

func TestCreateTaskValidation(t *testing.T) {
	k := New()
	if _, err := k.CreateTask("bad", -21); err == nil {
		t.Error("priority below min should error")
	}
	if _, err := k.CreateTask("bad", 20); err == nil {
		t.Error("priority above max should error")
	}
}

func TestTaskStateString(t *testing.T) {
	if TaskReady.String() != "ready" || TaskRunning.String() != "running" ||
		TaskBlocked.String() != "blocked" || TaskKilled.String() != "killed" {
		t.Error("state names wrong")
	}
}
