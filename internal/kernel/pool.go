package kernel

import (
	"fmt"
	"sync"
)

// DefaultQuantum is the barrier interval a Pool uses when none is
// given: shards run independently for one simulated millisecond, then
// synchronize.
const DefaultQuantum = Millisecond

// Pool is a sharded multi-core kernel: N independent Kernel shards,
// each with its own clock, event heap, hook table, and task registry,
// advanced in lockstep epochs by a cross-shard barrier.
//
// Between barriers every shard runs its own event loop on its own
// goroutine, touching only shard-local state (its kernel, its feature
// store cell, its monitor runtime, its telemetry lane) — the simulated
// analogue of per-CPU eBPF program instances over per-CPU maps. At each
// barrier all shards are parked at the same simulated instant and the
// registered barrier callbacks run on the driver goroutine: epoch-based
// feature aggregation, rollout phase supervision, breakglass, and any
// other operation that needs a deterministic global time.
//
// Determinism: each shard's event order is fully determined by its own
// heap (time, then schedule order), and cross-shard effects happen only
// at barriers, in registration order — so a K-shard run with a fixed
// seed replays the same per-shard event order every time, and a 1-shard
// Pool is event-for-event identical to driving a single Kernel.
type Pool struct {
	shards  []*Kernel
	quantum Time

	now   atomicTime
	epoch atomicEpoch

	mu       sync.Mutex
	barriers []func(now Time, epoch uint64) // recurring, in registration order
	once     []func(now Time)               // one-shot, drained at the next barrier
}

// atomicTime / atomicEpoch are tiny named wrappers so the Pool's fields
// read as what they are.
type (
	atomicTime  struct{ v int64 }
	atomicEpoch struct{ v uint64 }
)

// NewPool returns a pool of n shards (n >= 1) with barrier interval
// quantum (<= 0 selects DefaultQuantum). All shards start at time zero
// on deployment generation 1.
func NewPool(n int, quantum Time) *Pool {
	if n < 1 {
		panic(fmt.Sprintf("kernel: pool needs at least one shard, got %d", n))
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	p := &Pool{quantum: quantum}
	for i := 0; i < n; i++ {
		p.shards = append(p.shards, New())
	}
	return p
}

// NumShards returns the shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Shard returns shard i's kernel.
func (p *Pool) Shard(i int) *Kernel { return p.shards[i] }

// Shards returns the shard kernels in index order. The slice is the
// pool's own; callers must not mutate it.
func (p *Pool) Shards() []*Kernel { return p.shards }

// Quantum returns the barrier interval.
func (p *Pool) Quantum() Time { return p.quantum }

// Now returns the pool's global time: the simulated instant of the most
// recent barrier. Between barriers individual shards may be ahead of
// it (never behind); at a barrier every shard clock equals it.
func (p *Pool) Now() Time {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Time(p.now.v)
}

// Epoch returns how many barriers have completed.
func (p *Pool) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.epoch.v
}

// OnBarrier registers fn to run at every barrier, after all shards have
// parked at the barrier time. Callbacks run on the driver goroutine in
// registration order; they may touch any shard's state (no shard events
// execute concurrently with them). The feature store's epoch aggregator
// and the fleet rollout supervisor register here.
func (p *Pool) OnBarrier(fn func(now Time, epoch uint64)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.barriers = append(p.barriers, fn)
}

// AtBarrier schedules fn to run exactly once at the next barrier —
// the deterministic point for global-time operations (deployment
// admission, breakglass engagement) requested while shards run.
// One-shots run after the recurring barrier callbacks, in the order
// they were scheduled.
func (p *Pool) AtBarrier(fn func(now Time)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.once = append(p.once, fn)
}

// RunUntil advances every shard to deadline, epoch by epoch: each epoch
// runs all shards concurrently to the epoch's barrier time, waits for
// them to park, then runs the barrier callbacks. It returns the total
// number of shard events executed. All shard clocks finish at deadline.
func (p *Pool) RunUntil(deadline Time) int {
	total := 0
	for {
		p.mu.Lock()
		now := Time(p.now.v)
		p.mu.Unlock()
		if now >= deadline {
			return total
		}
		next := now + p.quantum
		if next > deadline {
			next = deadline
		}
		if len(p.shards) == 1 {
			total += p.shards[0].RunUntil(next)
		} else {
			counts := make([]int, len(p.shards))
			var wg sync.WaitGroup
			for i, sh := range p.shards {
				wg.Add(1)
				go func(i int, sh *Kernel) {
					defer wg.Done()
					counts[i] = sh.RunUntil(next)
				}(i, sh)
			}
			wg.Wait()
			for _, c := range counts {
				total += c
			}
		}
		p.barrier(next)
	}
}

// barrier advances the global clock and epoch and runs the callbacks.
// All shards are parked when it is called.
func (p *Pool) barrier(now Time) {
	p.mu.Lock()
	p.now.v = int64(now)
	p.epoch.v++
	epoch := p.epoch.v
	recurring := p.barriers
	oneShots := p.once
	p.once = nil
	p.mu.Unlock()
	for _, fn := range recurring {
		fn(now, epoch)
	}
	for _, fn := range oneShots {
		fn(now)
	}
}

// Pending sums the queued events across shards.
func (p *Pool) Pending() int {
	n := 0
	for _, sh := range p.shards {
		n += sh.Pending()
	}
	return n
}

// SetGeneration records a fleet-wide promotion on every shard.
func (p *Pool) SetGeneration(g uint64) {
	for _, sh := range p.shards {
		sh.SetGeneration(g)
	}
}
