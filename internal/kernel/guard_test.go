package kernel

import (
	"sync"
	"testing"
)

// A panicking hook must not tear down the kernel once a panic handler is
// installed, and later hooks on the same site must still run.
func TestHookPanicGuardContainsPanics(t *testing.T) {
	k := New()
	var caught []string
	k.SetHookPanicHandler(func(site string, recovered any) {
		caught = append(caught, site)
	})
	ran := 0
	k.Attach("io:done", func(k *Kernel, site string, args []float64) {
		panic("bad monitor")
	})
	k.Attach("io:done", func(k *Kernel, site string, args []float64) {
		ran++
	})
	k.Fire("io:done", 1)
	k.Fire("io:done", 2)
	if ran != 2 {
		t.Fatalf("healthy hook ran %d times, want 2", ran)
	}
	if len(caught) != 2 || caught[0] != "io:done" {
		t.Fatalf("handler saw %v, want two io:done panics", caught)
	}
	if got := k.HookPanics(); got != 2 {
		t.Fatalf("HookPanics = %d, want 2", got)
	}
}

// Without a handler the historical behavior is preserved: the panic
// propagates to the Fire caller.
func TestHookPanicPropagatesWithoutHandler(t *testing.T) {
	k := New()
	k.Attach("io:done", func(k *Kernel, site string, args []float64) {
		panic("unguarded")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate without a handler")
		}
	}()
	k.Fire("io:done")
}

// Scheduling, attaching, and clock reads must be safe while another
// goroutine steps the event loop (monitors schedule retries and
// cool-downs from action paths).
func TestConcurrentSchedulingWhileRunning(t *testing.T) {
	k := New()
	k.Every(0, Millisecond, Second, func(now Time) {
		k.Fire("tick", float64(now))
	})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				k.After(Millisecond, func() {})
				detach := k.Attach("tick", func(k *Kernel, site string, args []float64) {})
				_ = k.Now()
				_ = k.Pending()
				_ = k.FireCount("tick")
				_ = k.Sites()
				detach()
			}
		}()
	}
	k.RunUntil(Second)
	close(stop)
	wg.Wait()
	if k.FireCount("tick") == 0 {
		t.Fatal("timer never fired")
	}
}
