// Package kernel provides the simulated operating-system kernel the
// guardrail monitors run inside: a deterministic discrete-event clock,
// kprobe-style hook points (the paper's FUNCTION trigger sites), periodic
// timers (the TIMER trigger), and a task registry with priorities (the
// substrate for the DEPRIORITIZE action).
//
// Real deployments would compile guardrails to eBPF programs attached to
// kernel functions; here subsystem simulators call Fire at their
// instrumentation points and monitors attach to those sites. Determinism
// is a feature: every experiment in the repository replays exactly given
// the same seeds.
package kernel

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
)

// Time is simulated time in nanoseconds since boot.
type Time int64

// Common durations in simulated nanoseconds.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with adaptive units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// HookFn observes a hook-point firing. args are site-specific positional
// values (e.g. latency, size); hooks must not retain the slice.
type HookFn func(k *Kernel, site string, args []float64)

type hookSlot struct {
	id uint64
	fn HookFn
}

// Kernel is a deterministic discrete-event simulated kernel. It is not
// safe for concurrent use; the event loop owns all state (as a real
// kernel hook path would run under its own synchronization).
type Kernel struct {
	now    Time
	seq    uint64
	queue  eventQueue
	hooks  map[string][]hookSlot
	hookID uint64

	tasksMu sync.Mutex
	tasks   map[TaskID]*Task
	nextTID TaskID

	fireCount map[string]uint64
}

// New returns a kernel at time zero.
func New() *Kernel {
	return &Kernel{
		hooks:     make(map[string][]hookSlot),
		tasks:     make(map[TaskID]*Task),
		fireCount: make(map[string]uint64),
		nextTID:   1,
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute time t. Times in the past run at
// the current time (immediately on the next Step).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Timer is a periodic schedule created by Every.
type Timer struct {
	stopped bool
}

// Stop cancels future firings. Safe to call multiple times.
func (t *Timer) Stop() { t.stopped = true }

// Every schedules fn at start, start+interval, ... until stop (exclusive;
// stop <= 0 means forever). It mirrors the paper's
// TIMER(start_time, interval, stop_time) trigger.
func (k *Kernel) Every(start, interval, stop Time, fn func(now Time)) *Timer {
	if interval <= 0 {
		panic("kernel: timer interval must be positive")
	}
	t := &Timer{}
	var tick func()
	next := start
	tick = func() {
		if t.stopped || (stop > 0 && k.now >= stop) {
			return
		}
		fn(k.now)
		next += interval
		if stop > 0 && next >= stop {
			return
		}
		k.At(next, tick)
	}
	k.At(start, tick)
	return t
}

// Step executes the next pending event, advancing the clock. It returns
// false when the queue is empty.
func (k *Kernel) Step() bool {
	if k.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.queue).(*event)
	k.now = e.at
	e.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// at or after deadline; the clock finishes at min(deadline, last event).
// It returns the number of events executed.
func (k *Kernel) RunUntil(deadline Time) int {
	n := 0
	for k.queue.Len() > 0 && k.queue[0].at < deadline {
		k.Step()
		n++
	}
	if k.now < deadline {
		k.now = deadline
	}
	return n
}

// Run executes events until the queue is empty and returns the count.
// Callers using unbounded timers must use RunUntil instead.
func (k *Kernel) Run() int {
	n := 0
	for k.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Attach registers fn on a hook site and returns a detach function.
// Sites are created on first use; attaching before any Fire is valid.
func (k *Kernel) Attach(site string, fn HookFn) (detach func()) {
	k.hookID++
	id := k.hookID
	k.hooks[site] = append(k.hooks[site], hookSlot{id: id, fn: fn})
	return func() {
		slots := k.hooks[site]
		for i, s := range slots {
			if s.id == id {
				k.hooks[site] = append(slots[:i:i], slots[i+1:]...)
				return
			}
		}
	}
}

// Fire invokes all hooks attached to site, in attach order. Subsystem
// simulators call this at their instrumentation points — the analogue of
// a kprobe firing.
func (k *Kernel) Fire(site string, args ...float64) {
	k.fireCount[site]++
	for _, s := range k.hooks[site] {
		s.fn(k, site, args)
	}
}

// FireCount returns how many times site has fired.
func (k *Kernel) FireCount(site string) uint64 { return k.fireCount[site] }

// Sites returns all sites that have hooks attached or have fired, sorted.
func (k *Kernel) Sites() []string {
	set := make(map[string]bool)
	for s := range k.hooks {
		set[s] = true
	}
	for s := range k.fireCount {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
