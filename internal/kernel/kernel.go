// Package kernel provides the simulated operating-system kernel the
// guardrail monitors run inside: a deterministic discrete-event clock,
// kprobe-style hook points (the paper's FUNCTION trigger sites), periodic
// timers (the TIMER trigger), and a task registry with priorities (the
// substrate for the DEPRIORITIZE action).
//
// Real deployments would compile guardrails to eBPF programs attached to
// kernel functions; here subsystem simulators call Fire at their
// instrumentation points and monitors attach to those sites. Determinism
// is a feature: every experiment in the repository replays exactly given
// the same seeds.
//
// Each event loop is single-threaded (one goroutine steps a kernel at a
// time, as a real kernel hook path runs under its own synchronization),
// but the bookkeeping — scheduling, hook attach/detach, the clock — is
// safe to call from other goroutines: monitor runtimes schedule retry
// and cool-down events from action paths, and fault-injection stress
// tests load and unload monitors while the clock advances.
//
// For multi-core execution a Pool runs N Kernel shards — each with its
// own clock, event heap, hook table, and task registry — concurrently
// between deterministic barrier points (see pool.go), the simulated
// analogue of per-CPU eBPF program instances and per-CPU maps.
package kernel

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"guardrails/internal/telemetry"
)

// Time is simulated time in nanoseconds since boot.
type Time int64

// Common durations in simulated nanoseconds.
const (
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with adaptive units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// HookFn observes a hook-point firing. args are site-specific positional
// values (e.g. latency, size); hooks must not retain the slice.
type HookFn func(k *Kernel, site string, args []float64)

// PanicHandler observes a panic recovered from a hook callback; see
// SetHookPanicHandler.
type PanicHandler func(site string, recovered any)

type hookSlot struct {
	id uint64
	fn HookFn
}

// hookSite is one hook point's dispatch state. The slot list is
// copy-on-write behind an atomic pointer so Fire — the per-event hot
// path every shard runs concurrently — reads it with a single atomic
// load: no lock, no allocation, no cache line shared with other sites'
// fire counters.
type hookSite struct {
	slots atomic.Pointer[[]hookSlot]
	fires atomic.Uint64
}

// Kernel is a deterministic discrete-event simulated kernel — in a
// sharded Pool, one shard. One goroutine at a time may step the event
// loop; scheduling, hook registration, and clock reads are safe from
// any goroutine.
type Kernel struct {
	now atomic.Int64 // Time

	qmu   sync.Mutex // guards seq + queue
	seq   uint64
	queue eventQueue

	// sites is the copy-on-write hook table: the map value is replaced
	// wholesale (under hmu) when a new site appears, and the *hookSite
	// entries themselves are stable, so Fire dispatches entirely from
	// atomic loads. hmu serializes mutations only.
	hmu        sync.Mutex
	sites      atomic.Pointer[map[string]*hookSite]
	hookID     uint64
	panicGuard atomic.Value // PanicHandler
	hookPanics atomic.Uint64

	tsink atomic.Pointer[telemetry.Sink]

	// generation is the active deployment generation number, advanced by
	// the rollout control plane on fleet-wide promotion. Generation 1 is
	// the boot deployment.
	generation atomic.Uint64

	tasksMu sync.Mutex
	tasks   map[TaskID]*Task
	nextTID TaskID
}

// New returns a kernel at time zero, on deployment generation 1.
func New() *Kernel {
	k := &Kernel{
		tasks:   make(map[TaskID]*Task),
		nextTID: 1,
	}
	empty := make(map[string]*hookSite)
	k.sites.Store(&empty)
	k.generation.Store(1)
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return Time(k.now.Load()) }

// Generation returns the active deployment generation (1 at boot).
func (k *Kernel) Generation() uint64 { return k.generation.Load() }

// SetGeneration records a fleet-wide promotion to generation g. The
// rollout control plane calls this when a canary goes fleet-wide;
// rollback never rewinds it (the last-good generation simply stays
// current). Safe from any goroutine.
func (k *Kernel) SetGeneration(g uint64) { k.generation.Store(g) }

// At schedules fn to run at absolute time t. Times in the past run at
// the current time (immediately on the next Step).
func (k *Kernel) At(t Time, fn func()) {
	if now := k.Now(); t < now {
		t = now
	}
	k.qmu.Lock()
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
	k.qmu.Unlock()
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.Now()+d, fn) }

// Timer is a periodic schedule created by Every. Safe to stop from any
// goroutine.
type Timer struct {
	stopped atomic.Bool
}

// Stop cancels future firings. Safe to call multiple times.
func (t *Timer) Stop() { t.stopped.Store(true) }

// Every schedules fn at start, start+interval, ... until stop (exclusive;
// stop <= 0 means forever). It mirrors the paper's
// TIMER(start_time, interval, stop_time) trigger.
func (k *Kernel) Every(start, interval, stop Time, fn func(now Time)) *Timer {
	if interval <= 0 {
		panic("kernel: timer interval must be positive")
	}
	t := &Timer{}
	var tick func()
	next := start
	tick = func() {
		if t.stopped.Load() || (stop > 0 && k.Now() >= stop) {
			return
		}
		fn(k.Now())
		next += interval
		if stop > 0 && next >= stop {
			return
		}
		k.At(next, tick)
	}
	k.At(start, tick)
	return t
}

// pop removes and returns the next event, or nil when the queue is
// empty, advancing the clock to the event's time.
func (k *Kernel) pop() *event {
	k.qmu.Lock()
	defer k.qmu.Unlock()
	if k.queue.Len() == 0 {
		return nil
	}
	e := heap.Pop(&k.queue).(*event)
	k.now.Store(int64(e.at))
	return e
}

// Step executes the next pending event, advancing the clock. It returns
// false when the queue is empty.
func (k *Kernel) Step() bool {
	e := k.pop()
	if e == nil {
		return false
	}
	e.fn()
	return true
}

// nextAt returns the time of the earliest pending event, or ok=false.
func (k *Kernel) nextAt() (Time, bool) {
	k.qmu.Lock()
	defer k.qmu.Unlock()
	if k.queue.Len() == 0 {
		return 0, false
	}
	return k.queue[0].at, true
}

// RunUntil executes events until the queue is empty or the next event is
// at or after deadline; the clock finishes at min(deadline, last event).
// It returns the number of events executed.
func (k *Kernel) RunUntil(deadline Time) int {
	n := 0
	for {
		at, ok := k.nextAt()
		if !ok || at >= deadline {
			break
		}
		k.Step()
		n++
	}
	if k.Now() < deadline {
		k.now.Store(int64(deadline))
	}
	return n
}

// Run executes events until the queue is empty and returns the count.
// Callers using unbounded timers must use RunUntil instead.
func (k *Kernel) Run() int {
	n := 0
	for k.Step() {
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (k *Kernel) Pending() int {
	k.qmu.Lock()
	defer k.qmu.Unlock()
	return k.queue.Len()
}

// siteFor returns the dispatch state for site, creating it (under hmu,
// with a copy-on-write map swap) on first use. The returned *hookSite
// is stable for the kernel's lifetime.
func (k *Kernel) siteFor(site string) *hookSite {
	if hs := (*k.sites.Load())[site]; hs != nil {
		return hs
	}
	k.hmu.Lock()
	defer k.hmu.Unlock()
	old := *k.sites.Load()
	if hs := old[site]; hs != nil {
		return hs
	}
	hs := &hookSite{}
	empty := make([]hookSlot, 0)
	hs.slots.Store(&empty)
	next := make(map[string]*hookSite, len(old)+1)
	for s, v := range old {
		next[s] = v
	}
	next[site] = hs
	k.sites.Store(&next)
	return hs
}

// Attach registers fn on a hook site and returns a detach function.
// Sites are created on first use; attaching before any Fire is valid.
func (k *Kernel) Attach(site string, fn HookFn) (detach func()) {
	hs := k.siteFor(site)
	k.hmu.Lock()
	k.hookID++
	id := k.hookID
	old := *hs.slots.Load()
	grown := make([]hookSlot, len(old)+1)
	copy(grown, old)
	grown[len(old)] = hookSlot{id: id, fn: fn}
	hs.slots.Store(&grown)
	k.hmu.Unlock()
	return func() {
		k.hmu.Lock()
		defer k.hmu.Unlock()
		slots := *hs.slots.Load()
		for i, s := range slots {
			if s.id == id {
				next := make([]hookSlot, 0, len(slots)-1)
				next = append(next, slots[:i]...)
				next = append(next, slots[i+1:]...)
				hs.slots.Store(&next)
				return
			}
		}
	}
}

// SetHookPanicHandler installs h as the recovery point for panics raised
// by hook callbacks: with a handler set, a panicking monitor or
// instrumentation hook is contained (recovered, counted, reported to h)
// instead of tearing down the whole simulated kernel. With no handler
// (the default) panics propagate as before.
func (k *Kernel) SetHookPanicHandler(h PanicHandler) {
	k.panicGuard.Store(h)
}

// HookPanics returns how many hook panics the panic handler absorbed.
func (k *Kernel) HookPanics() uint64 { return k.hookPanics.Load() }

// SetTelemetry attaches (or with nil, detaches) a telemetry sink.
// Every subsequent Fire records a hook-fire event and charges the
// wall-clock cost of dispatching the site's callbacks — the real
// overhead the attached monitors add — to the site's latency histogram.
// Safe to call while the kernel runs.
func (k *Kernel) SetTelemetry(s *telemetry.Sink) { k.tsink.Store(s) }

// Telemetry returns the attached sink, or nil.
func (k *Kernel) Telemetry() *telemetry.Sink { return k.tsink.Load() }

// Fire invokes all hooks attached to site, in attach order. Subsystem
// simulators call this at their instrumentation points — the analogue of
// a kprobe firing. The dispatch path is lock-free: the site entry and
// its slot list are read with two atomic loads, so concurrent shards
// firing different (or the same) sites never serialize on a mutex.
func (k *Kernel) Fire(site string, args ...float64) {
	hs := (*k.sites.Load())[site]
	if hs == nil {
		hs = k.siteFor(site)
	}
	hs.fires.Add(1)
	slots := *hs.slots.Load()
	var guard PanicHandler
	if h, ok := k.panicGuard.Load().(PanicHandler); ok && h != nil {
		guard = h
	}
	sink := k.tsink.Load()
	var wallStart time.Time
	if sink != nil {
		arg := 0.0
		if len(args) > 0 {
			arg = args[0]
		}
		sink.HookFire(int64(k.Now()), site, arg)
		wallStart = time.Now()
	}
	for _, s := range slots {
		if guard == nil {
			s.fn(k, site, args)
			continue
		}
		k.fireGuarded(s.fn, site, args, guard)
	}
	if sink != nil {
		sink.HookDispatched(site, float64(time.Since(wallStart)))
	}
}

// fireGuarded runs one hook under the panic guard.
func (k *Kernel) fireGuarded(fn HookFn, site string, args []float64, guard PanicHandler) {
	defer func() {
		if r := recover(); r != nil {
			k.hookPanics.Add(1)
			guard(site, r)
		}
	}()
	fn(k, site, args)
}

// FireCount returns how many times site has fired.
func (k *Kernel) FireCount(site string) uint64 {
	hs := (*k.sites.Load())[site]
	if hs == nil {
		return 0
	}
	return hs.fires.Load()
}

// Sites returns all sites that have hooks attached or have fired, sorted.
func (k *Kernel) Sites() []string {
	m := *k.sites.Load()
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
