package kernel

import (
	"fmt"
	"reflect"
	"testing"
)

// loadWorkload schedules a deterministic mix of one-shot events and
// timers on k, appending a record per execution to the returned log.
func loadWorkload(k *Kernel, tag string) *[]string {
	log := &[]string{}
	for i := 0; i < 5; i++ {
		i := i
		k.At(Time(i)*300*Microsecond, func() {
			*log = append(*log, fmt.Sprintf("%s:at%d@%d", tag, i, k.Now()))
		})
	}
	k.Every(100*Microsecond, 250*Microsecond, 2*Millisecond, func(now Time) {
		*log = append(*log, fmt.Sprintf("%s:tick@%d", tag, now))
	})
	// An event that schedules more events, crossing a barrier boundary.
	k.At(900*Microsecond, func() {
		k.After(400*Microsecond, func() {
			*log = append(*log, fmt.Sprintf("%s:chained@%d", tag, k.Now()))
		})
	})
	return log
}

func TestPoolSingleShardMatchesKernel(t *testing.T) {
	solo := New()
	soloLog := loadWorkload(solo, "w")
	solo.RunUntil(3 * Millisecond)

	p := NewPool(1, 0)
	poolLog := loadWorkload(p.Shard(0), "w")
	p.RunUntil(3 * Millisecond)

	if !reflect.DeepEqual(*soloLog, *poolLog) {
		t.Fatalf("1-shard pool diverged from single kernel:\nsolo: %v\npool: %v", *soloLog, *poolLog)
	}
	if got, want := p.Shard(0).Now(), solo.Now(); got != want {
		t.Fatalf("clock mismatch: pool shard at %v, solo at %v", got, want)
	}
}

func TestPoolDeterminism(t *testing.T) {
	run := func() [][]string {
		p := NewPool(4, 500*Microsecond)
		logs := make([]*[]string, 4)
		for i := range logs {
			logs[i] = loadWorkload(p.Shard(i), fmt.Sprintf("s%d", i))
		}
		p.RunUntil(3 * Millisecond)
		out := make([][]string, 4)
		for i, l := range logs {
			out[i] = *l
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("shard %d event order diverged across identical runs:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestPoolBarrier(t *testing.T) {
	p := NewPool(3, 500*Microsecond)
	var seq []string
	p.OnBarrier(func(now Time, epoch uint64) {
		for i, sh := range p.Shards() {
			if sh.Now() != now {
				t.Errorf("epoch %d: shard %d clock %v, barrier at %v", epoch, i, sh.Now(), now)
			}
		}
		seq = append(seq, fmt.Sprintf("recur@%d/e%d", now, epoch))
	})
	p.AtBarrier(func(now Time) {
		seq = append(seq, fmt.Sprintf("once@%d", now))
	})
	p.RunUntil(2 * Millisecond)
	want := []string{
		"recur@500000/e1", "once@500000",
		"recur@1000000/e2", "recur@1500000/e3", "recur@2000000/e4",
	}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("barrier sequence:\ngot  %v\nwant %v", seq, want)
	}
	if p.Epoch() != 4 {
		t.Fatalf("epoch = %d, want 4", p.Epoch())
	}
	if p.Now() != 2*Millisecond {
		t.Fatalf("pool now = %v, want 2ms", p.Now())
	}
}

// TestPoolBarrierHappensBefore drives unsynchronized (non-atomic)
// cross-shard state through the barrier: each shard bumps a plain
// counter from its own events, the barrier sums them and writes a
// broadcast value every shard reads in its next epoch. Run under -race
// this proves the barrier establishes the happens-before edges the
// epoch aggregation plane relies on.
func TestPoolBarrierHappensBefore(t *testing.T) {
	const shards = 4
	p := NewPool(shards, 200*Microsecond)
	local := make([]int, shards)     // written by shard goroutines, read at barrier
	broadcast := make([]int, shards) // written at barrier, read by shard goroutines
	var reads []int
	for i := 0; i < shards; i++ {
		i := i
		p.Shard(i).Every(50*Microsecond, 100*Microsecond, 0, func(now Time) {
			local[i]++
			if i == 0 {
				reads = append(reads, broadcast[0])
			}
		})
	}
	p.OnBarrier(func(now Time, epoch uint64) {
		sum := 0
		for i := range local {
			sum += local[i]
		}
		for i := range broadcast {
			broadcast[i] = sum
		}
	})
	p.RunUntil(2 * Millisecond)
	if local[0] == 0 || len(reads) == 0 {
		t.Fatal("workload did not run")
	}
	// The broadcast is stale by at most one epoch and monotonic.
	for i := 1; i < len(reads); i++ {
		if reads[i] < reads[i-1] {
			t.Fatalf("broadcast went backwards: %v", reads)
		}
	}
}

func TestPoolPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0, ...) did not panic")
		}
	}()
	NewPool(0, 0)
}
