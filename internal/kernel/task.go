package kernel

import (
	"fmt"
	"sort"
)

// TaskID identifies a registered task.
type TaskID int64

// TaskState enumerates the lifecycle of a simulated task.
type TaskState int

// Task states.
const (
	TaskReady TaskState = iota
	TaskRunning
	TaskBlocked
	TaskKilled
)

// String returns the state name.
func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskKilled:
		return "killed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Task is a schedulable entity. Priority follows the nice convention:
// lower values are more favored; the valid range is [-20, 19].
type Task struct {
	ID       TaskID
	Name     string
	Priority int
	State    TaskState

	// Accounting maintained by the scheduler simulator.
	CPUTime     Time // total simulated CPU consumed
	LastRunAt   Time // completion time of the task's latest quantum
	EnqueuedAt  Time // when the task last became ready
	MemoryBytes int64
}

// MinPriority and MaxPriority bound task priorities (nice values).
const (
	MinPriority = -20
	MaxPriority = 19
)

// CreateTask registers a new ready task.
func (k *Kernel) CreateTask(name string, priority int) (*Task, error) {
	if priority < MinPriority || priority > MaxPriority {
		return nil, fmt.Errorf("kernel: priority %d outside [%d, %d]", priority, MinPriority, MaxPriority)
	}
	k.tasksMu.Lock()
	defer k.tasksMu.Unlock()
	t := &Task{
		ID:         k.nextTID,
		Name:       name,
		Priority:   priority,
		State:      TaskReady,
		EnqueuedAt: k.Now(),
	}
	k.nextTID++
	k.tasks[t.ID] = t
	return t, nil
}

// Task returns the task with the given ID, or nil.
func (k *Kernel) Task(id TaskID) *Task {
	k.tasksMu.Lock()
	defer k.tasksMu.Unlock()
	return k.tasks[id]
}

// Tasks returns all tasks ordered by ID.
func (k *Kernel) Tasks() []*Task {
	k.tasksMu.Lock()
	defer k.tasksMu.Unlock()
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetPriority changes a task's priority. It is the mechanism behind the
// DEPRIORITIZE guardrail action.
func (k *Kernel) SetPriority(id TaskID, priority int) error {
	if priority < MinPriority || priority > MaxPriority {
		return fmt.Errorf("kernel: priority %d outside [%d, %d]", priority, MinPriority, MaxPriority)
	}
	k.tasksMu.Lock()
	defer k.tasksMu.Unlock()
	t, ok := k.tasks[id]
	if !ok {
		return fmt.Errorf("kernel: no task %d", id)
	}
	if t.State == TaskKilled {
		return fmt.Errorf("kernel: task %d is killed", id)
	}
	t.Priority = priority
	return nil
}

// KillTask terminates a task, releasing its resources (the OOM-killer
// analogue used by the most drastic DEPRIORITIZE form).
func (k *Kernel) KillTask(id TaskID) error {
	k.tasksMu.Lock()
	defer k.tasksMu.Unlock()
	t, ok := k.tasks[id]
	if !ok {
		return fmt.Errorf("kernel: no task %d", id)
	}
	t.State = TaskKilled
	t.MemoryBytes = 0
	return nil
}
