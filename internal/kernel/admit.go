package kernel

import (
	"fmt"
	"sort"
	"strings"
)

// HookLoad declares one monitor's intended attachment to a hook site,
// with the verifier's certified worst-case step count for its program.
// The monitor runtime builds these from compiled guardrails; the type
// is self-contained so the kernel stays independent of the compiler.
type HookLoad struct {
	// Site is the hook site the monitor attaches to.
	Site string
	// Monitor names the guardrail (for the rejection message).
	Monitor string
	// MaxSteps is the program's certified worst-case VM step count.
	MaxSteps int
}

// AdmissionError reports a deployment the kernel refused: the sites
// whose aggregate certified cost exceeds their budget, with the
// per-monitor breakdown the operator needs to decide what to shed.
type AdmissionError struct {
	// Sites lists the over-budget sites in sorted order.
	Sites []OverloadedSite
}

// OverloadedSite is one hook site whose summed certified worst-case
// steps exceed its budget.
type OverloadedSite struct {
	Site   string
	Budget int
	Total  int
	Loads  []HookLoad
}

// Error implements error.
func (e *AdmissionError) Error() string {
	parts := make([]string, len(e.Sites))
	for i, s := range e.Sites {
		mons := make([]string, len(s.Loads))
		for j, l := range s.Loads {
			mons[j] = fmt.Sprintf("%s=%d", l.Monitor, l.MaxSteps)
		}
		parts[i] = fmt.Sprintf("hook %s: %d certified steps > budget %d (%s)",
			s.Site, s.Total, s.Budget, strings.Join(mons, " + "))
	}
	return "kernel: deployment rejected: " + strings.Join(parts, "; ")
}

// AdmitDeployment is the kernel-side admission test for a whole
// deployment: for every hook site the loads attach to, the worst case
// of one firing is the *sum* of the attached programs' certified
// MaxSteps — each program may fit a per-program budget while the site
// blows its envelope. budget is the default per-site step budget (0 =
// unlimited); overrides adjusts it per site. The outcome is recorded on
// the attached telemetry sink (deployment_admitted_total /
// deployment_rejected_total). A non-nil error is an *AdmissionError
// listing every over-budget site; nothing is attached either way —
// admission is a pure check the monitor runtime runs before attaching.
func (k *Kernel) AdmitDeployment(budget int, overrides map[string]int, loads []HookLoad) error {
	totals := make(map[string]int)
	bySite := make(map[string][]HookLoad)
	for _, l := range loads {
		totals[l.Site] += l.MaxSteps
		bySite[l.Site] = append(bySite[l.Site], l)
	}
	var over []OverloadedSite
	for site, total := range totals {
		b := budget
		if o, ok := overrides[site]; ok {
			b = o
		}
		if b > 0 && total > b {
			over = append(over, OverloadedSite{Site: site, Budget: b, Total: total, Loads: bySite[site]})
		}
	}
	sink := k.Telemetry()
	if len(over) == 0 {
		sink.Deployment(true)
		return nil
	}
	sort.Slice(over, func(i, j int) bool { return over[i].Site < over[j].Site })
	sink.Deployment(false)
	return &AdmissionError{Sites: over}
}
