package vm

import (
	"bytes"
	"errors"
	"testing"
)

func buildImageFixture(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("fixture")
	b.Load(1, "false_submit_rate")
	b.JmpIfI(OpJLeI, 1, 0.05, "ok")
	b.MovI(2, 0)
	b.Store("ml_enabled", 2)
	b.MovI(0, 0)
	b.Exit()
	b.Label("ok")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := buildImageFixture(t)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name {
		t.Errorf("name = %q", q.Name)
	}
	if len(q.Symbols) != len(p.Symbols) {
		t.Fatalf("symbols = %v", q.Symbols)
	}
	for i := range p.Symbols {
		if q.Symbols[i] != p.Symbols[i] {
			t.Errorf("symbol %d = %q, want %q", i, q.Symbols[i], p.Symbols[i])
		}
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length = %d", len(q.Code))
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("insn %d = %+v, want %+v", i, q.Code[i], p.Code[i])
		}
	}
	// Decoded image must still verify and run identically.
	mustVerify(t, q)
	env := &testEnv{cells: make([]float64, len(q.Symbols))}
	env.cells[0] = 0.2
	if got := run(t, q, env, 0); got != 0 {
		t.Errorf("decoded program result = %v", got)
	}
	if env.cells[1] != 0 {
		t.Errorf("store cell = %v", env.cells[1])
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad-magic":   []byte("NOTANIMAGE"),
		"truncated":   []byte(imageMagic),
		"short-magic": []byte("GR"),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
	// Truncated mid-instruction.
	p := buildImageFixture(t)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Decode(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("truncated image accepted")
	}
}

func TestDecodedInvalidProgramFailsVerify(t *testing.T) {
	// An image can carry an unsafe program; the verifier is the gate.
	p := &Program{Name: "evil", Code: []Instr{
		{Op: OpJmp, Off: -1},
		{Op: OpExit},
	}}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(q, NumBuiltinHelpers); err == nil {
		t.Error("decoded unsafe program passed verification")
	}
}

// TestDecodedTrappingImageRejected is the regression for the
// structural-verifier gap the abstract interpreter closed: a program
// that is structurally valid (in-range registers, forward jumps, known
// helper) yet traps at runtime — its HelperAction dispatch index comes
// straight from a feature-store cell that may hold NaN. The image
// round-trips cleanly; only the dataflow analysis rejects it.
func TestDecodedTrappingImageRejected(t *testing.T) {
	b := NewBuilder("trapping-image")
	b.Load(1, "idx")
	b.Call(HelperAction)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Structure alone cannot fault it...
	if err := verifyStructure(q, NumBuiltinHelpers); err != nil {
		t.Fatalf("fixture is meant to be structurally valid: %v", err)
	}
	// ...and the decoded image carries no proof, so it would run on the
	// guarded path if loaded unverified.
	if q.Meta.TrapFree {
		t.Error("decoded image claims a verifier proof")
	}
	verr := Verify(q, NumBuiltinHelpers)
	if verr == nil {
		t.Fatal("decoded trapping image passed the analyzer")
	}
	var ve *VerifyError
	if !errors.As(verr, &ve) || ve.Reason == "" {
		t.Fatalf("want positioned *VerifyError, got %T %v", verr, verr)
	}
}
