package vm

import (
	"errors"
	"fmt"
	"math"
)

// Env is the runtime environment a loaded program executes against: the
// feature-store cells it was linked to and the helper table.
type Env interface {
	// LoadCell reads linked cell i (index into the program's symbol
	// table after resolution).
	LoadCell(i int32) float64
	// StoreCell writes linked cell i.
	StoreCell(i int32, v float64)
	// Helper invokes helper h with up to five arguments and returns r0.
	// A non-nil error aborts the program with a TrapHelper trap — the
	// seam through which failing action backends and injected
	// helper-call faults surface to the runtime.
	Helper(h HelperID, args *[5]float64) (float64, error)
}

// ErrBudget is returned when execution exceeds the instruction budget.
// A verified program can never hit it (verified programs are loop-free
// and bounded by their length), so seeing ErrBudget implies the program
// bypassed verification.
var ErrBudget = errors.New("vm: instruction budget exceeded")

// TraceCap bounds the branch decisions a BranchTrace retains; further
// decisions set Truncated instead of growing.
const TraceCap = 32

// BranchTrace records the conditional-branch path one Run took:
// every conditional jump's pc and whether it was taken, in execution
// order. It is fixed-size and reusable — installing one on a Machine
// and resetting it between runs allocates nothing.
type BranchTrace struct {
	PC        [TraceCap]int32
	Taken     [TraceCap]bool
	N         int
	Truncated bool
}

// Reset clears the trace for reuse (the arrays beyond N are never
// read, so this is two stores).
func (t *BranchTrace) Reset() { t.N, t.Truncated = 0, false }

func (t *BranchTrace) add(pc int, taken bool) {
	if t.N >= TraceCap {
		t.Truncated = true
		return
	}
	t.PC[t.N] = int32(pc)
	t.Taken[t.N] = taken
	t.N++
}

// Machine executes verified programs. A Machine is cheap; the zero value
// is ready to use and may be reused across runs. Not safe for concurrent
// use.
type Machine struct {
	regs [NumRegs]float64
	// Steps accumulates executed instruction counts across Run calls,
	// feeding monitor-overhead accounting (property P5).
	Steps uint64
	// Trace, when non-nil, receives the conditional-branch path of
	// each Run — the provenance plane's branch capture. Both
	// interpreter loops honour it; the proven fast path pays one
	// predictable nil test per conditional jump, so proven programs
	// stay off the guarded loop even while traced.
	Trace *BranchTrace
}

// Run executes p against env with r0 preset to arg (the trigger
// argument: e.g. the instrumented function's observed value). It returns
// the value of r0 at OpExit. Failures are returned as classified *Trap
// errors.
//
// Programs whose Meta carries a verifier proof (Meta.TrapFree, set by
// Verify) execute on a fast path that skips the per-step budget and pc
// guards — the proof makes them redundant — and, when Meta.DivProven,
// uses raw IEEE division. Unproven programs (decoded images before
// re-verification, hand-built test programs) run with every guard as
// defense in depth.
//
//guardrails:hotpath
func (m *Machine) Run(p *Program, env Env, arg float64) (float64, error) {
	if p.Meta.TrapFree {
		return m.runProven(p, env, arg)
	}
	return m.runGuarded(p, env, arg)
}

// runProven is the guard-free interpreter loop for verifier-proven
// programs: no budget decrement, no pc bounds test. Step accounting is
// kept in a local and folded into m.Steps at exit so the hot loop
// touches no memory beyond the register file.
//
//guardrails:hotpath
func (m *Machine) runProven(p *Program, env Env, arg float64) (float64, error) {
	m.regs = [NumRegs]float64{}
	m.regs[0] = arg
	r := &m.regs
	code := p.Code
	rawDiv := p.Meta.DivProven
	tr := m.Trace
	var steps uint64
	pc := 0
	for {
		steps++
		in := code[pc]
		switch in.Op {
		case OpMov:
			r[in.Dst] = r[in.Src]
		case OpMovI:
			r[in.Dst] = in.Imm
		case OpAdd:
			r[in.Dst] += r[in.Src]
		case OpAddI:
			r[in.Dst] += in.Imm
		case OpSub:
			r[in.Dst] -= r[in.Src]
		case OpSubI:
			r[in.Dst] -= in.Imm
		case OpMul:
			r[in.Dst] *= r[in.Src]
		case OpMulI:
			r[in.Dst] *= in.Imm
		case OpDiv:
			if rawDiv {
				r[in.Dst] /= r[in.Src]
			} else {
				r[in.Dst] = safeDiv(r[in.Dst], r[in.Src])
			}
		case OpDivI:
			if rawDiv {
				r[in.Dst] /= in.Imm
			} else {
				r[in.Dst] = safeDiv(r[in.Dst], in.Imm)
			}
		case OpNeg:
			r[in.Dst] = -r[in.Dst]
		case OpAbs:
			r[in.Dst] = math.Abs(r[in.Dst])
		case OpMin:
			r[in.Dst] = math.Min(r[in.Dst], r[in.Src])
		case OpMax:
			r[in.Dst] = math.Max(r[in.Dst], r[in.Src])
		case OpNot:
			if r[in.Dst] == 0 {
				r[in.Dst] = 1
			} else {
				r[in.Dst] = 0
			}
		case OpBoo:
			if r[in.Dst] != 0 {
				r[in.Dst] = 1
			}
		case OpJmp:
			pc += int(in.Off)
		case OpJEq:
			if taken := r[in.Dst] == r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJNe:
			if taken := r[in.Dst] != r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLt:
			if taken := r[in.Dst] < r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLe:
			if taken := r[in.Dst] <= r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGt:
			if taken := r[in.Dst] > r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGe:
			if taken := r[in.Dst] >= r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJEqI:
			if taken := r[in.Dst] == in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJNeI:
			if taken := r[in.Dst] != in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLtI:
			if taken := r[in.Dst] < in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLeI:
			if taken := r[in.Dst] <= in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGtI:
			if taken := r[in.Dst] > in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGeI:
			if taken := r[in.Dst] >= in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpLoad:
			r[in.Dst] = env.LoadCell(in.Cell)
		case OpStore:
			env.StoreCell(in.Cell, r[in.Src])
		case OpCall:
			args := [5]float64{r[1], r[2], r[3], r[4], r[5]}
			out, err := env.Helper(HelperID(in.Imm), &args)
			if err != nil {
				m.Steps += steps
				return 0, &Trap{Code: TrapHelper, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
					Instr: p.fmtInstr(in), Cause: err}
			}
			r[0] = out
			r[1], r[2], r[3], r[4], r[5] = 0, 0, 0, 0, 0
		case OpExit:
			m.Steps += steps
			return r[0], nil
		default:
			// Unreachable for a verified program; kept as defense in
			// depth against post-verification code mutation.
			m.Steps += steps
			return 0, &Trap{Code: TrapBadOpcode, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
				Instr: p.fmtInstr(in), Cause: fmt.Errorf("invalid opcode %v", in.Op)}
		}
		pc++
	}
}

// runGuarded is the fully-guarded interpreter loop for unproven
// programs: a per-step instruction budget bounds runaway code and every
// pc is bounds-tested before the fetch.
//
//guardrails:hotpath
func (m *Machine) runGuarded(p *Program, env Env, arg float64) (float64, error) {
	m.regs = [NumRegs]float64{}
	m.regs[0] = arg
	budget := len(p.Code) + 1
	r := &m.regs
	tr := m.Trace
	pc := 0
	for {
		if budget <= 0 {
			return 0, &Trap{Code: TrapBudget, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
				Instr: p.InstrString(pc), Cause: ErrBudget}
		}
		budget--
		m.Steps++
		if pc < 0 || pc >= len(p.Code) {
			return 0, &Trap{Code: TrapBadPC, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
				Cause: fmt.Errorf("pc %d outside [0,%d)", pc, len(p.Code))}
		}
		in := p.Code[pc]
		switch in.Op {
		case OpMov:
			r[in.Dst] = r[in.Src]
		case OpMovI:
			r[in.Dst] = in.Imm
		case OpAdd:
			r[in.Dst] += r[in.Src]
		case OpAddI:
			r[in.Dst] += in.Imm
		case OpSub:
			r[in.Dst] -= r[in.Src]
		case OpSubI:
			r[in.Dst] -= in.Imm
		case OpMul:
			r[in.Dst] *= r[in.Src]
		case OpMulI:
			r[in.Dst] *= in.Imm
		case OpDiv:
			r[in.Dst] = safeDiv(r[in.Dst], r[in.Src])
		case OpDivI:
			r[in.Dst] = safeDiv(r[in.Dst], in.Imm)
		case OpNeg:
			r[in.Dst] = -r[in.Dst]
		case OpAbs:
			r[in.Dst] = math.Abs(r[in.Dst])
		case OpMin:
			r[in.Dst] = math.Min(r[in.Dst], r[in.Src])
		case OpMax:
			r[in.Dst] = math.Max(r[in.Dst], r[in.Src])
		case OpNot:
			if r[in.Dst] == 0 {
				r[in.Dst] = 1
			} else {
				r[in.Dst] = 0
			}
		case OpBoo:
			if r[in.Dst] != 0 {
				r[in.Dst] = 1
			}
		case OpJmp:
			pc += int(in.Off)
		case OpJEq:
			if taken := r[in.Dst] == r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJNe:
			if taken := r[in.Dst] != r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLt:
			if taken := r[in.Dst] < r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLe:
			if taken := r[in.Dst] <= r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGt:
			if taken := r[in.Dst] > r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGe:
			if taken := r[in.Dst] >= r[in.Src]; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJEqI:
			if taken := r[in.Dst] == in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJNeI:
			if taken := r[in.Dst] != in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLtI:
			if taken := r[in.Dst] < in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJLeI:
			if taken := r[in.Dst] <= in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGtI:
			if taken := r[in.Dst] > in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpJGeI:
			if taken := r[in.Dst] >= in.Imm; branch(tr, pc, taken) {
				pc += int(in.Off)
			}
		case OpLoad:
			r[in.Dst] = env.LoadCell(in.Cell)
		case OpStore:
			env.StoreCell(in.Cell, r[in.Src])
		case OpCall:
			args := [5]float64{r[1], r[2], r[3], r[4], r[5]}
			out, err := env.Helper(HelperID(in.Imm), &args)
			if err != nil {
				return 0, &Trap{Code: TrapHelper, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
					Instr: p.fmtInstr(in), Cause: err}
			}
			r[0] = out
			r[1], r[2], r[3], r[4], r[5] = 0, 0, 0, 0, 0
		case OpExit:
			return r[0], nil
		default:
			return 0, &Trap{Code: TrapBadOpcode, PC: pc, Program: p.Name, //guardrails:coldpath trap construction
				Instr: p.fmtInstr(in), Cause: fmt.Errorf("invalid opcode %v", in.Op)}
		}
		pc++
	}
}

// branch records one conditional-jump decision into tr (if installed)
// and passes the verdict through, keeping the guarded loop's jump
// cases single-expression.
func branch(tr *BranchTrace, pc int, taken bool) bool {
	if tr != nil {
		tr.add(pc, taken)
	}
	return taken
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
