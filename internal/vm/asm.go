package vm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual form produced by Program.String back into
// a Program, so monitor programs can be hand-written, patched, and
// round-tripped through the disassembler. Accepted line forms:
//
//	; comment                      (also trailing comments)
//	name  <program name>           (optional directive)
//	  12: mov   r1, r2             (leading indices are ignored)
//	movi  r1, 0.05
//	jgt   r1, r2, +3
//	jlei  r1, 0.05, +2
//	load  r1, [key]
//	store [key], r1
//	call  helper#2
//	exit
//
// Assemble does not verify; run Verify on the result before loading.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	symIdx := make(map[string]int32)
	intern := func(key string) int32 {
		if i, ok := symIdx[key]; ok {
			return i
		}
		i := int32(len(p.Symbols))
		p.Symbols = append(p.Symbols, key)
		symIdx[key] = i
		return i
	}

	nameToOp := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		nameToOp[n] = op
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Optional "12:" index prefix.
		if i := strings.Index(line, ":"); i >= 0 {
			if _, err := strconv.Atoi(strings.TrimSpace(line[:i])); err == nil {
				line = strings.TrimSpace(line[i+1:])
			}
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) == 0 {
			continue
		}
		mnemonic := fields[0]
		args := fields[1:]
		if mnemonic == "name" {
			p.Name = strings.Join(args, " ")
			continue
		}
		op, ok := nameToOp[mnemonic]
		if !ok {
			return nil, fmt.Errorf("vm: line %d: unknown mnemonic %q", lineNo+1, mnemonic)
		}
		in, err := parseOperands(op, args, intern)
		if err != nil {
			return nil, fmt.Errorf("vm: line %d: %v", lineNo+1, err)
		}
		p.Code = append(p.Code, in)
	}
	if len(p.Code) == 0 {
		return nil, fmt.Errorf("vm: empty assembly")
	}
	return p, nil
}

func parseOperands(op Op, args []string, intern func(string) int32) (Instr, error) {
	in := Instr{Op: op}
	reg := func(s string) (uint8, error) {
		if !strings.HasPrefix(s, "r") {
			return 0, fmt.Errorf("expected register, found %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return v, nil
	}
	off := func(s string) (int32, error) {
		s = strings.TrimPrefix(s, "+")
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("bad offset %q", s)
		}
		return int32(v), nil
	}
	cell := func(s string) (int32, error) {
		if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
			return 0, fmt.Errorf("expected [key], found %q", s)
		}
		return intern(s[1 : len(s)-1]), nil
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d operand(s), got %d", op, n, len(args))
		}
		return nil
	}

	var err error
	switch op {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, err
		}
		in.Src, err = reg(args[1])
	case OpMovI, OpAddI, OpSubI, OpMulI, OpDivI:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, err
		}
		in.Imm, err = imm(args[1])
	case OpNeg, OpAbs, OpNot, OpBoo:
		if err = need(1); err != nil {
			return in, err
		}
		in.Dst, err = reg(args[0])
	case OpJmp:
		if err = need(1); err != nil {
			return in, err
		}
		in.Off, err = off(args[0])
	case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, err
		}
		if in.Src, err = reg(args[1]); err != nil {
			return in, err
		}
		in.Off, err = off(args[2])
	case OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
		if err = need(3); err != nil {
			return in, err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, err
		}
		if in.Imm, err = imm(args[1]); err != nil {
			return in, err
		}
		in.Off, err = off(args[2])
	case OpLoad:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Dst, err = reg(args[0]); err != nil {
			return in, err
		}
		in.Cell, err = cell(args[1])
	case OpStore:
		if err = need(2); err != nil {
			return in, err
		}
		if in.Cell, err = cell(args[0]); err != nil {
			return in, err
		}
		in.Src, err = reg(args[1])
	case OpCall:
		if err = need(1); err != nil {
			return in, err
		}
		s := strings.TrimPrefix(args[0], "helper#")
		var h int
		if h, err = strconv.Atoi(s); err != nil {
			return in, fmt.Errorf("bad helper %q", args[0])
		}
		in.Imm = float64(h)
	case OpExit:
		err = need(0)
	default:
		err = fmt.Errorf("unsupported opcode %v", op)
	}
	return in, err
}
