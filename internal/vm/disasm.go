package vm

import (
	"fmt"
	"strings"
)

// Annotated disassembles the program with basic-block structure made
// explicit: every jump target gets an L<n> label line, and jump
// instructions are annotated with the label they resolve to instead of
// leaving the reader to add offsets. The compiler's -S output uses this
// form so the bytecode can be read side by side with the IR dump.
func (p *Program) Annotated() string {
	// Label jump targets in program order.
	labels := map[int]int{}
	for i, in := range p.Code {
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			t := i + 1 + int(in.Off)
			if _, ok := labels[t]; !ok {
				labels[t] = 0
			}
		}
	}
	order := make([]int, 0, len(labels))
	for t := range labels {
		order = append(order, t)
	}
	for i := range order { // insertion sort: target sets are tiny
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for n, t := range order {
		labels[t] = n
	}

	var b strings.Builder
	fmt.Fprintf(&b, "; program %q (%d insns, %d symbols)\n", p.Name, len(p.Code), len(p.Symbols))
	if p.Meta.OptLevel > 0 && p.Meta.PreOptInsns > 0 {
		fmt.Fprintf(&b, "; -O%d: %d insns before optimization\n", p.Meta.OptLevel, p.Meta.PreOptInsns)
	}
	for i, in := range p.Code {
		if n, ok := labels[i]; ok {
			fmt.Fprintf(&b, "L%d:\n", n)
		}
		fmt.Fprintf(&b, "%4d: %s", i, p.fmtInstr(in))
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			fmt.Fprintf(&b, "  ; -> L%d", labels[i+1+int(in.Off)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
