package vm

import (
	"errors"
	"fmt"
)

// TrapCode classifies a monitor program's runtime failure. A verified
// program should never trap; classification exists so the monitor
// runtime can tell a runaway program (TrapBudget) from a corrupted image
// (TrapBadPC, TrapBadOpcode) from a failing helper backend (TrapHelper)
// and apply the right degradation policy to each.
type TrapCode int

// Trap codes.
const (
	// TrapNone means no trap (nil error).
	TrapNone TrapCode = iota
	// TrapBudget: the instruction budget was exhausted — a runaway
	// (unverified) program.
	TrapBudget
	// TrapBadPC: the program counter left the code segment.
	TrapBadPC
	// TrapBadOpcode: an instruction carried an invalid opcode.
	TrapBadOpcode
	// TrapHelper: a helper call returned an error (failing backend or
	// injected fault).
	TrapHelper
	// TrapUnknown: a non-nil error that is not a classified Trap.
	TrapUnknown
)

// String names the trap code.
func (c TrapCode) String() string {
	switch c {
	case TrapNone:
		return "none"
	case TrapBudget:
		return "budget"
	case TrapBadPC:
		return "bad-pc"
	case TrapBadOpcode:
		return "bad-opcode"
	case TrapHelper:
		return "helper"
	default:
		return "unknown"
	}
}

// Trap is a classified monitor-program runtime failure. It wraps the
// underlying cause so errors.Is(err, ErrBudget) keeps working.
type Trap struct {
	// Code classifies the failure.
	Code TrapCode
	// PC is the program counter at the trap.
	PC int
	// Program names the trapping program.
	Program string
	// Instr is the disassembled faulting instruction, when the trap pc
	// addresses one.
	Instr string
	// Cause is the underlying error, when any.
	Cause error
}

// Error renders the trap.
func (t *Trap) Error() string {
	at := fmt.Sprintf("pc=%d", t.PC)
	if t.Instr != "" {
		at = fmt.Sprintf("pc=%d (%s)", t.PC, t.Instr)
	}
	if t.Cause != nil {
		return fmt.Sprintf("vm: trap [%s] at %s in %q: %v", t.Code, at, t.Program, t.Cause)
	}
	return fmt.Sprintf("vm: trap [%s] at %s in %q", t.Code, at, t.Program)
}

// Unwrap exposes the cause to errors.Is/As.
func (t *Trap) Unwrap() error { return t.Cause }

// Classify returns the trap code carried by err: TrapNone for nil,
// TrapUnknown for foreign errors.
func Classify(err error) TrapCode {
	if err == nil {
		return TrapNone
	}
	var t *Trap
	if errors.As(err, &t) {
		return t.Code
	}
	if errors.Is(err, ErrBudget) {
		return TrapBudget
	}
	return TrapUnknown
}
