package vm

import (
	"fmt"
	"math"
)

// Abstract interpretation over the (loop-free) control-flow graph. The
// verifier (verify.go) drives analyze() to prove, before a program is
// loaded "into the kernel", that it cannot trap at runtime: every
// register read is preceded by a write on all paths, helper arguments
// satisfy their contracts, divisions are either proven non-zero or fall
// back to the VM's x/0 = 0 semantics, and the worst-case step count is
// certified. The domain is a per-register definite-initialization bitset
// plus a signed interval with an explicit NaN-possibility flag — the
// float64 analogue of the eBPF verifier's tnum + min/max register
// state.

// absVal abstracts one float64 value: a (possibly empty) closed
// interval [lo,hi] of ordinary values plus a flag recording whether the
// value may be NaN. The bottom element (no value at all) is the zero
// absVal; top admits every float64.
type absVal struct {
	// lo and hi bound the ordinary part; they are meaningful only when
	// num is set and may be ±Inf. lo <= hi always, and neither bound is
	// ever NaN. (Field order packs the struct to 24 bytes — regState is
	// copied on every abstract transfer, so its size is hot.)
	lo, hi float64
	// num reports that the value may be an ordinary (non-NaN) float in
	// [lo,hi].
	num bool
	// nan reports that the value may be NaN.
	nan bool
}

func topVal() absVal { return absVal{num: true, lo: math.Inf(-1), hi: math.Inf(1), nan: true} }

func constVal(v float64) absVal {
	if math.IsNaN(v) {
		return absVal{nan: true}
	}
	return absVal{num: true, lo: v, hi: v}
}

func (v absVal) isBottom() bool { return !v.num && !v.nan }

// singleton reports whether v is exactly one ordinary value.
func (v absVal) singleton() (float64, bool) {
	if v.num && !v.nan && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

// contains reports whether v admits the concrete value x.
func (v absVal) contains(x float64) bool {
	if math.IsNaN(x) {
		return v.nan
	}
	return v.num && v.lo <= x && x <= v.hi
}

// hasInf reports whether v admits an infinity of the given sign.
func (v absVal) hasInf(sign int) bool {
	if !v.num {
		return false
	}
	if sign < 0 {
		return math.IsInf(v.lo, -1)
	}
	return math.IsInf(v.hi, 1)
}

// join is the lattice union: the least abstract value admitting
// everything either operand admits.
func join(a, b absVal) absVal {
	out := absVal{nan: a.nan || b.nan}
	switch {
	case a.num && b.num:
		out.num = true
		out.lo = math.Min(a.lo, b.lo)
		out.hi = math.Max(a.hi, b.hi)
	case a.num:
		out.num, out.lo, out.hi = true, a.lo, a.hi
	case b.num:
		out.num, out.lo, out.hi = true, b.lo, b.hi
	}
	return out
}

// widen is join with bound acceleration: any interval bound that grew
// beyond old's goes straight to its infinity. Forward-only CFGs reach a
// fixpoint without widening; it bounds the join chains defensively and
// would keep the analysis linear if the ISA ever grew back edges.
func widen(old, next absVal) absVal {
	j := join(old, next)
	if old.num && j.num {
		if j.lo < old.lo {
			j.lo = math.Inf(-1)
		}
		if j.hi > old.hi {
			j.hi = math.Inf(1)
		}
	}
	return j
}

// outLo / outHi nudge a computed bound outward by one ulp, covering the
// rounding direction that plain float64 interval arithmetic ignores.
// Singleton × singleton operations skip the nudge: the analyzer replays
// the VM's own operation, so the result is the exact machine value.
func outLo(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(-1)
	}
	return math.Nextafter(v, math.Inf(-1))
}

func outHi(v float64) float64 {
	if math.IsNaN(v) {
		return math.Inf(1)
	}
	return math.Nextafter(v, math.Inf(1))
}

// normalize enforces the absVal invariants after a bound was clamped:
// an inverted interval means the ordinary part is empty.
func (v absVal) normalize() absVal {
	if v.num && (v.lo > v.hi || math.IsNaN(v.lo) || math.IsNaN(v.hi)) {
		v.num, v.lo, v.hi = false, 0, 0
	}
	if !v.num {
		v.lo, v.hi = 0, 0
	}
	return v
}

// bothSingle reports a singleton pair, enabling exact transfer.
func bothSingle(a, b absVal) (x, y float64, ok bool) {
	if a.num && !a.nan && a.lo == a.hi && b.num && !b.nan && b.lo == b.hi {
		return a.lo, b.lo, true
	}
	return 0, 0, false
}

// exactOr wraps an exactly computed result: NaN folds into the nan
// flag, ordinary values become singleton intervals.
func exactVal(c float64) absVal {
	if math.IsNaN(c) {
		return absVal{nan: true}
	}
	return absVal{num: true, lo: c, hi: c}
}

func absAdd(a, b absVal) absVal {
	if !a.num || !b.num {
		return absVal{nan: true} // NaN + anything = NaN
	}
	if x, y, ok := bothSingle(a, b); ok {
		return exactVal(x + y)
	}
	nan := a.nan || b.nan ||
		(a.hasInf(1) && b.hasInf(-1)) || (a.hasInf(-1) && b.hasInf(1)) // Inf + -Inf = NaN
	lo, hi := a.lo+b.lo, a.hi+b.hi
	return absVal{num: true, lo: outLo(lo), hi: outHi(hi), nan: nan}
}

func absSub(a, b absVal) absVal {
	if !a.num || !b.num {
		return absVal{nan: true}
	}
	if x, y, ok := bothSingle(a, b); ok {
		return exactVal(x - y)
	}
	nan := a.nan || b.nan ||
		(a.hasInf(1) && b.hasInf(1)) || (a.hasInf(-1) && b.hasInf(-1)) // Inf - Inf = NaN
	lo, hi := a.lo-b.hi, a.hi-b.lo
	return absVal{num: true, lo: outLo(lo), hi: outHi(hi), nan: nan}
}

func absMul(a, b absVal) absVal {
	if !a.num || !b.num {
		return absVal{nan: true}
	}
	if x, y, ok := bothSingle(a, b); ok {
		return exactVal(x * y)
	}
	nan := a.nan || b.nan
	// 0 × ±Inf = NaN; when both a zero and an infinity are admitted the
	// ordinary products also diverge, so go to top.
	if (a.contains(0) && (b.hasInf(-1) || b.hasInf(1))) ||
		(b.contains(0) && (a.hasInf(-1) || a.hasInf(1))) {
		return absVal{num: true, lo: math.Inf(-1), hi: math.Inf(1), nan: true}
	}
	c := [4]float64{a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return absVal{num: true, lo: outLo(lo), hi: outHi(hi), nan: nan}
}

// absDiv models the VM's safeDiv: x/0 = 0 for every dividend, including
// NaN; a NaN divisor yields NaN.
func absDiv(a, b absVal) absVal {
	if !b.num {
		return absVal{nan: true} // divisor always NaN
	}
	if b.lo == 0 && b.hi == 0 {
		// Divisor is zero whenever it is ordinary: safeDiv returns 0.
		return absVal{num: true, lo: 0, hi: 0, nan: b.nan}
	}
	if !a.num {
		// Dividend always NaN: NaN/z = NaN unless z = 0 (then 0).
		if b.contains(0) {
			return absVal{num: true, lo: 0, hi: 0, nan: true}
		}
		return absVal{nan: true}
	}
	nan := a.nan || b.nan
	if b.contains(0) {
		// Divisor straddles zero: quotients near ±0 diverge, and the
		// exact zero maps to 0.
		return absVal{num: true, lo: math.Inf(-1), hi: math.Inf(1), nan: true}
	}
	if x, y, ok := bothSingle(a, b); ok {
		return exactVal(x / y)
	}
	aInf := a.hasInf(-1) || a.hasInf(1)
	bInf := b.hasInf(-1) || b.hasInf(1)
	if aInf && bInf {
		return absVal{num: true, lo: math.Inf(-1), hi: math.Inf(1), nan: true} // Inf/Inf = NaN
	}
	c := [4]float64{a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return absVal{num: true, lo: outLo(lo), hi: outHi(hi), nan: nan}
}

// absMin / absMax model math.Min/math.Max, which propagate NaN.
func absMin(a, b absVal) absVal {
	if !a.num || !b.num {
		return absVal{nan: true}
	}
	return absVal{num: true, lo: math.Min(a.lo, b.lo), hi: math.Min(a.hi, b.hi), nan: a.nan || b.nan}
}

func absMax(a, b absVal) absVal {
	if !a.num || !b.num {
		return absVal{nan: true}
	}
	return absVal{num: true, lo: math.Max(a.lo, b.lo), hi: math.Max(a.hi, b.hi), nan: a.nan || b.nan}
}

func absNeg(v absVal) absVal {
	if !v.num {
		return v
	}
	return absVal{num: true, lo: -v.hi, hi: -v.lo, nan: v.nan}
}

func absAbs(v absVal) absVal {
	if !v.num {
		return v
	}
	switch {
	case v.lo >= 0:
		return v
	case v.hi <= 0:
		return absVal{num: true, lo: -v.hi, hi: -v.lo, nan: v.nan}
	default:
		return absVal{num: true, lo: 0, hi: math.Max(-v.lo, v.hi), nan: v.nan}
	}
}

// boolSet builds the {0,1} result of a truthiness operation.
func boolSet(canZero, canOne bool) absVal {
	switch {
	case canZero && canOne:
		return absVal{num: true, lo: 0, hi: 1}
	case canOne:
		return absVal{num: true, lo: 1, hi: 1}
	default:
		return absVal{num: true, lo: 0, hi: 0}
	}
}

// absNot models OpNot: 1 if the value equals 0, else 0 (NaN is truthy).
func absNot(v absVal) absVal {
	one := v.contains(0)
	zero := v.nan || (v.num && (v.lo != 0 || v.hi != 0))
	return boolSet(zero, one)
}

// absBoo models OpBoo: non-zero (including NaN) collapses to 1, zero
// stays 0.
func absBoo(v absVal) absVal {
	zero := v.contains(0)
	one := v.nan || (v.num && (v.lo != 0 || v.hi != 0))
	return boolSet(zero, one)
}

// refineCmp refines the abstract operands of a conditional jump along
// one edge. IEEE comparisons are false when either operand is NaN, so
// the taken edge of an ordered comparison (and of ==) proves both
// operands non-NaN, while the not-taken edge only constrains the
// ordinary parts — and only against an operand that cannot itself be
// NaN (a NaN counterpart makes the comparison false for *any* value).
// != is the mirror image: NaN satisfies it, so its taken edge keeps the
// NaN flags and its not-taken edge proves equality of ordinary values.
// A returned bottom value means the edge is unreachable.
func refineCmp(op Op, x, y absVal, taken bool) (absVal, absVal) {
	dropNaN := func() {
		x.nan, y.nan = false, false
		x, y = x.normalize(), y.normalize()
	}
	// clampXleY constrains x <= y (strict: x < y) on ordinary parts.
	// Each side is clamped only when guard for that side holds.
	clampXleY := func(strict, clampX, clampY bool) {
		if !x.num || !y.num {
			return
		}
		hb, lb := y.hi, x.lo
		if strict {
			hb, lb = outLo(hb), outHi(lb)
		}
		if clampX && hb < x.hi {
			x.hi = hb
		}
		if clampY && lb > y.lo {
			y.lo = lb
		}
		x, y = x.normalize(), y.normalize()
	}
	clampYleX := func(strict, clampY, clampX bool) {
		x, y = y, x
		clampXleY(strict, clampY, clampX)
		x, y = y, x
	}
	intersect := func() {
		nx := absVal{num: x.num && y.num, nan: x.nan && y.nan}
		if nx.num {
			nx.lo, nx.hi = math.Max(x.lo, y.lo), math.Min(x.hi, y.hi)
		}
		nx = nx.normalize()
		x, y = nx, nx
	}

	switch {
	case op == OpJLt && taken, op == OpJGe && !taken: // x < y
		if taken {
			dropNaN()
			clampXleY(true, true, true)
		} else {
			clampXleY(true, !y.nan, !x.nan)
		}
	case op == OpJLe && taken, op == OpJGt && !taken: // x <= y
		if taken {
			dropNaN()
			clampXleY(false, true, true)
		} else {
			clampXleY(false, !y.nan, !x.nan)
		}
	case op == OpJGt && taken, op == OpJLe && !taken: // x > y
		if taken {
			dropNaN()
			clampYleX(true, true, true)
		} else {
			clampYleX(true, !x.nan, !y.nan)
		}
	case op == OpJGe && taken, op == OpJLt && !taken: // x >= y
		if taken {
			dropNaN()
			clampYleX(false, true, true)
		} else {
			clampYleX(false, !x.nan, !y.nan)
		}
	case op == OpJEq && taken, op == OpJNe && !taken: // x == y
		dropNaN()
		intersect()
	case op == OpJNe && taken, op == OpJEq && !taken: // x != y
		// Only singleton-vs-singleton inequality is refutable.
		if xv, ok := x.singleton(); ok {
			if yv, ok := y.singleton(); ok && xv == yv {
				return absVal{}, absVal{}
			}
		}
	}
	return x, y
}

// cmpRegOf maps an immediate-compare opcode to its register form so
// refineCmp handles both shapes.
func cmpRegOf(op Op) (Op, bool) {
	switch op {
	case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe:
		return op, true
	case OpJEqI:
		return OpJEq, true
	case OpJNeI:
		return OpJNe, true
	case OpJLtI:
		return OpJLt, true
	case OpJLeI:
		return OpJLe, true
	case OpJGtI:
		return OpJGt, true
	case OpJGeI:
		return OpJGe, true
	}
	return op, false
}

// helperContract is the per-helper argument contract the analyzer
// enforces at OpCall sites. arity counts declared arguments (r1..);
// when bounded, the first argument must be *provably* non-NaN and
// within [min,max] — the analogue of the eBPF verifier's helper
// argument type checks.
type helperContract struct {
	arity    int
	bounded  bool
	min, max float64
}

// maxActionIndex bounds HelperAction's dispatch index: it must be a
// provable small non-negative number for the runtime's action table.
const maxActionIndex = 1 << 31

func contractFor(h HelperID) helperContract {
	switch h {
	case HelperNow:
		return helperContract{arity: 0}
	case HelperAction:
		return helperContract{arity: 1, bounded: true, min: 0, max: maxActionIndex - 1}
	case HelperReport, HelperSqrt, HelperLog2:
		return helperContract{arity: 1}
	default:
		// Runtime-extended helpers: one argument, no range contract.
		return helperContract{arity: 1}
	}
}

// helperArity returns the number of declared arguments for built-in
// helpers; unknown (runtime-extended) helpers report 1.
func helperArity(h HelperID) int { return contractFor(h).arity }

// String names the built-in helpers for diagnostics.
func (h HelperID) String() string {
	switch h {
	case HelperNow:
		return "now"
	case HelperReport:
		return "report"
	case HelperAction:
		return "action"
	case HelperSqrt:
		return "sqrt"
	case HelperLog2:
		return "log2"
	default:
		return fmt.Sprintf("helper#%d", int(h))
	}
}

// regState is the per-pc abstract machine state: which registers are
// provably initialized on every path, and each register's abstract
// value. Values of uninitialized registers are canonicalized to top so
// state comparison is meaningful.
type regState struct {
	init uint32
	vals [NumRegs]absVal
}

func entryState() regState {
	var rs regState
	rs.init = 1 << 0 // r0 carries the trigger argument
	for i := range rs.vals {
		rs.vals[i] = topVal()
	}
	return rs
}

func (rs *regState) canon() {
	for i := 0; i < NumRegs; i++ {
		if rs.init&(1<<i) == 0 {
			rs.vals[i] = topVal()
		}
	}
}

// widenAfter bounds the joins any single pc absorbs before widening
// kicks in (see widen).
const widenAfter = 16

// Interval is the exported face of the analyzer's value abstraction: a
// (possibly absent) closed interval of ordinary float64 values plus a
// NaN-possibility flag. Deployment-level analyses (internal/spec/
// interfere) exchange certified value ranges in this form.
type Interval struct {
	// Lo and Hi are meaningful only when Num is set. (Bounds first: the
	// field order packs the struct to 24 bytes, and certificates carry
	// sixteen of these per block invariant.)
	Lo, Hi float64
	// Num reports that the value may be an ordinary (non-NaN) float in
	// [Lo, Hi].
	Num bool
	// NaN reports that the value may be NaN.
	NaN bool
}

// TopInterval admits every float64.
func TopInterval() Interval {
	return Interval{Num: true, Lo: math.Inf(-1), Hi: math.Inf(1), NaN: true}
}

// RangeInterval is the interval of ordinary values in [lo, hi].
func RangeInterval(lo, hi float64) Interval {
	return Interval{Num: true, Lo: lo, Hi: hi}
}

// Singleton reports whether the interval is exactly one ordinary value.
func (iv Interval) Singleton() (float64, bool) {
	if iv.Num && !iv.NaN && iv.Lo == iv.Hi {
		return iv.Lo, true
	}
	return 0, false
}

// DisjointFrom reports that no ordinary value is admitted by both
// intervals — the certificate behind "these two SAVEs are contradictory".
// Intervals that may both be NaN are not considered disjoint.
func (iv Interval) DisjointFrom(o Interval) bool {
	if iv.NaN && o.NaN {
		return false
	}
	if !iv.Num || !o.Num {
		// A side with no ordinary part admits only NaN (or nothing);
		// without a shared NaN possibility there is no common value.
		return true
	}
	return iv.Hi < o.Lo || o.Hi < iv.Lo
}

// Join returns the least interval admitting everything either admits.
func (iv Interval) Join(o Interval) Interval {
	return join(fromInterval(iv), fromInterval(o)).iv()
}

// String renders "[lo,hi]" with a "|NaN" suffix when NaN is admitted.
func (iv Interval) String() string {
	s := "∅"
	if iv.Num {
		s = fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi)
	}
	if iv.NaN {
		s += "|NaN"
	}
	return s
}

func (v absVal) iv() Interval { return Interval{Num: v.num, Lo: v.lo, Hi: v.hi, NaN: v.nan} }

func fromInterval(iv Interval) absVal {
	return absVal{num: iv.Num, lo: iv.Lo, hi: iv.Hi, nan: iv.NaN}.normalize()
}

// StoreFact is one OpStore site's certified behaviour: the abstract
// value the instruction may write to its cell, valid whenever the
// instruction is reachable.
type StoreFact struct {
	// PC is the OpStore instruction's index.
	PC int
	// Cell indexes the program symbol table (the SAVEd key).
	Cell int32
	// Val is the certified range of stored values.
	Val Interval
}

// ExitFact is one reachable OpExit site's certified return value.
type ExitFact struct {
	// PC is the OpExit instruction's index.
	PC int
	// R0 is the certified range of returned values. Rule programs
	// return 1 when the property holds and 0 when it is violated.
	R0 Interval
}

// Analysis is the proof object produced by a successful abstract
// interpretation; Verify copies the scalar fields into Program.Meta,
// and the deployment interference analyzer consumes the per-site facts.
type Analysis struct {
	// MaxSteps is the certified worst-case number of interpreter steps
	// (executed instructions, including the final OpExit) over every
	// path through the program.
	MaxSteps int
	// DivProven reports that every division's divisor was proven unable
	// to be ordinary zero, so raw IEEE division matches safeDiv and the
	// interpreter's guarded division can be skipped.
	DivProven bool
	// Reachable records, per pc, whether the instruction is reachable
	// from entry (dead comparison edges pruned).
	Reachable []bool
	// Stores lists every reachable OpStore with its certified value
	// range, in pc order.
	Stores []StoreFact
	// Exits lists every reachable OpExit with its certified return
	// range, in pc order.
	Exits []ExitFact
}

// CanViolate reports whether any reachable exit may return 0 — i.e.
// whether the rule conjunction can ever be violated (and so whether the
// guardrail's actions can ever fire). An analysis with no reachable
// exits trivially cannot violate.
func (a *Analysis) CanViolate() bool {
	for _, e := range a.Exits {
		if e.R0.NaN || (e.R0.Num && e.R0.Lo <= 0 && 0 <= e.R0.Hi) {
			return true
		}
	}
	return false
}

// MustViolate reports whether every reachable exit provably returns an
// ordinary 0 — the rule conjunction is violated on *all* paths, so the
// guardrail's actions fire on every evaluation. The model checker uses
// it to apply strong (replacing) state updates; a program with no
// reachable exits trivially does not must-violate.
func (a *Analysis) MustViolate() bool {
	if len(a.Exits) == 0 {
		return false
	}
	for _, e := range a.Exits {
		if e.R0.NaN || !e.R0.Num || e.R0.Lo != 0 || e.R0.Hi != 0 {
			return false
		}
	}
	return true
}

// Widen is Join with bound acceleration: any bound of o that escapes
// iv goes straight to its infinity. Fixpoint loops over interval chains
// (the deployment model checker's repeated state joins) terminate under
// Widen where plain Join could climb forever.
func (iv Interval) Widen(o Interval) Interval {
	return widen(fromInterval(iv), fromInterval(o)).iv()
}

// StoreRange joins the certified ranges of every reachable store to
// cell; ok is false when no reachable store writes it.
func (a *Analysis) StoreRange(cell int32) (Interval, bool) {
	var acc Interval
	found := false
	for _, s := range a.Stores {
		if s.Cell != cell {
			continue
		}
		if !found {
			acc, found = s.Val, true
		} else {
			acc = acc.Join(s.Val)
		}
	}
	return acc, found
}

// pcState is the analyzer's per-instruction entry state.
type pcState struct {
	reachable bool
	joins     int
	rs        regState
}

// CellEnv supplies certified input ranges for feature-store cells: it
// returns the abstract value LOADs of the cell may observe, or ok=false
// for cells with no certificate (which then analyze as top). A nil
// CellEnv is the open-world assumption every single-program verification
// uses; the deployment analyzer passes declared feature ranges and
// producer SAVE certificates to sharpen the analysis to one deployment.
type CellEnv func(cell int32) (Interval, bool)

// analyzer runs the worklist-driven abstract interpretation.
type analyzer struct {
	p          *Program
	numHelpers int
	env        CellEnv
	states     []pcState // len n+1; index n = fall-through off the end
	work       []bool
	divProven  bool
	edges      edgeSet // scratch successor buffer reused across steps
}

// analyze proves a structurally-checked program trap-free, or explains
// why it cannot. The CFG is acyclic with forward-only edges, so the
// ascending-pc worklist reaches its fixpoint visiting each instruction
// a small constant number of times.
func analyze(p *Program, numHelpers int) (*Analysis, error) {
	return analyzeEnv(p, numHelpers, nil)
}

func analyzeEnv(p *Program, numHelpers int, env CellEnv) (*Analysis, error) {
	a, err := runAnalyzer(p, numHelpers, env)
	if err != nil {
		return nil, err
	}
	return a.facts(), nil
}

// runAnalyzer drives the worklist to its fixpoint and returns the
// analyzer with its per-pc states intact — the certificate builder
// (certificate.go) reads the fixpoint states directly.
func runAnalyzer(p *Program, numHelpers int, env CellEnv) (*analyzer, error) {
	n := len(p.Code)
	a := &analyzer{
		p:          p,
		numHelpers: numHelpers,
		env:        env,
		states:     make([]pcState, n+1),
		work:       make([]bool, n),
		divProven:  true,
	}
	a.states[0] = pcState{reachable: true, rs: entryState()}
	a.work[0] = true

	for {
		pc := -1
		for i, w := range a.work {
			if w {
				pc = i
				break
			}
		}
		if pc < 0 {
			break
		}
		a.work[pc] = false
		if err := a.step(pc); err != nil {
			return nil, err
		}
	}

	if a.states[n].reachable {
		return nil, vErr(p, n-1, "execution can fall off the end of the program")
	}
	return a, nil
}

// facts assembles the proof object from the fixpoint states.
func (a *analyzer) facts() *Analysis {
	n := len(a.p.Code)
	out := &Analysis{
		MaxSteps:  a.maxSteps(),
		DivProven: a.divProven,
		Reachable: make([]bool, n),
	}
	for pc := 0; pc < n; pc++ {
		st := a.states[pc]
		if !st.reachable {
			continue
		}
		out.Reachable[pc] = true
		in := a.p.Code[pc]
		switch in.Op {
		case OpStore:
			out.Stores = append(out.Stores, StoreFact{PC: pc, Cell: in.Cell, Val: st.rs.vals[in.Src].iv()})
		case OpExit:
			out.Exits = append(out.Exits, ExitFact{PC: pc, R0: st.rs.vals[0].iv()})
		}
	}
	return out
}

// loadVal is the abstract value an OpLoad of cell observes.
func (a *analyzer) loadVal(cell int32) absVal {
	if a.env != nil {
		if iv, ok := a.env(cell); ok {
			if v := fromInterval(iv); !v.isBottom() {
				return v
			}
		}
	}
	return topVal()
}

// flowTo merges an edge's exit state into the target's entry state and
// reports whether the target state changed (and thus needs revisiting).
// rs points into the analyzer's scratch edge buffer and may be mutated.
func (a *analyzer) flowTo(target int, rs *regState) bool {
	rs.canon()
	st := &a.states[target]
	if !st.reachable {
		st.reachable = true
		st.rs = *rs
		return true
	}
	st.joins++
	wide := st.joins > widenAfter
	merged := st.rs
	merged.init &= rs.init
	for i := range merged.vals {
		if wide {
			merged.vals[i] = widen(st.rs.vals[i], rs.vals[i])
		} else {
			merged.vals[i] = join(st.rs.vals[i], rs.vals[i])
		}
	}
	merged.canon()
	if merged == st.rs {
		return false
	}
	st.rs = merged
	return true
}

func (a *analyzer) enqueue(target int, rs *regState) {
	if a.flowTo(target, rs) && target < len(a.work) {
		a.work[target] = true
	}
}

// step transfers one instruction's entry state to its successors,
// rejecting any operation whose safety it cannot prove.
func (a *analyzer) step(pc int) error {
	if err := transfer(a.p, pc, &a.states[pc].rs, a.loadVal, &a.divProven, &a.edges); err != nil {
		return err
	}
	for i := 0; i < a.edges.n; i++ {
		a.enqueue(a.edges.target[i], &a.edges.state[i])
	}
	return nil
}

// edgeSet receives one instruction's live outgoing CFG edges. The ISA
// gives every instruction at most two successors (a conditional's taken
// and fall-through edges), so the buffer is fixed-size; callers keep one
// and reuse it across instructions, which keeps the hot transfer loop
// free of closure calls and heap traffic — exit states are built
// directly in the buffer's slots.
type edgeSet struct {
	n      int
	target [2]int
	state  [2]regState
}

// transfer is the per-instruction abstract transfer function shared by
// the worklist analyzer and the certificate checker (certificate.go):
// given pc's entry state it fills edges with every live CFG edge and
// that edge's exit state, or returns an error for any operation whose
// safety it cannot prove from st. Proven-dead comparison edges (a
// refinement collapsing to bottom) emit no edge. loadVal supplies the
// abstract value OpLoad observes; divProven accumulates whether every
// divisor seen so far is provably non-zero. st must not alias edges.
func transfer(p *Program, pc int, st *regState, loadVal func(int32) absVal, divProven *bool, edges *edgeSet) error {
	in := p.Code[pc]
	edges.n = 0

	read := func(r uint8) error {
		if st.init&(1<<r) == 0 {
			return vErr(p, pc, "read of uninitialized register r%d", r)
		}
		return nil
	}
	out := &edges.state[0] // successor state, mutated below
	*out = *st

	switch in.Op {
	case OpMovI:
		out.init |= 1 << in.Dst
		out.vals[in.Dst] = constVal(in.Imm)
	case OpMov:
		if err := read(in.Src); err != nil {
			return err
		}
		out.init |= 1 << in.Dst
		out.vals[in.Dst] = st.vals[in.Src]
	case OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax:
		if err := read(in.Dst); err != nil {
			return err
		}
		if err := read(in.Src); err != nil {
			return err
		}
		x, y := st.vals[in.Dst], st.vals[in.Src]
		var r absVal
		switch in.Op {
		case OpAdd:
			r = absAdd(x, y)
		case OpSub:
			r = absSub(x, y)
		case OpMul:
			r = absMul(x, y)
		case OpDiv:
			if err := checkDiv(p, pc, y, divProven); err != nil {
				return err
			}
			r = absDiv(x, y)
		case OpMin:
			r = absMin(x, y)
		case OpMax:
			r = absMax(x, y)
		}
		out.vals[in.Dst] = r
	case OpAddI, OpSubI, OpMulI, OpDivI:
		if err := read(in.Dst); err != nil {
			return err
		}
		x, y := st.vals[in.Dst], constVal(in.Imm)
		var r absVal
		switch in.Op {
		case OpAddI:
			r = absAdd(x, y)
		case OpSubI:
			r = absSub(x, y)
		case OpMulI:
			r = absMul(x, y)
		case OpDivI:
			if err := checkDiv(p, pc, y, divProven); err != nil {
				return err
			}
			r = absDiv(x, y)
		}
		out.vals[in.Dst] = r
	case OpNeg, OpAbs, OpNot, OpBoo:
		if err := read(in.Dst); err != nil {
			return err
		}
		switch in.Op {
		case OpNeg:
			out.vals[in.Dst] = absNeg(st.vals[in.Dst])
		case OpAbs:
			out.vals[in.Dst] = absAbs(st.vals[in.Dst])
		case OpNot:
			out.vals[in.Dst] = absNot(st.vals[in.Dst])
		case OpBoo:
			out.vals[in.Dst] = absBoo(st.vals[in.Dst])
		}
	case OpJmp:
		edges.target[0] = pc + 1 + int(in.Off)
		edges.n = 1
		return nil
	case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
		OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
		if err := read(in.Dst); err != nil {
			return err
		}
		imm := in.Op >= OpJEqI
		var y absVal
		if imm {
			y = constVal(in.Imm)
		} else {
			if err := read(in.Src); err != nil {
				return err
			}
			y = st.vals[in.Src]
		}
		cmpOp, _ := cmpRegOf(in.Op)
		x := st.vals[in.Dst]

		// Taken edge first, then fall-through; a refinement collapsing
		// to bottom proves that edge dead. Slot 0 already holds the
		// shared post-state, so each live edge is patched in place.
		nxT, nyT := refineCmp(cmpOp, x, y, true)
		nxF, nyF := refineCmp(cmpOp, x, y, false)
		liveT := !nxT.isBottom() && !nyT.isBottom()
		liveF := !nxF.isBottom() && !nyF.isBottom()
		if liveT && liveF {
			edges.state[1] = *out
		}
		if liveT {
			es := &edges.state[edges.n]
			es.vals[in.Dst] = nxT
			if !imm {
				es.vals[in.Src] = nyT
			}
			edges.target[edges.n] = pc + 1 + int(in.Off)
			edges.n++
		}
		if liveF {
			es := &edges.state[edges.n]
			es.vals[in.Dst] = nxF
			if !imm {
				es.vals[in.Src] = nyF
			}
			edges.target[edges.n] = pc + 1
			edges.n++
		}
		return nil
	case OpLoad:
		out.init |= 1 << in.Dst
		// Feature-store cells are unconstrained (and may be NaN) unless
		// the caller certified an input range for the deployment.
		out.vals[in.Dst] = loadVal(in.Cell)
	case OpStore:
		if err := read(in.Src); err != nil {
			return err
		}
	case OpCall:
		h := HelperID(int(in.Imm))
		ct := contractFor(h)
		if ct.arity > 0 {
			// Helper convention: r1..r5 are arguments. Requiring them all
			// initialized would force dead stores, so only r1 (the
			// near-universal first argument) is checked; helpers ignore
			// registers beyond their arity.
			if err := read(1); err != nil {
				return err
			}
			if ct.bounded {
				v := st.vals[1]
				if v.nan || !v.num {
					return vErr(p, pc, "helper %s argument r1 may be NaN (contract requires [%g,%g])",
						h, ct.min, ct.max)
				}
				if v.lo < ct.min || v.hi > ct.max {
					return vErr(p, pc, "helper %s argument r1 not provably within [%g,%g] (proved range [%g,%g])",
						h, ct.min, ct.max, v.lo, v.hi)
				}
			}
		}
		out.init |= 1 << 0 // r0 = return value
		out.vals[0] = topVal()
		out.init &^= 0b111110 // r1-r5 are clobbered (become uninitialized)
	case OpExit:
		if err := read(0); err != nil {
			return err
		}
		return nil // no successors
	}
	edges.target[0] = pc + 1
	edges.n = 1
	return nil
}

// checkDiv rejects divisions whose divisor is provably always ordinary
// zero (the result is the constant 0 under safeDiv — a spec bug, not a
// computation) and tracks whether every divisor is provably non-zero so
// the interpreter may use raw IEEE division.
func checkDiv(p *Program, pc int, divisor absVal, divProven *bool) error {
	if z, ok := divisor.singleton(); ok && z == 0 {
		return vErr(p, pc, "division by divisor provably always zero (x/0 = 0 would make the result constant)")
	}
	// Raw division matches safeDiv unless the divisor can be ordinary 0.
	if divisor.contains(0) {
		*divProven = false
	}
	return nil
}

// maxSteps computes the certified worst-case step count: the longest
// path (in executed instructions, counting OpExit) from entry to any
// exit over the static CFG. The DP over descending pc is exact because
// all edges point forward.
func (a *analyzer) maxSteps() int { return maxStepsDP(a.p.Code) }

// maxStepsDP is the step-bound dynamic program shared by the analyzer
// and the certificate checker; it depends only on the static CFG.
func maxStepsDP(code []Instr) int {
	n := len(code)
	steps := make([]int, n+1)
	for pc := n - 1; pc >= 0; pc-- {
		in := code[pc]
		switch in.Op {
		case OpExit:
			steps[pc] = 1
		case OpJmp:
			steps[pc] = 1 + steps[pc+1+int(in.Off)]
		case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			t, f := steps[pc+1+int(in.Off)], steps[pc+1]
			if f > t {
				t = f
			}
			steps[pc] = 1 + t
		default:
			steps[pc] = 1 + steps[pc+1]
		}
	}
	return steps[0]
}
