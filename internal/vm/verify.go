package vm

import (
	"fmt"
)

// VerifyError describes why a program was rejected, pointing at the
// offending instruction and naming the program so that multi-guardrail
// load failures are attributable to the spec that caused them.
type VerifyError struct {
	// Name is the rejected program's name (usually the guardrail name);
	// empty for anonymous programs.
	Name string
	// PC is the faulting instruction's index.
	PC int
	// Instr is the disassembled faulting instruction, when PC addresses
	// a decodable instruction.
	Instr string
	// Reason explains the rejection.
	Reason string
}

// Error implements error.
func (e *VerifyError) Error() string {
	prog := ""
	if e.Name != "" {
		prog = fmt.Sprintf(" %q", e.Name)
	}
	if e.Instr != "" {
		return fmt.Sprintf("vm: verify%s failed at pc=%d (%s): %s", prog, e.PC, e.Instr, e.Reason)
	}
	return fmt.Sprintf("vm: verify%s failed at pc=%d: %s", prog, e.PC, e.Reason)
}

func vErr(p *Program, pc int, format string, args ...any) error {
	e := &VerifyError{PC: pc, Reason: fmt.Sprintf(format, args...)}
	if p != nil {
		e.Name = p.Name
		if pc >= 0 && pc < len(p.Code) {
			e.Instr = p.fmtInstr(p.Code[pc])
		}
	}
	return e
}

// Verify statically checks a program for in-kernel safety, mirroring the
// eBPF verifier's guarantees scaled to this ISA. A structural pass
// checks the program shape:
//
//   - program is non-empty and at most MaxInsns instructions;
//   - every opcode is known and its register operands are in range;
//   - all jumps are strictly forward (loop freedom ⇒ termination) and
//     land inside the program;
//   - OpLoad/OpStore cell indices are within the symbol table;
//   - OpCall helper IDs are within the provided helper set.
//
// A worklist-driven abstract interpreter (analysis.go) then proves the
// program trap-free: execution cannot fall off the end, every register
// read is preceded by a write on all paths (r0 is the only register
// defined at entry, carrying the trigger argument), helper arguments
// satisfy their per-helper contracts (HelperAction's dispatch index must
// be a provably small non-negative number), and no division has a
// provably-always-zero divisor.
//
// On success Verify records the proof in p.Meta: the certified
// worst-case step bound (MaxSteps), trap-freedom (TrapFree — the
// interpreter skips its per-step runtime guards), and whether every
// divisor was proven non-zero (DivProven — the interpreter uses raw IEEE
// division). Verify returns nil if the program is safe to load.
func Verify(p *Program, numHelpers int) error {
	if err := verifyStructure(p, numHelpers); err != nil {
		return err
	}
	a, err := analyze(p, numHelpers)
	if err != nil {
		return err
	}
	p.Meta.MaxSteps = a.MaxSteps
	p.Meta.TrapFree = true
	p.Meta.DivProven = a.DivProven
	return nil
}

// VerifySteps verifies p and additionally rejects it when the certified
// worst-case step count exceeds maxSteps — a load-time admission test
// for hook sites with a hard per-evaluation budget.
func VerifySteps(p *Program, numHelpers, maxSteps int) error {
	if err := Verify(p, numHelpers); err != nil {
		return err
	}
	if p.Meta.MaxSteps > maxSteps {
		return vErr(p, 0, "certified worst-case step count %d exceeds the budget of %d steps",
			p.Meta.MaxSteps, maxSteps)
	}
	return nil
}

// Analyze runs the abstract interpreter on a structurally-checked
// program and returns the proof object without mutating p.Meta.
func Analyze(p *Program, numHelpers int) (*Analysis, error) {
	return AnalyzeWith(p, numHelpers, nil)
}

// AnalyzeWith is Analyze with certified input ranges for feature-store
// cells: LOADs of cells the env covers analyze as the given interval
// instead of top. Refining inputs can only shrink the reachable state
// space, so a program that verifies open-world stays verifiable under
// any env — except that a division whose divisor collapses to a
// provable constant zero under the env is rejected, which is exactly
// the deployment-level bug the refinement exists to surface.
func AnalyzeWith(p *Program, numHelpers int, env CellEnv) (*Analysis, error) {
	if err := verifyStructure(p, numHelpers); err != nil {
		return nil, err
	}
	return analyzeEnv(p, numHelpers, env)
}

// verifyStructure is the per-instruction structural pass; the abstract
// interpreter assumes it has run.
func verifyStructure(p *Program, numHelpers int) error {
	n := len(p.Code)
	if n == 0 {
		return vErr(p, 0, "empty program")
	}
	if n > MaxInsns {
		return vErr(p, 0, "program too long: %d > %d", n, MaxInsns)
	}
	for pc, in := range p.Code {
		if in.Op <= OpInvalid || in.Op >= opMax {
			return vErr(p, pc, "unknown opcode %d", in.Op)
		}
		if int(in.Dst) >= NumRegs {
			return vErr(p, pc, "dst register r%d out of range", in.Dst)
		}
		if int(in.Src) >= NumRegs {
			return vErr(p, pc, "src register r%d out of range", in.Src)
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			if in.Off < 1 {
				return vErr(p, pc, "non-forward jump offset %d", in.Off)
			}
			if pc+1+int(in.Off) > n {
				return vErr(p, pc, "jump target %d outside program", pc+1+int(in.Off))
			}
		case OpLoad, OpStore:
			if in.Cell < 0 || int(in.Cell) >= len(p.Symbols) {
				return vErr(p, pc, "cell index %d outside symbol table (%d symbols)", in.Cell, len(p.Symbols))
			}
		case OpCall:
			h := int(in.Imm)
			if float64(h) != in.Imm || h < 0 || h >= numHelpers {
				return vErr(p, pc, "helper id %v not in [0,%d)", in.Imm, numHelpers)
			}
		}
	}
	return nil
}
