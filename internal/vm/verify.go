package vm

import (
	"fmt"
)

// VerifyError describes why a program was rejected, pointing at the
// offending instruction.
type VerifyError struct {
	PC     int
	Reason string
}

// Error implements error.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("vm: verify failed at pc=%d: %s", e.PC, e.Reason)
}

func vErr(pc int, format string, args ...any) error {
	return &VerifyError{PC: pc, Reason: fmt.Sprintf(format, args...)}
}

// Verify statically checks a program for in-kernel safety, mirroring the
// eBPF verifier's guarantees scaled to this ISA:
//
//   - program is non-empty and at most MaxInsns instructions;
//   - every opcode is known and its register operands are in range;
//   - all jumps are strictly forward (loop freedom ⇒ termination) and
//     land inside the program;
//   - execution cannot fall off the end: every reachable path reaches
//     an OpExit;
//   - every register read is preceded by a write on all paths (r0 is
//     the only register defined at entry, carrying the trigger argument);
//   - OpLoad/OpStore cell indices are within the symbol table;
//   - OpCall helper IDs are within the provided helper set.
//
// Verify returns nil if the program is safe to load.
func Verify(p *Program, numHelpers int) error {
	n := len(p.Code)
	if n == 0 {
		return vErr(0, "empty program")
	}
	if n > MaxInsns {
		return vErr(0, "program too long: %d > %d", n, MaxInsns)
	}

	// Pass 1: structural checks per instruction.
	for pc, in := range p.Code {
		if in.Op <= OpInvalid || in.Op >= opMax {
			return vErr(pc, "unknown opcode %d", in.Op)
		}
		if int(in.Dst) >= NumRegs {
			return vErr(pc, "dst register r%d out of range", in.Dst)
		}
		if int(in.Src) >= NumRegs {
			return vErr(pc, "src register r%d out of range", in.Src)
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			if in.Off < 1 {
				return vErr(pc, "non-forward jump offset %d", in.Off)
			}
			if pc+1+int(in.Off) > n {
				return vErr(pc, "jump target %d outside program", pc+1+int(in.Off))
			}
		case OpLoad, OpStore:
			if in.Cell < 0 || int(in.Cell) >= len(p.Symbols) {
				return vErr(pc, "cell index %d outside symbol table (%d symbols)", in.Cell, len(p.Symbols))
			}
		case OpCall:
			h := int(in.Imm)
			if float64(h) != in.Imm || h < 0 || h >= numHelpers {
				return vErr(pc, "helper id %v not in [0,%d)", in.Imm, numHelpers)
			}
		}
	}

	// Pass 2: dataflow over the (acyclic, forward-only) CFG. Because all
	// jumps are forward, a single in-order pass visiting each pc once
	// sees all predecessors before the instruction itself.
	const allRegs = 1<<NumRegs - 1
	type state struct {
		reachable bool
		init      uint32 // bitset of provably-initialized registers
	}
	states := make([]state, n+1) // states[n] = fallthrough off the end
	states[0] = state{reachable: true, init: 1 << 0}

	merge := func(idx int, init uint32) {
		if !states[idx].reachable {
			states[idx] = state{reachable: true, init: init}
			return
		}
		states[idx].init &= init // must hold on all paths
	}

	readReg := func(pc int, s state, r uint8) error {
		if s.init&(1<<r) == 0 {
			return vErr(pc, "read of uninitialized register r%d", r)
		}
		return nil
	}

	for pc := 0; pc < n; pc++ {
		s := states[pc]
		if !s.reachable {
			continue
		}
		in := p.Code[pc]
		next := s.init
		switch in.Op {
		case OpMovI:
			next |= 1 << in.Dst
		case OpMov:
			if err := readReg(pc, s, in.Src); err != nil {
				return err
			}
			next |= 1 << in.Dst
		case OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax:
			if err := readReg(pc, s, in.Dst); err != nil {
				return err
			}
			if err := readReg(pc, s, in.Src); err != nil {
				return err
			}
		case OpAddI, OpSubI, OpMulI, OpDivI, OpNeg, OpAbs, OpNot, OpBoo:
			if err := readReg(pc, s, in.Dst); err != nil {
				return err
			}
		case OpJmp:
			merge(pc+1+int(in.Off), next)
			continue // no fallthrough
		case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe:
			if err := readReg(pc, s, in.Dst); err != nil {
				return err
			}
			if err := readReg(pc, s, in.Src); err != nil {
				return err
			}
			merge(pc+1+int(in.Off), next)
		case OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			if err := readReg(pc, s, in.Dst); err != nil {
				return err
			}
			merge(pc+1+int(in.Off), next)
		case OpLoad:
			next |= 1 << in.Dst
		case OpStore:
			if err := readReg(pc, s, in.Src); err != nil {
				return err
			}
		case OpCall:
			// Helper convention: r1..r5 are arguments. Requiring them all
			// initialized would force dead stores, so only r1 (the
			// near-universal first argument) is checked for helpers that
			// take arguments; helpers ignore registers beyond their arity.
			if helperArity(HelperID(in.Imm)) > 0 {
				if err := readReg(pc, s, 1); err != nil {
					return err
				}
			}
			next |= 1 << 0 // r0 = return value
			// r1-r5 are clobbered (become uninitialized).
			next &^= 0b111110
		case OpExit:
			if err := readReg(pc, s, 0); err != nil {
				return err
			}
			continue // no fallthrough
		}
		merge(pc+1, next)
		_ = allRegs
	}

	if states[n].reachable {
		return vErr(n-1, "execution can fall off the end of the program")
	}
	return nil
}

// helperArity returns the number of declared arguments for built-in
// helpers; unknown (runtime-extended) helpers report 1.
func helperArity(h HelperID) int {
	switch h {
	case HelperNow:
		return 0
	case HelperReport, HelperAction, HelperSqrt, HelperLog2:
		return 1
	default:
		return 1
	}
}
