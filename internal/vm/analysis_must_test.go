package vm

import (
	"math"
	"testing"
)

func TestMustViolate(t *testing.T) {
	zero := RangeInterval(0, 0)
	one := RangeInterval(1, 1)
	both := RangeInterval(0, 1)
	cases := []struct {
		name  string
		exits []ExitFact
		want  bool
	}{
		{"no exits", nil, false},
		{"always zero", []ExitFact{{R0: zero}}, true},
		{"two zero exits", []ExitFact{{R0: zero}, {R0: zero}}, true},
		{"may hold", []ExitFact{{R0: both}}, false},
		{"holds", []ExitFact{{R0: one}}, false},
		{"mixed", []ExitFact{{R0: zero}, {R0: one}}, false},
		{"nan tainted", []ExitFact{{R0: Interval{Num: true, NaN: true}}}, false},
	}
	for _, c := range cases {
		a := &Analysis{Exits: c.exits}
		if got := a.MustViolate(); got != c.want {
			t.Errorf("%s: MustViolate = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIntervalWiden(t *testing.T) {
	a := RangeInterval(0, 1)
	b := RangeInterval(0, 2)
	w := a.Widen(b)
	if w.Lo != 0 {
		t.Errorf("stable lower bound widened: %s", w)
	}
	if !math.IsInf(w.Hi, 1) {
		t.Errorf("growing upper bound not accelerated: %s", w)
	}
	// Stable value widens to itself.
	if s := a.Widen(a); s != a {
		t.Errorf("Widen(self) = %s, want %s", s, a)
	}
	// Falling lower bound accelerates down.
	c := RangeInterval(-5, 1)
	w2 := a.Widen(c)
	if !math.IsInf(w2.Lo, -1) || w2.Hi != 1 {
		t.Errorf("Widen down = %s", w2)
	}
}
