package vm

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Witness machinery: bounded counterexample synthesis for the static
// analyzers. Where Verify and the interference checks prove "may"
// claims by over-approximation, a witness turns one such claim into
// evidence: a concrete feature assignment that, replayed through the
// real interpreter (not the abstract semantics), reproduces the flagged
// behavior. Diagnostics carrying a replayed witness are CONFIRMED;
// when the bounded search exhausts its candidate assignments without
// reproducing the behavior the claim stands but is downgraded to
// PLAUSIBLE — an over-approximation the operator may triage later,
// never a silently dropped finding.

// WitnessStatus annotates a diagnostic with the outcome of witness
// synthesis.
type WitnessStatus string

// Witness statuses. The zero value means synthesis was not attempted
// (the diagnostic class has no replayable semantics, or witnesses were
// not requested).
const (
	// WitnessConfirmed: a concrete input replayed through the real VM
	// reproduces the flagged violation; the diagnostic is not a false
	// positive.
	WitnessConfirmed WitnessStatus = "CONFIRMED"
	// WitnessPlausible: no witness was found within the search bounds.
	// The static claim stands (the analysis is sound) but may be an
	// artifact of over-approximation.
	WitnessPlausible WitnessStatus = "PLAUSIBLE"
)

// Witness is the replayable evidence attached to a confirmed
// diagnostic: the concrete inputs and a step-by-step account of the
// replay that reproduced the violation.
type Witness struct {
	// Inputs is the concrete feature assignment (key → value).
	Inputs map[string]float64 `json:"inputs"`
	// Steps narrates the replay in execution order.
	Steps []string `json:"steps"`
}

// String renders "inputs {k=v, …}: step; step; …".
func (w *Witness) String() string {
	keys := make([]string, 0, len(w.Inputs))
	for k := range w.Inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, w.Inputs[k])
	}
	return fmt.Sprintf("inputs {%s}: %s",
		strings.Join(parts, ", "), strings.Join(w.Steps, "; "))
}

// StoreEvent is one feature-store write a replay observed.
type StoreEvent struct {
	// Key is the written feature key (resolved via the symbol table).
	Key string
	// Val is the written value.
	Val float64
}

// CallEvent is one Report/Action helper call a replay observed.
type CallEvent struct {
	Helper HelperID
	Arg    float64 // r1 at the call (violation code / action index)
}

// Replay is the observed outcome of one program run against a concrete
// input assignment on the real interpreter.
type Replay struct {
	// Assign is the feature assignment the run observed (key → value).
	Assign map[string]float64
	// Arg is the trigger argument (r0 at entry).
	Arg float64
	// R0 is the exit value; by the compiler's convention 0 means the
	// rule set was violated (the action path ran).
	R0 float64
	// Err is the trap, if the run failed.
	Err error
	// Violated reports a clean run that returned 0.
	Violated bool
	// Stores lists the feature-store writes, in execution order.
	Stores []StoreEvent
	// Calls lists the Report/Action helper calls, in execution order.
	Calls []CallEvent
	// Trace is the conditional-branch path the run took.
	Trace BranchTrace
}

// FinalStore returns the last value written to key during the replay.
func (r *Replay) FinalStore(key string) (float64, bool) {
	for i := len(r.Stores) - 1; i >= 0; i-- {
		if r.Stores[i].Key == key {
			return r.Stores[i].Val, true
		}
	}
	return 0, false
}

// replayEnv adapts a concrete assignment to the Env interface with
// deterministic helper semantics mirroring the monitor runtime: Now is
// a fixed instant, Sqrt/Log2 follow the helper contracts, and
// Report/Action succeed and are recorded instead of dispatched.
type replayEnv struct {
	p    *Program
	vals map[int32]float64
	now  float64
	rec  *Replay
}

func (e *replayEnv) LoadCell(i int32) float64 { return e.vals[i] }

func (e *replayEnv) StoreCell(i int32, v float64) {
	key := ""
	if int(i) < len(e.p.Symbols) {
		key = e.p.Symbols[i]
	}
	e.rec.Stores = append(e.rec.Stores, StoreEvent{Key: key, Val: v})
	// Later LOADs of the key observe the write, as against a real store.
	e.vals[i] = v
}

func (e *replayEnv) Helper(h HelperID, args *[5]float64) (float64, error) {
	switch h {
	case HelperNow:
		return e.now, nil
	case HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	case HelperReport, HelperAction:
		e.rec.Calls = append(e.rec.Calls, CallEvent{Helper: h, Arg: args[0]})
		return 0, nil
	}
	return 0, nil
}

// ReplayProgram runs p on the real interpreter against the concrete
// assignment (feature key → value; keys the program loads but the
// assignment omits read 0, like an unpopulated feature store) and
// returns everything the run observed. The replay is deterministic:
// HelperNow returns now for the whole run.
func ReplayProgram(p *Program, assign map[string]float64, arg, now float64) *Replay {
	rec := &Replay{Assign: assign, Arg: arg}
	env := &replayEnv{p: p, vals: make(map[int32]float64, len(p.Symbols)), now: now, rec: rec}
	for cell, key := range p.Symbols {
		if v, ok := assign[key]; ok {
			env.vals[int32(cell)] = v
		}
	}
	var m Machine
	m.Trace = &rec.Trace
	rec.R0, rec.Err = m.Run(p, env, arg)
	rec.Violated = rec.Err == nil && rec.R0 == 0
	return rec
}

// Candidates proposes trial values for one feature within its declared
// interval (pass ok=false for an undeclared feature): the interval's
// endpoints and midpoint plus the common small values the bounded
// search seeds with. The list is deduplicated and every value respects
// the interval — the search never witnesses a violation with inputs the
// deployment certifies impossible.
func Candidates(iv Interval, ok bool) []float64 {
	seed := []float64{0, 1, -1, 2, 10, 100}
	if !ok || !iv.Num {
		return seed
	}
	var out []float64
	add := func(v float64) {
		if math.IsNaN(v) || v < iv.Lo || v > iv.Hi {
			return
		}
		for _, x := range out {
			if x == v {
				return
			}
		}
		out = append(out, v)
	}
	if !math.IsInf(iv.Lo, 0) {
		add(iv.Lo)
	}
	if !math.IsInf(iv.Hi, 0) {
		add(iv.Hi)
	}
	if !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0) {
		add(iv.Lo + (iv.Hi-iv.Lo)/2)
	}
	for _, v := range seed {
		add(v)
	}
	if len(out) == 0 {
		// Degenerate declared interval (e.g. [+Inf,+Inf]); try its
		// bounds as given.
		out = append(out, iv.Lo)
	}
	return out
}

// EnumAssignments drives a bounded search: it calls try with each
// assignment drawn from the Cartesian product of cands over keys (keys
// beyond the first vary fastest), stopping when try returns true or
// after budget trials. The assignment map is reused between calls — try
// must copy it if it escapes the call. Returns the number of trials and
// whether try accepted one.
func EnumAssignments(keys []string, cands map[string][]float64, budget int, try func(map[string]float64) bool) (int, bool) {
	if budget <= 0 {
		budget = 1
	}
	assign := make(map[string]float64, len(keys))
	if len(keys) == 0 {
		return 1, try(assign)
	}
	idx := make([]int, len(keys))
	trials := 0
	for {
		for i, k := range keys {
			vs := cands[k]
			if len(vs) == 0 {
				assign[k] = 0
				continue
			}
			assign[k] = vs[idx[i]]
		}
		trials++
		if try(assign) {
			return trials, true
		}
		if trials >= budget {
			return trials, false
		}
		// Odometer increment, last key fastest.
		i := len(keys) - 1
		for i >= 0 {
			n := len(cands[keys[i]])
			if n == 0 {
				n = 1
			}
			idx[i]++
			if idx[i] < n {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return trials, false
		}
	}
}

// CopyAssign snapshots a (reused) assignment map.
func CopyAssign(a map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// LoadedKeys lists the feature keys p LOADs, sorted.
func LoadedKeys(p *Program) []string {
	set := map[string]bool{}
	for _, in := range p.Code {
		if in.Op == OpLoad && int(in.Cell) < len(p.Symbols) {
			set[p.Symbols[in.Cell]] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TraceString renders a branch trace as "pc→taken" steps for witness
// narration, e.g. "branches [3↓ 7→]" (↓ = fall through, → = taken).
func TraceString(t *BranchTrace) string {
	if t.N == 0 {
		return "no branches"
	}
	var sb strings.Builder
	sb.WriteString("branches [")
	for i := 0; i < t.N; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		arrow := "↓"
		if t.Taken[i] {
			arrow = "→"
		}
		fmt.Fprintf(&sb, "%d%s", t.PC[i], arrow)
	}
	if t.Truncated {
		sb.WriteString(" …")
	}
	sb.WriteString("]")
	return sb.String()
}
