package vm

import (
	"fmt"
)

// Builder assembles a Program with symbolic labels and automatic symbol
// interning; the compiler backend targets it. Emit* methods append
// instructions; Label defines a forward jump target; Finish patches
// offsets and returns the program.
type Builder struct {
	name    string
	code    []Instr
	symbols []string
	symIdx  map[string]int32

	labels  map[string]int // label -> pc
	patches map[int]string // pc of jump -> label
	errs    []error
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		symIdx:  make(map[string]int32),
		labels:  make(map[string]int),
		patches: make(map[int]string),
	}
}

// Sym interns a feature-store key and returns its cell index.
func (b *Builder) Sym(key string) int32 {
	if i, ok := b.symIdx[key]; ok {
		return i
	}
	i := int32(len(b.symbols))
	b.symbols = append(b.symbols, key)
	b.symIdx[key] = i
	return i
}

// PC returns the index the next emitted instruction will have.
func (b *Builder) PC() int { return len(b.code) }

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instr) { b.code = append(b.code, in) }

// MovI emits dst = imm.
func (b *Builder) MovI(dst uint8, imm float64) { b.Emit(Instr{Op: OpMovI, Dst: dst, Imm: imm}) }

// Mov emits dst = src.
func (b *Builder) Mov(dst, src uint8) { b.Emit(Instr{Op: OpMov, Dst: dst, Src: src}) }

// ALU emits a register-register arithmetic op.
func (b *Builder) ALU(op Op, dst, src uint8) { b.Emit(Instr{Op: op, Dst: dst, Src: src}) }

// ALUI emits a register-immediate arithmetic op.
func (b *Builder) ALUI(op Op, dst uint8, imm float64) { b.Emit(Instr{Op: op, Dst: dst, Imm: imm}) }

// Un emits a unary op (neg/abs/not/bool).
func (b *Builder) Un(op Op, dst uint8) { b.Emit(Instr{Op: op, Dst: dst}) }

// Load emits dst = LOAD(key).
func (b *Builder) Load(dst uint8, key string) {
	b.Emit(Instr{Op: OpLoad, Dst: dst, Cell: b.Sym(key)})
}

// Store emits SAVE(key, src).
func (b *Builder) Store(key string, src uint8) {
	b.Emit(Instr{Op: OpStore, Src: src, Cell: b.Sym(key)})
}

// Call emits r0 = helper(r1..r5).
func (b *Builder) Call(h HelperID) { b.Emit(Instr{Op: OpCall, Imm: float64(h)}) }

// Exit emits a return of r0.
func (b *Builder) Exit() { b.Emit(Instr{Op: OpExit}) }

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) {
	b.patches[len(b.code)] = label
	b.Emit(Instr{Op: OpJmp})
}

// JmpIf emits a conditional register-register jump to label.
func (b *Builder) JmpIf(op Op, dst, src uint8, label string) {
	b.patches[len(b.code)] = label
	b.Emit(Instr{Op: op, Dst: dst, Src: src})
}

// JmpIfI emits a conditional register-immediate jump to label.
func (b *Builder) JmpIfI(op Op, dst uint8, imm float64, label string) {
	b.patches[len(b.code)] = label
	b.Emit(Instr{Op: op, Dst: dst, Imm: imm})
}

// Label binds name to the next instruction's pc. Each label may be bound
// once; jumps to it must be emitted before (forward jumps only).
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("vm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.code)
}

// Finish patches jump offsets and returns the assembled program. It does
// not run Verify; callers decide when to verify.
func (b *Builder) Finish() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for pc, label := range b.patches {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("vm: undefined label %q", label)
		}
		off := target - pc - 1
		if off < 1 {
			return nil, fmt.Errorf("vm: label %q is not strictly forward of jump at pc=%d", label, pc)
		}
		b.code[pc].Off = int32(off)
	}
	return &Program{Name: b.name, Code: b.code, Symbols: b.symbols}, nil
}
