package vm

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// certFixture builds a branchy program with stores, helper calls, and a
// division so its certificate carries non-trivial block invariants.
func certFixture(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("cert-fixture")
	b.Load(6, "qdepth")
	b.Load(7, "latency")
	b.JmpIfI(OpJLeI, 6, 8, "shallow")
	b.MovI(1, 2)
	b.Call(HelperAction)
	b.MovI(2, 0)
	b.Store("ml_enabled", 2)
	b.MovI(0, 0)
	b.Exit()
	b.Label("shallow")
	b.MovI(8, 4)
	b.Mov(9, 7)
	b.ALU(OpDiv, 9, 8) // divisor is the constant 4: provably non-zero
	b.Store("lat_q", 9)
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCertifyMatchesVerify(t *testing.T) {
	p := certFixture(t)
	q := certFixture(t)
	mustVerify(t, p)
	if err := Certify(q, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	if q.Meta != p.Meta {
		t.Errorf("Certify meta %+v, want Verify's %+v", q.Meta, p.Meta)
	}
	if q.Cert == nil || len(q.Cert.Blocks) == 0 {
		t.Fatalf("certificate missing or trivial: %+v", q.Cert)
	}
	if !q.Cert.DivProven {
		t.Error("fixture divisor is constant 4; DivProven should hold")
	}
}

func TestCertifyRejectsUnsafe(t *testing.T) {
	p := &Program{Name: "unsafe", Code: []Instr{
		{Op: OpMov, Dst: 0, Src: 3}, // r3 uninitialized
		{Op: OpExit},
	}}
	if err := Certify(p, NumBuiltinHelpers); err == nil {
		t.Fatal("Certify accepted an unsafe program")
	}
	if p.Cert != nil || p.Meta.TrapFree {
		t.Error("rejected program carries proof state")
	}
}

// TestCertificateRoundTripProven is the tentpole's core promise: a
// certified program survives Encode/Decode with its proof intact, and
// CheckCertificate restores the exact Meta claims so the decoded image
// runs on the proven fast path — agreeing step-for-step with the
// guarded interpreter.
func TestCertificateRoundTripProven(t *testing.T) {
	p := certFixture(t)
	if err := Certify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	wantMeta := ProgramMeta{MaxSteps: p.Meta.MaxSteps, TrapFree: true, DivProven: p.Meta.DivProven}

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Meta != (ProgramMeta{}) {
		t.Fatalf("decoded image trusted before checking: %+v", q.Meta)
	}
	if q.Cert == nil {
		t.Fatal("certificate did not survive serialization")
	}
	if err := CheckCertificate(q, NumBuiltinHelpers); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}
	if q.Meta != wantMeta {
		t.Fatalf("restored meta %+v, want %+v", q.Meta, wantMeta)
	}

	for _, qd := range []float64{0, 8, 9, math.NaN()} {
		env := &testEnv{cells: make([]float64, len(q.Symbols))}
		env.cells[0] = qd
		env.cells[1] = 100
		var mp Machine
		provenOut, perr := mp.Run(q, env, 0)
		if perr != nil {
			t.Fatalf("qdepth=%v: proven path trapped: %v", qd, perr)
		}
		guarded := *q
		guarded.Meta = ProgramMeta{}
		genv := &testEnv{cells: make([]float64, len(q.Symbols))}
		genv.cells[0] = qd
		genv.cells[1] = 100
		var mg Machine
		guardedOut, gerr := mg.Run(&guarded, genv, 0)
		if gerr != nil {
			t.Fatalf("qdepth=%v: guarded path trapped: %v", qd, gerr)
		}
		if !sameFloat(provenOut, guardedOut) || mp.Steps != mg.Steps {
			t.Fatalf("qdepth=%v: proven (%v, %d) != guarded (%v, %d)",
				qd, provenOut, mp.Steps, guardedOut, mg.Steps)
		}
		if int(mp.Steps) > q.Meta.MaxSteps {
			t.Fatalf("qdepth=%v: %d steps exceed certified bound %d", qd, mp.Steps, q.Meta.MaxSteps)
		}
	}
}

func TestLegacyImageDecodes(t *testing.T) {
	p := certFixture(t)
	if err := Certify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	// A legacy image is the v2 layout minus the certificate section:
	// re-encode without a cert, rewrite the magic, and drop the v2
	// trailing "no certificate" flag byte.
	stripped := *p
	stripped.Cert = nil
	var legacy bytes.Buffer
	if err := stripped.Encode(&legacy); err != nil {
		t.Fatal(err)
	}
	limg := legacy.Bytes()
	copy(limg, imageMagicV1)
	limg = limg[:len(limg)-1]
	q, err := Decode(bytes.NewReader(limg))
	if err != nil {
		t.Fatalf("legacy image rejected: %v", err)
	}
	if q.Cert != nil || q.Meta.TrapFree {
		t.Error("legacy image conjured a certificate")
	}
	if len(q.Code) != len(p.Code) {
		t.Errorf("legacy decode lost code: %d insns", len(q.Code))
	}
}

func TestCheckCertificateRejections(t *testing.T) {
	fresh := func() *Program {
		p := certFixture(t)
		if err := Certify(p, NumBuiltinHelpers); err != nil {
			t.Fatal(err)
		}
		p.Meta = ProgramMeta{} // simulate a decoded image
		return p
	}
	cases := map[string]func(p *Program){
		"no-certificate":  func(p *Program) { p.Cert = nil },
		"wrong-max-steps": func(p *Program) { p.Cert.MaxSteps++ },
		"false-div-claim": func(p *Program) {
			// Turn the constant divisor into a cell value the checker
			// cannot prove non-zero while the cert still claims DivProven.
			for i, in := range p.Code {
				if in.Op == OpMovI && in.Imm == 4 {
					p.Code[i] = Instr{Op: OpLoad, Dst: in.Dst, Cell: 0}
				}
			}
		},
		"missing-block": func(p *Program) { p.Cert.Blocks = p.Cert.Blocks[:0] },
		"narrowed-invariant": func(p *Program) {
			// Claim a register is a narrow singleton the real flow exceeds.
			b := &p.Cert.Blocks[0]
			b.Regs[6] = Interval{Num: true, Lo: 42, Hi: 42}
		},
		"widened-init": func(p *Program) {
			// Claim a register initialized that no path initializes.
			b := &p.Cert.Blocks[0]
			b.Init |= 1 << 15
		},
		"unsorted-blocks": func(p *Program) {
			p.Cert.Blocks = append(p.Cert.Blocks, p.Cert.Blocks[0])
		},
		"block-outside-program": func(p *Program) {
			p.Cert.Blocks[len(p.Cert.Blocks)-1].PC = len(p.Code) + 7
		},
		"bad-init-mask": func(p *Program) { p.Cert.Blocks[0].Init = 1 << 20 },
		"stale-for-edited-code": func(p *Program) {
			// Raise the branch threshold: wider values now flow into the
			// "shallow" block than its shipped invariant covers, so the
			// edge-subsumption check must fail.
			for i, in := range p.Code {
				if in.Op == OpJLeI {
					p.Code[i].Imm = 1e9
				}
			}
		},
	}
	for name, corrupt := range cases {
		p := fresh()
		corrupt(p)
		err := CheckCertificate(p, NumBuiltinHelpers)
		if err == nil {
			t.Errorf("%s: tampered certificate accepted", name)
			continue
		}
		var ve *VerifyError
		if !errors.As(err, &ve) || ve.Reason == "" {
			t.Errorf("%s: want positioned *VerifyError, got %T %v", name, err, err)
		}
		if p.Meta.TrapFree {
			t.Errorf("%s: rejected program still claims the proven path", name)
		}
	}
}

// TestCertificateTamperCorpus is the acceptance gate for the trust
// boundary: hundreds of byte-level corruptions of certified images must
// never admit a bad proof. Each corrupted image either fails to decode,
// fails CheckCertificate (falling back to guarded execution), or — when
// the corruption happens to leave a semantically valid program+proof —
// the admitted program must run trap-free on the proven path, within
// its certified step bound, agreeing exactly with the guarded
// interpreter on adversarial inputs.
func TestCertificateTamperCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7a3b))
	base := func() []byte {
		p := certFixture(t)
		if err := Certify(p, NumBuiltinHelpers); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	second := func() []byte {
		b := NewBuilder("tamper-two")
		b.Load(6, "a")
		b.Load(7, "b")
		b.JmpIf(OpJLt, 6, 7, "lt")
		b.MovI(0, 1)
		b.Exit()
		b.Label("lt")
		b.Mov(1, 6)
		b.Un(OpAbs, 1)
		b.Call(HelperReport)
		b.MovI(0, 0)
		b.Exit()
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := Certify(p, NumBuiltinHelpers); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	randCell := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.NaN()
		case 2:
			return math.Inf(1)
		case 3:
			return math.Inf(-1)
		default:
			return rng.NormFloat64() * 100
		}
	}

	corrupt := func(img []byte) []byte {
		out := append([]byte(nil), img...)
		switch rng.Intn(4) {
		case 0: // single byte flip
			out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
		case 1: // burst of flips
			for k := 0; k < 1+rng.Intn(8); k++ {
				out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
			}
		case 2: // truncation
			out = out[:rng.Intn(len(out))]
		default: // splice bytes from the other image
			at := rng.Intn(len(out))
			n := 1 + rng.Intn(16)
			for k := 0; k < n && at+k < len(out); k++ {
				out[at+k] = second[(at+k)%len(second)]
			}
		}
		return out
	}

	const trials = 300
	decodeFail, checkFail, admitted := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		img := base
		if trial%2 == 1 {
			img = second
		}
		data := corrupt(img)
		p, err := Decode(bytes.NewReader(data))
		if err != nil {
			decodeFail++
			continue
		}
		if p.Meta != (ProgramMeta{}) {
			t.Fatalf("trial %d: decode granted trust without a check", trial)
		}
		if p.Cert == nil {
			checkFail++ // no proof: guarded fallback
			continue
		}
		if err := CheckCertificate(p, NumBuiltinHelpers); err != nil {
			if p.Meta.TrapFree {
				t.Fatalf("trial %d: rejected cert left TrapFree set", trial)
			}
			checkFail++
			continue
		}
		admitted++
		// The checker accepted: the proof must actually hold.
		for run := 0; run < 4; run++ {
			cells := make([]float64, len(p.Symbols))
			for i := range cells {
				cells[i] = randCell()
			}
			arg := randCell()
			var mp Machine
			provenOut, perr := mp.Run(p, &fuzzEnv{cells: append([]float64(nil), cells...)}, arg)
			if perr != nil {
				t.Fatalf("trial %d: admitted image trapped on the proven path: %v\ncells=%v\n%s",
					trial, perr, cells, p)
			}
			if int(mp.Steps) > p.Meta.MaxSteps {
				t.Fatalf("trial %d: %d steps exceed certified bound %d\n%s",
					trial, mp.Steps, p.Meta.MaxSteps, p)
			}
			guarded := *p
			guarded.Meta = ProgramMeta{}
			var mg Machine
			guardedOut, gerr := mg.Run(&guarded, &fuzzEnv{cells: append([]float64(nil), cells...)}, arg)
			if gerr != nil {
				t.Fatalf("trial %d: guarded trapped where proven did not: %v", trial, gerr)
			}
			if !sameFloat(provenOut, guardedOut) || mp.Steps != mg.Steps {
				t.Fatalf("trial %d: admitted image diverges: proven (%v, %d) vs guarded (%v, %d)\ncells=%v\n%s",
					trial, provenOut, mp.Steps, guardedOut, mg.Steps, cells, p)
			}
		}
	}
	if decodeFail+checkFail < trials/2 {
		t.Fatalf("corruptions too gentle: %d decode failures, %d check failures, %d admitted",
			decodeFail, checkFail, admitted)
	}
	t.Logf("tamper corpus: %d trials — %d decode failures, %d check rejections, %d admitted (all re-proven)",
		trials, decodeFail, checkFail, admitted)
}
