package vm

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// testEnv is a trivial Env backed by a slice and a helper log.
type testEnv struct {
	cells     []float64
	helpers   []HelperID
	now       float64
	helperErr error
}

func (e *testEnv) LoadCell(i int32) float64 { return e.cells[i] }
func (e *testEnv) StoreCell(i int32, v float64) {
	e.cells[i] = v
}
func (e *testEnv) Helper(h HelperID, args *[5]float64) (float64, error) {
	if e.helperErr != nil {
		return 0, e.helperErr
	}
	e.helpers = append(e.helpers, h)
	switch h {
	case HelperNow:
		return e.now, nil
	case HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	default:
		return 0, nil
	}
}

func mustVerify(t *testing.T, p *Program) {
	t.Helper()
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatalf("verify %q: %v\n%s", p.Name, err, p)
	}
}

func run(t *testing.T, p *Program, env Env, arg float64) float64 {
	t.Helper()
	var m Machine
	out, err := m.Run(p, env, arg)
	if err != nil {
		t.Fatalf("run %q: %v", p.Name, err)
	}
	return out
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		name string
		op   Op
		a, b float64
		want float64
		// skipVerify runs the program unverified (guarded interpreter
		// path): the verifier rejects a provably-constant-zero divisor,
		// but the runtime x/0 = 0 semantics must still hold for programs
		// that bypass it.
		skipVerify bool
	}{
		{"add", OpAdd, 2, 3, 5, false},
		{"sub", OpSub, 2, 3, -1, false},
		{"mul", OpMul, 2, 3, 6, false},
		{"div", OpDiv, 6, 3, 2, false},
		{"div0", OpDiv, 6, 0, 0, true},
		{"min", OpMin, 2, 3, 2, false},
		{"max", OpMax, 2, 3, 3, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder(c.name)
			b.MovI(1, c.a)
			b.MovI(2, c.b)
			b.ALU(c.op, 1, 2)
			b.Mov(0, 1)
			b.Exit()
			p, err := b.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !c.skipVerify {
				mustVerify(t, p)
			}
			if got := run(t, p, &testEnv{}, 0); got != c.want {
				t.Errorf("%s(%v,%v) = %v, want %v", c.name, c.a, c.b, got, c.want)
			}
		})
	}
}

func TestImmediateOps(t *testing.T) {
	b := NewBuilder("imm")
	b.MovI(1, 10)
	b.ALUI(OpAddI, 1, 5)  // 15
	b.ALUI(OpSubI, 1, 3)  // 12
	b.ALUI(OpMulI, 1, 2)  // 24
	b.ALUI(OpDivI, 1, 4)  // 6
	b.ALUI(OpMulI, 1, 0)  // 0
	b.ALUI(OpAddI, 1, -7) // -7
	b.Un(OpAbs, 1)        // 7
	b.Un(OpNeg, 1)        // -7
	b.Mov(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	if got := run(t, p, &testEnv{}, 0); got != -7 {
		t.Errorf("got %v, want -7", got)
	}
}

// TestDivIByZeroUnverified pins the guarded interpreter's x/0 = 0
// semantics for the immediate form; the verifier rejects such programs,
// so this runs unverified.
func TestDivIByZeroUnverified(t *testing.T) {
	b := NewBuilder("divi0")
	b.MovI(0, 42)
	b.ALUI(OpDivI, 0, 0)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, p, &testEnv{}, 0); got != 0 {
		t.Errorf("42 divi 0 = %v, want 0", got)
	}
}

func TestLogicalOps(t *testing.T) {
	build := func(op Op, v float64) float64 {
		b := NewBuilder("logic")
		b.MovI(0, v)
		b.Un(op, 0)
		b.Exit()
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mustVerify(t, p)
		return run(t, p, &testEnv{}, 0)
	}
	if build(OpNot, 0) != 1 || build(OpNot, 5) != 0 || build(OpNot, -2) != 0 {
		t.Error("not semantics wrong")
	}
	if build(OpBoo, 0) != 0 || build(OpBoo, 5) != 1 || build(OpBoo, -2) != 1 {
		t.Error("bool semantics wrong")
	}
}

func TestConditionalJumps(t *testing.T) {
	// Program computes: r0 = (arg > 10) ? 1 : 0 via JGtI.
	b := NewBuilder("cond")
	b.JmpIfI(OpJGtI, 0, 10, "big")
	b.MovI(0, 0)
	b.Exit()
	b.Label("big")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	if run(t, p, &testEnv{}, 11) != 1 || run(t, p, &testEnv{}, 10) != 0 || run(t, p, &testEnv{}, 3) != 0 {
		t.Error("conditional jump semantics wrong")
	}
}

func TestAllJumpVariants(t *testing.T) {
	type jc struct {
		op       Op
		a, b     float64
		expected bool
	}
	cases := []jc{
		{OpJEq, 2, 2, true}, {OpJEq, 2, 3, false},
		{OpJNe, 2, 3, true}, {OpJNe, 2, 2, false},
		{OpJLt, 2, 3, true}, {OpJLt, 3, 3, false},
		{OpJLe, 3, 3, true}, {OpJLe, 4, 3, false},
		{OpJGt, 4, 3, true}, {OpJGt, 3, 3, false},
		{OpJGe, 3, 3, true}, {OpJGe, 2, 3, false},
	}
	for _, c := range cases {
		b := NewBuilder("jmp")
		b.MovI(1, c.a)
		b.MovI(2, c.b)
		b.JmpIf(c.op, 1, 2, "taken")
		b.MovI(0, 0)
		b.Exit()
		b.Label("taken")
		b.MovI(0, 1)
		b.Exit()
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mustVerify(t, p)
		got := run(t, p, &testEnv{}, 0) == 1
		if got != c.expected {
			t.Errorf("%v(%v,%v): taken=%v, want %v", c.op, c.a, c.b, got, c.expected)
		}
	}
	// Immediate variants.
	immCases := []jc{
		{OpJEqI, 2, 2, true}, {OpJNeI, 2, 3, true},
		{OpJLtI, 2, 3, true}, {OpJLeI, 3, 3, true},
		{OpJGtI, 4, 3, true}, {OpJGeI, 3, 3, true},
		{OpJGeI, 2, 3, false},
	}
	for _, c := range immCases {
		b := NewBuilder("jmpi")
		b.MovI(1, c.a)
		b.JmpIfI(c.op, 1, c.b, "taken")
		b.MovI(0, 0)
		b.Exit()
		b.Label("taken")
		b.MovI(0, 1)
		b.Exit()
		p, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		mustVerify(t, p)
		got := run(t, p, &testEnv{}, 0) == 1
		if got != c.expected {
			t.Errorf("%v(%v,imm %v): taken=%v, want %v", c.op, c.a, c.b, got, c.expected)
		}
	}
}

func TestLoadStore(t *testing.T) {
	b := NewBuilder("ls")
	b.Load(1, "rate")
	b.ALUI(OpMulI, 1, 2)
	b.Store("doubled", 1)
	b.Mov(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	env := &testEnv{cells: make([]float64, len(p.Symbols))}
	env.cells[0] = 0.04 // "rate"
	if got := run(t, p, env, 0); got != 0.08 {
		t.Errorf("got %v", got)
	}
	if env.cells[1] != 0.08 {
		t.Errorf("store wrote %v", env.cells[1])
	}
	if p.Symbols[0] != "rate" || p.Symbols[1] != "doubled" {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestHelperCall(t *testing.T) {
	b := NewBuilder("helper")
	b.MovI(1, 16)
	b.Call(HelperSqrt)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	env := &testEnv{}
	if got := run(t, p, env, 0); got != 4 {
		t.Errorf("sqrt(16) = %v", got)
	}
	if len(env.helpers) != 1 || env.helpers[0] != HelperSqrt {
		t.Errorf("helper log = %v", env.helpers)
	}
}

func TestHelperClobbersArgRegs(t *testing.T) {
	// After a call, r1-r5 are uninitialized; reading them must be
	// rejected by the verifier.
	b := NewBuilder("clobber")
	b.MovI(1, 1)
	b.Call(HelperNow)
	b.Mov(0, 1) // r1 clobbered!
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, NumBuiltinHelpers); err == nil {
		t.Error("read of clobbered register should fail verification")
	}
}

func TestRunPresetsArgInR0(t *testing.T) {
	b := NewBuilder("arg")
	b.ALUI(OpMulI, 0, 3)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	if got := run(t, p, &testEnv{}, 7); got != 21 {
		t.Errorf("got %v", got)
	}
}

func TestVerifyRejections(t *testing.T) {
	sym := []string{"k"}
	cases := []struct {
		name string
		p    Program
	}{
		{"empty", Program{}},
		{"no-exit", Program{Code: []Instr{{Op: OpMovI, Dst: 0}}}},
		{"fall-off-after-branch", Program{Code: []Instr{
			{Op: OpJGtI, Dst: 0, Imm: 1, Off: 1},
			{Op: OpMovI, Dst: 0},
		}}},
		{"backward-jump", Program{Code: []Instr{
			{Op: OpMovI, Dst: 0},
			{Op: OpJmp, Off: -1},
			{Op: OpExit},
		}}},
		{"zero-offset-jump", Program{Code: []Instr{
			{Op: OpJmp, Off: 0},
			{Op: OpExit},
		}}},
		{"jump-out-of-range", Program{Code: []Instr{
			{Op: OpMovI, Dst: 0},
			{Op: OpJmp, Off: 5},
			{Op: OpExit},
		}}},
		{"bad-dst-reg", Program{Code: []Instr{
			{Op: OpMovI, Dst: 16},
			{Op: OpExit},
		}}},
		{"bad-src-reg", Program{Code: []Instr{
			{Op: OpMovI, Dst: 0},
			{Op: OpMov, Dst: 1, Src: 17},
			{Op: OpExit},
		}}},
		{"uninit-read", Program{Code: []Instr{
			{Op: OpMov, Dst: 0, Src: 3},
			{Op: OpExit},
		}}},
		{"uninit-exit", Program{Code: []Instr{
			{Op: OpMovI, Dst: 1},
			{Op: OpStore, Src: 1, Cell: 0},
			{Op: OpExit}, // r0 was overwritten? No: r0 is init at entry — use store-only path
		}, Symbols: sym}},
		{"bad-cell", Program{Code: []Instr{
			{Op: OpLoad, Dst: 0, Cell: 2},
			{Op: OpExit},
		}, Symbols: sym}},
		{"negative-cell", Program{Code: []Instr{
			{Op: OpLoad, Dst: 0, Cell: -1},
			{Op: OpExit},
		}, Symbols: sym}},
		{"bad-helper", Program{Code: []Instr{
			{Op: OpMovI, Dst: 1},
			{Op: OpCall, Imm: 99},
			{Op: OpExit},
		}}},
		{"fractional-helper", Program{Code: []Instr{
			{Op: OpMovI, Dst: 1},
			{Op: OpCall, Imm: 1.5},
			{Op: OpExit},
		}}},
		{"unknown-op", Program{Code: []Instr{
			{Op: Op(200)},
			{Op: OpExit},
		}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Verify(&c.p, NumBuiltinHelpers)
			if c.name == "uninit-exit" {
				// r0 is initialized at entry, so this one actually passes.
				if err != nil {
					t.Errorf("unexpected verify error: %v", err)
				}
				return
			}
			if err == nil {
				t.Errorf("program %q should be rejected", c.name)
			}
			var ve *VerifyError
			if err != nil {
				var ok bool
				ve, ok = err.(*VerifyError)
				if !ok {
					t.Errorf("error type = %T, want *VerifyError", err)
				} else if ve.Error() == "" {
					t.Error("empty error message")
				}
			}
		})
	}
}

func TestVerifyPathSensitiveInit(t *testing.T) {
	// r1 is initialized on only one path; reading it after the merge
	// must be rejected.
	b := NewBuilder("path")
	b.JmpIfI(OpJGtI, 0, 0, "skip")
	b.MovI(1, 5)
	b.Jmp("join")
	b.Label("skip")
	b.MovI(2, 1) // something else
	b.Label("join")
	b.Mov(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, NumBuiltinHelpers); err == nil {
		t.Error("partially-initialized register read should be rejected")
	}

	// Both paths initialize r1: accepted.
	b2 := NewBuilder("path-ok")
	b2.JmpIfI(OpJGtI, 0, 0, "skip")
	b2.MovI(1, 5)
	b2.Jmp("join")
	b2.Label("skip")
	b2.MovI(1, 6)
	b2.Label("join")
	b2.Mov(0, 1)
	b2.Exit()
	p2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p2)
}

func TestVerifyTooLong(t *testing.T) {
	code := make([]Instr, MaxInsns+1)
	for i := range code {
		code[i] = Instr{Op: OpMovI, Dst: 0}
	}
	code[len(code)-1] = Instr{Op: OpExit}
	if err := Verify(&Program{Code: code}, NumBuiltinHelpers); err == nil {
		t.Error("oversized program should be rejected")
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("x")
	b.Jmp("nowhere")
	b.Exit()
	if _, err := b.Finish(); err == nil {
		t.Error("undefined label should error")
	}

	b2 := NewBuilder("dup")
	b2.Label("l")
	b2.MovI(0, 0)
	b2.Label("l")
	b2.Exit()
	if _, err := b2.Finish(); err == nil {
		t.Error("duplicate label should error")
	}

	// Backward label: label bound before the jump.
	b3 := NewBuilder("back")
	b3.Label("top")
	b3.MovI(0, 0)
	b3.Jmp("top")
	b3.Exit()
	if _, err := b3.Finish(); err == nil {
		t.Error("backward jump should error at Finish")
	}
}

func TestDisassembly(t *testing.T) {
	b := NewBuilder("listing2")
	b.Load(1, "false_submit_rate")
	b.JmpIfI(OpJLeI, 1, 0.05, "ok")
	b.MovI(2, 0)
	b.Store("ml_enabled", 2)
	b.MovI(0, 0)
	b.Exit()
	b.Label("ok")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	asm := p.String()
	for _, want := range []string{"listing2", "load", "[false_submit_rate]", "[ml_enabled]", "jlei", "exit"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

func TestMachineStepAccounting(t *testing.T) {
	b := NewBuilder("steps")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)
	var m Machine
	if _, err := m.Run(p, &testEnv{}, 0); err != nil {
		t.Fatal(err)
	}
	if m.Steps != 2 {
		t.Errorf("steps = %d, want 2", m.Steps)
	}
	if _, err := m.Run(p, &testEnv{}, 0); err != nil {
		t.Fatal(err)
	}
	if m.Steps != 4 {
		t.Errorf("steps accumulate: %d, want 4", m.Steps)
	}
}

func TestRunawayProgramHitsBudget(t *testing.T) {
	// An unverified program with a self-loop must hit ErrBudget rather
	// than hang (defense in depth).
	p := &Program{Name: "loop", Code: []Instr{
		{Op: OpMovI, Dst: 0},
		{Op: OpJEqI, Dst: 0, Imm: 0, Off: -1}, // would re-execute itself
		{Op: OpExit},
	}}
	var m Machine
	_, err := m.Run(p, &testEnv{}, 0)
	if err == nil {
		t.Fatal("runaway program should error")
	}
	if !errors.Is(err, ErrBudget) {
		t.Errorf("budget trap must wrap ErrBudget, got %v", err)
	}
	if Classify(err) != TrapBudget {
		t.Errorf("Classify = %v, want TrapBudget", Classify(err))
	}
}

func TestTrapClassification(t *testing.T) {
	// Bad PC: a jump off the end of the code segment.
	badPC := &Program{Name: "badpc", Code: []Instr{
		{Op: OpJmp, Off: 10},
		{Op: OpExit},
	}}
	var m Machine
	_, err := m.Run(badPC, &testEnv{}, 0)
	if Classify(err) != TrapBadPC {
		t.Errorf("bad pc: Classify = %v (%v), want TrapBadPC", Classify(err), err)
	}

	// Bad opcode.
	badOp := &Program{Name: "badop", Code: []Instr{{Op: Op(200)}}}
	_, err = m.Run(badOp, &testEnv{}, 0)
	if Classify(err) != TrapBadOpcode {
		t.Errorf("bad opcode: Classify = %v (%v), want TrapBadOpcode", Classify(err), err)
	}

	// Helper failure surfaces as TrapHelper wrapping the cause.
	call := &Program{Name: "helpfail", Code: []Instr{
		{Op: OpCall, Imm: float64(HelperNow)},
		{Op: OpExit},
	}}
	cause := errors.New("backend down")
	_, err = m.Run(call, &testEnv{helperErr: cause}, 0)
	if Classify(err) != TrapHelper {
		t.Errorf("helper: Classify = %v (%v), want TrapHelper", Classify(err), err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("helper trap must wrap its cause, got %v", err)
	}
	var trap *Trap
	if !errors.As(err, &trap) || trap.Program != "helpfail" || trap.PC != 0 {
		t.Errorf("trap metadata = %+v", trap)
	}

	// Foreign and nil errors.
	if Classify(nil) != TrapNone {
		t.Error("nil must classify as TrapNone")
	}
	if Classify(errors.New("x")) != TrapUnknown {
		t.Error("foreign error must classify as TrapUnknown")
	}
	for c := TrapNone; c <= TrapUnknown; c++ {
		if c.String() == "" {
			t.Errorf("trap code %d has no name", c)
		}
	}
}

func TestOpStringCoverage(t *testing.T) {
	for op := OpMov; op < opMax; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Op(250).String() != "op(250)" {
		t.Error("unknown opcode format wrong")
	}
}
