// Package vm implements the guardrail monitor virtual machine: a small
// register bytecode ISA in the spirit of eBPF, a static verifier that
// guarantees bounded, memory-safe execution, and an interpreter.
//
// Guardrail specifications are compiled (package compile) into Programs
// that the monitor runtime executes at trigger sites inside the
// simulated kernel. The safety argument mirrors eBPF's: programs are
// loop-free (the verifier rejects backward jumps), every path ends in
// EXIT, all register reads are proven initialized, and all feature-store
// cell accesses are bounds-checked against the program's symbol table at
// load time. Values are float64 — guardrail rules are numeric
// predicates — and the truthiness convention is 0 = false, non-zero =
// true, with rule programs returning the property's truth value in R0.
package vm

import (
	"fmt"
	"strings"
)

// NumRegs is the register file size (r0..r15). By convention r0 holds
// return values, r1–r5 hold helper-call arguments (callee-clobbered),
// and r6–r15 are general purpose.
const NumRegs = 16

// MaxInsns bounds program length, like the classic eBPF limit.
const MaxInsns = 4096

// Op is an opcode.
type Op uint8

// Opcodes. Arithmetic is register-register (suffix none) or
// register-immediate (suffix I). Jumps use relative offsets: Off = +n
// skips the next n instructions (Off >= 1 required by the verifier —
// loop-free programs only).
const (
	OpInvalid Op = iota

	OpMov  // dst = src
	OpMovI // dst = imm

	OpAdd  // dst += src
	OpAddI // dst += imm
	OpSub  // dst -= src
	OpSubI // dst -= imm
	OpMul  // dst *= src
	OpMulI // dst *= imm
	OpDiv  // dst /= src (x/0 = 0, eBPF-style)
	OpDivI // dst /= imm (x/0 = 0)
	OpNeg  // dst = -dst
	OpAbs  // dst = |dst|
	OpMin  // dst = min(dst, src)
	OpMax  // dst = max(dst, src)

	OpNot // dst = !truthy(dst)        (result 0 or 1)
	OpBoo // dst = truthy(dst) ? 1 : 0

	OpJmp  // pc += Off
	OpJEq  // if dst == src: pc += Off
	OpJNe  // if dst != src: pc += Off
	OpJLt  // if dst <  src: pc += Off
	OpJLe  // if dst <= src: pc += Off
	OpJGt  // if dst >  src: pc += Off
	OpJGe  // if dst >= src: pc += Off
	OpJEqI // if dst == imm: pc += Off
	OpJNeI // if dst != imm: pc += Off
	OpJLtI // if dst <  imm: pc += Off
	OpJLeI // if dst <= imm: pc += Off
	OpJGtI // if dst >  imm: pc += Off
	OpJGeI // if dst >= imm: pc += Off

	OpLoad  // dst = cells[Cell]         (feature store LOAD)
	OpStore // cells[Cell] = src         (feature store SAVE)

	OpCall // r0 = helper[Imm](r1..r5); clobbers r1-r5
	OpExit // return r0

	opMax // sentinel
)

var opNames = map[Op]string{
	OpMov: "mov", OpMovI: "movi",
	OpAdd: "add", OpAddI: "addi", OpSub: "sub", OpSubI: "subi",
	OpMul: "mul", OpMulI: "muli", OpDiv: "div", OpDivI: "divi",
	OpNeg: "neg", OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpNot: "not", OpBoo: "bool",
	OpJmp: "jmp", OpJEq: "jeq", OpJNe: "jne", OpJLt: "jlt",
	OpJLe: "jle", OpJGt: "jgt", OpJGe: "jge",
	OpJEqI: "jeqi", OpJNeI: "jnei", OpJLtI: "jlti",
	OpJLeI: "jlei", OpJGtI: "jgti", OpJGeI: "jgei",
	OpLoad: "load", OpStore: "store",
	OpCall: "call", OpExit: "exit",
}

// String returns the mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// HelperID identifies a runtime helper callable via OpCall.
type HelperID int

// Built-in helpers. The monitor runtime provides implementations; the
// verifier rejects calls to helpers absent from the load-time helper set.
const (
	// HelperNow returns current kernel time in nanoseconds.
	HelperNow HelperID = iota
	// HelperReport emits a violation report; r1 = violation code.
	HelperReport
	// HelperAction dispatches the bound action with index r1.
	HelperAction
	// HelperSqrt returns sqrt(r1) (0 for negative inputs).
	HelperSqrt
	// HelperLog2 returns log2(r1) (0 for non-positive inputs).
	HelperLog2
	numBuiltinHelpers
)

// NumBuiltinHelpers is the count of built-in helper IDs.
const NumBuiltinHelpers = int(numBuiltinHelpers)

// Instr is a single instruction. Fields are used per-opcode: Dst/Src are
// register numbers, Imm is an immediate or helper ID (OpCall), Off is a
// relative jump offset, Cell indexes the program symbol table.
type Instr struct {
	Op   Op
	Dst  uint8
	Src  uint8
	Off  int32
	Cell int32
	Imm  float64
}

// Program is a verified-loadable monitor program: code plus the symbol
// table naming the feature-store cells it references. Symbols are
// resolved to store IDs at load time.
type Program struct {
	// Name identifies the program in logs (usually the guardrail name).
	Name string
	// Code is the instruction sequence.
	Code []Instr
	// Symbols names the feature-store cells addressed by OpLoad/OpStore
	// Cell indices.
	Symbols []string
	// Meta records how the program was produced. It is advisory (not part
	// of the serialized image): programs decoded from an image carry a
	// zero Meta until their certificate (if any) passes CheckCertificate
	// or they are re-verified in full.
	Meta ProgramMeta
	// Cert is the program's serializable verification certificate
	// (certificate.go), attached by Certify and carried through
	// Encode/Decode. Unlike Meta it is not trusted: a decoded image's
	// certificate earns its claims only by passing CheckCertificate.
	Cert *Certificate
}

// ProgramMeta is compiler and verifier provenance attached to a
// Program: the optimization level it was built at, the instruction
// counts before and after optimization (for overhead accounting), and
// the verifier's proof outcome. The proof fields are written only by
// Verify; a decoded image carries a zero Meta until it is re-verified,
// so unproven programs always take the interpreter's guarded path.
type ProgramMeta struct {
	// OptLevel is the compile.Options.Level the program was built at.
	OptLevel int
	// PreOptInsns is the instruction count of the straight-lowered
	// program before any IR passes or peephole cleanup ran.
	PreOptInsns int
	// PostOptInsns is the final instruction count (len(Code)).
	PostOptInsns int

	// MaxSteps is the verifier-certified worst-case interpreter step
	// count (executed instructions, including the final OpExit) over
	// every path through the program. Zero means unverified.
	MaxSteps int
	// TrapFree records that the abstract interpreter proved the program
	// cannot trap by its own doing (no uninitialized reads, no helper
	// contract violations, bounded by MaxSteps); the interpreter skips
	// its per-step budget and pc guards for such programs. Helper
	// backends may still fail at runtime (TrapHelper) — that is an
	// environment fault, not a program fault.
	TrapFree bool
	// DivProven records that every division's divisor was proven unable
	// to be ordinary zero, so the interpreter may use raw IEEE division
	// instead of the guarded x/0 = 0 form.
	DivProven bool
}

// String disassembles the program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %q (%d insns, %d symbols)\n", p.Name, len(p.Code), len(p.Symbols))
	for i, in := range p.Code {
		fmt.Fprintf(&b, "%4d: %s\n", i, p.fmtInstr(in))
	}
	return b.String()
}

// InstrString disassembles the instruction at pc, resolving cell
// indices through the program's symbol table. Out-of-range pcs yield a
// placeholder rather than panicking, so error paths can call it freely.
func (p *Program) InstrString(pc int) string {
	if pc < 0 || pc >= len(p.Code) {
		return fmt.Sprintf("<pc %d outside [0,%d)>", pc, len(p.Code))
	}
	return p.fmtInstr(p.Code[pc])
}

func (p *Program) fmtInstr(in Instr) string {
	cellName := func(c int32) string {
		if int(c) < len(p.Symbols) && c >= 0 {
			return p.Symbols[c]
		}
		return fmt.Sprintf("?%d", c)
	}
	switch in.Op {
	case OpMov, OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax:
		return fmt.Sprintf("%-5s r%d, r%d", in.Op, in.Dst, in.Src)
	case OpMovI, OpAddI, OpSubI, OpMulI, OpDivI:
		return fmt.Sprintf("%-5s r%d, %g", in.Op, in.Dst, in.Imm)
	case OpNeg, OpAbs, OpNot, OpBoo:
		return fmt.Sprintf("%-5s r%d", in.Op, in.Dst)
	case OpJmp:
		return fmt.Sprintf("%-5s +%d", in.Op, in.Off)
	case OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe:
		return fmt.Sprintf("%-5s r%d, r%d, +%d", in.Op, in.Dst, in.Src, in.Off)
	case OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
		return fmt.Sprintf("%-5s r%d, %g, +%d", in.Op, in.Dst, in.Imm, in.Off)
	case OpLoad:
		return fmt.Sprintf("%-5s r%d, [%s]", in.Op, in.Dst, cellName(in.Cell))
	case OpStore:
		return fmt.Sprintf("%-5s [%s], r%d", in.Op, cellName(in.Cell), in.Src)
	case OpCall:
		return fmt.Sprintf("%-5s helper#%d", in.Op, int(in.Imm))
	case OpExit:
		return "exit"
	default:
		return fmt.Sprintf("%-5s ???", in.Op)
	}
}
