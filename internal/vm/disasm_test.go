package vm

import (
	"strings"
	"testing"
)

func TestAnnotatedDisassembly(t *testing.T) {
	b := NewBuilder("anno")
	b.Sym("x")
	b.Load(6, "x")
	b.JmpIfI(OpJGtI, 6, 1, "big")
	b.MovI(0, 0)
	b.Exit()
	b.Label("big")
	b.Jmp("out")
	b.MovI(0, 2) // unreachable, jumped over
	b.Label("out")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Annotated()
	for _, want := range []string{
		"; program \"anno\"",
		"L0:", "L1:", // both jump targets labeled
		"; -> L0", "; -> L1", // both jumps annotated
		"[x]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Annotated() missing %q:\n%s", want, got)
		}
	}
	// Labels appear in program order: L0 before L1.
	if strings.Index(got, "L0:") > strings.Index(got, "L1:") {
		t.Errorf("labels out of order:\n%s", got)
	}
	// Meta provenance line appears only for optimized programs.
	if strings.Contains(got, "before optimization") {
		t.Errorf("unoptimized program claims provenance:\n%s", got)
	}
	p.Meta = ProgramMeta{OptLevel: 1, PreOptInsns: 12, PostOptInsns: len(p.Code)}
	if !strings.Contains(p.Annotated(), "; -O1: 12 insns before optimization") {
		t.Errorf("missing provenance line:\n%s", p.Annotated())
	}
}
