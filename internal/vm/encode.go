package vm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Monitor image format: a compact binary serialization of a Program, so
// compiled guardrails can be shipped to the machine that loads them
// (grailc -o / grailvm). Layout (little endian):
//
//	magic "GRVM2\x00"
//	u16 name length, name bytes
//	u16 symbol count, then per symbol: u16 length + bytes
//	u32 instruction count, then per instruction:
//	    u8 op, u8 dst, u8 src, i32 off, i32 cell, f64 imm
//	u8 certificate present (0/1); when present:
//	    u32 claimed MaxSteps
//	    u8 flags (bit 0 = DivProven)
//	    u32 block invariant count, then per block:
//	        u32 pc, u32 init bitset, u8 serialized register count,
//	        then per register: u8 index, u8 flags (bit 0 = Num,
//	        bit 1 = NaN), f64 lo, f64 hi
//	        (registers whose interval is top are omitted)
//
// Decode also accepts the previous "GRVM1\x00" format, which is the
// same layout without the trailing certificate section.
//
// Decode validates lengths but does NOT verify the program, and it does
// NOT validate the certificate; loaders must run CheckCertificate (or a
// full Verify) before trusting either, exactly as with freshly compiled
// programs.
const (
	imageMagic   = "GRVM2\x00"
	imageMagicV1 = "GRVM1\x00"
)

// imageLimit bounds decoded sizes against corrupt or hostile images.
const imageLimit = 1 << 20

// Encode writes the program image to w.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("vm: string too long to encode (%d bytes)", len(s))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeStr(p.Name); err != nil {
		return err
	}
	if len(p.Symbols) > math.MaxUint16 {
		return fmt.Errorf("vm: too many symbols (%d)", len(p.Symbols))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Symbols))); err != nil {
		return err
	}
	for _, s := range p.Symbols {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Code))); err != nil {
		return err
	}
	for _, in := range p.Code {
		if err := binary.Write(bw, binary.LittleEndian, struct {
			Op, Dst, Src uint8
			Off, Cell    int32
			Imm          float64
		}{uint8(in.Op), in.Dst, in.Src, in.Off, in.Cell, in.Imm}); err != nil {
			return err
		}
	}
	if err := encodeCert(bw, p.Cert); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeCert writes the optional certificate section.
func encodeCert(bw *bufio.Writer, c *Certificate) error {
	if c == nil {
		return bw.WriteByte(0)
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	if c.MaxSteps < 0 || c.MaxSteps > imageLimit {
		return fmt.Errorf("vm: certificate MaxSteps %d not encodable", c.MaxSteps)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(c.MaxSteps)); err != nil {
		return err
	}
	var flags uint8
	if c.DivProven {
		flags |= 1
	}
	if err := bw.WriteByte(flags); err != nil {
		return err
	}
	if len(c.Blocks) > imageLimit {
		return fmt.Errorf("vm: too many block invariants (%d)", len(c.Blocks))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.Blocks))); err != nil {
		return err
	}
	top := TopInterval()
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.PC < 0 || b.PC > imageLimit {
			return fmt.Errorf("vm: block invariant pc %d not encodable", b.PC)
		}
		if err := binary.Write(bw, binary.LittleEndian, struct{ PC, Init uint32 }{uint32(b.PC), b.Init}); err != nil {
			return err
		}
		nregs := 0
		for r := 0; r < NumRegs; r++ {
			if b.Regs[r] != top {
				nregs++
			}
		}
		if err := bw.WriteByte(uint8(nregs)); err != nil {
			return err
		}
		for r := 0; r < NumRegs; r++ {
			iv := b.Regs[r]
			if iv == top {
				continue
			}
			var rf uint8
			if iv.Num {
				rf |= 1
			}
			if iv.NaN {
				rf |= 2
			}
			if err := binary.Write(bw, binary.LittleEndian, struct {
				Idx, Flags uint8
				Lo, Hi     float64
			}{uint8(r), rf, iv.Lo, iv.Hi}); err != nil {
				return err
			}
		}
	}
	return nil
}

// imgReader reads fixed-size records through one scratch buffer.
// Parsing by hand instead of binary.Read keeps reflection (and a heap
// allocation per record) off the image-decode path, which sits in front
// of the certificate check at monitor load time.
type imgReader struct {
	br  *bufio.Reader
	buf [19]byte // the largest record: one instruction
}

func (d *imgReader) read(n int) ([]byte, error) {
	b := d.buf[:n]
	_, err := io.ReadFull(d.br, b)
	return b, err
}

func (d *imgReader) u8() (uint8, error) { return d.br.ReadByte() }

func (d *imgReader) u16() (uint16, error) {
	b, err := d.read(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *imgReader) u32() (uint32, error) {
	b, err := d.read(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *imgReader) str() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Decode reads a program image produced by Encode.
func Decode(r io.Reader) (*Program, error) {
	d := &imgReader{br: bufio.NewReader(r)}
	magic, err := d.read(len(imageMagic))
	if err != nil {
		return nil, fmt.Errorf("vm: reading image magic: %w", err)
	}
	legacy := string(magic) == imageMagicV1
	if string(magic) != imageMagic && !legacy {
		return nil, fmt.Errorf("vm: bad image magic %q", magic)
	}
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	nSyms, err := d.u16()
	if err != nil {
		return nil, err
	}
	p := &Program{Name: name, Symbols: make([]string, nSyms)}
	for i := range p.Symbols {
		if p.Symbols[i], err = d.str(); err != nil {
			return nil, err
		}
	}
	nCode, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nCode > imageLimit {
		return nil, fmt.Errorf("vm: implausible instruction count %d", nCode)
	}
	// One bulk read for the whole code section: the per-record loop then
	// parses from memory, which is measurably cheaper than 4k small
	// reads when a loader checks a shipped certificate.
	raw := make([]byte, int(nCode)*19)
	if _, err := io.ReadFull(d.br, raw); err != nil {
		return nil, err
	}
	p.Code = make([]Instr, nCode)
	for i := range p.Code {
		b := raw[i*19 : i*19+19]
		p.Code[i] = Instr{Op: Op(b[0]), Dst: b[1], Src: b[2],
			Off:  int32(binary.LittleEndian.Uint32(b[3:7])),
			Cell: int32(binary.LittleEndian.Uint32(b[7:11])),
			Imm:  math.Float64frombits(binary.LittleEndian.Uint64(b[11:19]))}
	}
	if legacy {
		return p, nil
	}
	cert, err := decodeCert(d)
	if err != nil {
		return nil, err
	}
	p.Cert = cert
	return p, nil
}

// decodeCert reads the certificate section. It bounds sizes so hostile
// images cannot force huge allocations, but performs no semantic
// validation — that is CheckCertificate's job.
func decodeCert(d *imgReader) (*Certificate, error) {
	present, err := d.u8()
	if err != nil {
		return nil, fmt.Errorf("vm: reading certificate flag: %w", err)
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
	default:
		return nil, fmt.Errorf("vm: bad certificate flag %d", present)
	}
	maxSteps, err := d.u32()
	if err != nil {
		return nil, err
	}
	if maxSteps > imageLimit {
		return nil, fmt.Errorf("vm: implausible certificate MaxSteps %d", maxSteps)
	}
	flags, err := d.u8()
	if err != nil {
		return nil, err
	}
	c := &Certificate{MaxSteps: int(maxSteps), DivProven: flags&1 != 0}
	nBlocks, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nBlocks > imageLimit {
		return nil, fmt.Errorf("vm: implausible block invariant count %d", nBlocks)
	}
	c.Blocks = make([]BlockInvariant, nBlocks)
	for i := range c.Blocks {
		hdr, err := d.read(8)
		if err != nil {
			return nil, err
		}
		pc := binary.LittleEndian.Uint32(hdr[0:4])
		if pc > imageLimit {
			return nil, fmt.Errorf("vm: implausible block invariant pc %d", pc)
		}
		b := &c.Blocks[i]
		b.PC, b.Init = int(pc), binary.LittleEndian.Uint32(hdr[4:8])
		b.Regs = topRegs // serialized registers overwrite below
		nregs, err := d.u8()
		if err != nil {
			return nil, err
		}
		if int(nregs) > NumRegs {
			return nil, fmt.Errorf("vm: implausible register count %d in block invariant", nregs)
		}
		for j := 0; j < int(nregs); j++ {
			rb, err := d.read(18)
			if err != nil {
				return nil, err
			}
			idx, rf := rb[0], rb[1]
			if int(idx) >= NumRegs {
				return nil, fmt.Errorf("vm: register index %d out of range in block invariant", idx)
			}
			b.Regs[idx] = Interval{Num: rf&1 != 0, NaN: rf&2 != 0,
				Lo: math.Float64frombits(binary.LittleEndian.Uint64(rb[2:10])),
				Hi: math.Float64frombits(binary.LittleEndian.Uint64(rb[10:18]))}
		}
	}
	return c, nil
}

// topRegs is the all-top register block decodeCert starts each block
// invariant from; the image format serializes only non-top intervals.
var topRegs = func() (r [NumRegs]Interval) {
	for i := range r {
		r[i] = TopInterval()
	}
	return
}()
