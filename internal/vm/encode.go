package vm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Monitor image format: a compact binary serialization of a Program, so
// compiled guardrails can be shipped to the machine that loads them
// (grailc -o / grailvm). Layout (little endian):
//
//	magic "GRVM1\x00"
//	u16 name length, name bytes
//	u16 symbol count, then per symbol: u16 length + bytes
//	u32 instruction count, then per instruction:
//	    u8 op, u8 dst, u8 src, i32 off, i32 cell, f64 imm
//
// Decode validates lengths but does NOT verify the program; loaders
// must run Verify before execution, exactly as with freshly compiled
// programs.
const imageMagic = "GRVM1\x00"

// imageLimit bounds decoded sizes against corrupt or hostile images.
const imageLimit = 1 << 20

// Encode writes the program image to w.
func (p *Program) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if len(s) > math.MaxUint16 {
			return fmt.Errorf("vm: string too long to encode (%d bytes)", len(s))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeStr(p.Name); err != nil {
		return err
	}
	if len(p.Symbols) > math.MaxUint16 {
		return fmt.Errorf("vm: too many symbols (%d)", len(p.Symbols))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Symbols))); err != nil {
		return err
	}
	for _, s := range p.Symbols {
		if err := writeStr(s); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(p.Code))); err != nil {
		return err
	}
	for _, in := range p.Code {
		if err := binary.Write(bw, binary.LittleEndian, struct {
			Op, Dst, Src uint8
			Off, Cell    int32
			Imm          float64
		}{uint8(in.Op), in.Dst, in.Src, in.Off, in.Cell, in.Imm}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a program image produced by Encode.
func Decode(r io.Reader) (*Program, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(imageMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vm: reading image magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("vm: bad image magic %q", magic)
	}
	readStr := func() (string, error) {
		var n uint16
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	name, err := readStr()
	if err != nil {
		return nil, err
	}
	var nSyms uint16
	if err := binary.Read(br, binary.LittleEndian, &nSyms); err != nil {
		return nil, err
	}
	p := &Program{Name: name, Symbols: make([]string, nSyms)}
	for i := range p.Symbols {
		if p.Symbols[i], err = readStr(); err != nil {
			return nil, err
		}
	}
	var nCode uint32
	if err := binary.Read(br, binary.LittleEndian, &nCode); err != nil {
		return nil, err
	}
	if nCode > imageLimit {
		return nil, fmt.Errorf("vm: implausible instruction count %d", nCode)
	}
	p.Code = make([]Instr, nCode)
	for i := range p.Code {
		var raw struct {
			Op, Dst, Src uint8
			Off, Cell    int32
			Imm          float64
		}
		if err := binary.Read(br, binary.LittleEndian, &raw); err != nil {
			return nil, err
		}
		p.Code[i] = Instr{Op: Op(raw.Op), Dst: raw.Dst, Src: raw.Src,
			Off: raw.Off, Cell: raw.Cell, Imm: raw.Imm}
	}
	return p, nil
}
