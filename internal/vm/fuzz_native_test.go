package vm

import (
	"bytes"
	"math"
	"testing"
)

// Native fuzz targets. Both run as ordinary tests over the checked-in
// corpus under testdata/fuzz/ on every `go test`, and CI additionally
// runs each with a short -fuzztime budget to mine new inputs.

// tamperFixtureImage builds a certified, encoded image for the tamper
// fuzzer to mutate.
func tamperFixtureImage(tb testing.TB) []byte {
	tb.Helper()
	b := NewBuilder("tamper-fixture")
	b.Load(6, "a")
	b.Load(7, "b")
	b.JmpIf(OpJLt, 6, 7, "low")
	b.Mov(1, 6)
	b.ALU(OpDiv, 1, 7)
	b.Un(OpAbs, 1)
	b.Call(HelperReport)
	b.MovI(0, 0)
	b.Store("out", 0)
	b.Exit()
	b.Label("low")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	if err := Certify(p, NumBuiltinHelpers); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// adversarialCells returns hostile feature-store contents: the values
// most likely to expose an unsound admitted proof.
func adversarialCells(n int) [][]float64 {
	specials := []float64{0, math.NaN(), math.Inf(1), math.Inf(-1), -1e300}
	out := make([][]float64, 0, len(specials))
	for _, v := range specials {
		cells := make([]float64, n)
		for i := range cells {
			cells[i] = v
		}
		out = append(out, cells)
	}
	return out
}

// FuzzCertificateTamper feeds arbitrary bytes to the image loader. The
// invariant: whatever the bytes, the loader either rejects the image or
// admits a program whose certificate actually holds — trap-free
// execution within the certified step bound on adversarial feature
// stores, agreeing exactly with the fully-guarded interpreter. Admitting
// a tampered proof is the one unacceptable outcome.
func FuzzCertificateTamper(f *testing.F) {
	img := tamperFixtureImage(f)
	f.Add(img)
	for _, cut := range []int{0, 5, 7, len(img) / 2, len(img) - 1} {
		f.Add(append([]byte(nil), img[:cut]...))
	}
	for _, pos := range []int{6, 12, 24, len(img) / 2, len(img) - 2} {
		mut := append([]byte(nil), img...)
		mut[pos] ^= 0xff
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		p, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected at deserialization: fine
		}
		if err := CheckCertificate(p, NumBuiltinHelpers); err != nil {
			return // certificate rejected: fine
		}
		if !p.Meta.TrapFree || p.Meta.MaxSteps <= 0 {
			t.Fatalf("admitted certificate left no proof: %+v", p.Meta)
		}
		for _, cells := range adversarialCells(len(p.Symbols)) {
			var mp Machine
			out, rerr := mp.Run(p, &fuzzEnv{cells: append([]float64(nil), cells...)}, cells[0])
			if rerr != nil {
				t.Fatalf("admitted certificate on trapping program: %v\ncells=%v\n%s", rerr, cells, p)
			}
			if int(mp.Steps) > p.Meta.MaxSteps {
				t.Fatalf("run took %d steps, certificate promised ≤ %d\n%s", mp.Steps, p.Meta.MaxSteps, p)
			}
			guarded := *p
			guarded.Meta = ProgramMeta{}
			var mg Machine
			gout, gerr := mg.Run(&guarded, &fuzzEnv{cells: append([]float64(nil), cells...)}, cells[0])
			if gerr != nil || !sameFloat(out, gout) || mp.Steps != mg.Steps {
				t.Fatalf("proven/guarded divergence: (%v, %d, %v) vs (%v, %d, %v)\n%s",
					out, mp.Steps, rerr, gout, mg.Steps, gerr, p)
			}
		}
	})
}

// fuzzOps is the opcode alphabet the byte-stream decoder draws from.
var fuzzOps = []Op{
	OpMov, OpMovI, OpAdd, OpAddI, OpSub, OpSubI, OpMul, OpMulI,
	OpDiv, OpDivI, OpNeg, OpAbs, OpMin, OpMax, OpNot, OpBoo,
	OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
	OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI,
	OpLoad, OpStore, OpCall, OpExit,
}

// programFromBytes decodes a fuzz input as an instruction stream, six
// bytes per instruction, and terminates it with EXIT. The mapping is
// total: every byte string decodes to some program, so the fuzzer
// explores program space rather than fighting a parser.
func programFromBytes(data []byte) *Program {
	symbols := []string{"a", "b", "c"}
	n := len(data) / 6
	if n > 64 {
		n = 64
	}
	code := make([]Instr, 0, n+1)
	for i := 0; i < n; i++ {
		b := data[i*6 : i*6+6]
		in := Instr{
			Op:  fuzzOps[int(b[0])%len(fuzzOps)],
			Dst: b[1] & 0x0f,
			Src: b[2] & 0x0f,
		}
		switch b[5] % 6 {
		case 0:
			in.Imm = 0
		case 1:
			in.Imm = math.NaN()
		case 2:
			in.Imm = math.Inf(1)
		case 3:
			in.Imm = -1
		default:
			in.Imm = float64(int(b[5]) - 128)
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			in.Off = 1 + int32(b[3])%int32(n-i) // forward, in range
		case OpLoad, OpStore:
			in.Cell = int32(b[4]) % int32(len(symbols))
		case OpCall:
			in.Imm = float64(int(b[4]) % NumBuiltinHelpers)
		}
		code = append(code, in)
	}
	code = append(code, Instr{Op: OpExit})
	return &Program{Name: "fuzz", Code: code, Symbols: symbols}
}

// FuzzVerifierSoundness decodes arbitrary bytes into a program and
// checks the verifier's soundness contract on every acceptance: the
// proven fast path must run trap-free within the certified step bound on
// hostile feature stores, and agree exactly with the guarded
// interpreter. Rejections must carry a reason (checked cheaply here; the
// richer generator in TestVerifierSoundnessFuzz covers rejection
// quality).
func FuzzVerifierSoundness(f *testing.F) {
	f.Add([]byte{})
	// LOAD a; DIV by b; EXIT — the canonical trap candidate.
	f.Add([]byte{
		29, 1, 0, 0, 0, 200, // LOAD r1, cell 0
		8, 1, 2, 0, 1, 130, // DIV r1, r2
		32, 0, 0, 0, 0, 0, // EXIT
	})
	// Forward branch diamond.
	f.Add([]byte{
		19, 1, 2, 1, 0, 140, // JLT +1
		1, 0, 0, 0, 0, 133, // MOVI
		32, 0, 0, 0, 0, 0, // EXIT
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := programFromBytes(data)
		if err := Verify(p, NumBuiltinHelpers); err != nil {
			if err.Error() == "" {
				t.Fatalf("empty rejection reason\n%s", p)
			}
			return
		}
		if !p.Meta.TrapFree || p.Meta.MaxSteps <= 0 {
			t.Fatalf("accepted program has no proof: %+v", p.Meta)
		}
		for _, cells := range adversarialCells(len(p.Symbols)) {
			var mp Machine
			out, rerr := mp.Run(p, &fuzzEnv{cells: append([]float64(nil), cells...)}, cells[0])
			if rerr != nil {
				t.Fatalf("verified program trapped: %v\ncells=%v\n%s", rerr, cells, p)
			}
			if int(mp.Steps) > p.Meta.MaxSteps {
				t.Fatalf("run took %d steps, bound is %d\n%s", mp.Steps, p.Meta.MaxSteps, p)
			}
			guarded := *p
			guarded.Meta = ProgramMeta{}
			var mg Machine
			gout, gerr := mg.Run(&guarded, &fuzzEnv{cells: append([]float64(nil), cells...)}, cells[0])
			if gerr != nil || !sameFloat(out, gout) || mp.Steps != mg.Steps {
				t.Fatalf("proven/guarded divergence: (%v, %d, %v) vs (%v, %d, %v)\n%s",
					out, mp.Steps, rerr, gout, mg.Steps, gerr, p)
			}
		}
	})
}
