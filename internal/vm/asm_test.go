package vm

import (
	"strings"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
; the Listing 2 monitor, hand-written
name low-false-submit
load  r1, [false_submit_rate]
jlei  r1, 0.05, +4
movi  r2, 0
store [ml_enabled], r2
movi  r0, 0
exit
movi  r0, 1
exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "low-false-submit" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Code) != 8 || len(p.Symbols) != 2 {
		t.Fatalf("shape: %d insns, %d symbols", len(p.Code), len(p.Symbols))
	}
	mustVerify(t, p)
	env := &testEnv{cells: make([]float64, 2)}
	env.cells[0] = 0.01
	if got := run(t, p, env, 0); got != 1 {
		t.Errorf("holds case = %v", got)
	}
	env.cells[0] = 0.2
	if got := run(t, p, env, 0); got != 0 {
		t.Errorf("violated case = %v", got)
	}
	if env.cells[1] != 0 {
		t.Errorf("ml_enabled = %v", env.cells[1])
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	b := NewBuilder("roundtrip")
	b.Load(1, "a")
	b.Load(2, "b")
	b.ALU(OpAdd, 1, 2)
	b.ALUI(OpMulI, 1, 2.5)
	b.Un(OpAbs, 1)
	b.JmpIfI(OpJGtI, 1, 10, "big")
	b.MovI(0, 0)
	b.Exit()
	b.Label("big")
	b.MovI(1, 16)
	b.Call(HelperSqrt)
	b.Store("out", 0)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, p)

	// Disassemble, re-assemble (add the name directive), compare.
	q, err := Assemble("name " + p.Name + "\n" + p.String())
	if err != nil {
		t.Fatalf("re-assembly failed: %v\n%s", err, p)
	}
	if q.Name != p.Name || len(q.Code) != len(p.Code) {
		t.Fatalf("shape changed: %q %d", q.Name, len(q.Code))
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("insn %d: %+v != %+v", i, q.Code[i], p.Code[i])
		}
	}
	for i := range p.Symbols {
		if q.Symbols[i] != p.Symbols[i] {
			t.Errorf("symbol %d: %q != %q", i, q.Symbols[i], p.Symbols[i])
		}
	}
}

func TestAssembleAllOpcodesRoundTrip(t *testing.T) {
	// Build a program exercising every opcode, disassemble, re-assemble.
	code := []Instr{
		{Op: OpMovI, Dst: 1, Imm: 3},
		{Op: OpMov, Dst: 2, Src: 1},
		{Op: OpAdd, Dst: 1, Src: 2},
		{Op: OpAddI, Dst: 1, Imm: 1},
		{Op: OpSub, Dst: 1, Src: 2},
		{Op: OpSubI, Dst: 1, Imm: 1},
		{Op: OpMul, Dst: 1, Src: 2},
		{Op: OpMulI, Dst: 1, Imm: 2},
		{Op: OpDiv, Dst: 1, Src: 2},
		{Op: OpDivI, Dst: 1, Imm: 2},
		{Op: OpNeg, Dst: 1},
		{Op: OpAbs, Dst: 1},
		{Op: OpMin, Dst: 1, Src: 2},
		{Op: OpMax, Dst: 1, Src: 2},
		{Op: OpNot, Dst: 1},
		{Op: OpBoo, Dst: 1},
		{Op: OpJmp, Off: 1},
		{Op: OpJEq, Dst: 1, Src: 2, Off: 1},
		{Op: OpJNe, Dst: 1, Src: 2, Off: 1},
		{Op: OpJLt, Dst: 1, Src: 2, Off: 1},
		{Op: OpJLe, Dst: 1, Src: 2, Off: 1},
		{Op: OpJGt, Dst: 1, Src: 2, Off: 1},
		{Op: OpJGe, Dst: 1, Src: 2, Off: 1},
		{Op: OpJEqI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpJNeI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpJLtI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpJLeI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpJGtI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpJGeI, Dst: 1, Imm: 1, Off: 1},
		{Op: OpLoad, Dst: 1, Cell: 0},
		{Op: OpStore, Src: 1, Cell: 0},
		{Op: OpCall, Imm: float64(HelperNow)},
		{Op: OpExit},
	}
	p := &Program{Name: "all", Code: code, Symbols: []string{"k"}}
	q, err := Assemble(p.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, p)
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length %d != %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if q.Code[i] != p.Code[i] {
			t.Errorf("insn %d: %+v != %+v", i, q.Code[i], p.Code[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comment-only":   "; nothing here",
		"unknown-op":     "frobnicate r1",
		"bad-register":   "movi r99, 1",
		"not-a-register": "mov x1, r2",
		"bad-immediate":  "movi r1, banana",
		"bad-arity":      "mov r1",
		"bad-cell":       "load r1, key",
		"bad-helper":     "call 5x",
		"exit-args":      "exit r0",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled %q without error", name, src)
		}
	}
}

func TestAssembleIgnoresIndicesAndComments(t *testing.T) {
	src := `
   0: movi  r0, 1   ; set result
   1: exit
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 || p.Code[0].Imm != 1 {
		t.Errorf("parsed %+v", p.Code)
	}
	if !strings.Contains(p.String(), "movi") {
		t.Error("round rendering broken")
	}
}
