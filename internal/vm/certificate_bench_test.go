package vm

import (
	"bytes"
	"fmt"
	"testing"
)

// buildBenchProgram emits a long chain of branch diamonds: every
// diamond adds a join point the worklist analyzer must revisit to
// convergence, while the certificate checker transfers each instruction
// exactly once against the shipped block invariants.
func buildBenchProgram(tb testing.TB, diamonds int) *Program {
	tb.Helper()
	b := NewBuilder("cert-bench")
	b.Load(1, "x")
	b.Load(3, "y")
	b.MovI(2, 0)
	for i := 0; i < diamonds; i++ {
		lbl := fmt.Sprintf("L%d", i)
		b.JmpIfI(OpJGtI, 1, float64(i), lbl)
		b.ALUI(OpAddI, 2, 1)
		b.ALU(OpMin, 2, 3)
		b.Label(lbl)
	}
	b.Mov(0, 2)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// benchDiamonds sizes the program near the MaxInsns ceiling (~4 insns
// per diamond), the regime where shipping the proof matters most.
const benchDiamonds = 1000

func BenchmarkVerify(b *testing.B) {
	p := buildBenchProgram(b, benchDiamonds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := *p
		q.Meta = ProgramMeta{}
		if err := Verify(&q, NumBuiltinHelpers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckCertificate(b *testing.B) {
	p := buildBenchProgram(b, benchDiamonds)
	if err := Certify(p, NumBuiltinHelpers); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := *p
		q.Meta = ProgramMeta{}
		if err := CheckCertificate(&q, NumBuiltinHelpers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeAndCheckCertificate is the full load-time story for a
// shipped image: deserialize plus one linear proof check, the path that
// must beat a full re-analysis.
func BenchmarkDecodeAndCheckCertificate(b *testing.B) {
	p := buildBenchProgram(b, benchDiamonds)
	if err := Certify(p, NumBuiltinHelpers); err != nil {
		b.Fatal(err)
	}
	var img bytes.Buffer
	if err := p.Encode(&img); err != nil {
		b.Fatal(err)
	}
	data := img.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := Decode(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if err := CheckCertificate(q, NumBuiltinHelpers); err != nil {
			b.Fatal(err)
		}
	}
}
