package vm

import (
	"math"
	"strings"
	"testing"
)

// witnessFixture builds a small threshold monitor: violated (r0 = 0)
// iff qdepth > 8, in which case it reports qdepth and writes
// fallback = 1.
func witnessFixture(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("witness-fixture")
	b.Load(6, "qdepth")
	b.JmpIfI(OpJGtI, 6, 8, "violated")
	b.MovI(0, 1)
	b.Exit()
	b.Label("violated")
	b.Mov(1, 6)
	b.Call(HelperReport)
	b.MovI(1, 1)
	b.Store("fallback", 1)
	b.MovI(0, 0)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReplayProgramViolation(t *testing.T) {
	p := witnessFixture(t)
	rec := ReplayProgram(p, map[string]float64{"qdepth": 42}, 0, 1000)
	if rec.Err != nil {
		t.Fatalf("replay trapped: %v", rec.Err)
	}
	if !rec.Violated || rec.R0 != 0 {
		t.Fatalf("qdepth=42 should violate: r0=%v violated=%v", rec.R0, rec.Violated)
	}
	if len(rec.Calls) != 1 || rec.Calls[0].Helper != HelperReport || rec.Calls[0].Arg != 42 {
		t.Fatalf("expected one REPORT(42) call, got %+v", rec.Calls)
	}
	if v, ok := rec.FinalStore("fallback"); !ok || v != 1 {
		t.Fatalf("expected final fallback = 1, got %v (present=%v)", v, ok)
	}
	if rec.Trace.N != 1 || !rec.Trace.Taken[0] {
		t.Fatalf("expected one taken branch, got %+v", rec.Trace)
	}
}

func TestReplayProgramCleanRun(t *testing.T) {
	p := witnessFixture(t)
	rec := ReplayProgram(p, map[string]float64{"qdepth": 3}, 0, 1000)
	if rec.Err != nil || rec.Violated || rec.R0 != 1 {
		t.Fatalf("qdepth=3 should pass: r0=%v violated=%v err=%v", rec.R0, rec.Violated, rec.Err)
	}
	if len(rec.Calls) != 0 || len(rec.Stores) != 0 {
		t.Fatalf("clean run must not report or store: %+v %+v", rec.Calls, rec.Stores)
	}
	// Keys the assignment omits read 0, like an unpopulated store.
	rec = ReplayProgram(p, nil, 0, 1000)
	if rec.Violated {
		t.Fatalf("unpopulated store (qdepth=0) should not violate qdepth > 8")
	}
}

// Stores must feed later loads of the same key, so self-feedback
// programs replay against their own writes.
func TestReplayStoreFeedsLoad(t *testing.T) {
	b := NewBuilder("store-load")
	b.MovI(1, 7)
	b.Store("k", 1)
	b.Load(0, "k")
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rec := ReplayProgram(p, nil, 0, 0)
	if rec.Err != nil || rec.R0 != 7 {
		t.Fatalf("LOAD after SAVE returned %v (err=%v), want 7", rec.R0, rec.Err)
	}
}

// Replay helpers are deterministic: HelperNow pins to the supplied
// instant, and two replays of the same assignment agree exactly.
func TestReplayDeterministicNow(t *testing.T) {
	b := NewBuilder("now")
	b.Call(HelperNow)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	a := ReplayProgram(p, nil, 0, 12345)
	bb := ReplayProgram(p, nil, 0, 12345)
	if a.R0 != 12345 || bb.R0 != 12345 {
		t.Fatalf("HelperNow not pinned: %v, %v", a.R0, bb.R0)
	}
}

// A trapping replay (guarded path) reports the error and is never
// counted as a violation.
func TestReplayTrapNotViolation(t *testing.T) {
	p := &Program{
		Name: "trap",
		Code: []Instr{{Op: OpMovI, Dst: 0, Imm: 0}}, // falls off the end
	}
	rec := ReplayProgram(p, nil, 0, 0)
	if rec.Err == nil {
		t.Fatal("falling off the end should trap on the guarded path")
	}
	if rec.Violated {
		t.Fatal("a trapped run must not count as a violation")
	}
}

func TestCandidatesRespectDeclaredRange(t *testing.T) {
	cs := Candidates(RangeInterval(0, 128), true)
	want := map[float64]bool{0: true, 128: true, 64: true}
	for _, v := range cs {
		if math.IsNaN(v) || v < 0 || v > 128 {
			t.Fatalf("candidate %v escapes declared range [0,128]", v)
		}
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("candidates %v miss range endpoints/midpoint %v", cs, want)
	}
	// Deduplicated: [0,0] collapses to a single candidate.
	cs = Candidates(RangeInterval(0, 0), true)
	if len(cs) != 1 || cs[0] != 0 {
		t.Fatalf("degenerate range candidates = %v, want [0]", cs)
	}
}

func TestCandidatesUndeclared(t *testing.T) {
	cs := Candidates(Interval{}, false)
	if len(cs) == 0 {
		t.Fatal("undeclared feature must still get seed candidates")
	}
	seen := map[float64]bool{}
	for _, v := range cs {
		if seen[v] {
			t.Fatalf("duplicate seed candidate %v in %v", v, cs)
		}
		seen[v] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("seed candidates %v missing 0 and 1", cs)
	}
}

func TestEnumAssignmentsCoverageAndBudget(t *testing.T) {
	keys := []string{"a", "b"}
	cands := map[string][]float64{"a": {1, 2, 3}, "b": {10, 20}}

	// Full product visited when nothing accepts.
	seen := map[[2]float64]bool{}
	trials, found := EnumAssignments(keys, cands, 1000, func(m map[string]float64) bool {
		seen[[2]float64{m["a"], m["b"]}] = true
		return false
	})
	if found || trials != 6 || len(seen) != 6 {
		t.Fatalf("expected all 6 assignments visited: trials=%d found=%v seen=%d", trials, found, len(seen))
	}

	// Budget caps the search even with acceptors never firing.
	trials, found = EnumAssignments(keys, cands, 4, func(map[string]float64) bool { return false })
	if found || trials != 4 {
		t.Fatalf("budget not enforced: trials=%d found=%v", trials, found)
	}

	// Early accept stops the enumeration; the accepted assignment must
	// be snapshotted because the map is reused.
	var hit map[string]float64
	trials, found = EnumAssignments(keys, cands, 1000, func(m map[string]float64) bool {
		if m["a"] == 2 && m["b"] == 10 {
			hit = CopyAssign(m)
			return true
		}
		return false
	})
	if !found || trials >= 6 {
		t.Fatalf("acceptor did not stop the search: trials=%d found=%v", trials, found)
	}
	if hit["a"] != 2 || hit["b"] != 10 {
		t.Fatalf("snapshot drifted: %v", hit)
	}

	// Keys with no candidates default to 0 rather than stalling.
	trials, found = EnumAssignments([]string{"x"}, map[string][]float64{}, 10, func(m map[string]float64) bool {
		return m["x"] == 0
	})
	if !found || trials != 1 {
		t.Fatalf("empty-candidate key not defaulted: trials=%d found=%v", trials, found)
	}
}

func TestLoadedKeysSorted(t *testing.T) {
	b := NewBuilder("keys")
	b.Load(1, "zeta")
	b.Load(2, "alpha")
	b.Load(3, "zeta")
	b.Store("written_only", 1)
	b.MovI(0, 0)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	keys := LoadedKeys(p)
	if len(keys) != 2 || keys[0] != "alpha" || keys[1] != "zeta" {
		t.Fatalf("LoadedKeys = %v, want [alpha zeta]", keys)
	}
}

func TestTraceString(t *testing.T) {
	if s := TraceString(&BranchTrace{}); s != "no branches" {
		t.Fatalf("empty trace = %q", s)
	}
	tr := &BranchTrace{N: 2}
	tr.PC[0], tr.Taken[0] = 3, false
	tr.PC[1], tr.Taken[1] = 7, true
	if s := TraceString(tr); s != "branches [3↓ 7→]" {
		t.Fatalf("trace = %q", s)
	}
	tr.Truncated = true
	if s := TraceString(tr); !strings.Contains(s, "…") {
		t.Fatalf("truncated trace missing ellipsis: %q", s)
	}
}

func TestWitnessString(t *testing.T) {
	w := &Witness{
		Inputs: map[string]float64{"b": 2, "a": 1},
		Steps:  []string{"first", "second"},
	}
	if got := w.String(); got != "inputs {a=1, b=2}: first; second" {
		t.Fatalf("Witness.String() = %q", got)
	}
}
