package vm

// Proof-carrying bytecode. Verify's proofs (trap-freedom, certified
// MaxSteps, proven divisors) normally die at Encode time: Program.Meta
// is advisory and not serialized, so decoded images run guarded until a
// full re-analysis. A Certificate makes the proof itself portable, in
// the style of proof-carrying code and the JVM/KVM split verifier: the
// producer ships the abstract-interpretation fixpoint state at every
// block leader (jump target), and the consumer validates the whole
// proof with ONE linear transfer pass — no worklist, no fixpoint
// iteration, no widening. Checking is O(n) in program length where the
// full analysis revisits joins until convergence, and a checked
// certificate restores the exact Meta claims the original Verify made,
// landing the decoded image back on the interpreter's proven fast path.
//
// The checker is the trust boundary: certificates arrive from untrusted
// images, so nothing in them is believed until re-derived. Soundness
// rests on the induction the linear pass performs — the entry state is
// the checker's own (a hostile certificate cannot narrow it), every
// instruction is re-transferred through the same abstract semantics the
// analyzer uses (shared transfer in analysis.go), every edge into a
// block leader must be subsumed by the shipped invariant, and the step
// bound is recomputed exactly. A certificate can at worst make the
// checker *reject* a safe program (falling back to guarded execution);
// it can never make it accept an unsafe one.

// Certificate is a serializable verification proof for one program: the
// scalar claims Verify would put in Meta plus the per-block interval
// invariants that let CheckCertificate re-establish them in one pass.
type Certificate struct {
	// MaxSteps is the claimed worst-case interpreter step count; the
	// checker recomputes the bound and rejects on any mismatch.
	MaxSteps int
	// DivProven claims every division's divisor is provably non-zero;
	// the checker re-derives divisor facts and rejects a false claim.
	DivProven bool
	// Blocks holds the abstract machine state at every block leader
	// (reachable jump target), in strictly ascending pc order.
	Blocks []BlockInvariant
}

// BlockInvariant is the analyzer's fixpoint state at one block leader:
// which registers are definitely initialized on every path into the
// block, and each register's certified value interval.
type BlockInvariant struct {
	// PC is the block leader's instruction index.
	PC int
	// Init is the definite-initialization bitset (bit r = register r).
	Init uint32
	// Regs gives each register's certified interval; registers outside
	// Init are canonicalized to top regardless of what is stored here.
	Regs [NumRegs]Interval
}

// Certify verifies p exactly as Verify does and additionally attaches
// the proof as p.Cert, so the proof survives Encode/Decode. On success
// p.Meta carries the same claims Verify would record.
func Certify(p *Program, numHelpers int) error {
	if err := verifyStructure(p, numHelpers); err != nil {
		return err
	}
	a, err := runAnalyzer(p, numHelpers, nil)
	if err != nil {
		return err
	}
	n := len(p.Code)
	isTarget := make([]bool, n+1)
	for pc, in := range p.Code {
		if !a.states[pc].reachable {
			continue
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			isTarget[pc+1+int(in.Off)] = true
		}
	}
	cert := &Certificate{MaxSteps: a.maxSteps(), DivProven: a.divProven}
	for t := 0; t < n; t++ {
		if !isTarget[t] || !a.states[t].reachable {
			continue
		}
		b := BlockInvariant{PC: t, Init: a.states[t].rs.init}
		for r := 0; r < NumRegs; r++ {
			b.Regs[r] = a.states[t].rs.vals[r].iv()
		}
		cert.Blocks = append(cert.Blocks, b)
	}
	p.Cert = cert
	p.Meta.MaxSteps = cert.MaxSteps
	p.Meta.TrapFree = true
	p.Meta.DivProven = cert.DivProven
	return nil
}

// CheckCertificate validates p.Cert with a single linear pass and, on
// success, restores the certificate's claims into p.Meta so the
// interpreter takes the proven fast path. The pass re-runs the
// analyzer's transfer function over each instruction exactly once:
// flow between block leaders is propagated directly (straight-line code
// has one predecessor), and every edge into a block leader must be
// subsumed by the shipped invariant, which makes the invariant set
// inductive and the whole program trap-free. Any malformed, stale, or
// tampered certificate is rejected with a VerifyError; callers then
// fall back to guarded execution (or a full Verify).
func CheckCertificate(p *Program, numHelpers int) error {
	c := p.Cert
	if c == nil {
		return vErr(p, 0, "certificate: program carries no certificate")
	}
	if err := verifyStructure(p, numHelpers); err != nil {
		return err
	}
	n := len(p.Code)

	// Shape: invariants at strictly ascending in-range pcs with known
	// register bits only. Interval contents need no vetting — they pass
	// through fromInterval's normalization, and a degenerate invariant
	// can only make subsumption fail (reject), never widen a proof.
	invAt := make([]int32, n)
	for i := range invAt {
		invAt[i] = -1
	}
	last := -1
	for i := range c.Blocks {
		b := &c.Blocks[i]
		if b.PC < 0 || b.PC >= n {
			return vErr(p, 0, "certificate: block invariant pc %d outside program", b.PC)
		}
		if b.PC <= last {
			return vErr(p, b.PC, "certificate: block invariants not in strictly ascending pc order")
		}
		last = b.PC
		if b.Init >= 1<<NumRegs {
			return vErr(p, b.PC, "certificate: invariant init mask %#x names unknown registers", b.Init)
		}
		invAt[b.PC] = int32(i)
	}

	// The step bound depends only on the static CFG, so the claim is
	// checked by exact recomputation.
	if c.MaxSteps != maxStepsDP(p.Code) {
		return vErr(p, 0, "certificate: claimed MaxSteps %d does not match the program's step bound", c.MaxSteps)
	}

	// Compile every invariant to its compact form once: the subsumption
	// checks below then touch only the registers the invariant actually
	// constrains (typically two or three of sixteen) instead of
	// materializing and comparing full machine states per edge.
	cinvs, pairs := compileInvariants(c)

	divOK := true
	openWorld := func(int32) absVal { return topVal() }
	// The pass never copies a 400-byte machine state to advance: cur
	// points at the previous instruction's fall-through slot, and two
	// edge buffers ping-pong so transfer's output never aliases its
	// input. curBuf holds adopted invariant states.
	var bufs [2]edgeSet
	var curBuf regState
	curBuf = entryState() // the checker's own entry state, never the cert's
	cur := &curBuf
	curValid := true
	for pc := 0; pc < n; pc++ {
		if i := invAt[pc]; i >= 0 {
			if curValid && !subsumedBy(cur, &cinvs[i], pairs) {
				return vErr(p, pc, "certificate: straight-line flow into block at pc %d is not covered by its invariant", pc)
			}
			materialize(&curBuf, &cinvs[i], pairs)
			cur, curValid = &curBuf, true
		}
		if !curValid {
			// No invariant and no inflow: dead under the certificate,
			// exactly the code the fixpoint analyzer never visits.
			continue
		}
		eb := &bufs[pc&1]
		if err := transfer(p, pc, cur, openWorld, &divOK, eb); err != nil {
			return err
		}
		fall := -1
		for e := 0; e < eb.n; e++ {
			target := eb.target[e]
			if target == pc+1 {
				// Jump offsets are >= 1, so target pc+1 is always the
				// fall-through edge; it continues the linear pass.
				fall = e
				continue
			}
			if target >= n {
				return vErr(p, pc, "certificate: live edge falls off the end of the program")
			}
			i := invAt[target]
			if i < 0 {
				return vErr(p, pc, "certificate: jump target %d carries no block invariant", target)
			}
			if !subsumedBy(&eb.state[e], &cinvs[i], pairs) {
				return vErr(p, pc, "certificate: edge to pc %d is not covered by its block invariant", target)
			}
		}
		if fall >= 0 {
			if pc+1 >= n {
				return vErr(p, pc, "certificate: execution can fall off the end of the program")
			}
			cur, curValid = &eb.state[fall], true
		} else {
			curValid = false
		}
	}
	if c.DivProven && !divOK {
		return vErr(p, 0, "certificate: claims proven divisors but a divisor may be zero")
	}

	p.Meta.MaxSteps = c.MaxSteps
	p.Meta.TrapFree = true
	p.Meta.DivProven = c.DivProven
	return nil
}

// compactInv is a block invariant compiled for fast subsumption: the
// init mask plus only the registers the invariant actually constrains
// (initialized with a non-top interval), as a range into a shared pairs
// array. Registers outside the range are top — canonicalization is
// applied here once (an uninitialized register's interval is discarded,
// exactly as blockState canon would), so hostile certificates decode to
// the same well-formed semantics the analyzer produces.
type compactInv struct {
	init   uint32
	lo, hi int32 // pairs[lo:hi]
}

// regPair is one constrained register of a compact invariant.
type regPair struct {
	val absVal
	reg uint8
}

// compileInvariants lowers every block invariant to compact form.
// fromInterval normalizes hostile interval encodings (inverted bounds,
// NaN endpoints); a degenerate bottom interval is kept as a pair and
// can only make subsumption fail, never widen a proof.
func compileInvariants(c *Certificate) ([]compactInv, []regPair) {
	cinvs := make([]compactInv, len(c.Blocks))
	pairs := make([]regPair, 0, 4*len(c.Blocks))
	top := TopInterval()
	for i := range c.Blocks {
		b := &c.Blocks[i]
		lo := int32(len(pairs))
		for r := 0; r < NumRegs; r++ {
			if b.Init&(1<<r) == 0 || b.Regs[r] == top {
				continue // top by canonicalization, admits everything
			}
			v := fromInterval(b.Regs[r])
			if v == topVal() {
				continue
			}
			pairs = append(pairs, regPair{val: v, reg: uint8(r)})
		}
		cinvs[i] = compactInv{init: b.Init, lo: lo, hi: int32(len(pairs))}
	}
	return cinvs, pairs
}

// materialize expands a compact invariant into a full machine state for
// adoption as the linear pass's current state.
func materialize(rs *regState, ci *compactInv, pairs []regPair) {
	*rs = topState
	rs.init = ci.init
	for _, pr := range pairs[ci.lo:ci.hi] {
		rs.vals[pr.reg] = pr.val
	}
}

// topState is the all-registers-top machine state materialize patches.
var topState = func() regState {
	var rs regState
	for r := range rs.vals {
		rs.vals[r] = topVal()
	}
	return rs
}()

// subsumedBy reports that every concrete machine state admitted by cur
// is admitted by the invariant — the edge-coverage (⊑) check making
// invariants inductive. The invariant may only claim initialization cur
// guarantees, and each constrained register's value set in cur must be
// contained in the invariant's. cur need not be canonical: a register
// holding a stale value while uninitialized in cur is either also
// unclaimed by the invariant's init mask (then the invariant is top
// there and admits anything) or triggers the init-mask rejection.
func subsumedBy(cur *regState, ci *compactInv, pairs []regPair) bool {
	if ci.init&^cur.init != 0 {
		return false
	}
	for _, pr := range pairs[ci.lo:ci.hi] {
		if !valIn(cur.vals[pr.reg], pr.val) {
			return false
		}
	}
	return true
}

// valIn reports x ⊆ y on abstract values: NaN possibility and the
// ordinary interval must both be contained.
func valIn(x, y absVal) bool {
	if x.nan && !y.nan {
		return false
	}
	if x.num && (!y.num || y.lo > x.lo || y.hi < x.hi) {
		return false
	}
	return true
}
