package vm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// fuzzEnv is a benign environment for soundness fuzzing: cells hold
// arbitrary float64s (the adversarial part) and helpers never error, so
// any trap an accepted program hits is a verifier soundness bug, not an
// environment fault.
type fuzzEnv struct {
	cells []float64
}

func (e *fuzzEnv) LoadCell(i int32) float64     { return e.cells[i] }
func (e *fuzzEnv) StoreCell(i int32, v float64) { e.cells[i] = v }
func (e *fuzzEnv) Helper(h HelperID, args *[5]float64) (float64, error) {
	switch h {
	case HelperSqrt:
		if args[0] < 0 {
			return 0, nil
		}
		return math.Sqrt(args[0]), nil
	case HelperLog2:
		if args[0] <= 0 {
			return 0, nil
		}
		return math.Log2(args[0]), nil
	}
	return float64(h), nil
}

// randProgram generates a random program. Register and cell choices are
// biased toward valid ranges so a useful fraction of programs survive
// the structural pass and exercise the dataflow analysis; jumps are
// always forward and in range (backward jumps are boring rejections).
func randProgram(rng *rand.Rand, symbols []string) *Program {
	n := 1 + rng.Intn(20)
	code := make([]Instr, 0, n+1)
	randImm := func() float64 {
		switch rng.Intn(8) {
		case 0:
			return 0
		case 1:
			return math.NaN()
		case 2:
			return math.Inf(1)
		case 3:
			return -1
		default:
			return float64(rng.Intn(40) - 10)
		}
	}
	ops := []Op{
		OpMov, OpMovI, OpMovI, OpAdd, OpAddI, OpSub, OpSubI, OpMul, OpMulI,
		OpDiv, OpDivI, OpNeg, OpAbs, OpMin, OpMax, OpNot, OpBoo,
		OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
		OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI,
		OpLoad, OpStore, OpCall, OpExit,
	}
	// Bias registers toward a small working set: uniform choices over
	// all 16 registers make uninitialized reads so likely that almost
	// nothing reaches the interval analysis.
	randReg := func() uint8 {
		if rng.Intn(2) == 0 {
			return uint8(rng.Intn(3))
		}
		return uint8(rng.Intn(NumRegs))
	}
	for pc := 0; pc < n; pc++ {
		in := Instr{
			Op:  ops[rng.Intn(len(ops))],
			Dst: randReg(),
			Src: randReg(),
		}
		switch in.Op {
		case OpJmp, OpJEq, OpJNe, OpJLt, OpJLe, OpJGt, OpJGe,
			OpJEqI, OpJNeI, OpJLtI, OpJLeI, OpJGtI, OpJGeI:
			// Forward target in (pc, n]; n is the virtual end (the
			// analyzer rejects reachable fall-off, which is fine).
			in.Off = 1 + int32(rng.Intn(n-pc))
			in.Imm = randImm()
		case OpLoad, OpStore:
			in.Cell = int32(rng.Intn(len(symbols)))
		case OpCall:
			in.Imm = float64(rng.Intn(NumBuiltinHelpers))
		case OpMovI, OpAddI, OpSubI, OpMulI, OpDivI:
			in.Imm = randImm()
		}
		code = append(code, in)
	}
	code = append(code, Instr{Op: OpExit})
	return &Program{Name: "fuzz", Code: code, Symbols: symbols}
}

// TestVerifierSoundnessFuzz is the differential soundness test: every
// program the verifier accepts must run trap-free on randomized feature
// stores (including NaN and infinite cell values), within its certified
// step bound, and agree exactly with the fully-guarded interpreter;
// every rejection must carry a positioned, non-empty reason.
func TestVerifierSoundnessFuzz(t *testing.T) {
	const trials = 500
	rng := rand.New(rand.NewSource(0x5eed))
	symbols := []string{"a", "b", "c"}
	randCell := func() float64 {
		switch rng.Intn(6) {
		case 0:
			return 0
		case 1:
			return math.NaN()
		case 2:
			return math.Inf(1)
		case 3:
			return math.Inf(-1)
		default:
			return rng.NormFloat64() * 100
		}
	}

	accepted, rejected := 0, 0
	for trial := 0; trial < trials; trial++ {
		p := randProgram(rng, symbols)
		err := Verify(p, NumBuiltinHelpers)
		if err != nil {
			rejected++
			var ve *VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("trial %d: rejection is not a *VerifyError: %T %v", trial, err, err)
			}
			if ve.Reason == "" {
				t.Fatalf("trial %d: empty rejection reason\n%s", trial, p)
			}
			continue
		}
		accepted++
		if !p.Meta.TrapFree || p.Meta.MaxSteps <= 0 {
			t.Fatalf("trial %d: accepted program has no proof: %+v", trial, p.Meta)
		}
		for run := 0; run < 4; run++ {
			cells := []float64{randCell(), randCell(), randCell()}
			arg := randCell()

			var mp Machine
			provenOut, perr := mp.Run(p, &fuzzEnv{cells: append([]float64(nil), cells...)}, arg)
			if perr != nil {
				t.Fatalf("trial %d: verified program trapped: %v\ncells=%v arg=%v\n%s",
					trial, perr, cells, arg, p)
			}
			if int(mp.Steps) > p.Meta.MaxSteps {
				t.Fatalf("trial %d: %d steps exceed certified bound %d\n%s",
					trial, mp.Steps, p.Meta.MaxSteps, p)
			}

			guarded := *p
			guarded.Meta = ProgramMeta{}
			var mg Machine
			guardedOut, gerr := mg.Run(&guarded, &fuzzEnv{cells: append([]float64(nil), cells...)}, arg)
			if gerr != nil {
				t.Fatalf("trial %d: guarded interpreter trapped where proven did not: %v", trial, gerr)
			}
			if !sameFloat(provenOut, guardedOut) || mp.Steps != mg.Steps {
				t.Fatalf("trial %d: paths disagree: proven (%v, %d steps) vs guarded (%v, %d steps)\ncells=%v arg=%v\n%s",
					trial, provenOut, mp.Steps, guardedOut, mg.Steps, cells, arg, p)
			}
		}
	}
	// The generator must exercise both verdicts meaningfully.
	if accepted < 20 || rejected < 20 {
		t.Fatalf("degenerate fuzz mix: %d accepted, %d rejected", accepted, rejected)
	}
	t.Logf("fuzz: %d accepted, %d rejected", accepted, rejected)
}
