package vm

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// mustBuild finishes a builder or fails the test.
func mustBuild(t *testing.T, b *Builder) *Program {
	t.Helper()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// wantReject verifies that Verify rejects p with a *VerifyError whose
// message contains every given fragment, and that the reason is
// non-empty.
func wantReject(t *testing.T, p *Program, fragments ...string) *VerifyError {
	t.Helper()
	err := Verify(p, NumBuiltinHelpers)
	if err == nil {
		t.Fatalf("verifier accepted unsafe program %q:\n%s", p.Name, p)
	}
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("rejection is not a *VerifyError: %T %v", err, err)
	}
	if ve.Reason == "" {
		t.Fatalf("rejection carries an empty reason: %v", err)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Errorf("rejection %q missing %q", err, f)
		}
	}
	if p.Meta.TrapFree {
		t.Error("rejected program still marked TrapFree")
	}
	return ve
}

// TestUninitOnOneBranchOfMerge is the classic merge-point case: r6 is
// written on only one arm of a diamond, so the read after the join must
// be rejected even though one concrete path through the program is fine.
func TestUninitOnOneBranchOfMerge(t *testing.T) {
	b := NewBuilder("uninit-merge")
	b.JmpIfI(OpJGtI, 0, 5, "skip") // r0 > 5 → skip the write
	b.MovI(6, 1)                   // r6 written on fallthrough arm only
	b.Label("skip")
	b.Mov(0, 6) // read after merge: uninit when the jump was taken
	b.Exit()
	ve := wantReject(t, mustBuild(t, b), "uninitialized register r6")
	if ve.PC != 2 {
		t.Errorf("rejection at pc=%d, want 2", ve.PC)
	}

	// Writing r6 on both arms makes the same read safe.
	b = NewBuilder("init-both")
	b.JmpIfI(OpJGtI, 0, 5, "other")
	b.MovI(6, 1)
	b.Jmp("join")
	b.Label("other")
	b.MovI(6, 2)
	b.Label("join")
	b.Mov(0, 6)
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatalf("both-arms-initialized program rejected: %v", err)
	}
}

// TestJoinAndWidenLattice unit-tests the interval lattice operations
// the merge logic is built from.
func TestJoinAndWidenLattice(t *testing.T) {
	a := absVal{num: true, lo: 1, hi: 3}
	bv := absVal{num: true, lo: 2, hi: 8}
	j := join(a, bv)
	if !j.num || j.lo != 1 || j.hi != 8 || j.nan {
		t.Errorf("join([1,3],[2,8]) = %+v, want [1,8]", j)
	}
	if j := join(a, absVal{nan: true}); !j.nan || j.lo != 1 || j.hi != 3 {
		t.Errorf("join with pure NaN = %+v, want [1,3]+nan", j)
	}

	// Widening accelerates any bound that grew to its infinity.
	w := widen(a, absVal{num: true, lo: 0, hi: 3})
	if !math.IsInf(w.lo, -1) || w.hi != 3 {
		t.Errorf("widen lower growth = %+v, want lo=-Inf hi=3", w)
	}
	w = widen(a, absVal{num: true, lo: 1, hi: 4})
	if w.lo != 1 || !math.IsInf(w.hi, 1) {
		t.Errorf("widen upper growth = %+v, want lo=1 hi=+Inf", w)
	}
	// No growth → widen degenerates to join (stable fixpoint).
	if w := widen(a, a); w != a {
		t.Errorf("widen(x,x) = %+v, want %+v", w, a)
	}
}

// TestWideningAtRepeatedJoins drives one merge point past the
// widenAfter threshold: a long cascade of branches all targeting the
// same join must still converge and verify (the forward-only CFG makes
// widening a defensive bound rather than a termination requirement).
func TestWideningAtRepeatedJoins(t *testing.T) {
	b := NewBuilder("join-cascade")
	b.MovI(6, 0)
	for i := 0; i < widenAfter+4; i++ {
		b.JmpIfI(OpJLeI, 0, float64(i), "join")
		b.ALUI(OpAddI, 6, 1)
	}
	b.Label("join")
	b.Mov(0, 6)
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatalf("join cascade rejected: %v", err)
	}
	var m Machine
	out, err := m.Run(p, &testEnv{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// r0=3 falls through while 3 > i (incrementing r6 three times),
	// then jumps at i=3.
	if out != 3 {
		t.Errorf("cascade(3) = %v, want 3", out)
	}
	if int(m.Steps) > p.Meta.MaxSteps {
		t.Errorf("actual steps %d exceed certified bound %d", m.Steps, p.Meta.MaxSteps)
	}
}

// TestHelperContracts covers the per-helper argument contracts: the
// HelperAction dispatch index must be a provably-bounded non-NaN value.
func TestHelperContracts(t *testing.T) {
	t.Run("const-index-accepted", func(t *testing.T) {
		b := NewBuilder("action-ok")
		b.MovI(1, 3)
		b.Call(HelperAction)
		b.Exit()
		p := mustBuild(t, b)
		if err := Verify(p, NumBuiltinHelpers); err != nil {
			t.Fatalf("constant action index rejected: %v", err)
		}
	})
	t.Run("loaded-index-rejected-nan", func(t *testing.T) {
		b := NewBuilder("action-load")
		b.Load(1, "idx") // store cells are unconstrained: may be NaN
		b.Call(HelperAction)
		b.Exit()
		wantReject(t, mustBuild(t, b), "helper action", "may be NaN")
	})
	t.Run("negative-index-rejected", func(t *testing.T) {
		b := NewBuilder("action-neg")
		b.MovI(1, -1)
		b.Call(HelperAction)
		b.Exit()
		wantReject(t, mustBuild(t, b), "helper action", "not provably within")
	})
	t.Run("huge-index-rejected", func(t *testing.T) {
		b := NewBuilder("action-huge")
		b.MovI(1, 1e18)
		b.Call(HelperAction)
		b.Exit()
		wantReject(t, mustBuild(t, b), "not provably within")
	})
	t.Run("range-proved-by-branch", func(t *testing.T) {
		// A loaded index is fine once branches pin its range: the taken
		// edge of an ordered comparison also proves non-NaN.
		b := NewBuilder("action-guarded")
		b.Load(6, "idx")
		b.JmpIfI(OpJGeI, 6, 0, "lo_ok")
		b.MovI(0, 0)
		b.Exit()
		b.Label("lo_ok")
		b.JmpIfI(OpJLeI, 6, 100, "hi_ok")
		b.MovI(0, 0)
		b.Exit()
		b.Label("hi_ok")
		b.Mov(1, 6)
		b.Call(HelperAction)
		b.Exit()
		p := mustBuild(t, b)
		if err := Verify(p, NumBuiltinHelpers); err != nil {
			t.Fatalf("branch-guarded action index rejected: %v", err)
		}
	})
	t.Run("uninit-arg-rejected", func(t *testing.T) {
		b := NewBuilder("sqrt-uninit")
		b.Call(HelperSqrt) // r1 never written
		b.Exit()
		wantReject(t, mustBuild(t, b), "uninitialized register r1")
	})
}

// TestDivisionPolicy pins the three-way division policy: a
// provably-always-zero divisor is rejected, a possibly-zero divisor is
// accepted with DivProven=false (the interpreter keeps the guarded
// x/0 = 0 form), and a proven-nonzero divisor yields DivProven=true.
func TestDivisionPolicy(t *testing.T) {
	t.Run("constant-zero-rejected", func(t *testing.T) {
		b := NewBuilder("div-const0")
		b.MovI(6, 1)
		b.ALUI(OpDivI, 6, 0)
		b.Mov(0, 6)
		b.Exit()
		ve := wantReject(t, mustBuild(t, b), "provably always zero")
		if ve.PC != 1 {
			t.Errorf("rejection at pc=%d, want 1", ve.PC)
		}
	})
	t.Run("folded-zero-rejected", func(t *testing.T) {
		// The zero arrives through arithmetic, not as a literal: the
		// interval analysis still proves it.
		b := NewBuilder("div-folded0")
		b.MovI(6, 4)
		b.ALUI(OpSubI, 6, 4) // r6 = 0
		b.MovI(7, 1)
		b.ALU(OpDiv, 7, 6)
		b.Mov(0, 7)
		b.Exit()
		wantReject(t, mustBuild(t, b), "provably always zero")
	})
	t.Run("maybe-zero-keeps-guard", func(t *testing.T) {
		b := NewBuilder("div-maybe0")
		b.MovI(6, 1)
		b.Load(7, "d")
		b.ALU(OpDiv, 6, 7)
		b.Mov(0, 6)
		b.Exit()
		p := mustBuild(t, b)
		if err := Verify(p, NumBuiltinHelpers); err != nil {
			t.Fatalf("possibly-zero divisor rejected: %v", err)
		}
		if !p.Meta.TrapFree || p.Meta.DivProven {
			t.Errorf("Meta = %+v, want TrapFree && !DivProven", p.Meta)
		}
		// The proven fast path must still apply x/0 = 0.
		var m Machine
		out, err := m.Run(p, &testEnv{cells: []float64{0}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != 0 {
			t.Errorf("1/0 = %v on fast path, want 0", out)
		}
	})
	t.Run("branch-proven-nonzero", func(t *testing.T) {
		b := NewBuilder("div-guarded")
		b.MovI(6, 100)
		b.Load(7, "d")
		b.JmpIfI(OpJGtI, 7, 0, "divide")
		b.MovI(0, 0)
		b.Exit()
		b.Label("divide")
		b.ALU(OpDiv, 6, 7)
		b.Mov(0, 6)
		b.Exit()
		p := mustBuild(t, b)
		if err := Verify(p, NumBuiltinHelpers); err != nil {
			t.Fatalf("branch-guarded division rejected: %v", err)
		}
		if !p.Meta.DivProven {
			t.Errorf("Meta = %+v, want DivProven", p.Meta)
		}
		var m Machine
		out, err := m.Run(p, &testEnv{cells: []float64{4}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if out != 25 {
			t.Errorf("100/4 = %v, want 25", out)
		}
	})
}

// TestMaxStepsCertification checks the certified worst-case bound: it
// must be exact on straight-line code, pick the longest arm of a
// branch, and dominate the actual step count on every input.
func TestMaxStepsCertification(t *testing.T) {
	b := NewBuilder("line")
	b.MovI(0, 1)
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	if p.Meta.MaxSteps != 2 {
		t.Errorf("straight-line MaxSteps = %d, want 2", p.Meta.MaxSteps)
	}

	// Asymmetric diamond: short arm 1 insn, long arm 3 insns.
	b = NewBuilder("diamond")
	b.JmpIfI(OpJGtI, 0, 0, "long")
	b.MovI(0, 0)
	b.Jmp("join")
	b.Label("long")
	b.MovI(0, 1)
	b.ALUI(OpAddI, 0, 1)
	b.ALUI(OpMulI, 0, 2)
	b.Label("join")
	b.Exit()
	p = mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	// Long path: jgti, movi, addi, muli, exit = 5 steps.
	if p.Meta.MaxSteps != 5 {
		t.Errorf("diamond MaxSteps = %d, want 5", p.Meta.MaxSteps)
	}
	for _, arg := range []float64{-1, 0, 1, math.NaN()} {
		var m Machine
		if _, err := m.Run(p, &testEnv{}, arg); err != nil {
			t.Fatalf("run(%v): %v", arg, err)
		}
		if int(m.Steps) > p.Meta.MaxSteps {
			t.Errorf("run(%v) took %d steps, certified bound %d", arg, m.Steps, p.Meta.MaxSteps)
		}
	}
}

// TestVerifyStepsBudget covers the load-time step-budget admission
// test built on the certified bound.
func TestVerifyStepsBudget(t *testing.T) {
	b := NewBuilder("budgeted")
	b.MovI(6, 1)
	b.ALUI(OpAddI, 6, 1)
	b.Mov(0, 6)
	b.Exit()
	p := mustBuild(t, b)
	if err := VerifySteps(p, NumBuiltinHelpers, 4); err != nil {
		t.Fatalf("program within budget rejected: %v", err)
	}
	err := VerifySteps(p, NumBuiltinHelpers, 3)
	if err == nil {
		t.Fatal("over-budget program accepted")
	}
	if !strings.Contains(err.Error(), "exceeds the budget") {
		t.Errorf("unhelpful budget rejection: %v", err)
	}
}

// TestFallOffEnd: a program whose only path reaches the end without
// OpExit must be rejected by the dataflow pass (reachability of the
// virtual end node), not by a runtime bad-pc trap.
func TestFallOffEnd(t *testing.T) {
	p := &Program{Name: "fall-off", Code: []Instr{
		{Op: OpMovI, Dst: 0, Imm: 1},
	}}
	wantReject(t, p, "fall off the end")
}

// TestDeadBranchPrecision: comparison refinement must prove branches
// dead. Here the taken edge of jgti r6, 5 is impossible because r6 is
// the constant 3, so the uninitialized read on that edge is
// unreachable and the program verifies.
func TestDeadBranchPrecision(t *testing.T) {
	b := NewBuilder("dead-branch")
	b.MovI(6, 3)
	b.JmpIfI(OpJGtI, 6, 5, "dead") // 3 > 5: never taken
	b.MovI(0, 1)
	b.Exit()
	b.Label("dead")
	b.Mov(0, 9) // r9 uninitialized — but unreachable
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatalf("dead branch not proven dead: %v", err)
	}
}

// TestNaNRefinementSoundness: a NaN-valued cell falls through every
// ordered comparison, so the analyzer must keep the fallthrough edge's
// NaN possibility — accepting this program with DivProven would be
// unsound (raw a/NaN = NaN ≠ safeDiv? no: safeDiv(a, NaN) is also
// a/NaN — but an Action contract must still see the NaN).
func TestNaNRefinementSoundness(t *testing.T) {
	// jlei r6, 0 fallthrough means r6 > 0 OR r6 is NaN: using r6 as an
	// action index must be rejected.
	b := NewBuilder("nan-through-cmp")
	b.Load(6, "x")
	b.JmpIfI(OpJLeI, 6, 0, "out")
	b.JmpIfI(OpJGtI, 6, 100, "out")
	b.Mov(1, 6) // still possibly NaN on this path
	b.Call(HelperAction)
	b.Label("out")
	b.MovI(0, 0)
	b.Exit()
	wantReject(t, mustBuild(t, b), "may be NaN")
}

// TestTrapMessagesCarryDisassembly: runtime traps name the faulting pc
// and the disassembled instruction.
func TestTrapMessagesCarryDisassembly(t *testing.T) {
	b := NewBuilder("trapper")
	b.MovI(1, 2)
	b.Call(HelperAction)
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	var m Machine
	_, err := m.Run(p, &testEnv{helperErr: errors.New("backend down")}, 0)
	if err == nil {
		t.Fatal("failing helper did not trap")
	}
	for _, want := range []string{"pc=1", "call", "helper#2", "backend down"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("trap %q missing %q", err, want)
		}
	}

	// Guarded path (unverified program) carries the same detail.
	p2 := &Program{Name: "bad-op", Code: []Instr{{Op: opMax + 1}}}
	_, err = m.Run(p2, &testEnv{}, 0)
	if err == nil {
		t.Fatal("invalid opcode did not trap")
	}
	if !strings.Contains(err.Error(), "pc=0") {
		t.Errorf("guarded trap missing pc: %q", err)
	}
}

// TestVerifyErrorPointsAtInstruction: rejections disassemble the
// faulting instruction in the error text.
func TestVerifyErrorPointsAtInstruction(t *testing.T) {
	b := NewBuilder("uninit")
	b.Mov(0, 7)
	b.Exit()
	err := Verify(mustBuild(t, b), NumBuiltinHelpers)
	if err == nil {
		t.Fatal("uninit read accepted")
	}
	for _, want := range []string{"pc=0", "mov", "r7"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("verify error %q missing %q", err, want)
		}
	}
}

// TestProvenRunMatchesGuardedRun spot-checks that the two interpreter
// paths agree, including on NaN-heavy inputs.
func TestProvenRunMatchesGuardedRun(t *testing.T) {
	b := NewBuilder("both-paths")
	b.Load(6, "a")
	b.Load(7, "b")
	b.ALU(OpAdd, 6, 7)
	b.ALUI(OpMulI, 6, 2)
	b.ALU(OpMin, 6, 7)
	b.JmpIfI(OpJGeI, 6, 0, "pos")
	b.Un(OpNeg, 6)
	b.Label("pos")
	b.Mov(0, 6)
	b.Exit()
	p := mustBuild(t, b)
	if err := Verify(p, NumBuiltinHelpers); err != nil {
		t.Fatal(err)
	}
	stores := [][]float64{
		{1, 2}, {-3, 7}, {0, 0},
		{math.NaN(), 1}, {math.Inf(1), math.Inf(-1)},
	}
	for _, cells := range stores {
		var mp, mg Machine
		proven, perr := mp.Run(p, &testEnv{cells: append([]float64(nil), cells...)}, 0)
		unproven := *p
		unproven.Meta = ProgramMeta{} // force the guarded path
		guarded, gerr := mg.Run(&unproven, &testEnv{cells: append([]float64(nil), cells...)}, 0)
		if (perr == nil) != (gerr == nil) {
			t.Fatalf("cells %v: proven err %v vs guarded err %v", cells, perr, gerr)
		}
		if !sameFloat(proven, guarded) {
			t.Errorf("cells %v: proven %v != guarded %v", cells, proven, guarded)
		}
		if mp.Steps != mg.Steps {
			t.Errorf("cells %v: proven steps %d != guarded steps %d", cells, mp.Steps, mg.Steps)
		}
	}
}

func sameFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}
