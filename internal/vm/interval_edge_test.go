package vm

import (
	"math"
	"testing"
)

// Edge cases of the Interval abstraction: NaN propagation through
// joins and disjointness, outward-ulp rounding at the extremes of the
// float64 range, and empty (contradictory) input intervals fed to
// AnalyzeWith.

func TestIntervalJoinNaN(t *testing.T) {
	num := RangeInterval(1, 2)
	nan := Interval{NaN: true}
	j := num.Join(nan)
	if !j.Num || !j.NaN || j.Lo != 1 || j.Hi != 2 {
		t.Fatalf("join [1,2] ⊔ NaN = %v, want [1,2]|NaN", j)
	}
	// Join is commutative on the NaN flag.
	if k := nan.Join(num); k != j {
		t.Fatalf("join not commutative: %v vs %v", k, j)
	}
	// NaN never launders into the ordinary part.
	if v, ok := j.Singleton(); ok {
		t.Fatalf("NaN-admitting interval reported singleton %v", v)
	}
}

func TestIntervalDisjointNaN(t *testing.T) {
	a := Interval{Num: true, Lo: 0, Hi: 1, NaN: true}
	b := Interval{Num: true, Lo: 5, Hi: 6, NaN: true}
	// Ordinary parts are disjoint, but both may be NaN — and NaN is a
	// value both can hold, so they are not certifiably disjoint.
	if a.DisjointFrom(b) {
		t.Fatal("shared NaN possibility must defeat disjointness")
	}
	b.NaN = false
	if !a.DisjointFrom(b) {
		t.Fatal("[0,1]|NaN and [5,6] have no common value")
	}
	// A NaN-only interval is disjoint from any pure-number interval...
	nanOnly := Interval{NaN: true}
	if !nanOnly.DisjointFrom(RangeInterval(0, 100)) {
		t.Fatal("NaN-only vs numbers-only should be disjoint")
	}
	// ...but not from another NaN-admitting one.
	if nanOnly.DisjointFrom(a) {
		t.Fatal("two NaN-admitting intervals share NaN")
	}
}

func TestIntervalStringEmpty(t *testing.T) {
	if s := (Interval{}).String(); s != "∅" {
		t.Fatalf("empty interval = %q", s)
	}
	if s := (Interval{NaN: true}).String(); s != "∅|NaN" {
		t.Fatalf("NaN-only interval = %q", s)
	}
}

// fromInterval must normalize contradictory bounds to empty rather than
// carrying an inverted interval into the analyzer.
func TestFromIntervalNormalizesInverted(t *testing.T) {
	v := fromInterval(Interval{Num: true, Lo: 2, Hi: 1})
	if v.num {
		t.Fatalf("inverted interval not normalized to empty: %+v", v)
	}
	v = fromInterval(Interval{Num: true, Lo: math.NaN(), Hi: 1})
	if v.num {
		t.Fatalf("NaN bound not normalized to empty: %+v", v)
	}
}

// Outward-ulp nudging at the edges: infinities are already maximal, NaN
// widens to the full axis, and the largest finite magnitudes overflow
// outward to infinity instead of wrapping inward.
func TestOutwardUlpAtExtremes(t *testing.T) {
	if v := outLo(math.Inf(-1)); !math.IsInf(v, -1) {
		t.Fatalf("outLo(-Inf) = %v", v)
	}
	if v := outHi(math.Inf(1)); !math.IsInf(v, 1) {
		t.Fatalf("outHi(+Inf) = %v", v)
	}
	// A nudge never moves inward: outLo(+Inf) lands on MaxFloat64,
	// which is still an upper... no: outLo moves toward -Inf, so it is
	// only ever applied to lower bounds. At +Inf it must stay a valid
	// lower bound for {+Inf}.
	if v := outLo(math.Inf(1)); v > math.Inf(1) {
		t.Fatalf("outLo(+Inf) = %v moved above +Inf", v)
	}
	if v := outLo(math.NaN()); !math.IsInf(v, -1) {
		t.Fatalf("outLo(NaN) = %v, want -Inf", v)
	}
	if v := outHi(math.NaN()); !math.IsInf(v, 1) {
		t.Fatalf("outHi(NaN) = %v, want +Inf", v)
	}
	if v := outHi(math.MaxFloat64); !math.IsInf(v, 1) {
		t.Fatalf("outHi(MaxFloat64) = %v, want overflow to +Inf", v)
	}
	if v := outLo(-math.MaxFloat64); !math.IsInf(v, -1) {
		t.Fatalf("outLo(-MaxFloat64) = %v, want overflow to -Inf", v)
	}
	// Finite values nudge by exactly one ulp, outward only.
	if v := outHi(1.0); v <= 1.0 || v != math.Nextafter(1.0, math.Inf(1)) {
		t.Fatalf("outHi(1) = %v", v)
	}
	if v := outLo(1.0); v >= 1.0 || v != math.Nextafter(1.0, math.Inf(-1)) {
		t.Fatalf("outLo(1) = %v", v)
	}
	if v := outHi(0.0); v <= 0.0 {
		t.Fatalf("outHi(0) = %v, want smallest positive subnormal", v)
	}
}

// divFixture divides r1 = LOAD(a) into 10 and returns the quotient:
// open-world analysis must reject it (divisor may be ordinary zero);
// refined analysis admits it whenever the env excludes zero.
func divFixture(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("div-fixture")
	b.Load(1, "a")
	b.MovI(0, 10)
	b.ALU(OpDiv, 0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// An empty input interval is a contradiction — the deployment certifies
// the cell holds no value at all. The analysis must stay sound (never
// panic, never claim a result the replay contradicts); the natural
// outcome is that code after the LOAD is analyzed against the empty
// value and claims about it are vacuous or the program is rejected.
func TestAnalyzeWithEmptyDivisorEnv(t *testing.T) {
	p := divFixture(t)
	empty := func(cell int32) (Interval, bool) { return Interval{}, true }
	a, err := AnalyzeWith(p, NumBuiltinHelpers, empty)
	if err != nil {
		// Rejection is a sound answer to a contradictory premise.
		t.Logf("empty input interval rejected: %v", err)
		return
	}
	// If the analyzer accepts, its exit claims must still cover every
	// run the real interpreter can produce — for an unpopulated store
	// the LOAD reads 0, so safeDiv yields 0... but a deployment env
	// claiming emptiness is making that run impossible; the only hard
	// requirement is internal consistency of the proof object.
	if a.MaxSteps <= 0 || a.MaxSteps > MaxInsns {
		t.Fatalf("accepted analysis has implausible step bound %d", a.MaxSteps)
	}
}

// A NaN-admitting input must flow through the analysis: the exit-fact
// interval has to cover the real replay's result when the feature is
// NaN.
func TestAnalyzeWithNaNInputSound(t *testing.T) {
	b := NewBuilder("nan-flow")
	b.Load(1, "a")
	b.ALUI(OpAddI, 1, 1) // NaN + 1 = NaN
	b.JmpIfI(OpJGtI, 1, 0, "pos")
	b.MovI(0, 0)
	b.Exit()
	b.Label("pos")
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	env := func(cell int32) (Interval, bool) {
		return Interval{Num: true, Lo: -1, Hi: 1, NaN: true}, true
	}
	a, err := AnalyzeWith(p, NumBuiltinHelpers, env)
	if err != nil {
		t.Fatalf("NaN-admitting env rejected: %v", err)
	}
	rec := ReplayProgram(p, map[string]float64{"a": math.NaN()}, 0, 0)
	if rec.Err != nil {
		t.Fatalf("replay trapped: %v", rec.Err)
	}
	// NaN > 0 is false, so the replay exits 0; some exit fact must
	// admit that value.
	covered := false
	for _, ef := range a.Exits {
		if ef.R0.Num && ef.R0.Lo <= rec.R0 && rec.R0 <= ef.R0.Hi {
			covered = true
		}
	}
	if !covered {
		t.Fatalf("exit facts %v do not cover replayed result %v on NaN input", a.Exits, rec.R0)
	}
}
