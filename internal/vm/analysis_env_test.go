package vm

import (
	"errors"
	"strings"
	"testing"
)

// branchProg returns a program that violates (returns 0) iff x > 10,
// with the cell index of x.
func branchProg(t *testing.T) (*Program, int32) {
	t.Helper()
	b := NewBuilder("branch")
	cell := b.Sym("x")
	b.Load(1, "x")
	b.JmpIfI(OpJGtI, 1, 10, "viol")
	b.MovI(0, 1)
	b.Exit()
	b.Label("viol")
	b.MovI(0, 0)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return p, cell
}

// TestAnalyzeWithRefinement: the same program can violate open-world
// but is proven violation-free once the input is certified inside the
// threshold — the deployment analyzer's dead-guardrail primitive.
func TestAnalyzeWithRefinement(t *testing.T) {
	p, cell := branchProg(t)

	open, err := Analyze(p, NumBuiltinHelpers)
	if err != nil {
		t.Fatal(err)
	}
	if !open.CanViolate() {
		t.Error("open-world analysis proved violation-freedom of a violable program")
	}

	env := func(c int32) (Interval, bool) {
		if c == cell {
			return RangeInterval(0, 5), true
		}
		return Interval{}, false
	}
	refined, err := AnalyzeWith(p, NumBuiltinHelpers, env)
	if err != nil {
		t.Fatal(err)
	}
	if refined.CanViolate() {
		t.Error("x certified in [0,5] but the x>10 branch still analyzed reachable")
	}

	hot := func(c int32) (Interval, bool) { return RangeInterval(20, 30), true }
	always, err := AnalyzeWith(p, NumBuiltinHelpers, hot)
	if err != nil {
		t.Fatal(err)
	}
	if !always.CanViolate() {
		t.Error("x certified in [20,30] must keep the violation exit reachable")
	}
}

// TestAnalysisStoreFacts: reachable OpStores surface as certified value
// ranges — the producer certificates the interference analyzer joins.
func TestAnalysisStoreFacts(t *testing.T) {
	b := NewBuilder("storer")
	kCell := b.Sym("k")
	b.Load(1, "x")
	b.MovI(2, 5)
	b.JmpIfI(OpJGtI, 1, 0, "high")
	b.Store("k", 2)
	b.MovI(0, 1)
	b.Exit()
	b.Label("high")
	b.MovI(3, 7)
	b.Store("k", 3)
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(p, NumBuiltinHelpers)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Stores) != 2 {
		t.Fatalf("Stores = %+v, want 2 facts", a.Stores)
	}
	iv, ok := a.StoreRange(kCell)
	if !ok {
		t.Fatal("StoreRange found no reachable store of k")
	}
	if iv.Lo != 5 || iv.Hi != 7 || iv.NaN {
		t.Errorf("StoreRange(k) = %s, want [5,7]", iv)
	}
	if a.CanViolate() {
		t.Error("program always returns 1 yet CanViolate reported true")
	}
}

// TestAnalyzeWithDivisorCollapse: a division that verifies open-world
// (divisor unknown) must be rejected once the env proves the divisor
// constant zero — the GI008 condition.
func TestAnalyzeWithDivisorCollapse(t *testing.T) {
	b := NewBuilder("divider")
	dCell := b.Sym("d")
	b.Load(1, "d")
	b.Load(2, "x")
	b.ALU(OpDiv, 2, 1)
	b.MovI(0, 1)
	b.Exit()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(p, NumBuiltinHelpers); err != nil {
		t.Fatalf("open-world analysis rejected a guarded division: %v", err)
	}
	zero := func(c int32) (Interval, bool) {
		if c == dCell {
			return RangeInterval(0, 0), true
		}
		return Interval{}, false
	}
	if _, err := AnalyzeWith(p, NumBuiltinHelpers, zero); err == nil {
		t.Error("divisor certified [0,0] but AnalyzeWith passed")
	}
}

// TestAnalyzeWithBottomEnv: a nonsensical (empty) caller interval must
// degrade to top, not poison the fixpoint.
func TestAnalyzeWithBottomEnv(t *testing.T) {
	p, cell := branchProg(t)
	bottom := func(c int32) (Interval, bool) {
		if c == cell {
			return Interval{Num: true, Lo: 1, Hi: -1}, true
		}
		return Interval{}, false
	}
	a, err := AnalyzeWith(p, NumBuiltinHelpers, bottom)
	if err != nil {
		t.Fatal(err)
	}
	if !a.CanViolate() {
		t.Error("bottom env interval must fall back to top (conservative)")
	}
}

func TestIntervalOps(t *testing.T) {
	a := RangeInterval(0, 1)
	b := RangeInterval(2, 3)
	if !a.DisjointFrom(b) || !b.DisjointFrom(a) {
		t.Error("[0,1] and [2,3] must be disjoint")
	}
	if a.DisjointFrom(RangeInterval(1, 2)) {
		t.Error("[0,1] and [1,2] share 1")
	}
	if a.DisjointFrom(TopInterval()) {
		t.Error("nothing is disjoint from top")
	}
	// Two intervals that may both be NaN share that value: never
	// disjoint, even when the ordinary parts are.
	nanA := Interval{Num: true, Lo: 0, Hi: 1, NaN: true}
	nanB := Interval{Num: true, Lo: 5, Hi: 6, NaN: true}
	if nanA.DisjointFrom(nanB) {
		t.Error("shared NaN possibility must block disjointness")
	}
	if !nanA.DisjointFrom(b) {
		t.Error("[0,1]|NaN vs [2,3]: no ordinary value in common, must be disjoint")
	}

	j := a.Join(b)
	if j.Lo != 0 || j.Hi != 3 {
		t.Errorf("Join = %s, want [0,3]", j)
	}
	if v, ok := RangeInterval(5, 5).Singleton(); !ok || v != 5 {
		t.Errorf("Singleton([5,5]) = %v, %v", v, ok)
	}
	if _, ok := a.Singleton(); ok {
		t.Error("[0,1] reported as singleton")
	}
}

// TestVerifyErrorNames: load-time verification failures name the
// program so multi-guardrail deployment errors are attributable.
func TestVerifyErrorNames(t *testing.T) {
	p := &Program{
		Name:    "bad-guardrail",
		Code:    []Instr{{Op: OpJmp, Off: -1}, {Op: OpExit}},
		Symbols: nil,
	}
	err := Verify(p, NumBuiltinHelpers)
	var verr *VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("Verify returned %T, want *VerifyError", err)
	}
	if verr.Name != "bad-guardrail" {
		t.Errorf("VerifyError.Name = %q", verr.Name)
	}
	if !strings.Contains(err.Error(), `"bad-guardrail"`) {
		t.Errorf("Error() does not name the program: %s", err)
	}

	anon := &Program{Code: []Instr{{Op: OpJmp, Off: -1}, {Op: OpExit}}}
	if msg := Verify(anon, NumBuiltinHelpers).Error(); strings.Contains(msg, `""`) {
		t.Errorf("anonymous program error renders empty name: %s", msg)
	}
}
