package storage

import (
	"testing"

	"guardrails/internal/kernel"
)

func failoverArray(t *testing.T) *Array {
	t.Helper()
	cfg := DeviceConfig{
		Chips:        1, // every LBA on the same chip: GC is easy to force
		ReadBase:     80 * kernel.Microsecond,
		ReadJitter:   0,
		WriteBase:    400 * kernel.Microsecond,
		WriteJitter:  0,
		GCDuration:   8 * kernel.Millisecond,
		GCWritePages: 4,
		// No background GC: the survivor's latencies stay deterministic.
		BackgroundGCRate: 0,
	}
	cfg.Name, cfg.Seed = "primary", 1
	d0, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Name, cfg.Seed = "replica", 2
	d1, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArray(d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// Regression: a replica dying in the middle of a GC pause must not take
// its pause with it — reads route to the survivor immediately, with
// real (non-zero, non-GC-inflated) latencies.
func TestArrayFailoverDuringGCPause(t *testing.T) {
	arr := failoverArray(t)
	primary := arr.Replica(0)

	// Drive the primary (only it — not the array, which would drag the
	// survivor into GC too) into a GC pause with write pressure.
	now := kernel.Time(0)
	for i := 0; i < 4; i++ {
		primary.Submit(now, 0, true)
		now += kernel.Millisecond
	}
	if !primary.InGC(now, 0) {
		t.Fatal("write pressure did not trigger a GC pause")
	}
	gcRead := arr.Read(now, 0)
	if gcRead < kernel.Millisecond {
		t.Fatalf("pre-failure read %v should be stuck behind the GC pause", gcRead)
	}

	// The replica dies mid-pause.
	if !arr.Fail(0) {
		t.Fatal("Fail(0) refused with a live survivor present")
	}
	if arr.AliveCount() != 1 || arr.Alive(0) {
		t.Fatalf("alive = %d, Alive(0) = %v after failure", arr.AliveCount(), arr.Alive(0))
	}
	if arr.Primary() != arr.Replica(1) || arr.Secondary() != arr.Replica(1) {
		t.Fatal("reads not routed to the survivor")
	}
	for i := 0; i < 8; i++ {
		lat := arr.Read(now, uint64(i))
		if lat <= 0 {
			t.Fatalf("read %d returned a zero/stale latency %v from a dead replica", i, lat)
		}
		if lat >= 8*kernel.Millisecond {
			t.Fatalf("read %d latency %v still behind the dead replica's GC pause", i, lat)
		}
		now += 200 * kernel.Microsecond
	}

	// The last survivor must be unkillable.
	if arr.Fail(1) {
		t.Fatal("Fail(1) killed the last live replica")
	}

	// Writes skip the corpse.
	w0 := primary.Stats().Writes
	arr.Write(now, 42)
	if primary.Stats().Writes != w0 {
		t.Error("write mirrored to a failed replica")
	}
	if arr.Replica(1).Stats().Writes == 0 {
		t.Error("write skipped the survivor")
	}

	// Healing restores the original read preference.
	if !arr.Heal(0) {
		t.Fatal("Heal(0) refused")
	}
	if arr.Primary() != arr.Replica(0) || arr.Secondary() != arr.Replica(1) {
		t.Fatal("healed replica did not resume as primary")
	}
	if arr.Heal(0) {
		t.Error("double Heal reported a transition")
	}
}

// Up/down transitions must reach the notify observer (the seam that
// publishes replicas_alive to the feature store).
func TestArrayNotifyOnFailHeal(t *testing.T) {
	arr := failoverArray(t)
	type ev struct {
		i     int
		alive bool
	}
	var got []ev
	arr.SetNotify(func(i int, alive bool) { got = append(got, ev{i, alive}) })
	arr.Fail(1)
	arr.Fail(1) // no-op: already down
	arr.Fail(0) // refused: last survivor
	arr.Heal(1)
	want := []ev{{1, false}, {1, true}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("notifications = %v, want %v", got, want)
	}
}
