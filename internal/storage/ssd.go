// Package storage simulates flash SSDs with the latency bimodality that
// motivates LinnOS (Hao et al., OSDI '20): most accesses are fast, but
// internal activity — garbage collection triggered by write pressure or
// background maintenance — makes a chip intermittently slow, queueing
// I/Os behind multi-millisecond pauses. A RAID-1 style Array groups
// replica devices for failover experiments.
//
// The simulator is analytical: Submit computes an I/O's completion time
// directly from per-chip queue and GC state rather than scheduling
// discrete events, which keeps million-I/O experiments fast while
// preserving the queueing behaviour the learned predictor sees.
package storage

import (
	"fmt"
	"math/rand"

	"guardrails/internal/kernel"
	"guardrails/internal/telemetry"
	"guardrails/internal/trace"
)

// DeviceConfig parameterizes a simulated SSD.
type DeviceConfig struct {
	// Name identifies the device in stats and logs.
	Name string
	// Chips is the number of independent flash chips (parallel queues).
	Chips int
	// ReadBase is the media read service time.
	ReadBase kernel.Time
	// ReadJitter is the uniform jitter added to reads.
	ReadJitter kernel.Time
	// WriteBase is the media program (write) service time.
	WriteBase kernel.Time
	// WriteJitter is the uniform jitter added to writes.
	WriteJitter kernel.Time
	// GCDuration is how long one garbage-collection pause blocks a chip.
	GCDuration kernel.Time
	// GCWritePages triggers GC on a chip after this many page writes.
	GCWritePages int
	// BackgroundGCRate is the per-chip rate (events per simulated
	// second) of background maintenance pauses, independent of writes.
	BackgroundGCRate float64
	// ChipSalt perturbs the LBA→chip mapping. Zero keeps the identity
	// layout (lba mod chips); a non-zero salt hashes the LBA first, so
	// replicas with different salts place the same LBA on different
	// chips — as real devices with independent FTL layouts do. Without
	// this, mirrored writes congest the same chip index on every
	// replica simultaneously and failover cannot escape.
	ChipSalt uint64
	// Seed drives the device's jitter and background GC draws.
	Seed int64
}

// DefaultDeviceConfig returns a consumer-flash-like configuration: 16
// chips, ~90µs reads, ~500µs writes, 8ms GC pauses every 64 page writes
// per chip plus rare background GC.
func DefaultDeviceConfig(name string, seed int64) DeviceConfig {
	return DeviceConfig{
		Name:             name,
		Chips:            16,
		ReadBase:         80 * kernel.Microsecond,
		ReadJitter:       20 * kernel.Microsecond,
		WriteBase:        400 * kernel.Microsecond,
		WriteJitter:      100 * kernel.Microsecond,
		GCDuration:       8 * kernel.Millisecond,
		GCWritePages:     64,
		BackgroundGCRate: 0.2,
		Seed:             seed,
	}
}

type chip struct {
	busyUntil     kernel.Time
	gcUntil       kernel.Time
	writesSinceGC int
	nextBgGC      kernel.Time
}

// DeviceStats aggregates a device's lifetime I/O accounting.
type DeviceStats struct {
	Reads      uint64
	Writes     uint64
	GCs        uint64
	TotalWait  kernel.Time // queue + GC wait across all I/Os
	TotalServe kernel.Time // media service time across all I/Os
}

// Device is one simulated SSD. Not safe for concurrent use (the
// simulated kernel is single-threaded).
type Device struct {
	cfg   DeviceConfig
	chips []chip
	rng   *rand.Rand
	stats DeviceStats
	tsink *telemetry.Sink

	// completion ring for queue-depth estimation
	completions [64]kernel.Time
	compHead    int

	// recent latencies for the LinnOS feature vector
	recent [4]kernel.Time
}

// NewDevice constructs a device.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	if cfg.Chips <= 0 {
		return nil, fmt.Errorf("storage: device %q needs at least one chip", cfg.Name)
	}
	if cfg.ReadBase <= 0 || cfg.WriteBase <= 0 || cfg.GCDuration <= 0 {
		return nil, fmt.Errorf("storage: device %q has non-positive timings", cfg.Name)
	}
	if cfg.GCWritePages <= 0 {
		return nil, fmt.Errorf("storage: device %q needs positive GC write threshold", cfg.Name)
	}
	d := &Device{
		cfg:   cfg,
		chips: make([]chip, cfg.Chips),
		rng:   trace.NewRand(trace.Split(cfg.Seed, "device/"+cfg.Name)),
	}
	for i := range d.chips {
		d.chips[i].nextBgGC = d.nextBackgroundGC(0)
	}
	return d, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Config returns the device configuration.
func (d *Device) Config() DeviceConfig { return d.cfg }

// Stats returns a copy of the device's counters.
func (d *Device) Stats() DeviceStats { return d.stats }

// SetTelemetry attaches (or with nil, detaches) a telemetry sink: every
// GC pause becomes a flight-recorder span and every I/O completion
// feeds the device's latency histogram.
func (d *Device) SetTelemetry(s *telemetry.Sink) { d.tsink = s }

func (d *Device) nextBackgroundGC(now kernel.Time) kernel.Time {
	if d.cfg.BackgroundGCRate <= 0 {
		return 1<<62 - 1 // effectively never
	}
	gap := trace.Exponential(d.rng, float64(kernel.Second)/d.cfg.BackgroundGCRate)
	return now + kernel.Time(gap)
}

func (d *Device) chipFor(lba uint64) *chip {
	if d.cfg.ChipSalt != 0 {
		h := (lba ^ d.cfg.ChipSalt) * 0x9E3779B97F4A7C15
		return &d.chips[(h>>32)%uint64(len(d.chips))]
	}
	return &d.chips[lba%uint64(len(d.chips))]
}

// Submit issues an I/O at simulated time now and returns its total
// latency (queue wait + GC wait + media service). Device state advances.
func (d *Device) Submit(now kernel.Time, lba uint64, write bool) kernel.Time {
	c := d.chipFor(lba)

	// Fire any due background GC.
	if now >= c.nextBgGC {
		start := max(c.busyUntil, c.nextBgGC)
		if start+d.cfg.GCDuration > c.gcUntil {
			c.gcUntil = start + d.cfg.GCDuration
		}
		d.stats.GCs++
		d.tsink.GCPause(int64(start), int64(d.cfg.GCDuration), d.cfg.Name)
		c.nextBgGC = d.nextBackgroundGC(now)
	}

	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	if c.gcUntil > start {
		start = c.gcUntil
	}

	var service kernel.Time
	if write {
		service = d.cfg.WriteBase + kernel.Time(d.rng.Int63n(int64(d.cfg.WriteJitter)+1))
		d.stats.Writes++
		c.writesSinceGC++
		if c.writesSinceGC >= d.cfg.GCWritePages {
			// Write-pressure GC: the chip pauses after this write.
			c.gcUntil = start + service + d.cfg.GCDuration
			c.writesSinceGC = 0
			d.stats.GCs++
			d.tsink.GCPause(int64(start+service), int64(d.cfg.GCDuration), d.cfg.Name)
		}
	} else {
		service = d.cfg.ReadBase + kernel.Time(d.rng.Int63n(int64(d.cfg.ReadJitter)+1))
		d.stats.Reads++
	}

	complete := start + service
	c.busyUntil = complete

	lat := complete - now
	d.stats.TotalWait += start - now
	d.stats.TotalServe += service

	d.completions[d.compHead] = complete
	d.compHead = (d.compHead + 1) % len(d.completions)
	copy(d.recent[1:], d.recent[:3])
	d.recent[0] = lat
	d.tsink.IO(d.cfg.Name, int64(lat), write)
	return lat
}

// QueueDepth estimates the number of in-flight I/Os at time now: recent
// submissions whose completion lies in the future. This is the
// queue-length feature LinnOS reads at submission time.
func (d *Device) QueueDepth(now kernel.Time) int {
	depth := 0
	for _, c := range d.completions {
		if c > now {
			depth++
		}
	}
	return depth
}

// RecentLatencies returns the device's last four I/O latencies, newest
// first — the latency history half of the LinnOS feature vector.
func (d *Device) RecentLatencies() [4]kernel.Time { return d.recent }

// InGC reports whether the chip backing lba is currently in a GC pause.
// This is simulator ground truth (a real host cannot observe it); tests
// and oracle baselines use it, policies must not.
func (d *Device) InGC(now kernel.Time, lba uint64) bool {
	return d.chipFor(lba).gcUntil > now
}

func max(a, b kernel.Time) kernel.Time {
	if a > b {
		return a
	}
	return b
}

// Array is a RAID-1 style replica group: every write is mirrored to all
// live replicas; reads may be served by any live replica. Replicas can
// be failed and healed at runtime (the chaos-experiment seam for
// mid-run replica loss); the array refuses to fail its last survivor.
type Array struct {
	replicas []*Device
	down     []bool
	notify   func(i int, alive bool)
	tsink    *telemetry.Sink
}

// NewArray groups devices into a replica set. At least two devices are
// required for failover semantics.
func NewArray(devices ...*Device) (*Array, error) {
	if len(devices) < 2 {
		return nil, fmt.Errorf("storage: array needs at least two replicas, got %d", len(devices))
	}
	return &Array{replicas: devices, down: make([]bool, len(devices))}, nil
}

// Replica returns the i'th device.
func (a *Array) Replica(i int) *Device { return a.replicas[i] }

// Len returns the replica count.
func (a *Array) Len() int { return len(a.replicas) }

// SetNotify registers an observer for replica up/down transitions
// (e.g. to publish replicas_alive to a feature store). The callback
// runs synchronously from Fail and Heal.
func (a *Array) SetNotify(fn func(i int, alive bool)) { a.notify = fn }

// SetTelemetry attaches a telemetry sink to the array and all its
// replicas: replica fail/heal transitions become failover events, and
// each replica's GC pauses and I/O latencies flow to the sink.
func (a *Array) SetTelemetry(s *telemetry.Sink) {
	a.tsink = s
	for _, d := range a.replicas {
		d.SetTelemetry(s)
	}
}

// Fail takes replica i out of service. It reports whether the replica
// was failed: failing an already-down replica is a no-op, and the last
// live replica cannot be failed (a full-array loss has no failover
// story to simulate).
func (a *Array) Fail(i int) bool {
	if i < 0 || i >= len(a.replicas) || a.down[i] || a.AliveCount() <= 1 {
		return false
	}
	a.down[i] = true
	a.tsink.Failover(a.tsink.Now(), a.replicas[i].Name(), false)
	if a.notify != nil {
		a.notify(i, false)
	}
	return true
}

// Heal returns replica i to service, reporting whether it was down.
func (a *Array) Heal(i int) bool {
	if i < 0 || i >= len(a.replicas) || !a.down[i] {
		return false
	}
	a.down[i] = false
	a.tsink.Failover(a.tsink.Now(), a.replicas[i].Name(), true)
	if a.notify != nil {
		a.notify(i, true)
	}
	return true
}

// Alive reports whether replica i is in service.
func (a *Array) Alive(i int) bool { return i >= 0 && i < len(a.replicas) && !a.down[i] }

// AliveCount returns the number of live replicas.
func (a *Array) AliveCount() int {
	n := 0
	for _, d := range a.down {
		if !d {
			n++
		}
	}
	return n
}

// Primary returns the lowest-indexed live replica — the default read
// target.
func (a *Array) Primary() *Device {
	for i, d := range a.replicas {
		if !a.down[i] {
			return d
		}
	}
	return a.replicas[0] // unreachable: the last replica cannot fail
}

// Secondary returns the next live replica after the primary, or the
// primary itself when it is the sole survivor.
func (a *Array) Secondary() *Device {
	primary := -1
	for i := range a.replicas {
		if !a.down[i] {
			if primary >= 0 {
				return a.replicas[i]
			}
			primary = i
		}
	}
	return a.replicas[primary]
}

// Read submits a read for lba to the primary replica and returns its
// latency. A failed replica never serves reads: after a Fail, reads
// route to the survivor.
func (a *Array) Read(now kernel.Time, lba uint64) kernel.Time {
	return a.Primary().Submit(now, lba, false)
}

// Write mirrors a write to every live replica and returns the slowest
// latency (the write completes when all live replicas have it).
func (a *Array) Write(now kernel.Time, lba uint64) kernel.Time {
	var worst kernel.Time
	for i, d := range a.replicas {
		if a.down[i] {
			continue
		}
		if lat := d.Submit(now, lba, true); lat > worst {
			worst = lat
		}
	}
	return worst
}
