package storage

import (
	"testing"

	"guardrails/internal/kernel"
)

func quietConfig(name string, seed int64) DeviceConfig {
	cfg := DefaultDeviceConfig(name, seed)
	cfg.BackgroundGCRate = 0 // deterministic tests control GC via writes
	return cfg
}

func TestDeviceValidation(t *testing.T) {
	bad := []DeviceConfig{
		{Name: "x", Chips: 0, ReadBase: 1, WriteBase: 1, GCDuration: 1, GCWritePages: 1},
		{Name: "x", Chips: 1, ReadBase: 0, WriteBase: 1, GCDuration: 1, GCWritePages: 1},
		{Name: "x", Chips: 1, ReadBase: 1, WriteBase: 1, GCDuration: 0, GCWritePages: 1},
		{Name: "x", Chips: 1, ReadBase: 1, WriteBase: 1, GCDuration: 1, GCWritePages: 0},
	}
	for i, cfg := range bad {
		if _, err := NewDevice(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	d, err := NewDevice(quietConfig("ok", 1))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "ok" || d.Config().Chips != 16 {
		t.Error("accessors wrong")
	}
}

func TestReadLatencyIsFastWhenIdle(t *testing.T) {
	d, _ := NewDevice(quietConfig("a", 1))
	for i := 0; i < 100; i++ {
		lat := d.Submit(kernel.Time(i)*kernel.Millisecond, uint64(i), false)
		if lat < 80*kernel.Microsecond || lat > 100*kernel.Microsecond {
			t.Fatalf("idle read latency = %v, want 80-100us", lat)
		}
	}
	if d.Stats().Reads != 100 {
		t.Errorf("reads = %d", d.Stats().Reads)
	}
}

func TestQueueingDelaysBackToBackIOs(t *testing.T) {
	d, _ := NewDevice(quietConfig("a", 2))
	// Two reads to the same chip at the same instant: the second waits.
	first := d.Submit(0, 0, false)
	second := d.Submit(0, 16, false) // same chip (16 chips, lba%16==0)
	if second <= first {
		t.Errorf("queued read (%v) should exceed first (%v)", second, first)
	}
	// A read to a different chip at the same time does not queue.
	other := d.Submit(0, 1, false)
	if other > 100*kernel.Microsecond {
		t.Errorf("different chip queued: %v", other)
	}
}

func TestWritePressureTriggersGC(t *testing.T) {
	cfg := quietConfig("a", 3)
	cfg.GCWritePages = 4
	d, _ := NewDevice(cfg)
	now := kernel.Time(0)
	// Four writes to chip 0 trigger GC; spread them out so queueing
	// doesn't interfere.
	for i := 0; i < 4; i++ {
		d.Submit(now, 0, true)
		now += 10 * kernel.Millisecond
	}
	if d.Stats().GCs != 1 {
		t.Fatalf("GCs = %d, want 1", d.Stats().GCs)
	}
	if !d.InGC(now, 0) {
		// GC started right after the 4th write at ~now-10ms+service,
		// duration 8ms; at now it may have ended. Check just after the
		// 4th write instead.
	}
	// A read right after the triggering write eats the GC pause.
	lat := d.Submit(now-10*kernel.Millisecond+kernel.Microsecond, 0, false)
	if lat < 5*kernel.Millisecond {
		t.Errorf("read during GC = %v, want multi-ms", lat)
	}
	// Reads on other chips are unaffected.
	lat = d.Submit(now, 1, false)
	if lat > kernel.Millisecond {
		t.Errorf("other chip read = %v", lat)
	}
}

func TestBackgroundGCHappens(t *testing.T) {
	cfg := DefaultDeviceConfig("bg", 4)
	cfg.BackgroundGCRate = 50 // very frequent for the test
	d, _ := NewDevice(cfg)
	slow := 0
	for i := 0; i < 2000; i++ {
		lat := d.Submit(kernel.Time(i)*kernel.Millisecond, uint64(i), false)
		if lat > kernel.Millisecond {
			slow++
		}
	}
	if d.Stats().GCs == 0 {
		t.Fatal("no background GCs fired")
	}
	if slow == 0 {
		t.Error("background GC never delayed a read")
	}
	// Bimodality: most reads are still fast.
	if slow > 1000 {
		t.Errorf("too many slow reads: %d/2000", slow)
	}
}

func TestLatencyBimodality(t *testing.T) {
	// Mixed read/write workload must produce a clearly bimodal latency
	// distribution: p50 fast, p99 slow.
	cfg := quietConfig("bimodal", 5)
	cfg.GCWritePages = 16
	d, _ := NewDevice(cfg)
	var lats []kernel.Time
	now := kernel.Time(0)
	for i := 0; i < 20000; i++ {
		lba := uint64(i * 7)
		write := i%5 == 0
		lat := d.Submit(now, lba, write)
		if !write {
			lats = append(lats, lat)
		}
		now += 200 * kernel.Microsecond
	}
	// Rough percentiles.
	fast, slow := 0, 0
	for _, l := range lats {
		if l < 500*kernel.Microsecond {
			fast++
		}
		if l > 2*kernel.Millisecond {
			slow++
		}
	}
	total := len(lats)
	if float64(fast)/float64(total) < 0.80 {
		t.Errorf("fast fraction = %v, want > 0.80", float64(fast)/float64(total))
	}
	if slow == 0 {
		t.Error("no slow tail present")
	}
}

func TestQueueDepthAndRecentLatencies(t *testing.T) {
	d, _ := NewDevice(quietConfig("q", 6))
	if d.QueueDepth(0) != 0 {
		t.Error("fresh device depth should be 0")
	}
	d.Submit(0, 0, false)
	d.Submit(0, 1, false)
	if got := d.QueueDepth(10 * kernel.Microsecond); got != 2 {
		t.Errorf("depth = %d, want 2", got)
	}
	if got := d.QueueDepth(10 * kernel.Millisecond); got != 0 {
		t.Errorf("depth after drain = %d", got)
	}
	r := d.RecentLatencies()
	if r[0] == 0 || r[1] == 0 {
		t.Error("recent latencies not recorded")
	}
	if r[2] != 0 || r[3] != 0 {
		t.Error("unwritten history should be zero")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []kernel.Time {
		d, _ := NewDevice(DefaultDeviceConfig("det", 42))
		var out []kernel.Time
		for i := 0; i < 500; i++ {
			out = append(out, d.Submit(kernel.Time(i)*100*kernel.Microsecond, uint64(i*3), i%4 == 0))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestArrayMirrorsWrites(t *testing.T) {
	d1, _ := NewDevice(quietConfig("r0", 7))
	d2, _ := NewDevice(quietConfig("r1", 8))
	arr, err := NewArray(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if arr.Len() != 2 || arr.Replica(0) != d1 {
		t.Error("array accessors wrong")
	}
	lat := arr.Write(0, 5)
	if d1.Stats().Writes != 1 || d2.Stats().Writes != 1 {
		t.Error("write not mirrored")
	}
	if lat < 400*kernel.Microsecond {
		t.Errorf("mirrored write latency = %v", lat)
	}
	if _, err := NewArray(d1); err == nil {
		t.Error("single-device array should error")
	}
}
