package stats

// Window is a fixed-capacity sliding window over a float64 stream backed
// by a ring buffer, maintaining running sum for O(1) mean queries.
// Min/max queries use monotonic deques and are amortized O(1).
type Window struct {
	buf   []float64
	head  int // index of oldest element
	size  int
	sum   float64
	minDQ deque // indices of candidate minima, increasing values
	maxDQ deque // indices of candidate maxima, decreasing values
	seq   uint64
}

type dqItem struct {
	seq uint64
	val float64
}

type deque struct {
	items []dqItem
}

func (d *deque) pushBack(it dqItem) { d.items = append(d.items, it) }
func (d *deque) popBack()           { d.items = d.items[:len(d.items)-1] }
func (d *deque) back() dqItem       { return d.items[len(d.items)-1] }
func (d *deque) front() dqItem      { return d.items[0] }
func (d *deque) popFront()          { d.items = d.items[1:] }
func (d *deque) empty() bool        { return len(d.items) == 0 }
func (d *deque) reset()             { d.items = d.items[:0] }

// NewWindow returns a sliding window holding the most recent n values.
func NewWindow(n int) *Window {
	if n <= 0 {
		panic("stats: window capacity must be positive")
	}
	return &Window{buf: make([]float64, n)}
}

// Add appends a value, evicting the oldest when full. It returns the
// evicted value and whether an eviction occurred.
func (w *Window) Add(x float64) (evicted float64, wasFull bool) {
	if w.size == len(w.buf) {
		evicted = w.buf[w.head]
		wasFull = true
		w.sum -= evicted
		w.buf[w.head] = x
		w.head = (w.head + 1) % len(w.buf)
	} else {
		w.buf[(w.head+w.size)%len(w.buf)] = x
		w.size++
	}
	w.sum += x
	// Expire deque fronts that slid out of the window.
	oldest := w.seq + 1 - uint64(w.size) // seq of oldest element after this add
	for !w.minDQ.empty() && w.minDQ.front().seq < oldest {
		w.minDQ.popFront()
	}
	for !w.maxDQ.empty() && w.maxDQ.front().seq < oldest {
		w.maxDQ.popFront()
	}
	for !w.minDQ.empty() && w.minDQ.back().val >= x {
		w.minDQ.popBack()
	}
	w.minDQ.pushBack(dqItem{w.seq, x})
	for !w.maxDQ.empty() && w.maxDQ.back().val <= x {
		w.maxDQ.popBack()
	}
	w.maxDQ.pushBack(dqItem{w.seq, x})
	w.seq++
	return evicted, wasFull
}

// Len returns the number of values currently held.
func (w *Window) Len() int { return w.size }

// Cap returns the window capacity.
func (w *Window) Cap() int { return len(w.buf) }

// Full reports whether the window holds Cap() values.
func (w *Window) Full() bool { return w.size == len(w.buf) }

// Sum returns the sum of held values.
func (w *Window) Sum() float64 { return w.sum }

// Mean returns the mean of held values, or 0 when empty.
func (w *Window) Mean() float64 {
	if w.size == 0 {
		return 0
	}
	return w.sum / float64(w.size)
}

// Min returns the minimum held value, or 0 when empty.
func (w *Window) Min() float64 {
	if w.minDQ.empty() {
		return 0
	}
	return w.minDQ.front().val
}

// Max returns the maximum held value, or 0 when empty.
func (w *Window) Max() float64 {
	if w.maxDQ.empty() {
		return 0
	}
	return w.maxDQ.front().val
}

// Values copies the window contents, oldest first.
func (w *Window) Values() []float64 {
	out := make([]float64, w.size)
	for i := 0; i < w.size; i++ {
		out[i] = w.buf[(w.head+i)%len(w.buf)]
	}
	return out
}

// Reset clears the window.
func (w *Window) Reset() {
	w.head, w.size, w.sum, w.seq = 0, 0, 0, 0
	w.minDQ.reset()
	w.maxDQ.reset()
}

// RateWindow counts event outcomes (hit/miss style) over a sliding window
// of the most recent n events and reports the success rate. It is used
// for properties like the LinnOS false-submit rate.
type RateWindow struct {
	bits  []bool
	head  int
	size  int
	count int // number of true bits
}

// NewRateWindow returns a window over the most recent n boolean outcomes.
func NewRateWindow(n int) *RateWindow {
	if n <= 0 {
		panic("stats: rate window capacity must be positive")
	}
	return &RateWindow{bits: make([]bool, n)}
}

// Add records one outcome.
func (r *RateWindow) Add(v bool) {
	if r.size == len(r.bits) {
		if r.bits[r.head] {
			r.count--
		}
		r.bits[r.head] = v
		r.head = (r.head + 1) % len(r.bits)
	} else {
		r.bits[(r.head+r.size)%len(r.bits)] = v
		r.size++
	}
	if v {
		r.count++
	}
}

// Rate returns the fraction of true outcomes in the window, or 0 when
// empty.
func (r *RateWindow) Rate() float64 {
	if r.size == 0 {
		return 0
	}
	return float64(r.count) / float64(r.size)
}

// Len returns the number of outcomes held.
func (r *RateWindow) Len() int { return r.size }

// Reset clears the window.
func (r *RateWindow) Reset() {
	r.head, r.size, r.count = 0, 0, 0
	for i := range r.bits {
		r.bits[i] = false
	}
}
