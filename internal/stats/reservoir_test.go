package stats

import (
	"math"
	"testing"
)

func TestReservoirFillsBelowCapacity(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	s := r.Sample()
	if len(s) != 5 {
		t.Fatalf("sample size = %d, want 5", len(s))
	}
	for i, v := range s {
		if v != float64(i) {
			t.Errorf("sample[%d] = %v", i, v)
		}
	}
	if r.Seen() != 5 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirStaysAtCapacity(t *testing.T) {
	r := NewReservoir(8, 2)
	for i := 0; i < 10000; i++ {
		r.Add(float64(i))
	}
	if len(r.Sample()) != 8 {
		t.Errorf("sample size = %d, want 8", len(r.Sample()))
	}
	if r.Seen() != 10000 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirApproximatelyUniform(t *testing.T) {
	// Each of 1000 values should land in a k=100 reservoir with
	// probability 0.1; run many trials and check the first element's
	// inclusion frequency.
	const trials = 400
	hits := 0
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir(100, int64(trial))
		for i := 0; i < 1000; i++ {
			r.Add(float64(i))
		}
		for _, v := range r.Sample() {
			if v == 0 {
				hits++
				break
			}
		}
	}
	freq := float64(hits) / trials
	if math.Abs(freq-0.1) > 0.05 {
		t.Errorf("element-0 inclusion frequency = %v, want ~0.1", freq)
	}
}

func TestReservoirSampleIsCopy(t *testing.T) {
	r := NewReservoir(4, 3)
	r.Add(1)
	s := r.Sample()
	s[0] = 99
	if r.Sample()[0] != 1 {
		t.Error("Sample must return a copy")
	}
}

func TestReservoirReset(t *testing.T) {
	r := NewReservoir(4, 3)
	r.Add(1)
	r.Reset()
	if len(r.Sample()) != 0 || r.Seen() != 0 {
		t.Error("reset failed")
	}
}

func TestVecReservoir(t *testing.T) {
	r := NewVecReservoir(3, 5)
	v := []float64{1, 2}
	r.Add(v)
	v[0] = 99 // must not affect the stored copy
	got := r.Sample()
	if len(got) != 1 || got[0][0] != 1 || got[0][1] != 2 {
		t.Errorf("stored vector = %v", got)
	}
	for i := 0; i < 100; i++ {
		r.Add([]float64{float64(i), 0})
	}
	if len(r.Sample()) != 3 {
		t.Errorf("capacity exceeded: %d", len(r.Sample()))
	}
	if r.Seen() != 101 {
		t.Errorf("seen = %d", r.Seen())
	}
}

func TestReservoirConstructorPanics(t *testing.T) {
	for _, k := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			NewReservoir(k, 0)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("vec k=%d should panic", k)
				}
			}()
			NewVecReservoir(k, 0)
		}()
	}
}
