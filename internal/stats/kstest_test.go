package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res := KSTest(a, b)
	if res.PValue < 0.01 {
		t.Errorf("same distribution rejected: D=%v p=%v", res.D, res.PValue)
	}
	if res.N1 != 500 || res.N2 != 500 {
		t.Errorf("sizes: %d %d", res.N1, res.N2)
	}
}

func TestKSTestShiftedDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2
	}
	res := KSTest(a, b)
	if res.PValue > 1e-6 {
		t.Errorf("shifted distribution not detected: D=%v p=%v", res.D, res.PValue)
	}
	if res.D < 0.5 {
		t.Errorf("D = %v, want > 0.5 for 2-sigma shift", res.D)
	}
}

func TestKSTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	res := KSTest(a, a)
	if res.D != 0 {
		t.Errorf("identical samples: D = %v, want 0", res.D)
	}
	if res.PValue != 1 {
		t.Errorf("identical samples: p = %v, want 1", res.PValue)
	}
}

func TestKSTestEmptyInputs(t *testing.T) {
	res := KSTest(nil, []float64{1, 2})
	if res.D != 0 || res.PValue != 1 {
		t.Errorf("empty sample: %+v", res)
	}
}

func TestKSTestDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	res := KSTest(a, b)
	if res.D != 1 {
		t.Errorf("disjoint samples: D = %v, want 1", res.D)
	}
}

func TestKSTestDoesNotModifyInputs(t *testing.T) {
	a := []float64{3, 1, 2}
	b := []float64{5, 4}
	KSTest(a, b)
	if a[0] != 3 || a[1] != 1 || a[2] != 2 || b[0] != 5 {
		t.Error("inputs were modified")
	}
}

func TestKSTestSortedMatchesUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 100)
	b := make([]float64, 120)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64() * 1.2
	}
	r1 := KSTest(a, b)
	sort.Float64s(a)
	sort.Float64s(b)
	r2 := KSTestSorted(a, b)
	if r1.D != r2.D || r1.PValue != r2.PValue {
		t.Errorf("sorted/unsorted mismatch: %+v vs %+v", r1, r2)
	}
}

func TestKSTestWithTies(t *testing.T) {
	a := []float64{1, 1, 1, 2, 2}
	b := []float64{1, 2, 2, 2, 3}
	res := KSTest(a, b)
	// CDF_a(1)=0.6, CDF_b(1)=0.2 -> D >= 0.4.
	if res.D < 0.4-1e-12 {
		t.Errorf("D with ties = %v, want >= 0.4", res.D)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal alloc: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("monopoly alloc: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty alloc: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero alloc: %v", got)
	}
	// Fairness decreases with skew.
	if JainIndex([]float64{4, 1, 1}) >= JainIndex([]float64{2, 2, 2}) {
		t.Error("skewed allocation should be less fair")
	}
}

func TestClampAndIsFinite(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp broken")
	}
	if IsFinite(nan()) || IsFinite(inf()) || !IsFinite(1.5) {
		t.Error("IsFinite broken")
	}
}

func nan() float64 { return float64s()[0] }
func inf() float64 { return float64s()[1] }

func float64s() [2]float64 {
	z := 0.0
	return [2]float64{z / z, 1 / z}
}
