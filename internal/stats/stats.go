// Package stats provides the statistical substrate used by guardrail
// properties and the feature store: streaming moments, EWMA, quantile
// estimation, histograms, sliding windows, reservoir sampling, and
// two-sample distribution-shift tests (Kolmogorov–Smirnov and PSI).
//
// Everything in this package is allocation-free on the update path and
// safe to call from simulated-kernel hook sites. None of the types are
// internally synchronized; callers that share an estimator across
// goroutines must serialize access (the feature store does this).
package stats

import "math"

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// IsFinite reports whether v is neither NaN nor infinite.
func IsFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
