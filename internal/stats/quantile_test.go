package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileExact(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(s, c.p); got != c.want {
			t.Errorf("Quantile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty slice should give 0")
	}
	if Quantile([]float64{42}, 0.99) != 42 {
		t.Error("singleton should give its value")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Errorf("interpolated = %v, want 3", got)
	}
}

func TestP2AgainstExactUniform(t *testing.T) {
	for _, p := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		est := NewP2(p)
		rng := rand.New(rand.NewSource(42))
		var xs []float64
		for i := 0; i < 50000; i++ {
			x := rng.Float64() * 100
			est.Add(x)
			xs = append(xs, x)
		}
		sort.Float64s(xs)
		exact := Quantile(xs, p)
		if math.Abs(est.Value()-exact) > 1.0 {
			t.Errorf("p=%v: P2=%v exact=%v", p, est.Value(), exact)
		}
	}
}

func TestP2AgainstExactLognormal(t *testing.T) {
	est := NewP2(0.95)
	rng := rand.New(rand.NewSource(9))
	var xs []float64
	for i := 0; i < 50000; i++ {
		x := math.Exp(rng.NormFloat64())
		est.Add(x)
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	exact := Quantile(xs, 0.95)
	if math.Abs(est.Value()-exact)/exact > 0.05 {
		t.Errorf("P2 p95 = %v, exact = %v (>5%% off)", est.Value(), exact)
	}
}

func TestP2SmallSamples(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 {
		t.Error("empty estimator should report 0")
	}
	est.Add(3)
	if est.Value() != 3 {
		t.Errorf("one sample: %v", est.Value())
	}
	est.Add(1)
	est.Add(2)
	// Exact median of {1,2,3} is 2.
	if est.Value() != 2 {
		t.Errorf("three samples: %v, want 2", est.Value())
	}
	if est.Count() != 3 {
		t.Errorf("count = %d", est.Count())
	}
}

func TestP2MonotoneMarkers(t *testing.T) {
	est := NewP2(0.9)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		est.Add(rng.ExpFloat64() * 50)
		if est.count >= 5 {
			for j := 0; j < 4; j++ {
				if est.q[j] > est.q[j+1] {
					t.Fatalf("markers out of order at i=%d: %v", i, est.q)
				}
			}
		}
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v should panic", p)
				}
			}()
			NewP2(p)
		}()
	}
}
