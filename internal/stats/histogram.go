package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi) with equal-width bins
// plus underflow/overflow counters. It supports quantile queries,
// normalization, and distribution-distance computations used by drift
// properties (P1).
type Histogram struct {
	lo, hi float64
	width  float64
	bins   []uint64
	under  uint64
	over   uint64
	total  uint64
	sum    float64
}

// NewHistogram returns a histogram over [lo, hi) with n equal bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		panic("stats: histogram requires lo < hi")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]uint64, n)}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // float rounding at the top edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the total number of observations including out-of-range.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the mean of all observations. An empty histogram has no
// mean: it returns NaN (not 0, which is a legitimate observed mean).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Bins returns a copy of the in-range bin counts.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, len(h.bins))
	copy(out, h.bins)
	return out
}

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over uint64) { return h.under, h.over }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Reset zeroes all counters.
func (h *Histogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.under, h.over, h.total, h.sum = 0, 0, 0, 0
}

// Quantile returns an approximate p-quantile assuming uniform density
// within each bin. Out-of-range mass is attributed to the boundary bins.
// An empty histogram has no quantiles: it returns NaN, matching Mean.
func (h *Histogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	p = Clamp(p, 0, 1)
	target := p * float64(h.total)
	acc := float64(h.under)
	if acc >= target && h.under > 0 {
		return h.lo
	}
	for i, c := range h.bins {
		next := acc + float64(c)
		if next >= target && c > 0 {
			frac := (target - acc) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		acc = next
	}
	return h.hi
}

// Merge folds o's observations into h. The histograms must be
// identically shaped (same bounds and bin count); merging differently
// shaped histograms is an error, not a silent re-bin. o is unchanged.
// Merging is how per-shard telemetry histograms aggregate.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.bins) != len(o.bins) || h.lo != o.lo || h.hi != o.hi {
		return fmt.Errorf("stats: cannot merge histogram [%g,%g)/%d bins into [%g,%g)/%d bins",
			o.lo, o.hi, len(o.bins), h.lo, h.hi, len(h.bins))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.total += o.total
	h.sum += o.sum
	return nil
}

// Probabilities returns the normalized in-range bin probabilities with
// Laplace smoothing eps applied to every bin (so distance computations
// never divide by zero). The result sums to 1.
func (h *Histogram) Probabilities(eps float64) []float64 {
	out := make([]float64, len(h.bins))
	total := eps * float64(len(h.bins))
	for _, c := range h.bins {
		total += float64(c)
	}
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i, c := range h.bins {
		out[i] = (float64(c) + eps) / total
	}
	return out
}

// PSI computes the population stability index between h (expected) and o
// (actual). The histograms must have identical shape. PSI < 0.1 is
// conventionally "no shift", 0.1–0.25 "moderate", > 0.25 "major".
func (h *Histogram) PSI(o *Histogram) float64 {
	if len(h.bins) != len(o.bins) || h.lo != o.lo || h.hi != o.hi {
		panic("stats: PSI requires identically shaped histograms")
	}
	const eps = 0.5
	p := h.Probabilities(eps)
	q := o.Probabilities(eps)
	var psi float64
	for i := range p {
		psi += (q[i] - p[i]) * math.Log(q[i]/p[i])
	}
	return psi
}

// String renders a compact single-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hist[%g,%g) n=%d mean=%.4g", h.lo, h.hi, h.total, h.Mean())
	return b.String()
}

// LogHistogram buckets positive values by log2 magnitude, suitable for
// latency distributions spanning several orders of magnitude.
type LogHistogram struct {
	bins  []uint64 // bins[i] counts values in [2^i, 2^(i+1))
	zero  uint64   // values < 1
	total uint64
	sum   float64
}

// NewLogHistogram returns a log2 histogram with capacity for values up to
// 2^maxExp.
func NewLogHistogram(maxExp int) *LogHistogram {
	if maxExp <= 0 || maxExp > 63 {
		panic("stats: log histogram maxExp must be in (0, 63]")
	}
	return &LogHistogram{bins: make([]uint64, maxExp)}
}

// Add incorporates one non-negative observation; values >= 2^maxExp land
// in the top bin.
func (h *LogHistogram) Add(x float64) {
	h.total++
	h.sum += x
	if x < 1 {
		h.zero++
		return
	}
	i := int(math.Log2(x))
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// Count returns the number of observations.
func (h *LogHistogram) Count() uint64 { return h.total }

// Buckets exposes the raw log2 buckets for cumulative-histogram
// export: the sub-1 count, a copy of the power-of-two bin counts
// (bins[i] counts values in [2^i, 2^(i+1)), the top bin absorbing
// overflow), the observation total, and the running sum.
func (h *LogHistogram) Buckets() (zero uint64, bins []uint64, total uint64, sum float64) {
	bins = make([]uint64, len(h.bins))
	copy(bins, h.bins)
	return h.zero, bins, h.total, h.sum
}

// Mean returns the mean of all observations, or NaN when empty
// (matching Histogram.Mean).
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Quantile returns an approximate p-quantile using log-linear
// interpolation within the matched bucket, or NaN when empty.
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	p = Clamp(p, 0, 1)
	target := p * float64(h.total)
	acc := float64(h.zero)
	if acc >= target && h.zero > 0 {
		return 0
	}
	for i, c := range h.bins {
		next := acc + float64(c)
		if next >= target && c > 0 {
			lo := math.Exp2(float64(i))
			hi := math.Exp2(float64(i + 1))
			frac := (target - acc) / float64(c)
			return lo + frac*(hi-lo)
		}
		acc = next
	}
	return math.Exp2(float64(len(h.bins)))
}

// Merge folds o's observations into h. Both histograms must have the
// same maxExp; a shape mismatch is an error. o is unchanged.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if len(h.bins) != len(o.bins) {
		return fmt.Errorf("stats: cannot merge log histogram with maxExp %d into maxExp %d",
			len(o.bins), len(h.bins))
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.zero += o.zero
	h.total += o.total
	h.sum += o.sum
	return nil
}

// Reset zeroes all counters.
func (h *LogHistogram) Reset() {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.zero, h.total, h.sum = 0, 0, 0
}

// Summary is the fixed quantile export shared by telemetry snapshots
// and benchmark emission: count, mean, and the conventional latency
// quantiles. An empty histogram summarizes to the zero Summary (not
// NaN) so summaries stay JSON-marshalable.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Summary exports the fixed quantile set.
func (h *Histogram) Summary() Summary {
	if h.total == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Summary exports the fixed quantile set.
func (h *LogHistogram) Summary() Summary {
	if h.total == 0 {
		return Summary{}
	}
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
