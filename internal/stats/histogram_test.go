package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{-1, 0, 0.5, 5, 9.999, 10, 100} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", under, over)
	}
	bins := h.Bins()
	if bins[0] != 2 { // 0 and 0.5
		t.Errorf("bin0 = %d, want 2", bins[0])
	}
	if bins[5] != 1 || bins[9] != 1 {
		t.Errorf("bins = %v", bins)
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	// A value just below hi must land in the last bin even if float
	// division rounds up.
	h := NewHistogram(0, 0.3, 3)
	h.Add(0.3 - 1e-17)
	bins := h.Bins()
	var total uint64
	for _, b := range bins {
		total += b
	}
	_, over := h.OutOfRange()
	if total+over != 1 {
		t.Errorf("observation lost: bins=%v over=%d", bins, over)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) + 0.5)
	}
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := h.Quantile(p)
		want := p * 100
		if got < want-2 || got > want+2 {
			t.Errorf("quantile(%v) = %v, want ~%v", p, got, want)
		}
	}
	empty := NewHistogram(0, 1, 4)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramMeanAndReset(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(2)
	h.Add(4)
	if !almostEqual(h.Mean(), 3, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Mean()) {
		t.Error("reset failed")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 1, 3} {
		a.Add(x)
	}
	for _, x := range []float64{5, 7, 20} {
		b.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 6 {
		t.Errorf("merged count = %d, want 6", a.Count())
	}
	under, over := a.OutOfRange()
	if under != 1 || over != 1 {
		t.Errorf("merged under/over = %d/%d, want 1/1", under, over)
	}
	if !almostEqual(a.Mean(), 35.0/6, 1e-12) {
		t.Errorf("merged mean = %v", a.Mean())
	}
	if b.Count() != 3 {
		t.Error("merge mutated its argument")
	}
}

func TestHistogramMergeShapeMismatch(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	for _, b := range []*Histogram{
		NewHistogram(0, 10, 4),
		NewHistogram(0, 20, 5),
		NewHistogram(1, 10, 5),
	} {
		if err := a.Merge(b); err == nil {
			t.Errorf("merging %v into %v should error", b, a)
		}
	}
	if a.Count() != 0 {
		t.Error("failed merge must not modify the receiver")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i%100) + 0.5)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Errorf("summary count = %d", s.Count)
	}
	if s.P50 < 45 || s.P50 > 55 || s.P99 < 95 || s.P99 > 100 {
		t.Errorf("summary quantiles = %+v", s)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	var zero Summary
	if NewHistogram(0, 1, 4).Summary() != zero {
		t.Error("empty histogram must summarize to the zero Summary")
	}
	if NewLogHistogram(10).Summary() != zero {
		t.Error("empty log histogram must summarize to the zero Summary")
	}
}

func TestHistogramProbabilitiesSumToOne(t *testing.T) {
	h := NewHistogram(0, 1, 8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		h.Add(rng.Float64())
	}
	for _, eps := range []float64{0, 0.5} {
		p := h.Probabilities(eps)
		var sum float64
		for _, v := range p {
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("eps=%v: probabilities sum to %v", eps, sum)
		}
	}
	// Empty histogram: uniform.
	e := NewHistogram(0, 1, 4)
	p := e.Probabilities(0)
	for _, v := range p {
		if !almostEqual(v, 0.25, 1e-12) {
			t.Errorf("empty hist probabilities = %v", p)
		}
	}
}

func TestPSIDetectsShift(t *testing.T) {
	ref := NewHistogram(0, 100, 20)
	same := NewHistogram(0, 100, 20)
	shifted := NewHistogram(0, 100, 20)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		ref.Add(rng.NormFloat64()*10 + 30)
		same.Add(rng.NormFloat64()*10 + 30)
		shifted.Add(rng.NormFloat64()*10 + 70)
	}
	if psi := ref.PSI(same); psi > 0.05 {
		t.Errorf("same-distribution PSI = %v, want < 0.05", psi)
	}
	if psi := ref.PSI(shifted); psi < 0.25 {
		t.Errorf("shifted PSI = %v, want > 0.25", psi)
	}
}

func TestPSIShapeMismatchPanics(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 1, 5)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch should panic")
		}
	}()
	a.PSI(b)
}

func TestHistogramConstructorPanics(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		n      int
	}{{0, 1, 0}, {1, 1, 4}, {2, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) should panic", c.lo, c.hi, c.n)
				}
			}()
			NewHistogram(c.lo, c.hi, c.n)
		}()
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(20)
	for _, x := range []float64{0.5, 1, 3, 1000, 1 << 25} {
		h.Add(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	// 0.5 in zero bucket; 1 in [1,2); 3 in [2,4); 1000 in [512,1024);
	// 1<<25 clamps to top bin.
	if h.zero != 1 || h.bins[0] != 1 || h.bins[1] != 1 || h.bins[9] != 1 || h.bins[19] != 1 {
		t.Errorf("buckets: zero=%d bins=%v", h.zero, h.bins)
	}
}

func TestLogHistogramQuantile(t *testing.T) {
	h := NewLogHistogram(30)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		h.Add(rng.ExpFloat64() * 100)
	}
	p50 := h.Quantile(0.5)
	// Exponential(mean 100) median is ~69.3. Log buckets are coarse;
	// accept the containing power-of-two range.
	if p50 < 32 || p50 > 160 {
		t.Errorf("p50 = %v, want within [32,160]", p50)
	}
	if h.Quantile(0.99) <= p50 {
		t.Error("p99 should exceed p50")
	}
	h.Reset()
	if h.Count() != 0 || !math.IsNaN(h.Quantile(0.5)) {
		t.Error("reset failed")
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a := NewLogHistogram(20)
	b := NewLogHistogram(20)
	a.Add(0.5)
	a.Add(100)
	b.Add(200)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if !almostEqual(a.Mean(), 300.5/3, 1e-12) {
		t.Errorf("merged mean = %v", a.Mean())
	}
	if err := a.Merge(NewLogHistogram(10)); err == nil {
		t.Error("maxExp mismatch should error")
	}
}

func TestLogHistogramMaxExpPanics(t *testing.T) {
	for _, n := range []int{0, -1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("maxExp=%d should panic", n)
				}
			}()
			NewLogHistogram(n)
		}()
	}
}
