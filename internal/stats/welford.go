package stats

import "math"

// Welford accumulates count, mean, and variance of a stream using
// Welford's online algorithm. The zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// Variance returns the unbiased sample variance (n-1 denominator).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Reset clears the accumulator.
func (w *Welford) Reset() { *w = Welford{} }
