package stats

import (
	"math"
	"sort"
)

// KSResult holds the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the supremum distance between the two
	// empirical CDFs, in [0, 1].
	D float64
	// PValue is the asymptotic two-sided p-value (Kolmogorov
	// distribution approximation). Small p-values indicate the samples
	// come from different distributions.
	PValue float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// KSTest runs a two-sample KS test on a and b. The inputs are not
// modified. With an empty sample the result is D=0, p=1.
func KSTest(a, b []float64) KSResult {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{D: 0, PValue: 1, N1: len(a), N2: len(b)}
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	return ksSorted(sa, sb)
}

// KSTestSorted is KSTest for inputs that are already sorted ascending;
// it avoids the copy and sort.
func KSTestSorted(a, b []float64) KSResult {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{D: 0, PValue: 1, N1: len(a), N2: len(b)}
	}
	return ksSorted(a, b)
}

func ksSorted(a, b []float64) KSResult {
	n1, n2 := len(a), len(b)
	var i, j int
	var d float64
	for i < n1 && j < n2 {
		x := a[i]
		y := b[j]
		if x <= y {
			for i < n1 && a[i] == x {
				i++
			}
		}
		if y <= x {
			for j < n2 && b[j] == y {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, PValue: ksProb(lambda), N1: n1, N2: n2}
}

// ksProb evaluates the Kolmogorov distribution tail Q_KS(lambda)
// = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	l2 := -2 * lambda * lambda
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(l2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	return Clamp(2*sum, 0, 1)
}

// JainIndex computes Jain's fairness index over per-entity allocations:
// (sum x)^2 / (n * sum x^2). It is 1 for perfect fairness and 1/n when a
// single entity receives everything. Used by P6 fairness properties.
func JainIndex(alloc []float64) float64 {
	if len(alloc) == 0 {
		return 1
	}
	var s, s2 float64
	for _, x := range alloc {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 1
	}
	return s * s / (float64(len(alloc)) * s2)
}
