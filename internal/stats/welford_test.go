package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("count = %d, want 8", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	// Sample variance with n-1: sum((x-5)^2) = 32, 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Errorf("single obs: mean=%v var=%v", w.Mean(), w.Variance())
	}
	if w.Min() != 3.5 || w.Max() != 3.5 {
		t.Errorf("single obs min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Count() != 0 || w.Mean() != 0 {
		t.Error("reset did not clear state")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*10 + 3
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged var = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max mismatch")
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b) // empty into empty
	if a.Count() != 0 {
		t.Fatal("empty merge should stay empty")
	}
	b.Add(5)
	a.Merge(b) // non-empty into empty
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty should copy")
	}
	var c Welford
	a.Merge(c) // empty into non-empty
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merging empty should be a no-op")
	}
}

func TestWelfordPropertyMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range xs {
			if !IsFinite(x) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			n++
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if n == 0 {
			return true
		}
		return w.Mean() >= lo-1e-6 && w.Mean() <= hi+1e-6 && w.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should be uninitialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first Add should seed value, got %v", e.Value())
	}
	for i := 0; i < 100; i++ {
		e.Add(4)
	}
	if !almostEqual(e.Value(), 4, 1e-9) {
		t.Errorf("EWMA should converge to 4, got %v", e.Value())
	}
	e.Reset()
	if e.Initialized() || e.Value() != 0 {
		t.Error("reset failed")
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v should panic", alpha)
				}
			}()
			NewEWMA(alpha)
		}()
	}
}

func TestEWMVTracksJitter(t *testing.T) {
	steady := NewEWMV(0.1)
	noisy := NewEWMV(0.1)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		steady.Add(5)
		noisy.Add(5 + rng.NormFloat64()*3)
	}
	if steady.Variance() >= noisy.Variance() {
		t.Errorf("steady variance %v should be < noisy %v", steady.Variance(), noisy.Variance())
	}
	if !almostEqual(noisy.Mean(), 5, 0.2) {
		t.Errorf("noisy mean = %v, want ~5", noisy.Mean())
	}
}
