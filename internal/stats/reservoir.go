package stats

import "math/rand"

// Reservoir keeps a uniform random sample of size k from a stream using
// Algorithm R. It is used to retain representative inputs for RETRAIN
// actions without unbounded memory.
type Reservoir struct {
	sample []float64
	k      int
	n      uint64
	rng    *rand.Rand
}

// NewReservoir returns a reservoir sampler of capacity k seeded
// deterministically.
func NewReservoir(k int, seed int64) *Reservoir {
	if k <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{
		sample: make([]float64, 0, k),
		k:      k,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.n++
	if len(r.sample) < r.k {
		r.sample = append(r.sample, x)
		return
	}
	if j := r.rng.Int63n(int64(r.n)); j < int64(r.k) {
		r.sample[j] = x
	}
}

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	return append([]float64(nil), r.sample...)
}

// Seen returns the total number of observations offered.
func (r *Reservoir) Seen() uint64 { return r.n }

// Reset clears the reservoir (the RNG state is kept).
func (r *Reservoir) Reset() {
	r.sample = r.sample[:0]
	r.n = 0
}

// VecReservoir is a reservoir sampler over feature vectors, retaining
// whole model inputs (e.g. for retraining on out-of-distribution data).
type VecReservoir struct {
	sample [][]float64
	k      int
	n      uint64
	rng    *rand.Rand
}

// NewVecReservoir returns a vector reservoir of capacity k.
func NewVecReservoir(k int, seed int64) *VecReservoir {
	if k <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &VecReservoir{
		sample: make([][]float64, 0, k),
		k:      k,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Add offers one vector; the vector is copied.
func (r *VecReservoir) Add(v []float64) {
	r.n++
	cp := append([]float64(nil), v...)
	if len(r.sample) < r.k {
		r.sample = append(r.sample, cp)
		return
	}
	if j := r.rng.Int63n(int64(r.n)); j < int64(r.k) {
		r.sample[j] = cp
	}
}

// Sample returns the retained vectors (shared backing arrays; callers
// must not mutate them).
func (r *VecReservoir) Sample() [][]float64 { return r.sample }

// Seen returns the total number of vectors offered.
func (r *VecReservoir) Seen() uint64 { return r.n }
