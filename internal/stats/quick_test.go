package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// sanitize maps arbitrary quick-generated floats into a bounded, finite
// range suitable for streaming estimators.
func sanitize(xs []float64) []float64 {
	out := xs[:0]
	for _, x := range xs {
		if !IsFinite(x) {
			continue
		}
		out = append(out, math.Mod(x, 1e6))
	}
	return out
}

func TestQuickP2WithinSampleRange(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		p := 0.05 + float64(pRaw%90)/100
		est := NewP2(p)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			est.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		v := est.Value()
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRateWindowBounds(t *testing.T) {
	f := func(bits []bool, capRaw uint8) bool {
		w := NewRateWindow(int(capRaw%32) + 1)
		for _, b := range bits {
			w.Add(b)
			if r := w.Rate(); r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-1e6, 1e6, 32)
		for _, x := range sanitize(raw) {
			h.Add(x)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := h.Quantile(p)
			if q < prev-1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJainIndexBounds(t *testing.T) {
	f := func(raw []float64) bool {
		// Jain's index is defined for non-negative allocations.
		alloc := make([]float64, 0, len(raw))
		for _, x := range sanitize(raw) {
			alloc = append(alloc, math.Abs(x))
		}
		j := JainIndex(alloc)
		if len(alloc) == 0 {
			return j == 1
		}
		return j >= 1/float64(len(alloc))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKSStatisticBounds(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a, b := sanitize(rawA), sanitize(rawB)
		r := KSTest(a, b)
		return r.D >= 0 && r.D <= 1 && r.PValue >= 0 && r.PValue <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWelfordVarianceNonNegative(t *testing.T) {
	f := func(raw []float64) bool {
		var w Welford
		for _, x := range sanitize(raw) {
			w.Add(x)
		}
		return w.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickEWMABounded(t *testing.T) {
	f := func(raw []float64, aRaw uint8) bool {
		xs := sanitize(raw)
		if len(xs) == 0 {
			return true
		}
		alpha := 0.01 + float64(aRaw%99)/100
		e := NewEWMA(alpha)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			e.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			// An EWMA is a convex combination of observations.
			if e.Value() < lo-1e-6 || e.Value() > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
