package stats

// EWMA is an exponentially weighted moving average. The zero value is
// invalid; use NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
// Larger alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation and returns the updated average.
func (e *EWMA) Add(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value += e.alpha * (x - e.value)
	return e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.init }

// Reset clears the average.
func (e *EWMA) Reset() { e.value, e.init = 0, false }

// EWMV tracks an exponentially weighted mean and variance pair, used by
// robustness properties to detect output jitter.
type EWMV struct {
	alpha    float64
	mean     float64
	variance float64
	init     bool
}

// NewEWMV returns an exponentially weighted mean/variance tracker.
func NewEWMV(alpha float64) *EWMV {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMV alpha must be in (0, 1]")
	}
	return &EWMV{alpha: alpha}
}

// Add incorporates one observation.
func (e *EWMV) Add(x float64) {
	if !e.init {
		e.mean = x
		e.init = true
		return
	}
	d := x - e.mean
	incr := e.alpha * d
	e.mean += incr
	e.variance = (1 - e.alpha) * (e.variance + d*incr)
}

// Mean returns the exponentially weighted mean.
func (e *EWMV) Mean() float64 { return e.mean }

// Variance returns the exponentially weighted variance.
func (e *EWMV) Variance() float64 { return e.variance }
