package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowBasics(t *testing.T) {
	w := NewWindow(3)
	if w.Len() != 0 || w.Full() || w.Mean() != 0 {
		t.Fatal("fresh window state wrong")
	}
	w.Add(1)
	w.Add(2)
	w.Add(3)
	if !w.Full() || w.Sum() != 6 || w.Mean() != 2 {
		t.Errorf("sum=%v mean=%v", w.Sum(), w.Mean())
	}
	ev, full := w.Add(10)
	if !full || ev != 1 {
		t.Errorf("evicted = %v (%v), want 1", ev, full)
	}
	if w.Sum() != 15 {
		t.Errorf("sum after evict = %v, want 15", w.Sum())
	}
	vals := w.Values()
	if len(vals) != 3 || vals[0] != 2 || vals[1] != 3 || vals[2] != 10 {
		t.Errorf("values = %v", vals)
	}
}

func TestWindowMinMaxSliding(t *testing.T) {
	w := NewWindow(3)
	seq := []float64{5, 1, 4, 2, 8, 3, 3, 0, 9}
	for i, x := range seq {
		w.Add(x)
		lo := i - 2
		if lo < 0 {
			lo = 0
		}
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		for _, v := range seq[lo : i+1] {
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
		}
		if w.Min() != wantMin || w.Max() != wantMax {
			t.Errorf("i=%d: min/max = %v/%v, want %v/%v", i, w.Min(), w.Max(), wantMin, wantMax)
		}
	}
}

func TestWindowMinMaxRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewWindow(16)
	var hist []float64
	for i := 0; i < 5000; i++ {
		x := rng.Float64()*200 - 100
		w.Add(x)
		hist = append(hist, x)
		lo := len(hist) - 16
		if lo < 0 {
			lo = 0
		}
		wantMin, wantMax := math.Inf(1), math.Inf(-1)
		var wantSum float64
		for _, v := range hist[lo:] {
			wantMin = math.Min(wantMin, v)
			wantMax = math.Max(wantMax, v)
			wantSum += v
		}
		if w.Min() != wantMin || w.Max() != wantMax {
			t.Fatalf("i=%d min/max mismatch", i)
		}
		if math.Abs(w.Sum()-wantSum) > 1e-6 {
			t.Fatalf("i=%d sum drift: %v vs %v", i, w.Sum(), wantSum)
		}
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	w.Add(1)
	w.Add(2)
	w.Reset()
	if w.Len() != 0 || w.Sum() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Error("reset failed")
	}
	w.Add(7)
	if w.Min() != 7 || w.Max() != 7 {
		t.Error("window unusable after reset")
	}
}

func TestWindowCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewWindow(0)
}

func TestWindowPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		w := NewWindow(capacity)
		ok := true
		for _, x := range xs {
			// Bound magnitudes: the running sum loses precision (and can
			// overflow) near MaxFloat64, which is outside the intended
			// operating range for window aggregates.
			if !IsFinite(x) || math.Abs(x) > 1e12 {
				continue
			}
			w.Add(x)
			tol := 1e-6 * (1 + math.Abs(w.Min()) + math.Abs(w.Max()))
			if w.Len() > 0 && (w.Mean() < w.Min()-tol || w.Mean() > w.Max()+tol) {
				ok = false
			}
			if w.Len() > capacity {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateWindow(t *testing.T) {
	r := NewRateWindow(4)
	if r.Rate() != 0 {
		t.Error("empty rate should be 0")
	}
	r.Add(true)
	r.Add(true)
	r.Add(false)
	if !almostEqual(r.Rate(), 2.0/3.0, 1e-12) {
		t.Errorf("rate = %v", r.Rate())
	}
	r.Add(false)
	r.Add(false) // evicts first true
	if !almostEqual(r.Rate(), 0.25, 1e-12) {
		t.Errorf("rate after slide = %v, want 0.25", r.Rate())
	}
	if r.Len() != 4 {
		t.Errorf("len = %d", r.Len())
	}
	r.Reset()
	if r.Rate() != 0 || r.Len() != 0 {
		t.Error("reset failed")
	}
}

func TestRateWindowSlidingExact(t *testing.T) {
	r := NewRateWindow(8)
	var hist []bool
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		v := rng.Intn(3) == 0
		r.Add(v)
		hist = append(hist, v)
		lo := len(hist) - 8
		if lo < 0 {
			lo = 0
		}
		var c int
		for _, b := range hist[lo:] {
			if b {
				c++
			}
		}
		want := float64(c) / float64(len(hist)-lo)
		if !almostEqual(r.Rate(), want, 1e-12) {
			t.Fatalf("i=%d rate=%v want %v", i, r.Rate(), want)
		}
	}
}
