package stats

import "sort"

// P2 estimates a single quantile of a stream without storing the
// observations, using the P² algorithm (Jain & Chlamtac, 1985). It keeps
// five markers whose positions are nudged toward ideal positions with a
// piecewise-parabolic update. Accuracy is typically within a fraction of
// a percent for smooth distributions; for exact small-sample quantiles
// use Quantile on a materialized slice.
type P2 struct {
	p       float64    // target quantile in (0,1)
	q       [5]float64 // marker heights
	n       [5]int     // marker positions (1-based counts)
	np      [5]float64 // desired marker positions
	dn      [5]float64 // position increments
	count   int
	initial [5]float64
}

// NewP2 returns a P² estimator for quantile p in (0, 1).
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	e := &P2{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add incorporates one observation.
func (e *P2) Add(x float64) {
	if e.count < 5 {
		e.initial[e.count] = x
		e.count++
		if e.count == 5 {
			s := e.initial
			sort.Float64s(s[:])
			e.q = s
			e.n = [5]int{1, 2, 3, 4, 5}
			for i := range e.np {
				e.np[i] = 1 + 4*e.dn[i]
			}
		}
		return
	}
	e.count++

	// Find cell k such that q[k] <= x < q[k+1], adjusting extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}

	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := e.np[i] - float64(e.n[i])
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1
			if d < 0 {
				s = -1
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.n[i] += s
		}
	}
}

func (e *P2) parabolic(i, s int) float64 {
	fs := float64(s)
	ni := float64(e.n[i])
	nm := float64(e.n[i-1])
	np := float64(e.n[i+1])
	return e.q[i] + fs/(np-nm)*((ni-nm+fs)*(e.q[i+1]-e.q[i])/(np-ni)+
		(np-ni-fs)*(e.q[i]-e.q[i-1])/(ni-nm))
}

func (e *P2) linear(i, s int) float64 {
	fs := float64(s)
	return e.q[i] + fs*(e.q[i+s]-e.q[i])/(float64(e.n[i+s])-float64(e.n[i]))
}

// Count returns the number of observations added.
func (e *P2) Count() int { return e.count }

// Value returns the current quantile estimate. With fewer than five
// observations it returns the exact sample quantile of what has been seen.
func (e *P2) Value() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		s := make([]float64, e.count)
		copy(s, e.initial[:e.count])
		sort.Float64s(s)
		return Quantile(s, e.p)
	}
	return e.q[2]
}

// Quantile returns the p-quantile of sorted (ascending) using linear
// interpolation between closest ranks. sorted must be non-empty and
// already sorted; p is clamped to [0, 1].
func Quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	p = Clamp(p, 0, 1)
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
