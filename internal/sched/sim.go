package sched

import (
	"fmt"
	"math"
	"sort"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/stats"
	"guardrails/internal/trace"
)

// Feature-store keys and hook sites the simulator publishes.
const (
	// KeyMaxWaitMS is the longest current ready-queue wait in
	// milliseconds — the P6 starvation signal.
	KeyMaxWaitMS = "sched_max_wait_ms"
	// KeyReadyLen is the current ready-queue length.
	KeyReadyLen = "sched_ready_len"
	// HookDispatch fires on each dispatch with the picked job's current
	// wait in milliseconds.
	HookDispatch = "sched_pick"
)

// SimConfig parameterizes a scheduler simulation.
type SimConfig struct {
	// Quantum is the preemption interval.
	Quantum kernel.Time
	// ArrivalRate is jobs per simulated second.
	ArrivalRate float64
	// MeanSizeMS is the mean job size in milliseconds; sizes are
	// Pareto(alpha=1.5) with this mean, a standard heavy-tailed model.
	MeanSizeMS float64
	// HintNoise is the multiplicative lognormal noise sigma on the size
	// hint (0 = oracle hints).
	HintNoise float64
	// Seed drives the arrival and size draws.
	Seed int64
}

// DefaultSimConfig returns a moderately loaded configuration (~70%
// utilization).
func DefaultSimConfig(seed int64) SimConfig {
	return SimConfig{
		Quantum:     kernel.Millisecond,
		ArrivalRate: 140,
		MeanSizeMS:  5,
		HintNoise:   0.3,
		Seed:        seed,
	}
}

// Metrics summarize one simulation run.
type Metrics struct {
	Completed     int
	MeanResponse  kernel.Time // completion - arrival, mean over completed
	P99Response   kernel.Time
	MeanSlowdown  float64     // response / size
	MaxReadyWait  kernel.Time // worst instantaneous wait observed
	StarvedEvents int         // dispatches where some ready job waited > 100ms
	JainCPU       float64     // fairness of CPU received across completed jobs, per unit size
}

// Sim is the scheduler simulation, driven by the shared simulated
// kernel so guardrail monitors interleave with it.
type Sim struct {
	k      *kernel.Kernel
	store  *featurestore.Store
	cfg    SimConfig
	picker func() Picker

	ready     []*Job
	running   *Job
	completed []*Job
	nextID    int

	maxWaitID  featurestore.ID
	readyLenID featurestore.ID

	maxObservedWait kernel.Time
	starvedEvents   int
}

// NewSim builds a simulation. pickerProvider is consulted on every
// dispatch, so a guardrail REPLACE that swaps the registry's current
// picker takes effect immediately.
func NewSim(k *kernel.Kernel, store *featurestore.Store, cfg SimConfig, pickerProvider func() Picker) (*Sim, error) {
	if cfg.Quantum <= 0 {
		return nil, fmt.Errorf("sched: quantum must be positive")
	}
	if cfg.ArrivalRate <= 0 || cfg.MeanSizeMS <= 0 {
		return nil, fmt.Errorf("sched: arrival rate and size must be positive")
	}
	if pickerProvider == nil {
		return nil, fmt.Errorf("sched: nil picker provider")
	}
	return &Sim{
		k: k, store: store, cfg: cfg, picker: pickerProvider,
		maxWaitID:  store.Intern(KeyMaxWaitMS),
		readyLenID: store.Intern(KeyReadyLen),
	}, nil
}

// GenerateJobs pre-draws n jobs with Poisson arrivals and Pareto sizes.
func GenerateJobs(cfg SimConfig, n int) []*Job {
	rng := trace.NewRand(trace.Split(cfg.Seed, "sched-jobs"))
	arrivals := trace.NewPoisson(trace.Split(cfg.Seed, "sched-arrivals"), cfg.ArrivalRate, 0)
	jobs := make([]*Job, n)
	// Pareto(1.5) with mean m has xmin = m/3 (mean = alpha*xmin/(alpha-1)).
	xmin := cfg.MeanSizeMS / 3
	for i := range jobs {
		at := arrivals.Next()
		sizeMS := trace.Pareto(rng, xmin, 1.5)
		if sizeMS > 1000 {
			sizeMS = 1000 // cap the tail so runs terminate promptly
		}
		hint := math.Log2(sizeMS + 1)
		if cfg.HintNoise > 0 {
			hint *= trace.LogNormal(rng, 0, cfg.HintNoise)
		}
		jobs[i] = &Job{
			ID:         i,
			Arrival:    at,
			Size:       kernel.Time(sizeMS * float64(kernel.Millisecond)),
			SizeHint:   hint,
			Remaining:  kernel.Time(sizeMS * float64(kernel.Millisecond)),
			LastServed: at,
		}
	}
	return jobs
}

// Start schedules job admissions on the kernel. Call k.Run (or RunUntil)
// afterwards to execute the simulation.
func (s *Sim) Start(jobs []*Job) {
	for _, j := range jobs {
		j := j
		s.k.At(j.Arrival, func() { s.admit(j) })
	}
}

func (s *Sim) admit(j *Job) {
	s.ready = append(s.ready, j)
	s.publish()
	if s.running == nil {
		s.dispatch()
	}
}

func (s *Sim) dispatch() {
	if len(s.ready) == 0 {
		s.running = nil
		return
	}
	now := s.k.Now()

	// Starvation accounting across the whole ready queue.
	var worst kernel.Time
	for _, j := range s.ready {
		if w := j.Wait(now); w > worst {
			worst = w
		}
	}
	if worst > s.maxObservedWait {
		s.maxObservedWait = worst
	}
	if worst > 100*kernel.Millisecond {
		s.starvedEvents++
	}

	idx := s.picker().Pick(now, s.ready)
	j := s.ready[idx]
	s.ready = append(s.ready[:idx], s.ready[idx+1:]...)
	s.running = j
	s.k.Fire(HookDispatch, float64(j.Wait(now))/float64(kernel.Millisecond))
	s.publish()

	run := s.cfg.Quantum
	if j.Remaining < run {
		run = j.Remaining
	}
	s.k.After(run, func() { s.quantumEnd(j, run) })
}

func (s *Sim) quantumEnd(j *Job, ran kernel.Time) {
	now := s.k.Now()
	j.CPUUsed += ran
	j.Remaining -= ran
	j.LastServed = now
	if j.Remaining <= 0 {
		j.Completed = now
		s.completed = append(s.completed, j)
	} else {
		s.ready = append(s.ready, j)
	}
	s.dispatch()
}

// publish refreshes the feature-store signals.
func (s *Sim) publish() {
	now := s.k.Now()
	var worst kernel.Time
	for _, j := range s.ready {
		if w := j.Wait(now); w > worst {
			worst = w
		}
	}
	s.store.SaveID(s.maxWaitID, float64(worst)/float64(kernel.Millisecond))
	s.store.SaveID(s.readyLenID, float64(len(s.ready)))
}

// Completed returns the finished jobs.
func (s *Sim) Completed() []*Job { return s.completed }

// ReadyLen returns the current ready-queue length.
func (s *Sim) ReadyLen() int { return len(s.ready) }

// Metrics computes summary metrics over completed jobs.
func (s *Sim) Metrics() Metrics {
	m := Metrics{
		Completed:     len(s.completed),
		MaxReadyWait:  s.maxObservedWait,
		StarvedEvents: s.starvedEvents,
	}
	if len(s.completed) == 0 {
		return m
	}
	responses := make([]float64, len(s.completed))
	perUnit := make([]float64, len(s.completed))
	var sumResp, sumSlow float64
	for i, j := range s.completed {
		r := j.Completed - j.Arrival
		responses[i] = float64(r)
		sumResp += float64(r)
		slow := float64(r) / float64(j.Size)
		sumSlow += slow
		perUnit[i] = 1 / slow // service rate per unit demand; equal under perfect fairness
	}
	sort.Float64s(responses)
	m.MeanResponse = kernel.Time(sumResp / float64(len(responses)))
	m.P99Response = kernel.Time(stats.Quantile(responses, 0.99))
	m.MeanSlowdown = sumSlow / float64(len(responses))
	m.JainCPU = stats.JainIndex(perUnit)
	return m
}
