package sched

import (
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

func runSim(t *testing.T, picker Picker, cfg SimConfig, n int) (*Sim, Metrics) {
	t.Helper()
	k := kernel.New()
	st := featurestore.New()
	s, err := NewSim(k, st, cfg, func() Picker { return picker })
	if err != nil {
		t.Fatal(err)
	}
	jobs := GenerateJobs(cfg, n)
	s.Start(jobs)
	k.Run()
	return s, s.Metrics()
}

func TestSimValidation(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	cfg := DefaultSimConfig(1)
	cfg.Quantum = 0
	if _, err := NewSim(k, st, cfg, func() Picker { return NewCFS() }); err == nil {
		t.Error("zero quantum should error")
	}
	cfg = DefaultSimConfig(1)
	cfg.ArrivalRate = 0
	if _, err := NewSim(k, st, cfg, func() Picker { return NewCFS() }); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := NewSim(k, st, DefaultSimConfig(1), nil); err == nil {
		t.Error("nil provider should error")
	}
}

func TestGenerateJobsShape(t *testing.T) {
	cfg := DefaultSimConfig(2)
	jobs := GenerateJobs(cfg, 1000)
	if len(jobs) != 1000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	prev := kernel.Time(-1)
	var meanMS float64
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatal("arrivals not increasing")
		}
		prev = j.Arrival
		if j.Size <= 0 || j.Remaining != j.Size {
			t.Fatal("bad size initialization")
		}
		meanMS += float64(j.Size) / float64(kernel.Millisecond)
	}
	meanMS /= float64(len(jobs))
	// Pareto(1.5, mean 5ms) capped at 1s: mean near 5ms.
	if meanMS < 3 || meanMS > 9 {
		t.Errorf("mean size = %vms, want ~5ms", meanMS)
	}
	// Determinism.
	again := GenerateJobs(cfg, 1000)
	for i := range jobs {
		if jobs[i].Size != again[i].Size || jobs[i].Arrival != again[i].Arrival {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestAllJobsComplete(t *testing.T) {
	for _, p := range []Picker{NewCFS(), FIFO{}} {
		sim, m := runSim(t, p, DefaultSimConfig(3), 500)
		if m.Completed != 500 {
			t.Errorf("%s completed %d/500", p.Name(), m.Completed)
		}
		if sim.ReadyLen() != 0 {
			t.Errorf("%s left jobs ready", p.Name())
		}
		if m.MeanResponse <= 0 || m.MeanSlowdown < 1 {
			t.Errorf("%s metrics = %+v", p.Name(), m)
		}
	}
}

func TestCFSVruntimeSemantics(t *testing.T) {
	cfs := NewCFS()
	a := &Job{ID: 1, Arrival: 0}
	b := &Job{ID: 2, Arrival: 10}
	// Fresh jobs tie on vruntime; earliest arrival wins.
	if cfs.Pick(0, []*Job{a, b}) != 0 {
		t.Error("tie should go to earliest arrival")
	}
	// After a runs 2ms, b is behind and must be picked.
	a.CPUUsed = 2 * kernel.Millisecond
	if cfs.Pick(0, []*Job{a, b}) != 1 {
		t.Error("least-vruntime job not picked")
	}
	// A new arrival is normalized to the queue's min vruntime: it must
	// NOT win absolute priority over jobs that accumulated service.
	b.CPUUsed = 2 * kernel.Millisecond
	c := &Job{ID: 3, Arrival: 20}
	if got := cfs.Pick(0, []*Job{a, b, c}); got == 2 {
		t.Error("fresh arrival won absolute priority over served jobs")
	}
	// But once the old jobs run further, the newcomer gets its share.
	a.CPUUsed = 4 * kernel.Millisecond
	b.CPUUsed = 4 * kernel.Millisecond
	if cfs.Pick(0, []*Job{a, b, c}) != 2 {
		t.Error("normalized newcomer never scheduled")
	}
	if (FIFO{}).Pick(0, []*Job{a, b, c}) != 0 {
		t.Error("FIFO pick wrong")
	}
}

func trainedSJF(t *testing.T, seed int64) *LearnedSJF {
	t.Helper()
	cfg := DefaultSimConfig(seed)
	// Train on jobs completed under CFS.
	k := kernel.New()
	st := featurestore.New()
	s, err := NewSim(k, st, cfg, func() Picker { return NewCFS() })
	if err != nil {
		t.Fatal(err)
	}
	jobs := GenerateJobs(cfg, 2000)
	s.Start(jobs)
	k.Run()
	p := NewLearnedSJF(seed + 1)
	if _, err := p.Train(s.Completed()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLearnedSJFImprovesMeanResponse(t *testing.T) {
	p := trainedSJF(t, 10)
	cfg := DefaultSimConfig(11)
	cfg.ArrivalRate = 170 // heavier load exposes the SJF advantage
	_, sjf := runSim(t, p, cfg, 3000)
	_, fair := runSim(t, NewCFS(), cfg, 3000)
	if sjf.MeanResponse >= fair.MeanResponse {
		t.Errorf("learned SJF mean response %v should beat CFS %v",
			sjf.MeanResponse, fair.MeanResponse)
	}
}

func TestLearnedSJFStarvesLongJobs(t *testing.T) {
	p := trainedSJF(t, 20)
	cfg := DefaultSimConfig(21)
	cfg.ArrivalRate = 170
	_, sjf := runSim(t, p, cfg, 3000)
	_, fair := runSim(t, NewCFS(), cfg, 3000)
	if sjf.MaxReadyWait <= fair.MaxReadyWait {
		t.Errorf("learned SJF max wait %v should exceed CFS %v",
			sjf.MaxReadyWait, fair.MaxReadyWait)
	}
	if sjf.MaxReadyWait < 100*kernel.Millisecond {
		t.Errorf("learned SJF max wait %v should cross the 100ms starvation bound", sjf.MaxReadyWait)
	}
	if sjf.StarvedEvents == 0 {
		t.Error("no starvation events recorded under learned SJF")
	}
	if sjf.StarvedEvents <= fair.StarvedEvents {
		t.Errorf("SJF starvation events %d should exceed CFS %d",
			sjf.StarvedEvents, fair.StarvedEvents)
	}
}

func TestSimPublishesStoreSignals(t *testing.T) {
	k := kernel.New()
	st := featurestore.New()
	cfg := DefaultSimConfig(30)
	s, err := NewSim(k, st, cfg, func() Picker { return NewCFS() })
	if err != nil {
		t.Fatal(err)
	}
	var dispatches int
	k.Attach(HookDispatch, func(*kernel.Kernel, string, []float64) { dispatches++ })
	s.Start(GenerateJobs(cfg, 200))
	k.Run()
	if dispatches == 0 {
		t.Error("dispatch hook never fired")
	}
	if _, ok := st.Lookup(KeyMaxWaitMS); !ok {
		t.Error("max wait key not published")
	}
	if _, ok := st.Lookup(KeyReadyLen); !ok {
		t.Error("ready length key not published")
	}
}

func TestPickerProviderSwapMidRun(t *testing.T) {
	// Start with learned SJF, then swap to CFS mid-run via the provider;
	// the swap must take effect (this is what a REPLACE action does).
	p := trainedSJF(t, 40)
	var current Picker = p
	k := kernel.New()
	st := featurestore.New()
	cfg := DefaultSimConfig(41)
	cfg.ArrivalRate = 170
	s, err := NewSim(k, st, cfg, func() Picker { return current })
	if err != nil {
		t.Fatal(err)
	}
	jobs := GenerateJobs(cfg, 3000)
	s.Start(jobs)
	swapped := false
	k.Every(0, 100*kernel.Millisecond, 0, func(now kernel.Time) {
		if now >= 5*kernel.Second && !swapped {
			current = NewCFS()
			swapped = true
		}
	})
	k.RunUntil(60 * kernel.Second)
	if !swapped {
		t.Fatal("swap never happened")
	}
	if s.Metrics().Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestPickerNames(t *testing.T) {
	if NewCFS().Name() != "cfs" || (FIFO{}).Name() != "fifo" || NewLearnedSJF(1).Name() != "learned-sjf" {
		t.Error("picker names wrong")
	}
}

func TestLearnedSJFTrainValidation(t *testing.T) {
	if _, err := NewLearnedSJF(1).Train(nil); err == nil {
		t.Error("empty training set should error")
	}
}
