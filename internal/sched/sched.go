// Package sched simulates a single-CPU scheduler with pluggable
// pickers: a CFS-like fair baseline, FIFO, and a learned
// shortest-job-first picker that predicts remaining work with a small
// neural network. Learned SJF minimizes mean response time but starves
// long jobs under sustained load — the liveness failure the paper's P6
// property ("no ready task should be starved for more than 100ms")
// detects and corrects.
package sched

import (
	"fmt"
	"math"

	"guardrails/internal/kernel"
	"guardrails/internal/nn"
)

// Job is one schedulable unit of work.
type Job struct {
	// ID is unique per simulation.
	ID int
	// Arrival is when the job became ready.
	Arrival kernel.Time
	// Size is the job's total CPU demand (ground truth).
	Size kernel.Time
	// SizeHint is an observable, noisy correlate of Size (e.g. request
	// type), the learned picker's main feature.
	SizeHint float64
	// Remaining is the unserved CPU demand.
	Remaining kernel.Time
	// CPUUsed is the service received so far.
	CPUUsed kernel.Time
	// LastServed is the later of arrival and the end of the job's most
	// recent quantum; now - LastServed is its current ready wait.
	LastServed kernel.Time
	// Completed is the completion time (0 while in the system).
	Completed kernel.Time
}

// Wait returns the job's current ready-queue wait at time now.
func (j *Job) Wait(now kernel.Time) kernel.Time { return now - j.LastServed }

// Picker selects the next job to run from the ready queue.
type Picker interface {
	// Name identifies the picker.
	Name() string
	// Pick returns the index into ready of the job to run next. ready
	// is non-empty.
	Pick(now kernel.Time, ready []*Job) int
}

// CFS approximates Linux CFS: each job carries a virtual runtime and the
// picker runs the job with the least vruntime. As in the real scheduler,
// a newly arrived job's vruntime starts at the queue's current minimum
// (not at zero) so fresh arrivals cannot perpetually preempt old jobs.
type CFS struct {
	offset map[int]kernel.Time
}

// NewCFS returns a fair picker.
func NewCFS() *CFS { return &CFS{offset: make(map[int]kernel.Time)} }

// Name identifies the picker.
func (p *CFS) Name() string { return "cfs" }

func (p *CFS) vruntime(j *Job) kernel.Time { return j.CPUUsed + p.offset[j.ID] }

// Pick implements Picker.
func (p *CFS) Pick(_ kernel.Time, ready []*Job) int {
	// Assign entry offsets to first-seen jobs: min vruntime of known
	// ready jobs.
	var minVr kernel.Time
	seenAny := false
	for _, j := range ready {
		if _, ok := p.offset[j.ID]; !ok {
			continue
		}
		if vr := p.vruntime(j); !seenAny || vr < minVr {
			minVr, seenAny = vr, true
		}
	}
	for _, j := range ready {
		if _, ok := p.offset[j.ID]; !ok {
			p.offset[j.ID] = minVr - j.CPUUsed
		}
	}
	best := 0
	for i := 1; i < len(ready); i++ {
		a, b := ready[i], ready[best]
		av, bv := p.vruntime(a), p.vruntime(b)
		if av < bv || (av == bv && a.Arrival < b.Arrival) {
			best = i
		}
	}
	return best
}

// FIFO runs jobs in arrival order.
type FIFO struct{}

// Name identifies the picker.
func (FIFO) Name() string { return "fifo" }

// Pick implements Picker.
func (FIFO) Pick(_ kernel.Time, ready []*Job) int {
	best := 0
	for i := 1; i < len(ready); i++ {
		if ready[i].Arrival < ready[best].Arrival {
			best = i
		}
	}
	return best
}

// LearnedSJF predicts each ready job's remaining work with an MLP and
// runs the predicted-shortest one. It is the package's learned policy:
// excellent mean response time, no liveness guarantee.
type LearnedSJF struct {
	net *nn.Network
}

// NewLearnedSJF returns an untrained learned picker.
func NewLearnedSJF(seed int64) *LearnedSJF {
	return &LearnedSJF{
		net: nn.New(nn.Config{
			Layers: []int{2, 8, 1},
			Hidden: nn.ReLU,
			Output: nn.Linear,
			Loss:   nn.MSE,
			Seed:   seed,
		}),
	}
}

// Name identifies the picker.
func (p *LearnedSJF) Name() string { return "learned-sjf" }

// pickFeatures is the decision-time input: the size hint and the CPU
// already received (the predictor learns that remaining work falls as a
// job accumulates service).
func pickFeatures(j *Job) []float64 {
	return []float64{
		j.SizeHint,
		math.Log2(float64(j.CPUUsed)/float64(kernel.Millisecond) + 1),
	}
}

// PredictRemaining returns the model's estimate of the job's remaining
// work as log2(ms + 1).
func (p *LearnedSJF) PredictRemaining(j *Job) float64 {
	return p.net.Forward(pickFeatures(j))[0]
}

// Pick implements Picker.
func (p *LearnedSJF) Pick(_ kernel.Time, ready []*Job) int {
	best := 0
	bestScore := p.PredictRemaining(ready[0])
	for i := 1; i < len(ready); i++ {
		if s := p.PredictRemaining(ready[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Train fits the remaining-work predictor on completed jobs. For each
// job it synthesizes decision-time snapshots at several progress points
// f (CPUUsed = f·Size), each labelled with the true remaining work —
// the same distribution the picker queries at run time.
func (p *LearnedSJF) Train(jobs []*Job) (float64, error) {
	if len(jobs) == 0 {
		return 0, fmt.Errorf("sched: no training jobs")
	}
	fractions := []float64{0, 0.25, 0.5, 0.75}
	inputs := make([][]float64, 0, len(jobs)*len(fractions))
	targets := make([][]float64, 0, len(jobs)*len(fractions))
	for _, j := range jobs {
		sizeMS := float64(j.Size) / float64(kernel.Millisecond)
		for _, f := range fractions {
			inputs = append(inputs, []float64{
				j.SizeHint,
				math.Log2(sizeMS*f + 1),
			})
			targets = append(targets, []float64{math.Log2(sizeMS*(1-f) + 1)})
		}
	}
	return p.net.Train(inputs, targets, nn.TrainOpts{
		LearningRate: 0.05, Momentum: 0.9, BatchSize: 64, Epochs: 60, ShuffleSeed: 9,
	})
}
