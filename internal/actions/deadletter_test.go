package actions

import (
	"strings"
	"testing"

	"guardrails/internal/kernel"
)

func dl(t kernel.Time, g, a string) FailedAction {
	return FailedAction{Time: t, Guardrail: g, Action: a, Attempts: 3, Err: "boom"}
}

func TestDeadLetterRingOverwritesOldest(t *testing.T) {
	d := NewDeadLetter(3)
	for i := 0; i < 5; i++ {
		d.Add(dl(kernel.Time(i)*kernel.Second, "g", string(rune('a'+i))))
	}
	if d.Total() != 5 {
		t.Errorf("total = %d, want 5 (overwritten entries still counted)", d.Total())
	}
	got := d.Recent(10)
	if len(got) != 3 {
		t.Fatalf("retained = %d, want capacity 3", len(got))
	}
	// Oldest-first: entries 2, 3, 4 survive.
	for i, want := range []string{"c", "d", "e"} {
		if got[i].Action != want {
			t.Errorf("recent[%d] = %q, want %q", i, got[i].Action, want)
		}
	}
	// Recent(1) is the newest entry.
	last := d.Recent(1)
	if len(last) != 1 || last[0].Action != "e" {
		t.Errorf("Recent(1) = %+v", last)
	}
}

func TestDeadLetterByGuardrail(t *testing.T) {
	d := NewDeadLetter(8)
	d.Add(dl(0, "a", "REPORT"))
	d.Add(dl(0, "a", "RETRAIN(m)"))
	d.Add(dl(0, "b", "REPORT"))
	got := d.ByGuardrail()
	if got["a"] != 2 || got["b"] != 1 {
		t.Errorf("by guardrail = %v", got)
	}
}

func TestDeadLetterMinCapacityAndString(t *testing.T) {
	d := NewDeadLetter(0) // clamped to 1
	d.Add(dl(kernel.Second, "g1", "REPORT"))
	d.Add(dl(2*kernel.Second, "g1", "RETRAIN(linnos)"))
	got := d.Recent(5)
	if len(got) != 1 || got[0].Action != "RETRAIN(linnos)" {
		t.Fatalf("recent = %+v", got)
	}
	s := got[0].String()
	for _, want := range []string{"g1", "RETRAIN(linnos)", "3 attempt", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if d.Recent(0) != nil && len(d.Recent(0)) != 0 {
		t.Error("Recent(0) should be empty")
	}
}
