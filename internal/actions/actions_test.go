package actions

import (
	"errors"
	"strings"
	"testing"

	"guardrails/internal/kernel"
)

func TestReportLogAppendAndRecent(t *testing.T) {
	l := NewReportLog(3)
	if l.Total() != 0 || len(l.Recent(10)) != 0 {
		t.Fatal("fresh log not empty")
	}
	for i := 0; i < 5; i++ {
		l.Append(Violation{Time: kernel.Time(i), Guardrail: "g", Values: []float64{float64(i)}})
	}
	if l.Total() != 5 {
		t.Errorf("total = %d", l.Total())
	}
	recent := l.Recent(10)
	if len(recent) != 3 {
		t.Fatalf("recent = %d entries", len(recent))
	}
	// Oldest first: 2, 3, 4.
	for i, v := range recent {
		if v.Values[0] != float64(i+2) {
			t.Errorf("recent[%d] = %v", i, v.Values)
		}
	}
	two := l.Recent(2)
	if len(two) != 2 || two[0].Values[0] != 3 {
		t.Errorf("recent(2) = %v", two)
	}
}

func TestReportLogByGuardrail(t *testing.T) {
	l := NewReportLog(10)
	l.Append(Violation{Guardrail: "a"})
	l.Append(Violation{Guardrail: "b"})
	l.Append(Violation{Guardrail: "a"})
	by := l.ByGuardrail()
	if by["a"] != 2 || by["b"] != 1 {
		t.Errorf("by = %v", by)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Time: 2 * kernel.Second, Guardrail: "low-false-submit",
		Values: []float64{0.12}, Note: "rate spike"}
	s := v.String()
	for _, want := range []string{"low-false-submit", "0.12", "rate spike", "2.000s"} {
		if !strings.Contains(s, want) {
			t.Errorf("violation string %q missing %q", s, want)
		}
	}
}

func TestReportLogCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity should panic")
		}
	}()
	NewReportLog(0)
}

func TestRegistryDefineAndCurrent(t *testing.T) {
	r := NewRegistry()
	err := r.DefineSlot("io_predictor", map[string]any{"learned": 1, "baseline": 2}, "learned")
	if err != nil {
		t.Fatal(err)
	}
	name, val, err := r.Current("io_predictor")
	if err != nil || name != "learned" || val != 1 {
		t.Errorf("current = %q %v %v", name, val, err)
	}
	if _, _, err := r.Current("nope"); err == nil {
		t.Error("unknown slot should error")
	}
	if err := r.DefineSlot("io_predictor", map[string]any{"x": 1}, "x"); err == nil {
		t.Error("duplicate slot should error")
	}
	if err := r.DefineSlot("empty", nil, "x"); err == nil {
		t.Error("empty slot should error")
	}
	if err := r.DefineSlot("bad", map[string]any{"a": 1}, "b"); err == nil {
		t.Error("initial not in policies should error")
	}
	if got := r.Slots(); len(got) != 1 || got[0] != "io_predictor" {
		t.Errorf("slots = %v", got)
	}
}

func TestRegistryReplaceAndRestore(t *testing.T) {
	r := NewRegistry()
	if err := r.DefineSlot("s1", map[string]any{"learned": "L", "fallback": "F"}, "learned"); err != nil {
		t.Fatal(err)
	}
	if err := r.DefineSlot("s2", map[string]any{"learned": "L2", "fallback": "F2"}, "learned"); err != nil {
		t.Fatal(err)
	}
	if err := r.DefineSlot("s3", map[string]any{"other": "O"}, "other"); err != nil {
		t.Fatal(err)
	}
	n, err := r.Replace("learned", "fallback", 100)
	if err != nil || n != 2 {
		t.Fatalf("replace = %d, %v", n, err)
	}
	for _, s := range []string{"s1", "s2"} {
		name, _, _ := r.Current(s)
		if name != "fallback" {
			t.Errorf("%s current = %q", s, name)
		}
	}
	if name, _, _ := r.Current("s3"); name != "other" {
		t.Error("unrelated slot was touched")
	}
	// Idempotent: nothing currently "learned".
	n, err = r.Replace("learned", "fallback", 200)
	if err != nil || n != 0 {
		t.Errorf("second replace = %d, %v", n, err)
	}
	if _, err := r.Replace("x", "x", 0); err == nil {
		t.Error("identical policies should error")
	}
	// Restore.
	if err := r.Restore("s1", 300); err != nil {
		t.Fatal(err)
	}
	if name, _, _ := r.Current("s1"); name != "learned" {
		t.Errorf("restored current = %q", name)
	}
	if err := r.Restore("nope", 0); err == nil {
		t.Error("unknown slot restore should error")
	}
	h := r.History("s1")
	if len(h) != 2 || h[0].To != "fallback" || h[1].To != "learned" || h[1].Time != 300 {
		t.Errorf("history = %+v", h)
	}
	if r.History("nope") != nil {
		t.Error("unknown slot history should be nil")
	}
}

func TestRetrainerRateLimit(t *testing.T) {
	// Capacity 2, refill 1 token/s.
	r := NewRetrainer(2, 1)
	if !r.Request("m1", 0) {
		t.Fatal("first request rejected")
	}
	if !r.Request("m2", 0) {
		t.Fatal("second request rejected")
	}
	// Bucket empty: new model rejected.
	if r.Request("m3", 0) {
		t.Error("third request should be rate-limited")
	}
	// Duplicate of a queued model is accepted without a token.
	if !r.Request("m1", 0) {
		t.Error("duplicate queued request should collapse, not reject")
	}
	if got := len(r.Pending()); got != 2 {
		t.Errorf("pending = %d", got)
	}
	// After one simulated second, one token refilled.
	if !r.Request("m3", kernel.Second) {
		t.Error("request after refill rejected")
	}
	acc, rej, _ := r.Stats()
	if acc != 3 || rej != 1 {
		t.Errorf("stats = %d accepted, %d rejected", acc, rej)
	}
}

func TestRetrainerRunPending(t *testing.T) {
	r := NewRetrainer(10, 0)
	r.Request("a", 0)
	r.Request("b", 0)
	var trained []string
	n, err := r.RunPending(func(m string) error {
		trained = append(trained, m)
		return nil
	})
	if err != nil || n != 2 {
		t.Fatalf("run = %d, %v", n, err)
	}
	if len(trained) != 2 || trained[0] != "a" || trained[1] != "b" {
		t.Errorf("trained = %v", trained)
	}
	if len(r.Pending()) != 0 {
		t.Error("queue not drained")
	}
	// Model can be requested again after training.
	if !r.Request("a", 0) {
		t.Error("re-request after drain rejected")
	}
	_, _, done := r.Stats()
	if done != 2 {
		t.Errorf("trained count = %d", done)
	}
}

func TestRetrainerRunPendingError(t *testing.T) {
	r := NewRetrainer(10, 0)
	r.Request("good", 0)
	r.Request("bad", 0)
	r.Request("good2", 0)
	sentinel := errors.New("boom")
	n, err := r.RunPending(func(m string) error {
		if m == "bad" {
			return sentinel
		}
		return nil
	})
	if n != 2 {
		t.Errorf("successful jobs = %d", n)
	}
	if err == nil || !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRetrainerValidation(t *testing.T) {
	for _, c := range []struct{ cap, refill float64 }{{0, 1}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cap=%v refill=%v should panic", c.cap, c.refill)
				}
			}()
			NewRetrainer(c.cap, c.refill)
		}()
	}
}

func TestDeprioritizerApply(t *testing.T) {
	k := kernel.New()
	t1, _ := k.CreateTask("batch1", 0)
	t2, _ := k.CreateTask("batch2", 5)
	t3, _ := k.CreateTask("web", 0)
	d := NewDeprioritizer(k)
	d.RegisterGroup("batch_jobs", t1.ID, t2.ID)
	d.RegisterGroup("web", t3.ID)

	n, err := d.Apply("batch_jobs", 19)
	if err != nil || n != 2 {
		t.Fatalf("apply = %d, %v", n, err)
	}
	if t1.Priority != 19 || t2.Priority != 19 {
		t.Errorf("priorities = %d, %d", t1.Priority, t2.Priority)
	}
	if t3.Priority != 0 {
		t.Error("unrelated task demoted")
	}
	// Below-range priorities clamp.
	if _, err := d.Apply("batch_jobs", -100); err != nil {
		t.Fatal(err)
	}
	if t1.Priority != kernel.MinPriority {
		t.Errorf("clamped priority = %d", t1.Priority)
	}
	if _, err := d.Apply("ghost", 0); err == nil {
		t.Error("unknown group should error")
	}
}

func TestDeprioritizerKill(t *testing.T) {
	k := kernel.New()
	t1, _ := k.CreateTask("victim", 0)
	d := NewDeprioritizer(k)
	d.RegisterGroup("victims", t1.ID)
	n, err := d.Apply("victims", KillPriority)
	if err != nil || n != 1 {
		t.Fatalf("kill apply = %d, %v", n, err)
	}
	if t1.State != kernel.TaskKilled {
		t.Error("task not killed")
	}
	// Re-applying skips killed tasks.
	n, err = d.Apply("victims", KillPriority)
	if err != nil || n != 0 {
		t.Errorf("second kill = %d, %v", n, err)
	}
	demoted, killed := d.Stats()
	if demoted != 0 || killed != 1 {
		t.Errorf("stats = %d demoted, %d killed", demoted, killed)
	}
	if got := d.Groups(); len(got) != 1 || got[0] != "victims" {
		t.Errorf("groups = %v", got)
	}
}
