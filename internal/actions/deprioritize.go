package actions

import (
	"fmt"
	"sync"

	"guardrails/internal/kernel"
)

// KillPriority is the sentinel priority value meaning "terminate the
// task group" — one beyond the valid nice range, mirroring how the
// paper's A4 spans both deprioritization and OOM-killer-style
// termination.
const KillPriority = 20

// Deprioritizer implements DEPRIORITIZE (A4) against the simulated
// kernel's task registry. Guardrail specs name task groups (e.g.
// "batch_jobs"); subsystems register which task IDs belong to each
// group. Safe for concurrent use.
type Deprioritizer struct {
	k  *kernel.Kernel
	mu sync.Mutex
	// groups maps group name to member task IDs.
	groups map[string][]kernel.TaskID
	// applied counts actions taken per group.
	demoted uint64
	killed  uint64
}

// NewDeprioritizer returns a deprioritizer bound to k.
func NewDeprioritizer(k *kernel.Kernel) *Deprioritizer {
	return &Deprioritizer{k: k, groups: make(map[string][]kernel.TaskID)}
}

// RegisterGroup binds task IDs to a group name, appending to any
// existing members.
func (d *Deprioritizer) RegisterGroup(name string, ids ...kernel.TaskID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.groups[name] = append(d.groups[name], ids...)
}

// Groups returns the registered group names.
func (d *Deprioritizer) Groups() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.groups))
	for g := range d.groups {
		out = append(out, g)
	}
	return out
}

// Apply deprioritizes the group: priorities in [-20, 19] are set
// directly; KillPriority (20) or above terminates every member. Already
// killed tasks are skipped. It returns the number of tasks affected.
func (d *Deprioritizer) Apply(group string, priority int) (int, error) {
	d.mu.Lock()
	ids := append([]kernel.TaskID(nil), d.groups[group]...)
	d.mu.Unlock()
	if ids == nil {
		return 0, fmt.Errorf("actions: no task group %q", group)
	}
	affected := 0
	for _, id := range ids {
		t := d.k.Task(id)
		if t == nil || t.State == kernel.TaskKilled {
			continue
		}
		if priority >= KillPriority {
			if err := d.k.KillTask(id); err != nil {
				return affected, err
			}
			d.mu.Lock()
			d.killed++
			d.mu.Unlock()
			affected++
			continue
		}
		p := priority
		if p < kernel.MinPriority {
			p = kernel.MinPriority
		}
		if err := d.k.SetPriority(id, p); err != nil {
			return affected, err
		}
		d.mu.Lock()
		d.demoted++
		d.mu.Unlock()
		affected++
	}
	return affected, nil
}

// Stats returns cumulative demotion and kill counts.
func (d *Deprioritizer) Stats() (demoted, killed uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.demoted, d.killed
}
