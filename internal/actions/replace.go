package actions

import (
	"fmt"
	"sync"

	"guardrails/internal/kernel"
)

// Swap records one policy replacement for audit.
type Swap struct {
	Time kernel.Time
	Slot string
	From string
	To   string
}

// slot is a policy binding point: a subsystem decision it dispatches
// through whichever policy is current.
type slot struct {
	name     string
	current  string
	initial  string
	policies map[string]any
	history  []Swap
}

// Registry implements REPLACE (A2): named policy slots whose current
// implementation can be atomically swapped for a registered fallback.
// Subsystems read their slot's current policy on each decision; most OS
// fallback policies need little or no state, so they can take over
// immediately (§3.2). Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	slots map[string]*slot
}

// NewRegistry returns an empty policy registry.
func NewRegistry() *Registry {
	return &Registry{slots: make(map[string]*slot)}
}

// DefineSlot creates a binding point with its candidate policies and the
// initially active one. Policy values are opaque to the registry
// (typically a policy interface of the owning subsystem).
func (r *Registry) DefineSlot(name string, policies map[string]any, initial string) error {
	if len(policies) == 0 {
		return fmt.Errorf("actions: slot %q has no policies", name)
	}
	if _, ok := policies[initial]; !ok {
		return fmt.Errorf("actions: initial policy %q not among slot %q policies", initial, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.slots[name]; dup {
		return fmt.Errorf("actions: slot %q already defined", name)
	}
	cp := make(map[string]any, len(policies))
	for k, v := range policies {
		cp[k] = v
	}
	r.slots[name] = &slot{name: name, current: initial, initial: initial, policies: cp}
	return nil
}

// Current returns the active policy name and value for a slot.
func (r *Registry) Current(slotName string) (string, any, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.slots[slotName]
	if !ok {
		return "", nil, fmt.Errorf("actions: no slot %q", slotName)
	}
	return s.current, s.policies[s.current], nil
}

// Replace swaps every slot currently running policy old to policy new
// (where new is registered for that slot), returning the number of slots
// swapped. Zero swaps is not an error: REPLACE is idempotent, matching
// guardrails that keep firing while a property stays violated.
func (r *Registry) Replace(old, new string, now kernel.Time) (int, error) {
	if old == new {
		return 0, fmt.Errorf("actions: REPLACE with identical policies %q", old)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	swapped := 0
	for _, s := range r.slots {
		if s.current != old {
			continue
		}
		if _, ok := s.policies[new]; !ok {
			continue
		}
		s.history = append(s.history, Swap{Time: now, Slot: s.name, From: old, To: new})
		s.current = new
		swapped++
	}
	return swapped, nil
}

// Restore resets a slot to its initial policy (used when a guardrail's
// property recovers and the learned policy is re-enabled).
func (r *Registry) Restore(slotName string, now kernel.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slots[slotName]
	if !ok {
		return fmt.Errorf("actions: no slot %q", slotName)
	}
	if s.current != s.initial {
		s.history = append(s.history, Swap{Time: now, Slot: s.name, From: s.current, To: s.initial})
		s.current = s.initial
	}
	return nil
}

// History returns the swap audit trail for a slot.
func (r *Registry) History(slotName string) []Swap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.slots[slotName]
	if !ok {
		return nil
	}
	return append([]Swap(nil), s.history...)
}

// Slots returns the defined slot names.
func (r *Registry) Slots() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.slots))
	for name := range r.slots {
		out = append(out, name)
	}
	return out
}
