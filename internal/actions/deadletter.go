package actions

import (
	"fmt"
	"sync"

	"guardrails/internal/kernel"
)

// FailedAction records an action dispatch that exhausted its retries —
// the terminal stop on the runtime's degradation ladder for a single
// action. Nothing is silently dropped: what could not run is queued
// here for the operator (or a chaos experiment's assertions) to see.
type FailedAction struct {
	// Time is when the final attempt failed.
	Time kernel.Time
	// Guardrail names the monitor that dispatched the action.
	Guardrail string
	// Action is the rendered action, e.g. "RETRAIN(linnos)".
	Action string
	// Attempts is how many times the action was tried (1 = no retries).
	Attempts int
	// Err is the final attempt's error text.
	Err string
}

// String renders the entry for logs.
func (f FailedAction) String() string {
	return fmt.Sprintf("[%s] guardrail %q action %s dead-lettered after %d attempt(s): %s",
		f.Time, f.Guardrail, f.Action, f.Attempts, f.Err)
}

// DeadLetter is a bounded ring of actions that failed permanently.
// Like ReportLog it never blocks and never errors: when full, the
// oldest entries are overwritten but the total count keeps advancing.
// Safe for concurrent use.
type DeadLetter struct {
	mu    sync.Mutex
	ring  []FailedAction
	next  int
	total uint64
}

// NewDeadLetter returns a dead-letter queue holding up to capacity
// entries (minimum 1).
func NewDeadLetter(capacity int) *DeadLetter {
	if capacity < 1 {
		capacity = 1
	}
	return &DeadLetter{ring: make([]FailedAction, 0, capacity)}
}

// Add records a permanently failed action.
func (d *DeadLetter) Add(f FailedAction) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.total++
	if len(d.ring) < cap(d.ring) {
		d.ring = append(d.ring, f)
		return
	}
	d.ring[d.next] = f
	d.next = (d.next + 1) % cap(d.ring)
}

// Total returns how many actions have ever been dead-lettered,
// including entries the ring has since overwritten.
func (d *DeadLetter) Total() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Recent returns the most recent min(n, retained) entries, oldest
// first.
func (d *DeadLetter) Recent(n int) []FailedAction {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n > len(d.ring) {
		n = len(d.ring)
	}
	out := make([]FailedAction, 0, n)
	for i := 0; i < n; i++ {
		idx := (d.next + len(d.ring) - n + i) % len(d.ring)
		out = append(out, d.ring[idx])
	}
	return out
}

// ByGuardrail counts retained entries per guardrail.
func (d *DeadLetter) ByGuardrail() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int)
	for _, f := range d.ring {
		out[f.Guardrail]++
	}
	return out
}
