package actions

import (
	"fmt"
	"sync"

	"guardrails/internal/kernel"
)

// RetrainRequest is a queued retraining job (A3).
type RetrainRequest struct {
	Model     string
	Requested kernel.Time
}

// TrainFunc performs the (offline, asynchronous in the paper's design)
// retraining of a named model. It is supplied by the subsystem that owns
// the model.
type TrainFunc func(model string) error

// Retrainer implements RETRAIN (A3): violations enqueue retraining
// requests; a token bucket bounds how often any model may be retrained
// so that adversarial workloads cannot weaponize the action (§3.2).
// Requests for a model already queued are deduplicated. Safe for
// concurrent use.
type Retrainer struct {
	mu sync.Mutex
	// token bucket
	capacity float64
	tokens   float64
	refill   float64 // tokens per simulated second
	lastFill kernel.Time

	queue    []RetrainRequest
	queued   map[string]bool
	rejected uint64
	accepted uint64
	trained  uint64
}

// NewRetrainer returns a retrainer whose token bucket holds capacity
// tokens and refills at refillPerSec tokens per simulated second. Each
// accepted request costs one token.
func NewRetrainer(capacity float64, refillPerSec float64) *Retrainer {
	if capacity <= 0 || refillPerSec < 0 {
		panic("actions: invalid retrainer rate limits")
	}
	return &Retrainer{
		capacity: capacity,
		tokens:   capacity,
		refill:   refillPerSec,
		queued:   make(map[string]bool),
	}
}

// Request enqueues retraining of model at simulated time now. It returns
// true if the request was accepted (or already queued) and false if the
// rate limit rejected it.
func (r *Retrainer) Request(model string, now kernel.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.queued[model] {
		return true // collapses into the pending request
	}
	r.refillLocked(now)
	if r.tokens < 1 {
		r.rejected++
		return false
	}
	r.tokens--
	r.accepted++
	r.queued[model] = true
	r.queue = append(r.queue, RetrainRequest{Model: model, Requested: now})
	return true
}

func (r *Retrainer) refillLocked(now kernel.Time) {
	if now <= r.lastFill {
		return
	}
	dt := float64(now-r.lastFill) / float64(kernel.Second)
	r.tokens += dt * r.refill
	if r.tokens > r.capacity {
		r.tokens = r.capacity
	}
	r.lastFill = now
}

// Pending returns the queued requests in FIFO order.
func (r *Retrainer) Pending() []RetrainRequest {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RetrainRequest(nil), r.queue...)
}

// RunPending drains the queue, invoking train for each request (the
// asynchronous training pass). It returns the number of successful jobs
// and the first error encountered; on error the failed request is
// dropped and draining continues.
func (r *Retrainer) RunPending(train TrainFunc) (int, error) {
	r.mu.Lock()
	jobs := r.queue
	r.queue = nil
	for _, j := range jobs {
		delete(r.queued, j.Model)
	}
	r.mu.Unlock()

	done := 0
	var firstErr error
	for _, j := range jobs {
		if err := train(j.Model); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("actions: retrain %q: %w", j.Model, err)
			}
			continue
		}
		done++
	}
	r.mu.Lock()
	r.trained += uint64(done)
	r.mu.Unlock()
	return done, firstErr
}

// Stats returns acceptance counters: accepted and rate-limited request
// counts and completed retraining jobs.
func (r *Retrainer) Stats() (accepted, rejected, trained uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.accepted, r.rejected, r.trained
}
