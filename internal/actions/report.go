// Package actions implements the four guardrail corrective actions of
// the paper's taxonomy (Figure 1, right table):
//
//	A1 REPORT       — structured violation logging to a bounded ring
//	A2 REPLACE      — atomic swap of a misbehaving policy for a fallback
//	A3 RETRAIN      — asynchronous retraining queue with token-bucket
//	                  abuse protection (§3.2: retraining "must be
//	                  protected to prevent abuse from malicious processes")
//	A4 DEPRIORITIZE — demote or kill task groups to release resources
//
// The monitor runtime (package monitor) dispatches compiled guardrail
// actions to these implementations.
package actions

import (
	"fmt"
	"strings"
	"sync"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

// Violation is one recorded property violation (A1).
type Violation struct {
	// Time is the simulated kernel time of the violation.
	Time kernel.Time
	// Guardrail names the violated guardrail.
	Guardrail string
	// Values carries the REPORT argument values (up to four).
	Values []float64
	// Note is optional free-form context from the reporter.
	Note string
	// Context carries the flight-recorder snapshot of recent feature
	// writes around the violation, when a recorder is configured.
	Context []featurestore.Write
}

// String renders the violation for logs.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] guardrail %q violated", v.Time, v.Guardrail)
	if len(v.Values) > 0 {
		fmt.Fprintf(&b, " values=%v", v.Values)
	}
	if v.Note != "" {
		fmt.Fprintf(&b, " note=%q", v.Note)
	}
	if len(v.Context) > 0 {
		fmt.Fprintf(&b, " context=[")
		for i, w := range v.Context {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%g", w.Key, w.Value)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ReportLog is a bounded ring buffer of violations. Old entries are
// overwritten once capacity is reached; Total always counts every
// appended violation. Safe for concurrent use.
type ReportLog struct {
	mu    sync.Mutex
	ring  []Violation
	head  int
	size  int
	total uint64
}

// NewReportLog returns a log retaining the most recent capacity entries.
func NewReportLog(capacity int) *ReportLog {
	if capacity <= 0 {
		panic("actions: report log capacity must be positive")
	}
	return &ReportLog{ring: make([]Violation, capacity)}
}

// Append records one violation.
func (l *ReportLog) Append(v Violation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size == len(l.ring) {
		l.ring[l.head] = v
		l.head = (l.head + 1) % len(l.ring)
	} else {
		l.ring[(l.head+l.size)%len(l.ring)] = v
		l.size++
	}
	l.total++
}

// Total returns the count of all violations ever appended.
func (l *ReportLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n of the most recent violations, oldest first.
func (l *ReportLog) Recent(n int) []Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.size {
		n = l.size
	}
	out := make([]Violation, 0, n)
	start := l.size - n
	for i := start; i < l.size; i++ {
		out = append(out, l.ring[(l.head+i)%len(l.ring)])
	}
	return out
}

// ByGuardrail returns the total recorded violations per guardrail among
// retained entries.
func (l *ReportLog) ByGuardrail() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int)
	for i := 0; i < l.size; i++ {
		out[l.ring[(l.head+i)%len(l.ring)].Guardrail]++
	}
	return out
}
