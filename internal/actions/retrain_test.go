package actions

import (
	"errors"
	"testing"

	"guardrails/internal/kernel"
)

// Edge cases for the RETRAIN token bucket: clamping, starvation,
// dedup accounting, fractional refill, non-monotonic clocks, and the
// queued-flag lifecycle around TrainFunc failures.

func TestRetrainerRefillClampsAtCapacity(t *testing.T) {
	// Capacity 2, refill 1 token/s. An hour of idle time must not bank
	// 3600 tokens.
	r := NewRetrainer(2, 1)
	if !r.Request("m1", 0) || !r.Request("m2", 0) {
		t.Fatal("initial bucket should hold 2 tokens")
	}
	if _, err := r.RunPending(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	now := kernel.Time(3600) * kernel.Second
	for i, m := range []string{"a", "b"} {
		if !r.Request(m, now) {
			t.Fatalf("request %d after long idle rejected", i)
		}
	}
	// Third request at the same instant: the bucket was clamped to
	// capacity 2, so it must be empty now.
	if r.Request("c", now) {
		t.Error("bucket exceeded capacity after long idle")
	}
}

func TestRetrainerZeroRefillStarvation(t *testing.T) {
	// refill = 0 is legal: a fixed budget of retrains for the whole run.
	// Once spent, every later request is rejected no matter how much
	// simulated time passes.
	r := NewRetrainer(1, 0)
	if !r.Request("m1", 0) {
		t.Fatal("budgeted request rejected")
	}
	if _, err := r.RunPending(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for _, now := range []kernel.Time{0, kernel.Second, kernel.Time(24) * 3600 * kernel.Second} {
		if r.Request("m2", now) {
			t.Fatalf("zero-refill bucket granted a token at %v", now)
		}
	}
	acc, rej, _ := r.Stats()
	if acc != 1 || rej != 3 {
		t.Errorf("stats = %d accepted, %d rejected; want 1/3", acc, rej)
	}
}

func TestRetrainerDedupDoesNotConsumeTokens(t *testing.T) {
	r := NewRetrainer(2, 0)
	if !r.Request("m1", 0) {
		t.Fatal("first request rejected")
	}
	// Hammer the queued model: every duplicate collapses into the
	// pending request without touching the bucket or the counters.
	for i := 0; i < 50; i++ {
		if !r.Request("m1", 0) {
			t.Fatal("duplicate of queued model rejected")
		}
	}
	// The second token is still there for a different model.
	if !r.Request("m2", 0) {
		t.Error("duplicates drained the bucket")
	}
	if got := len(r.Pending()); got != 2 {
		t.Errorf("pending = %d, want 2", got)
	}
	acc, rej, _ := r.Stats()
	if acc != 2 || rej != 0 {
		t.Errorf("stats = %d accepted, %d rejected; want 2/0", acc, rej)
	}
}

func TestRetrainerFractionalRefillAccumulates(t *testing.T) {
	// 0.5 tokens/s: one second is not enough for a token, two is.
	r := NewRetrainer(1, 0.5)
	if !r.Request("m1", 0) {
		t.Fatal("initial request rejected")
	}
	if _, err := r.RunPending(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if r.Request("m2", kernel.Second) {
		t.Error("half a token granted a request")
	}
	if !r.Request("m2", 2*kernel.Second) {
		t.Error("full token after 2s rejected")
	}
}

func TestRetrainerClockNeverRunsBackward(t *testing.T) {
	// A request stamped earlier than the last refill must not refill
	// (or worse, drain) the bucket: dt would be negative.
	r := NewRetrainer(1, 1)
	if !r.Request("m1", 10*kernel.Second) {
		t.Fatal("first request rejected")
	}
	if _, err := r.RunPending(func(string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	// Bucket empty, lastFill = 10s. An out-of-order request at 5s sees
	// no refill.
	if r.Request("m2", 5*kernel.Second) {
		t.Error("out-of-order timestamp refilled the bucket")
	}
	// Time catching back up past lastFill refills normally.
	if !r.Request("m2", 11*kernel.Second) {
		t.Error("request after real refill rejected")
	}
}

func TestRetrainerTrainErrorClearsQueuedFlag(t *testing.T) {
	// A failed TrainFunc must not count as trained, and must not wedge
	// the model: it was dequeued, so it can be requested again.
	r := NewRetrainer(10, 0)
	r.Request("flaky", 0)
	sentinel := errors.New("training data unavailable")
	n, err := r.RunPending(func(string) error { return sentinel })
	if n != 0 || !errors.Is(err, sentinel) {
		t.Fatalf("run = %d, %v; want 0 jobs and the sentinel", n, err)
	}
	_, _, trained := r.Stats()
	if trained != 0 {
		t.Errorf("trained = %d after a failed job", trained)
	}
	if len(r.Pending()) != 0 {
		t.Error("failed job left in queue")
	}
	// Re-queue and succeed this time.
	if !r.Request("flaky", 0) {
		t.Fatal("failed model is wedged: re-request rejected")
	}
	n, err = r.RunPending(func(string) error { return nil })
	if n != 1 || err != nil {
		t.Fatalf("retry run = %d, %v", n, err)
	}
	_, _, trained = r.Stats()
	if trained != 1 {
		t.Errorf("trained = %d, want 1", trained)
	}
}
