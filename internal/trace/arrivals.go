package trace

import (
	"math/rand"

	"guardrails/internal/kernel"
)

// Arrivals generates a monotone sequence of event times.
type Arrivals interface {
	// Next returns the next arrival time strictly after the previous one.
	Next() kernel.Time
}

// Poisson is a homogeneous Poisson arrival process.
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean interarrival in ns
	now  kernel.Time
}

// NewPoisson returns Poisson arrivals with the given rate in events per
// simulated second, starting at time start.
func NewPoisson(seed int64, ratePerSec float64, start kernel.Time) *Poisson {
	if ratePerSec <= 0 {
		panic("trace: Poisson rate must be positive")
	}
	return &Poisson{
		rng:  NewRand(seed),
		mean: float64(kernel.Second) / ratePerSec,
		now:  start,
	}
}

// Next returns the next arrival time.
func (p *Poisson) Next() kernel.Time {
	gap := Exponential(p.rng, p.mean)
	if gap < 1 {
		gap = 1
	}
	p.now += kernel.Time(gap)
	return p.now
}

// MMPP is a two-state Markov-modulated Poisson process: a "calm" state
// and a "burst" state with different rates, switching with exponential
// holding times. It models bursty I/O and network traffic.
type MMPP struct {
	rng        *rand.Rand
	calmMean   float64
	burstMean  float64
	holdCalm   float64
	holdBurst  float64
	inBurst    bool
	stateUntil kernel.Time
	now        kernel.Time
}

// NewMMPP returns an MMPP with calm/burst arrival rates (events per
// second) and mean state holding times (in simulated seconds).
func NewMMPP(seed int64, calmRate, burstRate, holdCalmSec, holdBurstSec float64) *MMPP {
	if calmRate <= 0 || burstRate <= 0 || holdCalmSec <= 0 || holdBurstSec <= 0 {
		panic("trace: MMPP parameters must be positive")
	}
	m := &MMPP{
		rng:       NewRand(seed),
		calmMean:  float64(kernel.Second) / calmRate,
		burstMean: float64(kernel.Second) / burstRate,
		holdCalm:  holdCalmSec * float64(kernel.Second),
		holdBurst: holdBurstSec * float64(kernel.Second),
	}
	m.stateUntil = kernel.Time(Exponential(m.rng, m.holdCalm))
	return m
}

// InBurst reports whether the process is currently in the burst state.
func (m *MMPP) InBurst() bool { return m.inBurst }

// Next returns the next arrival time.
func (m *MMPP) Next() kernel.Time {
	for m.now >= m.stateUntil {
		m.inBurst = !m.inBurst
		hold := m.holdCalm
		if m.inBurst {
			hold = m.holdBurst
		}
		m.stateUntil += kernel.Time(Exponential(m.rng, hold))
	}
	mean := m.calmMean
	if m.inBurst {
		mean = m.burstMean
	}
	gap := Exponential(m.rng, mean)
	if gap < 1 {
		gap = 1
	}
	m.now += kernel.Time(gap)
	return m.now
}
