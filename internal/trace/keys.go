package trace

import (
	"math/rand"
)

// KeyGen produces access keys in [0, Universe).
type KeyGen interface {
	Next() uint64
	Universe() uint64
}

// ZipfKeys draws keys with Zipf(s) popularity over a universe of n keys,
// optionally permuted so that hot keys are scattered across the key
// space (as real block addresses are).
type ZipfKeys struct {
	z        *rand.Zipf
	n        uint64
	perm     []uint64
	scramble bool
}

// NewZipfKeys returns Zipf-distributed keys over [0, n) with skew s > 1.
// When scramble is true the popularity ranking is randomly permuted over
// the key space.
func NewZipfKeys(seed int64, n uint64, s float64, scramble bool) *ZipfKeys {
	if n == 0 {
		panic("trace: empty key universe")
	}
	if s <= 1 {
		panic("trace: Zipf skew must be > 1 for math/rand Zipf")
	}
	rng := NewRand(seed)
	g := &ZipfKeys{
		z:        rand.NewZipf(rng, s, 1, n-1),
		n:        n,
		scramble: scramble,
	}
	if scramble {
		g.perm = make([]uint64, n)
		for i := range g.perm {
			g.perm[i] = uint64(i)
		}
		permRng := NewRand(Split(seed, "perm"))
		permRng.Shuffle(len(g.perm), func(i, j int) {
			g.perm[i], g.perm[j] = g.perm[j], g.perm[i]
		})
	}
	return g
}

// Next returns the next key.
func (g *ZipfKeys) Next() uint64 {
	k := g.z.Uint64()
	if g.scramble {
		return g.perm[k]
	}
	return k
}

// Universe returns the key-space size.
func (g *ZipfKeys) Universe() uint64 { return g.n }

// UniformKeys draws keys uniformly over [0, n).
type UniformKeys struct {
	rng *rand.Rand
	n   uint64
}

// NewUniformKeys returns uniform keys over [0, n).
func NewUniformKeys(seed int64, n uint64) *UniformKeys {
	if n == 0 {
		panic("trace: empty key universe")
	}
	return &UniformKeys{rng: NewRand(seed), n: n}
}

// Next returns the next key.
func (g *UniformKeys) Next() uint64 { return uint64(g.rng.Int63n(int64(g.n))) }

// Universe returns the key-space size.
func (g *UniformKeys) Universe() uint64 { return g.n }

// HotspotKeys sends hotFrac of accesses to a contiguous hot region
// covering hotRegion of the key space, and the rest uniformly elsewhere.
// Moving the hot region between phases produces abrupt distribution
// shift.
type HotspotKeys struct {
	rng      *rand.Rand
	n        uint64
	hotStart uint64
	hotLen   uint64
	hotFrac  float64
}

// NewHotspotKeys returns a hotspot generator: hotFrac in (0,1) of
// accesses hit a region of hotRegion in (0,1) of the key space starting
// at hotStart.
func NewHotspotKeys(seed int64, n uint64, hotStart uint64, hotRegion, hotFrac float64) *HotspotKeys {
	if n == 0 {
		panic("trace: empty key universe")
	}
	if hotRegion <= 0 || hotRegion >= 1 || hotFrac <= 0 || hotFrac >= 1 {
		panic("trace: hotspot fractions must be in (0,1)")
	}
	hotLen := uint64(float64(n) * hotRegion)
	if hotLen == 0 {
		hotLen = 1
	}
	return &HotspotKeys{
		rng: NewRand(seed), n: n,
		hotStart: hotStart % n, hotLen: hotLen, hotFrac: hotFrac,
	}
}

// SetHotStart moves the hot region (phase shift).
func (g *HotspotKeys) SetHotStart(start uint64) { g.hotStart = start % g.n }

// Next returns the next key.
func (g *HotspotKeys) Next() uint64 {
	if g.rng.Float64() < g.hotFrac {
		return (g.hotStart + uint64(g.rng.Int63n(int64(g.hotLen)))) % g.n
	}
	return uint64(g.rng.Int63n(int64(g.n)))
}

// Universe returns the key-space size.
func (g *HotspotKeys) Universe() uint64 { return g.n }
