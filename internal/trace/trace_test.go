package trace

import (
	"math"
	"testing"

	"guardrails/internal/kernel"
)

func TestSplitIndependence(t *testing.T) {
	a := Split(1, "io")
	b := Split(1, "net")
	c := Split(2, "io")
	if a == b || a == c {
		t.Errorf("seeds collide: %d %d %d", a, b, c)
	}
	if Split(1, "io") != a {
		t.Error("Split is not deterministic")
	}
	if a < 0 {
		t.Error("seed should be non-negative")
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(3)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("exponential mean = %v, want ~10", mean)
	}
}

func TestParetoBoundsAndTail(t *testing.T) {
	rng := NewRand(4)
	count := 0
	for i := 0; i < 10000; i++ {
		v := Pareto(rng, 2, 1.5)
		if v < 2 {
			t.Fatalf("Pareto below xmin: %v", v)
		}
		if v > 20 {
			count++
		}
	}
	// P(X > 20) = (2/20)^1.5 ≈ 0.0316.
	frac := float64(count) / 10000
	if frac < 0.02 || frac > 0.05 {
		t.Errorf("tail fraction = %v, want ~0.032", frac)
	}
}

func TestLogNormalPositive(t *testing.T) {
	rng := NewRand(5)
	for i := 0; i < 1000; i++ {
		if LogNormal(rng, 0, 1) <= 0 {
			t.Fatal("LogNormal must be positive")
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := NewPoisson(1, 1000, 0) // 1000/s => mean gap 1ms
	prev := kernel.Time(0)
	var gaps float64
	const n = 20000
	for i := 0; i < n; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatal("arrivals must be strictly increasing")
		}
		gaps += float64(next - prev)
		prev = next
	}
	meanGap := gaps / n
	want := float64(kernel.Millisecond)
	if math.Abs(meanGap-want)/want > 0.05 {
		t.Errorf("mean gap = %v, want ~%v", meanGap, want)
	}
}

func TestPoissonStartOffset(t *testing.T) {
	p := NewPoisson(1, 100, 5*kernel.Second)
	if first := p.Next(); first <= 5*kernel.Second {
		t.Errorf("first arrival %v should be after start", first)
	}
}

func TestPoissonValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate should panic")
		}
	}()
	NewPoisson(1, 0, 0)
}

func TestMMPPBurstsIncreaseRate(t *testing.T) {
	m := NewMMPP(7, 100, 10000, 0.5, 0.5)
	var calmGaps, burstGaps []float64
	prev := kernel.Time(0)
	for i := 0; i < 50000; i++ {
		wasBurst := m.InBurst()
		next := m.Next()
		gap := float64(next - prev)
		if wasBurst && m.InBurst() {
			burstGaps = append(burstGaps, gap)
		} else if !wasBurst && !m.InBurst() {
			calmGaps = append(calmGaps, gap)
		}
		prev = next
	}
	if len(calmGaps) == 0 || len(burstGaps) == 0 {
		t.Fatal("MMPP never switched states")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(burstGaps)*10 > mean(calmGaps) {
		t.Errorf("burst gaps %v not much smaller than calm gaps %v",
			mean(burstGaps), mean(calmGaps))
	}
}

func TestZipfKeysSkewAndDeterminism(t *testing.T) {
	g := NewZipfKeys(11, 1000, 1.2, false)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		k := g.Next()
		if k >= 1000 {
			t.Fatalf("key %d out of universe", k)
		}
		counts[k]++
	}
	// Key 0 must dominate an unskewed share.
	if counts[0] < 10000 {
		t.Errorf("hot key count = %d, want heavy skew", counts[0])
	}
	// Determinism.
	g2 := NewZipfKeys(11, 1000, 1.2, false)
	g3 := NewZipfKeys(11, 1000, 1.2, false)
	for i := 0; i < 100; i++ {
		if g2.Next() != g3.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if g.Universe() != 1000 {
		t.Error("universe wrong")
	}
}

func TestZipfKeysScramble(t *testing.T) {
	g := NewZipfKeys(11, 1000, 1.5, true)
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		counts[g.Next()]++
	}
	// The most popular key is likely NOT key 0 after scrambling.
	max, argmax := 0, uint64(0)
	for k, c := range counts {
		if c > max {
			max, argmax = c, k
		}
	}
	if max < 5000 {
		t.Errorf("scrambled hot key count = %d", max)
	}
	_ = argmax // its location is arbitrary; only skew matters
}

func TestUniformKeysCoverage(t *testing.T) {
	g := NewUniformKeys(13, 10)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if k >= 10 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Errorf("coverage = %d/10", len(seen))
	}
}

func TestHotspotKeysShift(t *testing.T) {
	g := NewHotspotKeys(17, 10000, 0, 0.1, 0.9)
	inHot := 0
	for i := 0; i < 10000; i++ {
		if g.Next() < 1000 {
			inHot++
		}
	}
	// ~90% hot + ~10%*10% uniform spill ≈ 0.91.
	if frac := float64(inHot) / 10000; frac < 0.85 {
		t.Errorf("hot fraction = %v", frac)
	}
	// Move the hotspot: traffic follows.
	g.SetHotStart(5000)
	inNew := 0
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k >= 5000 && k < 6000 {
			inNew++
		}
	}
	if frac := float64(inNew) / 10000; frac < 0.85 {
		t.Errorf("shifted hot fraction = %v", frac)
	}
}

func TestScheduleLookup(t *testing.T) {
	s, err := NewSchedule(
		Phase{Start: 0, Name: "read-heavy"},
		Phase{Start: 10 * kernel.Second, Name: "write-heavy"},
		Phase{Start: 20 * kernel.Second, Name: "mixed"},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    kernel.Time
		want string
	}{
		{0, "read-heavy"},
		{9 * kernel.Second, "read-heavy"},
		{10 * kernel.Second, "write-heavy"},
		{15 * kernel.Second, "write-heavy"},
		{25 * kernel.Second, "mixed"},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %q, want %q", c.t, got, c.want)
		}
	}
	if s.Index(15*kernel.Second) != 1 {
		t.Error("Index wrong")
	}
	if len(s.Phases()) != 3 {
		t.Error("Phases wrong")
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := NewSchedule(); err == nil {
		t.Error("empty schedule should error")
	}
	if _, err := NewSchedule(Phase{Start: 5, Name: "x"}); err == nil {
		t.Error("nonzero first phase should error")
	}
	if _, err := NewSchedule(Phase{0, "a"}, Phase{0, "b"}); err == nil {
		t.Error("duplicate starts should error")
	}
	// Unsorted input is fine.
	s, err := NewSchedule(Phase{10, "b"}, Phase{0, "a"})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(5) != "a" {
		t.Error("sorting failed")
	}
}

func TestKeyGenValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zipf-empty", func() { NewZipfKeys(1, 0, 1.5, false) })
	mustPanic("zipf-skew", func() { NewZipfKeys(1, 10, 1.0, false) })
	mustPanic("uniform-empty", func() { NewUniformKeys(1, 0) })
	mustPanic("hotspot-empty", func() { NewHotspotKeys(1, 0, 0, 0.1, 0.9) })
	mustPanic("hotspot-frac", func() { NewHotspotKeys(1, 10, 0, 0.1, 1.5) })
}
