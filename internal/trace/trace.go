// Package trace provides deterministic synthetic workload generation for
// the substrate simulators: seed splitting, arrival processes (Poisson
// and Markov-modulated Poisson), key-popularity distributions (Zipf,
// hotspot), and phase schedules that shift workload parameters at known
// times — the controlled distribution shift the guardrail experiments
// rely on.
//
// Everything is seeded; the same seeds reproduce the same workload
// exactly, which makes every experiment in the repository replayable.
package trace

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// NewRand returns a deterministic RNG for the given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent child seed from a parent seed and a
// stream label, so subsystems can draw from uncorrelated streams without
// coordinating seed allocation.
func Split(seed int64, stream string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(seed) >> (8 * i))
	}
	_, _ = h.Write(b[:])
	_, _ = h.Write([]byte(stream))
	v := int64(h.Sum64())
	if v < 0 {
		// rand.NewSource rejects nothing, but keep seeds positive for
		// readability in logs.
		v = -v
	}
	return v
}

// Exponential draws an exponential variate with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Pareto draws a bounded Pareto variate with shape alpha and minimum
// xmin — the standard heavy-tailed service-time model.
func Pareto(rng *rand.Rand, xmin, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xmin / math.Pow(u, 1/alpha)
}

// LogNormal draws exp(N(mu, sigma^2)).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}
