package trace

import (
	"fmt"
	"sort"

	"guardrails/internal/kernel"
)

// Phase is one segment of a phase schedule: from Start (inclusive) the
// workload is in the named phase until the next phase begins.
type Phase struct {
	Start kernel.Time
	Name  string
}

// Schedule maps simulated time to a workload phase, modelling the
// known-time distribution shifts guardrail experiments use (e.g. "reads
// become write-heavy at t=30s").
type Schedule struct {
	phases []Phase
}

// NewSchedule builds a schedule from phases; they are sorted by start
// time and the first phase must start at 0.
func NewSchedule(phases ...Phase) (*Schedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("trace: empty schedule")
	}
	ps := append([]Phase(nil), phases...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })
	if ps[0].Start != 0 {
		return nil, fmt.Errorf("trace: first phase must start at 0, got %v", ps[0].Start)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].Start == ps[i-1].Start {
			return nil, fmt.Errorf("trace: duplicate phase start %v", ps[i].Start)
		}
	}
	return &Schedule{phases: ps}, nil
}

// At returns the phase name active at time t.
func (s *Schedule) At(t kernel.Time) string {
	i := sort.Search(len(s.phases), func(i int) bool { return s.phases[i].Start > t })
	return s.phases[i-1].Name
}

// Index returns the index of the phase active at time t.
func (s *Schedule) Index(t kernel.Time) int {
	i := sort.Search(len(s.phases), func(i int) bool { return s.phases[i].Start > t })
	return i - 1
}

// Phases returns the schedule's phases in order.
func (s *Schedule) Phases() []Phase { return append([]Phase(nil), s.phases...) }
