// Package cache simulates cache replacement with pluggable eviction
// policies: LRU, LFU, random, and a learned evictor that scores
// candidates with a small neural network. It backs the decision-quality
// property experiments (P4 in the paper's Figure 1: "decisions of the
// model must yield better hit rates than randomly selecting elements"),
// including the shadow-baseline comparison guardrails use to measure
// regret at run time.
package cache

import (
	"container/list"
	"fmt"
	"math/rand"

	"guardrails/internal/trace"
)

// Policy decides evictions. Implementations receive access notifications
// to maintain their metadata.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// OnInsert notes that key entered the cache.
	OnInsert(key uint64)
	// OnHit notes that key was accessed while cached.
	OnHit(key uint64)
	// OnEvict notes that key left the cache.
	OnEvict(key uint64)
	// Victim picks the key to evict; it is called only when the cache
	// is full and must return a currently cached key.
	Victim() uint64
}

// Stats counts cache outcomes.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns hits / (hits + misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a fixed-capacity key cache driven by a Policy.
type Cache struct {
	capacity int
	entries  map[uint64]bool
	policy   Policy
	stats    Stats
}

// New returns a cache of the given capacity using policy.
func New(capacity int, policy Policy) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive")
	}
	if policy == nil {
		return nil, fmt.Errorf("cache: nil policy")
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[uint64]bool, capacity),
		policy:   policy,
	}, nil
}

// Policy returns the cache's eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

// SwapPolicy replaces the eviction policy in place (the REPLACE action
// path): resident keys are re-registered with the new policy via
// OnInsert so it can immediately pick victims.
func (c *Cache) SwapPolicy(p Policy) error {
	if p == nil {
		return fmt.Errorf("cache: nil policy")
	}
	for key := range c.entries {
		p.OnInsert(key)
	}
	c.policy = p
	return nil
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Len returns the number of cached keys.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether key is cached (without touching policy state).
func (c *Cache) Contains(key uint64) bool { return c.entries[key] }

// Access performs one access, returning true on a hit. Misses insert
// the key, evicting a victim when full.
func (c *Cache) Access(key uint64) bool {
	if c.entries[key] {
		c.stats.Hits++
		c.policy.OnHit(key)
		return true
	}
	c.stats.Misses++
	if len(c.entries) >= c.capacity {
		victim := c.policy.Victim()
		if !c.entries[victim] {
			panic(fmt.Sprintf("cache: policy %q evicted non-resident key %d", c.policy.Name(), victim))
		}
		delete(c.entries, victim)
		c.policy.OnEvict(victim)
		c.stats.Evictions++
	}
	c.entries[key] = true
	c.policy.OnInsert(key)
	return false
}

// --- LRU ---------------------------------------------------------------

// LRU evicts the least recently used key.
type LRU struct {
	order *list.List // front = most recent
	where map[uint64]*list.Element
}

// NewLRU returns an LRU policy.
func NewLRU() *LRU {
	return &LRU{order: list.New(), where: make(map[uint64]*list.Element)}
}

// Name identifies the policy.
func (p *LRU) Name() string { return "lru" }

// OnInsert notes an insertion.
func (p *LRU) OnInsert(key uint64) { p.where[key] = p.order.PushFront(key) }

// OnHit refreshes recency.
func (p *LRU) OnHit(key uint64) { p.order.MoveToFront(p.where[key]) }

// OnEvict drops metadata.
func (p *LRU) OnEvict(key uint64) {
	if e, ok := p.where[key]; ok {
		p.order.Remove(e)
		delete(p.where, key)
	}
}

// Victim returns the least recently used key.
func (p *LRU) Victim() uint64 { return p.order.Back().Value.(uint64) }

// --- LFU ---------------------------------------------------------------

// LFU evicts the least frequently used key (ties broken arbitrarily).
// Victim selection is O(n) over resident keys; acceptable at simulation
// scales and free of heap bookkeeping.
type LFU struct {
	freq map[uint64]uint64
}

// NewLFU returns an LFU policy.
func NewLFU() *LFU { return &LFU{freq: make(map[uint64]uint64)} }

// Name identifies the policy.
func (p *LFU) Name() string { return "lfu" }

// OnInsert notes an insertion.
func (p *LFU) OnInsert(key uint64) { p.freq[key] = 1 }

// OnHit bumps the frequency.
func (p *LFU) OnHit(key uint64) { p.freq[key]++ }

// OnEvict drops metadata.
func (p *LFU) OnEvict(key uint64) { delete(p.freq, key) }

// Victim returns the minimum-frequency key.
func (p *LFU) Victim() uint64 {
	var best uint64
	bestF := uint64(1<<63 - 1)
	for k, f := range p.freq {
		if f < bestF {
			best, bestF = k, f
		}
	}
	return best
}

// --- Random ------------------------------------------------------------

// Random evicts a uniformly random resident key — the paper's P4
// baseline ("better hit rates than randomly selecting elements").
type Random struct {
	rng   *rand.Rand
	keys  []uint64
	index map[uint64]int
}

// NewRandom returns a random-eviction policy.
func NewRandom(seed int64) *Random {
	return &Random{rng: trace.NewRand(seed), index: make(map[uint64]int)}
}

// Name identifies the policy.
func (p *Random) Name() string { return "random" }

// OnInsert notes an insertion.
func (p *Random) OnInsert(key uint64) {
	p.index[key] = len(p.keys)
	p.keys = append(p.keys, key)
}

// OnHit is a no-op for random eviction.
func (p *Random) OnHit(uint64) {}

// OnEvict drops metadata with swap-remove.
func (p *Random) OnEvict(key uint64) {
	i, ok := p.index[key]
	if !ok {
		return
	}
	last := len(p.keys) - 1
	p.keys[i] = p.keys[last]
	p.index[p.keys[i]] = i
	p.keys = p.keys[:last]
	delete(p.index, key)
}

// Victim returns a uniformly random resident key.
func (p *Random) Victim() uint64 { return p.keys[p.rng.Intn(len(p.keys))] }
