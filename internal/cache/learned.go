package cache

import (
	"fmt"
	"math"
	"math/rand"

	"guardrails/internal/nn"
	"guardrails/internal/trace"
)

// learnedFeatures is the evictor's input width: normalized recency rank
// and log-scaled frequency.
const learnedFeatures = 2

// Learned is a neural eviction policy in the style of learned cache
// replacement systems: each resident key is scored by a small MLP
// predicting its re-reference probability, and eviction samples a few
// candidates (as production caches do) and removes the lowest-scoring
// one. Trained on one workload it beats random and approaches LRU/LFU;
// under workload shift its scores become uninformative — the behaviour
// the P4 decision-quality guardrail exists to catch.
type Learned struct {
	net  *nn.Network
	rng  *rand.Rand
	tick uint64

	lastAccess map[uint64]uint64
	freq       map[uint64]uint64
	keys       []uint64
	index      map[uint64]int

	// SampleSize candidates are scored per eviction.
	SampleSize int
}

// NewLearned returns an untrained learned evictor.
func NewLearned(seed int64) *Learned {
	return &Learned{
		net: nn.New(nn.Config{
			Layers: []int{learnedFeatures, 8, 1},
			Hidden: nn.ReLU,
			Output: nn.Sigmoid,
			Loss:   nn.BCE,
			Seed:   seed,
		}),
		rng:        trace.NewRand(trace.Split(seed, "evictor")),
		lastAccess: make(map[uint64]uint64),
		freq:       make(map[uint64]uint64),
		index:      make(map[uint64]int),
		SampleSize: 8,
	}
}

// Name identifies the policy.
func (p *Learned) Name() string { return "learned" }

// OnInsert notes an insertion.
func (p *Learned) OnInsert(key uint64) {
	p.tick++
	p.lastAccess[key] = p.tick
	p.freq[key] = 1
	p.index[key] = len(p.keys)
	p.keys = append(p.keys, key)
}

// OnHit refreshes metadata.
func (p *Learned) OnHit(key uint64) {
	p.tick++
	p.lastAccess[key] = p.tick
	p.freq[key]++
}

// OnEvict drops metadata with swap-remove.
func (p *Learned) OnEvict(key uint64) {
	i, ok := p.index[key]
	if !ok {
		return
	}
	last := len(p.keys) - 1
	p.keys[i] = p.keys[last]
	p.index[p.keys[i]] = i
	p.keys = p.keys[:last]
	delete(p.index, key)
	delete(p.lastAccess, key)
	delete(p.freq, key)
}

// features builds the model input for a resident key.
func (p *Learned) features(key uint64) []float64 {
	age := float64(p.tick - p.lastAccess[key])
	n := float64(len(p.keys))
	if n == 0 {
		n = 1
	}
	return []float64{
		math.Min(age/n, 4),                   // recency in cache-size units
		math.Log2(float64(p.freq[key])) / 16, // log frequency
	}
}

// Victim samples SampleSize resident keys and evicts the one with the
// lowest predicted re-reference probability.
func (p *Learned) Victim() uint64 {
	best := p.keys[p.rng.Intn(len(p.keys))]
	bestScore := p.net.Forward(p.features(best))[0]
	for i := 1; i < p.SampleSize && i < len(p.keys); i++ {
		k := p.keys[p.rng.Intn(len(p.keys))]
		if s := p.net.Forward(p.features(k))[0]; s < bestScore {
			best, bestScore = k, s
		}
	}
	return best
}

// TrainOnTrace fits the evictor's scorer on an access trace: for every
// access, the label is whether the same key recurs within horizon
// subsequent accesses (a standard re-reference oracle approximation).
func (p *Learned) TrainOnTrace(keys []uint64, horizon int, cacheSize int) (float64, error) {
	if len(keys) < horizon+1 {
		return 0, fmt.Errorf("cache: trace of %d too short for horizon %d", len(keys), horizon)
	}
	// Replay the trace maintaining the same metadata the policy sees.
	last := make(map[uint64]uint64)
	freq := make(map[uint64]uint64)
	next := make(map[uint64][]int) // key -> positions
	for i, k := range keys {
		next[k] = append(next[k], i)
	}
	var inputs, targets [][]float64
	for i, k := range keys {
		if lastTick, seen := last[k]; seen {
			age := float64(uint64(i) - lastTick)
			f := []float64{
				math.Min(age/float64(cacheSize), 4),
				math.Log2(float64(freq[k])) / 16,
			}
			reused := 0.0
			for _, pos := range next[k] {
				if pos > i && pos <= i+horizon {
					reused = 1
					break
				}
			}
			inputs = append(inputs, f)
			targets = append(targets, []float64{reused})
		}
		last[k] = uint64(i)
		freq[k]++
	}
	if len(inputs) == 0 {
		return 0, fmt.Errorf("cache: no repeated keys in trace")
	}
	return p.net.Train(inputs, targets, nn.TrainOpts{
		LearningRate: 0.05, Momentum: 0.9, BatchSize: 64, Epochs: 8, ShuffleSeed: 3,
	})
}
