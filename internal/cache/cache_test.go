package cache

import (
	"testing"

	"guardrails/internal/trace"
)

func TestCacheValidation(t *testing.T) {
	if _, err := New(0, NewLRU()); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := New(4, nil); err == nil {
		t.Error("nil policy should error")
	}
}

func TestLRUSemantics(t *testing.T) {
	c, err := New(2, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(1) {
		t.Error("first access should miss")
	}
	c.Access(2)
	if !c.Access(1) {
		t.Error("resident key should hit")
	}
	// LRU order now [1, 2]; inserting 3 evicts 2.
	c.Access(3)
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Errorf("LRU evicted wrong key: 1=%v 2=%v 3=%v",
			c.Contains(1), c.Contains(2), c.Contains(3))
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 3 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLFUSemantics(t *testing.T) {
	c, _ := New(2, NewLFU())
	c.Access(1)
	c.Access(1)
	c.Access(1)
	c.Access(2)
	// 2 has freq 1, 1 has freq 3; inserting 3 evicts 2.
	c.Access(3)
	if !c.Contains(1) || c.Contains(2) {
		t.Error("LFU evicted wrong key")
	}
}

func TestRandomEvictsResidentKeys(t *testing.T) {
	c, _ := New(8, NewRandom(1))
	for i := uint64(0); i < 1000; i++ {
		c.Access(i)
		if c.Len() > 8 {
			t.Fatal("capacity exceeded")
		}
	}
	if c.Stats().Evictions != 992 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

// zipfTrace builds a Zipf access trace.
func zipfTrace(seed int64, n int, universe uint64, skew float64) []uint64 {
	g := trace.NewZipfKeys(seed, universe, skew, false)
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func runTrace(t *testing.T, p Policy, capacity int, keys []uint64) Stats {
	t.Helper()
	c, err := New(capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		c.Access(k)
	}
	return c.Stats()
}

func TestLRUBeatsRandomOnZipf(t *testing.T) {
	keys := zipfTrace(5, 50000, 10000, 1.2)
	lru := runTrace(t, NewLRU(), 256, keys)
	rnd := runTrace(t, NewRandom(6), 256, keys)
	if lru.HitRate() <= rnd.HitRate() {
		t.Errorf("LRU %.3f should beat random %.3f on Zipf", lru.HitRate(), rnd.HitRate())
	}
}

func TestLearnedBeatsRandomOnTrainedWorkload(t *testing.T) {
	train := zipfTrace(7, 40000, 10000, 1.3)
	test := zipfTrace(8, 40000, 10000, 1.3)

	learned := NewLearned(9)
	if _, err := learned.TrainOnTrace(train, 2000, 256); err != nil {
		t.Fatal(err)
	}
	l := runTrace(t, learned, 256, test)
	r := runTrace(t, NewRandom(10), 256, test)
	if l.HitRate() <= r.HitRate() {
		t.Errorf("learned %.3f should beat random %.3f in distribution", l.HitRate(), r.HitRate())
	}
}

func TestLearnedDegradesUnderShift(t *testing.T) {
	// Trained on Zipf, evaluated on uniform keys the scores carry no
	// signal; hit rate should collapse toward the random baseline
	// (within a small tolerance) — the regret signal P4 monitors.
	train := zipfTrace(11, 40000, 10000, 1.3)
	learned := NewLearned(12)
	if _, err := learned.TrainOnTrace(train, 2000, 256); err != nil {
		t.Fatal(err)
	}
	uniform := make([]uint64, 40000)
	g := trace.NewUniformKeys(13, 10000)
	for i := range uniform {
		uniform[i] = g.Next()
	}
	l := runTrace(t, learned, 256, uniform)
	r := runTrace(t, NewRandom(14), 256, uniform)
	if l.HitRate() > r.HitRate()+0.02 {
		t.Errorf("learned %.3f should not beat random %.3f out of distribution by > 2pp",
			l.HitRate(), r.HitRate())
	}
}

func TestLearnedTrainValidation(t *testing.T) {
	p := NewLearned(1)
	if _, err := p.TrainOnTrace([]uint64{1, 2}, 10, 4); err == nil {
		t.Error("short trace should error")
	}
	unique := make([]uint64, 100)
	for i := range unique {
		unique[i] = uint64(i)
	}
	if _, err := p.TrainOnTrace(unique, 10, 4); err == nil {
		t.Error("trace without repeats should error")
	}
}

func TestSwapPolicyMidStream(t *testing.T) {
	c, _ := New(64, NewLRU())
	keys := zipfTrace(30, 5000, 500, 1.5)
	for _, k := range keys[:2500] {
		c.Access(k)
	}
	if err := c.SwapPolicy(nil); err == nil {
		t.Error("nil swap should error")
	}
	if err := c.SwapPolicy(NewRandom(31)); err != nil {
		t.Fatal(err)
	}
	if c.Policy().Name() != "random" {
		t.Error("policy not swapped")
	}
	// The new policy must be able to evict immediately without panics.
	for _, k := range keys[2500:] {
		c.Access(k)
	}
	if c.Len() > 64 {
		t.Error("capacity exceeded after swap")
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLRU().Name() != "lru" || NewLFU().Name() != "lfu" ||
		NewRandom(1).Name() != "random" || NewLearned(1).Name() != "learned" {
		t.Error("policy names wrong")
	}
}

func TestPoliciesNeverEvictNonResident(t *testing.T) {
	// The Cache panics if a policy returns a non-resident victim; churn
	// every policy to smoke this invariant.
	keys := zipfTrace(20, 20000, 500, 1.5)
	for _, p := range []Policy{NewLRU(), NewLFU(), NewRandom(21), NewLearned(22)} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: %v", p.Name(), r)
				}
			}()
			runTrace(t, p, 64, keys)
		}()
	}
}
