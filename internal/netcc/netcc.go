// Package netcc simulates congestion control on a single bottleneck
// with a fluid queue model: an AIMD baseline (the loss-driven core of
// Cubic-style controllers) and a learned delay-gradient controller
// cloned from an aggressive teacher on clean measurements. Because the
// learned controller keys on the RTT gradient, injected measurement
// noise makes its output jitter wildly while AIMD, which reacts only to
// loss, stays smooth — the robustness contrast the paper's P2 property
// ("similar inputs yield similar outputs") monitors for congestion
// control.
package netcc

import (
	"fmt"

	"guardrails/internal/kernel"
	"guardrails/internal/nn"
	"guardrails/internal/stats"
)

// PathConfig describes the bottleneck.
type PathConfig struct {
	// CapacityMbps is the bottleneck bandwidth.
	CapacityMbps float64
	// BaseRTT is the propagation delay.
	BaseRTT kernel.Time
	// BufferBDPs is the bottleneck buffer in bandwidth-delay products.
	BufferBDPs float64
}

// DefaultPathConfig returns a 100 Mbps, 20 ms, 1-BDP-buffer path.
func DefaultPathConfig() PathConfig {
	return PathConfig{CapacityMbps: 100, BaseRTT: 20 * kernel.Millisecond, BufferBDPs: 1}
}

// Sample is the path's feedback for one simulation step.
type Sample struct {
	// RTT is the current round-trip time including queueing delay.
	RTT kernel.Time
	// LossRate is the fraction of offered load dropped this step.
	LossRate float64
	// ThroughputMbps is the delivered rate this step.
	ThroughputMbps float64
}

// Path is the fluid bottleneck model.
type Path struct {
	cfg      PathConfig
	queueMb  float64 // queued data in megabits
	bufferMb float64
}

// NewPath builds a path.
func NewPath(cfg PathConfig) (*Path, error) {
	if cfg.CapacityMbps <= 0 || cfg.BaseRTT <= 0 || cfg.BufferBDPs <= 0 {
		return nil, fmt.Errorf("netcc: path parameters must be positive")
	}
	bdpMb := cfg.CapacityMbps * float64(cfg.BaseRTT) / float64(kernel.Second)
	return &Path{cfg: cfg, bufferMb: bdpMb * cfg.BufferBDPs}, nil
}

// Step advances the fluid model by dt at the given send rate.
func (p *Path) Step(dt kernel.Time, sendRateMbps float64) Sample {
	if sendRateMbps < 0 {
		sendRateMbps = 0
	}
	dtSec := float64(dt) / float64(kernel.Second)
	arrived := sendRateMbps * dtSec
	drained := p.cfg.CapacityMbps * dtSec

	delivered := arrived
	p.queueMb += arrived - drained
	var lost float64
	if p.queueMb < 0 {
		p.queueMb = 0
	}
	if p.queueMb > p.bufferMb {
		lost = p.queueMb - p.bufferMb
		p.queueMb = p.bufferMb
	}
	if lost > delivered {
		lost = delivered
	}
	lossRate := 0.0
	if arrived > 0 {
		lossRate = lost / arrived
	}
	throughput := sendRateMbps
	if throughput > p.cfg.CapacityMbps {
		throughput = p.cfg.CapacityMbps
	}
	_ = delivered
	rtt := p.cfg.BaseRTT + kernel.Time(p.queueMb/p.cfg.CapacityMbps*float64(kernel.Second))
	return Sample{RTT: rtt, LossRate: lossRate, ThroughputMbps: throughput}
}

// QueueMb returns the current queue occupancy in megabits.
func (p *Path) QueueMb() float64 { return p.queueMb }

// Measurement is the controller's (possibly noisy) view of the path.
type Measurement struct {
	// RTT is the measured round-trip time.
	RTT kernel.Time
	// RTTGradient is (RTT - prevRTT) / baseRTT per decision interval.
	RTTGradient float64
	// LossRate is the measured loss fraction since the last decision.
	LossRate float64
	// RateMbps is the controller's current rate.
	RateMbps float64
	// BaseRTT is the known propagation delay.
	BaseRTT kernel.Time
	// CapacityHint is a rough capacity estimate available to
	// controllers (e.g. from interface speed).
	CapacityHint float64
}

// Controller adjusts the send rate each decision interval.
type Controller interface {
	// Name identifies the controller.
	Name() string
	// Decide returns the new send rate in Mbps.
	Decide(m Measurement) float64
	// Reset clears internal state for a fresh flow.
	Reset()
}

// AIMD is the loss-based baseline: additive increase each decision
// without loss, multiplicative decrease on loss. It ignores RTT
// measurements entirely, making it robust to RTT noise.
type AIMD struct {
	// IncreaseMbps is the per-decision additive step.
	IncreaseMbps float64
	// Beta is the multiplicative decrease factor on loss.
	Beta float64
}

// NewAIMD returns an AIMD controller with Cubic-like parameters.
func NewAIMD() *AIMD { return &AIMD{IncreaseMbps: 2, Beta: 0.7} }

// Name identifies the controller.
func (c *AIMD) Name() string { return "aimd" }

// Decide implements Controller.
func (c *AIMD) Decide(m Measurement) float64 {
	if m.LossRate > 0 {
		return m.RateMbps * c.Beta
	}
	return m.RateMbps + c.IncreaseMbps
}

// Reset implements Controller (AIMD is stateless).
func (c *AIMD) Reset() {}

// DelayGradientTeacher is the aggressive hand-written rule the learned
// controller clones: back off sharply on rising RTT, probe hard when the
// queue looks empty. High gain on the RTT gradient is what makes the
// cloned policy noise-sensitive.
type DelayGradientTeacher struct{}

// Name identifies the controller.
func (DelayGradientTeacher) Name() string { return "delay-gradient" }

// Decide implements Controller. The rule is a smooth, high-gain control
// law: probe upward when the queue is empty, back off proportionally to
// queueing delay and its gradient, and halve-ish on loss. The smoothness
// makes it easy to clone; the high gain on delay measurements is what a
// noisy-RTT environment turns into jitter.
func (DelayGradientTeacher) Decide(m Measurement) float64 {
	if m.LossRate > 0 {
		return m.RateMbps * 0.6
	}
	qdelay := stats.Clamp(float64(m.RTT)/float64(m.BaseRTT)-1, 0, 3)
	mult := 1.1 - 4*qdelay - 5*stats.Clamp(m.RTTGradient, -0.5, 0.5)
	return m.RateMbps * stats.Clamp(mult, 0.5, 1.2)
}

// Reset implements Controller.
func (DelayGradientTeacher) Reset() {}

// Learned is a neural controller cloned from DelayGradientTeacher. Its
// inputs include the RTT gradient; trained only on clean measurements,
// it inherits (and with the network's nonlinearity, amplifies) the
// teacher's gain, so noisy gradients translate into large rate swings.
type Learned struct {
	net *nn.Network
}

// NewLearned returns an untrained learned controller.
func NewLearned(seed int64) *Learned {
	return &Learned{
		net: nn.New(nn.Config{
			Layers: []int{4, 12, 1},
			Hidden: nn.Tanh,
			Output: nn.Linear,
			Loss:   nn.MSE,
			Seed:   seed,
		}),
	}
}

// Name identifies the controller.
func (c *Learned) Name() string { return "learned" }

func ccFeatures(m Measurement) []float64 {
	return []float64{
		stats.Clamp(float64(m.RTT)/float64(m.BaseRTT)-1, 0, 3), // queueing delay in baseRTTs
		stats.Clamp(m.RTTGradient*10, -3, 3),
		stats.Clamp(m.LossRate*20, 0, 3),
		stats.Clamp(m.RateMbps/m.CapacityHint, 0, 3),
	}
}

// Decide implements Controller: the network predicts a rate multiplier.
func (c *Learned) Decide(m Measurement) float64 {
	mult := c.net.Forward(ccFeatures(m))[0]
	mult = stats.Clamp(mult, 0.3, 1.6)
	return m.RateMbps * mult
}

// Reset implements Controller (the network is stateless per decision).
func (c *Learned) Reset() {}

// Clone fits the learned controller to imitate the teacher over a grid
// of clean measurements. Returns the final training loss.
func (c *Learned) Clone(teacher Controller, cfg PathConfig) (float64, error) {
	var inputs, targets [][]float64
	base := float64(cfg.BaseRTT)
	for _, qDelay := range []float64{0, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.5} {
		for _, grad := range []float64{-0.1, -0.05, -0.02, 0, 0.01, 0.02, 0.04, 0.06, 0.08, 0.1, 0.2} {
			for _, loss := range []float64{0, 0.01, 0.05} {
				for _, rateFrac := range []float64{0.001, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9, 1.2} {
					m := Measurement{
						RTT:          kernel.Time(base * (1 + qDelay)),
						RTTGradient:  grad,
						LossRate:     loss,
						RateMbps:     rateFrac * cfg.CapacityMbps,
						BaseRTT:      cfg.BaseRTT,
						CapacityHint: cfg.CapacityMbps,
					}
					want := teacher.Decide(m) / m.RateMbps
					inputs = append(inputs, ccFeatures(m))
					targets = append(targets, []float64{want})
				}
			}
		}
	}
	return c.net.Train(inputs, targets, nn.TrainOpts{
		LearningRate: 0.02, Momentum: 0.9, BatchSize: 32, Epochs: 800, ShuffleSeed: 13,
	})
}
