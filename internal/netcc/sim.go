package netcc

import (
	"fmt"
	"math"
	"sort"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/stats"
	"guardrails/internal/trace"
)

// Feature-store keys the runner publishes.
const (
	// KeyRateCoV is the windowed coefficient of variation of the
	// controller's emitted rates — the P2 decision-robustness signal.
	KeyRateCoV = "cc_rate_cov"
	// KeyThroughput is the smoothed delivered throughput in Mbps.
	KeyThroughput = "cc_throughput_mbps"
	// KeyCCEnabled gates the learned controller: the guardrail's
	// REPLACE-equivalent knob for this subsystem.
	KeyCCEnabled = "cc_ml_enabled"
)

// RunConfig parameterizes a congestion-control run.
type RunConfig struct {
	Path PathConfig
	// Duration is total simulated time.
	Duration kernel.Time
	// DecisionInterval is the controller's cadence.
	DecisionInterval kernel.Time
	// NoiseSigma is the stddev of multiplicative lognormal noise on RTT
	// measurements (0 = clean).
	NoiseSigma float64
	// InitialRateMbps seeds the flow.
	InitialRateMbps float64
	// Seed drives the noise draws.
	Seed int64
	// CoVWindow is the rate-sample window for KeyRateCoV.
	CoVWindow int
}

// DefaultRunConfig returns a 30-second run with 50 ms decisions.
func DefaultRunConfig(seed int64) RunConfig {
	return RunConfig{
		Path:             DefaultPathConfig(),
		Duration:         30 * kernel.Second,
		DecisionInterval: 50 * kernel.Millisecond,
		InitialRateMbps:  10,
		Seed:             seed,
		CoVWindow:        64,
	}
}

// Metrics summarizes a run.
type Metrics struct {
	// MeanThroughputMbps is the time-average delivered rate.
	MeanThroughputMbps float64
	// Utilization is MeanThroughput / capacity.
	Utilization float64
	// RateCoV is the coefficient of variation of the decision outputs
	// over the whole run (jitter — P2's failure signal).
	RateCoV float64
	// MeanRTT and P95RTT summarize delay.
	MeanRTT kernel.Time
	P95RTT  kernel.Time
	// LossFraction is total lost / total offered.
	LossFraction float64
	// Decisions counts controller invocations.
	Decisions int
}

// Run simulates one flow under ctrl. When store is non-nil the runner
// publishes KeyRateCoV and KeyThroughput after every decision and, if
// fallback is non-nil, consults KeyCCEnabled: when a guardrail sets it
// to 0 the fallback controller takes over (the REPLACE path for this
// substrate). The kernel drives TIMER-based monitors between decisions.
func Run(k *kernel.Kernel, store *featurestore.Store, ctrl, fallback Controller, cfg RunConfig) (Metrics, error) {
	if cfg.Duration <= 0 || cfg.DecisionInterval <= 0 {
		return Metrics{}, fmt.Errorf("netcc: durations must be positive")
	}
	if cfg.InitialRateMbps <= 0 {
		return Metrics{}, fmt.Errorf("netcc: initial rate must be positive")
	}
	if cfg.CoVWindow <= 0 {
		cfg.CoVWindow = 64
	}
	path, err := NewPath(cfg.Path)
	if err != nil {
		return Metrics{}, err
	}
	rng := trace.NewRand(trace.Split(cfg.Seed, "cc-noise"))
	ctrl.Reset()
	if fallback != nil {
		fallback.Reset()
	}

	var (
		rate      = cfg.InitialRateMbps
		prevRTT   = cfg.Path.BaseRTT
		rateWin   = stats.NewWindow(cfg.CoVWindow)
		rtts      []float64
		m         Metrics
		thrWel    stats.Welford
		lossAccum float64
		sentAccum float64
	)
	var covID, thrID featurestore.ID
	enabled := func() bool { return true }
	if store != nil {
		covID = store.Intern(KeyRateCoV)
		thrID = store.Intern(KeyThroughput)
		enID := store.Intern(KeyCCEnabled)
		store.SaveID(enID, 1)
		if fallback != nil {
			enabled = func() bool { return store.LoadID(enID) != 0 }
		}
	}

	steps := int(cfg.Duration / cfg.DecisionInterval)
	start := k.Now()
	for i := 0; i < steps; i++ {
		// Advance the fluid model one decision interval at the current rate.
		sample := path.Step(cfg.DecisionInterval, rate)
		thrWel.Add(sample.ThroughputMbps)
		sentAccum += rate
		lossAccum += sample.LossRate * rate
		rtts = append(rtts, float64(sample.RTT))

		// Noisy measurement.
		measuredRTT := sample.RTT
		if cfg.NoiseSigma > 0 {
			measuredRTT = kernel.Time(float64(sample.RTT) * trace.LogNormal(rng, 0, cfg.NoiseSigma))
		}
		grad := float64(measuredRTT-prevRTT) / float64(cfg.Path.BaseRTT)
		prevRTT = measuredRTT

		meas := Measurement{
			RTT:          measuredRTT,
			RTTGradient:  grad,
			LossRate:     sample.LossRate,
			RateMbps:     rate,
			BaseRTT:      cfg.Path.BaseRTT,
			CapacityHint: cfg.Path.CapacityMbps,
		}
		active := ctrl
		if !enabled() && fallback != nil {
			active = fallback
		}
		rate = active.Decide(meas)
		if rate < 0.1 {
			rate = 0.1
		}
		if rate > 4*cfg.Path.CapacityMbps {
			rate = 4 * cfg.Path.CapacityMbps
		}
		m.Decisions++

		rateWin.Add(rate)
		if store != nil {
			store.SaveID(covID, windowCoV(rateWin))
			store.SaveID(thrID, thrWel.Mean())
		}
		// Let TIMER monitors between decisions fire.
		k.RunUntil(start + kernel.Time(i+1)*cfg.DecisionInterval)
	}

	m.MeanThroughputMbps = thrWel.Mean()
	m.Utilization = m.MeanThroughputMbps / cfg.Path.CapacityMbps
	m.RateCoV = runCoV(rtts, rateWin, &m)
	if sentAccum > 0 {
		m.LossFraction = lossAccum / sentAccum
	}
	return m, nil
}

// windowCoV computes the coefficient of variation over a window.
func windowCoV(w *stats.Window) float64 {
	if w.Len() < 2 || w.Mean() == 0 {
		return 0
	}
	var sq float64
	mean := w.Mean()
	for _, v := range w.Values() {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(w.Len()-1)) / mean
}

// runCoV fills RTT metrics and returns the final-window rate CoV.
func runCoV(rtts []float64, w *stats.Window, m *Metrics) float64 {
	if len(rtts) > 0 {
		var sum float64
		sorted := append([]float64(nil), rtts...)
		for _, r := range rtts {
			sum += r
		}
		m.MeanRTT = kernel.Time(sum / float64(len(rtts)))
		sort.Float64s(sorted)
		m.P95RTT = kernel.Time(stats.Quantile(sorted, 0.95))
	}
	return windowCoV(w)
}
