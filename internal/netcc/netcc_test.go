package netcc

import (
	"testing"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
)

func TestPathValidation(t *testing.T) {
	bad := []PathConfig{
		{CapacityMbps: 0, BaseRTT: 1, BufferBDPs: 1},
		{CapacityMbps: 1, BaseRTT: 0, BufferBDPs: 1},
		{CapacityMbps: 1, BaseRTT: 1, BufferBDPs: 0},
	}
	for i, cfg := range bad {
		if _, err := NewPath(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestPathQueueingAndLoss(t *testing.T) {
	p, err := NewPath(DefaultPathConfig()) // 100 Mbps, 20ms, 1 BDP = 2 Mb buffer
	if err != nil {
		t.Fatal(err)
	}
	// Under capacity: no queue, base RTT, no loss.
	s := p.Step(100*kernel.Millisecond, 50)
	if s.LossRate != 0 || s.RTT != 20*kernel.Millisecond || p.QueueMb() != 0 {
		t.Errorf("undersubscribed: %+v queue=%v", s, p.QueueMb())
	}
	// Over capacity: queue builds, RTT grows.
	s = p.Step(100*kernel.Millisecond, 110)
	if p.QueueMb() <= 0 {
		t.Error("queue did not build")
	}
	if s.RTT <= 20*kernel.Millisecond {
		t.Errorf("RTT did not grow: %v", s.RTT)
	}
	// Sustained overload fills the buffer and drops.
	var lost bool
	for i := 0; i < 50; i++ {
		if p.Step(100*kernel.Millisecond, 200).LossRate > 0 {
			lost = true
		}
	}
	if !lost {
		t.Error("no loss under sustained overload")
	}
	// Queue is capped at the buffer.
	if p.QueueMb() > 2.0001 {
		t.Errorf("queue exceeded buffer: %v", p.QueueMb())
	}
	// Throughput is capped at capacity.
	if s := p.Step(100*kernel.Millisecond, 500); s.ThroughputMbps > 100 {
		t.Errorf("throughput above capacity: %v", s.ThroughputMbps)
	}
}

func TestAIMDDynamics(t *testing.T) {
	c := NewAIMD()
	m := Measurement{RateMbps: 50, LossRate: 0}
	if got := c.Decide(m); got != 52 {
		t.Errorf("additive increase: %v", got)
	}
	m.LossRate = 0.1
	if got := c.Decide(m); got != 35 {
		t.Errorf("multiplicative decrease: %v", got)
	}
}

func TestAIMDIgnoresRTTNoise(t *testing.T) {
	c := NewAIMD()
	a := c.Decide(Measurement{RateMbps: 50, RTT: 20 * kernel.Millisecond, RTTGradient: 0})
	b := c.Decide(Measurement{RateMbps: 50, RTT: 80 * kernel.Millisecond, RTTGradient: 2.5})
	if a != b {
		t.Error("AIMD must not react to RTT")
	}
}

func TestTeacherReactsToGradient(t *testing.T) {
	tch := DelayGradientTeacher{}
	base := Measurement{RateMbps: 50, RTT: 21 * kernel.Millisecond,
		BaseRTT: 20 * kernel.Millisecond, CapacityHint: 100}
	calm := base
	calm.RTTGradient = 0
	rising := base
	rising.RTTGradient = 0.2
	if tch.Decide(rising) >= tch.Decide(calm) {
		t.Error("teacher must back off on rising RTT")
	}
	lossy := base
	lossy.LossRate = 0.05
	if tch.Decide(lossy) != 30 {
		t.Errorf("loss backoff = %v, want 30", tch.Decide(lossy))
	}
}

func clonedController(t *testing.T, seed int64) *Learned {
	t.Helper()
	c := NewLearned(seed)
	loss, err := c.Clone(DelayGradientTeacher{}, DefaultPathConfig())
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("cloning loss = %v, teacher not imitated", loss)
	}
	return c
}

func TestLearnedClonesTeacher(t *testing.T) {
	c := clonedController(t, 1)
	tch := DelayGradientTeacher{}
	cfg := DefaultPathConfig()
	// Points chosen inside the teacher's linear region (away from the
	// clamp plateaus, where the smooth network approximation differs).
	for _, grad := range []float64{-0.02, 0, 0.02, 0.06} {
		m := Measurement{
			RTT: 21 * kernel.Millisecond, RTTGradient: grad,
			RateMbps: 60, BaseRTT: cfg.BaseRTT, CapacityHint: cfg.CapacityMbps,
		}
		want := tch.Decide(m)
		got := c.Decide(m)
		if diff := got/want - 1; diff > 0.15 || diff < -0.15 {
			t.Errorf("grad=%v: learned %v vs teacher %v", grad, got, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	k := kernel.New()
	cfg := DefaultRunConfig(1)
	cfg.Duration = 0
	if _, err := Run(k, nil, NewAIMD(), nil, cfg); err == nil {
		t.Error("zero duration should error")
	}
	cfg = DefaultRunConfig(1)
	cfg.InitialRateMbps = 0
	if _, err := Run(k, nil, NewAIMD(), nil, cfg); err == nil {
		t.Error("zero initial rate should error")
	}
}

func TestAIMDAchievesUtilization(t *testing.T) {
	k := kernel.New()
	m, err := Run(k, nil, NewAIMD(), nil, DefaultRunConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Utilization < 0.7 {
		t.Errorf("AIMD utilization = %v, want >= 0.7", m.Utilization)
	}
	if m.Decisions == 0 || m.MeanRTT < 20*kernel.Millisecond {
		t.Errorf("metrics = %+v", m)
	}
}

func TestLearnedCleanVsNoisyJitter(t *testing.T) {
	c := clonedController(t, 3)
	clean := DefaultRunConfig(4)
	k1 := kernel.New()
	mClean, err := Run(k1, nil, c, nil, clean)
	if err != nil {
		t.Fatal(err)
	}
	noisy := DefaultRunConfig(4)
	noisy.NoiseSigma = 0.3
	k2 := kernel.New()
	mNoisy, err := Run(k2, nil, c, nil, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if mNoisy.RateCoV <= mClean.RateCoV {
		t.Errorf("noise should raise learned jitter: clean %v, noisy %v",
			mClean.RateCoV, mNoisy.RateCoV)
	}
	// AIMD under the same noise stays comparatively smooth.
	k3 := kernel.New()
	mAIMD, err := Run(k3, nil, NewAIMD(), nil, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if mNoisy.RateCoV <= mAIMD.RateCoV {
		t.Errorf("learned jitter %v should exceed AIMD jitter %v under noise",
			mNoisy.RateCoV, mAIMD.RateCoV)
	}
}

func TestRunPublishesAndFallsBack(t *testing.T) {
	c := clonedController(t, 5)
	k := kernel.New()
	st := featurestore.New()
	cfg := DefaultRunConfig(6)
	cfg.NoiseSigma = 0.3
	// A kernel timer disables the learned controller mid-run, as a
	// guardrail SAVE action would.
	k.Every(0, 100*kernel.Millisecond, 0, func(now kernel.Time) {
		if now >= 15*kernel.Second {
			st.Save(KeyCCEnabled, 0)
		}
	})
	m, err := Run(k, st, c, NewAIMD(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Load(KeyRateCoV) == 0 && m.RateCoV != 0 {
		t.Error("rate CoV not published")
	}
	if st.Load(KeyThroughput) == 0 {
		t.Error("throughput not published")
	}
	// The final window is pure AIMD: its jitter must be below the
	// learned controller's overall noisy jitter.
	k2 := kernel.New()
	mNoFallback, err := Run(k2, nil, clonedController(t, 5), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.RateCoV >= mNoFallback.RateCoV {
		t.Errorf("fallback did not calm the flow: with %v, without %v",
			m.RateCoV, mNoFallback.RateCoV)
	}
}

func TestControllerNames(t *testing.T) {
	if NewAIMD().Name() != "aimd" || NewLearned(1).Name() != "learned" ||
		(DelayGradientTeacher{}).Name() != "delay-gradient" {
		t.Error("controller names wrong")
	}
}
