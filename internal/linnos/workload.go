package linnos

import (
	"math/rand"

	"guardrails/internal/kernel"
	"guardrails/internal/trace"
)

// Op is one storage operation of a workload.
type Op struct {
	At    kernel.Time
	LBA   uint64
	Write bool
}

// OpGen produces a time-ordered operation stream.
type OpGen interface {
	Next() Op
}

// SliceWorkload replays a recorded operation trace. Exhausting the
// trace repeats the last operation with advancing timestamps, so
// drivers that run "until time T" terminate.
type SliceWorkload struct {
	ops []Op
	i   int
}

// NewSliceWorkload wraps a recorded trace. It panics on an empty trace.
func NewSliceWorkload(ops []Op) *SliceWorkload {
	if len(ops) == 0 {
		panic("linnos: empty trace")
	}
	return &SliceWorkload{ops: ops}
}

// Next implements OpGen.
func (w *SliceWorkload) Next() Op {
	if w.i < len(w.ops) {
		op := w.ops[w.i]
		w.i++
		return op
	}
	last := w.ops[len(w.ops)-1]
	w.i++
	last.At += kernel.Time(w.i-len(w.ops)) * kernel.Millisecond
	return last
}

// Remaining reports how many recorded operations are left.
func (w *SliceWorkload) Remaining() int {
	if w.i >= len(w.ops) {
		return 0
	}
	return len(w.ops) - w.i
}

// Record captures n operations from a generator into a replayable trace.
func Record(g OpGen, n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// MixedWorkload generates Poisson-arriving reads and writes over a key
// popularity distribution. Rate, write fraction, and key generator can
// be changed mid-stream to create the distribution shifts guardrail
// experiments need.
type MixedWorkload struct {
	rng       *rand.Rand
	meanGap   float64
	writeFrac float64
	keys      trace.KeyGen
	writeKeys trace.KeyGen // nil = use keys
	now       kernel.Time
}

// NewMixedWorkload returns a workload with the given arrival rate
// (operations per simulated second), write fraction in [0, 1), and key
// generator.
func NewMixedWorkload(seed int64, ratePerSec, writeFrac float64, keys trace.KeyGen) *MixedWorkload {
	if ratePerSec <= 0 {
		panic("linnos: workload rate must be positive")
	}
	if writeFrac < 0 || writeFrac >= 1 {
		panic("linnos: write fraction must be in [0, 1)")
	}
	return &MixedWorkload{
		rng:       trace.NewRand(trace.Split(seed, "workload")),
		meanGap:   float64(kernel.Second) / ratePerSec,
		writeFrac: writeFrac,
		keys:      keys,
	}
}

// SetRate changes the arrival rate (operations per simulated second).
func (w *MixedWorkload) SetRate(ratePerSec float64) {
	if ratePerSec <= 0 {
		panic("linnos: workload rate must be positive")
	}
	w.meanGap = float64(kernel.Second) / ratePerSec
}

// SetWriteFraction changes the write mix.
func (w *MixedWorkload) SetWriteFraction(f float64) {
	if f < 0 || f >= 1 {
		panic("linnos: write fraction must be in [0, 1)")
	}
	w.writeFrac = f
}

// SetKeys swaps the read-key generator (e.g. moving a hotspot).
func (w *MixedWorkload) SetKeys(k trace.KeyGen) { w.keys = k }

// SetWriteKeys gives writes their own key distribution (log-structured
// workloads write far more uniformly than they read). nil reverts to
// the read distribution.
func (w *MixedWorkload) SetWriteKeys(k trace.KeyGen) { w.writeKeys = k }

// Now returns the time of the last generated operation.
func (w *MixedWorkload) Now() kernel.Time { return w.now }

// Next returns the next operation.
func (w *MixedWorkload) Next() Op {
	gap := trace.Exponential(w.rng, w.meanGap)
	if gap < 1 {
		gap = 1
	}
	w.now += kernel.Time(gap)
	write := w.rng.Float64() < w.writeFrac
	gen := w.keys
	if write && w.writeKeys != nil {
		gen = w.writeKeys
	}
	return Op{
		At:    w.now,
		LBA:   gen.Next(),
		Write: write,
	}
}
