package linnos

import (
	"fmt"

	"guardrails/internal/kernel"
	"guardrails/internal/storage"
)

// CollectSamples drives n operations from the workload against the
// array's primary replica (writes are mirrored array-wide) and records a
// labelled Sample for every read: the features visible at submission
// and whether the read exceeded slowThreshold. This is the offline
// trace-collection step of the LinnOS training pipeline; run it against
// scratch devices, not the experiment's live array.
func CollectSamples(arr *storage.Array, wl OpGen, n int, slowThreshold kernel.Time) []Sample {
	var out []Sample
	primary := arr.Replica(0)
	for i := 0; i < n; i++ {
		op := wl.Next()
		if op.Write {
			arr.Write(op.At, op.LBA)
			continue
		}
		f := Features(primary, op.At)
		lat := primary.Submit(op.At, op.LBA, false)
		out = append(out, Sample{Features: f, Slow: lat > slowThreshold})
	}
	return out
}

// TrainedClassifier collects samples and fits a classifier in one step,
// validating that the training set contains both classes and that the
// fitted model achieves at least minAccuracy on its own training data
// (a smoke check that training converged, mirroring LinnOS's reported
// high training accuracy).
func TrainedClassifier(arr *storage.Array, wl OpGen, n int, slowThreshold kernel.Time, seed int64, minAccuracy float64) (*Classifier, []Sample, error) {
	samples := CollectSamples(arr, wl, n, slowThreshold)
	c := NewClassifier(seed)
	if _, err := c.Train(samples); err != nil {
		return nil, nil, err
	}
	acc := Accuracy(c, samples)
	if acc < minAccuracy {
		return nil, nil, fmt.Errorf("linnos: training accuracy %.3f below %.3f", acc, minAccuracy)
	}
	return c, samples, nil
}

// Accuracy returns the fraction of samples the classifier labels
// correctly.
func Accuracy(c *Classifier, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if c.PredictSlow(s.Features) == s.Slow {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// ConfusionMatrix summarizes classifier performance on samples.
type ConfusionMatrix struct {
	TrueFast  int // predicted fast, was fast
	TrueSlow  int // predicted slow, was slow
	FalseFast int // predicted fast, was slow (the false submit)
	FalseSlow int // predicted slow, was fast
}

// Confusion evaluates the classifier on samples.
func Confusion(c *Classifier, samples []Sample) ConfusionMatrix {
	var m ConfusionMatrix
	for _, s := range samples {
		pred := c.PredictSlow(s.Features)
		switch {
		case !pred && !s.Slow:
			m.TrueFast++
		case pred && s.Slow:
			m.TrueSlow++
		case !pred && s.Slow:
			m.FalseFast++
		default:
			m.FalseSlow++
		}
	}
	return m
}

// FalseSubmitRate is the fraction of actually-slow samples the model
// predicted fast — the quantity the paper's guardrail bounds.
func (m ConfusionMatrix) FalseSubmitRate() float64 {
	denom := m.TrueFast + m.FalseFast
	if denom == 0 {
		return 0
	}
	return float64(m.FalseFast) / float64(denom)
}
