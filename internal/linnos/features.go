// Package linnos reproduces LinnOS (Hao et al., OSDI '20) on the
// simulated flash array: a light neural network predicts, at submission
// time, whether a read will be fast or slow; predicted-slow reads are
// immediately re-issued to a replica instead of waiting out the
// primary's congestion. The package provides the feature extraction,
// the fast/slow classifier, a training-data collector, and the guarded
// I/O engine whose false-submit guardrail is the paper's Figure 2 case
// study.
package linnos

import (
	"guardrails/internal/kernel"
	"guardrails/internal/stats"
	"guardrails/internal/storage"
)

// NumFeatures is the model input width: the device queue depth plus the
// four most recent I/O latencies (LinnOS's feature set, scaled down).
const NumFeatures = 5

// latScale converts a latency to a feature in roughly [0, 4]:
// milliseconds clipped at 4ms.
func latFeature(l kernel.Time) float64 {
	return stats.Clamp(float64(l)/float64(kernel.Millisecond), 0, 4)
}

// Features extracts the model input for a read about to be submitted to
// device d at time now. The caller owns the returned slice.
func Features(d *storage.Device, now kernel.Time) []float64 {
	f := make([]float64, 0, NumFeatures)
	f = append(f, stats.Clamp(float64(d.QueueDepth(now))/16.0, 0, 4))
	rec := d.RecentLatencies()
	for _, l := range rec {
		f = append(f, latFeature(l))
	}
	return f
}
