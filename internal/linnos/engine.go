package linnos

import (
	"fmt"

	"guardrails/internal/featurestore"
	"guardrails/internal/kernel"
	"guardrails/internal/stats"
	"guardrails/internal/storage"
)

// Feature-store keys the engine publishes. Guardrail specs reference
// these names (Listing 2 reads false_submit_rate and writes ml_enabled).
const (
	// KeyMLEnabled is the control knob: non-zero means the learned
	// predictor routes reads. The guardrail's SAVE(ml_enabled, false)
	// writes it; the engine reads it on every I/O.
	KeyMLEnabled = "ml_enabled"
	// KeyFalseSubmitRate is the windowed fraction of reads predicted
	// fast that turned out slow.
	KeyFalseSubmitRate = "false_submit_rate"
	// KeyLatencyMA is the moving average of read latencies in
	// microseconds (Figure 2's y-axis).
	KeyLatencyMA = "io_latency_ma_us"
	// HookIOComplete fires on every completed read with the latency in
	// microseconds as its argument.
	HookIOComplete = "io_complete"
)

// Config parameterizes the engine.
type Config struct {
	// SlowThreshold labels an access slow (training label, false-submit
	// definition). LinnOS uses the latency knee; ours sits well above
	// the fast mode (~100µs) and below GC pauses (~8ms).
	SlowThreshold kernel.Time
	// RevokeTimeout is the baseline failover policy's hedge: a read
	// still outstanding after this long is revoked and re-issued to a
	// replica.
	RevokeTimeout kernel.Time
	// MLSafetyTimeout is the backstop hedge on ML-trusted reads: the
	// deployment keeps the cluster's revocation logic armed, but at a
	// much longer fuse than the baseline's (the model is trusted first;
	// see §5 — LinnOS sits on top of existing failover logic). Zero
	// disables the backstop entirely.
	MLSafetyTimeout kernel.Time
	// InferenceCost is added to every ML-routed read, modelling
	// in-kernel inference latency (LinnOS reports ~4–6µs quantized).
	InferenceCost kernel.Time
	// RateWindow is the number of recent predicted-fast reads over
	// which the false-submit rate is computed.
	RateWindow int
	// MAWindow is the moving-average window (reads) for KeyLatencyMA.
	MAWindow int
}

// DefaultConfig returns the configuration used by the Figure 2
// experiment.
func DefaultConfig() Config {
	return Config{
		SlowThreshold:   kernel.Millisecond,
		RevokeTimeout:   500 * kernel.Microsecond,
		MLSafetyTimeout: 2 * kernel.Millisecond,
		InferenceCost:   6 * kernel.Microsecond,
		RateWindow:      256,
		MAWindow:        512,
	}
}

// Route says how a read was served.
type Route int

// Routes.
const (
	// RoutePrimary: submitted to the primary and trusted to completion.
	RoutePrimary Route = iota
	// RouteFailover: predicted slow, immediately served by a replica.
	RouteFailover
	// RouteHedged: baseline path revoked the primary read at the
	// timeout and re-issued to a replica.
	RouteHedged
)

// String names the route.
func (r Route) String() string {
	switch r {
	case RoutePrimary:
		return "primary"
	case RouteFailover:
		return "failover"
	case RouteHedged:
		return "hedged"
	default:
		return fmt.Sprintf("route(%d)", int(r))
	}
}

// EngineStats aggregates engine activity.
type EngineStats struct {
	Reads        uint64
	Writes       uint64
	MLRouted     uint64 // reads decided by the model
	Failovers    uint64 // predicted-slow immediate failovers
	Hedged       uint64 // baseline timeout failovers
	FalseSubmits uint64 // predicted fast, actually slow
	SlowReads    uint64 // reads above SlowThreshold (as served)
	Inferences   uint64
	TotalLatency kernel.Time
}

// Predictor classifies an access as slow from its feature vector; the
// trained Classifier is the production implementation, and tests inject
// deterministic stand-ins.
type Predictor interface {
	PredictSlow(features []float64) bool
}

// Engine is the LinnOS I/O path: reads are routed by the learned
// classifier when enabled, or by the baseline hedged-failover heuristic
// otherwise. All interesting signals are published to the feature store
// so guardrails can monitor them.
type Engine struct {
	k     *kernel.Kernel
	store *featurestore.Store
	arr   *storage.Array
	model Predictor
	cfg   Config

	mlEnabledID featurestore.ID
	falseRateID featurestore.ID
	maID        featurestore.ID

	fsWindow *stats.RateWindow
	maWindow *stats.Window

	stats EngineStats
}

// NewEngine builds an engine over a replica array. The model may be nil
// (pure baseline); ml_enabled is initialized to 1 when a model is
// supplied.
func NewEngine(k *kernel.Kernel, store *featurestore.Store, arr *storage.Array, model Predictor, cfg Config) (*Engine, error) {
	if cfg.SlowThreshold <= 0 || cfg.RevokeTimeout <= 0 {
		return nil, fmt.Errorf("linnos: thresholds must be positive")
	}
	if cfg.RateWindow <= 0 || cfg.MAWindow <= 0 {
		return nil, fmt.Errorf("linnos: window sizes must be positive")
	}
	e := &Engine{
		k: k, store: store, arr: arr, model: model, cfg: cfg,
		mlEnabledID: store.Intern(KeyMLEnabled),
		falseRateID: store.Intern(KeyFalseSubmitRate),
		maID:        store.Intern(KeyLatencyMA),
		fsWindow:    stats.NewRateWindow(cfg.RateWindow),
		maWindow:    stats.NewWindow(cfg.MAWindow),
	}
	if model != nil {
		store.SaveID(e.mlEnabledID, 1)
	}
	return e, nil
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() EngineStats { return e.stats }

// Model returns the engine's predictor (nil when baseline-only).
func (e *Engine) Model() Predictor { return e.model }

// SetModel swaps the predictor (used by RETRAIN flows).
func (e *Engine) SetModel(m Predictor) { e.model = m }

// MLEnabled reports the current value of the ml_enabled knob.
func (e *Engine) MLEnabled() bool {
	return e.model != nil && e.store.LoadID(e.mlEnabledID) != 0
}

// Write mirrors a write to all replicas.
func (e *Engine) Write(now kernel.Time, lba uint64) kernel.Time {
	e.stats.Writes++
	return e.arr.Write(now, lba)
}

// Read serves one read and returns its end-to-end latency and route.
func (e *Engine) Read(now kernel.Time, lba uint64) (kernel.Time, Route) {
	var lat kernel.Time
	var route Route
	if e.MLEnabled() {
		lat, route = e.readML(now, lba)
	} else {
		lat, route = e.readBaseline(now, lba)
	}

	e.stats.Reads++
	e.stats.TotalLatency += lat
	if lat > e.cfg.SlowThreshold {
		e.stats.SlowReads++
	}
	e.maWindow.Add(float64(lat) / float64(kernel.Microsecond))
	e.store.SaveID(e.maID, e.maWindow.Mean())
	e.k.Fire(HookIOComplete, float64(lat)/float64(kernel.Microsecond))
	return lat, route
}

// readML is the LinnOS path: predict on the primary's features; on a
// slow prediction, predict on the replica and serve from it when it
// looks fast (LinnOS re-issues only to replicas its model likes).
// Wherever the read lands, the model's word is trusted to completion
// (no hedge) — the false-submit exposure the guardrail bounds.
func (e *Engine) readML(now kernel.Time, lba uint64) (kernel.Time, Route) {
	primary := e.arr.Primary()
	replica := e.arr.Secondary()
	e.stats.Inferences++
	e.stats.MLRouted++
	cost := e.cfg.InferenceCost

	target, route := primary, RoutePrimary
	predictedFast := true
	if e.model.PredictSlow(Features(primary, now)) {
		e.stats.Inferences++
		cost += e.cfg.InferenceCost
		if e.model.PredictSlow(Features(replica, now)) {
			// Both predicted slow: stay on the primary (re-issuing buys
			// nothing) and accept the wait, exactly like LinnOS.
			predictedFast = false
		} else {
			e.stats.Failovers++
			target, route = replica, RouteFailover
		}
	}
	lat := cost + target.Submit(now+cost, lba, false)
	// Safety backstop: a predicted-fast read that overshoots the (long)
	// ML fuse is revoked to the other replica, bounding the worst case.
	if predictedFast && e.cfg.MLSafetyTimeout > 0 && lat > cost+e.cfg.MLSafetyTimeout {
		other := replica
		if target == replica {
			other = primary
		}
		e.stats.Hedged++
		lat = cost + e.cfg.MLSafetyTimeout + other.Submit(now+cost+e.cfg.MLSafetyTimeout, lba, false)
	}
	// A false submit is a read the model waved through as fast that
	// turned out slow; predicted-slow reads are not counted (the model
	// called them correctly or pessimistically, not unsafely).
	if predictedFast {
		falseSubmit := lat > e.cfg.SlowThreshold
		if falseSubmit {
			e.stats.FalseSubmits++
		}
		e.fsWindow.Add(falseSubmit)
		e.store.SaveID(e.falseRateID, e.fsWindow.Rate())
	}
	return lat, route
}

// readBaseline is the vanilla failover heuristic: submit to the
// primary; if the access would exceed the revoke timeout, cancel and
// re-issue to the replica, paying timeout + replica latency.
func (e *Engine) readBaseline(now kernel.Time, lba uint64) (kernel.Time, Route) {
	primary := e.arr.Primary()
	lat := primary.Submit(now, lba, false)
	if lat <= e.cfg.RevokeTimeout {
		return lat, RoutePrimary
	}
	e.stats.Hedged++
	replicaLat := e.arr.Secondary().Submit(now+e.cfg.RevokeTimeout, lba, false)
	return e.cfg.RevokeTimeout + replicaLat, RouteHedged
}
