package linnos

import (
	"fmt"

	"guardrails/internal/nn"
)

// Sample is one labelled training example: the features observed at
// submission and whether the access turned out slow.
type Sample struct {
	Features []float64
	Slow     bool
}

// Classifier is the fast/slow binary classifier. It wraps a small MLP
// (and optionally its integer-quantized form for cheap inference, as
// LinnOS deploys in-kernel).
type Classifier struct {
	net  *nn.Network
	q    *nn.Quantized
	useQ bool
}

// NewClassifier returns an untrained classifier with LinnOS's shape
// scaled to our feature set: NumFeatures → 16 → 2 with ReLU hidden
// units and linear class scores.
func NewClassifier(seed int64) *Classifier {
	return &Classifier{
		net: nn.New(nn.Config{
			Layers: []int{NumFeatures, 16, 2},
			Hidden: nn.ReLU,
			Output: nn.Linear,
			Loss:   nn.MSE,
			Seed:   seed,
		}),
	}
}

// Train fits the classifier on samples, oversampling the minority class
// to balance the typically rare slow accesses. It returns the final
// training loss.
func (c *Classifier) Train(samples []Sample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("linnos: no training samples")
	}
	var slow, fast []Sample
	for _, s := range samples {
		if len(s.Features) != NumFeatures {
			return 0, fmt.Errorf("linnos: sample has %d features, want %d", len(s.Features), NumFeatures)
		}
		if s.Slow {
			slow = append(slow, s)
		} else {
			fast = append(fast, s)
		}
	}
	if len(slow) == 0 || len(fast) == 0 {
		return 0, fmt.Errorf("linnos: training set has only one class (%d slow, %d fast)", len(slow), len(fast))
	}
	// Oversample the minority class to parity.
	minority, majority := slow, fast
	if len(fast) < len(slow) {
		minority, majority = fast, slow
	}
	balanced := append([]Sample(nil), majority...)
	for i := 0; len(balanced) < 2*len(majority); i++ {
		balanced = append(balanced, minority[i%len(minority)])
	}

	inputs := make([][]float64, len(balanced))
	targets := make([][]float64, len(balanced))
	for i, s := range balanced {
		inputs[i] = s.Features
		if s.Slow {
			targets[i] = []float64{0, 1}
		} else {
			targets[i] = []float64{1, 0}
		}
	}
	loss, err := c.net.Train(inputs, targets, nn.TrainOpts{
		LearningRate: 0.02, Momentum: 0.9, BatchSize: 64, Epochs: 30, ShuffleSeed: 7,
	})
	if err != nil {
		return 0, err
	}
	// Refresh the quantized form if one was in use.
	if c.useQ {
		if err := c.EnableQuantized(); err != nil {
			return loss, err
		}
	}
	return loss, nil
}

// EnableQuantized switches inference to int16 fixed point (LinnOS's
// in-kernel deployment mode).
func (c *Classifier) EnableQuantized() error {
	q, err := c.net.Quantize(10)
	if err != nil {
		return err
	}
	c.q = q
	c.useQ = true
	return nil
}

// Quantized reports whether fixed-point inference is active.
func (c *Classifier) Quantized() bool { return c.useQ }

// PredictSlow classifies a feature vector; true means the access is
// predicted slow (and should fail over to a replica).
func (c *Classifier) PredictSlow(features []float64) bool {
	var out []float64
	if c.useQ {
		out = c.q.Forward(features)
	} else {
		out = c.net.Forward(features)
	}
	return nn.Argmax(out) == 1
}

// Network exposes the underlying model (e.g. for RETRAIN actions or
// persistence).
func (c *Classifier) Network() *nn.Network { return c.net }
